// Transport-layer tests: the tag registry, the in-process and socket
// backends behind the fabric, bitwise parity of a GD reconstruction
// across transports (volume, cost history, checkpoint tree), and fault
// parity — a killed rank surfaces as RankFailure on every rank and
// checkpoint recovery works identically on both backends. The "multi
// process" socket runs here host each rank on its own thread with its
// own VirtualCluster + SocketTransport over loopback, which exercises
// the full wire path (mesh handshake, frames, progress thread) without
// fork(); the CI release-bench job covers the genuine K-process case
// through `ptycho reconstruct --launch 2`.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/crc32.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/exec_options.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;
using testing::tiny_dataset;

// ---- helpers ---------------------------------------------------------------

/// Reserve `n` free loopback ports: bind ephemeral listeners, read the
/// assigned ports back, close them all. The transport's SO_REUSEADDR
/// rebind makes the tiny close-to-rebind window benign.
std::vector<int> reserve_ports(int n) {
  std::vector<int> fds;
  std::vector<int> ports;
  for (int i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)), 0);
    EXPECT_EQ(::listen(fd, 1), 0);
    socklen_t len = sizeof(sa);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
    fds.push_back(fd);
    ports.push_back(static_cast<int>(ntohs(sa.sin_port)));
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

rt::TransportOptions socket_options(int rank, const std::vector<int>& ports) {
  rt::TransportOptions t;
  t.kind = rt::TransportKind::kSocket;
  t.rank = rank;
  for (const int p : ports) t.peers.push_back("127.0.0.1:" + std::to_string(p));
  return t;
}

void expect_bitwise_equal(const FramedVolume& a, const FramedVolume& b) {
  ASSERT_EQ(a.slices(), b.slices());
  ASSERT_EQ(a.frame.h, b.frame.h);
  ASSERT_EQ(a.frame.w, b.frame.w);
  int mismatches = 0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        if (std::memcmp(&a.data(s, y, x), &b.data(s, y, x), sizeof(cplx)) != 0) ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

/// Relative path -> file bytes for every regular file under `root`.
std::map<std::string, std::string> tree_contents(const std::string& root) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    out[fs::relative(entry.path(), root).string()] = std::move(bytes);
  }
  return out;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("ptycho_transport_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Run one GD job as `nranks` concurrent single-rank processes (threads
/// here) over a loopback socket mesh. Returns rank 0's result; any rank's
/// exception is collected into `errors[rank]`.
ParallelResult run_gd_socket(const Dataset& dataset, const GdConfig& base, int nranks,
                             std::vector<std::exception_ptr>& errors) {
  const std::vector<int> ports = reserve_ports(nranks);
  ParallelResult root_result;
  errors.assign(static_cast<usize>(nranks), nullptr);
  std::vector<std::thread> procs;
  for (int r = 0; r < nranks; ++r) {
    procs.emplace_back([&, r] {
      GdConfig config = base;
      config.exec.transport = socket_options(r, ports);
      try {
        ParallelResult result = reconstruct_gd(dataset, config);
        if (r == 0) root_result = std::move(result);
      } catch (...) {
        errors[static_cast<usize>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : procs) t.join();
  return root_result;
}

// ---- tag registry ----------------------------------------------------------

TEST(TagRegistry, PhaseIdsAreUniqueAndNamed) {
  std::set<int> ids;
  for (const rt::Phase phase : rt::kAllPhases) {
    EXPECT_TRUE(ids.insert(static_cast<int>(phase)).second)
        << "duplicate phase id " << static_cast<int>(phase);
    EXPECT_STRNE(to_string(phase), "?") << "unnamed phase " << static_cast<int>(phase);
  }
  static_assert(rt::phases_unique());
}

TEST(TagRegistry, TagsSeparatePhasesAndStages) {
  // Same stage, different phases: disjoint tags.
  EXPECT_NE(rt::make_tag(rt::Phase::kAllreduce, 7), rt::make_tag(rt::Phase::kCost, 7));
  // Same phase, different stages: disjoint tags.
  EXPECT_NE(rt::make_tag(rt::Phase::kTest, 0), rt::make_tag(rt::Phase::kTest, 1));
  // The stage field carries 48 bits without bleeding into the phase bits.
  const std::int64_t big_stage = (std::int64_t(1) << 48) - 1;
  const rt::Tag tag = rt::make_tag(rt::Phase::kTest, big_stage);
  EXPECT_EQ(tag >> 48, static_cast<rt::Tag>(rt::Phase::kTest));
  EXPECT_EQ(tag & big_stage, big_stage);
}

// ---- backend selection ------------------------------------------------------

TEST(Transport, InProcIsTheDefaultBackend) {
  rt::Fabric fabric(3);
  EXPECT_STREQ(fabric.transport_name(), "inproc");
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(fabric.is_local(r));
}

TEST(Transport, KindParsing) {
  EXPECT_EQ(rt::transport_kind_from_string("inproc"), rt::TransportKind::kInProc);
  EXPECT_EQ(rt::transport_kind_from_string("threads"), rt::TransportKind::kInProc);
  EXPECT_EQ(rt::transport_kind_from_string("socket"), rt::TransportKind::kSocket);
  EXPECT_EQ(rt::transport_kind_from_string("tcp"), rt::TransportKind::kSocket);
  EXPECT_THROW((void)rt::transport_kind_from_string("carrier-pigeon"), Error);
}

TEST(Transport, PeerParsing) {
  const rt::PeerAddr addr = rt::parse_peer("example.org:4242");
  EXPECT_EQ(addr.host, "example.org");
  EXPECT_EQ(addr.port, 4242);
  EXPECT_THROW((void)rt::parse_peer("no-port"), Error);
  EXPECT_THROW((void)rt::parse_peer("host:0"), Error);
  EXPECT_THROW((void)rt::parse_peer("host:99999"), Error);
}

TEST(Transport, SocketOptionsAreValidated) {
  rt::TransportOptions opts;
  opts.kind = rt::TransportKind::kSocket;
  opts.peers = {"127.0.0.1:9001", "127.0.0.1:9002"};
  opts.rank = 2;  // outside the roster
  EXPECT_THROW((void)rt::make_transport(opts, 2), Error);
  opts.rank = 0;
  EXPECT_THROW((void)rt::make_transport(opts, 3), Error);  // roster size mismatch
}

// ---- socket wire path -------------------------------------------------------

TEST(SocketTransport, ExchangeBarrierAndStatsAcrossRanks) {
  constexpr int kRanks = 2;
  const std::vector<int> ports = reserve_ports(kRanks);
  std::vector<std::exception_ptr> errors(kRanks);
  std::vector<std::thread> procs;
  for (int r = 0; r < kRanks; ++r) {
    procs.emplace_back([&, r] {
      try {
        rt::ClusterSpec spec;
        spec.nranks = kRanks;
        spec.transport = socket_options(r, ports);
        rt::VirtualCluster cluster(spec);
        EXPECT_TRUE(cluster.distributed());
        EXPECT_EQ(cluster.local_rank(), r);
        EXPECT_STREQ(cluster.fabric().transport_name(), "socket");
        EXPECT_TRUE(cluster.fabric().is_local(r));
        EXPECT_FALSE(cluster.fabric().is_local(1 - r));
        cluster.run([&](rt::RankContext& ctx) {
          EXPECT_EQ(ctx.rank(), r);
          const int peer = 1 - r;
          // Two frames each way (one sized, one empty) plus a barrier,
          // repeated so FIFO-per-tag ordering is exercised on the wire.
          for (int round = 0; round < 5; ++round) {
            ctx.isend(peer, rt::make_tag(rt::Phase::kTest, round),
                      std::vector<cplx>(16, cplx(static_cast<real>(r), round)));
            ctx.isend(peer, rt::make_tag(rt::Phase::kTest, round), {});
            const std::vector<cplx> got = ctx.recv(peer, rt::make_tag(rt::Phase::kTest, round));
            ASSERT_EQ(got.size(), 16u);
            EXPECT_EQ(got[0], cplx(static_cast<real>(peer), round));
            EXPECT_TRUE(ctx.recv(peer, rt::make_tag(rt::Phase::kTest, round)).empty());
            ctx.barrier();
          }
        });
        const rt::TransportStats stats = cluster.fabric().transport_stats();
        EXPECT_GT(stats.messages_out, 0u);
        EXPECT_GT(stats.messages_in, 0u);
        EXPECT_GT(stats.bytes_out, stats.messages_out);  // headers alone beat the count
      } catch (...) {
        errors[static_cast<usize>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : procs) t.join();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

TEST(SocketTransport, DeadPeerWithoutShutdownPoisonsTheFabric) {
  // A hand-rolled "rank 1" that completes the mesh handshake and then
  // vanishes without a shutdown frame — the wire-level signature of a
  // killed process. Rank 0's blocked receive must abort with RankFailure
  // (the same teardown FaultPlan recovery catches), not hang.
  struct WireHeader {  // mirrors the transport's frame header
    std::uint32_t magic = 0x50545946u;
    std::uint32_t type = 0;  // kHello
    std::int32_t src = 1;
    std::int32_t dst = 0;
    std::int64_t tag = 0;
    std::uint64_t count = 0;
    std::uint32_t generation = 0;
    std::uint32_t checksum = 0;  // CRC32 of the header with this field zeroed
  };
  static_assert(sizeof(WireHeader) == 40);

  const std::vector<int> ports = reserve_ports(2);
  std::thread impostor([&] {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(ports[0]));
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int fd = -1;
    for (int attempt = 0; attempt < 500; ++attempt) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0) break;
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "never reached rank 0's listener";
    WireHeader hello;
    hello.checksum = crc32(&hello, sizeof(hello));
    ASSERT_EQ(::send(fd, &hello, sizeof(hello), 0), static_cast<ssize_t>(sizeof(hello)));
    // Die abruptly: close with no shutdown frame.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  });

  rt::TransportOptions opts = socket_options(0, ports);
  rt::Fabric fabric(rt::make_transport(opts, 2));
  EXPECT_THROW((void)fabric.recv(0, 1, rt::make_tag(rt::Phase::kTest, 0)), rt::RankFailure);
  EXPECT_TRUE(fabric.poisoned());
  impostor.join();
}

// ---- the acceptance property: bitwise parity across transports -------------

TEST(SocketTransport, GdRunIsBitwiseIdenticalToInProc) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir inproc_dir("parity_inproc");
  ScratchDir socket_dir("parity_socket");

  GdConfig base;
  base.nranks = 2;
  base.iterations = 3;
  base.passes_per_iteration = 2;

  GdConfig inproc = base;
  inproc.exec.checkpoint = ckpt::Policy{inproc_dir.path(), 1};
  const ParallelResult reference = reconstruct_gd(dataset, inproc);

  GdConfig socket = base;
  socket.exec.checkpoint = ckpt::Policy{socket_dir.path(), 1};
  std::vector<std::exception_ptr> errors;
  const ParallelResult distributed = run_gd_socket(dataset, socket, base.nranks, errors);
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Volume, cost history and the whole checkpoint tree: bitwise.
  expect_bitwise_equal(distributed.volume, reference.volume);
  ASSERT_EQ(distributed.cost.values().size(), reference.cost.values().size());
  for (usize i = 0; i < reference.cost.values().size(); ++i) {
    EXPECT_EQ(distributed.cost.values()[i], reference.cost.values()[i]) << "iteration " << i;
  }
  const auto reference_tree = tree_contents(inproc_dir.path());
  const auto distributed_tree = tree_contents(socket_dir.path());
  ASSERT_FALSE(reference_tree.empty());
  EXPECT_EQ(distributed_tree.size(), reference_tree.size());
  for (const auto& [rel, bytes] : reference_tree) {
    const auto it = distributed_tree.find(rel);
    ASSERT_NE(it, distributed_tree.end()) << "missing " << rel;
    EXPECT_EQ(it->second, bytes) << "checkpoint file differs: " << rel;
  }
}

// ---- fault parity -----------------------------------------------------------

/// The same fault-recovery scenario on either backend: rank 1 dies at
/// step 2 of a checkpointing run — every rank must observe RankFailure —
/// then a restore from the latest snapshot finishes the job and matches
/// the uninterrupted reference trajectory.
void run_fault_parity_scenario(bool socket_backend) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir(socket_backend ? "fault_socket" : "fault_inproc");
  constexpr int kRanks = 2;

  GdConfig base;
  base.nranks = kRanks;
  base.iterations = 4;

  const ParallelResult uninterrupted = reconstruct_gd(dataset, base);

  GdConfig interrupted = base;
  interrupted.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  interrupted.fault = rt::FaultPlan{1, 2};
  if (socket_backend) {
    std::vector<std::exception_ptr> errors;
    (void)run_gd_socket(dataset, interrupted, kRanks, errors);
    // *Every* rank dies with RankFailure: the victim from the injected
    // fault, the others from the poison frame it broadcast.
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_NE(errors[static_cast<usize>(r)], nullptr) << "rank " << r << " did not fail";
      EXPECT_THROW(std::rethrow_exception(errors[static_cast<usize>(r)]), rt::RankFailure)
          << "rank " << r;
    }
  } else {
    EXPECT_THROW((void)reconstruct_gd(dataset, interrupted), rt::RankFailure);
  }

  const ckpt::Snapshot snapshot = ckpt::load_latest(dir.path());
  EXPECT_EQ(snapshot.manifest.iteration, 1);

  GdConfig restored = base;
  restored.restore = &snapshot;
  ParallelResult resumed;
  if (socket_backend) {
    std::vector<std::exception_ptr> errors;
    resumed = run_gd_socket(dataset, restored, kRanks, errors);
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  } else {
    resumed = reconstruct_gd(dataset, restored);
  }

  // Same tiling, same chunking: the resumed run is the uninterrupted one.
  ASSERT_EQ(resumed.cost.values().size(), uninterrupted.cost.values().size());
  for (usize i = 0; i < resumed.cost.values().size(); ++i) {
    EXPECT_NEAR(resumed.cost.values()[i], uninterrupted.cost.values()[i],
                1e-12 * std::abs(uninterrupted.cost.values()[i]));
  }
  expect_bitwise_equal(resumed.volume, uninterrupted.volume);
}

TEST(TransportFaultParity, InProcKilledRankFailsEveryRankThenRecovers) {
  run_fault_parity_scenario(/*socket_backend=*/false);
}

TEST(TransportFaultParity, SocketKilledRankFailsEveryRankThenRecovers) {
  run_fault_parity_scenario(/*socket_backend=*/true);
}

}  // namespace
}  // namespace ptycho
