// Tests for joint object+probe refinement (library extension; standard
// practice in maximum-likelihood ptychography, e.g. the ePIE family the
// paper builds on).
#include <gtest/gtest.h>

#include <cmath>

#include "core/gradient_decomposition.hpp"
#include "core/serial_solver.hpp"
#include "data/simulate.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

/// Dataset whose stored probe is aberrated relative to the probe that
/// actually produced the measurements — the situation probe refinement
/// exists to fix.
Dataset make_miscalibrated_dataset() {
  DatasetSpec spec = repro_tiny_spec();
  const Dataset truth = make_synthetic_dataset(spec);

  DatasetSpec wrong = spec;
  wrong.probe.defocus_pm = spec.probe.defocus_pm * 1.4;  // 40% defocus error
  Dataset dataset(wrong, ScanPattern(wrong.scan), Probe(wrong.grid, wrong.probe));
  for (const auto& m : truth.measurements) dataset.measurements.push_back(m.clone());
  dataset.ground_truth = truth.ground_truth.clone();
  return dataset;
}

TEST(Probe, FieldConstructorAndClone) {
  CArray2D field(8, 8);
  field(3, 3) = cplx(1, 0);
  Probe probe{field.clone()};
  EXPECT_EQ(probe.n(), 8);
  EXPECT_NEAR(probe.total_intensity(), 1.0, 1e-6);
  Probe copy = probe.clone();
  copy.mutable_field()(3, 3) = cplx(2, 0);
  EXPECT_EQ(probe.field()(3, 3), cplx(1, 0));  // deep copy
  CArray2D bad(3, 4);
  EXPECT_THROW(Probe{std::move(bad)}, Error);
}

TEST(ProbeGradient, MatchesFiniteDifference) {
  // The probe gradient is the backpropagated wavefield at slice 0; verify
  // it against central differences of the cost wrt probe pixels.
  OpticsGrid grid;
  grid.probe_n = 16;
  grid.wavelength_pm = electron_wavelength_pm(200.0);
  ProbeParams params;
  params.defocus_pm = 1000.0;
  Probe probe(grid, params);
  MultisliceOperator op(grid);
  const index_t n = 16;
  const Rect window{0, 0, n, n};
  const index_t slices = 2;

  // Random object + mismatched measurement for a non-trivial residual.
  Rng rng(3);
  FramedVolume object(slices, window);
  FramedVolume truth(slices, window);
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        object.data(s, y, x) = cplx(1, 0) + real(0.1) * cplx(static_cast<real>(rng.normal()),
                                                             static_cast<real>(rng.normal()));
        truth.data(s, y, x) = cplx(1, 0) + real(0.1) * cplx(static_cast<real>(rng.normal()),
                                                            static_cast<real>(rng.normal()));
      }
    }
  }
  MultisliceWorkspace ws(n, slices);
  RArray2D mag(n, n);
  op.simulate_magnitude(probe, truth, window, ws, mag.view());

  FramedVolume obj_grad(slices, window);
  CArray2D probe_grad(n, n);
  View2D<cplx> pg = probe_grad.view();
  (void)op.cost_and_gradient(probe, object, window, mag.view(), obj_grad, ws, &pg);

  const double eps = 1e-3;
  for (int trial = 0; trial < 4; ++trial) {
    const index_t y = 3 + static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(n - 6)));
    const index_t x = 3 + static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(n - 6)));
    const bool imaginary = (trial % 2) == 1;
    const cplx delta = imaginary ? cplx(0, static_cast<real>(eps))
                                 : cplx(static_cast<real>(eps), 0);
    Probe plus = probe.clone();
    plus.mutable_field()(y, x) += delta;
    Probe minus = probe.clone();
    minus.mutable_field()(y, x) -= delta;
    const double fp = op.cost(plus, object, window, mag.view(), ws);
    const double fm = op.cost(minus, object, window, mag.view(), ws);
    const double numeric = (fp - fm) / (2.0 * eps);
    const cplx g = probe_grad(y, x);
    const double analytic = imaginary ? static_cast<double>(g.imag())
                                      : static_cast<double>(g.real());
    const double scale = std::max({std::abs(numeric), std::abs(analytic), 1e-3});
    EXPECT_NEAR(numeric / scale, analytic / scale, 0.15) << "trial=" << trial;
  }
}

TEST(ProbeRefinement, SerialImprovesMiscalibratedProbe) {
  const Dataset dataset = make_miscalibrated_dataset();

  SerialConfig base;
  base.iterations = 8;
  base.step = real(0.1);
  const SerialResult frozen = reconstruct_serial(dataset, base);

  SerialConfig refine = base;
  refine.refine_probe = true;
  refine.probe_warmup_iterations = 1;
  const SerialResult refined = reconstruct_serial(dataset, refine);

  // Refining the probe must reach a lower data misfit than keeping the
  // wrong probe frozen. (The object partially absorbs probe errors on this
  // noiseless toy set, so the margin is modest but must be real.)
  EXPECT_LT(refined.cost.last(), frozen.cost.last() * 0.98);

  // The refined probe's intensity pattern must move toward the true probe.
  const Probe true_probe(repro_tiny_spec().grid, repro_tiny_spec().probe);
  const auto intensity_corr = [](View2D<const cplx> a, View2D<const cplx> b) {
    double num = 0.0;
    double da = 0.0;
    double db = 0.0;
    for (index_t y = 0; y < a.rows(); ++y) {
      for (index_t x = 0; x < a.cols(); ++x) {
        const double ia = std::norm(std::complex<double>(a(y, x)));
        const double ib = std::norm(std::complex<double>(b(y, x)));
        num += ia * ib;
        da += ia * ia;
        db += ib * ib;
      }
    }
    return num / std::sqrt(da * db);
  };
  const double corr_before = intensity_corr(dataset.probe.field().view(),
                                            true_probe.field().view());
  const double corr_after =
      intensity_corr(refined.probe_field.view(), true_probe.field().view());
  EXPECT_GT(corr_after, corr_before);
  // And the refined field is returned.
  EXPECT_EQ(refined.probe_field.rows(), 32);
  EXPECT_GT(norm_sq(refined.probe_field.view()), 0.0);
  EXPECT_EQ(frozen.probe_field.rows(), 0);  // absent when disabled
}

TEST(ProbeRefinement, ProbeEnergyPreserved) {
  const Dataset dataset = make_miscalibrated_dataset();
  SerialConfig config;
  config.iterations = 6;
  config.refine_probe = true;
  const SerialResult result = reconstruct_serial(dataset, config);
  EXPECT_NEAR(norm_sq(result.probe_field.view()), dataset.probe.total_intensity(), 1e-3);
}

TEST(ProbeRefinement, GdMatchesSerialInFullBatch) {
  // Probe updates are all-reduced, so the decomposed joint solver must
  // track the serial one exactly in full-batch mode.
  const Dataset dataset = make_miscalibrated_dataset();

  SerialConfig serial_config;
  serial_config.iterations = 4;
  serial_config.mode = UpdateMode::kFullBatch;
  serial_config.refine_probe = true;
  const SerialResult serial = reconstruct_serial(dataset, serial_config);

  GdConfig gd_config;
  gd_config.nranks = 4;
  gd_config.iterations = 4;
  gd_config.mode = UpdateMode::kFullBatch;
  gd_config.refine_probe = true;
  const ParallelResult gd = reconstruct_gd(dataset, gd_config);

  ASSERT_EQ(gd.probe_field.rows(), serial.probe_field.rows());
  const double err = diff_norm_sq(gd.probe_field.view(), serial.probe_field.view());
  const double ref = norm_sq(serial.probe_field.view());
  EXPECT_LT(std::sqrt(err / ref), 5e-3);
  ASSERT_FALSE(gd.cost.empty());
  EXPECT_NEAR(gd.cost.last() / serial.cost.last(), 1.0, 1e-2);
}

TEST(ProbeRefinement, GdSgdConverges) {
  const Dataset dataset = make_miscalibrated_dataset();
  GdConfig config;
  config.nranks = 4;
  config.iterations = 8;
  config.refine_probe = true;
  const ParallelResult with_refine = reconstruct_gd(dataset, config);
  config.refine_probe = false;
  const ParallelResult without = reconstruct_gd(dataset, config);
  EXPECT_LT(with_refine.cost.last(), without.cost.last());
}

}  // namespace
}  // namespace ptycho
