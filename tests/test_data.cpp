// Tests for src/data: synthetic specimen, acquisition simulation, dataset
// descriptors and I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/random.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Specimen, TransmittanceBounded) {
  OpticsGrid grid;
  grid.probe_n = 16;
  const Rect field{0, 0, 64, 64};
  FramedVolume specimen = make_perovskite_specimen(field, 3, grid);
  for (index_t s = 0; s < 3; ++s) {
    for (index_t y = 0; y < field.h; ++y) {
      for (index_t x = 0; x < field.w; ++x) {
        EXPECT_LE(std::abs(specimen.data(s, y, x)), 1.0f + 1e-5f);
      }
    }
  }
}

TEST(Specimen, HasAtomicContrast) {
  OpticsGrid grid;
  const Rect field{0, 0, 96, 96};
  FramedVolume specimen = make_perovskite_specimen(field, 1, grid);
  // Phase varies (atoms present): max phase well above min phase.
  double max_phase = -10.0;
  double min_phase = 10.0;
  for (index_t y = 0; y < field.h; ++y) {
    for (index_t x = 0; x < field.w; ++x) {
      const double phase = std::arg(std::complex<double>(specimen.data(0, y, x)));
      max_phase = std::max(max_phase, phase);
      min_phase = std::min(min_phase, phase);
    }
  }
  EXPECT_GT(max_phase - min_phase, 0.2);
}

TEST(Specimen, DeterministicFromSeed) {
  OpticsGrid grid;
  const Rect field{0, 0, 32, 32};
  SpecimenParams params;
  params.seed = 99;
  FramedVolume a = make_perovskite_specimen(field, 2, grid, params);
  FramedVolume b = make_perovskite_specimen(field, 2, grid, params);
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < field.h; ++y) {
      for (index_t x = 0; x < field.w; ++x) EXPECT_EQ(a.data(s, y, x), b.data(s, y, x));
    }
  }
}

TEST(Specimen, SlicesDiffer) {
  OpticsGrid grid;
  const Rect field{0, 0, 64, 64};
  FramedVolume specimen = make_perovskite_specimen(field, 2, grid);
  double diff = 0.0;
  for (index_t y = 0; y < field.h; ++y) {
    for (index_t x = 0; x < field.w; ++x) {
      diff += std::norm(std::complex<double>(specimen.data(0, y, x)) -
                        std::complex<double>(specimen.data(1, y, x)));
    }
  }
  EXPECT_GT(diff, 0.0);  // per-slice jitter must decorrelate slices
}

TEST(Vacuum, AllOnes) {
  FramedVolume v = make_vacuum_volume(Rect{0, 0, 4, 4}, 2);
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < 4; ++y) {
      for (index_t x = 0; x < 4; ++x) EXPECT_EQ(v.data(s, y, x), cplx(1, 0));
    }
  }
}

TEST(Dataset, SyntheticConsistent) {
  const Dataset& dataset = testing::tiny_dataset();
  EXPECT_EQ(dataset.probe_count(), 36);
  EXPECT_EQ(dataset.measurements.size(), 36u);
  for (const auto& m : dataset.measurements) {
    EXPECT_EQ(m.rows(), 32);
    EXPECT_EQ(m.cols(), 32);
  }
  EXPECT_TRUE(dataset.ground_truth.frame.contains(dataset.field()));
  EXPECT_GT(dataset.measurement_bytes(), 0u);
  EXPECT_GT(dataset.volume_bytes(), 0u);
}

TEST(Dataset, MeasurementsAreNonNegativeAndFinite) {
  const Dataset& dataset = testing::tiny_dataset();
  for (const auto& m : dataset.measurements) {
    for (index_t y = 0; y < m.rows(); ++y) {
      for (index_t x = 0; x < m.cols(); ++x) {
        EXPECT_GE(m(y, x), 0.0f);
        EXPECT_TRUE(std::isfinite(m(y, x)));
      }
    }
  }
}

TEST(Dataset, NoiseChangesMeasurements) {
  const Dataset& clean = testing::tiny_dataset();
  const Dataset& noisy = testing::tiny_noisy_dataset();
  double diff = 0.0;
  double total = 0.0;
  for (usize i = 0; i < clean.measurements.size(); ++i) {
    const auto& a = clean.measurements[i];
    const auto& b = noisy.measurements[i];
    for (index_t y = 0; y < a.rows(); ++y) {
      for (index_t x = 0; x < a.cols(); ++x) {
        diff += std::abs(static_cast<double>(a(y, x)) - static_cast<double>(b(y, x)));
        total += static_cast<double>(a(y, x));
      }
    }
  }
  EXPECT_GT(diff, 0.0);
  EXPECT_LT(diff, total);  // noise is a perturbation, not a different signal
}

TEST(PaperDatasets, TableOneNumbers) {
  const PaperDataset small = paper_small_dataset();
  EXPECT_EQ(small.probes, 4158);
  EXPECT_EQ(small.meas_n, 1024);
  EXPECT_EQ(small.vol_y, 1536);
  EXPECT_EQ(small.slices, 100);
  EXPECT_EQ(small.scan_rows * small.scan_cols, small.probes);
  // 1024*1024*4158 float magnitudes ≈ 16.3 GiB.
  EXPECT_NEAR(static_cast<double>(small.measurement_bytes()) / kGiB, 16.24, 0.1);

  const PaperDataset large = paper_large_dataset();
  EXPECT_EQ(large.probes, 16632);
  EXPECT_EQ(large.vol_y, 3072);
  EXPECT_EQ(large.scan_rows * large.scan_cols, large.probes);
  // Volume: 3072^2*100 voxels complex64 ≈ 7.03 GiB.
  EXPECT_NEAR(static_cast<double>(large.volume_bytes()) / kGiB, 7.03, 0.05);
}

TEST(ReproSpecs, Sane) {
  for (const DatasetSpec& spec :
       {repro_tiny_spec(), repro_small_spec(), repro_large_spec()}) {
    EXPECT_EQ(spec.scan.probe_n, static_cast<index_t>(spec.grid.probe_n));
    ScanPattern scan(spec.scan);
    EXPECT_GT(scan.overlap_ratio(), 0.7) << spec.name;  // paper's regime
    EXPECT_GE(spec.slices, 3) << spec.name;
  }
}

TEST(Io, PgmWritesValidHeader) {
  RArray2D image(8, 12);
  image(3, 4) = 7.0f;
  const std::string path = temp_path("test_image.pgm");
  io::write_pgm(path, image.view());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P5");
  int w = 0;
  int h = 0;
  int maxv = 0;
  ASSERT_EQ(std::fscanf(f, "%d %d %d", &w, &h, &maxv), 3);
  EXPECT_EQ(w, 12);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxv, 255);
  std::fclose(f);
}

TEST(Io, PhasePgmHandlesComplexInput) {
  CArray2D slice(4, 4);
  slice.fill(cplx(0, 1));
  const std::string path = temp_path("test_phase.pgm");
  EXPECT_NO_THROW(io::write_phase_pgm(path, slice.view()));
}

TEST(Io, VolumeRoundtrip) {
  FramedVolume v(2, Rect{5, 6, 7, 8});
  Rng rng(77);
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < 7; ++y) {
      for (index_t x = 0; x < 8; ++x) {
        v.data(s, y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
      }
    }
  }
  const std::string path = temp_path("volume.bin");
  io::save_volume(path, v);
  FramedVolume loaded = io::load_volume(path);
  EXPECT_EQ(loaded.frame, v.frame);
  ASSERT_EQ(loaded.slices(), 2);
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < 7; ++y) {
      for (index_t x = 0; x < 8; ++x) EXPECT_EQ(loaded.data(s, y, x), v.data(s, y, x));
    }
  }
}

TEST(Io, LoadRejectsGarbage) {
  const std::string path = temp_path("garbage.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a volume", f);
  std::fclose(f);
  EXPECT_THROW((void)io::load_volume(path), Error);
  EXPECT_THROW((void)io::load_volume(temp_path("does_not_exist.bin")), Error);
}

TEST(Io, DatasetRoundtrip) {
  const Dataset& original = testing::tiny_dataset();
  const std::string path = temp_path("dataset.ptyd");
  io::save_dataset(path, original);
  const Dataset loaded = io::load_dataset(path);
  EXPECT_EQ(loaded.spec.name, original.spec.name);
  EXPECT_EQ(loaded.probe_count(), original.probe_count());
  EXPECT_EQ(loaded.field(), original.field());
  EXPECT_EQ(loaded.spec.slices, original.spec.slices);
  ASSERT_EQ(loaded.measurements.size(), original.measurements.size());
  for (usize i = 0; i < loaded.measurements.size(); ++i) {
    for (index_t y = 0; y < loaded.measurements[i].rows(); ++y) {
      for (index_t x = 0; x < loaded.measurements[i].cols(); ++x) {
        ASSERT_EQ(loaded.measurements[i](y, x), original.measurements[i](y, x))
            << i << "," << y << "," << x;
      }
    }
  }
  // The probe is rebuilt from the spec and must match the original.
  EXPECT_LT(diff_norm_sq(loaded.probe.field().view(), original.probe.field().view()), 1e-9);
}

TEST(Io, DatasetLoadRejectsGarbage) {
  const std::string path = temp_path("bad.ptyd");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("nonsense", f);
  std::fclose(f);
  EXPECT_THROW((void)io::load_dataset(path), Error);
}

TEST(Io, CsvWriterProducesRows) {
  const std::string path = temp_path("out.csv");
  {
    io::CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({1.0, 2.5});
    csv.raw_row("3,x");
  }
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "a,b\n");
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "1,2.5\n");
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "3,x\n");
  std::fclose(f);
}

}  // namespace
}  // namespace ptycho
