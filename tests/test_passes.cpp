// Property tests for the gradient-accumulation passes (paper Secs. III-V).
//
// Central invariant: decomposing per-probe gradients onto tiles and
// running the forward/backward sweep must reproduce the *exact* total
// image gradient (Eqn. 2) on every voxel of every tile's extended region,
// for any mesh and any probe overlap ratio. The direct-neighbor scheme
// must match only in the low-overlap regime (Fig. 3(d) shows why).
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "core/passes.hpp"
#include "partition/assignment.hpp"
#include "runtime/cluster.hpp"

namespace ptycho {
namespace {

// Deterministic synthetic "gradient" of probe `id` at voxel (s, y, x):
// any rank can evaluate it without communication.
cplx synthetic_gradient(index_t id, index_t s, index_t y, index_t x) {
  std::uint64_t h = static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(s) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<std::uint64_t>(y) * 0x94D049BB133111EBULL;
  h ^= static_cast<std::uint64_t>(x) * 0xD6E8FEB86659FD93ULL;
  h ^= h >> 29;
  const auto to_unit = [](std::uint64_t bits) {
    return static_cast<real>(static_cast<double>(bits & 0xFFFF) / 65536.0 - 0.5);
  };
  return cplx(to_unit(h), to_unit(h >> 16));
}

ScanPattern make_scan(index_t rows, index_t cols, index_t step, index_t probe_n) {
  ScanParams params;
  params.rows = rows;
  params.cols = cols;
  params.step_px = step;
  params.probe_n = probe_n;
  return ScanPattern(params);
}

/// Serial reference: Eqn. (2) — the sum of all per-probe gradients.
FramedVolume reference_total(const ScanPattern& scan, index_t slices) {
  FramedVolume total(slices, scan.field());
  for (const ProbeLocation& loc : scan.locations()) {
    for (index_t s = 0; s < slices; ++s) {
      for (index_t y = loc.window.y0; y < loc.window.y1(); ++y) {
        for (index_t x = loc.window.x0; x < loc.window.x1(); ++x) {
          total.at_global(s, y, x) += synthetic_gradient(loc.id, s, y, x);
        }
      }
    }
  }
  return total;
}

/// Fill a rank's accumulation buffer with its own probes' gradients.
void fill_local(const TileSpec& tile, const ScanPattern& scan, FramedVolume& acc) {
  for (index_t id : tile.own_probes) {
    const Rect w = scan[id].window;
    for (index_t s = 0; s < acc.slices(); ++s) {
      for (index_t y = w.y0; y < w.y1(); ++y) {
        for (index_t x = w.x0; x < w.x1(); ++x) {
          acc.at_global(s, y, x) += synthetic_gradient(id, s, y, x);
        }
      }
    }
  }
}

/// Max relative error of `acc` vs the reference over the tile's region.
double region_error(const FramedVolume& acc, const FramedVolume& ref, const Rect& region) {
  double err_sq = 0.0;
  double ref_sq = 0.0;
  for (index_t s = 0; s < acc.slices(); ++s) {
    for (index_t y = region.y0; y < region.y1(); ++y) {
      for (index_t x = region.x0; x < region.x1(); ++x) {
        const cplx d = acc.at_global(s, y, x) - ref.at_global(s, y, x);
        err_sq += std::norm(std::complex<double>(d));
        ref_sq += std::norm(std::complex<double>(ref.at_global(s, y, x)));
      }
    }
  }
  return ref_sq > 0 ? std::sqrt(err_sq / ref_sq) : std::sqrt(err_sq);
}

enum class Scheme { kSweep, kDirect, kAllreduce };

/// Run one synchronization round on a cluster; return the max error of any
/// rank's buffer vs the serial reference over that rank's extended region.
double run_scheme(const ScanPattern& scan, const Partition& partition, index_t slices,
                  Scheme scheme) {
  const FramedVolume ref = reference_total(scan, slices);
  rt::VirtualCluster cluster(partition.nranks());
  std::mutex mutex;
  double worst = 0.0;
  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());
    FramedVolume acc(slices, tile.extended);
    fill_local(tile, scan, acc);
    PassEngine engine(partition, ctx.rank());
    switch (scheme) {
      case Scheme::kSweep: engine.run_sweep(ctx, acc); break;
      case Scheme::kDirect: engine.run_direct(ctx, acc); break;
      case Scheme::kAllreduce: engine.run_allreduce(ctx, acc); break;
    }
    const double err = region_error(acc, ref, tile.extended);
    std::lock_guard<std::mutex> lock(mutex);
    worst = std::max(worst, err);
  });
  return worst;
}

struct PassCase {
  index_t scan_rows, scan_cols, step, probe_n;
  int mesh_rows, mesh_cols;
  index_t slices;
};

class SweepExactness : public ::testing::TestWithParam<PassCase> {};

TEST_P(SweepExactness, MatchesSerialTotalGradient) {
  const PassCase& c = GetParam();
  const ScanPattern scan = make_scan(c.scan_rows, c.scan_cols, c.step, c.probe_n);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(c.mesh_rows, c.mesh_cols);
  config.strategy = Strategy::kGradientDecomposition;
  const Partition partition(scan, config);
  validate_partition(partition, scan);
  EXPECT_LT(run_scheme(scan, partition, c.slices, Scheme::kSweep), 1e-4);
}

TEST_P(SweepExactness, AllreduceAlsoMatches) {
  const PassCase& c = GetParam();
  const ScanPattern scan = make_scan(c.scan_rows, c.scan_cols, c.step, c.probe_n);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(c.mesh_rows, c.mesh_cols);
  config.strategy = Strategy::kGradientDecomposition;
  const Partition partition(scan, config);
  EXPECT_LT(run_scheme(scan, partition, c.slices, Scheme::kAllreduce), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SweepExactness,
    ::testing::Values(
        // Low overlap (adjacent tiles only), the Fig. 2(a) geometry.
        PassCase{9, 9, 8, 16, 3, 3, 2},
        // High overlap: probe circles span non-adjacent tiles (Fig. 2(f)) —
        // this is exactly the case the forward/backward passes exist for.
        PassCase{9, 9, 2, 16, 3, 3, 2},
        PassCase{12, 12, 3, 24, 4, 4, 1},
        // Non-square meshes, degenerate rows/columns.
        PassCase{8, 10, 4, 16, 2, 5, 2},
        PassCase{6, 6, 4, 16, 1, 4, 2},
        PassCase{6, 6, 4, 16, 4, 1, 2},
        PassCase{6, 6, 4, 16, 1, 1, 2},
        // Larger mesh with moderate overlap.
        PassCase{15, 15, 4, 16, 5, 5, 2}));

TEST(DirectNeighbors, ExactOnlyForLowOverlap) {
  // Low overlap: pairwise exchange with the 8-neighborhood is exact.
  {
    const ScanPattern scan = make_scan(9, 9, 8, 16);
    PartitionConfig config;
    config.mesh = rt::Mesh2D(3, 3);
    const Partition partition(scan, config);
    EXPECT_LT(run_scheme(scan, partition, 2, Scheme::kDirect), 1e-4);
  }
  // High overlap (probe window spans several tiles): the direct scheme
  // must *fail* to assemble the total gradient — the motivation for the
  // forward/backward passes (Sec. IV).
  {
    const ScanPattern scan = make_scan(12, 12, 2, 20);
    PartitionConfig config;
    config.mesh = rt::Mesh2D(4, 4);  // every tile owns probes; windows span 3 tiles
    const Partition partition(scan, config);
    const double direct_err = run_scheme(scan, partition, 2, Scheme::kDirect);
    const double sweep_err = run_scheme(scan, partition, 2, Scheme::kSweep);
    EXPECT_GT(direct_err, 1e-3);
    EXPECT_LT(sweep_err, 1e-4);
  }
}

TEST(Sweep, RequiresEveryTileToOwnProbes) {
  // Documented limitation (see passes.hpp): if a mesh row/column owns no
  // probes, its tiles have no halo, the horizontal chains cannot carry
  // cross-column contributions through them, and the sweep is inexact.
  // The partition helper detects the condition so solvers can warn.
  const ScanPattern scan = make_scan(12, 12, 2, 20);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(5, 5);  // probe centers span [10,32] of a 42-px field
  const Partition partition(scan, config);
  EXPECT_FALSE(all_tiles_own_probes(partition));
  EXPECT_GT(run_scheme(scan, partition, 2, Scheme::kSweep), 1e-3);
  // The all-reduce fallback stays exact even then.
  EXPECT_LT(run_scheme(scan, partition, 2, Scheme::kAllreduce), 1e-4);
}

TEST(Sweep, RepeatedRoundsStayMatched) {
  // Tag bookkeeping: several sweeps in a row must not cross-match.
  const ScanPattern scan = make_scan(9, 9, 4, 16);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(3, 3);
  const Partition partition(scan, config);
  const FramedVolume ref = reference_total(scan, 2);

  rt::VirtualCluster cluster(partition.nranks());
  std::mutex mutex;
  double worst = 0.0;
  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());
    PassEngine engine(partition, ctx.rank());
    double local_worst = 0.0;
    for (int round = 0; round < 3; ++round) {
      FramedVolume acc(2, tile.extended);
      fill_local(tile, scan, acc);
      engine.run_sweep(ctx, acc);
      local_worst = std::max(local_worst, region_error(acc, ref, tile.extended));
    }
    std::lock_guard<std::mutex> lock(mutex);
    worst = std::max(worst, local_worst);
  });
  EXPECT_LT(worst, 1e-4);
}

TEST(Sweep, EmptyBuffersStayZero) {
  const ScanPattern scan = make_scan(6, 6, 4, 16);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(2, 2);
  const Partition partition(scan, config);
  rt::VirtualCluster cluster(partition.nranks());
  std::mutex mutex;
  double worst = 0.0;
  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());
    FramedVolume acc(2, tile.extended);  // all zeros
    PassEngine engine(partition, ctx.rank());
    engine.run_sweep(ctx, acc);
    double local_max = 0.0;
    for (index_t s = 0; s < 2; ++s) {
      local_max = std::max(local_max, max_abs(acc.window(s, tile.extended)));
    }
    std::lock_guard<std::mutex> lock(mutex);
    worst = std::max(worst, local_max);
  });
  EXPECT_EQ(worst, 0.0);
}

}  // namespace
}  // namespace ptycho
