// Precision-tier tests: --precision parsing, the fast dispatch column
// (FMA tables), the fast-tier bitwise contract (scalar-fma == vector-fma),
// strict-default bitwise stability, the tolerance gate of fast vs strict
// reconstructions, and cross-tier checkpoint restore.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "backend/kernels.hpp"
#include "common/random.hpp"
#include "core/convergence.hpp"
#include "core/exec_options.hpp"
#include "core/precision.hpp"
#include "core/serial_solver.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;

/// Restores strict/auto dispatch when a test exits (the tier is process
/// state, like the backend choice).
struct TierGuard {
  ~TierGuard() {
    backend::set_precision(backend::Precision::kStrict);
    backend::select("auto");
  }
};

std::vector<cplx> random_lanes(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) {
    x = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
  }
  return v;
}

bool bitwise_equal(const cplx* a, const cplx* b, usize n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(cplx)) == 0;
}

TEST(PrecisionPolicy, Parse) {
  EXPECT_EQ(parse_precision("strict"), PrecisionPolicy{});
  EXPECT_EQ(parse_precision(""), PrecisionPolicy{});
  const PrecisionPolicy fast = parse_precision("fast");
  EXPECT_EQ(fast.tier, backend::Precision::kFast);
  EXPECT_EQ(fast.storage, compact::Format::kF16);
  EXPECT_EQ(parse_precision("fast:f16"), fast);
  const PrecisionPolicy bf16 = parse_precision("fast:bf16");
  EXPECT_EQ(bf16.storage, compact::Format::kBf16);
  EXPECT_THROW((void)parse_precision("turbo"), Error);
  EXPECT_THROW((void)parse_precision("fast:f8"), Error);
  // Canonical spellings re-parse to themselves.
  for (const char* spec : {"strict", "fast:bf16", "fast:f16"}) {
    EXPECT_EQ(to_string(parse_precision(spec)), spec);
  }
}

TEST(PrecisionPolicy, ThroughExecOptions) {
  Options opts;
  opts.set("precision", "fast:f16");
  const ExecOptions exec = parse_exec_options(opts, ExecOptions{});
  EXPECT_TRUE(exec.precision.fast());
  EXPECT_EQ(exec.precision.storage, compact::Format::kF16);
  // Default: no flag -> strict, storage none.
  EXPECT_EQ(parse_exec_options(Options{}, ExecOptions{}).precision, PrecisionPolicy{});
}

TEST(PrecisionDispatch, FastTablesAndNames) {
  TierGuard guard;
  EXPECT_STREQ(backend::scalar_fma_kernels().name, "scalar-fma");
  ASSERT_TRUE(backend::select("scalar"));
  backend::set_precision(backend::Precision::kFast);
  EXPECT_EQ(backend::active_precision(), backend::Precision::kFast);
  EXPECT_STREQ(backend::active_name(), "scalar-fma");
  // The tier survives a backend re-select...
  if (backend::simd_available()) {
    ASSERT_TRUE(backend::select("simd"));
    if (backend::fma_available()) {
      EXPECT_STREQ(backend::active_name(), backend::fma_kernels()->name);
    } else {
      // ...and a CPU without vector FMA degrades fast-simd to strict-simd
      // (keeping vector width), not to scalar.
      EXPECT_STREQ(backend::active_name(), backend::simd_kernels()->name);
    }
  }
  backend::set_precision(backend::Precision::kStrict);
  EXPECT_EQ(backend::active_precision(), backend::Precision::kStrict);
  if (backend::simd_available()) {
    EXPECT_STREQ(backend::active_name(), backend::simd_kernels()->name);
  }
}

TEST(PrecisionDispatch, ApplyPrecisionMatchesSetPrecision) {
  TierGuard guard;
  apply_precision(parse_precision("fast"));
  EXPECT_EQ(backend::active_precision(), backend::Precision::kFast);
  apply_precision(PrecisionPolicy{});
  EXPECT_EQ(backend::active_precision(), backend::Precision::kStrict);
}

// The fast tier's own bitwise contract: scalar-fma and the vector FMA
// table perform identical per-element FMA sequences, so their outputs are
// bitwise equal (to each other — not to strict, which rounds differently).
TEST(PrecisionBitwise, ScalarFmaMatchesVectorFma) {
  if (!backend::fma_available()) GTEST_SKIP() << "no vector FMA on this CPU";
  const backend::Kernels& sc = backend::scalar_fma_kernels();
  const backend::Kernels& vec = *backend::fma_kernels();
  const cplx alpha(real(0.37), real(-1.21));
  for (const usize n : {usize{0}, usize{1}, usize{3}, usize{4}, usize{5}, usize{8},
                        usize{15}, usize{16}, usize{100}, usize{257}}) {
    for (const usize offset : {usize{0}, usize{1}}) {
      const std::vector<cplx> a = random_lanes(n + offset, 17 * n + 1);
      const std::vector<cplx> b = random_lanes(n + offset, 23 * n + 2);
      const std::vector<cplx> c = random_lanes(n + offset, 31 * n + 3);
      const auto check = [&](auto op) {
        std::vector<cplx> out_sc = c;
        std::vector<cplx> out_vec = c;
        op(sc, out_sc.data() + offset, a.data() + offset, b.data() + offset, n);
        op(vec, out_vec.data() + offset, a.data() + offset, b.data() + offset, n);
        EXPECT_TRUE(bitwise_equal(out_sc.data(), out_vec.data(), n + offset))
            << "n=" << n << " offset=" << offset;
      };
      check([](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx* y, usize m) {
        k.cmul_lanes(dst, x, y, m);
      });
      check([](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx* y, usize m) {
        k.cmul_conj_lanes(dst, x, y, m);
      });
      check([](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx* y, usize m) {
        k.cmul_conj_acc_lanes(dst, x, y, m);
      });
      check([alpha](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx*,
                    usize m) { k.scale_lanes(dst, x, alpha, m); });
      check([alpha](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx*,
                    usize m) { k.axpy_lanes(dst, x, alpha, m); });
      check([](const backend::Kernels& k, cplx* dst, const cplx* x, const cplx* y, usize m) {
        k.chirp_mul_lanes(dst, x, y, real(0.125), m);
      });
    }
  }
  // butterfly_block (two outputs) and potential_backprop (four operands).
  for (const usize n : {usize{5}, usize{16}, usize{100}}) {
    for (const bool conj_tw : {false, true}) {
      const std::vector<cplx> tw = random_lanes(n, 3 * n + 29);
      std::vector<cplx> a_sc = random_lanes(n, 5 * n + 1);
      std::vector<cplx> b_sc = random_lanes(n, 5 * n + 2);
      std::vector<cplx> a_vec = a_sc;
      std::vector<cplx> b_vec = b_sc;
      sc.butterfly_block(a_sc.data(), b_sc.data(), tw.data(), conj_tw, n);
      vec.butterfly_block(a_vec.data(), b_vec.data(), tw.data(), conj_tw, n);
      EXPECT_TRUE(bitwise_equal(a_sc.data(), a_vec.data(), n)) << "n=" << n;
      EXPECT_TRUE(bitwise_equal(b_sc.data(), b_vec.data(), n)) << "n=" << n;
    }
    const std::vector<cplx> psi = random_lanes(n, 7 * n + 1);
    const std::vector<cplx> trans = random_lanes(n, 7 * n + 2);
    std::vector<cplx> g_sc = random_lanes(n, 7 * n + 3);
    std::vector<cplx> out_sc = random_lanes(n, 7 * n + 4);
    std::vector<cplx> g_vec = g_sc;
    std::vector<cplx> out_vec = out_sc;
    sc.potential_backprop_lanes(out_sc.data(), g_sc.data(), psi.data(), trans.data(),
                                real(0.8), n);
    vec.potential_backprop_lanes(out_vec.data(), g_vec.data(), psi.data(), trans.data(),
                                 real(0.8), n);
    EXPECT_TRUE(bitwise_equal(out_sc.data(), out_vec.data(), n)) << "n=" << n;
    EXPECT_TRUE(bitwise_equal(g_sc.data(), g_vec.data(), n)) << "n=" << n;
  }
}

SerialResult run_serial(const PrecisionPolicy& policy, UpdateMode mode, int iterations = 4,
                        const FramedVolume* initial = nullptr) {
  SerialConfig config;
  config.iterations = iterations;
  config.step = real(0.1);
  config.mode = mode;
  config.exec.precision = policy;
  apply_precision(policy);
  return reconstruct_serial(ptycho::testing::tiny_dataset(), config, initial);
}

TEST(PrecisionSolver, StrictDefaultBitwiseStable) {
  // Running the fast tier and returning to strict must leave strict runs
  // bitwise identical — the tier is a resolved dispatch table, not
  // lingering state.
  TierGuard guard;
  const SerialResult before = run_serial(PrecisionPolicy{}, UpdateMode::kFullBatch);
  (void)run_serial(parse_precision("fast"), UpdateMode::kFullBatch);
  const SerialResult after = run_serial(PrecisionPolicy{}, UpdateMode::kFullBatch);
  ASSERT_EQ(before.volume.data.slices(), after.volume.data.slices());
  EXPECT_EQ(0, std::memcmp(before.volume.data.slice(0).data(), after.volume.data.slice(0).data(),
                           static_cast<usize>(before.volume.frame.area()) *
                               static_cast<usize>(before.volume.slices()) * sizeof(cplx)));
  EXPECT_EQ(before.cost.values(), after.cost.values());
}

struct ToleranceCase {
  const char* spec;
  double cost_eps;  ///< per-iteration relative cost deviation bound
  double rms_eps;   ///< final-volume relative RMS bound
};

class PrecisionTolerance : public ::testing::TestWithParam<ToleranceCase> {};

TEST_P(PrecisionTolerance, FastTracksStrict) {
  // The fast-tier acceptance gate: per-iteration costs within a relative
  // epsilon of the strict trajectory, and a close final volume. Both
  // update modes (full-batch exercises the FrameStack + pooled compact
  // caches; SGD the per-probe decode path).
  //
  // The compared trajectories start from one strict warm-up iteration, not
  // from the vacuum initial guess: at the perfectly flat vacuum start the
  // gradient is catastrophically ill-conditioned (a 1e-7 relative input
  // perturbation moves the full-batch gradient by ~60% L2 — measured), so
  // a cold-start comparison amplifies ANY one-ulp rounding change into
  // percent-level trajectory scatter and gates chaos, not numerics
  // quality. One update breaks the symmetry and the comparison becomes
  // meaningful; the cold-start path is still smoke-checked for
  // convergence below.
  TierGuard guard;
  const ToleranceCase c = GetParam();
  const PrecisionPolicy policy = parse_precision(c.spec);
  for (const UpdateMode mode : {UpdateMode::kFullBatch, UpdateMode::kSgd}) {
    const SerialResult head = run_serial(PrecisionPolicy{}, mode, 1);
    const SerialResult strict = run_serial(PrecisionPolicy{}, mode, 6, &head.volume);
    const SerialResult fast = run_serial(policy, mode, 6, &head.volume);
    const TrajectoryDeviation dev =
        compare_cost_trajectories(fast.cost.values(), strict.cost.values());
    EXPECT_TRUE(dev.within(c.cost_eps)) << c.spec << " mode=" << static_cast<int>(mode)
                                        << ": max relative deviation " << dev.max_relative
                                        << " at iteration " << dev.worst_iteration;
    EXPECT_LT(relative_rms(fast.volume, strict.volume), c.rms_eps)
        << c.spec << " mode=" << static_cast<int>(mode);
    // And a cold-start fast run still actually converges.
    const SerialResult cold = run_serial(policy, mode);
    EXPECT_LT(cold.cost.last(), cold.cost.first());
  }
}

// f16 ("fast") carries ~5e-4 measurement quantization and meets the 1e-3
// gate with ~30x margin; bf16's 8-bit mantissa (~4e-3 quantization) cannot
// mathematically meet 1e-3 and is gated at its documented 5e-3 bound.
INSTANTIATE_TEST_SUITE_P(Tiers, PrecisionTolerance,
                         ::testing::Values(ToleranceCase{"fast", 1e-3, 1e-3},
                                           ToleranceCase{"fast:f16", 1e-3, 1e-3},
                                           ToleranceCase{"fast:bf16", 5e-3, 1e-3}));

TEST(PrecisionCheckpoint, RestoresAcrossTiers) {
  // Snapshots always serialize f32 state, so a strict run restores into a
  // fast one and vice versa with no format shim.
  TierGuard guard;
  const std::string dir =
      (fs::temp_directory_path() / "ptycho_precision_ckpt").string();
  fs::remove_all(dir);
  const auto run_with_ckpt = [&](const PrecisionPolicy& policy, const ckpt::Snapshot* restore,
                                 int iterations) {
    SerialConfig config;
    config.iterations = iterations;
    config.step = real(0.1);
    config.mode = UpdateMode::kFullBatch;
    config.exec.precision = policy;
    config.exec.checkpoint.directory = dir;
    config.exec.checkpoint.every_chunks = 1;
    config.restore = restore;
    apply_precision(policy);
    return reconstruct_serial(ptycho::testing::tiny_dataset(), config);
  };
  for (const char* first_tier : {"strict", "fast"}) {
    fs::remove_all(dir);
    const PrecisionPolicy first = parse_precision(first_tier);
    const PrecisionPolicy second = parse_precision(
        std::string(first_tier) == "strict" ? "fast" : "strict");
    const SerialResult head = run_with_ckpt(first, nullptr, 2);
    auto snapshot = ckpt::load_newest_valid(dir, ckpt::RestoreFilter{});
    ASSERT_TRUE(snapshot.has_value()) << first_tier;
    EXPECT_EQ(snapshot->manifest.iteration, 2);
    const SerialResult resumed = run_with_ckpt(second, &*snapshot, 4);
    // Continuous trajectory: the two completed iterations carry over, the
    // other tier appends two more, and the cost keeps making progress.
    ASSERT_EQ(resumed.cost.values().size(), 4u);
    EXPECT_EQ(resumed.cost.values()[0], head.cost.values()[0]);
    EXPECT_EQ(resumed.cost.values()[1], head.cost.values()[1]);
    EXPECT_LT(resumed.cost.last(), resumed.cost.first());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ptycho
