// Tests for the paper-scale analytic models: memory (Tables II/III memory
// rows) and the discrete-event schedule simulation (runtime rows, Fig. 7).
#include <gtest/gtest.h>

#include <cmath>

#include "core/memory_model.hpp"
#include "runtime/perfmodel.hpp"

namespace ptycho {
namespace {

struct ModelBundle {
  ScanPattern scan;
  Partition partition;
  MemoryEstimate memory;
};

ModelBundle build(const PaperDataset& dataset, int gpus, Strategy strategy) {
  PaperMemoryConfig config;
  ScanPattern scan = make_paper_scan(dataset, config.eff_window_px);
  Partition partition = make_paper_partition(scan, gpus, strategy, config.hve_extra_rings);
  MemoryEstimate memory = estimate_paper_memory(partition, dataset, config);
  return ModelBundle{std::move(scan), std::move(partition), std::move(memory)};
}

double gd_runtime_minutes(const PaperDataset& dataset, int gpus, bool appp = true) {
  ModelBundle bundle = build(dataset, gpus, Strategy::kGradientDecomposition);
  rt::PerfModel model(rt::MachineModel{}, bundle.partition, dataset,
                      bundle.memory.per_rank_bytes);
  rt::GdScheduleParams params;
  params.iterations = 100;
  params.appp = appp;
  return model.simulate_gd(params).makespan_seconds / 60.0;
}

double hve_runtime_minutes(const PaperDataset& dataset, int gpus) {
  ModelBundle bundle = build(dataset, gpus, Strategy::kHaloVoxelExchange);
  rt::PerfModel model(rt::MachineModel{}, bundle.partition, dataset,
                      bundle.memory.per_rank_bytes);
  rt::HveScheduleParams params;
  params.iterations = 100;
  return model.simulate_hve(params).makespan_seconds / 60.0;
}

TEST(PaperScan, GeometryMatchesDataset) {
  const PaperDataset large = paper_large_dataset();
  const ScanPattern scan = make_paper_scan(large, 120);
  EXPECT_EQ(scan.count(), large.probes);
  // Field extent close to the reported reconstruction size.
  EXPECT_NEAR(static_cast<double>(scan.field().h), static_cast<double>(large.vol_y),
              0.05 * static_cast<double>(large.vol_y));
  EXPECT_GT(scan.overlap_ratio(), 0.7);  // the paper's acquisition regime
}

TEST(MemoryModel, ReproducesPaperScaleNumbers) {
  // Paper Table III(a): GD on the large dataset — 9.14 GB at 6 GPUs,
  // 0.18 GB at 4158 GPUs. The model is geometry-driven; we check the
  // headline cells within generous tolerance (same order, right trend).
  const PaperDataset large = paper_large_dataset();
  const double gb6 = build(large, 6, Strategy::kGradientDecomposition).memory.mean_gb();
  const double gb4158 = build(large, 4158, Strategy::kGradientDecomposition).memory.mean_gb();
  EXPECT_NEAR(gb6, 9.14, 3.0);
  EXPECT_NEAR(gb4158, 0.18, 0.15);
  // 51x reduction claim: we accept anything >= 25x.
  EXPECT_GT(gb6 / gb4158, 25.0);
}

TEST(MemoryModel, MonotoneDecreasingWithGpus) {
  const PaperDataset large = paper_large_dataset();
  double previous = 1e300;
  for (const int gpus : {6, 54, 198, 462, 924, 4158}) {
    const double gb = build(large, gpus, Strategy::kGradientDecomposition).memory.mean_gb();
    EXPECT_LT(gb, previous) << "gpus=" << gpus;
    previous = gb;
  }
}

TEST(MemoryModel, GdBelowHveEverywhere) {
  // Table II/III: GD memory < HVE memory at every GPU count (2.7x at the
  // endpoint in the paper).
  const PaperDataset large = paper_large_dataset();
  for (const int gpus : {6, 54, 198, 462}) {
    const double gd = build(large, gpus, Strategy::kGradientDecomposition).memory.mean_gb();
    const double hve = build(large, gpus, Strategy::kHaloVoxelExchange).memory.mean_gb();
    EXPECT_LT(gd, hve) << "gpus=" << gpus;
  }
  // Ratio grows with scale.
  const double ratio_small = build(large, 6, Strategy::kHaloVoxelExchange).memory.mean_gb() /
                             build(large, 6, Strategy::kGradientDecomposition).memory.mean_gb();
  const double ratio_large =
      build(large, 462, Strategy::kHaloVoxelExchange).memory.mean_gb() /
      build(large, 462, Strategy::kGradientDecomposition).memory.mean_gb();
  EXPECT_GT(ratio_large, ratio_small);
}

TEST(MemoryModel, SmallDatasetInRange) {
  // Table II(a): 2.53 GB at 6 GPUs down to 0.23 GB at 462 GPUs.
  const PaperDataset small = paper_small_dataset();
  const double gb6 = build(small, 6, Strategy::kGradientDecomposition).memory.mean_gb();
  const double gb462 = build(small, 462, Strategy::kGradientDecomposition).memory.mean_gb();
  EXPECT_NEAR(gb6, 2.53, 1.2);
  EXPECT_NEAR(gb462, 0.23, 0.2);
}

TEST(PerfModel, ProbeFlopsScaleAsNLogN) {
  const double f1024 = rt::PerfModel::probe_gradient_flops(1024, 100);
  const double f512 = rt::PerfModel::probe_gradient_flops(512, 100);
  // n^2 log n scaling: ratio should be a bit above 4.
  EXPECT_GT(f1024 / f512, 4.0);
  EXPECT_LT(f1024 / f512, 5.5);
  EXPECT_GT(rt::PerfModel::probe_gradient_flops(1024, 100),
            rt::PerfModel::probe_gradient_flops(1024, 50));
}

TEST(PerfModel, GdRuntimeDecreasesThroughLargestScale) {
  // Table III(a) shape: runtime strictly decreasing from 6 to 4158 GPUs.
  const PaperDataset large = paper_large_dataset();
  double previous = 1e300;
  for (const int gpus : {6, 54, 198, 462, 924, 4158}) {
    const double minutes = gd_runtime_minutes(large, gpus);
    EXPECT_LT(minutes, previous) << "gpus=" << gpus;
    previous = minutes;
  }
}

TEST(PerfModel, GdSuperlinearStrongScaling) {
  // The paper reports 336-518% efficiency; the model must land clearly
  // above 100% (super-linear) at mid scales.
  const PaperDataset large = paper_large_dataset();
  const double t6 = gd_runtime_minutes(large, 6);
  for (const int gpus : {54, 198, 462}) {
    const double t = gd_runtime_minutes(large, gpus);
    const double efficiency = (t6 * 6.0) / (t * gpus);
    EXPECT_GT(efficiency, 1.2) << "gpus=" << gpus;
    EXPECT_LT(efficiency, 8.0) << "gpus=" << gpus;
  }
}

TEST(PerfModel, HveRuntimeBlowsUpPastSweetSpot) {
  // Table III(b): HVE improves to ~198 GPUs then *degrades* at 462.
  const PaperDataset large = paper_large_dataset();
  const double t54 = hve_runtime_minutes(large, 54);
  const double t198 = hve_runtime_minutes(large, 198);
  const double t462 = hve_runtime_minutes(large, 462);
  EXPECT_LT(t198, t54);
  EXPECT_GT(t462, t198);
}

TEST(PerfModel, GdFasterThanHveAtScale) {
  const PaperDataset large = paper_large_dataset();
  for (const int gpus : {54, 198, 462}) {
    EXPECT_LT(gd_runtime_minutes(large, gpus), hve_runtime_minutes(large, gpus))
        << "gpus=" << gpus;
  }
}

TEST(PerfModel, ApppReducesCommunication) {
  // Fig. 7b: without APPP the communication share explodes at scale (the
  // paper reports 16x at 462 GPUs).
  const PaperDataset large = paper_large_dataset();
  ModelBundle bundle = build(large, 462, Strategy::kGradientDecomposition);
  rt::PerfModel model(rt::MachineModel{}, bundle.partition, large,
                      bundle.memory.per_rank_bytes);
  rt::GdScheduleParams params;
  params.iterations = 100;
  params.appp = true;
  const rt::BreakdownEntry with_appp = model.simulate_gd(params).mean();
  params.appp = false;
  const rt::BreakdownEntry without_appp = model.simulate_gd(params).mean();
  EXPECT_GT(without_appp.comm / std::max(with_appp.comm, 1e-9), 4.0);
  // And the overall makespan benefits.
  params.appp = true;
  const double t_with = model.simulate_gd(params).makespan_seconds;
  params.appp = false;
  const double t_without = model.simulate_gd(params).makespan_seconds;
  EXPECT_LT(t_with, t_without);
}

TEST(PerfModel, WaitTimeDecreasesWithScale) {
  // Fig. 7b: GPU waiting time declines as GPUs increase.
  const PaperDataset large = paper_large_dataset();
  ModelBundle b24 = build(large, 24, Strategy::kGradientDecomposition);
  ModelBundle b462 = build(large, 462, Strategy::kGradientDecomposition);
  rt::GdScheduleParams params;
  params.iterations = 100;
  const double wait24 =
      rt::PerfModel(rt::MachineModel{}, b24.partition, large, b24.memory.per_rank_bytes)
          .simulate_gd(params)
          .mean()
          .wait;
  const double wait462 =
      rt::PerfModel(rt::MachineModel{}, b462.partition, large, b462.memory.per_rank_bytes)
          .simulate_gd(params)
          .mean()
          .wait;
  EXPECT_GT(wait24, wait462);
}

TEST(PerfModel, CacheFactorRisesAsWorkingSetShrinks) {
  const PaperDataset large = paper_large_dataset();
  ModelBundle b6 = build(large, 6, Strategy::kGradientDecomposition);
  ModelBundle b4158 = build(large, 4158, Strategy::kGradientDecomposition);
  const double f6 =
      rt::PerfModel(rt::MachineModel{}, b6.partition, large, b6.memory.per_rank_bytes)
          .cache_factor(0);
  const double f4158 = rt::PerfModel(rt::MachineModel{}, b4158.partition, large,
                                     b4158.memory.per_rank_bytes)
                           .cache_factor(0);
  EXPECT_GT(f4158, f6);
  EXPECT_GE(f6, 1.0);
  EXPECT_LE(f4158, rt::MachineModel{}.cache_boost + 1e-9);
}

TEST(PerfModel, MessageTimeHasLatencyFloor) {
  const PaperDataset large = paper_large_dataset();
  ModelBundle bundle = build(large, 6, Strategy::kGradientDecomposition);
  rt::PerfModel model(rt::MachineModel{}, bundle.partition, large,
                      bundle.memory.per_rank_bytes);
  const rt::MachineModel machine;
  EXPECT_GE(model.message_seconds(0.0), machine.link_latency);
  EXPECT_GT(model.message_seconds(1e9), model.message_seconds(1e3));
}

TEST(PerfModel, HvePasteConstraintAtPaperScale) {
  // Table II(b): HVE cannot run past 54 GPUs on the small dataset.
  const PaperDataset small = paper_small_dataset();
  PaperMemoryConfig config;
  const ScanPattern scan = make_paper_scan(small, config.eff_window_px);
  EXPECT_TRUE(make_paper_partition(scan, 54, Strategy::kHaloVoxelExchange).hve_paste_feasible());
  EXPECT_FALSE(
      make_paper_partition(scan, 462, Strategy::kHaloVoxelExchange).hve_paste_feasible());
}

}  // namespace
}  // namespace ptycho
