// Tests for src/partition: tiling invariants across many mesh/overlap
// configurations, GD vs HVE halo behaviour, paste feasibility.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "partition/assignment.hpp"
#include "partition/overlap.hpp"
#include "partition/tilegrid.hpp"

namespace ptycho {
namespace {

ScanPattern make_scan(index_t rows, index_t cols, index_t step, index_t probe_n,
                      index_t margin = 0) {
  ScanParams params;
  params.rows = rows;
  params.cols = cols;
  params.step_px = step;
  params.probe_n = probe_n;
  params.margin_px = margin;
  return ScanPattern(params);
}

Partition make_partition(const ScanPattern& scan, int mesh_rows, int mesh_cols,
                         Strategy strategy, int rings = 2) {
  PartitionConfig config;
  config.mesh = rt::Mesh2D(mesh_rows, mesh_cols);
  config.strategy = strategy;
  config.hve_extra_rings = rings;
  return Partition(scan, config);
}

// Parameterized invariant sweep: (scan_rows, scan_cols, step, probe_n,
// mesh_rows, mesh_cols, strategy).
struct PartitionCase {
  index_t scan_rows, scan_cols, step, probe_n;
  int mesh_rows, mesh_cols;
  Strategy strategy;
};

class PartitionInvariants : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionInvariants, ValidatesAndCovers) {
  const PartitionCase& c = GetParam();
  const ScanPattern scan = make_scan(c.scan_rows, c.scan_cols, c.step, c.probe_n);
  const Partition partition = make_partition(scan, c.mesh_rows, c.mesh_cols, c.strategy);
  // validate_partition throws on any violated invariant.
  EXPECT_NO_THROW(validate_partition(partition, scan));

  // Every tile's extended rect stays inside the field.
  for (const TileSpec& tile : partition.tiles()) {
    EXPECT_TRUE(partition.field().contains(tile.extended));
  }

  // Probe conservation.
  usize owned = 0;
  for (const TileSpec& tile : partition.tiles()) owned += tile.own_probes.size();
  EXPECT_EQ(owned, static_cast<usize>(scan.count()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionInvariants,
    ::testing::Values(
        PartitionCase{9, 9, 8, 16, 3, 3, Strategy::kGradientDecomposition},
        PartitionCase{9, 9, 8, 16, 3, 3, Strategy::kHaloVoxelExchange},
        PartitionCase{9, 9, 4, 16, 3, 3, Strategy::kGradientDecomposition},  // high overlap
        PartitionCase{6, 8, 6, 12, 2, 4, Strategy::kGradientDecomposition},
        PartitionCase{6, 8, 6, 12, 2, 4, Strategy::kHaloVoxelExchange},
        PartitionCase{5, 5, 10, 20, 1, 5, Strategy::kGradientDecomposition},  // 1-row mesh
        PartitionCase{5, 5, 10, 20, 5, 1, Strategy::kGradientDecomposition},  // 1-col mesh
        PartitionCase{12, 12, 5, 16, 4, 4, Strategy::kGradientDecomposition},
        PartitionCase{12, 12, 5, 16, 2, 2, Strategy::kHaloVoxelExchange},
        PartitionCase{3, 3, 16, 16, 1, 1, Strategy::kGradientDecomposition}));  // single rank

TEST(Partition, GdHaloSmallerThanHve) {
  // The paper's central geometric claim (Fig. 3(b) vs Fig. 2(d-e)).
  const ScanPattern scan = make_scan(9, 9, 8, 16);
  const Partition gd = make_partition(scan, 3, 3, Strategy::kGradientDecomposition);
  const Partition hve = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange);
  EXPECT_LT(gd.max_halo_px(), hve.max_halo_px());
  EXPECT_LT(extended_area_ratio(gd), extended_area_ratio(hve));
  EXPECT_DOUBLE_EQ(gd.measurement_replication(), 1.0);
  EXPECT_GT(hve.measurement_replication(), 1.0);
}

TEST(Partition, HveReplicationGrowsWithRings) {
  const ScanPattern scan = make_scan(12, 12, 6, 16);
  const Partition r1 = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange, 1);
  const Partition r2 = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange, 2);
  EXPECT_GT(r2.measurement_replication(), r1.measurement_replication());
  const Partition r0 = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange, 0);
  EXPECT_DOUBLE_EQ(r0.measurement_replication(), 1.0);
}

TEST(Partition, CenterTileCanHoldAllProbes) {
  // Fig. 2(e): with few probes and many rings, the center tile replicates
  // everything.
  const ScanPattern scan = make_scan(3, 3, 8, 16);
  const Partition hve = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange, 2);
  const TileSpec& center = hve.tile(4);
  EXPECT_EQ(center.own_probes.size() + center.replicated_probes.size(),
            static_cast<usize>(scan.count()));
}

TEST(Partition, OverlapSymmetricAndConsistent) {
  const ScanPattern scan = make_scan(9, 9, 6, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kGradientDecomposition);
  for (int a = 0; a < partition.nranks(); ++a) {
    for (int b = 0; b < partition.nranks(); ++b) {
      EXPECT_EQ(partition.overlap(a, b), partition.overlap(b, a));
    }
    EXPECT_EQ(partition.overlap(a, a), partition.tile(a).extended);
  }
  // Overlap graph edges match pairwise queries.
  for (const auto& edge : partition.overlap_graph()) {
    EXPECT_EQ(edge.region, partition.overlap(edge.rank_a, edge.rank_b));
    EXPECT_FALSE(edge.region.empty());
    EXPECT_LT(edge.rank_a, edge.rank_b);
  }
}

TEST(Partition, AdjacentExtendedTilesOverlap) {
  // With >50% probe overlap the extended tiles of mesh neighbors must
  // share gradient regions (otherwise passes would be no-ops).
  const ScanPattern scan = make_scan(9, 9, 6, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kGradientDecomposition);
  const rt::Mesh2D& mesh = partition.mesh();
  for (int r = 0; r < mesh.rows(); ++r) {
    for (int c = 0; c + 1 < mesh.cols(); ++c) {
      EXPECT_FALSE(partition.overlap(mesh.rank_of(r, c), mesh.rank_of(r, c + 1)).empty());
    }
  }
}

TEST(Partition, CardinalOverlapsMatchPartition) {
  const ScanPattern scan = make_scan(9, 9, 6, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kGradientDecomposition);
  const CardinalOverlaps center = cardinal_overlaps(partition, 4);
  EXPECT_EQ(center.north_rank, 1);
  EXPECT_EQ(center.south_rank, 7);
  EXPECT_EQ(center.north, partition.overlap(4, 1));
  EXPECT_EQ(center.south, partition.overlap(4, 7));
  const CardinalOverlaps corner = cardinal_overlaps(partition, 0);
  EXPECT_EQ(corner.north_rank, -1);
  EXPECT_EQ(corner.west_rank, -1);
}

TEST(Partition, PasteScheduleCoversHalos) {
  const ScanPattern scan = make_scan(9, 9, 8, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange);
  const std::vector<PasteEdge> edges = paste_schedule(partition);
  EXPECT_FALSE(edges.empty());
  for (const PasteEdge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    // A paste strip is owned by the source and inside the destination halo.
    EXPECT_TRUE(partition.tile(e.src).owned.contains(e.region));
    EXPECT_TRUE(partition.tile(e.dst).extended.contains(e.region));
  }
  // Each ordered pair appears at most once.
  for (usize i = 0; i < edges.size(); ++i) {
    for (usize j = i + 1; j < edges.size(); ++j) {
      EXPECT_FALSE(edges[i].src == edges[j].src && edges[i].dst == edges[j].dst);
    }
  }
}

TEST(Partition, HvePasteFeasibilityBreaksAtScale) {
  // The Table II "NA" effect: growing the mesh shrinks tiles below the
  // halo width and HVE becomes infeasible, while GD stays valid.
  const ScanPattern scan = make_scan(12, 12, 6, 24);
  const Partition hve_small = make_partition(scan, 2, 2, Strategy::kHaloVoxelExchange);
  EXPECT_TRUE(hve_small.hve_paste_feasible());
  const Partition hve_large = make_partition(scan, 6, 6, Strategy::kHaloVoxelExchange);
  EXPECT_FALSE(hve_large.hve_paste_feasible());
  const Partition gd_large = make_partition(scan, 6, 6, Strategy::kGradientDecomposition);
  EXPECT_NO_THROW(validate_partition(gd_large, scan));
}

TEST(Partition, StatsReportReasonableNumbers) {
  const ScanPattern scan = make_scan(9, 9, 8, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kHaloVoxelExchange);
  const PartitionStats stats = partition_stats(partition);
  EXPECT_GE(stats.min_probes, 1);
  EXPECT_LE(stats.min_probes, stats.max_probes);
  EXPECT_GT(stats.max_replicated, 0);
  EXPECT_GT(stats.extended_area_ratio, 1.0);
  EXPECT_GT(stats.measurement_replication, 1.0);
  EXPECT_FALSE(describe(partition).empty());
}

TEST(Partition, ProbeAssignedToCenterTile) {
  const ScanPattern scan = make_scan(3, 3, 8, 16);
  const Partition partition = make_partition(scan, 3, 3, Strategy::kGradientDecomposition);
  // The middle probe of a 3x3 scan lands in the middle tile of a 3x3 mesh.
  const TileSpec& center = partition.tile(4);
  bool found = false;
  for (index_t id : center.own_probes) found |= (id == 4);
  EXPECT_TRUE(found);
}

TEST(Partition, MoreRanksThanPixelsThrows) {
  const ScanPattern scan = make_scan(2, 2, 4, 8);
  PartitionConfig config;
  config.mesh = rt::Mesh2D(64, 64);
  EXPECT_THROW(Partition(scan, config), Error);
}

}  // namespace
}  // namespace ptycho
