// data/io round-trip coverage: PGM pixel mapping (including the min==max
// mid-gray edge case), phase PGM, CSV output, and the raw binary volume
// snapshot read-back.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/io.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;

class IoScratch : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "ptycho_io_test").string();
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

struct Pgm {
  index_t width = 0;
  index_t height = 0;
  int maxval = 0;
  std::vector<unsigned char> pixels;
};

Pgm read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string magic;
  Pgm pgm;
  in >> magic >> pgm.width >> pgm.height >> pgm.maxval;
  EXPECT_EQ(magic, "P5");
  in.get();  // the single whitespace byte after maxval
  pgm.pixels.resize(static_cast<usize>(pgm.width * pgm.height));
  in.read(reinterpret_cast<char*>(pgm.pixels.data()),
          static_cast<std::streamsize>(pgm.pixels.size()));
  EXPECT_TRUE(in.good()) << "truncated " << path;
  return pgm;
}

TEST_F(IoScratch, PgmMapsMinMaxLinearly) {
  RArray2D image(2, 2);
  image(0, 0) = real(-1);
  image(0, 1) = real(0);
  image(1, 0) = real(1);
  image(1, 1) = real(3);
  io::write_pgm(path("linear.pgm"), image.view());
  const Pgm pgm = read_pgm(path("linear.pgm"));
  ASSERT_EQ(pgm.width, 2);
  ASSERT_EQ(pgm.height, 2);
  EXPECT_EQ(pgm.maxval, 255);
  EXPECT_EQ(pgm.pixels[0], 0u);    // min -> black
  EXPECT_EQ(pgm.pixels[3], 255u);  // max -> white
  // Interior values map linearly: (0 - (-1)) / 4 * 255 = 63.75 -> 63.
  EXPECT_EQ(pgm.pixels[1], 63u);
  EXPECT_EQ(pgm.pixels[2], 127u);
}

TEST_F(IoScratch, PgmConstantImageIsMidGray) {
  RArray2D image(3, 4);
  image.fill(real(7.5));
  io::write_pgm(path("flat.pgm"), image.view());
  const Pgm pgm = read_pgm(path("flat.pgm"));
  ASSERT_EQ(pgm.pixels.size(), 12u);
  for (unsigned char p : pgm.pixels) EXPECT_EQ(p, 128u);
}

TEST_F(IoScratch, PhasePgmSpansThePhaseRange) {
  CArray2D slice(1, 3);
  slice(0, 0) = cplx(1, 0);   // phase 0
  slice(0, 1) = cplx(0, 1);   // phase pi/2
  slice(0, 2) = cplx(-1, 0);  // phase pi
  io::write_phase_pgm(path("phase.pgm"), slice.view());
  const Pgm pgm = read_pgm(path("phase.pgm"));
  ASSERT_EQ(pgm.pixels.size(), 3u);
  EXPECT_EQ(pgm.pixels[0], 0u);    // smallest phase -> black
  EXPECT_EQ(pgm.pixels[2], 255u);  // largest phase -> white
  EXPECT_EQ(pgm.pixels[1], 127u);  // halfway
}

TEST_F(IoScratch, CsvHeaderAndRows) {
  {
    io::CsvWriter csv(path("series.csv"));
    csv.header({"iteration", "cost"});
    csv.row({0, 1.5});
    csv.row({1, 0.25});
    csv.raw_row("2,custom");
  }
  std::ifstream in(path("series.csv"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "iteration,cost");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.25");
  std::getline(in, line);
  EXPECT_EQ(line, "2,custom");
  EXPECT_FALSE(std::getline(in, line));
}

TEST_F(IoScratch, VolumeRoundTripPreservesFrameAndData) {
  FramedVolume volume(2, Rect{-3, 5, 4, 6});
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < 4; ++y) {
      for (index_t x = 0; x < 6; ++x) {
        volume.data(s, y, x) = cplx(static_cast<real>(s * 100 + y * 10 + x),
                                    static_cast<real>(-x));
      }
    }
  }
  io::save_volume(path("vol.bin"), volume);
  const FramedVolume loaded = io::load_volume(path("vol.bin"));
  ASSERT_EQ(loaded.frame, volume.frame);
  ASSERT_EQ(loaded.slices(), 2);
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < 4; ++y) {
      for (index_t x = 0; x < 6; ++x) {
        EXPECT_EQ(loaded.data(s, y, x), volume.data(s, y, x));
      }
    }
  }
}

TEST_F(IoScratch, VolumeLoaderRejectsGarbage) {
  {
    std::ofstream out(path("junk.bin"), std::ios::binary);
    out << "this is not a volume";
  }
  EXPECT_THROW((void)io::load_volume(path("junk.bin")), Error);
}

}  // namespace
}  // namespace ptycho
