// Pipeline / scheduler tests: the pass-graph structure, the
// WorkStealingScheduler's coverage contract, and the scheduler-equivalence
// property — reconstructions are bitwise identical across {1,2,4} threads
// x {static, work-stealing} schedulers (including odd batch remainders),
// and a fault-injected elastic restore runs through the same pipeline
// under the work-stealing scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/error.hpp"
#include "common/function_ref.hpp"
#include "common/parallel.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/passes.hpp"
#include "core/pipeline.hpp"
#include "core/serial_solver.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;
using testing::tiny_dataset;

double volume_rel_diff(const FramedVolume& a, const FramedVolume& b) {
  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        err += std::norm(std::complex<double>(a.data(s, y, x)) -
                         std::complex<double>(b.data(s, y, x)));
        den += std::norm(std::complex<double>(b.data(s, y, x)));
      }
    }
  }
  return std::sqrt(err / den);
}

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("ptycho_pipeline_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- function_ref ------------------------------------------------------------

TEST(FunctionRef, CallsThroughWithoutOwnership) {
  int hits = 0;
  const auto add = [&hits](index_t v) {
    hits += static_cast<int>(v);
    return static_cast<index_t>(hits);
  };
  function_ref<index_t(index_t)> ref = add;
  ASSERT_TRUE(static_cast<bool>(ref));
  EXPECT_EQ(ref(3), 3);
  EXPECT_EQ(ref(4), 7);
  EXPECT_EQ(hits, 7);
  function_ref<index_t(index_t)> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

// --- work-stealing scheduler -------------------------------------------------

TEST(WorkStealingScheduler, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    WorkStealingScheduler scheduler(pool);
    EXPECT_EQ(scheduler.slots(), threads);
    for (const index_t n : {index_t{1}, index_t{7}, index_t{100}, index_t{257}}) {
      std::vector<std::atomic<int>> hits(static_cast<usize>(n));
      scheduler.dispatch(0, n, [&](index_t i, int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, threads);
        hits[static_cast<usize>(i)].fetch_add(1);
      });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads << " n=" << n;
    }
  }
}

TEST(WorkStealingScheduler, HandlesOffsetsEmptyAndChunkedRanges) {
  ThreadPool pool(4);
  WorkStealingScheduler chunky(pool, /*chunk=*/3);
  int calls = 0;
  chunky.dispatch(5, 5, [&](index_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Offset range, fewer items than slots, chunk > 1: still exactly once.
  std::vector<std::atomic<int>> hits(11);
  chunky.dispatch(100, 111, [&](index_t i, int) {
    ASSERT_GE(i, 100);
    ASSERT_LT(i, 111);
    hits[static_cast<usize>(i - 100)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingScheduler, StealsFromAnUnevenLoad) {
  // Slot 0's block is made pathologically slow; the other slots must
  // finish the tail of its range for the dispatch to complete quickly.
  // Completion itself (no deadlock, full coverage) is the contract; we
  // additionally observe that some item of slot 0's initial block was
  // executed by another slot.
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(pool);
  const index_t n = 64;  // block per slot = 16
  std::vector<std::atomic<int>> executed_by(static_cast<usize>(n));
  scheduler.dispatch(0, n, [&](index_t i, int slot) {
    executed_by[static_cast<usize>(i)].store(slot + 1);
    if (i == 0) {
      // Busy-wait until someone steals from our block (or the block is
      // fully drained by thieves); bounded so a broken scheduler fails
      // the coverage assert instead of hanging.
      for (int spin = 0; spin < 2000000; ++spin) {
        bool stolen = false;
        for (index_t k = 1; k < 16; ++k) {
          const int by = executed_by[static_cast<usize>(k)].load();
          if (by != 0 && by != 1) stolen = true;
        }
        if (stolen) break;
        std::this_thread::yield();
      }
    }
  });
  int stolen_items = 0;
  for (index_t k = 1; k < 16; ++k) {
    const int by = executed_by[static_cast<usize>(k)].load();
    EXPECT_NE(by, 0) << "item " << k << " never ran";
    if (by != 1) ++stolen_items;
  }
  EXPECT_GT(stolen_items, 0) << "no item of the stalled slot's block was stolen";
}

TEST(WorkStealingScheduler, PropagatesExceptions) {
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(pool);
  EXPECT_THROW(scheduler.dispatch(0, 64,
                                  [&](index_t i, int) {
                                    if (i == 40) throw Error("boom");
                                  }),
               Error);
  // Scheduler and pool stay usable after a failed dispatch.
  std::atomic<int> ran{0};
  scheduler.dispatch(0, 16, [&](index_t, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(SweepSchedule, ParseAndPrint) {
  EXPECT_EQ(sweep_schedule_from_string("static"), SweepSchedule::kStatic);
  EXPECT_EQ(sweep_schedule_from_string("work-stealing"), SweepSchedule::kWorkStealing);
  EXPECT_EQ(sweep_schedule_from_string("ws"), SweepSchedule::kWorkStealing);
  EXPECT_THROW((void)sweep_schedule_from_string("dynamic"), Error);
  EXPECT_STREQ(to_string(SweepSchedule::kStatic), "static");
  EXPECT_STREQ(to_string(SweepSchedule::kWorkStealing), "work-stealing");
}

// --- pipeline structure ------------------------------------------------------

/// Minimal pass that records the (iteration, chunk) trace it sees.
class TracePass final : public Pass {
 public:
  explicit TracePass(std::vector<std::pair<int, int>>& chunks, std::vector<int>& iterations)
      : chunks_(chunks), iterations_(iterations) {}
  [[nodiscard]] const char* name() const override { return "trace"; }
  void on_chunk(SolverState&, const StepPoint& point) override {
    chunks_.emplace_back(point.iteration, point.chunk);
    // Item ranges must tile [0, items) in order within each iteration.
    EXPECT_LE(point.begin, point.end);
  }
  void on_iteration(SolverState&, int iteration) override { iterations_.push_back(iteration); }

 private:
  std::vector<std::pair<int, int>>& chunks_;
  std::vector<int>& iterations_;
};

TEST(ReconstructionPipeline, DrivesScheduleInOrder) {
  std::vector<std::pair<int, int>> chunks;
  std::vector<int> iterations;
  ReconstructionPipeline pipeline;
  pipeline.emplace<TracePass>(chunks, iterations);
  EXPECT_EQ(pipeline.describe(), "trace");
  EXPECT_EQ(pipeline.size(), 1u);

  SolverState state;
  PipelineSchedule schedule;
  schedule.iterations = 3;
  schedule.chunks_per_iteration = 2;
  schedule.start_iteration = 1;
  schedule.start_chunk = 1;  // exact-resume entry point
  schedule.items = 10;
  pipeline.run(state, schedule);

  const std::vector<std::pair<int, int>> want_chunks = {{1, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(chunks, want_chunks);
  const std::vector<int> want_iters = {1, 2};
  EXPECT_EQ(iterations, want_iters);
}

TEST(ReconstructionPipeline, DescribeListsPassGraphInOrder) {
  // The serial full-batch graph, as the solver builds it.
  const Dataset& dataset = tiny_dataset();
  GradientEngine engine(dataset);
  ReconstructionPipeline pipeline;
  pipeline.emplace<SweepPass>(engine, UpdateMode::kFullBatch, 1, SweepSchedule::kStatic,
                              SweepPass::Items{}, RefineSchedule{});
  pipeline.emplace<ApplyUpdatePass>(UpdateMode::kFullBatch, false);
  pipeline.emplace<ProbeRefinePass>(RefineSchedule{}, real(0.3), dataset.probe_count(), 1.0);
  pipeline.emplace<CostRecordPass>(true);
  pipeline.emplace<CheckpointPass>(ckpt::Policy{}, ckpt::RunInfo{});
  EXPECT_EQ(pipeline.describe(),
            "sweep -> update -> probe-refine -> cost-record -> checkpoint");
}

// --- scheduler equivalence ---------------------------------------------------

SerialResult run_serial(int threads, SweepSchedule schedule) {
  SerialConfig config;
  config.iterations = 3;
  // 36 probes over 3 chunks: 12-item ranges — every batch is an odd
  // remainder (12 < kBatch=16), exercising the partial-batch path.
  config.chunks_per_iteration = 3;
  config.mode = UpdateMode::kFullBatch;
  config.refine_probe = true;
  config.exec.threads = threads;
  config.exec.schedule = schedule;
  return reconstruct_serial(tiny_dataset(), config);
}

TEST(SchedulerEquivalence, SerialBitwiseAcrossThreadsAndSchedulers) {
  const SerialResult base = run_serial(1, SweepSchedule::kStatic);
  ASSERT_FALSE(base.cost.values().empty());
  for (const SweepSchedule schedule : {SweepSchedule::kStatic, SweepSchedule::kWorkStealing}) {
    for (const int threads : {1, 2, 4}) {
      const SerialResult result = run_serial(threads, schedule);
      ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
      EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                            base.volume.data.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.probe_field.bytes(), base.probe_field.bytes());
      EXPECT_EQ(std::memcmp(result.probe_field.data(), base.probe_field.data(),
                            base.probe_field.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
      for (usize i = 0; i < base.cost.values().size(); ++i) {
        EXPECT_EQ(result.cost.values()[i], base.cost.values()[i])
            << to_string(schedule) << " threads=" << threads << " iter=" << i;
      }
    }
  }
}

TEST(SchedulerEquivalence, GdBitwiseAcrossThreadsAndSchedulers) {
  const auto run = [](int threads, SweepSchedule schedule) {
    GdConfig config;
    config.nranks = 2;
    config.iterations = 2;
    config.mode = UpdateMode::kFullBatch;
    config.exec.threads = threads;
    config.exec.schedule = schedule;
    return reconstruct_gd(tiny_dataset(), config);
  };
  const ParallelResult base = run(1, SweepSchedule::kStatic);
  for (const SweepSchedule schedule : {SweepSchedule::kStatic, SweepSchedule::kWorkStealing}) {
    for (const int threads : {1, 2, 4}) {
      if (schedule == SweepSchedule::kStatic && threads == 1) continue;  // the baseline
      const ParallelResult result = run(threads, schedule);
      ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
      EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                            base.volume.data.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
      for (usize i = 0; i < base.cost.values().size(); ++i) {
        EXPECT_EQ(result.cost.values()[i], base.cost.values()[i])
            << to_string(schedule) << " threads=" << threads << " iter=" << i;
      }
    }
  }
}

// --- fault-injected elastic restore through the pipeline ---------------------

TEST(SchedulerEquivalence, ElasticRestoreMidPipelineUnderWorkStealing) {
  // A K=6 run on the work-stealing scheduler dies mid-run; the elastic
  // K'=4 restore (also work-stealing) finishes the reconstruction and
  // matches the uninterrupted static-scheduler run — checkpoint passes,
  // fault points and the restore path all live inside the same pipeline.
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("elastic_ws");

  GdConfig reference;
  reference.nranks = 6;
  reference.iterations = 6;
  reference.mode = UpdateMode::kFullBatch;
  reference.exec.threads = 2;
  ParallelResult uninterrupted = reconstruct_gd(dataset, reference);

  GdConfig interrupted = reference;
  interrupted.exec.schedule = SweepSchedule::kWorkStealing;
  interrupted.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  interrupted.fault = rt::FaultPlan{4, 4};
  EXPECT_THROW(reconstruct_gd(dataset, interrupted), rt::RankFailure);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.nranks, 6);
  EXPECT_EQ(snap.manifest.iteration, 3);

  GdConfig restored = reference;
  restored.nranks = 4;
  restored.exec.schedule = SweepSchedule::kWorkStealing;
  restored.restore = &snap;
  ParallelResult resumed = reconstruct_gd(dataset, restored);

  ASSERT_EQ(resumed.cost.values().size(), uninterrupted.cost.values().size());
  for (usize i = 0; i < resumed.cost.values().size(); ++i) {
    EXPECT_NEAR(resumed.cost.values()[i] / uninterrupted.cost.values()[i], 1.0, 1e-3)
        << "iter=" << i;
  }
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 5e-4);
}

}  // namespace
}  // namespace ptycho
