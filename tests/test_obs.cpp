// Observability subsystem: span tracer, phase ledger, metrics registry,
// log sink, and the span-derived Fig. 7b golden check.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/gradient_decomposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

using testing::tiny_dataset;

/// Every obs test runs against process-global state; this guard gives each
/// one a clean tracer/registry and restores the off state afterwards.
struct ObsGuard {
  ObsGuard() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::Tracer::instance().clear();
    obs::registry().reset();
  }
  ~ObsGuard() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::Tracer::instance().clear();
    obs::registry().reset();
  }
};

TEST(SpanTracer, NestedSpansAreOrderedAndContained) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  {
    obs::SpanScope outer("outer", obs::Phase::kNone, 3, 1);
    {
      obs::SpanScope inner("inner");
      // A little real work so the inner span has nonzero extent.
      volatile double sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(double(i));
    }
  }
  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Rings record completion order: the inner scope finishes first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  const obs::SpanRecord& inner = spans[0];
  const obs::SpanRecord& outer = spans[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_LE(inner.start_ns, inner.end_ns);
  EXPECT_EQ(outer.iteration, 3);
  EXPECT_EQ(outer.chunk, 1);
  EXPECT_EQ(inner.iteration, -1);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST(SpanTracer, LedgerAccumulatesPhaseTimeWithoutTracing) {
  ObsGuard guard;
  // Tracing stays OFF: the ledger path must work independently.
  obs::PhaseLedger ledger;
  const obs::ThreadContext previous =
      obs::set_thread_context(obs::ThreadContext{0, &ledger});
  {
    obs::SpanScope span("work", obs::Phase::kCompute);
    volatile double sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + std::sqrt(double(i));
  }
  obs::account("waited", obs::Phase::kWait, 0.25);
  obs::set_thread_context(previous);

  PhaseProfiler prof;
  ledger.merge_into(prof);
  EXPECT_GT(prof.total(phase::kCompute), 0.0);
  EXPECT_NEAR(prof.total(phase::kWait), 0.25, 1e-9);
  // Exchange-to-zero: a second merge adds nothing.
  PhaseProfiler again;
  ledger.merge_into(again);
  EXPECT_EQ(again.total(phase::kCompute), 0.0);
  // Nothing reached the tracer.
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(SpanTracer, ConcurrentEmissionAcrossThreadsAndSchedulers) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  obs::set_metrics_enabled(true);
  constexpr index_t kItems = 64;
  std::uint64_t expected = 0;
  for (int threads : {1, 2, 4}) {
    for (const bool stealing : {false, true}) {
      ThreadPool pool(threads);
      std::unique_ptr<SweepScheduler> scheduler = make_sweep_scheduler(
          stealing ? SweepSchedule::kWorkStealing : SweepSchedule::kStatic, pool);
      obs::PhaseLedger ledger;
      const obs::ThreadContext previous =
          obs::set_thread_context(obs::ThreadContext{1, &ledger});
      std::atomic<index_t> ran{0};
      scheduler->dispatch(0, kItems, [&](index_t item, int slot) {
        (void)item;
        (void)slot;
        obs::SpanScope span("item", obs::Phase::kCompute);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
      obs::set_thread_context(previous);
      EXPECT_EQ(ran.load(), kItems);
      expected += static_cast<std::uint64_t>(kItems);
      PhaseProfiler prof;
      ledger.merge_into(prof);
      EXPECT_GT(prof.total(phase::kCompute), 0.0);
    }
  }
  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().snapshot();
  std::uint64_t item_spans = 0;
  for (const obs::SpanRecord& r : spans) {
    if (std::string(r.name) == "item") {
      ++item_spans;
      // The pool workers must have adopted the submitting thread's context.
      EXPECT_EQ(r.rank, 1);
    }
  }
  EXPECT_EQ(item_spans + obs::Tracer::instance().dropped(), expected);
}

TEST(SpanTracer, ChromeTraceJsonHasRequiredFields) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  { obs::SpanScope span("alpha", obs::Phase::kCompute, 0, 2); }
  obs::instant("tick");
  const std::string json = obs::Tracer::instance().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"chunk\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Metrics, RegistrySnapshotAndReset) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::registry().counter("test_counter_total").add(3);
  obs::registry().counter("test_counter_total").add(4);
  obs::registry().gauge("test_gauge").set(2.5);
  obs::registry().histogram("test_hist").observe(1.0);
  obs::registry().histogram("test_hist").observe(3.0);

  EXPECT_EQ(obs::registry().counter("test_counter_total").value(), 7u);
  const std::string json = obs::registry().json();
  EXPECT_NE(json.find("\"schema\": \"ptycho.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test_counter_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test_gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 4"), std::string::npos);

  // reset() zeroes values but keeps references usable.
  obs::Counter& cached = obs::registry().counter("test_counter_total");
  obs::registry().reset();
  EXPECT_EQ(cached.value(), 0u);
  cached.add(1);
  EXPECT_EQ(obs::registry().counter("test_counter_total").value(), 1u);
}

TEST(Metrics, DisabledSitesDoNotCount) {
  ObsGuard guard;
  // Flag off: add/set/observe are no-ops.
  obs::registry().counter("off_counter_total").add(5);
  obs::registry().gauge("off_gauge").set(9.0);
  EXPECT_EQ(obs::registry().counter("off_counter_total").value(), 0u);
  EXPECT_EQ(obs::registry().gauge("off_gauge").value(), 0.0);
}

TEST(Metrics, SolverRunPopulatesPipelineCounters) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  GdConfig config;
  config.nranks = 2;
  config.iterations = 2;
  config.exec.threads = 1;
  (void)reconstruct_gd(tiny_dataset(), config);
  const auto probes = static_cast<std::uint64_t>(tiny_dataset().probe_count());
  EXPECT_EQ(obs::registry().counter("sweep_probes_total").value(),
            probes * 2 /*iterations*/);
  EXPECT_GT(obs::registry().counter("fft2d_transforms_total").value(), 0u);
  EXPECT_GT(obs::registry().counter("fft2d_bytes_total").value(), 0u);
  EXPECT_GT(obs::registry().counter("fabric_messages_total").value(), 0u);
  EXPECT_GT(obs::registry().counter("fabric_bytes_total").value(), 0u);
}

// The tentpole invariant: the Fig. 7b per-rank phase totals are DERIVED
// from spans, so summing the trace's phase-tagged spans per rank must
// reproduce the solver's reported breakdown.
TEST(GoldenBreakdown, TwoRankTraceMatchesProfilerTotals) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  GdConfig config;
  config.nranks = 2;
  config.iterations = 3;
  config.exec.threads = 1;
  ParallelResult result = reconstruct_gd(tiny_dataset(), config);
  ASSERT_EQ(result.breakdown.size(), 2u);
  ASSERT_EQ(obs::Tracer::instance().dropped(), 0u);

  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().snapshot();
  double compute[2] = {0, 0};
  double wait[2] = {0, 0};
  double comm[2] = {0, 0};
  for (const obs::SpanRecord& r : spans) {
    if (r.rank < 0 || r.rank > 1 || r.instant) continue;
    const double sec = static_cast<double>(r.end_ns - r.start_ns) * 1e-9;
    switch (r.phase) {
      case obs::Phase::kCompute:
      case obs::Phase::kUpdate: compute[r.rank] += sec; break;
      case obs::Phase::kWait: wait[r.rank] += sec; break;
      case obs::Phase::kComm: comm[r.rank] += sec; break;
      default: break;
    }
  }
  for (int r = 0; r < 2; ++r) {
    // Identical ns measurements feed both views, so the tolerance only
    // absorbs float summation order.
    const double eps = 1e-6;
    EXPECT_NEAR(result.breakdown[static_cast<usize>(r)].compute, compute[r], eps);
    EXPECT_NEAR(result.breakdown[static_cast<usize>(r)].wait, wait[r], eps);
    EXPECT_NEAR(result.breakdown[static_cast<usize>(r)].comm, comm[r], eps);
    EXPECT_GT(compute[r], 0.0);
  }
}

TEST(Log, SinkCapturesFormattedLinesWithRankTag) {
  std::vector<std::pair<log::Level, std::string>> lines;
  log::set_sink([&](log::Level level, const std::string& line) {
    lines.emplace_back(level, line);
  });
  const int previous = log::set_thread_rank(2);
  log::info() << "hello " << 42;
  log::set_thread_rank(-1);
  log::warn() << "plain";
  log::set_thread_rank(previous);
  log::set_sink({});

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, log::Level::kInfo);
  EXPECT_NE(lines[0].second.find("[info ]"), std::string::npos);
  EXPECT_NE(lines[0].second.find("[r2]"), std::string::npos);
  EXPECT_NE(lines[0].second.find("hello 42"), std::string::npos);
  // Monotonic timestamp prefix: "[   N.NNNs]".
  EXPECT_EQ(lines[0].second.front(), '[');
  EXPECT_NE(lines[0].second.find("s]"), std::string::npos);
  EXPECT_EQ(lines[1].first, log::Level::kWarn);
  EXPECT_EQ(lines[1].second.find("[r"), lines[1].second.find("[r2]"));  // no rank tag
  EXPECT_NE(lines[1].second.find("plain"), std::string::npos);
}

TEST(Log, ThresholdFiltersSinkToo) {
  std::vector<std::string> lines;
  log::set_sink([&](log::Level, const std::string& line) { lines.push_back(line); });
  const log::Level previous = log::threshold();
  log::set_threshold(log::Level::kWarn);
  log::info() << "dropped";
  log::warn() << "kept";
  log::set_threshold(previous);
  log::set_sink({});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

}  // namespace
}  // namespace ptycho
