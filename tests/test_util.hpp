// Shared fixtures: cached tiny datasets so each test binary builds its
// synthetic data once.
#pragma once

#include "data/simulate.hpp"

namespace ptycho::testing {

/// Tiny noiseless dataset (32-px probe, 6x6 scan, 3 slices) — seconds to
/// reconstruct, used by solver/integration tests.
inline const Dataset& tiny_dataset() {
  static const Dataset dataset = [] {
    return make_synthetic_dataset(repro_tiny_spec());
  }();
  return dataset;
}

/// Same geometry but with Poisson shot noise at a moderate dose.
inline const Dataset& tiny_noisy_dataset() {
  static const Dataset dataset = [] {
    AcquisitionParams acq;
    acq.dose_electrons = 1.0e6;
    return make_synthetic_dataset(repro_tiny_spec(), SpecimenParams{}, acq);
  }();
  return dataset;
}

}  // namespace ptycho::testing
