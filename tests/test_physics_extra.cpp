// Additional physics/FFT property tests: non-power-of-two 2-D transforms
// (the Bluestein path end-to-end), propagator composition, anisotropic
// scans, and memory-model knobs.
#include <gtest/gtest.h>

#include "ptycho.hpp"

#include <cmath>

#include "common/random.hpp"
#include "core/memory_model.hpp"
#include "fft/fft2d.hpp"
#include "physics/propagator.hpp"
#include "physics/scan.hpp"
#include "tensor/ops.hpp"

namespace ptycho {
namespace {

CArray2D random_field(index_t rows, index_t cols, std::uint64_t seed) {
  CArray2D a(rows, cols);
  Rng rng(seed);
  for (index_t y = 0; y < rows; ++y) {
    for (index_t x = 0; x < cols; ++x) {
      a(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  return a;
}

// 2-D roundtrip across mixed radix-2/Bluestein extents.
class Fft2DSizes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(Fft2DSizes, RoundtripAndParseval) {
  const auto [rows, cols] = GetParam();
  fft::Fft2D plan(static_cast<usize>(rows), static_cast<usize>(cols));
  const CArray2D original = random_field(rows, cols, 1000 + static_cast<std::uint64_t>(rows));
  CArray2D work = original.clone();

  plan.forward(work.view());
  const double freq_energy = norm_sq(work.view());
  const double time_energy = norm_sq(original.view());
  EXPECT_NEAR(freq_energy / (static_cast<double>(rows * cols) * time_energy), 1.0, 1e-3);

  plan.inverse(work.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(work.view(), original.view()) / time_energy), 5e-5);
}

INSTANTIATE_TEST_SUITE_P(MixedRadix, Fft2DSizes,
                         ::testing::Values(std::pair<index_t, index_t>{6, 8},
                                           std::pair<index_t, index_t>{9, 15},
                                           std::pair<index_t, index_t>{32, 32},
                                           std::pair<index_t, index_t>{27, 64},
                                           std::pair<index_t, index_t>{1, 17},
                                           std::pair<index_t, index_t>{13, 1}));

TEST(Propagator, ComposesOverThickness) {
  // Two dz steps equal one 2*dz step (free-space transfer functions
  // multiply) on band-limited input.
  OpticsGrid grid1;
  grid1.probe_n = 32;
  grid1.dz_pm = 125.0;
  OpticsGrid grid2 = grid1;
  grid2.dz_pm = 250.0;
  Propagator step(grid1);
  Propagator two_steps(grid2);

  // Band-limited random field.
  CArray2D psi(32, 32);
  fft::Fft2D plan(32, 32);
  Rng rng(4);
  for (index_t y = 0; y < 32; ++y) {
    for (index_t x = 0; x < 32; ++x) {
      const double ky = grid1.freq(static_cast<usize>(y));
      const double kx = grid1.freq(static_cast<usize>(x));
      const bool inside = std::sqrt(kx * kx + ky * ky) <= 0.6 * (2.0 / 3.0) * grid1.nyquist();
      psi(y, x) = inside ? cplx(static_cast<real>(rng.normal()),
                                static_cast<real>(rng.normal()))
                         : cplx{};
    }
  }
  plan.inverse(psi.view());

  CArray2D twice = psi.clone();
  step.apply(twice.view());
  step.apply(twice.view());
  CArray2D once = psi.clone();
  two_steps.apply(once.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(twice.view(), once.view()) / norm_sq(once.view())), 1e-4);
}

TEST(Propagator, InverseUndoesPropagation) {
  // P^H is the exact inverse of P on the band-limited subspace (the
  // transfer function is unimodular there).
  OpticsGrid grid;
  grid.probe_n = 16;
  Propagator prop(grid);
  CArray2D psi(16, 16);
  fft::Fft2D plan(16, 16);
  Rng rng(5);
  for (index_t y = 0; y < 16; ++y) {
    for (index_t x = 0; x < 16; ++x) {
      const double ky = grid.freq(static_cast<usize>(y));
      const double kx = grid.freq(static_cast<usize>(x));
      const bool inside = std::sqrt(kx * kx + ky * ky) <= 0.6 * (2.0 / 3.0) * grid.nyquist();
      psi(y, x) = inside ? cplx(static_cast<real>(rng.normal()),
                                static_cast<real>(rng.normal()))
                         : cplx{};
    }
  }
  plan.inverse(psi.view());
  CArray2D roundtrip = psi.clone();
  prop.apply(roundtrip.view());
  prop.apply_adjoint(roundtrip.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(roundtrip.view(), psi.view()) / norm_sq(psi.view())), 1e-4);
}

TEST(Scan, AnisotropicSteps) {
  ScanParams params;
  params.rows = 3;
  params.cols = 4;
  params.step_px = 6;     // x
  params.step_y_px = 10;  // y
  params.probe_n = 12;
  const ScanPattern scan(params);
  EXPECT_EQ(scan[0].window, (Rect{0, 0, 12, 12}));
  EXPECT_EQ(scan[1].window.x0, 6);
  EXPECT_EQ(scan[4].window.y0, 10);  // second row
  EXPECT_EQ(scan.field().h, 2 * 10 + 12);
  EXPECT_EQ(scan.field().w, 3 * 6 + 12);
}

TEST(MemoryModel, EffectiveWindowKnob) {
  // Larger effective windows -> larger halos -> more memory per rank.
  const PaperDataset dataset = paper_large_dataset();
  PaperMemoryConfig small_cfg;
  small_cfg.eff_window_px = 80;
  PaperMemoryConfig big_cfg;
  big_cfg.eff_window_px = 160;

  const ScanPattern scan_small = make_paper_scan(dataset, small_cfg.eff_window_px);
  const ScanPattern scan_big = make_paper_scan(dataset, big_cfg.eff_window_px);
  const Partition part_small =
      make_paper_partition(scan_small, 198, Strategy::kGradientDecomposition);
  const Partition part_big =
      make_paper_partition(scan_big, 198, Strategy::kGradientDecomposition);
  const double gb_small = estimate_paper_memory(part_small, dataset, small_cfg).mean_gb();
  const double gb_big = estimate_paper_memory(part_big, dataset, big_cfg).mean_gb();
  EXPECT_LT(gb_small, gb_big);
}

TEST(MemoryModel, TileBufferKnobScalesLinearly) {
  const PaperDataset dataset = paper_large_dataset();
  PaperMemoryConfig cfg6;
  cfg6.tile_buffers = 6;
  PaperMemoryConfig cfg3 = cfg6;
  cfg3.tile_buffers = 3;
  const ScanPattern scan = make_paper_scan(dataset, cfg6.eff_window_px);
  const Partition partition = make_paper_partition(scan, 54, Strategy::kGradientDecomposition);
  const double gb6 = estimate_paper_memory(partition, dataset, cfg6).mean_gb();
  const double gb3 = estimate_paper_memory(partition, dataset, cfg3).mean_gb();
  // Tile buffers dominate at this scale; halving them should nearly halve
  // the estimate (measurements/workspace are the remainder).
  EXPECT_GT(gb6 / gb3, 1.6);
  EXPECT_LT(gb6 / gb3, 2.0);
}

TEST(Umbrella, HeaderCompiles) {
  // The umbrella header must pull in a coherent API surface. (This test
  // exists so an include regression fails the suite, not a user build.)
  SUCCEED();
}

}  // namespace
}  // namespace ptycho
