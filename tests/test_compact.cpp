// Compact-storage codec tests (tensor/compact.hpp): bf16/f16 round-trip
// accuracy and monotonicity, exact behavior on denormals/inf/NaN, bitwise
// identity of the vector codec against the scalar reference, FrameStack
// round trips, and f32-vs-compact parity of the transmittance cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.hpp"
#include "data/synthetic.hpp"
#include "physics/multislice.hpp"
#include "tensor/compact.hpp"

namespace ptycho::compact {
namespace {

std::uint32_t f32_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

float bits_f32(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// A sweep of float bit patterns that hits every structurally interesting
/// region: zeros, f32/f16 denormal boundaries, the f16 overflow edge,
/// inf, NaN payloads, and a pseudorandom spread of ordinary values.
std::vector<float> adversarial_floats() {
  std::vector<float> out;
  const std::uint32_t abs_edges[] = {
      0x00000000u,              // +0
      0x00000001u, 0x007fffffu, // smallest / largest f32 denormal
      0x00800000u,              // smallest f32 normal
      0x33000000u, 0x33000001u, // f16 round-to-zero threshold (2^-25) +/- 1
      0x337ffffFu, 0x33800000u, // just below / at 2^-24 (smallest f16 denormal)
      0x387fffffu, 0x38800000u, // largest f16 denormal region / smallest normal
      0x38ffffffu, 0x39000000u,
      0x477fefffu, 0x477ff000u, // just below / at the f16 overflow tie
      0x477fffffu, 0x47800000u, // rounds to inf / above max finite f16
      0x7f7fffffu,              // f32 max finite
      0x7f800000u,              // inf
      0x7f800001u, 0x7fc00000u, 0x7fffffffu,  // sNaN, qNaN, all-ones NaN
      0x3f800000u, 0x3f800001u, 0x3f801000u, 0x3f801001u,  // RNE ties near 1.0
      0x40490fdbu,              // pi
  };
  for (std::uint32_t abs : abs_edges) {
    out.push_back(bits_f32(abs));
    out.push_back(bits_f32(abs | 0x80000000u));
  }
  Rng rng(2024);
  for (int i = 0; i < 4096; ++i) {
    // uniform() in [0,1): build bit patterns covering all exponents.
    const auto bits = static_cast<std::uint32_t>(rng.uniform() * 4294967296.0);
    out.push_back(bits_f32(bits));
  }
  for (int i = 0; i < 1024; ++i) {
    out.push_back(static_cast<float>(rng.normal()));  // the realistic regime
  }
  return out;
}

TEST(Bf16, DecodeIsExactTruncation) {
  for (std::uint32_t h = 0; h <= 0xffffu; ++h) {
    const float f = f32_from_bf16(static_cast<std::uint16_t>(h));
    EXPECT_EQ(f32_bits(f), h << 16);
  }
}

TEST(Bf16, RoundTripBounds) {
  // Finite normals: round-to-nearest loses at most half a ULP of the 8-bit
  // mantissa, i.e. relative error <= 2^-9 / (1 - 2^-9).
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto f = static_cast<float>(rng.normal() * std::exp(rng.normal() * 8.0));
    if (!std::isfinite(f) || f == 0.0F) continue;
    const float r = f32_from_bf16(bf16_from_f32(f));
    EXPECT_LE(std::abs(r - f), std::abs(f) * (1.0F / 256.0F)) << "f=" << f;
  }
}

TEST(Bf16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f32_from_bf16(bf16_from_f32(inf)), inf);
  EXPECT_EQ(f32_from_bf16(bf16_from_f32(-inf)), -inf);
  EXPECT_EQ(f32_bits(f32_from_bf16(bf16_from_f32(0.0F))), 0u);
  EXPECT_EQ(f32_bits(f32_from_bf16(bf16_from_f32(-0.0F))), 0x80000000u);
  // Every NaN stays a NaN — in particular payloads whose top bits are zero
  // must not round up into the infinity encoding.
  for (std::uint32_t payload : {0x7f800001u, 0x7f80ffffu, 0x7fc00000u, 0x7fffffffu}) {
    const std::uint16_t h = bf16_from_f32(bits_f32(payload));
    EXPECT_TRUE(std::isnan(f32_from_bf16(h))) << std::hex << payload;
  }
  // RNE: 1.0 + odd tie rounds to even.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f808000u)), 0x3f80u);  // tie, even stays
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f818000u)), 0x3f82u);  // tie, odd rounds up
}

TEST(F16, DecodeAllPayloadsRoundTrip) {
  // Every binary16 value is exactly representable in f32, so
  // encode(decode(h)) == h for every non-NaN payload; NaNs keep NaN-ness
  // and gain the quiet bit at most.
  for (std::uint32_t h = 0; h <= 0xffffu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const float f = f32_from_f16(half);
    const std::uint16_t back = f16_from_f32(f);
    const bool is_nan = (h & 0x7c00u) == 0x7c00u && (h & 0x03ffu) != 0;
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f)) << std::hex << h;
      EXPECT_EQ(back & 0x7c00u, 0x7c00u);
      EXPECT_NE(back & 0x03ffu, 0u);
    } else {
      EXPECT_EQ(back, half) << std::hex << h;
    }
  }
}

TEST(F16, EncodeBounds) {
  // Normal range: relative error <= 2^-11 / (1 - 2^-11) (half a ULP of the
  // 10-bit mantissa); subnormal range: absolute error <= 2^-25.
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto f = static_cast<float>(rng.normal() * std::exp(rng.normal() * 3.0));
    if (!std::isfinite(f)) continue;
    const float r = f32_from_f16(f16_from_f32(f));
    const float af = std::abs(f);
    if (af >= 6.104e-5F && af <= 65504.0F) {
      EXPECT_LE(std::abs(r - f), af * (1.0F / 1024.0F)) << "f=" << f;
    } else if (af < 6.104e-5F) {
      EXPECT_LE(std::abs(r - f), 3.0e-8F) << "f=" << f;
    }
  }
  // Overflow to inf above the max-finite rounding boundary.
  EXPECT_EQ(f16_from_f32(65520.0F), 0x7c00u);
  EXPECT_EQ(f16_from_f32(-65520.0F), 0xfc00u);
  EXPECT_EQ(f16_from_f32(65504.0F), 0x7bffu);  // max finite survives
}

TEST(F16, Monotone) {
  // Encoding must preserve <= on ordered finite inputs (no rounding
  // inversions across the normal/subnormal seam either).
  std::vector<float> xs = adversarial_floats();
  std::vector<float> finite;
  for (float f : xs) {
    if (std::isfinite(f)) finite.push_back(f);
  }
  std::sort(finite.begin(), finite.end());
  float prev_f16 = -std::numeric_limits<float>::infinity();
  float prev_bf16 = -std::numeric_limits<float>::infinity();
  for (float f : finite) {
    const float rf = f32_from_f16(f16_from_f32(f));
    const float rb = f32_from_bf16(bf16_from_f32(f));
    EXPECT_GE(rf, prev_f16) << "f=" << f;
    EXPECT_GE(rb, prev_bf16) << "f=" << f;
    prev_f16 = rf;
    prev_bf16 = rb;
  }
}

TEST(Codec, SimdMatchesScalarBitwise) {
  if (simd_codec() == nullptr || &codec() == &scalar_codec()) {
    GTEST_SKIP() << "no vector codec on this CPU";
  }
  const Codec& sc = scalar_codec();
  const Codec& vec = codec();
  const std::vector<float> inputs = adversarial_floats();
  // Sizes cover the empty case, sub-width, exact vector widths and tails.
  for (const usize n : {usize{0}, usize{1}, usize{7}, usize{8}, usize{15}, usize{16},
                        usize{17}, usize{64}, inputs.size()}) {
    std::vector<std::uint16_t> enc_sc(n), enc_vec(n);
    sc.encode_bf16(enc_sc.data(), inputs.data(), n);
    vec.encode_bf16(enc_vec.data(), inputs.data(), n);
    EXPECT_EQ(enc_sc, enc_vec) << "bf16 encode n=" << n;
    sc.encode_f16(enc_sc.data(), inputs.data(), n);
    vec.encode_f16(enc_vec.data(), inputs.data(), n);
    EXPECT_EQ(enc_sc, enc_vec) << "f16 encode n=" << n;
  }
  // Decode: every 16-bit payload, both formats.
  std::vector<std::uint16_t> all(65536);
  for (usize i = 0; i < all.size(); ++i) all[i] = static_cast<std::uint16_t>(i);
  std::vector<float> dec_sc(all.size()), dec_vec(all.size());
  sc.decode_bf16(dec_sc.data(), all.data(), all.size());
  vec.decode_bf16(dec_vec.data(), all.data(), all.size());
  EXPECT_EQ(0, std::memcmp(dec_sc.data(), dec_vec.data(), all.size() * sizeof(float)));
  sc.decode_f16(dec_sc.data(), all.data(), all.size());
  vec.decode_f16(dec_vec.data(), all.data(), all.size());
  EXPECT_EQ(0, std::memcmp(dec_sc.data(), dec_vec.data(), all.size() * sizeof(float)));
}

TEST(FrameStack, RoundTripAndShape) {
  Rng rng(3);
  std::vector<RArray2D> frames;
  for (int i = 0; i < 5; ++i) {
    RArray2D f(6, 9);
    for (index_t y = 0; y < 6; ++y) {
      for (index_t x = 0; x < 9; ++x) f(y, x) = static_cast<real>(rng.uniform());
    }
    frames.push_back(std::move(f));
  }
  for (Format fmt : {Format::kBf16, Format::kF16}) {
    FrameStack stack(frames, fmt);
    EXPECT_EQ(stack.count(), frames.size());
    EXPECT_EQ(stack.rows(), 6);
    EXPECT_EQ(stack.cols(), 9);
    // Half the f32 footprint, exactly.
    EXPECT_EQ(stack.bytes(), frames.size() * 6 * 9 * sizeof(std::uint16_t));
    RArray2D out(6, 9);
    for (usize i = 0; i < frames.size(); ++i) {
      stack.decode_into(i, out.view());
      for (index_t y = 0; y < 6; ++y) {
        for (index_t x = 0; x < 9; ++x) {
          const real v = frames[i](y, x);
          const real tol = fmt == Format::kF16 ? v * real(1.0F / 1024.0F) + real(3e-8)
                                               : v * real(1.0F / 256.0F);
          EXPECT_NEAR(out(y, x), v, tol) << "frame " << i;
        }
      }
    }
  }
  EXPECT_TRUE(FrameStack().empty());
}

TEST(TransmittanceCache, CompactMatchesF32) {
  // kPotential model with the cache on: the compact workspace must (a)
  // produce per-probe costs within codec tolerance of the f32 cache, and
  // (b) reuse its encoded planes across evaluations exactly like the f32
  // cache reuses its planes (identical results on a repeat evaluation).
  OpticsGrid grid;
  grid.probe_n = 16;
  MultisliceConfig config;
  config.model = ObjectModel::kPotential;
  config.sigma = real(0.8);
  MultisliceOperator op(grid, config);
  Probe probe(grid, ProbeParams{});
  const index_t n = 16;
  FramedVolume volume(3, Rect{0, 0, n, n});
  Rng rng(21);
  for (index_t s = 0; s < 3; ++s) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        volume.data(s, y, x) = real(0.1) * cplx(static_cast<real>(rng.normal()),
                                                static_cast<real>(std::abs(rng.normal())));
      }
    }
  }
  RArray2D meas(n, n);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) meas(y, x) = real(0.01);
  }

  MultisliceWorkspace ws_f32(n, 3);
  ws_f32.cache_transmittance = true;
  const double cost_f32 = op.cost(probe, volume, Rect{0, 0, n, n}, meas.view(), ws_f32);

  for (Format fmt : {Format::kBf16, Format::kF16}) {
    MultisliceWorkspace ws_c(n, 3, fmt);
    ws_c.cache_transmittance = true;
    const double first = op.cost(probe, volume, Rect{0, 0, n, n}, meas.view(), ws_c);
    // Same (revision, window): the second evaluation must hit the encoded
    // cache and reproduce the first bitwise.
    const double second = op.cost(probe, volume, Rect{0, 0, n, n}, meas.view(), ws_c);
    EXPECT_EQ(first, second) << format_name(fmt);
    EXPECT_NEAR(first, cost_f32, std::abs(cost_f32) * 2e-2) << format_name(fmt);
    // The compact cache must not have allocated the f32 planes.
    for (const CArray2D& plane : ws_c.trans) EXPECT_TRUE(plane.empty());
    EXPECT_FALSE(ws_c.trans_c.empty());
  }
}

}  // namespace
}  // namespace ptycho::compact
