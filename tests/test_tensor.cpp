// Unit tests for src/tensor: rects, arrays, views, region ops, framed
// volumes and message (de)serialization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/framed.hpp"
#include "tensor/ops.hpp"
#include "tensor/region.hpp"

namespace ptycho {
namespace {

TEST(Rect, BasicAccessors) {
  const Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.y1(), 6);
  EXPECT_EQ(r.x1(), 8);
  EXPECT_EQ(r.area(), 20);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_EQ(Rect{}.area(), 0);
}

TEST(Rect, ContainsPointAndRect) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(0, 0));
  EXPECT_TRUE(r.contains(9, 9));
  EXPECT_FALSE(r.contains(10, 0));
  EXPECT_FALSE(r.contains(0, -1));
  EXPECT_TRUE(r.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(r.contains(Rect{2, 2, 9, 8}));
  EXPECT_TRUE(r.contains(Rect{}));  // empty rect is inside everything
}

TEST(Rect, Intersection) {
  EXPECT_EQ(intersect(Rect{0, 0, 4, 4}, Rect{2, 2, 4, 4}), (Rect{2, 2, 2, 2}));
  EXPECT_TRUE(intersect(Rect{0, 0, 2, 2}, Rect{2, 2, 2, 2}).empty());
  EXPECT_TRUE(intersect(Rect{0, 0, 2, 2}, Rect{5, 5, 1, 1}).empty());
  // Intersection is commutative.
  EXPECT_EQ(intersect(Rect{1, 1, 5, 7}, Rect{3, 0, 2, 3}),
            intersect(Rect{3, 0, 2, 3}, Rect{1, 1, 5, 7}));
}

TEST(Rect, BoundingUnionAndDilate) {
  EXPECT_EQ(bounding_union(Rect{0, 0, 2, 2}, Rect{4, 4, 2, 2}), (Rect{0, 0, 6, 6}));
  EXPECT_EQ(bounding_union(Rect{}, Rect{1, 1, 2, 2}), (Rect{1, 1, 2, 2}));
  EXPECT_EQ(dilate(Rect{2, 2, 2, 2}, 1), (Rect{1, 1, 4, 4}));
}

TEST(Rect, ClipAndOverlaps) {
  EXPECT_EQ(clip(Rect{-2, -2, 5, 5}, Rect{0, 0, 10, 10}), (Rect{0, 0, 3, 3}));
  EXPECT_TRUE(overlaps(Rect{0, 0, 3, 3}, Rect{2, 2, 3, 3}));
  EXPECT_FALSE(overlaps(Rect{0, 0, 2, 2}, Rect{2, 0, 2, 2}));
}

TEST(Rect, Shifted) {
  EXPECT_EQ((Rect{1, 2, 3, 4}).shifted(10, 20), (Rect{11, 22, 3, 4}));
}

TEST(Array2D, ConstructFillIndex) {
  CArray2D a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.size(), 12);
  EXPECT_EQ(a(1, 2), cplx{});
  a(1, 2) = cplx(5, -1);
  EXPECT_EQ(a(1, 2), cplx(5, -1));
  a.fill(cplx(2, 2));
  EXPECT_EQ(a(0, 0), cplx(2, 2));
  EXPECT_EQ(a(2, 3), cplx(2, 2));
}

TEST(Array2D, MoveSemantics) {
  CArray2D a(2, 2);
  a(0, 0) = cplx(1, 0);
  CArray2D b = std::move(a);
  EXPECT_EQ(b(0, 0), cplx(1, 0));
  CArray2D c;
  c = std::move(b);
  EXPECT_EQ(c(0, 0), cplx(1, 0));
}

TEST(Array2D, CloneIsDeep) {
  CArray2D a(2, 2);
  a(0, 0) = cplx(3, 0);
  CArray2D b = a.clone();
  b(0, 0) = cplx(7, 0);
  EXPECT_EQ(a(0, 0), cplx(3, 0));
}

TEST(Array3D, SliceViews) {
  CArray3D v(3, 4, 5);
  v(2, 1, 3) = cplx(9, 9);
  View2D<cplx> s2 = v.slice(2);
  EXPECT_EQ(s2(1, 3), cplx(9, 9));
  s2(0, 0) = cplx(1, 1);
  EXPECT_EQ(v(2, 0, 0), cplx(1, 1));
  EXPECT_THROW((void)v.slice(3), Error);
}

TEST(View2D, SubViewAddressing) {
  CArray2D a(6, 6);
  for (index_t y = 0; y < 6; ++y) {
    for (index_t x = 0; x < 6; ++x) a(y, x) = cplx(static_cast<real>(y * 10 + x), 0);
  }
  View2D<cplx> sub = a.sub(2, 3, 3, 2);
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.cols(), 2);
  EXPECT_EQ(sub(0, 0), cplx(23, 0));
  EXPECT_EQ(sub(2, 1), cplx(44, 0));
  EXPECT_FALSE(sub.contiguous());
  EXPECT_THROW((void)a.sub(4, 4, 3, 3), Error);
}

TEST(Ops, CopyAddAxpyScale) {
  CArray2D a(2, 3);
  CArray2D b(2, 3);
  a.fill(cplx(2, 1));
  copy(a.view(), b.view());
  EXPECT_EQ(b(1, 2), cplx(2, 1));
  add(a.view(), b.view());
  EXPECT_EQ(b(0, 0), cplx(4, 2));
  axpy(cplx(-1, 0), a.view(), b.view());
  EXPECT_EQ(b(0, 0), cplx(2, 1));
  scale(cplx(0, 1), b.view());
  EXPECT_EQ(b(0, 0), cplx(-1, 2));
  fill(b.view(), cplx{});
  EXPECT_EQ(b(1, 1), cplx{});
}

TEST(Ops, ShapeMismatchThrows) {
  CArray2D a(2, 3);
  CArray2D b(3, 2);
  EXPECT_THROW(copy(a.view(), b.view()), Error);
  EXPECT_THROW(add(a.view(), b.view()), Error);
}

TEST(Ops, MultiplyAndConj) {
  CArray2D a(1, 2);
  CArray2D b(1, 2);
  a(0, 0) = cplx(0, 1);
  a(0, 1) = cplx(2, 0);
  b.fill(cplx(1, 1));
  multiply_inplace(a.view(), b.view());
  EXPECT_EQ(b(0, 0), cplx(-1, 1));
  EXPECT_EQ(b(0, 1), cplx(2, 2));
  b.fill(cplx(1, 1));
  multiply_conj_inplace(a.view(), b.view());
  EXPECT_EQ(b(0, 0), cplx(1, -1));  // (1+i) * conj(i) = (1+i)(-i) = 1 - i
}

TEST(Ops, Reductions) {
  CArray2D a(2, 2);
  a(0, 0) = cplx(3, 4);  // |.|^2 = 25
  a(1, 1) = cplx(0, 2);  // |.|^2 = 4
  EXPECT_DOUBLE_EQ(norm_sq(a.view()), 29.0);
  EXPECT_DOUBLE_EQ(max_abs(a.view()), 5.0);
  CArray2D b(2, 2);
  b(0, 0) = cplx(1, 0);
  const auto d = dot(a.view(), b.view());
  EXPECT_DOUBLE_EQ(d.real(), 3.0);
  EXPECT_DOUBLE_EQ(d.imag(), -4.0);  // conj(3+4i)*1
  EXPECT_DOUBLE_EQ(diff_norm_sq(a.view(), a.view()), 0.0);
  EXPECT_GT(diff_norm_sq(a.view(), b.view()), 0.0);
}

TEST(Framed, GlobalAddressing) {
  FramedVolume v(2, Rect{10, 20, 4, 5});
  v.at_global(1, 12, 24) = cplx(6, 0);
  EXPECT_EQ(v.data(1, 2, 4), cplx(6, 0));
  View2D<cplx> win = v.window(1, Rect{12, 24, 1, 1});
  EXPECT_EQ(win(0, 0), cplx(6, 0));
  EXPECT_THROW((void)v.window(0, Rect{9, 20, 2, 2}), Error);
}

TEST(Framed, RegionAddCopy) {
  FramedVolume a(2, Rect{0, 0, 4, 4});
  FramedVolume b(2, Rect{2, 2, 4, 4});
  a.data.fill(cplx(1, 0));
  b.data.fill(cplx(2, 0));
  const Rect overlap = intersect(a.frame, b.frame);
  EXPECT_EQ(overlap, (Rect{2, 2, 2, 2}));
  add_region(a, b, overlap);
  EXPECT_EQ(b.at_global(0, 2, 2), cplx(3, 0));
  EXPECT_EQ(b.at_global(0, 4, 4), cplx(2, 0));  // outside overlap untouched
  copy_region(b, a, overlap);
  EXPECT_EQ(a.at_global(1, 3, 3), cplx(3, 0));
  EXPECT_EQ(a.at_global(1, 0, 0), cplx(1, 0));
}

TEST(Framed, PackUnpackRoundtrip) {
  FramedVolume src(3, Rect{0, 0, 5, 5});
  for (index_t s = 0; s < 3; ++s) {
    for (index_t y = 0; y < 5; ++y) {
      for (index_t x = 0; x < 5; ++x) {
        src.data(s, y, x) = cplx(static_cast<real>(s * 100 + y * 10 + x), 1);
      }
    }
  }
  const Rect region{1, 2, 3, 2};
  const std::vector<cplx> payload = pack_region(src, region);
  EXPECT_EQ(payload.size(), static_cast<usize>(3 * 3 * 2));

  FramedVolume dst(3, Rect{0, 0, 5, 5});
  unpack_replace_region(payload, dst, region);
  for (index_t s = 0; s < 3; ++s) {
    for (index_t y = 1; y < 4; ++y) {
      for (index_t x = 2; x < 4; ++x) EXPECT_EQ(dst.data(s, y, x), src.data(s, y, x));
    }
  }
  EXPECT_EQ(dst.data(0, 0, 0), cplx{});

  unpack_add_region(payload, dst, region);
  EXPECT_EQ(dst.data(1, 1, 2), src.data(1, 1, 2) + src.data(1, 1, 2));

  std::vector<cplx> wrong(payload.size() + 1);
  EXPECT_THROW(unpack_replace_region(wrong, dst, region), Error);
}

TEST(Framed, NormSqRegion) {
  FramedVolume v(2, Rect{0, 0, 3, 3});
  v.data.fill(cplx(1, 0));
  EXPECT_DOUBLE_EQ(norm_sq_region(v, Rect{0, 0, 2, 2}), 8.0);  // 2 slices * 4 px
  EXPECT_DOUBLE_EQ(norm_sq_region(v, Rect{}), 0.0);
}

}  // namespace
}  // namespace ptycho
