// Unit tests for src/common: rng, options, memory hooks, timers, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/memory.hpp"
#include "common/options.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"

namespace ptycho {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    PTYCHO_CHECK(1 == 2, "one is not " << 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesOnTrue) { EXPECT_NO_THROW(PTYCHO_REQUIRE(true, "fine")); }

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(13);
  for (const double mean : {0.5, 5.0, 200.0}) {
    const int n = 20000;
    double acc = 0.0;
    for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(acc / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(23);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s0.next_u64() == s1.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha", "1.5",  "--beta=7", "--flag",
                        "--gamma",   "-2",      "pos1", "--list",   "1,2,3"};
  Options opts = Options::parse(static_cast<int>(std::size(argv)), argv);
  EXPECT_DOUBLE_EQ(opts.get_double("alpha", 0), 1.5);
  EXPECT_EQ(opts.get_int("beta", 0), 7);
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_EQ(opts.get_int("gamma", 0), -2);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
  const auto list = opts.get_int_list("list", {});
  EXPECT_EQ(list, (std::vector<long long>{1, 2, 3}));
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts = Options::parse(1, argv);
  EXPECT_EQ(opts.get_int("missing", 42), 42);
  EXPECT_EQ(opts.get_string("missing", "d"), "d");
  EXPECT_FALSE(opts.get_bool("missing", false));
  EXPECT_EQ(opts.get_int_list("missing", {9}), (std::vector<long long>{9}));
}

TEST(Options, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--x", "abc"};
  Options opts = Options::parse(3, argv);
  EXPECT_THROW((void)opts.get_int("x", 0), Error);
  EXPECT_THROW((void)opts.get_double("x", 0), Error);
  EXPECT_THROW((void)opts.get_bool("x", false), Error);
}

TEST(Memory, TrackedAllocReportsToHooks) {
  static thread_local std::size_t allocated = 0;
  static thread_local std::size_t freed = 0;
  allocated = freed = 0;
  AllocHooks hooks;
  hooks.on_alloc = [](void*, std::size_t b) { allocated += b; };
  hooks.on_free = [](void*, std::size_t b) { freed += b; };
  const AllocHooks prev = set_thread_alloc_hooks(hooks);

  void* p = tracked_alloc(1000);
  EXPECT_EQ(allocated, 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kBufferAlignment, 0u);
  tracked_free(p, 1000);
  EXPECT_EQ(freed, 1000u);

  set_thread_alloc_hooks(prev);
}

TEST(Memory, HooksAreThreadLocal) {
  static thread_local std::size_t local_bytes = 0;
  AllocHooks hooks;
  hooks.on_alloc = [](void*, std::size_t b) { local_bytes += b; };
  const AllocHooks prev = set_thread_alloc_hooks(hooks);

  std::thread other([] {
    // No hooks installed on this thread: allocation must not crash and
    // must not touch the main thread's counter.
    void* p = tracked_alloc(64);
    tracked_free(p, 64);
  });
  other.join();
  EXPECT_EQ(local_bytes, 0u);
  set_thread_alloc_hooks(prev);
}

TEST(Memory, ZeroByteAllocationValid) {
  void* p = tracked_alloc(0);
  EXPECT_NE(p, nullptr);
  tracked_free(p, 0);
}

TEST(Timer, PhaseProfilerAccumulates) {
  PhaseProfiler prof;
  prof.add("compute", 1.5);
  prof.add("compute", 0.5);
  prof.add("wait", 0.25);
  EXPECT_DOUBLE_EQ(prof.total("compute"), 2.0);
  EXPECT_DOUBLE_EQ(prof.total("wait"), 0.25);
  EXPECT_DOUBLE_EQ(prof.total("absent"), 0.0);
}

TEST(Timer, PhaseProfilerMerge) {
  PhaseProfiler a;
  PhaseProfiler b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.total("y"), 3.0);
}

TEST(Timer, ScopedPhaseRecordsElapsed) {
  PhaseProfiler prof;
  {
    ScopedPhase scope(prof, "scope");
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
    // Keep the loop from being optimized out.
    EXPECT_GE(sink, 0.0);
  }
  EXPECT_GT(prof.total("scope"), 0.0);
}

TEST(Timer, WallTimerMonotone) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Log, ThresholdFilters) {
  const log::Level prev = log::threshold();
  log::set_threshold(log::Level::kOff);
  log::info() << "suppressed message";
  log::set_threshold(log::Level::kDebug);
  EXPECT_EQ(log::threshold(), log::Level::kDebug);
  log::set_threshold(prev);
}

}  // namespace
}  // namespace ptycho
