// Tests for src/runtime: fabric semantics, cluster execution, memory
// tracking per rank, collectives, mesh topology.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/topology.hpp"
#include "tensor/array.hpp"

namespace ptycho::rt {
namespace {

TEST(Fabric, SendThenReceive) {
  Fabric fabric(2);
  fabric.isend(0, 1, make_tag(Phase::kTest, 0), {cplx(1, 2), cplx(3, 4)});
  double waited = -1.0;
  const std::vector<cplx> got = fabric.recv(1, 0, make_tag(Phase::kTest, 0), &waited);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], cplx(1, 2));
  EXPECT_EQ(got[1], cplx(3, 4));
  EXPECT_GE(waited, 0.0);
}

TEST(Fabric, FifoPerSourceAndTag) {
  Fabric fabric(2);
  fabric.isend(0, 1, make_tag(Phase::kTest, 7), {cplx(1, 0)});
  fabric.isend(0, 1, make_tag(Phase::kTest, 7), {cplx(2, 0)});
  EXPECT_EQ(fabric.recv(1, 0, make_tag(Phase::kTest, 7))[0], cplx(1, 0));
  EXPECT_EQ(fabric.recv(1, 0, make_tag(Phase::kTest, 7))[0], cplx(2, 0));
}

TEST(Fabric, TagsDoNotCross) {
  Fabric fabric(2);
  fabric.isend(0, 1, make_tag(Phase::kTest, 0), {cplx(10, 0)});
  fabric.isend(0, 1, make_tag(Phase::kCost, 0), {cplx(20, 0)});
  // Receive in the opposite order of sending: matching is by tag.
  EXPECT_EQ(fabric.recv(1, 0, make_tag(Phase::kCost, 0))[0], cplx(20, 0));
  EXPECT_EQ(fabric.recv(1, 0, make_tag(Phase::kTest, 0))[0], cplx(10, 0));
}

TEST(Fabric, SourcesDoNotCross) {
  Fabric fabric(3);
  fabric.isend(0, 2, make_tag(Phase::kTest, 0), {cplx(1, 0)});
  fabric.isend(1, 2, make_tag(Phase::kTest, 0), {cplx(2, 0)});
  EXPECT_EQ(fabric.recv(2, 1, make_tag(Phase::kTest, 0))[0], cplx(2, 0));
  EXPECT_EQ(fabric.recv(2, 0, make_tag(Phase::kTest, 0))[0], cplx(1, 0));
}

TEST(Fabric, RequestTestAndTake) {
  Fabric fabric(2);
  RecvRequest req = fabric.irecv(1, 0, make_tag(Phase::kTest, 3));
  EXPECT_FALSE(req.test());
  fabric.isend(0, 1, make_tag(Phase::kTest, 3), {cplx(5, 5)});
  EXPECT_TRUE(req.test());
  EXPECT_EQ(req.take()[0], cplx(5, 5));
  EXPECT_THROW((void)req.take(), Error);  // double take
}

TEST(Fabric, StatsCountBytesAndMessages) {
  Fabric fabric(2);
  fabric.isend(0, 1, make_tag(Phase::kTest, 0), std::vector<cplx>(10));
  fabric.isend(0, 1, make_tag(Phase::kTest, 1), std::vector<cplx>(5));
  const FabricStats stats = fabric.stats();
  EXPECT_EQ(stats.messages_sent[0], 2u);
  EXPECT_EQ(stats.bytes_sent[0], 15 * sizeof(cplx));
  EXPECT_EQ(stats.messages_sent[1], 0u);
}

TEST(Fabric, InvalidRankThrows) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.isend(0, 5, make_tag(Phase::kTest, 0), {}), Error);
  EXPECT_THROW(fabric.isend(-1, 0, make_tag(Phase::kTest, 0), {}), Error);
  EXPECT_THROW((void)fabric.irecv(0, 9, make_tag(Phase::kTest, 0)), Error);
}

TEST(Cluster, RanksRunAndCommunicate) {
  VirtualCluster cluster(4);
  std::atomic<int> sum{0};
  cluster.run([&](RankContext& ctx) {
    // Ring: send my rank to the next rank, receive from the previous.
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    ctx.isend(next, make_tag(Phase::kTest, 0), {cplx(static_cast<real>(ctx.rank()), 0)});
    const std::vector<cplx> got = ctx.recv(prev, make_tag(Phase::kTest, 0));
    sum += static_cast<int>(got[0].real());
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(Cluster, ExceptionPropagates) {
  VirtualCluster cluster(3);
  EXPECT_THROW(cluster.run([](RankContext& ctx) {
    if (ctx.rank() == 1) throw Error("rank 1 failed");
  }),
               Error);
}

TEST(Cluster, BarrierSynchronizes) {
  VirtualCluster cluster(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  cluster.run([&](RankContext& ctx) {
    before.fetch_add(1);
    ctx.barrier();
    if (before.load() != 4) violated = true;
    ctx.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Cluster, PerRankMemoryTracking) {
  VirtualCluster cluster(3);
  cluster.run([](RankContext& ctx) {
    // Rank r allocates (r+1) * 1000 complex values.
    const index_t n = 1000 * (ctx.rank() + 1);
    CArray2D big(n, 1);
    // Peak must reflect the live allocation.
    (void)big;
  });
  EXPECT_GE(cluster.mem(0).peak(), 1000 * sizeof(cplx));
  EXPECT_GE(cluster.mem(2).peak(), 3000 * sizeof(cplx));
  EXPECT_GT(cluster.mem(2).peak(), cluster.mem(0).peak());
  EXPECT_EQ(cluster.mem(1).current(), 0u);  // freed after run
  EXPECT_GT(cluster.mean_peak_bytes(), 0.0);
  EXPECT_GE(cluster.max_peak_bytes(), cluster.mem(2).peak());
}

TEST(Cluster, ResetInstrumentation) {
  VirtualCluster cluster(2);
  cluster.run([](RankContext&) { CArray2D a(64, 64); });
  EXPECT_GT(cluster.max_peak_bytes(), 0u);
  cluster.reset_instrumentation();
  EXPECT_EQ(cluster.max_peak_bytes(), 0u);
}

TEST(Cluster, RngStreamsDifferPerRank) {
  VirtualCluster cluster(2);
  std::atomic<std::uint64_t> v0{0};
  std::atomic<std::uint64_t> v1{0};
  cluster.run([&](RankContext& ctx) {
    const std::uint64_t v = ctx.rng().next_u64();
    (ctx.rank() == 0 ? v0 : v1).store(v);
  });
  EXPECT_NE(v0.load(), v1.load());
}

class AllreduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSizes, VectorSumMatches) {
  const int nranks = GetParam();
  VirtualCluster cluster(nranks);
  std::atomic<int> failures{0};
  cluster.run([&](RankContext& ctx) {
    std::vector<cplx> buf(16);
    for (usize i = 0; i < buf.size(); ++i) {
      buf[i] = cplx(static_cast<real>(ctx.rank() + 1), static_cast<real>(i));
    }
    allreduce_sum(ctx, buf, Phase::kTest, 42);
    const double expected_re = static_cast<double>(nranks) * (nranks + 1) / 2.0;
    for (usize i = 0; i < buf.size(); ++i) {
      const double re = static_cast<double>(buf[i].real());
      const double im = static_cast<double>(buf[i].imag());
      if (std::abs(re - expected_re) > 1e-4 ||
          std::abs(im - static_cast<double>(i * static_cast<usize>(nranks))) > 1e-4) {
        failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceSizes, ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(Collectives, ScalarAllreduce) {
  VirtualCluster cluster(5);
  std::atomic<int> failures{0};
  cluster.run([&](RankContext& ctx) {
    const double total =
        allreduce_sum_scalar(ctx, static_cast<double>(ctx.rank() + 1), Phase::kTest, 43);
    if (std::abs(total - 15.0) > 1e-4) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Collectives, RepeatedCallsStayMatched) {
  VirtualCluster cluster(4);
  std::atomic<int> failures{0};
  cluster.run([&](RankContext& ctx) {
    for (int round = 0; round < 10; ++round) {
      const double total = allreduce_sum_scalar(ctx, 1.0, Phase::kTest, 44);
      if (std::abs(total - 4.0) > 1e-4) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Mesh2D, CoordinateMapping) {
  Mesh2D mesh(3, 4);
  EXPECT_EQ(mesh.size(), 12);
  EXPECT_EQ(mesh.rank_of(1, 2), 6);
  EXPECT_EQ(mesh.row_of(6), 1);
  EXPECT_EQ(mesh.col_of(6), 2);
  EXPECT_TRUE(mesh.valid(2, 3));
  EXPECT_FALSE(mesh.valid(3, 0));
  EXPECT_FALSE(mesh.valid(0, -1));
}

TEST(Mesh2D, Neighbors8Counts) {
  Mesh2D mesh(3, 3);
  EXPECT_EQ(mesh.neighbors8(4).size(), 8u);  // center
  EXPECT_EQ(mesh.neighbors8(0).size(), 3u);  // corner
  EXPECT_EQ(mesh.neighbors8(1).size(), 5u);  // edge
}

TEST(Mesh2D, CardinalDirections) {
  Mesh2D mesh(3, 3);
  const Mesh2D::Cardinal c = mesh.cardinal(4);
  EXPECT_EQ(c.north, 1);
  EXPECT_EQ(c.south, 7);
  EXPECT_EQ(c.west, 3);
  EXPECT_EQ(c.east, 5);
  const Mesh2D::Cardinal corner = mesh.cardinal(0);
  EXPECT_EQ(corner.north, -1);
  EXPECT_EQ(corner.west, -1);
  EXPECT_EQ(corner.south, 3);
  EXPECT_EQ(corner.east, 1);
}

TEST(Mesh2D, ChooseMeshFactorizations) {
  EXPECT_EQ(choose_mesh(6, 1.0).size(), 6);
  const Mesh2D m6 = choose_mesh(6, 1.0);
  EXPECT_TRUE((m6.rows() == 2 && m6.cols() == 3) || (m6.rows() == 3 && m6.cols() == 2));
  const Mesh2D m12 = choose_mesh(12, 1.0);
  EXPECT_TRUE(m12.rows() == 3 || m12.rows() == 4);
  // Prime counts degrade to 1 x n but honor aspect when tall.
  const Mesh2D m7 = choose_mesh(7, 10.0);
  EXPECT_EQ(m7.rows(), 7);
  EXPECT_EQ(m7.cols(), 1);
  // Paper's 4158 GPUs = 54 x 77 (or 77 x 54 for wide aspect).
  const Mesh2D m4158 = choose_mesh(4158, 1.0);
  EXPECT_EQ(m4158.size(), 4158);
  EXPECT_LE(std::max(m4158.rows(), m4158.cols()), 77);
}

}  // namespace
}  // namespace ptycho::rt
