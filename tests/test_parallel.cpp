// Tests for the intra-rank parallel layer: ThreadPool semantics, the
// BatchSweeper's ordered reduction, the bitwise thread-count-independence
// of full-batch reconstruction, and the transmittance cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/reconstructor.hpp"
#include "core/sweep.hpp"
#include "data/synthetic.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

using testing::tiny_dataset;

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(0, 100, [&](index_t i, int slot) {
      ASSERT_GE(slot, 0);
      ASSERT_LT(slot, threads);
      hits[static_cast<usize>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SlotAssignmentIsStatic) {
  // Item -> slot must depend only on the range and slot count, never on
  // scheduling: slot s owns the contiguous block [s*chunk, (s+1)*chunk).
  ThreadPool pool(4);
  std::vector<int> slot_of(103, -1);
  pool.parallel_for(0, 103, [&](index_t i, int slot) {
    slot_of[static_cast<usize>(i)] = slot;
  });
  const index_t chunk = (103 + 4 - 1) / 4;  // 26
  for (index_t i = 0; i < 103; ++i) {
    EXPECT_EQ(slot_of[static_cast<usize>(i)], static_cast<int>(i / chunk)) << "i=" << i;
  }
}

TEST(ThreadPool, EmptyAndSingleItemRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(5, 5, [&](index_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](index_t i, int) {
    EXPECT_EQ(i, 7);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [&](index_t i, int) {
                                   if (i == 40) throw Error("boom");
                                 }),
               Error);
  // The pool must stay usable after a failed region.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 16, [&](index_t, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, HardwareThreadsIsPositive) { EXPECT_GE(ThreadPool::hardware_threads(), 1); }

// --- BatchSweeper ------------------------------------------------------------

/// Sequential reference: the historical per-probe loop of the serial
/// solver's full-batch sweep.
double reference_sweep(const Dataset& dataset, const FramedVolume& volume,
                       AccumulationBuffer& accbuf, CArray2D* probe_grad) {
  GradientEngine engine(dataset);
  MultisliceWorkspace ws = engine.make_workspace();
  const auto n = static_cast<index_t>(dataset.spec.grid.probe_n);
  FramedVolume grad(dataset.spec.slices, Rect{0, 0, n, n});
  double cost = 0.0;
  for (index_t i = 0; i < dataset.probe_count(); ++i) {
    grad.frame = engine.window(i);
    grad.data.fill(cplx{});
    View2D<cplx> pg_view;
    View2D<cplx>* pg = nullptr;
    if (probe_grad != nullptr) {
      pg_view = probe_grad->view();
      pg = &pg_view;
    }
    cost += engine.probe_gradient_joint(i, dataset.probe,
                                        dataset.measurements[static_cast<usize>(i)].view(),
                                        volume, grad, ws, pg);
    accbuf.accumulate(grad, grad.frame);
  }
  return cost;
}

TEST(BatchSweeper, MatchesSequentialLoopBitwise) {
  const Dataset& dataset = tiny_dataset();
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);

  AccumulationBuffer ref_buf(dataset.spec.slices, volume.frame);
  CArray2D ref_pg(dataset.probe.n(), dataset.probe.n());
  const double ref_cost = reference_sweep(dataset, volume, ref_buf, &ref_pg);

  for (const int threads : {1, 3}) {
    GradientEngine engine(dataset);
    ThreadPool pool(threads);
    StaticScheduler scheduler(pool);
    BatchSweeper sweeper(engine, scheduler);
    AccumulationBuffer buf(dataset.spec.slices, volume.frame);
    CArray2D pg(dataset.probe.n(), dataset.probe.n());
    View2D<cplx> pg_view = pg.view();
    double cost = 0.0;
    sweeper.sweep(
        0, dataset.probe_count(), dataset.probe, volume, buf, cost, &pg_view,
        [](index_t item) { return item; },
        [&](index_t item) { return dataset.measurements[static_cast<usize>(item)].view(); });
    EXPECT_EQ(cost, ref_cost) << "threads=" << threads;
    EXPECT_EQ(std::memcmp(buf.volume().data.data(), ref_buf.volume().data.data(),
                          buf.volume().data.bytes()),
              0)
        << "threads=" << threads;
    EXPECT_EQ(std::memcmp(pg.data(), ref_pg.data(), pg.bytes()), 0) << "threads=" << threads;
  }
}

// --- end-to-end determinism --------------------------------------------------

SerialResult run_fullbatch(int threads) {
  SerialConfig config;
  config.iterations = 3;
  config.chunks_per_iteration = 2;
  config.mode = UpdateMode::kFullBatch;
  config.refine_probe = true;
  config.exec.threads = threads;
  return reconstruct_serial(tiny_dataset(), config);
}

TEST(Determinism, FullBatchBitwiseIdenticalAcrossThreadCounts) {
  const SerialResult base = run_fullbatch(1);
  ASSERT_FALSE(base.cost.values().empty());
  for (const int threads : {2, 4}) {
    const SerialResult result = run_fullbatch(threads);
    // Volume, refined probe, and the cost trace: all bitwise identical.
    ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
    EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                          base.volume.data.bytes()),
              0)
        << "threads=" << threads;
    ASSERT_EQ(result.probe_field.bytes(), base.probe_field.bytes());
    EXPECT_EQ(std::memcmp(result.probe_field.data(), base.probe_field.data(),
                          base.probe_field.bytes()),
              0)
        << "threads=" << threads;
    ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
    for (usize i = 0; i < base.cost.values().size(); ++i) {
      EXPECT_EQ(result.cost.values()[i], base.cost.values()[i])
          << "threads=" << threads << " iter=" << i;
    }
  }
}

TEST(Determinism, GdFullBatchBitwiseIdenticalAcrossThreadCounts) {
  const auto run = [](int threads) {
    GdConfig config;
    config.nranks = 2;
    config.iterations = 2;
    config.mode = UpdateMode::kFullBatch;
    config.exec.threads = threads;
    return reconstruct_gd(tiny_dataset(), config);
  };
  const ParallelResult base = run(1);
  const ParallelResult result = run(2);
  ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
  EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                        base.volume.data.bytes()),
            0);
  ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
  for (usize i = 0; i < base.cost.values().size(); ++i) {
    EXPECT_EQ(result.cost.values()[i], base.cost.values()[i]) << "iter=" << i;
  }
}

// --- transmittance cache -----------------------------------------------------

TEST(TransmittanceCache, HitMatchesFreshEvaluationAndInvalidates) {
  const OpticsGrid grid = tiny_dataset().spec.grid;
  MultisliceConfig mc;
  mc.model = ObjectModel::kPotential;
  mc.sigma = real(0.8);
  MultisliceOperator op(grid, mc);
  Probe probe = tiny_dataset().probe.clone();

  const auto n = static_cast<index_t>(grid.probe_n);
  const Rect window{0, 0, n, n};
  const index_t slices = 2;
  FramedVolume volume = make_vacuum_volume(window, slices);
  volume.data.fill(cplx(real(0.3), real(0.1)));
  volume.bump_revision();  // direct fill above bypassed apply_gradient

  // Measurements come from a *different* ground truth so the cost and
  // gradient at `volume` are nonzero (a descent step visibly moves them).
  FramedVolume truth = make_vacuum_volume(window, slices);
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        truth.data(s, y, x) = cplx(real(0.2) + real(0.01) * static_cast<real>((x + y) % 5),
                                   real(0.05) * static_cast<real>(x % 3));
      }
    }
  }
  RArray2D mag(n, n);
  MultisliceWorkspace fresh(n, slices);
  op.simulate_magnitude(probe, truth, window, fresh, mag.view());

  MultisliceWorkspace cached(n, slices);
  cached.cache_transmittance = true;
  FramedVolume grad_a(slices, window);
  FramedVolume grad_b(slices, window);
  MultisliceWorkspace ws_b(n, slices);
  const double cost_first = op.cost_and_gradient(probe, volume, window, mag.view(), grad_a, cached);
  // Second evaluation hits the cache (same revision, same window) and must
  // equal an evaluation through a cold workspace bitwise.
  grad_a.data.fill(cplx{});
  const double cost_cached = op.cost_and_gradient(probe, volume, window, mag.view(), grad_a, cached);
  const double cost_cold = op.cost_and_gradient(probe, volume, window, mag.view(), grad_b, ws_b);
  EXPECT_EQ(cost_cached, cost_first);
  EXPECT_EQ(cost_cached, cost_cold);
  EXPECT_EQ(std::memcmp(grad_a.data.data(), grad_b.data.data(), grad_a.data.bytes()), 0);

  // apply_gradient is the invalidation hook: after it, the cached
  // workspace must agree with a cold one on the *updated* volume.
  apply_gradient(volume, grad_b, window, real(0.05));
  grad_a.data.fill(cplx{});
  grad_b.data.fill(cplx{});
  const double cost_after = op.cost_and_gradient(probe, volume, window, mag.view(), grad_a, cached);
  MultisliceWorkspace ws_c(n, slices);
  const double cost_after_cold =
      op.cost_and_gradient(probe, volume, window, mag.view(), grad_b, ws_c);
  EXPECT_EQ(cost_after, cost_after_cold);
  EXPECT_NE(cost_after, cost_first);  // the update really changed the volume
  EXPECT_EQ(std::memcmp(grad_a.data.data(), grad_b.data.data(), grad_a.data.bytes()), 0);
}

TEST(TransmittanceCache, RevisionTokensAreUniquePerConstruction) {
  FramedVolume a(1, Rect{0, 0, 4, 4});
  FramedVolume b(1, Rect{0, 0, 4, 4});
  EXPECT_NE(a.revision, 0u);
  EXPECT_NE(a.revision, b.revision);
  const std::uint64_t before = a.revision;
  a.bump_revision();
  EXPECT_NE(a.revision, before);
  EXPECT_NE(a.revision, b.revision);
  // clone() issues a fresh token too (content-equal, but never aliased).
  const FramedVolume c = a.clone();
  EXPECT_NE(c.revision, a.revision);
}

}  // namespace
}  // namespace ptycho
