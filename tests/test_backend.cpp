// Backend dispatch tests: the bitwise scalar==SIMD contract on every
// kernel primitive (aligned, unaligned and tail-remainder sizes), the
// selection/override paths, and end-to-end bitwise identity of FFTs and a
// full reconstruction across backends.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "backend/kernels.hpp"
#include "common/random.hpp"
#include "core/reconstructor.hpp"
#include "data/simulate.hpp"
#include "data/synthetic.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"

namespace ptycho::backend {
namespace {

// Vector widths are 4 (AVX2) or 2 (NEON) complex lanes: cover the empty
// case, sub-width sizes, exact multiples, off-by-one tails and the larger
// sizes named in the issue checklist.
const usize kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 257};

std::vector<cplx> random_lanes(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) {
    x = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
  }
  return v;
}

bool bitwise_equal(const cplx* a, const cplx* b, usize n) {
  // n == 0 guards the memcmp: an empty vector's data() may be null, and
  // memcmp's arguments are declared nonnull (UBSan flags the call).
  return n == 0 || std::memcmp(a, b, n * sizeof(cplx)) == 0;
}

/// Restores the auto-selected backend when a test exits.
struct BackendGuard {
  ~BackendGuard() { select("auto"); }
};

/// Runs `op` once per (size, alignment offset) pair against both tables
/// and asserts bitwise-identical outputs. `op(kernels, in..., n)` receives
/// pointers offset by 0 or 1 element from the allocation start, so the
/// SIMD path exercises both its vector body and its scalar tail on
/// unaligned data (cplx alignment is 8 bytes; vector registers want 16/32).
template <typename Op>
void expect_bitwise_all_sizes(Op op) {
  ASSERT_TRUE(simd_available()) << "guarded by the caller";
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  for (const usize n : kSizes) {
    for (const usize offset : {usize{0}, usize{1}}) {
      const std::vector<cplx> a = random_lanes(n + offset, 17 * n + 1);
      const std::vector<cplx> b = random_lanes(n + offset, 23 * n + 2);
      const std::vector<cplx> c = random_lanes(n + offset, 31 * n + 3);
      std::vector<cplx> out_sc = c;
      std::vector<cplx> out_vec = c;
      op(sc, out_sc.data() + offset, a.data() + offset, b.data() + offset, n);
      op(vec, out_vec.data() + offset, a.data() + offset, b.data() + offset, n);
      EXPECT_TRUE(bitwise_equal(out_sc.data(), out_vec.data(), n + offset))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(BackendDispatch, ScalarAlwaysAvailable) {
  EXPECT_STREQ(scalar_kernels().name, "scalar");
  BackendGuard guard;
  EXPECT_TRUE(select("scalar"));
  EXPECT_STREQ(active_name(), "scalar");
}

TEST(BackendDispatch, AutoAndUnknownNames) {
  BackendGuard guard;
  EXPECT_TRUE(select("auto"));
  EXPECT_TRUE(select(""));
  EXPECT_FALSE(select("avx512"));
  EXPECT_FALSE(select("gpu"));
  // A failed select must leave the previous (auto) table active.
  EXPECT_STREQ(active_name(), simd_available() ? simd_kernels()->name : "scalar");
}

TEST(BackendDispatch, SimdSelection) {
  BackendGuard guard;
  if (!simd_available()) {
    EXPECT_FALSE(select("simd"));
    EXPECT_TRUE(select("scalar"));  // the forced-scalar path still works
    return;
  }
  EXPECT_TRUE(select("simd"));
  EXPECT_STREQ(active_name(), simd_kernels()->name);
  EXPECT_TRUE(select("scalar"));
  EXPECT_STREQ(active_name(), "scalar");
}

TEST(BackendBitwise, CmulLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  expect_bitwise_all_sizes([](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                              usize n) { k.cmul_lanes(dst, a, b, n); });
  // Aliased form (dst == a), as used by multiply_inplace.
  expect_bitwise_all_sizes([](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                              usize n) {
    (void)a;
    k.cmul_lanes(dst, dst, b, n);
  });
}

TEST(BackendBitwise, CmulConjLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  expect_bitwise_all_sizes([](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                              usize n) { k.cmul_conj_lanes(dst, a, b, n); });
}

TEST(BackendBitwise, CmulConjAccLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  expect_bitwise_all_sizes([](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                              usize n) { k.cmul_conj_acc_lanes(dst, a, b, n); });
}

TEST(BackendBitwise, ScaleAndAxpyLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const cplx alpha(real(0.37), real(-1.21));
  expect_bitwise_all_sizes([alpha](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                                   usize n) {
    (void)b;
    k.scale_lanes(dst, a, alpha, n);
  });
  expect_bitwise_all_sizes([alpha](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                                   usize n) {
    (void)b;
    k.axpy_lanes(dst, a, alpha, n);
  });
}

TEST(BackendBitwise, ConjScaleLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  for (const real s : {real(1), real(1) / real(100)}) {
    expect_bitwise_all_sizes([s](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                                 usize n) {
      (void)b;
      k.conj_scale_lanes(dst, a, s, n);
    });
  }
}

TEST(BackendBitwise, ButterflyLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const cplx w(real(0.70710678), real(-0.70710678));
  // The butterfly writes both operands; run it on (dst, b) pairs copied
  // per backend.
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  for (const usize n : kSizes) {
    for (const usize offset : {usize{0}, usize{1}}) {
      const std::vector<cplx> a0 = random_lanes(n + offset, 7 * n + 11);
      const std::vector<cplx> b0 = random_lanes(n + offset, 13 * n + 5);
      std::vector<cplx> a_sc = a0;
      std::vector<cplx> b_sc = b0;
      std::vector<cplx> a_vec = a0;
      std::vector<cplx> b_vec = b0;
      sc.butterfly_lanes(a_sc.data() + offset, b_sc.data() + offset, w, n);
      vec.butterfly_lanes(a_vec.data() + offset, b_vec.data() + offset, w, n);
      EXPECT_TRUE(bitwise_equal(a_sc.data(), a_vec.data(), n + offset)) << "n=" << n;
      EXPECT_TRUE(bitwise_equal(b_sc.data(), b_vec.data(), n + offset)) << "n=" << n;
    }
  }
}

TEST(BackendBitwise, ButterflyBlock) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  for (const usize n : kSizes) {
    for (const bool conj_tw : {false, true}) {
      const std::vector<cplx> tw = random_lanes(n, 3 * n + 29);
      const std::vector<cplx> a0 = random_lanes(n, 5 * n + 1);
      const std::vector<cplx> b0 = random_lanes(n, 5 * n + 2);
      std::vector<cplx> a_sc = a0;
      std::vector<cplx> b_sc = b0;
      std::vector<cplx> a_vec = a0;
      std::vector<cplx> b_vec = b0;
      sc.butterfly_block(a_sc.data(), b_sc.data(), tw.data(), conj_tw, n);
      vec.butterfly_block(a_vec.data(), b_vec.data(), tw.data(), conj_tw, n);
      EXPECT_TRUE(bitwise_equal(a_sc.data(), a_vec.data(), n)) << "n=" << n;
      EXPECT_TRUE(bitwise_equal(b_sc.data(), b_vec.data(), n)) << "n=" << n;
    }
  }
}

TEST(BackendBitwise, Butterfly4Block) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  for (const usize n : kSizes) {
    for (const usize offset : {usize{0}, usize{1}}) {
      for (const bool conj_tw : {false, true}) {
        const std::vector<cplx> tw1 = random_lanes(n + offset, 61 * n + 1);
        const std::vector<cplx> tw2 = random_lanes(n + offset, 61 * n + 2);
        const std::vector<cplx> tw3 = random_lanes(n + offset, 61 * n + 3);
        const std::vector<cplx> x0 = random_lanes(n + offset, 67 * n + 1);
        const std::vector<cplx> x1 = random_lanes(n + offset, 67 * n + 2);
        const std::vector<cplx> x2 = random_lanes(n + offset, 67 * n + 3);
        const std::vector<cplx> x3 = random_lanes(n + offset, 67 * n + 4);
        std::vector<cplx> sc_out[4] = {x0, x1, x2, x3};
        std::vector<cplx> vec_out[4] = {x0, x1, x2, x3};
        sc.butterfly4_block(sc_out[0].data() + offset, sc_out[1].data() + offset,
                            sc_out[2].data() + offset, sc_out[3].data() + offset,
                            tw1.data() + offset, tw2.data() + offset, tw3.data() + offset,
                            conj_tw, n);
        vec.butterfly4_block(vec_out[0].data() + offset, vec_out[1].data() + offset,
                             vec_out[2].data() + offset, vec_out[3].data() + offset,
                             tw1.data() + offset, tw2.data() + offset, tw3.data() + offset,
                             conj_tw, n);
        for (int q = 0; q < 4; ++q) {
          EXPECT_TRUE(bitwise_equal(sc_out[q].data(), vec_out[q].data(), n + offset))
              << "n=" << n << " offset=" << offset << " conj=" << conj_tw << " quarter=" << q;
        }
      }
    }
  }
}

TEST(BackendBitwise, Butterfly4Lanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  const cplx w1(real(0.92387953), real(-0.38268343));
  const cplx w2(real(0.98078528), real(-0.19509032));
  const cplx w3(real(0.83146961), real(-0.55557023));
  for (const usize n : kSizes) {
    for (const usize offset : {usize{0}, usize{1}}) {
      for (const bool conj_rot : {false, true}) {
        const std::vector<cplx> x0 = random_lanes(n + offset, 71 * n + 1);
        const std::vector<cplx> x1 = random_lanes(n + offset, 71 * n + 2);
        const std::vector<cplx> x2 = random_lanes(n + offset, 71 * n + 3);
        const std::vector<cplx> x3 = random_lanes(n + offset, 71 * n + 4);
        std::vector<cplx> sc_out[4] = {x0, x1, x2, x3};
        std::vector<cplx> vec_out[4] = {x0, x1, x2, x3};
        sc.butterfly4_lanes(sc_out[0].data() + offset, sc_out[1].data() + offset,
                            sc_out[2].data() + offset, sc_out[3].data() + offset, w1, w2, w3,
                            conj_rot, n);
        vec.butterfly4_lanes(vec_out[0].data() + offset, vec_out[1].data() + offset,
                             vec_out[2].data() + offset, vec_out[3].data() + offset, w1, w2, w3,
                             conj_rot, n);
        for (int q = 0; q < 4; ++q) {
          EXPECT_TRUE(bitwise_equal(sc_out[q].data(), vec_out[q].data(), n + offset))
              << "n=" << n << " offset=" << offset << " conj=" << conj_rot << " quarter=" << q;
        }
      }
    }
  }
}

TEST(BackendBitwise, CmulRowsTiled) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  // Tile shapes exercise sub-width rows, exact vector multiples and tails;
  // distinct strides per operand cover the gathered-tile and full-field
  // call patterns of the fused Fft2D entry points.
  const usize rows = 5;
  for (const usize cols : kSizes) {
    for (const bool conj_b : {false, true}) {
      const usize dst_stride = cols + 2;
      const usize a_stride = cols + 3;
      const usize b_stride = cols + 1;
      const std::vector<cplx> a = random_lanes(rows * a_stride + 1, 73 * cols + 1);
      const std::vector<cplx> b = random_lanes(rows * b_stride + 1, 73 * cols + 2);
      const std::vector<cplx> dst0 = random_lanes(rows * dst_stride + 1, 73 * cols + 3);
      std::vector<cplx> dst_sc = dst0;
      std::vector<cplx> dst_vec = dst0;
      sc.cmul_rows_tiled(dst_sc.data(), dst_stride, a.data(), a_stride, b.data(), b_stride,
                         conj_b, rows, cols);
      vec.cmul_rows_tiled(dst_vec.data(), dst_stride, a.data(), a_stride, b.data(), b_stride,
                          conj_b, rows, cols);
      EXPECT_TRUE(bitwise_equal(dst_sc.data(), dst_vec.data(), dst_sc.size()))
          << "cols=" << cols << " conj=" << conj_b;
      // Aliased in-place form (dst == a), as used by the post-transform
      // tile multiply and the unfused propagator pass.
      std::vector<cplx> alias_sc = dst0;
      std::vector<cplx> alias_vec = dst0;
      sc.cmul_rows_tiled(alias_sc.data(), dst_stride, alias_sc.data(), dst_stride, b.data(),
                         b_stride, conj_b, rows, cols);
      vec.cmul_rows_tiled(alias_vec.data(), dst_stride, alias_vec.data(), dst_stride, b.data(),
                          b_stride, conj_b, rows, cols);
      EXPECT_TRUE(bitwise_equal(alias_sc.data(), alias_vec.data(), alias_sc.size()))
          << "aliased cols=" << cols << " conj=" << conj_b;
    }
  }
}

TEST(BackendBitwise, ChirpMulLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  for (const real s : {real(1), real(1) / real(512)}) {
    expect_bitwise_all_sizes([s](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                                 usize n) { k.chirp_mul_lanes(dst, a, b, s, n); });
  }
}

TEST(BackendBitwise, ScaleChirpLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const cplx alpha(real(-0.8), real(0.6));
  expect_bitwise_all_sizes([alpha](const Kernels& k, cplx* dst, const cplx* a, const cplx* b,
                                   usize n) {
    (void)b;
    k.scale_chirp_lanes(dst, a, real(1) / real(640), alpha, n);
  });
}

TEST(BackendBitwise, PotentialBackpropLanes) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  const real sigma = real(0.00092);
  const Kernels& sc = scalar_kernels();
  const Kernels& vec = *simd_kernels();
  for (const usize n : kSizes) {
    const std::vector<cplx> psi = random_lanes(n, 41 * n + 1);
    const std::vector<cplx> trans = random_lanes(n, 43 * n + 2);
    const std::vector<cplx> g0 = random_lanes(n, 47 * n + 3);
    const std::vector<cplx> out0 = random_lanes(n, 53 * n + 4);
    std::vector<cplx> g_sc = g0;
    std::vector<cplx> out_sc = out0;
    std::vector<cplx> g_vec = g0;
    std::vector<cplx> out_vec = out0;
    sc.potential_backprop_lanes(out_sc.data(), g_sc.data(), psi.data(), trans.data(), sigma, n);
    vec.potential_backprop_lanes(out_vec.data(), g_vec.data(), psi.data(), trans.data(), sigma,
                                 n);
    EXPECT_TRUE(bitwise_equal(out_sc.data(), out_vec.data(), n)) << "n=" << n;
    EXPECT_TRUE(bitwise_equal(g_sc.data(), g_vec.data(), n)) << "n=" << n;
  }
}

// ---- end-to-end bitwise identity across backends ---------------------------

std::vector<cplx> run_fft_1d(usize n, bool strided) {
  std::vector<cplx> data = random_lanes(strided ? n * 3 : n, 1000 + n);
  fft::Plan1D plan(n);
  if (strided) {
    std::vector<cplx> scratch(plan.strided_scratch_size(3));
    plan.forward_strided(data.data(), 3, 3, scratch.empty() ? nullptr : scratch.data());
    plan.inverse_strided(data.data(), 3, 3, scratch.empty() ? nullptr : scratch.data());
  } else {
    plan.forward(data.data());
    plan.inverse(data.data());
  }
  return data;
}

TEST(BackendEndToEnd, FftBitwiseAcrossBackends) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  BackendGuard guard;
  for (const usize n : {usize{64}, usize{100}, usize{257}}) {
    for (const bool strided : {false, true}) {
      ASSERT_TRUE(select("scalar"));
      const std::vector<cplx> got_scalar = run_fft_1d(n, strided);
      ASSERT_TRUE(select("simd"));
      const std::vector<cplx> got_simd = run_fft_1d(n, strided);
      EXPECT_TRUE(bitwise_equal(got_scalar.data(), got_simd.data(), got_scalar.size()))
          << "n=" << n << " strided=" << strided;
    }
  }
}

TEST(BackendEndToEnd, Fft2DBitwiseAcrossBackends) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  BackendGuard guard;
  const index_t rows = 48, cols = 100;  // pow2 rows path + Bluestein cols path
  CArray2D field(rows, cols);
  Rng rng(99);
  for (index_t y = 0; y < rows; ++y) {
    for (index_t x = 0; x < cols; ++x) {
      field(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  fft::Fft2D plan(static_cast<usize>(rows), static_cast<usize>(cols));
  CArray2D a = field.clone();
  ASSERT_TRUE(select("scalar"));
  plan.forward(a.view());
  CArray2D b = field.clone();
  ASSERT_TRUE(select("simd"));
  plan.forward(b.view());
  EXPECT_TRUE(bitwise_equal(a.data(), b.data(), static_cast<usize>(rows * cols)));
}

/// The acceptance-criteria check: --backend=scalar and --backend=simd give
/// bitwise-identical reconstructions on the tier-1 synthetic input.
TEST(BackendEndToEnd, ReconstructionBitwiseAcrossBackends) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD backend on this CPU";
  BackendGuard guard;
  const Dataset dataset = make_synthetic_dataset(repro_tiny_spec());
  const auto run_with = [&](const char* backend) {
    ReconstructionRequest request;
    request.method = Method::kSerial;
    request.iterations = 2;
    request.mode = UpdateMode::kFullBatch;
    request.exec.backend = backend;
    return Reconstructor(dataset).run(request).volume;
  };
  const FramedVolume v_scalar = run_with("scalar");
  const FramedVolume v_simd = run_with("simd");
  ASSERT_EQ(v_scalar.data.size(), v_simd.data.size());
  EXPECT_TRUE(bitwise_equal(v_scalar.data.data(), v_simd.data.data(),
                            static_cast<usize>(v_scalar.data.size())));
}

}  // namespace
}  // namespace ptycho::backend
