// Tests for src/physics: optics constants, probe formation, propagator,
// the multislice operator and — critically — its adjoint (dot test and
// finite-difference gradient checks, both object models).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "data/synthetic.hpp"
#include "physics/multislice.hpp"
#include "physics/scan.hpp"
#include "tensor/ops.hpp"

namespace ptycho {
namespace {

OpticsGrid test_grid(usize n = 32) {
  OpticsGrid grid;
  grid.probe_n = n;
  grid.dx_pm = 10.0;
  grid.dz_pm = 125.0;
  grid.wavelength_pm = electron_wavelength_pm(200.0);
  return grid;
}

ProbeParams test_probe_params() {
  ProbeParams p;
  p.aperture_mrad = 30.0;
  p.defocus_pm = 1000.0;
  return p;
}

FramedVolume random_volume(const Rect& frame, index_t slices, std::uint64_t seed,
                           real amplitude = real(0.1)) {
  FramedVolume v(slices, frame);
  Rng rng(seed);
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < frame.h; ++y) {
      for (index_t x = 0; x < frame.w; ++x) {
        v.data(s, y, x) = cplx(1, 0) + amplitude * cplx(static_cast<real>(rng.normal()),
                                                        static_cast<real>(rng.normal()));
      }
    }
  }
  return v;
}

TEST(Optics, ElectronWavelength) {
  // Known values: 100 kV -> 3.701 pm, 200 kV -> 2.508 pm, 300 kV -> 1.969 pm.
  EXPECT_NEAR(electron_wavelength_pm(100.0), 3.701, 0.01);
  EXPECT_NEAR(electron_wavelength_pm(200.0), 2.508, 0.01);
  EXPECT_NEAR(electron_wavelength_pm(300.0), 1.969, 0.01);
}

TEST(Optics, GridFrequencies) {
  const OpticsGrid grid = test_grid(8);
  EXPECT_DOUBLE_EQ(grid.freq(0), 0.0);
  EXPECT_GT(grid.freq(1), 0.0);
  EXPECT_LT(grid.freq(7), 0.0);
  EXPECT_DOUBLE_EQ(grid.nyquist(), 0.05);
  EXPECT_DOUBLE_EQ(grid.window_pm(), 80.0);
}

TEST(Probe, NormalizedAndCentered) {
  const OpticsGrid grid = test_grid();
  Probe probe(grid, test_probe_params());
  EXPECT_NEAR(probe.total_intensity(), 1.0, 1e-5);

  // Intensity centroid should be at the window center (probe is centered).
  double cy = 0.0;
  double cx = 0.0;
  for (index_t y = 0; y < probe.n(); ++y) {
    for (index_t x = 0; x < probe.n(); ++x) {
      const double w = std::norm(std::complex<double>(probe.field()(y, x)));
      cy += w * static_cast<double>(y);
      cx += w * static_cast<double>(x);
    }
  }
  EXPECT_NEAR(cy, static_cast<double>(probe.n()) / 2, 1.0);
  EXPECT_NEAR(cx, static_cast<double>(probe.n()) / 2, 1.0);
}

TEST(Probe, SupportRadiusGrowsWithDefocus) {
  const OpticsGrid grid = test_grid(64);
  ProbeParams focused = test_probe_params();
  focused.defocus_pm = 0.0;
  ProbeParams defocused = test_probe_params();
  defocused.defocus_pm = 2000.0;
  Probe p_focused(grid, focused);
  Probe p_defocused(grid, defocused);
  EXPECT_LT(p_focused.support_radius_px(0.9), p_defocused.support_radius_px(0.9));
  EXPECT_GT(p_defocused.support_radius_px(0.99), 0);
}

TEST(Probe, DegenerateApertures) {
  OpticsGrid grid = test_grid(8);
  ProbeParams params = test_probe_params();
  // A vanishing (but positive) aperture keeps only the DC bin: the probe
  // degenerates to a flat field but stays normalizable.
  params.aperture_mrad = 1e-9;
  EXPECT_NO_THROW(Probe(grid, params));
  // A negative aperture admits nothing at all and must be rejected.
  params.aperture_mrad = -1.0;
  EXPECT_THROW(Probe(grid, params), Error);
}

TEST(Propagator, PreservesBandlimitedEnergy) {
  const OpticsGrid grid = test_grid();
  Propagator prop(grid);
  // A field synthesized inside the band limit propagates unitarily.
  CArray2D psi(static_cast<index_t>(grid.probe_n), static_cast<index_t>(grid.probe_n));
  psi.fill(cplx(1, 0));  // DC only — well within the band limit
  const double before = norm_sq(psi.view());
  prop.apply(psi.view());
  EXPECT_NEAR(norm_sq(psi.view()), before, before * 1e-4);
}

TEST(Propagator, AdjointDotTest) {
  const OpticsGrid grid = test_grid(16);
  Propagator prop(grid);
  Rng rng(5);
  CArray2D a(16, 16);
  CArray2D b(16, 16);
  for (index_t y = 0; y < 16; ++y) {
    for (index_t x = 0; x < 16; ++x) {
      a(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
      b(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  CArray2D pa = a.clone();
  prop.apply(pa.view());
  CArray2D phb = b.clone();
  prop.apply_adjoint(phb.view());
  const auto lhs = dot(pa.view(), b.view());
  const auto rhs = dot(a.view(), phb.view());
  EXPECT_NEAR(lhs.real(), rhs.real(), 1e-3);
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 1e-3);
}

TEST(Propagator, ZeroThicknessIsIdentity) {
  OpticsGrid grid = test_grid(16);
  grid.dz_pm = 0.0;
  Propagator prop(grid);
  Rng rng(6);
  CArray2D psi(16, 16);
  // Band-limited random field: synthesize in Fourier space inside 2/3
  // Nyquist, so the band-limit mask does not clip anything.
  fft::Fft2D plan(16, 16);
  for (index_t y = 0; y < 16; ++y) {
    for (index_t x = 0; x < 16; ++x) {
      const double ky = grid.freq(static_cast<usize>(y));
      const double kx = grid.freq(static_cast<usize>(x));
      const bool inside = std::sqrt(kx * kx + ky * ky) <= (2.0 / 3.0) * grid.nyquist();
      psi(y, x) = inside ? cplx(static_cast<real>(rng.normal()),
                                static_cast<real>(rng.normal()))
                         : cplx{};
    }
  }
  plan.inverse(psi.view());
  CArray2D out = psi.clone();
  prop.apply(out.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(out.view(), psi.view()) / norm_sq(psi.view())), 1e-4);
}

TEST(Multislice, VacuumObjectGivesProbeFarField) {
  const OpticsGrid grid = test_grid();
  Probe probe(grid, test_probe_params());
  MultisliceOperator op(grid);
  const auto n = static_cast<index_t>(grid.probe_n);

  FramedVolume vacuum = make_vacuum_volume(Rect{0, 0, n, n}, 3);
  MultisliceWorkspace ws(n, 3);
  RArray2D mag(n, n);
  op.simulate_magnitude(probe, vacuum, Rect{0, 0, n, n}, ws, mag.view());

  // Through vacuum the total far-field energy equals the probe energy
  // (unitary far-field transform; Parseval).
  double energy = 0.0;
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      energy += static_cast<double>(mag(y, x)) * static_cast<double>(mag(y, x));
    }
  }
  EXPECT_NEAR(energy / probe.total_intensity(), 1.0, 1e-3);
}

TEST(Multislice, CostZeroWhenMeasurementsMatch) {
  const OpticsGrid grid = test_grid();
  Probe probe(grid, test_probe_params());
  MultisliceOperator op(grid);
  const auto n = static_cast<index_t>(grid.probe_n);
  const Rect window{0, 0, n, n};

  FramedVolume object = random_volume(window, 2, 11);
  MultisliceWorkspace ws(n, 2);
  RArray2D mag(n, n);
  op.simulate_magnitude(probe, object, window, ws, mag.view());
  EXPECT_NEAR(op.cost(probe, object, window, mag.view(), ws), 0.0, 1e-6);

  // Perturb the object: cost must become positive.
  object.data(1, n / 2, n / 2) += cplx(0.5f, 0.2f);
  EXPECT_GT(op.cost(probe, object, window, mag.view(), ws), 1e-6);
}

// Finite-difference check of the analytic gradient, for both object
// models. The Wirtinger gradient g satisfies, for a real perturbation e
// at one voxel: d cost / d eps ≈ Re(g); for imaginary: ≈ Im(g)... wait:
// f(V + eps) - f(V) ≈ Re(conj(g) * eps) with our convention g = 2 dF/dV*.
class MultisliceGradient : public ::testing::TestWithParam<ObjectModel> {};

TEST_P(MultisliceGradient, MatchesFiniteDifference) {
  const OpticsGrid grid = test_grid(16);
  Probe probe(grid, test_probe_params());
  MultisliceConfig config;
  config.model = GetParam();
  config.sigma = real(0.8);
  MultisliceOperator op(grid, config);
  const auto n = static_cast<index_t>(grid.probe_n);
  const Rect window{0, 0, n, n};
  const index_t slices = 2;

  FramedVolume object = random_volume(window, slices, 21);
  // Synthetic "measurement": simulate from a different random object so
  // the residual is non-trivial.
  FramedVolume truth = random_volume(window, slices, 22);
  MultisliceWorkspace ws(n, slices);
  RArray2D mag(n, n);
  op.simulate_magnitude(probe, truth, window, ws, mag.view());

  FramedVolume grad(slices, window);
  const double f0 = op.cost_and_gradient(probe, object, window, mag.view(), grad, ws);
  EXPECT_GT(f0, 0.0);

  // Probe a few voxels in each slice with central differences.
  const double eps = 1e-3;
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const index_t s = static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(slices)));
    const index_t y = 2 + static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(n - 4)));
    const index_t x = 2 + static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(n - 4)));
    const bool imaginary = (trial % 2) == 1;
    const cplx delta = imaginary ? cplx(0, static_cast<real>(eps))
                                 : cplx(static_cast<real>(eps), 0);

    FramedVolume plus = object.clone();
    plus.data(s, y, x) += delta;
    FramedVolume minus = object.clone();
    minus.data(s, y, x) -= delta;
    const double fp = op.cost(probe, plus, window, mag.view(), ws);
    const double fm = op.cost(probe, minus, window, mag.view(), ws);
    const double numeric = (fp - fm) / (2.0 * eps);

    const cplx g = grad.data(s, y, x);
    // With g = 2 dF/dV*: directional derivative along real e is Re(g),
    // along imaginary e is Im(g).
    const double analytic = imaginary ? static_cast<double>(g.imag())
                                      : static_cast<double>(g.real());
    const double scale = std::max({std::abs(numeric), std::abs(analytic), 1e-3});
    EXPECT_NEAR(numeric / scale, analytic / scale, 0.15)
        << "model=" << static_cast<int>(GetParam()) << " trial=" << trial << " s=" << s
        << " y=" << y << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MultisliceGradient,
                         ::testing::Values(ObjectModel::kTransmittance,
                                           ObjectModel::kPotential));

TEST(Multislice, GradientSupportConfinedToWindow) {
  // The "special property" of Sec. III: the per-probe gradient vanishes
  // outside the probe window.
  const OpticsGrid grid = test_grid(16);
  Probe probe(grid, test_probe_params());
  MultisliceOperator op(grid);
  const auto n = static_cast<index_t>(grid.probe_n);
  const Rect field{0, 0, 3 * n, 3 * n};
  const Rect window{n, n, n, n};  // center of a larger field
  const index_t slices = 2;

  FramedVolume object = random_volume(field, slices, 31);
  FramedVolume truth = random_volume(field, slices, 32);
  MultisliceWorkspace ws(n, slices);
  RArray2D mag(n, n);
  op.simulate_magnitude(probe, truth, window, ws, mag.view());

  FramedVolume grad(slices, field);
  (void)op.cost_and_gradient(probe, object, window, mag.view(), grad, ws);

  double outside = 0.0;
  double inside = 0.0;
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < field.h; ++y) {
      for (index_t x = 0; x < field.w; ++x) {
        const double mag_sq = std::norm(std::complex<double>(grad.data(s, y, x)));
        if (window.contains(field.y0 + y, field.x0 + x)) {
          inside += mag_sq;
        } else {
          outside += mag_sq;
        }
      }
    }
  }
  EXPECT_GT(inside, 0.0);
  EXPECT_EQ(outside, 0.0);  // gradient code writes only the window
}

TEST(Scan, RasterOrderAndField) {
  ScanParams params;
  params.rows = 3;
  params.cols = 3;
  params.step_px = 4;
  params.margin_px = 2;
  params.probe_n = 8;
  ScanPattern scan(params);
  ASSERT_EQ(scan.count(), 9);
  // Fig. 1(b): raster order, row-major.
  EXPECT_EQ(scan[0].window, (Rect{2, 2, 8, 8}));
  EXPECT_EQ(scan[1].window, (Rect{2, 6, 8, 8}));
  EXPECT_EQ(scan[3].window, (Rect{6, 2, 8, 8}));
  EXPECT_EQ(scan[8].window, (Rect{10, 10, 8, 8}));
  EXPECT_EQ(scan.field(), (Rect{0, 0, 20, 20}));
  for (const ProbeLocation& loc : scan.locations()) {
    EXPECT_TRUE(scan.field().contains(loc.window));
  }
  EXPECT_DOUBLE_EQ(scan.overlap_ratio(), 0.5);
}

TEST(Scan, OverlapRatioClamped) {
  ScanParams params;
  params.rows = 2;
  params.cols = 2;
  params.step_px = 16;
  params.probe_n = 8;  // step > window: no overlap
  ScanPattern scan(params);
  EXPECT_DOUBLE_EQ(scan.overlap_ratio(), 0.0);
}

}  // namespace
}  // namespace ptycho
