// Integration tests across the whole stack: serial vs decomposed solvers,
// convergence, seams, stitching, memory, HVE feasibility.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "core/reconstructor.hpp"
#include "core/seam_metric.hpp"
#include "core/stitcher.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

using testing::tiny_dataset;
using testing::tiny_noisy_dataset;

double volume_rel_diff(const FramedVolume& a, const FramedVolume& b) {
  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        err += std::norm(std::complex<double>(a.data(s, y, x)) -
                         std::complex<double>(b.data(s, y, x)));
        den += std::norm(std::complex<double>(b.data(s, y, x)));
      }
    }
  }
  return std::sqrt(err / den);
}

TEST(SerialSolver, CostDecreases) {
  SerialConfig config;
  config.iterations = 6;
  config.step = real(0.1);
  SerialResult result = reconstruct_serial(tiny_dataset(), config);
  ASSERT_EQ(result.cost.values().size(), 6u);
  EXPECT_LT(result.cost.last(), result.cost.first());
  EXPECT_LT(result.cost.reduction(), 0.7);  // substantial progress expected
}

TEST(SerialSolver, RecoversGroundTruthDirection) {
  // After a few iterations the reconstruction should be closer to the
  // ground truth than the vacuum initial guess was.
  const Dataset& dataset = tiny_dataset();
  SerialConfig config;
  config.iterations = 8;
  config.step = real(0.1);
  SerialResult result = reconstruct_serial(dataset, config);
  FramedVolume vacuum = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  const double before = volume_rel_diff(vacuum, dataset.ground_truth);
  const double after = volume_rel_diff(result.volume, dataset.ground_truth);
  EXPECT_LT(after, before);
}

TEST(SerialSolver, WarmStartFromTruthStaysPut) {
  // Gradient at the ground truth (noiseless data) is ~0: one iteration
  // must not move the volume appreciably.
  const Dataset& dataset = tiny_dataset();
  SerialConfig config;
  config.iterations = 1;
  config.step = real(0.1);
  SerialResult result = reconstruct_serial(dataset, config, &dataset.ground_truth);
  EXPECT_LT(volume_rel_diff(result.volume, dataset.ground_truth), 5e-3);
  EXPECT_LT(result.cost.first(), 1e-3);
}

// --- the central correctness property -----------------------------------

class GdMatchesSerial : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GdMatchesSerial, FullBatchTrajectoriesIdentical) {
  const auto [rows, cols] = GetParam();
  const Dataset& dataset = tiny_dataset();

  SerialConfig serial_config;
  serial_config.iterations = 3;
  serial_config.step = real(0.1);
  serial_config.mode = UpdateMode::kFullBatch;
  SerialResult serial = reconstruct_serial(dataset, serial_config);

  GdConfig gd_config;
  gd_config.nranks = rows * cols;
  gd_config.mesh_rows = rows;
  gd_config.mesh_cols = cols;
  gd_config.iterations = 3;
  gd_config.step = real(0.1);
  gd_config.mode = UpdateMode::kFullBatch;
  ParallelResult gd = reconstruct_gd(dataset, gd_config);

  // Same probe schedule, same update rule, gradients assembled through the
  // passes: trajectories must agree to fp tolerance for ANY mesh.
  EXPECT_LT(volume_rel_diff(gd.volume, serial.volume), 2e-4)
      << "mesh " << rows << "x" << cols;
  // Cost histories agree too (cost is evaluated at the same points).
  ASSERT_EQ(gd.cost.values().size(), serial.cost.values().size());
  for (usize i = 0; i < gd.cost.values().size(); ++i) {
    EXPECT_NEAR(gd.cost.values()[i] / serial.cost.values()[i], 1.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, GdMatchesSerial,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{2, 2},
                                           std::pair<int, int>{3, 3},
                                           std::pair<int, int>{1, 4},
                                           std::pair<int, int>{4, 1},
                                           std::pair<int, int>{2, 3}));

TEST(GdSolver, FullBatchAllreduceMatchesSweep) {
  // APPP passes and the global all-reduce are different communication
  // schedules for the same math.
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 4;
  config.iterations = 2;
  config.step = real(0.1);
  config.mode = UpdateMode::kFullBatch;
  config.sync.appp = true;
  ParallelResult with_appp = reconstruct_gd(dataset, config);
  config.sync.appp = false;
  ParallelResult without_appp = reconstruct_gd(dataset, config);
  EXPECT_LT(volume_rel_diff(with_appp.volume, without_appp.volume), 1e-5);
}

TEST(GdSolver, SgdModeConverges) {
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 4;
  config.iterations = 6;
  config.step = real(0.1);
  config.mode = UpdateMode::kSgd;
  ParallelResult result = reconstruct_gd(dataset, config);
  EXPECT_LT(result.cost.last(), result.cost.first());
  EXPECT_LT(result.cost.reduction(), 0.7);
}

TEST(GdSolver, ConvergesOnNoisyData) {
  GdConfig config;
  config.nranks = 4;
  config.iterations = 5;
  config.step = real(0.1);
  ParallelResult result = reconstruct_gd(tiny_noisy_dataset(), config);
  EXPECT_LT(result.cost.last(), result.cost.first());
}

TEST(GdSolver, MemoryPerRankDecreasesWithRanks) {
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.iterations = 1;
  config.record_cost = false;
  config.nranks = 1;
  ParallelResult one = reconstruct_gd(dataset, config);
  config.nranks = 9;
  ParallelResult nine = reconstruct_gd(dataset, config);
  EXPECT_LT(nine.mean_peak_bytes, one.mean_peak_bytes);
  // The paper's headline: decomposition reduces per-GPU memory by a large
  // factor; on 9 tiles the mean tile footprint should be well under half.
  EXPECT_LT(nine.mean_peak_bytes / one.mean_peak_bytes, 0.5);
}

TEST(GdSolver, BreakdownAndFabricPopulated) {
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 4;
  config.iterations = 2;
  ParallelResult result = reconstruct_gd(dataset, config);
  ASSERT_EQ(result.breakdown.size(), 4u);
  for (const auto& entry : result.breakdown) EXPECT_GT(entry.compute, 0.0);
  // Passes moved actual bytes.
  std::uint64_t total_bytes = 0;
  for (std::uint64_t b : result.fabric.bytes_sent) total_bytes += b;
  EXPECT_GT(total_bytes, 0u);
}

TEST(GdSolver, PassesPerIterationVariantsConverge) {
  // Fig. 9: communication frequency affects convergence mildly; all
  // settings must still converge.
  const Dataset& dataset = tiny_dataset();
  for (const int passes : {1, 2, 6}) {
    GdConfig config;
    config.nranks = 4;
    config.iterations = 4;
    config.step = real(0.1);
    config.passes_per_iteration = passes;
    ParallelResult result = reconstruct_gd(dataset, config);
    EXPECT_LT(result.cost.last(), result.cost.first()) << "passes=" << passes;
  }
}

TEST(GdSolver, DirectSchemeWorksAtLowOverlapMesh) {
  // On a small mesh (tile >> probe window) the Sec. III direct scheme is
  // sufficient and must converge like the sweep.
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 2;
  config.iterations = 3;
  config.step = real(0.1);
  config.mode = UpdateMode::kFullBatch;
  config.sync.scheme = PassScheme::kDirectNeighbors;
  ParallelResult direct = reconstruct_gd(dataset, config);
  config.sync.scheme = PassScheme::kSweep;
  ParallelResult sweep = reconstruct_gd(dataset, config);
  EXPECT_LT(volume_rel_diff(direct.volume, sweep.volume), 1e-4);
}

// --- Halo Voxel Exchange baseline ----------------------------------------

TEST(HveSolver, ConvergesOnTinyDataset) {
  HveConfig config;
  config.nranks = 4;
  config.iterations = 5;
  config.step = real(0.1);
  ParallelResult result = reconstruct_hve(tiny_dataset(), config);
  EXPECT_LT(result.cost.last(), result.cost.first());
}

TEST(HveSolver, InfeasibleAtHighRankCount) {
  // Tiles shrink below the halo width: the paper's "NA" regime.
  HveConfig config;
  config.nranks = 36;
  config.mesh_rows = 6;
  config.mesh_cols = 6;
  config.iterations = 1;
  EXPECT_FALSE(hve_feasible(tiny_dataset(), config));
  EXPECT_THROW((void)reconstruct_hve(tiny_dataset(), config), Error);
}

TEST(HveSolver, UsesMoreMemoryThanGd) {
  const Dataset& dataset = tiny_dataset();
  GdConfig gd_config;
  gd_config.nranks = 4;
  gd_config.iterations = 1;
  gd_config.record_cost = false;
  ParallelResult gd = reconstruct_gd(dataset, gd_config);
  HveConfig hve_config;
  hve_config.nranks = 4;
  hve_config.iterations = 1;
  hve_config.record_cost = false;
  ParallelResult hve = reconstruct_hve(dataset, hve_config);
  EXPECT_GT(hve.mean_peak_bytes, gd.mean_peak_bytes);
}

TEST(HveSolver, SeamsWorseThanGdWhenReplicationInsufficient) {
  // The Fig. 8 claim, quantified. Voxel pasting creates persistent border
  // discontinuities whenever the replicated probe set does not cover every
  // overlap contribution — the generic situation at the paper's overlap
  // ratios and tile counts. (On this tiny 6x6 scan, rings >= 1 happens to
  // replicate nearly the whole scan, which hides the effect — so we test
  // the insufficient-replication regime explicitly and check full
  // replication separately below.)
  const Dataset& dataset = tiny_dataset();
  const int iterations = 15;
  const real step = real(0.1);

  GdConfig gd_config;
  gd_config.nranks = 9;
  gd_config.mesh_rows = 3;
  gd_config.mesh_cols = 3;
  gd_config.iterations = iterations;
  gd_config.step = step;
  ParallelResult gd = reconstruct_gd(dataset, gd_config);

  HveConfig hve_config;
  hve_config.nranks = 9;
  hve_config.mesh_rows = 3;
  hve_config.mesh_cols = 3;
  hve_config.iterations = iterations;
  hve_config.step = step;
  hve_config.extra_rings = 0;
  hve_config.local_epochs = 2;
  ParallelResult hve = reconstruct_hve(dataset, hve_config);

  const Partition partition = make_gd_partition(dataset, gd_config);
  const SeamReport gd_seams = measure_seams(gd.volume, partition);
  const SeamReport hve_seams = measure_seams(hve.volume, partition);
  EXPECT_GT(hve_seams.seam_ratio, 3.0);                    // visible seams
  EXPECT_GT(hve_seams.seam_ratio, 2.0 * gd_seams.seam_ratio);
  EXPECT_LT(gd_seams.seam_ratio, 4.0);                     // GD stays near background
}

TEST(HveSolver, FullReplicationHidesSeamsOnTinyScan) {
  // Control for the test above: when the replicated rings cover the whole
  // scan (possible only on toy problems), HVE borders are consistent.
  const Dataset& dataset = tiny_dataset();
  HveConfig config;
  config.nranks = 4;
  config.mesh_rows = 2;
  config.mesh_cols = 2;
  config.iterations = 15;
  config.step = real(0.1);
  config.extra_rings = 2;
  ParallelResult hve = reconstruct_hve(dataset, config);
  GdConfig gd_config;
  gd_config.nranks = 4;
  gd_config.mesh_rows = 2;
  gd_config.mesh_cols = 2;
  const Partition partition = make_gd_partition(dataset, gd_config);
  EXPECT_LT(measure_seams(hve.volume, partition).seam_ratio, 3.0);
}

TEST(HveSolver, ReconstructionQualityTracksSerial) {
  // HVE converges to a usable reconstruction (its historical role) even
  // though it seams; error vs ground truth must improve over vacuum.
  const Dataset& dataset = tiny_dataset();
  HveConfig config;
  config.nranks = 4;
  config.iterations = 6;
  config.step = real(0.1);
  ParallelResult result = reconstruct_hve(dataset, config);
  FramedVolume vacuum = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  EXPECT_LT(volume_rel_diff(result.volume, dataset.ground_truth),
            volume_rel_diff(vacuum, dataset.ground_truth));
}

// --- facade, stitcher, metrics -------------------------------------------

TEST(Reconstructor, DispatchesAllMethods) {
  const Dataset& dataset = tiny_dataset();
  Reconstructor reconstructor(dataset);
  for (const Method method :
       {Method::kSerial, Method::kGradientDecomposition, Method::kHaloVoxelExchange}) {
    ReconstructionRequest request;
    request.method = method;
    request.nranks = 4;
    request.iterations = 2;
    request.step = real(0.1);
    ReconstructionOutcome outcome = reconstructor.run(request);
    EXPECT_EQ(outcome.volume.frame, dataset.field()) << to_string(method);
    EXPECT_FALSE(outcome.cost.empty()) << to_string(method);
    EXPECT_LE(outcome.cost.last(), outcome.cost.first() * 1.05) << to_string(method);
  }
}

TEST(Stitcher, SerialStitchAssemblesOwnedRegions) {
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 4;
  const Partition partition = make_gd_partition(dataset, config);
  std::vector<FramedVolume> tiles;
  for (int r = 0; r < 4; ++r) {
    FramedVolume tile(2, partition.tile(r).extended);
    tile.data.fill(cplx(static_cast<real>(r + 1), 0));
    tiles.push_back(std::move(tile));
  }
  FramedVolume full = stitch_serial(partition, tiles);
  for (int r = 0; r < 4; ++r) {
    const Rect& owned = partition.tile(r).owned;
    EXPECT_EQ(full.at_global(0, owned.y0, owned.x0), cplx(static_cast<real>(r + 1), 0));
    EXPECT_EQ(full.at_global(1, owned.y1() - 1, owned.x1() - 1),
              cplx(static_cast<real>(r + 1), 0));
  }
}

TEST(SeamMetric, DetectsSyntheticSeam) {
  const Dataset& dataset = tiny_dataset();
  GdConfig config;
  config.nranks = 4;
  config.mesh_rows = 2;
  config.mesh_cols = 2;
  const Partition partition = make_gd_partition(dataset, config);

  // Smooth volume: no seam.
  FramedVolume smooth(2, partition.field());
  for (index_t s = 0; s < 2; ++s) {
    for (index_t y = 0; y < partition.field().h; ++y) {
      for (index_t x = 0; x < partition.field().w; ++x) {
        smooth.data(s, y, x) = cplx(static_cast<real>(std::sin(0.05 * static_cast<double>(y + x))), 0);
      }
    }
  }
  const SeamReport smooth_report = measure_seams(smooth, partition);
  EXPECT_LT(smooth_report.seam_ratio, 3.0);

  // Inject a discontinuity exactly at the internal borders.
  FramedVolume seamed = smooth.clone();
  for (const TileSpec& tile : partition.tiles()) {
    const real bump = static_cast<real>(tile.rank) * real(0.3);
    for (index_t s = 0; s < 2; ++s) {
      for (index_t y = tile.owned.y0; y < tile.owned.y1(); ++y) {
        for (index_t x = tile.owned.x0; x < tile.owned.x1(); ++x) {
          seamed.at_global(s, y, x) += cplx(bump, 0);
        }
      }
    }
  }
  const SeamReport seamed_report = measure_seams(seamed, partition);
  EXPECT_GT(seamed_report.seam_ratio, 10.0);
  EXPECT_GT(seamed_report.border_lines, 0);
}

TEST(SeamMetric, RelativeRmsError) {
  FramedVolume a(1, Rect{0, 0, 4, 4});
  FramedVolume b(1, Rect{0, 0, 4, 4});
  a.data.fill(cplx(1, 0));
  b.data.fill(cplx(1, 0));
  EXPECT_DOUBLE_EQ(relative_rms_error(a, b), 0.0);
  a.data(0, 0, 0) = cplx(2, 0);
  EXPECT_GT(relative_rms_error(a, b), 0.0);
}

TEST(CostHistory, Utilities) {
  CostHistory history;
  history.record(100.0);
  history.record(50.0);
  history.record(60.0);  // overshoot
  history.record(10.0);
  EXPECT_DOUBLE_EQ(history.reduction(), 0.1);
  EXPECT_EQ(history.iterations_to_fraction(0.5), 1);
  EXPECT_EQ(history.iterations_to_fraction(0.01), -1);
  EXPECT_NEAR(history.max_overshoot(), 0.2, 1e-12);
}

TEST(TotalCost, MatchesSolverRecordedCost) {
  // total_cost at the vacuum guess equals the first recorded sweep cost in
  // full-batch mode (V unchanged during the sweep).
  const Dataset& dataset = tiny_dataset();
  GradientEngine engine(dataset);
  FramedVolume vacuum = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  const double direct = total_cost(engine, vacuum);

  SerialConfig config;
  config.iterations = 1;
  config.mode = UpdateMode::kFullBatch;
  SerialResult result = reconstruct_serial(dataset, config);
  EXPECT_NEAR(result.cost.first() / direct, 1.0, 1e-5);
}

}  // namespace
}  // namespace ptycho
