// Async pass-graph execution tests: the dependency DAG the declared access
// sets imply, the async executor's bitwise-identity contract (serial, GD
// and HVE reconstructions — including every checkpoint byte on disk —
// match the sync schedule exactly across thread counts and schedulers),
// the background slot and auto-scheduler primitives, the split-phase
// allreduce, the span-derived overlap statistic, and a fault-injected
// elastic restore driven through the async pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/halo_voxel_exchange.hpp"
#include "core/passes.hpp"
#include "core/pipeline.hpp"
#include "core/serial_solver.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;
using testing::tiny_dataset;

double volume_rel_diff(const FramedVolume& a, const FramedVolume& b) {
  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        err += std::norm(std::complex<double>(a.data(s, y, x)) -
                         std::complex<double>(b.data(s, y, x)));
        den += std::norm(std::complex<double>(b.data(s, y, x)));
      }
    }
  }
  return std::sqrt(err / den);
}

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("ptycho_async_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> relative_files(const std::string& root) {
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) {
      files.push_back(fs::relative(entry.path(), root).string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<char> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

/// Assert two checkpoint trees are byte-for-byte identical: same relative
/// file set, same contents. The strongest form of "async snapshots equal
/// sync snapshots".
void expect_identical_trees(const std::string& got, const std::string& want) {
  const std::vector<std::string> got_files = relative_files(got);
  const std::vector<std::string> want_files = relative_files(want);
  EXPECT_EQ(got_files, want_files);
  for (const std::string& rel : got_files) {
    const std::vector<char> a = file_bytes(fs::path(got) / rel);
    const std::vector<char> b = file_bytes(fs::path(want) / rel);
    ASSERT_EQ(a.size(), b.size()) << rel;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << rel;
  }
}

// --- mode / schedule parsing -------------------------------------------------

TEST(PipelineMode, ParseAndPrint) {
  EXPECT_EQ(pipeline_mode_from_string("sync"), PipelineMode::kSync);
  EXPECT_EQ(pipeline_mode_from_string("async"), PipelineMode::kAsync);
  EXPECT_THROW((void)pipeline_mode_from_string("turbo"), Error);
  EXPECT_STREQ(to_string(PipelineMode::kSync), "sync");
  EXPECT_STREQ(to_string(PipelineMode::kAsync), "async");
}

TEST(SweepScheduleAuto, ParseAndPrint) {
  EXPECT_EQ(sweep_schedule_from_string("auto"), SweepSchedule::kAuto);
  EXPECT_STREQ(to_string(SweepSchedule::kAuto), "auto");
}

// --- topological order / cycle detection -------------------------------------

TEST(TopologicalOrder, ProducesValidLinearExtension) {
  // Diamond: 0 -> {1, 2} -> 3 (deps point backwards).
  const std::vector<std::vector<int>> deps = {{}, {0}, {0}, {1, 2}};
  const std::vector<int> order = topological_order(deps);
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<usize>(order[static_cast<usize>(i)])] = i;
  for (int node = 0; node < 4; ++node) {
    for (const int dep : deps[static_cast<usize>(node)]) {
      EXPECT_LT(position[static_cast<usize>(dep)], position[static_cast<usize>(node)])
          << dep << " must precede " << node;
    }
  }
}

TEST(TopologicalOrder, ThrowsOnCycle) {
  EXPECT_THROW((void)topological_order({{1}, {0}}), Error);
  EXPECT_THROW((void)topological_order({{2}, {0}, {1}}), Error);
  // Self-loop.
  EXPECT_THROW((void)topological_order({{0}}), Error);
}

// --- access sets & derived DAG -----------------------------------------------

TEST(PassAccess, HazardRules) {
  PassAccess writer;
  writer.write(Resource::kAccBuf);
  PassAccess reader;
  reader.read(Resource::kAccBuf);
  PassAccess other;
  other.read(Resource::kVolume).write(Resource::kVolume);
  EXPECT_TRUE(writer.hazard_with(reader));   // RAW
  EXPECT_TRUE(reader.hazard_with(writer));   // WAR
  EXPECT_TRUE(writer.hazard_with(writer));   // WAW
  EXPECT_FALSE(reader.hazard_with(reader));  // RAR is no hazard
  EXPECT_FALSE(writer.hazard_with(other));   // disjoint resources
  EXPECT_TRUE(PassAccess::all().hazard_with(reader));  // default serializes
}

TEST(ChunkDag, DerivesDependenciesFromDeclaredAccess) {
  // The serial full-batch graph with a deferred checkpoint, as the solver
  // builds it under --pipeline async.
  const Dataset& dataset = tiny_dataset();
  GradientEngine engine(dataset);
  ckpt::RunInfo run;
  run.chunks_per_iteration = 2;
  auto ckpt_pass = std::make_unique<CheckpointPass>(ckpt::Policy{"/tmp/unused", 1},
                                                    std::move(run), /*deferred=*/true);
  CheckpointPass& writer = *ckpt_pass;
  ReconstructionPipeline pipeline;
  pipeline.emplace<SweepPass>(engine, UpdateMode::kFullBatch, 1, SweepSchedule::kStatic,
                              SweepPass::Items{}, RefineSchedule{});
  pipeline.emplace<ApplyUpdatePass>(UpdateMode::kFullBatch, false);
  pipeline.emplace<CheckpointFinalizePass>(writer);
  pipeline.add(std::move(ckpt_pass));
  EXPECT_EQ(pipeline.describe(), "sweep -> update -> checkpoint-finalize -> checkpoint");

  // Mid-iteration point with a due snapshot: chunk 0 of 2 at every=1.
  StepPoint due;
  due.iteration = 0;
  due.chunk = 0;
  due.chunks = 2;
  const PassDag dag = pipeline.chunk_dag(due);
  ASSERT_EQ(dag.deps.size(), 4u);
  EXPECT_TRUE(dag.deps[0].empty());  // sweep has no earlier dependency
  // update RAW/WAW-depends on sweep (AccBuf).
  EXPECT_EQ(dag.deps[1], (std::vector<int>{0}));
  // finalize reads the checkpoint dir — no hazard with sweep/update.
  EXPECT_TRUE(dag.deps[2].empty());
  // The due checkpoint reads V and AccBuf (sweep wrote, update rewrote)
  // and writes the directory the finalize pass reads.
  EXPECT_EQ(dag.deps[3], (std::vector<int>{0, 1, 2}));

  // Last chunk of the iteration: the chunk hook is not due, so the
  // checkpoint declares nothing and falls out of the chunk DAG entirely.
  StepPoint last = due;
  last.chunk = 1;
  const PassDag quiet = pipeline.chunk_dag(last);
  EXPECT_TRUE(quiet.deps[3].empty());

  // Sanity: every hazard DAG is acyclic by construction (deps point
  // backwards), so list order must be a valid topological order.
  EXPECT_NO_THROW((void)topological_order(dag.deps));
}

TEST(ChunkDag, SweepDeclaresProbeGradOnlyWhenRefinementDue) {
  const Dataset& dataset = tiny_dataset();
  GradientEngine engine(dataset);
  RefineSchedule refine;
  refine.enabled = true;
  refine.warmup_iterations = 1;
  SweepPass sweep(engine, UpdateMode::kFullBatch, 1, SweepSchedule::kStatic,
                  SweepPass::Items{}, refine);
  StepPoint warm;
  warm.iteration = 0;
  EXPECT_FALSE(sweep.chunk_access(warm).touches(Resource::kProbeGrad));
  StepPoint refining;
  refining.iteration = 1;
  EXPECT_TRUE(sweep.chunk_access(refining).touches(Resource::kProbeGrad));
}

// --- async validation --------------------------------------------------------

/// A deliberately unsound pass: background-eligible but fabric-touching.
class BadBackgroundPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "bad-background"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    return PassAccess{}.write(Resource::kFabric);
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  [[nodiscard]] bool background_eligible() const override { return true; }
};

TEST(AsyncValidation, RejectsBackgroundEligibleFabricPass) {
  ReconstructionPipeline pipeline;
  pipeline.emplace<BadBackgroundPass>();
  SolverState state;
  PipelineSchedule schedule;
  // Sync mode never validates (the pass runs inline, which is sound).
  EXPECT_NO_THROW(pipeline.run(state, schedule));
  PipelineOptions async;
  async.mode = PipelineMode::kAsync;
  EXPECT_THROW(pipeline.run(state, schedule, async), Error);
}

// --- background worker -------------------------------------------------------

TEST(BackgroundWorker, RunsTasksInSubmissionOrder) {
  BackgroundWorker worker;
  std::vector<int> order;
  std::vector<BackgroundTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(worker.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& ticket : tickets) ticket.wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<usize>(i)], i);
  EXPECT_TRUE(tickets.front().done());
}

TEST(BackgroundWorker, PropagatesTaskExceptionsThroughWait) {
  BackgroundWorker worker;
  BackgroundTicket failing = worker.submit([] { throw Error("background boom"); });
  EXPECT_THROW(failing.wait(), Error);
  EXPECT_THROW(failing.wait(), Error);  // rethrows on every wait
  // The worker survives a failed task.
  std::atomic<bool> ran{false};
  BackgroundTicket ok = worker.submit([&ran] { ran.store(true); });
  ok.wait();
  EXPECT_TRUE(ran.load());
  BackgroundTicket empty;
  EXPECT_FALSE(empty.valid());
}

// --- auto scheduler ----------------------------------------------------------

TEST(AutoScheduler, SingleSlotDecidesStaticImmediately) {
  ThreadPool pool(1);
  AutoScheduler scheduler(pool);
  EXPECT_NE(scheduler.decided(), nullptr);
  EXPECT_STREQ(scheduler.name(), "auto:static");
}

TEST(AutoScheduler, UniformLoadCommitsToStatic) {
  ThreadPool pool(4);
  AutoScheduler scheduler(pool);
  EXPECT_EQ(scheduler.decided(), nullptr);
  EXPECT_STREQ(scheduler.name(), "auto");
  std::atomic<int> ran{0};
  scheduler.dispatch(0, 48, [&](index_t, int) {
    // The item must dwarf the kernel tick (<= 10ms at HZ=100): wakeup
    // slack is absolute, so short items read as skewed on coarse-timer
    // or oversubscribed machines. Sleeping (vs. spinning) keeps the four
    // threads from contending for cores they may not have.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 48);
  ASSERT_NE(scheduler.decided(), nullptr);
  EXPECT_STREQ(scheduler.name(), "auto:static");
  // Later dispatches delegate and still cover the range exactly once.
  std::vector<std::atomic<int>> hits(32);
  scheduler.dispatch(0, 32, [&](index_t i, int) { hits[static_cast<usize>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(AutoScheduler, SkewedLoadCommitsToWorkStealing) {
  ThreadPool pool(4);
  AutoScheduler scheduler(pool);
  scheduler.dispatch(0, 48, [&](index_t i, int) {
    // A few pathologically slow items among cheap ones: CV well above the
    // threshold, the spread a static partition cannot absorb.
    std::this_thread::sleep_for(i % 12 == 0 ? std::chrono::milliseconds(5)
                                            : std::chrono::microseconds(100));
  });
  ASSERT_NE(scheduler.decided(), nullptr);
  EXPECT_STREQ(scheduler.name(), "auto:work-stealing");
}

// --- async == sync bitwise identity ------------------------------------------

SerialResult run_serial(int threads, SweepSchedule schedule, PipelineMode pipeline,
                        const std::string& ckpt_dir) {
  SerialConfig config;
  config.iterations = 3;
  // 36 probes over 3 chunks: 12-item ranges, odd batch remainders.
  config.chunks_per_iteration = 3;
  config.mode = UpdateMode::kFullBatch;
  config.refine_probe = true;
  config.exec.threads = threads;
  config.exec.schedule = schedule;
  config.exec.pipeline = pipeline;
  config.exec.checkpoint = ckpt::Policy{ckpt_dir, 1};
  return reconstruct_serial(tiny_dataset(), config);
}

TEST(AsyncEquivalence, SerialBitwiseIncludingCheckpointBytes) {
  ScratchDir base_dir("serial_sync");
  const SerialResult base = run_serial(1, SweepSchedule::kStatic, PipelineMode::kSync,
                                       base_dir.path());
  ASSERT_FALSE(base.cost.values().empty());
  for (const SweepSchedule schedule : {SweepSchedule::kStatic, SweepSchedule::kWorkStealing}) {
    for (const int threads : {1, 2, 4}) {
      ScratchDir dir("serial_async");
      const SerialResult result =
          run_serial(threads, schedule, PipelineMode::kAsync, dir.path());
      ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
      EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                            base.volume.data.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.probe_field.bytes(), base.probe_field.bytes());
      EXPECT_EQ(std::memcmp(result.probe_field.data(), base.probe_field.data(),
                            base.probe_field.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
      for (usize i = 0; i < base.cost.values().size(); ++i) {
        EXPECT_EQ(result.cost.values()[i], base.cost.values()[i])
            << to_string(schedule) << " threads=" << threads << " iter=" << i;
      }
      // Every deferred snapshot was finalized (manifest-complete) and the
      // whole checkpoint tree matches the sync run byte for byte.
      expect_identical_trees(dir.path(), base_dir.path());
    }
  }
  // The sync tree itself ends at the schedule's last boundary.
  const ckpt::Snapshot latest = ckpt::load_latest(base_dir.path());
  EXPECT_EQ(latest.manifest.iteration, 3);
  EXPECT_EQ(latest.manifest.chunk, 0);
}

TEST(AsyncEquivalence, GdBitwiseAcrossThreadsAndSchedulers) {
  const auto run = [](int threads, SweepSchedule schedule, PipelineMode pipeline,
                      const std::string& dir) {
    GdConfig config;
    config.nranks = 2;
    config.iterations = 2;
    config.passes_per_iteration = 2;
    config.mode = UpdateMode::kFullBatch;
    config.exec.threads = threads;
    config.exec.schedule = schedule;
    config.exec.pipeline = pipeline;
    config.exec.checkpoint = ckpt::Policy{dir, 1};
    return reconstruct_gd(tiny_dataset(), config);
  };
  ScratchDir base_dir("gd_sync");
  const ParallelResult base =
      run(1, SweepSchedule::kStatic, PipelineMode::kSync, base_dir.path());
  for (const SweepSchedule schedule : {SweepSchedule::kStatic, SweepSchedule::kWorkStealing}) {
    for (const int threads : {1, 2, 4}) {
      ScratchDir dir("gd_async");
      const ParallelResult result = run(threads, schedule, PipelineMode::kAsync, dir.path());
      ASSERT_EQ(result.volume.data.bytes(), base.volume.data.bytes());
      EXPECT_EQ(std::memcmp(result.volume.data.data(), base.volume.data.data(),
                            base.volume.data.bytes()),
                0)
          << to_string(schedule) << " threads=" << threads;
      ASSERT_EQ(result.cost.values().size(), base.cost.values().size());
      for (usize i = 0; i < base.cost.values().size(); ++i) {
        EXPECT_EQ(result.cost.values()[i], base.cost.values()[i])
            << to_string(schedule) << " threads=" << threads << " iter=" << i;
      }
      expect_identical_trees(dir.path(), base_dir.path());
    }
  }
}

TEST(AsyncEquivalence, HveBitwiseInBothLocalModes) {
  const auto run = [](UpdateMode mode, int threads, SweepSchedule schedule,
                      PipelineMode pipeline) {
    HveConfig config;
    config.nranks = 4;
    config.iterations = 3;
    config.local_epochs = 2;
    config.mode = mode;
    config.exec.threads = threads;
    config.exec.schedule = schedule;
    config.exec.pipeline = pipeline;
    return reconstruct_hve(tiny_dataset(), config);
  };
  // SGD (the historical local loop): async must not perturb it.
  const ParallelResult sgd_base =
      run(UpdateMode::kSgd, 1, SweepSchedule::kStatic, PipelineMode::kSync);
  const ParallelResult sgd_async =
      run(UpdateMode::kSgd, 1, SweepSchedule::kStatic, PipelineMode::kAsync);
  ASSERT_EQ(sgd_async.volume.data.bytes(), sgd_base.volume.data.bytes());
  EXPECT_EQ(std::memcmp(sgd_async.volume.data.data(), sgd_base.volume.data.data(),
                        sgd_base.volume.data.bytes()),
            0);

  // Full-batch: the BatchSweeper route is bitwise stable across thread
  // counts, schedulers and pipeline modes (the satellite contract).
  const ParallelResult fb_base =
      run(UpdateMode::kFullBatch, 1, SweepSchedule::kStatic, PipelineMode::kSync);
  ASSERT_FALSE(fb_base.cost.values().empty());
  for (const SweepSchedule schedule : {SweepSchedule::kStatic, SweepSchedule::kWorkStealing}) {
    for (const int threads : {1, 2}) {
      for (const PipelineMode pipeline : {PipelineMode::kSync, PipelineMode::kAsync}) {
        const ParallelResult result = run(UpdateMode::kFullBatch, threads, schedule, pipeline);
        ASSERT_EQ(result.volume.data.bytes(), fb_base.volume.data.bytes());
        EXPECT_EQ(std::memcmp(result.volume.data.data(), fb_base.volume.data.data(),
                              fb_base.volume.data.bytes()),
                  0)
            << to_string(schedule) << " threads=" << threads << " " << to_string(pipeline);
        ASSERT_EQ(result.cost.values().size(), fb_base.cost.values().size());
        for (usize i = 0; i < fb_base.cost.values().size(); ++i) {
          EXPECT_EQ(result.cost.values()[i], fb_base.cost.values()[i]) << "iter=" << i;
        }
      }
    }
  }
}

// --- fault-injected elastic restore under the async pipeline -----------------

TEST(AsyncEquivalence, ElasticRestoreWithInFlightBackgroundShards) {
  // A K=6 async run (deferred shard writes in flight on the background
  // slot) dies at the same fault point as the sync test; the latest
  // *complete* snapshot must be the one a sync run would have finalized,
  // and the elastic K'=4 restore — itself async — matches the
  // uninterrupted run.
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("elastic_async");

  GdConfig reference;
  reference.nranks = 6;
  reference.iterations = 6;
  reference.mode = UpdateMode::kFullBatch;
  reference.exec.threads = 2;
  ParallelResult uninterrupted = reconstruct_gd(dataset, reference);

  GdConfig interrupted = reference;
  interrupted.exec.schedule = SweepSchedule::kWorkStealing;
  interrupted.exec.pipeline = PipelineMode::kAsync;
  interrupted.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  interrupted.fault = rt::FaultPlan{4, 4};
  EXPECT_THROW(reconstruct_gd(dataset, interrupted), rt::RankFailure);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.nranks, 6);
  EXPECT_EQ(snap.manifest.iteration, 3);

  GdConfig restored = reference;
  restored.nranks = 4;
  restored.exec.schedule = SweepSchedule::kWorkStealing;
  restored.exec.pipeline = PipelineMode::kAsync;
  restored.restore = &snap;
  ParallelResult resumed = reconstruct_gd(dataset, restored);

  ASSERT_EQ(resumed.cost.values().size(), uninterrupted.cost.values().size());
  for (usize i = 0; i < resumed.cost.values().size(); ++i) {
    EXPECT_NEAR(resumed.cost.values()[i] / uninterrupted.cost.values()[i], 1.0, 1e-3)
        << "iter=" << i;
  }
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 5e-4);
}

// --- split-phase allreduce ---------------------------------------------------

TEST(AllreduceHandle, SplitPhaseMatchesBlockingResult) {
  for (const int nranks : {1, 2, 3, 4, 5, 8}) {
    rt::VirtualCluster cluster(nranks);
    std::atomic<int> failures{0};
    cluster.run([&](rt::RankContext& ctx) {
      std::vector<cplx> buf(16);
      for (usize i = 0; i < buf.size(); ++i) {
        buf[i] = cplx(static_cast<real>(ctx.rank() + 1), static_cast<real>(i));
      }
      rt::AllreduceHandle handle(ctx, buf, rt::Phase::kTest, 61);
      // Unrelated work between the phases — including fabric traffic on a
      // different tag, which must not cross with the collective.
      if (ctx.nranks() > 1) {
        const int peer = ctx.rank() ^ 1;
        if (peer < ctx.nranks()) {
          ctx.isend(peer, rt::make_tag(rt::Phase::kTest, 1000 + ctx.rank()), std::vector<cplx>{cplx(1, 2)});
          const std::vector<cplx> got = ctx.recv(peer, rt::make_tag(rt::Phase::kTest, 1000 + peer));
          if (got.size() != 1) failures.fetch_add(1);
        }
      }
      handle.finish();
      const double expected_re = static_cast<double>(nranks) * (nranks + 1) / 2.0;
      for (usize i = 0; i < buf.size(); ++i) {
        if (std::abs(static_cast<double>(buf[i].real()) - expected_re) > 1e-4 ||
            std::abs(static_cast<double>(buf[i].imag()) -
                     static_cast<double>(i * static_cast<usize>(nranks))) > 1e-4) {
          failures.fetch_add(1);
        }
      }
    });
    EXPECT_EQ(failures.load(), 0) << "nranks=" << nranks;
  }
}

// --- span-derived overlap ----------------------------------------------------

obs::SpanRecord span(std::int32_t rank, obs::Phase phase, std::uint64_t start_ns,
                     std::uint64_t end_ns) {
  obs::SpanRecord r;
  r.name = "synthetic";
  r.rank = rank;
  r.phase = phase;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  return r;
}

TEST(CommOverlap, MeasuresHiddenCommunication) {
  // Rank 0: compute [0,100), comm [50,150) — half the comm is hidden.
  std::vector<obs::SpanRecord> spans = {
      span(0, obs::Phase::kCompute, 0, 100),
      span(0, obs::Phase::kComm, 50, 150),
  };
  obs::OverlapStats stats = obs::comm_overlap(spans);
  EXPECT_NEAR(stats.comm_seconds, 100e-9, 1e-15);
  EXPECT_NEAR(stats.hidden_seconds, 50e-9, 1e-15);
  EXPECT_NEAR(stats.ratio(), 0.5, 1e-9);

  // Fully serialized: no overlap at all.
  spans = {
      span(0, obs::Phase::kCompute, 0, 100),
      span(0, obs::Phase::kCheckpoint, 100, 200),
  };
  EXPECT_EQ(obs::comm_overlap(spans).ratio(), 0.0);

  // Checkpoint I/O fully under compute (the async pipeline's shape), with
  // overlapping compute spans from two threads of the same rank, plus a
  // second rank contributing comm with no compute — sums across ranks.
  spans = {
      span(0, obs::Phase::kCompute, 0, 60),
      span(0, obs::Phase::kUpdate, 40, 100),
      span(0, obs::Phase::kCheckpoint, 10, 90),
      span(1, obs::Phase::kComm, 0, 100),
  };
  obs::OverlapStats mixed = obs::comm_overlap(spans);
  EXPECT_NEAR(mixed.comm_seconds, 180e-9, 1e-15);
  EXPECT_NEAR(mixed.hidden_seconds, 80e-9, 1e-15);

  // Instant events and kNone spans are ignored.
  obs::SpanRecord instant = span(0, obs::Phase::kComm, 0, 1000);
  instant.instant = true;
  spans = {instant, span(0, obs::Phase::kNone, 0, 1000)};
  EXPECT_EQ(obs::comm_overlap(spans).comm_seconds, 0.0);
}

}  // namespace
}  // namespace ptycho
