// Checkpoint/restore subsystem tests: format round-trips, the completion
// protocol, fault injection, exact resume, and the acceptance property —
// a fault-interrupted run restored from its last checkpoint (including
// elastically, K=6 -> K'=4) reproduces the uninterrupted run's cost
// trajectory and final volume to fp tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "ckpt/serialize.hpp"
#include "ckpt/snapshot.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/serial_solver.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;
using testing::tiny_dataset;

double volume_rel_diff(const FramedVolume& a, const FramedVolume& b) {
  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        err += std::norm(std::complex<double>(a.data(s, y, x)) -
                         std::complex<double>(b.data(s, y, x)));
        den += std::norm(std::complex<double>(b.data(s, y, x)));
      }
    }
  }
  return std::sqrt(err / den);
}

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("ptycho_ckpt_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_same_history(const CostHistory& a, const CostHistory& b, double rel_tol) {
  ASSERT_EQ(a.values().size(), b.values().size());
  for (usize i = 0; i < a.values().size(); ++i) {
    EXPECT_NEAR(a.values()[i] / b.values()[i], 1.0, rel_tol) << "iteration " << i;
  }
}

// ---- serialization format ---------------------------------------------------

TEST(CkptSerialize, ScalarAndArrayRoundTrip) {
  ScratchDir dir("serialize");
  const std::string path = dir.path() + "/blob.bin";
  constexpr std::uint64_t kMagic = 0x1122334455667788ULL;
  {
    ckpt::Writer w(path, kMagic, 7);
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFULL);
    w.i64(-42);
    w.f32(1.5f);
    w.f64(-2.25);
    w.str("ptycho");
    w.rect(Rect{-3, 4, 5, 6});
    const cplx data[3] = {cplx(1, -2), cplx(0, 0), cplx(-0.5f, 3.25f)};
    w.cplx_array(data, 3);
    w.finish();
  }
  ckpt::Reader r(path, kMagic);
  EXPECT_EQ(r.version(), 7u);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "ptycho");
  EXPECT_EQ(r.rect(), (Rect{-3, 4, 5, 6}));
  cplx data[3];
  r.cplx_array(data, 3);
  EXPECT_EQ(data[0], cplx(1, -2));
  EXPECT_EQ(data[2], cplx(-0.5f, 3.25f));
}

TEST(CkptSerialize, TruncatedFileRejected) {
  ScratchDir dir("truncated");
  const std::string path = dir.path() + "/blob.bin";
  constexpr std::uint64_t kMagic = 0x1122334455667788ULL;
  {
    ckpt::Writer w(path, kMagic, 1);
    w.u64(12345);
    w.finish();
  }
  // Chop the footer off: the reader must refuse the file outright.
  fs::resize_file(path, fs::file_size(path) - 4);
  EXPECT_THROW({ ckpt::Reader r(path, kMagic); }, Error);
}

TEST(CkptSnapshot, ManifestAndShardRoundTrip) {
  ScratchDir dir("roundtrip");
  ckpt::Manifest manifest;
  manifest.dataset_name = "unit";
  manifest.probe_count = 9;
  manifest.slices = 2;
  manifest.step = 5;
  manifest.iteration = 2;
  manifest.chunk = 1;
  manifest.chunks_per_iteration = 2;
  manifest.nranks = 1;
  manifest.refine_probe = true;
  manifest.cost_values = {3.5, 1.25};
  ckpt::TileInfo tile;
  tile.rank = 0;
  tile.owned = Rect{0, 0, 8, 8};
  tile.extended = Rect{-1, -1, 10, 10};
  tile.own_probes = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  manifest.tiles.push_back(tile);
  ckpt::write_manifest(dir.path(), manifest);

  ckpt::Shard shard;
  shard.rank = 0;
  shard.partial_cost = 0.75;
  shard.rng.s[0] = 11;
  shard.rng.s[3] = 44;
  shard.volume = FramedVolume(2, Rect{-1, -1, 10, 10});
  shard.volume.data(1, 3, 4) = cplx(0.5f, -0.25f);
  shard.accbuf = FramedVolume(2, Rect{-1, -1, 10, 10});
  shard.probe = CArray2D(4, 4);
  shard.probe(2, 2) = cplx(1, 1);
  shard.probe_grad = CArray2D(4, 4);
  ckpt::write_shard(dir.path(), shard);

  const ckpt::Manifest m = ckpt::read_manifest(dir.path());
  EXPECT_EQ(m.dataset_name, "unit");
  EXPECT_EQ(m.step, 5u);
  EXPECT_EQ(m.iteration, 2);
  EXPECT_EQ(m.chunk, 1);
  EXPECT_FALSE(m.at_iteration_boundary());
  EXPECT_TRUE(m.refine_probe);
  ASSERT_EQ(m.cost_values.size(), 2u);
  EXPECT_EQ(m.cost_values[1], 1.25);
  ASSERT_EQ(m.tiles.size(), 1u);
  EXPECT_EQ(m.tiles[0].extended, (Rect{-1, -1, 10, 10}));
  EXPECT_EQ(m.tiles[0].own_probes, tile.own_probes);

  const ckpt::Shard s = ckpt::read_shard(dir.path(), 0);
  EXPECT_EQ(s.partial_cost, 0.75);
  EXPECT_EQ(s.rng.s[0], 11u);
  EXPECT_EQ(s.rng.s[3], 44u);
  EXPECT_EQ(s.volume.frame, shard.volume.frame);
  EXPECT_EQ(s.volume.data(1, 3, 4), cplx(0.5f, -0.25f));
  EXPECT_EQ(s.probe(2, 2), cplx(1, 1));
}

TEST(CkptSnapshot, LatestStepSkipsManifestlessDirs) {
  ScratchDir dir("latest");
  EXPECT_FALSE(ckpt::find_latest_step(dir.path()).has_value());
  ckpt::Manifest manifest;
  manifest.nranks = 0;  // no tiles needed for this protocol test
  manifest.iteration = 3;
  fs::create_directories(ckpt::step_dir(dir.path(), 3));
  ckpt::write_manifest(ckpt::step_dir(dir.path(), 3), manifest);
  // Step 7 has a directory but no manifest: a rank died mid-write.
  fs::create_directories(ckpt::step_dir(dir.path(), 7));
  const auto latest = ckpt::find_latest_step(dir.path());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 3u);
}

TEST(CkptSnapshot, LatestStepSkipsTruncatedManifests) {
  ScratchDir dir("latest_trunc");
  ckpt::Manifest manifest;
  manifest.nranks = 0;
  manifest.iteration = 4;
  fs::create_directories(ckpt::step_dir(dir.path(), 4));
  ckpt::write_manifest(ckpt::step_dir(dir.path(), 4), manifest);
  // Step 8's manifest was cut off mid-write (no footer): restore must
  // fall back to the previous complete snapshot, not abort.
  manifest.iteration = 8;
  fs::create_directories(ckpt::step_dir(dir.path(), 8));
  ckpt::write_manifest(ckpt::step_dir(dir.path(), 8), manifest);
  const std::string truncated = ckpt::step_dir(dir.path(), 8) + "/manifest.ckpt";
  fs::resize_file(truncated, fs::file_size(truncated) - 6);
  const auto latest = ckpt::find_latest_step(dir.path());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 4u);
}

TEST(CkptSnapshot, LatestStepRanksByProgressNotDirectoryNumber) {
  ScratchDir dir("latest_rank");
  // A stale snapshot from an earlier run with more chunks per iteration
  // has a bigger step number (8 = iteration 2 x 4 chunks) but less
  // progress than iteration 5 written by the resumed, rechunked run.
  ckpt::Manifest stale;
  stale.nranks = 0;
  stale.iteration = 2;
  stale.chunks_per_iteration = 4;
  stale.step = 8;
  fs::create_directories(ckpt::step_dir(dir.path(), 8));
  ckpt::write_manifest(ckpt::step_dir(dir.path(), 8), stale);
  ckpt::Manifest fresh;
  fresh.nranks = 0;
  fresh.iteration = 5;
  fresh.chunks_per_iteration = 1;
  fresh.step = 5;
  fs::create_directories(ckpt::step_dir(dir.path(), 5));
  ckpt::write_manifest(ckpt::step_dir(dir.path(), 5), fresh);
  const auto latest = ckpt::find_latest_step(dir.path());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 5u);
}

// ---- fault injection --------------------------------------------------------

TEST(FaultInjection, KilledRankAbortsTheWholeRun) {
  GdConfig config;
  config.nranks = 4;
  config.iterations = 6;
  config.mode = UpdateMode::kFullBatch;
  config.fault = rt::FaultPlan{2, 3};  // kill rank 2 after chunk 3
  EXPECT_THROW(reconstruct_gd(tiny_dataset(), config), rt::RankFailure);
}

TEST(FaultInjection, CheckpointsSurviveUpToTheFault) {
  ScratchDir dir("fault_ckpt");
  GdConfig config;
  config.nranks = 4;
  config.iterations = 6;
  config.mode = UpdateMode::kFullBatch;
  config.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  config.fault = rt::FaultPlan{1, 4};
  EXPECT_THROW(reconstruct_gd(tiny_dataset(), config), rt::RankFailure);
  // The fault fires at step 4 before that step's snapshot: steps 1-3 are
  // complete on disk, nothing newer.
  const auto latest = ckpt::find_latest_step(dir.path());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 3u);
  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.iteration, 3);
  EXPECT_EQ(snap.manifest.chunk, 0);
  EXPECT_EQ(snap.manifest.nranks, 4);
  ASSERT_EQ(snap.shards.size(), 4u);
}

// ---- exact (same-layout) resume --------------------------------------------

TEST(CkptRestore, SerialResumeReproducesTrajectoryExactly) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("serial_resume");

  SerialConfig full;
  full.iterations = 6;
  SerialResult uninterrupted = reconstruct_serial(dataset, full);

  SerialConfig first_leg = full;
  first_leg.iterations = 3;
  first_leg.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  (void)reconstruct_serial(dataset, first_leg);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  SerialConfig second_leg = full;
  second_leg.restore = &snap;
  SerialResult resumed = reconstruct_serial(dataset, second_leg);

  // Identical probe schedule and state: the resumed trajectory is the
  // uninterrupted one, bit-for-bit up to fp noise in the cost reduction.
  expect_same_history(resumed.cost, uninterrupted.cost, 1e-12);
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 1e-6);
}

TEST(CkptRestore, GdMidIterationResumeIsExact) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("gd_mid_iter");

  GdConfig full;
  full.nranks = 4;
  full.iterations = 4;
  full.passes_per_iteration = 2;  // two chunks per iteration
  ParallelResult uninterrupted = reconstruct_gd(dataset, full);

  GdConfig first_leg = full;
  first_leg.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  first_leg.fault = rt::FaultPlan{3, 6};  // dies mid-iteration 3 (iter 2, chunk 1 done)
  EXPECT_THROW(reconstruct_gd(dataset, first_leg), rt::RankFailure);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.iteration, 2);
  EXPECT_EQ(snap.manifest.chunk, 1);  // genuinely mid-iteration

  GdConfig second_leg = full;
  second_leg.restore = &snap;
  ParallelResult resumed = reconstruct_gd(dataset, second_leg);

  // Same tiling + same chunking => exact resume, SGD mode included.
  expect_same_history(resumed.cost, uninterrupted.cost, 1e-12);
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 1e-6);
}

// ---- the acceptance property: elastic restore after a fault ----------------

TEST(CkptRestore, ElasticRestoreAfterFaultMatchesUninterrupted) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("elastic");

  // Reference: uninterrupted K=6 run (full-batch — the mode in which the
  // trajectory is partition-independent to fp tolerance, the central
  // invariant this subsystem leans on).
  GdConfig reference;
  reference.nranks = 6;
  reference.iterations = 6;
  reference.mode = UpdateMode::kFullBatch;
  ParallelResult uninterrupted = reconstruct_gd(dataset, reference);

  // Interrupted: same run, checkpointing every chunk, rank 4 dies at
  // step 4 (iterations 1-3 checkpointed).
  GdConfig interrupted = reference;
  interrupted.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  interrupted.fault = rt::FaultPlan{4, 4};
  EXPECT_THROW(reconstruct_gd(dataset, interrupted), rt::RankFailure);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.nranks, 6);
  EXPECT_EQ(snap.manifest.iteration, 3);
  ASSERT_EQ(snap.manifest.cost_values.size(), 3u);

  // Elastic restore on K'=4 ranks: re-tile + redistribute, then finish.
  GdConfig restored = reference;
  restored.nranks = 4;
  restored.restore = &snap;
  ParallelResult resumed = reconstruct_gd(dataset, restored);

  expect_same_history(resumed.cost, uninterrupted.cost, 1e-3);
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 5e-4);
}

TEST(CkptRestore, ElasticRestoreOntoSerialSolver) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("to_serial");

  SerialConfig reference;
  reference.iterations = 5;
  reference.mode = UpdateMode::kFullBatch;
  SerialResult uninterrupted = reconstruct_serial(dataset, reference);

  GdConfig first_leg;
  first_leg.nranks = 6;
  first_leg.iterations = 3;
  first_leg.mode = UpdateMode::kFullBatch;
  first_leg.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  (void)reconstruct_gd(dataset, first_leg);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  SerialConfig second_leg = reference;
  second_leg.restore = &snap;
  SerialResult resumed = reconstruct_serial(dataset, second_leg);

  expect_same_history(resumed.cost, uninterrupted.cost, 1e-3);
  EXPECT_LT(volume_rel_diff(resumed.volume, uninterrupted.volume), 5e-4);
}

TEST(CkptRestore, ElasticRefusesMidIterationSnapshots) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("boundary");

  GdConfig first_leg;
  first_leg.nranks = 4;
  first_leg.iterations = 2;
  first_leg.passes_per_iteration = 2;
  first_leg.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  (void)reconstruct_gd(dataset, first_leg);

  // Step 1 = iteration 0, chunk 1: mid-iteration.
  const ckpt::Snapshot mid = ckpt::load_snapshot(ckpt::step_dir(dir.path(), 1));
  ASSERT_FALSE(mid.manifest.at_iteration_boundary());
  GdConfig elastic;
  elastic.nranks = 6;
  elastic.iterations = 3;
  elastic.passes_per_iteration = 2;
  elastic.restore = &mid;
  EXPECT_THROW(reconstruct_gd(dataset, elastic), Error);
}

TEST(CkptRestore, RefusesChangedSolverFlags) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("flags");
  GdConfig first_leg;
  first_leg.nranks = 4;
  first_leg.iterations = 2;
  first_leg.mode = UpdateMode::kFullBatch;
  first_leg.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  (void)reconstruct_gd(dataset, first_leg);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  GdConfig resumed = first_leg;
  resumed.exec.checkpoint = ckpt::Policy{};
  resumed.iterations = 3;
  resumed.restore = &snap;
  resumed.mode = UpdateMode::kSgd;  // different update rule: must refuse
  EXPECT_THROW(reconstruct_gd(dataset, resumed), Error);
  resumed.mode = UpdateMode::kFullBatch;
  resumed.refine_probe = true;  // different probe handling: must refuse
  EXPECT_THROW(reconstruct_gd(dataset, resumed), Error);
}

TEST(CkptRestore, RefusesForeignDataset) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("foreign");
  SerialConfig config;
  config.iterations = 2;
  config.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  (void)reconstruct_serial(dataset, config);

  ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  snap.manifest.dataset_name = "someone-elses-acquisition";
  SerialConfig resume = config;
  resume.exec.checkpoint = ckpt::Policy{};
  resume.restore = &snap;
  EXPECT_THROW(reconstruct_serial(dataset, resume), Error);
}

TEST(CkptRestore, AssembledVolumeMatchesStitchedResult) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("assemble");
  GdConfig config;
  config.nranks = 4;
  config.iterations = 2;
  config.mode = UpdateMode::kFullBatch;
  config.exec.checkpoint = ckpt::Policy{dir.path(), 2};
  ParallelResult result = reconstruct_gd(dataset, config);

  const ckpt::Snapshot snap = ckpt::load_latest(dir.path());
  EXPECT_EQ(snap.manifest.iteration, 2);
  const FramedVolume assembled = ckpt::assemble_volume(snap);
  // The final snapshot is the converged state the solver stitched: the
  // elastic assembly must agree with stitch_on_root exactly.
  ASSERT_EQ(assembled.frame, result.volume.frame);
  EXPECT_LT(volume_rel_diff(assembled, result.volume), 1e-7);
}

}  // namespace
}  // namespace ptycho
