// Stress and fuzz tests: concurrency on the fabric, larger virtual
// clusters, and randomized partition/pass property sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/random.hpp"
#include "core/passes.hpp"
#include "core/serial_solver.hpp"
#include "core/gradient_decomposition.hpp"
#include "partition/assignment.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

TEST(FabricStress, ManyProducersOneConsumer) {
  constexpr int kProducers = 8;
  constexpr int kMessages = 200;
  rt::Fabric fabric(kProducers + 1);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fabric, p] {
      for (int m = 0; m < kMessages; ++m) {
        fabric.isend(p, kProducers, rt::make_tag(rt::Phase::kTest, m),
                     {cplx(static_cast<real>(p), static_cast<real>(m))});
      }
    });
  }
  // Consume everything, in per-producer order.
  int bad = 0;
  for (int m = 0; m < kMessages; ++m) {
    for (int p = 0; p < kProducers; ++p) {
      const std::vector<cplx> got = fabric.recv(kProducers, p, rt::make_tag(rt::Phase::kTest, m));
      if (got.size() != 1 || got[0] != cplx(static_cast<real>(p), static_cast<real>(m))) ++bad;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(bad, 0);
  const rt::FabricStats stats = fabric.stats();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(stats.messages_sent[static_cast<usize>(p)], static_cast<usize>(kMessages));
  }
}

TEST(ClusterStress, SixtyFourRankRing) {
  constexpr int kRanks = 64;
  rt::VirtualCluster cluster(kRanks);
  std::atomic<long long> sum{0};
  cluster.run([&](rt::RankContext& ctx) {
    const int next = (ctx.rank() + 1) % kRanks;
    const int prev = (ctx.rank() + kRanks - 1) % kRanks;
    // Two laps around the ring.
    for (int lap = 0; lap < 2; ++lap) {
      ctx.isend(next, rt::make_tag(rt::Phase::kBarrier, lap), {cplx(static_cast<real>(ctx.rank()), 0)});
      const std::vector<cplx> got = ctx.recv(prev, rt::make_tag(rt::Phase::kBarrier, lap));
      sum += static_cast<long long>(got[0].real());
    }
    ctx.barrier();
  });
  EXPECT_EQ(sum.load(), 2LL * (kRanks - 1) * kRanks / 2);
}

TEST(ClusterStress, RepeatedRunsOnSameCluster) {
  rt::VirtualCluster cluster(6);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    cluster.run([&](rt::RankContext& ctx) {
      ctx.barrier();
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 6);
  }
}

TEST(PartitionFuzz, RandomConfigurationsSatisfyInvariants) {
  Rng rng(20260612);
  for (int trial = 0; trial < 40; ++trial) {
    ScanParams params;
    params.rows = 3 + static_cast<index_t>(rng.uniform_index(10));
    params.cols = 3 + static_cast<index_t>(rng.uniform_index(10));
    params.probe_n = 8 + 2 * static_cast<index_t>(rng.uniform_index(10));
    params.step_px = 1 + static_cast<index_t>(
                             rng.uniform_index(static_cast<std::uint64_t>(params.probe_n)));
    params.margin_px = static_cast<index_t>(rng.uniform_index(4));
    const ScanPattern scan(params);

    PartitionConfig config;
    const int mesh_rows = 1 + static_cast<int>(rng.uniform_index(4));
    const int mesh_cols = 1 + static_cast<int>(rng.uniform_index(4));
    if (mesh_rows > scan.field().h || mesh_cols > scan.field().w) continue;
    config.mesh = rt::Mesh2D(mesh_rows, mesh_cols);
    config.strategy =
        (trial % 2 == 0) ? Strategy::kGradientDecomposition : Strategy::kHaloVoxelExchange;
    config.hve_extra_rings = static_cast<int>(rng.uniform_index(3));
    const Partition partition(scan, config);

    ASSERT_NO_THROW(validate_partition(partition, scan))
        << "trial " << trial << ": " << describe(partition);
    // Overlap symmetry spot check.
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(partition.nranks())));
    const int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(partition.nranks())));
    EXPECT_EQ(partition.overlap(a, b), partition.overlap(b, a));
  }
}

// Randomized sweep-exactness: any configuration where every tile owns a
// probe must assemble the exact total gradient. (Mirrors the fixed cases
// in test_passes.cpp with fuzzed geometry.)
TEST(PassFuzz, SweepExactOnRandomValidConfigs) {
  Rng rng(987654321);
  int tested = 0;
  for (int trial = 0; trial < 30 && tested < 8; ++trial) {
    ScanParams params;
    params.rows = 6 + static_cast<index_t>(rng.uniform_index(6));
    params.cols = 6 + static_cast<index_t>(rng.uniform_index(6));
    params.probe_n = 12 + 2 * static_cast<index_t>(rng.uniform_index(6));
    params.step_px = 2 + static_cast<index_t>(rng.uniform_index(6));
    const ScanPattern scan(params);

    PartitionConfig config;
    config.mesh = rt::Mesh2D(2 + static_cast<int>(rng.uniform_index(3)),
                             2 + static_cast<int>(rng.uniform_index(3)));
    const Partition partition(scan, config);
    if (!all_tiles_own_probes(partition)) continue;
    ++tested;

    // Deterministic per-probe "gradients"; serial reference vs sweep.
    const index_t slices = 1;
    const auto value = [](index_t id, index_t y, index_t x) {
      return cplx(static_cast<real>(std::sin(static_cast<double>(id * 131 + y * 17 + x))),
                  static_cast<real>(std::cos(static_cast<double>(id * 37 + y + x * 13))));
    };
    FramedVolume ref(slices, scan.field());
    for (const ProbeLocation& loc : scan.locations()) {
      for (index_t y = loc.window.y0; y < loc.window.y1(); ++y) {
        for (index_t x = loc.window.x0; x < loc.window.x1(); ++x) {
          ref.at_global(0, y, x) += value(loc.id, y, x);
        }
      }
    }

    rt::VirtualCluster cluster(partition.nranks());
    std::mutex mutex;
    double worst = 0.0;
    cluster.run([&](rt::RankContext& ctx) {
      const TileSpec& tile = partition.tile(ctx.rank());
      FramedVolume acc(slices, tile.extended);
      for (index_t id : tile.own_probes) {
        const Rect w = scan[id].window;
        for (index_t y = w.y0; y < w.y1(); ++y) {
          for (index_t x = w.x0; x < w.x1(); ++x) acc.at_global(0, y, x) += value(id, y, x);
        }
      }
      PassEngine engine(partition, ctx.rank());
      engine.run_sweep(ctx, acc);
      double err_sq = 0.0;
      double ref_sq = 0.0;
      for (index_t y = tile.extended.y0; y < tile.extended.y1(); ++y) {
        for (index_t x = tile.extended.x0; x < tile.extended.x1(); ++x) {
          err_sq += std::norm(std::complex<double>(acc.at_global(0, y, x) -
                                                   ref.at_global(0, y, x)));
          ref_sq += std::norm(std::complex<double>(ref.at_global(0, y, x)));
        }
      }
      const double err = ref_sq > 0 ? std::sqrt(err_sq / ref_sq) : 0.0;
      std::lock_guard<std::mutex> lock(mutex);
      worst = std::max(worst, err);
    });
    EXPECT_LT(worst, 1e-4) << "trial " << trial << ": " << describe(partition);
  }
  EXPECT_GE(tested, 4);  // the fuzz must actually exercise several configs
}

TEST(SolverStress, SixteenRankFullBatchMatchesSerial) {
  const Dataset& dataset = testing::tiny_dataset();
  SerialConfig serial_config;
  serial_config.iterations = 2;
  serial_config.mode = UpdateMode::kFullBatch;
  const SerialResult serial = reconstruct_serial(dataset, serial_config);

  GdConfig config;
  config.nranks = 16;
  config.mesh_rows = 4;
  config.mesh_cols = 4;
  config.iterations = 2;
  config.mode = UpdateMode::kFullBatch;
  const ParallelResult gd = reconstruct_gd(dataset, config);

  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < serial.volume.slices(); ++s) {
    err += diff_norm_sq(gd.volume.window(s, gd.volume.frame),
                        serial.volume.window(s, serial.volume.frame));
    den += norm_sq(serial.volume.window(s, serial.volume.frame));
  }
  EXPECT_LT(std::sqrt(err / den), 5e-4);
}

}  // namespace
}  // namespace ptycho
