// Self-healing runtime tests: failure detection (recv deadlines, peer
// liveness heartbeats), automatic in-run recovery from the newest valid
// checkpoint, chaos injection determinism, and the discovery routine's
// fallback past corrupt/truncated snapshots.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/crc32.hpp"
#include "core/reconstructor.hpp"
#include "runtime/chaos_transport.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace ptycho {
namespace {

namespace fs = std::filesystem;
using testing::tiny_dataset;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("ptycho_recovery_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_bitwise_equal(const FramedVolume& a, const FramedVolume& b) {
  ASSERT_EQ(a.slices(), b.slices());
  ASSERT_EQ(a.frame.h, b.frame.h);
  ASSERT_EQ(a.frame.w, b.frame.w);
  int mismatches = 0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        if (std::memcmp(&a.data(s, y, x), &b.data(s, y, x), sizeof(cplx)) != 0) ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

double volume_rel_diff(const FramedVolume& a, const FramedVolume& b) {
  double err = 0.0;
  double den = 0.0;
  for (index_t s = 0; s < a.slices(); ++s) {
    for (index_t y = 0; y < a.frame.h; ++y) {
      for (index_t x = 0; x < a.frame.w; ++x) {
        err += std::norm(std::complex<double>(a.data(s, y, x)) -
                         std::complex<double>(b.data(s, y, x)));
        den += std::norm(std::complex<double>(b.data(s, y, x)));
      }
    }
  }
  return std::sqrt(err / den);
}

std::vector<int> reserve_ports(int n) {
  std::vector<int> fds;
  std::vector<int> ports;
  for (int i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)), 0);
    EXPECT_EQ(::listen(fd, 1), 0);
    socklen_t len = sizeof(sa);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
    fds.push_back(fd);
    ports.push_back(static_cast<int>(ntohs(sa.sin_port)));
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

// ---- chaos spec grammar -----------------------------------------------------

TEST(ChaosSpec, ParsesEveryClause) {
  const rt::ChaosSpec spec =
      rt::parse_chaos_spec("delay=0.5:2,reorder=0.3,drop=0.1,corrupt=0.25,seed=9,rank=1");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.rank, 1);
  EXPECT_DOUBLE_EQ(spec.delay_p, 0.5);
  EXPECT_EQ(spec.delay_max_ms, 2);
  EXPECT_DOUBLE_EQ(spec.reorder_p, 0.3);
  EXPECT_DOUBLE_EQ(spec.drop_p, 0.1);
  EXPECT_DOUBLE_EQ(spec.corrupt_p, 0.25);
  EXPECT_TRUE(spec.any());
}

TEST(ChaosSpec, ParsesOneShots) {
  const rt::ChaosSpec spec = rt::parse_chaos_spec("drop@3,corrupt@5,wedge@7");
  EXPECT_EQ(spec.drop_at, 3u);
  EXPECT_EQ(spec.corrupt_at, 5u);
  EXPECT_EQ(spec.wedge_at, 7u);
  EXPECT_TRUE(spec.any());
}

TEST(ChaosSpec, SeedAloneIsInert) {
  EXPECT_FALSE(rt::parse_chaos_spec("seed=42").any());
  EXPECT_FALSE(rt::parse_chaos_spec("").any());
}

TEST(ChaosSpec, RejectsMalformedClauses) {
  EXPECT_THROW((void)rt::parse_chaos_spec("bogus=1"), Error);
  EXPECT_THROW((void)rt::parse_chaos_spec("drop=1.5"), Error);   // probability > 1
  EXPECT_THROW((void)rt::parse_chaos_spec("drop@0"), Error);     // counts are 1-based
  EXPECT_THROW((void)rt::parse_chaos_spec("explode@3"), Error);  // unknown one-shot
  EXPECT_THROW((void)rt::parse_chaos_spec("delay"), Error);      // no value
}

// ---- failure detection ------------------------------------------------------

TEST(FailureDetection, RecvDeadlineTurnsAHangIntoRankFailure) {
  // Rank 0 blocks on a message nobody ever sends; rank 1 exits cleanly.
  // Without the deadline this would hang forever — with it, the fabric is
  // poisoned and the wait aborts with RankFailure.
  rt::ClusterSpec spec;
  spec.nranks = 2;
  spec.transport.recv_deadline_ms = 150;
  rt::VirtualCluster cluster(spec);
  EXPECT_THROW(cluster.run([&](rt::RankContext& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.recv(1, rt::make_tag(rt::Phase::kTest, 0));
    }
  }),
               rt::RankFailure);
  EXPECT_TRUE(cluster.fabric().poisoned());
}

TEST(FailureDetection, BarrierDeadlineCatchesARankThatNeverArrives) {
  rt::ClusterSpec spec;
  spec.nranks = 2;
  spec.transport.recv_deadline_ms = 150;
  rt::VirtualCluster cluster(spec);
  EXPECT_THROW(cluster.run([&](rt::RankContext& ctx) {
    if (ctx.rank() == 0) ctx.barrier();  // rank 1 returns without arriving
  }),
               rt::RankFailure);
}

TEST(FailureDetection, HeartbeatTimeoutDeclaresAWedgedPeerDead) {
  // A hand-rolled "rank 1" that completes the mesh handshake and then goes
  // silent while keeping its socket open — the wire-level signature of a
  // wedged (not killed) process. EOF never arrives, so only the liveness
  // watchdog can catch it.
  struct WireHeader {  // mirrors the transport's frame header
    std::uint32_t magic = 0x50545946u;
    std::uint32_t type = 0;  // kHello
    std::int32_t src = 1;
    std::int32_t dst = 0;
    std::int64_t tag = 0;
    std::uint64_t count = 0;
    std::uint32_t generation = 0;
    std::uint32_t checksum = 0;
  };
  static_assert(sizeof(WireHeader) == 40);

  const std::vector<int> ports = reserve_ports(2);
  std::thread impostor([&] {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(ports[0]));
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int fd = -1;
    for (int attempt = 0; attempt < 500; ++attempt) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0) break;
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "never reached rank 0's listener";
    WireHeader hello;
    hello.checksum = crc32(&hello, sizeof(hello));
    ASSERT_EQ(::send(fd, &hello, sizeof(hello), 0), static_cast<ssize_t>(sizeof(hello)));
    // Wedge: stay connected but say nothing until well past the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    ::close(fd);
  });

  rt::TransportOptions opts;
  opts.kind = rt::TransportKind::kSocket;
  opts.rank = 0;
  for (const int p : ports) opts.peers.push_back("127.0.0.1:" + std::to_string(p));
  opts.heartbeat_ms = 50;
  opts.liveness_timeout_ms = 250;
  {
    rt::Fabric fabric(rt::make_transport(opts, 2));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW((void)fabric.recv(0, 1, rt::make_tag(rt::Phase::kTest, 0)), rt::RankFailure);
    EXPECT_TRUE(fabric.poisoned());
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 1200);
  }
  impostor.join();
}

// ---- automatic in-run recovery ----------------------------------------------

ReconstructionRequest recovery_request(const std::string& ckpt_dir) {
  ReconstructionRequest request;
  request.method = Method::kGradientDecomposition;
  request.nranks = 2;
  request.iterations = 6;
  request.mode = UpdateMode::kFullBatch;
  request.exec.checkpoint = ckpt::Policy{ckpt_dir, 1};
  request.exec.restart_backoff_ms = 1;
  return request;
}

TEST(Recovery, AutoRecoveryMatchesManualRestoreBitwise) {
  const Dataset& dataset = tiny_dataset();
  Reconstructor reconstructor(dataset);

  // Leg 1: kill rank 1 at step 3 with recovery off. The run dies; steps
  // 1-2 survive on disk.
  ScratchDir manual_dir("manual");
  ReconstructionRequest doomed = recovery_request(manual_dir.path());
  doomed.fault = rt::FaultPlan{1, 3};
  EXPECT_THROW((void)reconstructor.run(doomed), rt::RankFailure);

  // Leg 2: the manual operator response — discover the newest valid
  // snapshot and resume one rank short of the dead mesh.
  ckpt::RestoreFilter filter;
  filter.nranks = 1;
  filter.chunks_per_iteration = doomed.passes_per_iteration;
  filter.update_mode = static_cast<int>(doomed.mode);
  filter.refine_probe = 0;
  auto snapshot = ckpt::load_newest_valid(manual_dir.path(), filter);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->manifest.iteration, 2);
  ReconstructionRequest resumed = recovery_request(manual_dir.path());
  resumed.nranks = 1;
  resumed.restore = &*snapshot;
  const ReconstructionOutcome manual = reconstructor.run(resumed);

  // The supervised run: same fault, recovery on. It must heal itself into
  // exactly the state the manual restore produced.
  ScratchDir auto_dir("auto");
  ReconstructionRequest supervised = recovery_request(auto_dir.path());
  supervised.fault = rt::FaultPlan{1, 3};
  supervised.exec.max_restarts = 2;
  const ReconstructionOutcome healed = reconstructor.run(supervised);

  expect_bitwise_equal(healed.volume, manual.volume);
  ASSERT_EQ(healed.cost.values().size(), manual.cost.values().size());
  for (usize i = 0; i < healed.cost.values().size(); ++i) {
    EXPECT_EQ(healed.cost.values()[i], manual.cost.values()[i]) << "iteration " << i;
  }
}

TEST(Recovery, ChaosDelayReorderSoakIsBitwiseIdenticalToClean) {
  // Delay + reorder only perturb timing; the per-key release-time
  // monotonization keeps every (src, dst, tag) stream FIFO, so the chaos
  // run must be indistinguishable from the clean one — bit for bit.
  const Dataset& dataset = tiny_dataset();
  Reconstructor reconstructor(dataset);

  ReconstructionRequest clean;
  clean.method = Method::kGradientDecomposition;
  clean.nranks = 2;
  clean.iterations = 4;
  clean.mode = UpdateMode::kFullBatch;
  const ReconstructionOutcome reference = reconstructor.run(clean);

  ReconstructionRequest chaotic = clean;
  chaotic.exec.transport.chaos = "delay=0.5:2,reorder=0.3,seed=9";
  const ReconstructionOutcome shaken = reconstructor.run(chaotic);

  expect_bitwise_equal(shaken.volume, reference.volume);
  ASSERT_EQ(shaken.cost.values().size(), reference.cost.values().size());
  for (usize i = 0; i < shaken.cost.values().size(); ++i) {
    EXPECT_EQ(shaken.cost.values()[i], reference.cost.values()[i]) << "iteration " << i;
  }
}

TEST(Recovery, CorruptionIsDetectedAndHealed) {
  // A one-shot corrupted frame poisons the run; the supervisor restores
  // the newest snapshot (same rank count — nothing died) and the one-shot
  // stays spent in the new generation, so the retry completes.
  const Dataset& dataset = tiny_dataset();
  Reconstructor reconstructor(dataset);

  ReconstructionRequest clean;
  clean.method = Method::kGradientDecomposition;
  clean.nranks = 2;
  clean.iterations = 4;
  clean.mode = UpdateMode::kFullBatch;
  const ReconstructionOutcome reference = reconstructor.run(clean);

  ScratchDir dir("corrupt");
  ReconstructionRequest chaotic = clean;
  chaotic.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  chaotic.exec.restart_backoff_ms = 1;
  chaotic.exec.max_restarts = 2;
  chaotic.exec.transport.chaos = "corrupt@3,rank=1,seed=3";
  const ReconstructionOutcome healed = reconstructor.run(chaotic);

  EXPECT_LT(volume_rel_diff(healed.volume, reference.volume), 1e-6);
}

TEST(Recovery, WedgedRankIsCaughtByTheRecvDeadlineAndHealed) {
  // wedge@N makes the victim go silent without closing anything — only a
  // deadline can see that. The recv deadline fires, the fabric is
  // poisoned, and the supervisor restores and completes.
  const Dataset& dataset = tiny_dataset();
  Reconstructor reconstructor(dataset);

  ReconstructionRequest clean;
  clean.method = Method::kGradientDecomposition;
  clean.nranks = 2;
  clean.iterations = 4;
  clean.mode = UpdateMode::kFullBatch;
  const ReconstructionOutcome reference = reconstructor.run(clean);

  ScratchDir dir("wedge");
  ReconstructionRequest chaotic = clean;
  chaotic.exec.checkpoint = ckpt::Policy{dir.path(), 1};
  chaotic.exec.restart_backoff_ms = 1;
  chaotic.exec.max_restarts = 2;
  chaotic.exec.transport.recv_deadline_ms = 250;
  chaotic.exec.transport.chaos = "wedge@4,rank=1,seed=2";
  const ReconstructionOutcome healed = reconstructor.run(chaotic);

  EXPECT_LT(volume_rel_diff(healed.volume, reference.volume), 1e-6);
}

TEST(Recovery, RestartBudgetExhaustionSurfacesTheFailure) {
  // Every send corrupted in every generation: no attempt can make
  // progress, and after max_restarts retries the failure must surface
  // instead of looping forever.
  ScratchDir dir("exhaust");
  ReconstructionRequest request = recovery_request(dir.path());
  request.iterations = 3;
  request.exec.max_restarts = 2;
  request.exec.transport.chaos = "corrupt=1,seed=1";
  Reconstructor reconstructor(tiny_dataset());
  EXPECT_THROW((void)reconstructor.run(request), rt::RankFailure);
}

// ---- snapshot discovery and integrity ---------------------------------------

TEST(Discovery, FindsTheNewestSnapshotWhenAllAreValid) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("all_valid");
  ReconstructionRequest request = recovery_request(dir.path());
  request.iterations = 4;
  Reconstructor reconstructor(dataset);
  (void)reconstructor.run(request);

  auto found = ckpt::load_newest_valid(dir.path(), ckpt::RestoreFilter{});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->manifest.iteration, 4);
  const ckpt::Snapshot latest = ckpt::load_latest(dir.path());
  EXPECT_EQ(found->manifest.iteration, latest.manifest.iteration);
  EXPECT_EQ(found->manifest.chunk, latest.manifest.chunk);
}

TEST(Discovery, FallsBackPastACorruptShard) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("bitrot");
  ReconstructionRequest request = recovery_request(dir.path());
  request.iterations = 4;
  Reconstructor reconstructor(dataset);
  (void)reconstructor.run(request);

  // Flip one payload byte in the newest snapshot's first shard: the CRC
  // must catch it and discovery must fall back to the previous snapshot.
  const auto newest = ckpt::find_latest_step(dir.path());
  ASSERT_TRUE(newest.has_value());
  char name[32];
  std::snprintf(name, sizeof name, "step-%08llu",
                static_cast<unsigned long long>(*newest));
  const fs::path shard = fs::path(dir.path()) / name / "shard-0000.ckpt";
  ASSERT_TRUE(fs::exists(shard));
  {
    std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(shard) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
  }
  auto found = ckpt::load_newest_valid(dir.path(), ckpt::RestoreFilter{});
  ASSERT_TRUE(found.has_value());
  EXPECT_LT(found->manifest.iteration, 4);

  // Truncate the fallback's shard too: discovery keeps walking back.
  char prev_name[32];
  std::snprintf(prev_name, sizeof prev_name, "step-%08llu",
                static_cast<unsigned long long>(*newest - 1));
  const fs::path prev_shard = fs::path(dir.path()) / prev_name / "shard-0000.ckpt";
  ASSERT_TRUE(fs::exists(prev_shard));
  fs::resize_file(prev_shard, fs::file_size(prev_shard) - 5);
  auto older = ckpt::load_newest_valid(dir.path(), ckpt::RestoreFilter{});
  ASSERT_TRUE(older.has_value());
  EXPECT_LT(older->manifest.iteration, found->manifest.iteration);
}

TEST(Discovery, FilterSkipsSnapshotsWithMismatchedSolverFlags) {
  const Dataset& dataset = tiny_dataset();
  ScratchDir dir("flags");
  ReconstructionRequest request = recovery_request(dir.path());
  request.iterations = 2;
  Reconstructor reconstructor(dataset);
  (void)reconstructor.run(request);

  ckpt::RestoreFilter wrong_mode;
  wrong_mode.update_mode = static_cast<int>(UpdateMode::kSgd);  // run was full-batch
  EXPECT_FALSE(ckpt::load_newest_valid(dir.path(), wrong_mode).has_value());

  ckpt::RestoreFilter wrong_probe;
  wrong_probe.refine_probe = 1;  // run did not refine the probe
  EXPECT_FALSE(ckpt::load_newest_valid(dir.path(), wrong_probe).has_value());
}

}  // namespace
}  // namespace ptycho
