// Documentation-drift gate: the README "Execution flags" table and the
// shared parser's help text (exec_options_help) must list exactly the same
// flags. A flag added to one but not the other fails here, so the two can
// never drift apart again. The README is read in place via the
// PTYCHO_SOURCE_DIR compile definition.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "core/exec_options.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Flags from the parser's help text: lines of the form "  --name ...".
std::set<std::string> help_flags() {
  std::set<std::string> flags;
  std::istringstream is(ptycho::exec_options_help());
  std::string line;
  const std::regex flag_re(R"(^\s+(--[a-z0-9-]+)\b)");
  while (std::getline(is, line)) {
    std::smatch m;
    if (std::regex_search(line, m, flag_re)) flags.insert(m[1]);
  }
  return flags;
}

/// Flags from the README table between the exec-flags markers: the first
/// backtick-quoted `--name` of each table row.
std::set<std::string> readme_flags() {
  const std::string readme = read_file(std::string(PTYCHO_SOURCE_DIR) + "/README.md");
  const auto begin = readme.find("<!-- exec-flags-begin -->");
  const auto end = readme.find("<!-- exec-flags-end -->");
  EXPECT_NE(begin, std::string::npos) << "README is missing the exec-flags-begin marker";
  EXPECT_NE(end, std::string::npos) << "README is missing the exec-flags-end marker";
  EXPECT_LT(begin, end);
  std::set<std::string> flags;
  std::istringstream is(readme.substr(begin, end - begin));
  std::string line;
  const std::regex row_re(R"(^\|\s*`(--[a-z0-9-]+))");
  while (std::getline(is, line)) {
    std::smatch m;
    if (std::regex_search(line, m, row_re)) flags.insert(m[1]);
  }
  return flags;
}

std::string join(const std::set<std::string>& s) {
  std::string out;
  for (const auto& f : s) out += (out.empty() ? "" : ", ") + f;
  return out;
}

TEST(FlagsDoc, HelpAndReadmeAgree) {
  const std::set<std::string> help = help_flags();
  const std::set<std::string> readme = readme_flags();
  ASSERT_FALSE(help.empty());
  ASSERT_FALSE(readme.empty());

  std::set<std::string> undocumented;
  std::set_difference(help.begin(), help.end(), readme.begin(), readme.end(),
                      std::inserter(undocumented, undocumented.begin()));
  std::set<std::string> stale;
  std::set_difference(readme.begin(), readme.end(), help.begin(), help.end(),
                      std::inserter(stale, stale.begin()));

  EXPECT_TRUE(undocumented.empty())
      << "flags in exec_options_help() missing from the README table: " << join(undocumented);
  EXPECT_TRUE(stale.empty())
      << "flags in the README table missing from exec_options_help(): " << join(stale);
}

// The flags this PR series depends on documenting must actually be there —
// a marker typo that empties both sets would otherwise pass vacuously.
TEST(FlagsDoc, KnownFlagsPresent) {
  const std::set<std::string> help = help_flags();
  for (const char* flag : {"--precision", "--chaos", "--heartbeat-ms", "--scheduler"}) {
    EXPECT_TRUE(help.count(flag)) << flag;
  }
}

}  // namespace
