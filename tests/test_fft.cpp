// Unit/property tests for src/fft: fast transforms vs the O(n^2)
// reference, roundtrips, adjoint identities, shifts, the blocked/batched
// column paths, the radix-4 stage schedule, the fused spectral entry
// points, and allocation-freedom of the shift helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <thread>
#include <vector>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "tensor/ops.hpp"

// Global allocation counter: replaces the default operator new/delete for
// this test binary so tests can assert that a code path allocates nothing.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC flags free() on memory from (our replaced) operator new as a
// mismatch; the pairing is intentional — both sides of it live right here.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace ptycho::fft {
namespace {

std::vector<cplx> random_signal(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) {
    v = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
  }
  return x;
}

double rel_error(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double num = 0.0;
  double den = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    num += std::norm(std::complex<double>(a[i]) - std::complex<double>(b[i]));
    den += std::norm(std::complex<double>(b[i]));
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

TEST(FftHelpers, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(63), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(FftHelpers, NextPow2GuardsOverflow) {
  // The largest representable power of two round-trips; anything above it
  // must throw instead of looping forever on wrapped arithmetic.
  constexpr usize top = usize{1} << (std::numeric_limits<usize>::digits - 1);
  EXPECT_EQ(next_pow2(top), top);
  EXPECT_THROW((void)next_pow2(top + 1), Error);
  EXPECT_THROW((void)next_pow2(~usize{0}), Error);
}

TEST(FftHelpers, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(FftHelpers, FftFreqOrdering) {
  EXPECT_DOUBLE_EQ(fft_freq(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(fft_freq(1, 8), 0.125);
  EXPECT_DOUBLE_EQ(fft_freq(4, 8), -0.5);
  EXPECT_DOUBLE_EQ(fft_freq(7, 8), -0.125);
  EXPECT_DOUBLE_EQ(fft_freq(2, 5), 0.4);
  EXPECT_DOUBLE_EQ(fft_freq(3, 5), -0.4);
}

// Property sweep: forward transform matches the direct DFT for power-of-
// two (radix-2 path) and composite/prime (Bluestein path) sizes.
class Plan1DMatchesReference : public ::testing::TestWithParam<usize> {};

TEST_P(Plan1DMatchesReference, Forward) {
  const usize n = GetParam();
  Plan1D plan(n);
  std::vector<cplx> x = random_signal(n, 100 + n);
  const std::vector<cplx> expected = reference_dft(x, -1);
  plan.forward(x.data());
  EXPECT_LT(rel_error(x, expected), 2e-5) << "n=" << n;
}

TEST_P(Plan1DMatchesReference, InverseRoundtrip) {
  const usize n = GetParam();
  Plan1D plan(n);
  const std::vector<cplx> original = random_signal(n, 200 + n);
  std::vector<cplx> x = original;
  plan.forward(x.data());
  plan.inverse(x.data());
  EXPECT_LT(rel_error(x, original), 2e-5) << "n=" << n;
}

TEST_P(Plan1DMatchesReference, ParsevalEnergy) {
  const usize n = GetParam();
  Plan1D plan(n);
  std::vector<cplx> x = random_signal(n, 300 + n);
  double time_energy = 0.0;
  for (const cplx& v : x) time_energy += std::norm(std::complex<double>(v));
  plan.forward(x.data());
  double freq_energy = 0.0;
  for (const cplx& v : x) freq_energy += std::norm(std::complex<double>(v));
  EXPECT_NEAR(freq_energy / static_cast<double>(n) / time_energy, 1.0, 1e-4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Plan1DMatchesReference,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 27, 32, 45, 64, 97,
                                           128, 100, 256));

TEST(Plan1D, ImpulseGivesFlatSpectrum) {
  Plan1D plan(16);
  std::vector<cplx> x(16, cplx{});
  x[0] = cplx(1, 0);
  plan.forward(x.data());
  for (const cplx& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Plan1D, LinearityProperty) {
  const usize n = 24;  // Bluestein path
  Plan1D plan(n);
  std::vector<cplx> a = random_signal(n, 1);
  std::vector<cplx> b = random_signal(n, 2);
  const cplx alpha(0.7f, -0.3f);
  std::vector<cplx> combo(n);
  for (usize i = 0; i < n; ++i) combo[i] = alpha * a[i] + b[i];
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(combo.data());
  std::vector<cplx> expected(n);
  for (usize i = 0; i < n; ++i) expected[i] = alpha * a[i] + b[i];
  EXPECT_LT(rel_error(combo, expected), 2e-5);
}

TEST(Fft2D, MatchesSeparableReference) {
  const usize rows = 6;
  const usize cols = 8;
  Fft2D plan(rows, cols);
  CArray2D field(static_cast<index_t>(rows), static_cast<index_t>(cols));
  Rng rng(42);
  for (index_t y = 0; y < field.rows(); ++y) {
    for (index_t x = 0; x < field.cols(); ++x) {
      field(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  // Reference: rows then columns with the direct DFT.
  std::vector<std::vector<cplx>> ref(rows, std::vector<cplx>(cols));
  for (usize y = 0; y < rows; ++y) {
    std::vector<cplx> row(cols);
    for (usize x = 0; x < cols; ++x) row[x] = field(static_cast<index_t>(y), static_cast<index_t>(x));
    ref[y] = reference_dft(row, -1);
  }
  for (usize x = 0; x < cols; ++x) {
    std::vector<cplx> col(rows);
    for (usize y = 0; y < rows; ++y) col[y] = ref[y][x];
    col = reference_dft(col, -1);
    for (usize y = 0; y < rows; ++y) ref[y][x] = col[y];
  }
  plan.forward(field.view());
  double err = 0.0;
  double den = 0.0;
  for (usize y = 0; y < rows; ++y) {
    for (usize x = 0; x < cols; ++x) {
      err += std::norm(std::complex<double>(field(static_cast<index_t>(y), static_cast<index_t>(x))) -
                       std::complex<double>(ref[y][x]));
      den += std::norm(std::complex<double>(ref[y][x]));
    }
  }
  EXPECT_LT(std::sqrt(err / den), 2e-5);
}

TEST(Fft2D, RoundtripAndAdjointIdentities) {
  const usize n = 16;
  Fft2D plan(n, n);
  CArray2D a(static_cast<index_t>(n), static_cast<index_t>(n));
  CArray2D b(static_cast<index_t>(n), static_cast<index_t>(n));
  Rng rng(7);
  for (index_t y = 0; y < a.rows(); ++y) {
    for (index_t x = 0; x < a.cols(); ++x) {
      a(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
      b(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  // Roundtrip.
  CArray2D ra = a.clone();
  plan.forward(ra.view());
  plan.inverse(ra.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(ra.view(), a.view()) / norm_sq(a.view())), 2e-5);

  // Adjoint (dot) test: <F a, b> == <a, F^H b>.
  CArray2D fa = a.clone();
  plan.forward(fa.view());
  CArray2D fhb = b.clone();
  plan.adjoint_forward(fhb.view());
  const auto lhs = dot(fa.view(), b.view());
  const auto rhs = dot(a.view(), fhb.view());
  EXPECT_NEAR(lhs.real(), rhs.real(), 2e-2);
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 2e-2);
}

TEST(Fft2D, ShiftRoundtripEvenAndOdd) {
  for (const index_t n : {8, 9}) {
    CArray2D a(n, n);
    Rng rng(static_cast<std::uint64_t>(n));
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        a(y, x) = cplx(static_cast<real>(rng.normal()), 0);
      }
    }
    CArray2D shifted = a.clone();
    fftshift(shifted.view());
    ifftshift(shifted.view());
    EXPECT_DOUBLE_EQ(diff_norm_sq(shifted.view(), a.view()), 0.0) << "n=" << n;
  }
}

TEST(Fft2D, FftshiftMovesZeroFrequencyToCenter) {
  const index_t n = 8;
  CArray2D a(n, n);
  a(0, 0) = cplx(1, 0);  // DC bin
  fftshift(a.view());
  EXPECT_EQ(a(4, 4), cplx(1, 0));
}

TEST(Fft2D, ShiftsAreAllocationFree) {
  for (const index_t n : {8, 16, 64}) {  // even sizes, per the contract
    CArray2D a(n, n);
    Rng rng(static_cast<std::uint64_t>(n));
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) a(y, x) = cplx(static_cast<real>(rng.normal()), 0);
    }
    const std::uint64_t before = g_heap_allocs.load();
    fftshift(a.view());
    ifftshift(a.view());
    EXPECT_EQ(g_heap_allocs.load(), before) << "n=" << n;
  }
}

TEST(Fft2D, ShiftMatchesRolledCopyOddAndEven) {
  // The in-place cycle implementation must equal the old copy-based roll:
  // fftshift moves (0,0) to (r/2, c/2) for any parity combination.
  for (const index_t rows : {5, 6}) {
    for (const index_t cols : {7, 8}) {
      CArray2D a(rows, cols);
      Rng rng(static_cast<std::uint64_t>(rows * 100 + cols));
      for (index_t y = 0; y < rows; ++y) {
        for (index_t x = 0; x < cols; ++x) {
          a(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
        }
      }
      CArray2D shifted = a.clone();
      fftshift(shifted.view());
      for (index_t y = 0; y < rows; ++y) {
        for (index_t x = 0; x < cols; ++x) {
          EXPECT_EQ(shifted((y + rows / 2) % rows, (x + cols / 2) % cols), a(y, x))
              << rows << "x" << cols << " @" << y << "," << x;
        }
      }
      CArray2D round = a.clone();
      fftshift(round.view());
      ifftshift(round.view());
      EXPECT_DOUBLE_EQ(diff_norm_sq(round.view(), a.view()), 0.0);
    }
  }
}

// The blocked column pass and the batched strided Plan1D must agree with
// the naive one-column-at-a-time path for both kernel families.
class BlockedColumns : public ::testing::TestWithParam<usize> {};

TEST_P(BlockedColumns, BatchedPlanMatchesScalarPerLane) {
  const usize n = GetParam();
  Plan1D plan(n);
  const usize count = 13;  // deliberately not the block size or a pow2
  std::vector<cplx> batched(n * count);
  Rng rng(n * 7 + 1);
  for (auto& v : batched) {
    v = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
  }
  // Scalar reference: gather each lane, transform, compare.
  std::vector<std::vector<cplx>> lanes(count, std::vector<cplx>(n));
  for (usize lane = 0; lane < count; ++lane) {
    for (usize j = 0; j < n; ++j) lanes[lane][j] = batched[j * count + lane];
    plan.forward(lanes[lane].data());
  }
  std::vector<cplx> scratch(plan.strided_scratch_size(count));
  plan.forward_strided(batched.data(), count, count, scratch.data());
  for (usize lane = 0; lane < count; ++lane) {
    double err = 0.0;
    double den = 0.0;
    for (usize j = 0; j < n; ++j) {
      err += std::norm(std::complex<double>(batched[j * count + lane]) -
                       std::complex<double>(lanes[lane][j]));
      den += std::norm(std::complex<double>(lanes[lane][j]));
    }
    EXPECT_LT(std::sqrt(err / std::max(den, 1e-300)), 1e-5) << "n=" << n << " lane=" << lane;
  }
}

TEST_P(BlockedColumns, Fft2DMatchesNaivePerColumnPath) {
  const usize n = GetParam();
  Fft2D plan(n, n);
  const auto ni = static_cast<index_t>(n);
  CArray2D field(ni, ni);
  Rng rng(n * 31 + 5);
  for (index_t y = 0; y < ni; ++y) {
    for (index_t x = 0; x < ni; ++x) {
      field(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  // Naive reference: scalar Plan1D over every row, then every gathered column.
  Plan1D plan1(n);
  CArray2D ref = field.clone();
  for (index_t y = 0; y < ni; ++y) plan1.forward(ref.row(y));
  std::vector<cplx> column(n);
  for (index_t x = 0; x < ni; ++x) {
    for (index_t y = 0; y < ni; ++y) column[static_cast<usize>(y)] = ref(y, x);
    plan1.forward(column.data());
    for (index_t y = 0; y < ni; ++y) ref(y, x) = column[static_cast<usize>(y)];
  }
  plan.forward(field.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(field.view(), ref.view()) /
                      std::max(norm_sq(ref.view()), 1e-300)),
            1e-5)
      << "n=" << n;
  // And the inverse path round-trips through the blocked kernels.
  plan.inverse(field.view());
  for (index_t x = 0; x < ni; ++x) {
    for (index_t y = 0; y < ni; ++y) column[static_cast<usize>(y)] = ref(y, x);
    plan1.inverse(column.data());
    for (index_t y = 0; y < ni; ++y) ref(y, x) = column[static_cast<usize>(y)];
  }
  for (index_t y = 0; y < ni; ++y) plan1.inverse(ref.row(y));
  EXPECT_LT(std::sqrt(diff_norm_sq(field.view(), ref.view()) /
                      std::max(norm_sq(ref.view()), 1e-300)),
            1e-5)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2AndBluestein, BlockedColumns,
                         ::testing::Values(8, 64, 100));  // radix-2 and chirp-z paths

// ---- radix-4 stage schedule and the fused spectral entry points ------------

/// Restores the process-wide engine flags when a test exits (plans snapshot
/// them at construction, so each test builds its plans after setting them).
struct EngineFlagsGuard {
  EngineFlags saved = engine_flags();
  ~EngineFlagsGuard() { set_engine_flags(saved); }
};

bool bitwise_equal(const cplx* a, const cplx* b, usize n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(cplx)) == 0;
}

CArray2D random_field(index_t rows, index_t cols, std::uint64_t seed) {
  CArray2D field(rows, cols);
  Rng rng(seed);
  for (index_t y = 0; y < rows; ++y) {
    for (index_t x = 0; x < cols; ++x) {
      field(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  return field;
}

// Radix-4 vs the direct DFT across every power of two 4..1024 — both log2
// parities, so the leading radix-2 fallback stage is covered.
class Radix4MatchesReference : public ::testing::TestWithParam<usize> {};

TEST_P(Radix4MatchesReference, ForwardAndRoundtrip) {
  EngineFlagsGuard guard;
  EngineFlags flags = engine_flags();
  flags.radix4 = true;
  set_engine_flags(flags);
  const usize n = GetParam();
  Plan1D plan(n);
  const std::vector<cplx> original = random_signal(n, 4000 + n);
  std::vector<cplx> x = original;
  const std::vector<cplx> expected = reference_dft(x, -1);
  plan.forward(x.data());
  EXPECT_LT(rel_error(x, expected), 2e-5) << "n=" << n;
  plan.inverse(x.data());
  EXPECT_LT(rel_error(x, original), 2e-5) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes4To1024, Radix4MatchesReference,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256, 512, 1024));

TEST(Radix4, AgreesWithRadix2OnBluesteinAdjacentSizes) {
  // Non-pow2 sizes run Bluestein whose padded inner transforms also switch
  // to radix-4; the two stage schedules must agree to rounding for the
  // same input — pow2 of both parities, primes and odd composites.
  EngineFlagsGuard guard;
  for (const usize n : {usize{4}, usize{8}, usize{12}, usize{16}, usize{97}, usize{100},
                        usize{128}, usize{513}}) {
    EngineFlags flags = engine_flags();
    flags.radix4 = true;
    set_engine_flags(flags);
    Plan1D plan4(n);
    flags.radix4 = false;
    set_engine_flags(flags);
    Plan1D plan2(n);
    const std::vector<cplx> input = random_signal(n, 5000 + n);
    std::vector<cplx> via4 = input;
    std::vector<cplx> via2 = input;
    plan4.forward(via4.data());
    plan2.forward(via2.data());
    EXPECT_LT(rel_error(via4, via2), 2e-5) << "n=" << n;
  }
}

// The fused entry points must be bitwise-equal to their composed two-step
// sequences under the same radix configuration: the fold moves the same
// dispatched per-element ops into a tile, it must not change one bit.
// Shapes cover pow2, Bluestein and mixed extents, including partial
// kColBlock / kRowBatch edge tiles.
class FusedEntryPoints : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(FusedEntryPoints, ForwardMultiplyBitwiseEqualsComposed) {
  const auto [rows, cols] = GetParam();
  Fft2D plan(static_cast<usize>(rows), static_cast<usize>(cols));
  const CArray2D input = random_field(rows, cols, 900 + static_cast<usize>(rows * cols));
  const CArray2D kernel = random_field(rows, cols, 901 + static_cast<usize>(rows * cols));
  const backend::Kernels& kern = backend::kernels();
  for (const bool conj : {false, true}) {
    CArray2D composed = input.clone();
    plan.forward(composed.view());
    kern.cmul_rows_tiled(composed.data(), static_cast<usize>(cols), composed.data(),
                         static_cast<usize>(cols), kernel.data(), static_cast<usize>(cols),
                         conj, static_cast<usize>(rows), static_cast<usize>(cols));
    CArray2D fused = input.clone();
    plan.forward_multiply(fused.view(), kernel.view(), conj);
    EXPECT_TRUE(bitwise_equal(fused.data(), composed.data(),
                              static_cast<usize>(rows * cols)))
        << rows << "x" << cols << " conj=" << conj;
  }
}

TEST_P(FusedEntryPoints, MultiplyInverseBitwiseEqualsComposed) {
  const auto [rows, cols] = GetParam();
  Fft2D plan(static_cast<usize>(rows), static_cast<usize>(cols));
  const CArray2D input = random_field(rows, cols, 910 + static_cast<usize>(rows * cols));
  const CArray2D kernel = random_field(rows, cols, 911 + static_cast<usize>(rows * cols));
  const backend::Kernels& kern = backend::kernels();
  for (const bool conj : {false, true}) {
    CArray2D composed = input.clone();
    kern.cmul_rows_tiled(composed.data(), static_cast<usize>(cols), composed.data(),
                         static_cast<usize>(cols), kernel.data(), static_cast<usize>(cols),
                         conj, static_cast<usize>(rows), static_cast<usize>(cols));
    plan.inverse(composed.view());
    CArray2D fused = input.clone();
    plan.multiply_inverse(kernel.view(), fused.view(), conj);
    EXPECT_TRUE(bitwise_equal(fused.data(), composed.data(),
                              static_cast<usize>(rows * cols)))
        << rows << "x" << cols << " conj=" << conj;
  }
}

TEST_P(FusedEntryPoints, ScaleVariantsBitwiseEqualComposed) {
  const auto [rows, cols] = GetParam();
  Fft2D plan(static_cast<usize>(rows), static_cast<usize>(cols));
  const CArray2D input = random_field(rows, cols, 920 + static_cast<usize>(rows * cols));
  const cplx alpha(real(0.37), real(-0.81));
  {
    CArray2D composed = input.clone();
    plan.forward(composed.view());
    scale(alpha, composed.view());
    CArray2D fused = input.clone();
    plan.forward_scale(fused.view(), alpha);
    EXPECT_TRUE(
        bitwise_equal(fused.data(), composed.data(), static_cast<usize>(rows * cols)))
        << "forward_scale " << rows << "x" << cols;
  }
  {
    CArray2D composed = input.clone();
    plan.inverse(composed.view());
    scale(alpha, composed.view());
    CArray2D fused = input.clone();
    plan.inverse_scale(fused.view(), alpha);
    EXPECT_TRUE(
        bitwise_equal(fused.data(), composed.data(), static_cast<usize>(rows * cols)))
        << "inverse_scale " << rows << "x" << cols;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FusedEntryPoints,
                         ::testing::Values(std::pair<index_t, index_t>{32, 16},
                                           std::pair<index_t, index_t>{24, 20},
                                           std::pair<index_t, index_t>{8, 100},
                                           std::pair<index_t, index_t>{17, 64}));

TEST(Fft2DBatchedRows, BitwiseMatchesPerRowPath) {
  // The transposed batched row pass runs the same per-element operation
  // sequence as the one-row-at-a-time path (same stage schedule, same
  // dispatched kernels), so it must agree bitwise on generic data.
  EngineFlagsGuard guard;
  for (const auto& [rows, cols] :
       {std::pair<index_t, index_t>{16, 16}, {20, 8}, {12, 100}, {33, 32}}) {
    EngineFlags flags = engine_flags();
    flags.batched_rows = true;
    set_engine_flags(flags);
    Fft2D batched(static_cast<usize>(rows), static_cast<usize>(cols));
    flags.batched_rows = false;
    set_engine_flags(flags);
    Fft2D per_row(static_cast<usize>(rows), static_cast<usize>(cols));
    const CArray2D input = random_field(rows, cols, 930 + static_cast<usize>(rows * cols));
    CArray2D a = input.clone();
    CArray2D b = input.clone();
    batched.forward(a.view());
    per_row.forward(b.view());
    EXPECT_TRUE(bitwise_equal(a.data(), b.data(), static_cast<usize>(rows * cols)))
        << "forward " << rows << "x" << cols;
    batched.inverse(a.view());
    per_row.inverse(b.view());
    EXPECT_TRUE(bitwise_equal(a.data(), b.data(), static_cast<usize>(rows * cols)))
        << "inverse " << rows << "x" << cols;
  }
}

TEST(Fft2D, OnePlanSharedAcrossConcurrentThreads) {
  // One plan, four threads, each transforming its own field: the pooled
  // scratch must keep them independent (run under TSan to verify raciness,
  // value-compare here). 100 exercises the Bluestein pad in the pool too.
  for (const usize n : {64, 100}) {
    Fft2D plan(n, n);
    const auto ni = static_cast<index_t>(n);
    CArray2D input(ni, ni);
    Rng rng(n);
    for (index_t y = 0; y < ni; ++y) {
      for (index_t x = 0; x < ni; ++x) {
        input(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
      }
    }
    // Expected: the exact op sequence each thread will run, applied
    // sequentially — concurrent execution must be bitwise indistinguishable.
    const auto transform_sequence = [&plan](CArray2D& field) {
      for (int rep = 0; rep < 8; ++rep) {
        plan.forward(field.view());
        plan.inverse(field.view());
      }
      plan.forward(field.view());
    };
    CArray2D expected = input.clone();
    transform_sequence(expected);
    constexpr int kThreads = 4;
    std::vector<CArray2D> results;
    results.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) results.push_back(input.clone());
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back(
            [&transform_sequence, &results, t] { transform_sequence(results[static_cast<usize>(t)]); });
      }
      for (std::thread& t : threads) t.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_DOUBLE_EQ(
          diff_norm_sq(results[static_cast<usize>(t)].view(), expected.view()), 0.0)
          << "n=" << n << " thread=" << t;
    }
  }
}

}  // namespace
}  // namespace ptycho::fft
