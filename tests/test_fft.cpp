// Unit/property tests for src/fft: fast transforms vs the O(n^2)
// reference, roundtrips, adjoint identities, shifts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "tensor/ops.hpp"

namespace ptycho::fft {
namespace {

std::vector<cplx> random_signal(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) {
    v = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
  }
  return x;
}

double rel_error(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double num = 0.0;
  double den = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    num += std::norm(std::complex<double>(a[i]) - std::complex<double>(b[i]));
    den += std::norm(std::complex<double>(b[i]));
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

TEST(FftHelpers, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(63), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(FftHelpers, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(FftHelpers, FftFreqOrdering) {
  EXPECT_DOUBLE_EQ(fft_freq(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(fft_freq(1, 8), 0.125);
  EXPECT_DOUBLE_EQ(fft_freq(4, 8), -0.5);
  EXPECT_DOUBLE_EQ(fft_freq(7, 8), -0.125);
  EXPECT_DOUBLE_EQ(fft_freq(2, 5), 0.4);
  EXPECT_DOUBLE_EQ(fft_freq(3, 5), -0.4);
}

// Property sweep: forward transform matches the direct DFT for power-of-
// two (radix-2 path) and composite/prime (Bluestein path) sizes.
class Plan1DMatchesReference : public ::testing::TestWithParam<usize> {};

TEST_P(Plan1DMatchesReference, Forward) {
  const usize n = GetParam();
  Plan1D plan(n);
  std::vector<cplx> x = random_signal(n, 100 + n);
  const std::vector<cplx> expected = reference_dft(x, -1);
  plan.forward(x.data());
  EXPECT_LT(rel_error(x, expected), 2e-5) << "n=" << n;
}

TEST_P(Plan1DMatchesReference, InverseRoundtrip) {
  const usize n = GetParam();
  Plan1D plan(n);
  const std::vector<cplx> original = random_signal(n, 200 + n);
  std::vector<cplx> x = original;
  plan.forward(x.data());
  plan.inverse(x.data());
  EXPECT_LT(rel_error(x, original), 2e-5) << "n=" << n;
}

TEST_P(Plan1DMatchesReference, ParsevalEnergy) {
  const usize n = GetParam();
  Plan1D plan(n);
  std::vector<cplx> x = random_signal(n, 300 + n);
  double time_energy = 0.0;
  for (const cplx& v : x) time_energy += std::norm(std::complex<double>(v));
  plan.forward(x.data());
  double freq_energy = 0.0;
  for (const cplx& v : x) freq_energy += std::norm(std::complex<double>(v));
  EXPECT_NEAR(freq_energy / static_cast<double>(n) / time_energy, 1.0, 1e-4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Plan1DMatchesReference,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 27, 32, 45, 64, 97,
                                           128, 100, 256));

TEST(Plan1D, ImpulseGivesFlatSpectrum) {
  Plan1D plan(16);
  std::vector<cplx> x(16, cplx{});
  x[0] = cplx(1, 0);
  plan.forward(x.data());
  for (const cplx& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Plan1D, LinearityProperty) {
  const usize n = 24;  // Bluestein path
  Plan1D plan(n);
  std::vector<cplx> a = random_signal(n, 1);
  std::vector<cplx> b = random_signal(n, 2);
  const cplx alpha(0.7f, -0.3f);
  std::vector<cplx> combo(n);
  for (usize i = 0; i < n; ++i) combo[i] = alpha * a[i] + b[i];
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(combo.data());
  std::vector<cplx> expected(n);
  for (usize i = 0; i < n; ++i) expected[i] = alpha * a[i] + b[i];
  EXPECT_LT(rel_error(combo, expected), 2e-5);
}

TEST(Fft2D, MatchesSeparableReference) {
  const usize rows = 6;
  const usize cols = 8;
  Fft2D plan(rows, cols);
  CArray2D field(static_cast<index_t>(rows), static_cast<index_t>(cols));
  Rng rng(42);
  for (index_t y = 0; y < field.rows(); ++y) {
    for (index_t x = 0; x < field.cols(); ++x) {
      field(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  // Reference: rows then columns with the direct DFT.
  std::vector<std::vector<cplx>> ref(rows, std::vector<cplx>(cols));
  for (usize y = 0; y < rows; ++y) {
    std::vector<cplx> row(cols);
    for (usize x = 0; x < cols; ++x) row[x] = field(static_cast<index_t>(y), static_cast<index_t>(x));
    ref[y] = reference_dft(row, -1);
  }
  for (usize x = 0; x < cols; ++x) {
    std::vector<cplx> col(rows);
    for (usize y = 0; y < rows; ++y) col[y] = ref[y][x];
    col = reference_dft(col, -1);
    for (usize y = 0; y < rows; ++y) ref[y][x] = col[y];
  }
  plan.forward(field.view());
  double err = 0.0;
  double den = 0.0;
  for (usize y = 0; y < rows; ++y) {
    for (usize x = 0; x < cols; ++x) {
      err += std::norm(std::complex<double>(field(static_cast<index_t>(y), static_cast<index_t>(x))) -
                       std::complex<double>(ref[y][x]));
      den += std::norm(std::complex<double>(ref[y][x]));
    }
  }
  EXPECT_LT(std::sqrt(err / den), 2e-5);
}

TEST(Fft2D, RoundtripAndAdjointIdentities) {
  const usize n = 16;
  Fft2D plan(n, n);
  CArray2D a(static_cast<index_t>(n), static_cast<index_t>(n));
  CArray2D b(static_cast<index_t>(n), static_cast<index_t>(n));
  Rng rng(7);
  for (index_t y = 0; y < a.rows(); ++y) {
    for (index_t x = 0; x < a.cols(); ++x) {
      a(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
      b(y, x) = cplx(static_cast<real>(rng.normal()), static_cast<real>(rng.normal()));
    }
  }
  // Roundtrip.
  CArray2D ra = a.clone();
  plan.forward(ra.view());
  plan.inverse(ra.view());
  EXPECT_LT(std::sqrt(diff_norm_sq(ra.view(), a.view()) / norm_sq(a.view())), 2e-5);

  // Adjoint (dot) test: <F a, b> == <a, F^H b>.
  CArray2D fa = a.clone();
  plan.forward(fa.view());
  CArray2D fhb = b.clone();
  plan.adjoint_forward(fhb.view());
  const auto lhs = dot(fa.view(), b.view());
  const auto rhs = dot(a.view(), fhb.view());
  EXPECT_NEAR(lhs.real(), rhs.real(), 2e-2);
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 2e-2);
}

TEST(Fft2D, ShiftRoundtripEvenAndOdd) {
  for (const index_t n : {8, 9}) {
    CArray2D a(n, n);
    Rng rng(static_cast<std::uint64_t>(n));
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        a(y, x) = cplx(static_cast<real>(rng.normal()), 0);
      }
    }
    CArray2D shifted = a.clone();
    fftshift(shifted.view());
    ifftshift(shifted.view());
    EXPECT_DOUBLE_EQ(diff_norm_sq(shifted.view(), a.view()), 0.0) << "n=" << n;
  }
}

TEST(Fft2D, FftshiftMovesZeroFrequencyToCenter) {
  const index_t n = 8;
  CArray2D a(n, n);
  a(0, 0) = cplx(1, 0);  // DC bin
  fftshift(a.view());
  EXPECT_EQ(a(4, 4), cplx(1, 0));
}

}  // namespace
}  // namespace ptycho::fft
