// Fig. 7(a) reproduction: strong-scaling curves for both Lead Titanate
// datasets with the ideal O(1/P) line.
//
// Emits the runtime series (minutes, 100 iterations) for GD on the small
// and large datasets over a dense GPU sweep, plus the ideal linear-speedup
// line anchored at the 6-GPU runtime; CSV for plotting + console summary.
#include "bench_util.hpp"
#include "data/io.hpp"

using namespace ptycho;
using namespace ptycho::bench;

namespace {

std::vector<double> runtime_series(const PaperDataset& dataset,
                                   const std::vector<long long>& gpu_counts, int iterations) {
  std::vector<double> minutes;
  for (long long gpus : gpu_counts) {
    ModelCell cell(dataset, static_cast<int>(gpus), Strategy::kGradientDecomposition);
    rt::GdScheduleParams params;
    params.iterations = iterations;
    minutes.push_back(cell.perf(dataset).simulate_gd(params).makespan_seconds / 60.0);
  }
  return minutes;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 100));
  const std::vector<long long> gpus =
      opts.get_int_list("gpus", {6, 24, 54, 126, 198, 462, 924, 2048, 4158});

  std::printf("=== Fig. 7a: strong scaling (runtime vs GPUs, log-log) ===\n\n");

  const std::vector<double> small = runtime_series(paper_small_dataset(), gpus, iterations);
  const std::vector<double> large = runtime_series(paper_large_dataset(), gpus, iterations);

  io::CsvWriter csv(out_path(opts, "fig7a_scaling.csv"));
  csv.header({"gpus", "small_minutes", "large_minutes", "ideal_small", "ideal_large"});

  std::printf("%8s %14s %14s %14s %14s\n", "GPUs", "small (min)", "large (min)",
              "ideal small", "ideal large");
  for (usize i = 0; i < gpus.size(); ++i) {
    const double p = static_cast<double>(gpus[i]);
    const double ideal_small = small.front() * static_cast<double>(gpus.front()) / p;
    const double ideal_large = large.front() * static_cast<double>(gpus.front()) / p;
    std::printf("%8lld %14.2f %14.2f %14.2f %14.2f\n", gpus[i], small[i], large[i], ideal_small,
                ideal_large);
    csv.row({p, small[i], large[i], ideal_small, ideal_large});
  }

  // Super-linearity check: measured curves should run *below* the ideal
  // O(1/P) line in the mid range (the paper's >100% efficiencies).
  int below_ideal = 0;
  for (usize i = 1; i < gpus.size(); ++i) {
    const double ideal =
        large.front() * static_cast<double>(gpus.front()) / static_cast<double>(gpus[i]);
    if (large[i] < ideal) ++below_ideal;
  }
  std::printf("\nlarge dataset runs below the ideal line at %d of %zu scaled points "
              "(super-linear scaling, paper reports 336-518%% efficiency)\n",
              below_ideal, gpus.size() - 1);
  std::printf("CSV written to %s\n", out_path(opts, "fig7a_scaling.csv").c_str());
  return 0;
}
