// bench_sweep — the perf-trajectory baseline for the intra-rank hot path.
//
// Measures (1) full-batch gradient-sweep throughput (probes/sec) at one
// thread and at N threads through the BatchSweeper, and (2) single-thread
// Fft2D 256x256 forward+inverse throughput, then writes BENCH_sweep.json
// so successive PRs can be compared on the same machine.
//
//   bench_sweep [--spec tiny|small] [--threads N] [--repeat R]
//               [--fft-iters N] [--out BENCH_sweep.json]
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/sweep.hpp"
#include "data/synthetic.hpp"
#include "fft/fft2d.hpp"

using namespace ptycho;

namespace {

/// Probes/sec sweeping every probe of `dataset` `repeat` times on `threads`.
double sweep_rate(const Dataset& dataset, int threads, int repeat) {
  GradientEngine engine(dataset);
  ThreadPool pool(threads);
  BatchSweeper sweeper(engine, pool);
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  AccumulationBuffer accbuf(dataset.spec.slices, volume.frame);
  Probe probe = dataset.probe.clone();
  const index_t probes = dataset.probe_count();
  const auto id_of = [](index_t item) { return item; };
  const auto meas_of = [&](index_t item) {
    return dataset.measurements[static_cast<usize>(item)].view();
  };
  // Warm-up pass (first-touch allocations, FFT scratch pools).
  double cost = 0.0;
  sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
  accbuf.reset();
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
    accbuf.reset();
  }
  const double seconds = timer.seconds();
  return static_cast<double>(probes) * repeat / seconds;
}

struct FftResult {
  double us_per_pair = 0.0;
  double mb_per_sec = 0.0;
};

/// Single-thread 256x256 forward+inverse pairs; MB/s counts bytes touched
/// (2 passes over the field per pair).
FftResult fft_rate(int iters) {
  const index_t n = 256;
  fft::Fft2D plan(static_cast<usize>(n), static_cast<usize>(n));
  CArray2D field(n, n);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      field(y, x) = cplx(real(0.5) + static_cast<real>(x % 7), static_cast<real>(y % 5));
    }
  }
  for (int i = 0; i < 10; ++i) {
    plan.forward(field.view());
    plan.inverse(field.view());
  }
  WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    plan.forward(field.view());
    plan.inverse(field.view());
  }
  const double seconds = timer.seconds();
  FftResult out;
  out.us_per_pair = seconds / iters * 1e6;
  out.mb_per_sec = 2.0 * iters * static_cast<double>(n) * static_cast<double>(n) *
                   sizeof(cplx) / seconds / 1e6;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);  // argv[0] is skipped by parse
  const std::string spec = opts.get_string("spec", "tiny");
  const int hw = ThreadPool::hardware_threads();
  const int threads = static_cast<int>(opts.get_int("threads", std::max(4, hw)));
  const int repeat = static_cast<int>(opts.get_int("repeat", 3));
  const int fft_iters = static_cast<int>(opts.get_int("fft-iters", 200));
  const std::string out = opts.get_string("out", "BENCH_sweep.json");

  std::printf("building %s dataset...\n", spec.c_str());
  const Dataset dataset = bench::build_repro_dataset(spec);
  std::printf("sweep: %lld probes x %d repeats\n",
              static_cast<long long>(dataset.probe_count()), repeat);

  const double rate_1t = sweep_rate(dataset, 1, repeat);
  std::printf("  1 thread : %8.1f probes/s\n", rate_1t);
  const double rate_nt = sweep_rate(dataset, threads, repeat);
  std::printf("  %d threads: %8.1f probes/s (%.2fx)\n", threads, rate_nt, rate_nt / rate_1t);

  const FftResult fft = fft_rate(fft_iters);
  std::printf("fft 256x256 fwd+inv: %.1f us/pair, %.1f MB/s\n", fft.us_per_pair,
              fft.mb_per_sec);

  std::ofstream json(out);
  PTYCHO_CHECK(json.good(), "cannot open " << out);
  json << "{\n"
       << "  \"bench\": \"bench_sweep\",\n"
       << "  \"spec\": \"" << spec << "\",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"sweep_probes_per_sec_1t\": " << rate_1t << ",\n"
       << "  \"sweep_probes_per_sec_nt\": " << rate_nt << ",\n"
       << "  \"sweep_speedup\": " << rate_nt / rate_1t << ",\n"
       << "  \"fft2d_256_us_per_pair\": " << fft.us_per_pair << ",\n"
       << "  \"fft2d_256_mb_per_sec\": " << fft.mb_per_sec << "\n"
       << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
