// bench_sweep — the perf-trajectory baseline for the intra-rank hot path.
//
// Measures (1) full-batch gradient-sweep throughput (probes/sec) at one
// thread and at N threads through the BatchSweeper, and (2) single-thread
// Fft2D 256x256 forward+inverse throughput, then writes BENCH_sweep.json
// so successive PRs can be compared on the same machine.
//
// Per-backend numbers (kernel primitives + the 2-D FFT) are measured for
// the scalar table and, when the CPU supports it, the SIMD table, so the
// committed JSON records the vectorization speedup next to the sweep
// throughput.
//
//   bench_sweep [--spec tiny|small] [--threads N] [--repeat R]
//               [--fft-iters N] [--backend scalar|simd|auto]
//               [--out BENCH_sweep.json]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/sweep.hpp"
#include "data/synthetic.hpp"
#include "fft/fft2d.hpp"

using namespace ptycho;

namespace {

/// Probes/sec sweeping every probe of `dataset` `repeat` times on `threads`.
double sweep_rate(const Dataset& dataset, int threads, int repeat) {
  GradientEngine engine(dataset);
  ThreadPool pool(threads);
  BatchSweeper sweeper(engine, pool);
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  AccumulationBuffer accbuf(dataset.spec.slices, volume.frame);
  Probe probe = dataset.probe.clone();
  const index_t probes = dataset.probe_count();
  const auto id_of = [](index_t item) { return item; };
  const auto meas_of = [&](index_t item) {
    return dataset.measurements[static_cast<usize>(item)].view();
  };
  // Warm-up pass (first-touch allocations, FFT scratch pools).
  double cost = 0.0;
  sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
  accbuf.reset();
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
    accbuf.reset();
  }
  const double seconds = timer.seconds();
  return static_cast<double>(probes) * repeat / seconds;
}

struct FftResult {
  double us_per_pair = 0.0;
  double mb_per_sec = 0.0;
};

/// Single-thread 256x256 forward+inverse pairs; MB/s counts bytes touched
/// (2 passes over the field per pair).
FftResult fft_rate(int iters) {
  const index_t n = 256;
  fft::Fft2D plan(static_cast<usize>(n), static_cast<usize>(n));
  CArray2D field(n, n);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      field(y, x) = cplx(real(0.5) + static_cast<real>(x % 7), static_cast<real>(y % 5));
    }
  }
  for (int i = 0; i < 10; ++i) {
    plan.forward(field.view());
    plan.inverse(field.view());
  }
  WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    plan.forward(field.view());
    plan.inverse(field.view());
  }
  const double seconds = timer.seconds();
  FftResult out;
  out.us_per_pair = seconds / iters * 1e6;
  out.mb_per_sec = 2.0 * iters * static_cast<double>(n) * static_cast<double>(n) *
                   sizeof(cplx) / seconds / 1e6;
  return out;
}

struct KernelRates {
  double cmul_mb_per_sec = 0.0;
  double butterfly_mb_per_sec = 0.0;
};

/// Throughput of the two hottest backend primitives on one table, MB/s of
/// bytes moved (reads + writes). 4096 lanes fits L1/L2 so this measures
/// the kernel, not DRAM.
KernelRates kernel_rates(const backend::Kernels& kern) {
  const usize n = 4096;
  const int iters = 20000;
  std::vector<cplx> a(n), b(n), dst(n);
  for (usize i = 0; i < n; ++i) {
    a[i] = cplx(real(0.25) + static_cast<real>(i % 7), static_cast<real>(i % 5) - real(2));
    b[i] = cplx(static_cast<real>(i % 3) - real(1), real(0.5));
  }
  KernelRates out;
  {
    for (int i = 0; i < 100; ++i) kern.cmul_lanes(dst.data(), a.data(), b.data(), n);
    WallTimer timer;
    for (int i = 0; i < iters; ++i) kern.cmul_lanes(dst.data(), a.data(), b.data(), n);
    out.cmul_mb_per_sec =
        3.0 * iters * static_cast<double>(n) * sizeof(cplx) / timer.seconds() / 1e6;
  }
  {
    // The butterfly doubles signal energy per application (amplitude x
    // sqrt(2)), so run it in blocks of 100 from a pristine copy — the
    // resets stay outside the timed regions and values stay finite.
    const cplx w(real(0.70710678), real(-0.70710678));
    const std::vector<cplx> a0 = a;
    const std::vector<cplx> b0 = b;
    const int block = 100;
    const int blocks = iters / block;
    double seconds = 0.0;
    for (int blk = 0; blk < blocks; ++blk) {
      a = a0;
      b = b0;
      WallTimer timer;
      for (int i = 0; i < block; ++i) kern.butterfly_lanes(a.data(), b.data(), w, n);
      seconds += timer.seconds();
    }
    out.butterfly_mb_per_sec =
        4.0 * blocks * block * static_cast<double>(n) * sizeof(cplx) / seconds / 1e6;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);  // argv[0] is skipped by parse
  const std::string spec = opts.get_string("spec", "tiny");
  const int hw = ThreadPool::hardware_threads();
  const int threads = static_cast<int>(opts.get_int("threads", std::max(4, hw)));
  const int repeat = static_cast<int>(opts.get_int("repeat", 3));
  const int fft_iters = static_cast<int>(opts.get_int("fft-iters", 200));
  const std::string out = opts.get_string("out", "BENCH_sweep.json");
  const std::string backend_flag = opts.get_string("backend", "");
  if (!backend_flag.empty()) {
    PTYCHO_CHECK(backend::select(backend_flag),
                 "--backend " << backend_flag << " is not available on this machine");
  }
  const std::string active_backend = backend::active_name();
  std::printf("kernel backend: %s (simd %savailable)\n", active_backend.c_str(),
              backend::simd_available() ? "" : "un");

  std::printf("building %s dataset...\n", spec.c_str());
  const Dataset dataset = bench::build_repro_dataset(spec);
  std::printf("sweep: %lld probes x %d repeats\n",
              static_cast<long long>(dataset.probe_count()), repeat);

  const double rate_1t = sweep_rate(dataset, 1, repeat);
  std::printf("  1 thread : %8.1f probes/s\n", rate_1t);
  const double rate_nt = sweep_rate(dataset, threads, repeat);
  std::printf("  %d threads: %8.1f probes/s (%.2fx)\n", threads, rate_nt, rate_nt / rate_1t);

  const FftResult fft = fft_rate(fft_iters);
  std::printf("fft 256x256 fwd+inv (%s): %.1f us/pair, %.1f MB/s\n", active_backend.c_str(),
              fft.us_per_pair, fft.mb_per_sec);

  // Per-backend comparison: kernel primitives against each table directly,
  // plus the full 2-D FFT with the dispatch temporarily forced. Restore
  // the requested backend afterwards so the numbers above stay honest.
  const KernelRates kr_scalar = kernel_rates(backend::scalar_kernels());
  std::printf("kernels (scalar): cmul %.0f MB/s, butterfly %.0f MB/s\n",
              kr_scalar.cmul_mb_per_sec, kr_scalar.butterfly_mb_per_sec);
  KernelRates kr_simd;
  FftResult fft_scalar;
  FftResult fft_simd;
  const bool have_simd = backend::simd_available();
  // The top-level FFT number already covers whichever backend was active;
  // only the other table needs a fresh measurement.
  if (active_backend == "scalar") {
    fft_scalar = fft;
  } else {
    backend::select("scalar");
    fft_scalar = fft_rate(fft_iters);
  }
  if (have_simd) {
    kr_simd = kernel_rates(*backend::simd_kernels());
    std::printf("kernels (%s)  : cmul %.0f MB/s (%.2fx), butterfly %.0f MB/s (%.2fx)\n",
                backend::simd_kernels()->name, kr_simd.cmul_mb_per_sec,
                kr_simd.cmul_mb_per_sec / kr_scalar.cmul_mb_per_sec,
                kr_simd.butterfly_mb_per_sec,
                kr_simd.butterfly_mb_per_sec / kr_scalar.butterfly_mb_per_sec);
    if (active_backend == backend::simd_kernels()->name) {
      fft_simd = fft;
    } else {
      backend::select("simd");
      fft_simd = fft_rate(fft_iters);
    }
    std::printf("fft 256x256 scalar %.1f MB/s vs simd %.1f MB/s (%.2fx)\n",
                fft_scalar.mb_per_sec, fft_simd.mb_per_sec,
                fft_simd.mb_per_sec / fft_scalar.mb_per_sec);
  }
  backend::select(backend_flag.empty() ? "auto" : backend_flag);

  std::ofstream json(out);
  PTYCHO_CHECK(json.good(), "cannot open " << out);
  json << "{\n"
       << "  \"bench\": \"bench_sweep\",\n"
       << "  \"spec\": \"" << spec << "\",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"backend\": \"" << active_backend << "\",\n"
       << "  \"simd_backend\": \"" << (have_simd ? backend::simd_kernels()->name : "none")
       << "\",\n"
       << "  \"sweep_probes_per_sec_1t\": " << rate_1t << ",\n"
       << "  \"sweep_probes_per_sec_nt\": " << rate_nt << ",\n"
       << "  \"sweep_speedup\": " << rate_nt / rate_1t << ",\n"
       << "  \"fft2d_256_us_per_pair\": " << fft.us_per_pair << ",\n"
       << "  \"fft2d_256_mb_per_sec\": " << fft.mb_per_sec << ",\n"
       << "  \"fft2d_256_mb_per_sec_scalar\": " << fft_scalar.mb_per_sec << ",\n"
       << "  \"fft2d_256_mb_per_sec_simd\": " << (have_simd ? fft_simd.mb_per_sec : 0.0)
       << ",\n"
       << "  \"cmul_mb_per_sec_scalar\": " << kr_scalar.cmul_mb_per_sec << ",\n"
       << "  \"cmul_mb_per_sec_simd\": " << (have_simd ? kr_simd.cmul_mb_per_sec : 0.0)
       << ",\n"
       << "  \"butterfly_mb_per_sec_scalar\": " << kr_scalar.butterfly_mb_per_sec << ",\n"
       << "  \"butterfly_mb_per_sec_simd\": "
       << (have_simd ? kr_simd.butterfly_mb_per_sec : 0.0) << "\n"
       << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
