// bench_sweep — the perf-trajectory baseline for the intra-rank hot path.
//
// Measures (1) full-batch gradient-sweep throughput (probes/sec) at one
// thread and at N threads through the BatchSweeper, and (2) single-thread
// Fft2D 256x256 forward+inverse throughput, then writes BENCH_sweep.json
// so successive PRs can be compared on the same machine.
//
// Every gate metric is a warmed best-of-N measurement (see
// bench::best_of_seconds): on shared runners interference only adds time,
// so the fastest repeat is the comparable number.
//
// A/B columns quantify the fused spectral engine next to the plain one:
// per-backend numbers (scalar vs SIMD kernel tables), radix-4 vs radix-2
// FFT stage fusion, fused vs unfused propagator passes end-to-end in
// probes/s, and the strict-vs-fast precision tier (FMA tables +
// f16-compact measurement storage, self-gated by the cost-trajectory
// comparator). A `provenance` object (host, cores, compiler) records
// where the JSON was produced — numbers are only comparable within one
// host.
//
//   bench_sweep [--spec tiny|small] [--threads N] [--repeat R]
//               [--fft-iters N] [--backend scalar|simd|auto]
//               [--out BENCH_sweep.json]
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "bench_util.hpp"
#include "ckpt/snapshot.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/precision.hpp"
#include "core/serial_solver.hpp"
#include "core/sweep.hpp"
#include "data/simulate.hpp"
#include "data/synthetic.hpp"
#include "fft/fft2d.hpp"
#include "physics/multislice.hpp"
#include "tensor/compact.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace ptycho;

namespace {

/// Probes/sec sweeping every probe of `dataset`: best of `repeat` full
/// sweeps on `threads` through `schedule`, after one untimed warm-up
/// sweep. Engine flags are snapshotted by the plans built here, so
/// callers can A/B them.
double sweep_rate(const Dataset& dataset, int threads, int repeat,
                  SweepSchedule schedule = SweepSchedule::kStatic) {
  GradientEngine engine(dataset);
  ThreadPool pool(threads);
  const std::unique_ptr<SweepScheduler> scheduler = make_sweep_scheduler(schedule, pool);
  BatchSweeper sweeper(engine, *scheduler);
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  AccumulationBuffer accbuf(dataset.spec.slices, volume.frame);
  Probe probe = dataset.probe.clone();
  const index_t probes = dataset.probe_count();
  const auto id_of = [](index_t item) { return item; };
  const auto meas_of = [&](index_t item) {
    return dataset.measurements[static_cast<usize>(item)].view();
  };
  double cost = 0.0;
  const double seconds = bench::best_of_seconds(/*warmup=*/1, repeat, [&] {
    sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
    accbuf.reset();
  });
  return static_cast<double>(probes) / seconds;
}

/// End-to-end checkpointed reconstruction throughput (probes/sec) under
/// the given pipeline mode: a short full-batch serial run snapshotting at
/// every chunk boundary, so the sync column pays the shard I/O inline and
/// the async column overlaps it with the next chunks' sweeps. Best of
/// `repeat` after one warm-up; the checkpoint tree is wiped before every
/// run so each one writes the same bytes.
double pipeline_rate(const Dataset& dataset, int threads, int repeat, PipelineMode mode,
                     const std::string& ckpt_dir) {
  SerialConfig config;
  config.iterations = 2;
  config.chunks_per_iteration = 4;
  config.mode = UpdateMode::kFullBatch;
  config.exec.threads = threads;
  config.exec.schedule = SweepSchedule::kStatic;
  config.exec.pipeline = mode;
  config.record_cost = false;
  config.exec.checkpoint = ckpt::Policy{ckpt_dir, 1};
  const index_t probes = dataset.probe_count() * config.iterations;
  const double seconds = bench::best_of_seconds(/*warmup=*/1, repeat, [&] {
    std::filesystem::remove_all(ckpt_dir);
    (void)reconstruct_serial(dataset, config);
  });
  std::filesystem::remove_all(ckpt_dir);
  return static_cast<double>(probes) / seconds;
}

/// Span-derived comm/IO overlap ratio of one traced async checkpointed
/// run (obs::comm_overlap over the tracer snapshot): the fraction of
/// checkpoint/comm/wait time hidden under compute. ~0 for sync pipelines.
double async_overlap_ratio(const Dataset& dataset, int threads, const std::string& ckpt_dir) {
  SerialConfig config;
  config.iterations = 2;
  config.chunks_per_iteration = 4;
  config.mode = UpdateMode::kFullBatch;
  config.exec.threads = threads;
  config.exec.schedule = SweepSchedule::kStatic;
  config.exec.pipeline = PipelineMode::kAsync;
  config.record_cost = false;
  config.exec.checkpoint = ckpt::Policy{ckpt_dir, 1};
  std::filesystem::remove_all(ckpt_dir);
  obs::Tracer::instance().clear();
  obs::set_tracing_enabled(true);
  (void)reconstruct_serial(dataset, config);
  obs::set_tracing_enabled(false);
  const obs::OverlapStats stats = obs::comm_overlap(obs::Tracer::instance().snapshot());
  obs::Tracer::instance().clear();
  std::filesystem::remove_all(ckpt_dir);
  return stats.ratio();
}

/// Fast-tier sweep rate: the same full-batch sweep as sweep_rate but with
/// the FMA dispatch column active and the measurement stack held f16
/// compact (decoded per item into workspace scratch) — the
/// `--precision fast` hot path. Restores the strict tier on exit.
double sweep_rate_fast(const Dataset& dataset, int threads, int repeat) {
  backend::set_precision(backend::Precision::kFast);
  GradientEngine engine(dataset);
  ThreadPool pool(threads);
  const std::unique_ptr<SweepScheduler> scheduler =
      make_sweep_scheduler(SweepSchedule::kStatic, pool);
  BatchSweeper sweeper(engine, *scheduler, compact::Format::kF16);
  const compact::FrameStack compact_meas(dataset.measurements, compact::Format::kF16);
  sweeper.set_compact_measurements(&compact_meas);
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  AccumulationBuffer accbuf(dataset.spec.slices, volume.frame);
  Probe probe = dataset.probe.clone();
  const index_t probes = dataset.probe_count();
  const auto id_of = [](index_t item) { return item; };
  const auto meas_of = [&](index_t item) {
    return dataset.measurements[static_cast<usize>(item)].view();
  };
  double cost = 0.0;
  const double seconds = bench::best_of_seconds(/*warmup=*/1, repeat, [&] {
    sweeper.sweep(0, probes, probe, volume, accbuf, cost, nullptr, id_of, meas_of);
    accbuf.reset();
  });
  backend::set_precision(backend::Precision::kStrict);
  return static_cast<double>(probes) / seconds;
}

/// The fast-tier tolerance comparator, run as a self-gating A/B: max
/// per-iteration relative cost deviation of a `--precision fast` serial
/// reconstruction against the strict trajectory, both continued from one
/// strict warm-up iteration (cold starts gate gradient chaos, not
/// numerics — see tests/test_precision.cpp). Aborts the bench when the
/// deviation exceeds the documented 1e-3 gate.
double fast_cost_deviation(const Dataset& dataset) {
  const auto run = [&](const PrecisionPolicy& policy, int iterations,
                       const FramedVolume* initial) {
    SerialConfig config;
    config.iterations = iterations;
    config.step = real(0.1);
    config.mode = UpdateMode::kFullBatch;
    config.exec.precision = policy;
    apply_precision(policy);
    return reconstruct_serial(dataset, config, initial);
  };
  const SerialResult head = run(PrecisionPolicy{}, 1, nullptr);
  const SerialResult strict = run(PrecisionPolicy{}, 4, &head.volume);
  const SerialResult fast = run(parse_precision("fast"), 4, &head.volume);
  apply_precision(PrecisionPolicy{});
  const TrajectoryDeviation dev =
      compare_cost_trajectories(fast.cost.values(), strict.cost.values());
  PTYCHO_CHECK(dev.within(1e-3), "--precision fast failed the tolerance gate: deviation "
                                     << dev.max_relative << " at iteration "
                                     << dev.worst_iteration << " (gate 1e-3)");
  return dev.max_relative;
}

/// Resident MB of the compact (f16) transmittance cache after one cached
/// potential-model evaluation: the encoded per-slice planes plus the one
/// shared decode scratch plane. The strict f32 cache for the same
/// geometry is 2x the plane payload with no scratch.
double transmittance_cache_mb() {
  DatasetSpec spec = repro_tiny_spec();
  spec.model.model = ObjectModel::kPotential;
  const Dataset potential = make_synthetic_dataset(spec, SpecimenParams{}, AcquisitionParams{});
  GradientEngine engine(potential);
  MultisliceWorkspace ws = engine.make_workspace(compact::Format::kF16);
  ws.cache_transmittance = true;
  const FramedVolume volume = make_vacuum_volume(potential.field(), potential.spec.slices);
  (void)engine.probe_cost(0, volume, ws);
  double bytes = static_cast<double>(ws.trans_scratch.rows()) *
                 static_cast<double>(ws.trans_scratch.cols()) * sizeof(cplx);
  for (const auto& plane : ws.trans_c) {
    bytes += static_cast<double>(plane.size()) * sizeof(std::uint16_t);
  }
  PTYCHO_CHECK(!ws.trans_c.empty() && !ws.trans_c.front().empty(),
               "compact transmittance cache did not engage");
  return bytes / 1e6;
}

struct FftResult {
  double us_per_pair = 0.0;
  double mb_per_sec = 0.0;
};

/// Single-thread 256x256 forward+inverse pairs (best of `repeat` blocks of
/// `iters` pairs); MB/s counts bytes touched (2 passes over the field per
/// pair). The plan is built inside, so it snapshots the current engine
/// flags (radix-4 on/off A/B).
FftResult fft_rate(int iters, int repeat) {
  const index_t n = 256;
  fft::Fft2D plan(static_cast<usize>(n), static_cast<usize>(n));
  CArray2D field(n, n);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      field(y, x) = cplx(real(0.5) + static_cast<real>(x % 7), static_cast<real>(y % 5));
    }
  }
  const auto pairs = [&] {
    for (int i = 0; i < iters; ++i) {
      plan.forward(field.view());
      plan.inverse(field.view());
    }
  };
  // One warm-up block covers first-touch scratch allocation; dividing the
  // 10-pair legacy warmup out keeps run time comparable.
  for (int i = 0; i < 10; ++i) {
    plan.forward(field.view());
    plan.inverse(field.view());
  }
  const double seconds = bench::best_of_seconds(/*warmup=*/0, repeat, pairs);
  FftResult out;
  out.us_per_pair = seconds / iters * 1e6;
  out.mb_per_sec = 2.0 * iters * static_cast<double>(n) * static_cast<double>(n) *
                   sizeof(cplx) / seconds / 1e6;
  return out;
}

struct KernelRates {
  double cmul_mb_per_sec = 0.0;
  double butterfly_mb_per_sec = 0.0;
};

/// Throughput of the two hottest backend primitives on one table, MB/s of
/// bytes moved (reads + writes). 4096 lanes fits L1/L2 so this measures
/// the kernel, not DRAM.
KernelRates kernel_rates(const backend::Kernels& kern, int repeat) {
  const usize n = 4096;
  const int iters = 20000;
  std::vector<cplx> a(n), b(n), dst(n);
  for (usize i = 0; i < n; ++i) {
    a[i] = cplx(real(0.25) + static_cast<real>(i % 7), static_cast<real>(i % 5) - real(2));
    b[i] = cplx(static_cast<real>(i % 3) - real(1), real(0.5));
  }
  KernelRates out;
  {
    const double seconds = bench::best_of_seconds(/*warmup=*/1, repeat, [&] {
      for (int i = 0; i < iters; ++i) kern.cmul_lanes(dst.data(), a.data(), b.data(), n);
    });
    out.cmul_mb_per_sec =
        3.0 * iters * static_cast<double>(n) * sizeof(cplx) / seconds / 1e6;
  }
  {
    // The butterfly doubles signal energy per application (amplitude x
    // sqrt(2)), so run it in blocks of 100 from a pristine copy — the
    // resets stay outside the timed regions and values stay finite.
    const cplx w(real(0.70710678), real(-0.70710678));
    const std::vector<cplx> a0 = a;
    const std::vector<cplx> b0 = b;
    const int block = 100;
    const int blocks = iters / block;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < std::max(1, repeat); ++rep) {
      double seconds = 0.0;
      for (int blk = 0; blk < blocks; ++blk) {
        a = a0;
        b = b0;
        WallTimer timer;
        for (int i = 0; i < block; ++i) kern.butterfly_lanes(a.data(), b.data(), w, n);
        seconds += timer.seconds();
      }
      best = std::min(best, seconds);
    }
    out.butterfly_mb_per_sec =
        4.0 * blocks * block * static_cast<double>(n) * sizeof(cplx) / best / 1e6;
  }
  return out;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string hostname_string() {
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) != 0) return "unknown";
  return host;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);  // argv[0] is skipped by parse
  const std::string spec = opts.get_string("spec", "tiny");
  const int hw = ThreadPool::hardware_threads();
  // --threads/--backend (and the rest of the execution flags) go through
  // the same parser as the CLI, so the two front-ends cannot drift.
  const ExecOptions exec = parse_exec_options(opts);
  const int threads = exec.threads != 0 ? exec.threads : std::max(4, hw);
  const int repeat = static_cast<int>(opts.get_int("repeat", 3));
  const int fft_iters = static_cast<int>(opts.get_int("fft-iters", 200));
  const std::string out = opts.get_string("out", "BENCH_sweep.json");
  const std::string backend_flag = exec.backend;
  if (!backend_flag.empty()) {
    PTYCHO_CHECK(backend::select(backend_flag),
                 "--backend " << backend_flag << " is not available on this machine");
  }
  const std::string active_backend = backend::active_name();
  const fft::EngineFlags entry_flags = fft::engine_flags();
  std::printf("kernel backend: %s (simd %savailable)\n", active_backend.c_str(),
              backend::simd_available() ? "" : "un");
  std::printf("fft engine: radix4=%d fused=%d batched_rows=%d\n", entry_flags.radix4,
              entry_flags.fused, entry_flags.batched_rows);

  std::printf("building %s dataset...\n", spec.c_str());
  const Dataset dataset = bench::build_repro_dataset(spec);
  std::printf("sweep: %lld probes, best of %d\n",
              static_cast<long long>(dataset.probe_count()), repeat);

  const double rate_1t = sweep_rate(dataset, 1, repeat);
  std::printf("  1 thread : %8.1f probes/s\n", rate_1t);
  const double rate_nt = sweep_rate(dataset, threads, repeat);
  std::printf("  %d threads: %8.1f probes/s (%.2fx)\n", threads, rate_nt, rate_nt / rate_1t);

  // Static-vs-work-stealing A/B on the same pool sizes. At 1 thread the
  // schedulers run the identical sequential fast path, so `ws` doubles as
  // a sanity column (within noise of static); at N threads the delta is
  // the stealing overhead vs the load-balance win.
  const double rate_1t_ws = sweep_rate(dataset, 1, repeat, SweepSchedule::kWorkStealing);
  std::printf("  1 thread ws: %8.1f probes/s (vs static %.2fx)\n", rate_1t_ws,
              rate_1t_ws / rate_1t);
  const double rate_nt_ws = sweep_rate(dataset, threads, repeat, SweepSchedule::kWorkStealing);
  std::printf("  %d threads ws: %8.1f probes/s (vs static %.2fx)\n", threads, rate_nt_ws,
              rate_nt_ws / rate_nt);

  // Fused-vs-unfused A/B, end to end: same dataset and thread count, with
  // only the spectral fusion (propagator/multislice folded passes) off.
  fft::EngineFlags unfused = entry_flags;
  unfused.fused = false;
  fft::set_engine_flags(unfused);
  const double rate_1t_unfused = sweep_rate(dataset, 1, repeat);
  fft::set_engine_flags(entry_flags);
  std::printf("  1 thread unfused: %8.1f probes/s (fusion %.2fx)\n", rate_1t_unfused,
              rate_1t / rate_1t_unfused);

  // Traced-vs-untraced A/B: the same 1-thread sweep with the telemetry
  // flags on (spans + counters live). The untraced column above is the
  // regression-gated number; this one bounds what --trace-out costs and
  // guards the "disabled instrumentation is a cached-flag branch" claim.
  obs::set_tracing_enabled(true);
  obs::set_metrics_enabled(true);
  const double rate_1t_traced = sweep_rate(dataset, 1, repeat);
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);
  obs::Tracer::instance().clear();
  obs::registry().reset();
  std::printf("  1 thread traced: %8.1f probes/s (overhead %.1f%%)\n", rate_1t_traced,
              (rate_1t / rate_1t_traced - 1.0) * 100.0);

  // Sync-vs-async pipeline A/B: the same checkpoint-every-chunk serial
  // reconstruction with shard writes inline (sync) or on the background
  // slot (async — bitwise-identical output, see test_async_pipeline). The
  // overlap ratio is the span-derived fraction of checkpoint/comm time
  // hidden under compute during the async run.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "ptycho_bench_sweep_ckpt").string();
  const double rate_sync_ckpt = pipeline_rate(dataset, threads, repeat,
                                              PipelineMode::kSync, ckpt_dir);
  const double rate_async = pipeline_rate(dataset, threads, repeat,
                                          PipelineMode::kAsync, ckpt_dir);
  const double overlap_ratio = async_overlap_ratio(dataset, threads, ckpt_dir);
  std::printf("pipeline ckpt sync %8.1f probes/s vs async %8.1f probes/s (%.2fx, overlap %.2f)\n",
              rate_sync_ckpt, rate_async, rate_async / rate_sync_ckpt, overlap_ratio);

  // Strict-vs-fast tier A/B: the same 1-thread sweep with the FMA
  // dispatch column active and f16-compact measurement frames (the
  // `--precision fast` hot path), self-gated by the warm-started cost
  // trajectory comparator so a fast number that drifted past the 1e-3
  // tolerance can never be published. The footprint column records the
  // compact transmittance cache so it cannot silently grow back to f32.
  const double rate_1t_fast = sweep_rate_fast(dataset, 1, repeat);
  std::printf("  1 thread fast: %8.1f probes/s (vs strict %.2fx)\n", rate_1t_fast,
              rate_1t_fast / rate_1t);
  const double fast_dev = fast_cost_deviation(dataset);
  std::printf("  fast cost deviation: %.2e (gate 1e-3)\n", fast_dev);
  const double trans_cache_mb = transmittance_cache_mb();
  std::printf("  compact transmittance cache: %.3f MB\n", trans_cache_mb);
  KernelRates kr_fma;
  const bool have_fma = backend::fma_available();
  if (have_fma) {
    kr_fma = kernel_rates(*backend::fma_kernels(), repeat);
    std::printf("kernels (%s): cmul %.0f MB/s, butterfly %.0f MB/s\n",
                backend::fma_kernels()->name, kr_fma.cmul_mb_per_sec,
                kr_fma.butterfly_mb_per_sec);
  }

  const FftResult fft = fft_rate(fft_iters, repeat);
  std::printf("fft 256x256 fwd+inv (%s): %.1f us/pair, %.1f MB/s\n", active_backend.c_str(),
              fft.us_per_pair, fft.mb_per_sec);

  // Radix4-vs-radix2 A/B: plans snapshot the flag at construction, so a
  // fresh fft_rate run under toggled flags measures the other stage
  // schedule with everything else identical.
  fft::EngineFlags radix2_flags = entry_flags;
  radix2_flags.radix4 = false;
  fft::set_engine_flags(radix2_flags);
  const FftResult fft_radix2 = fft_rate(fft_iters, repeat);
  fft::set_engine_flags(entry_flags);
  std::printf("fft 256x256 radix2 %.1f MB/s vs radix4 %.1f MB/s (%.2fx)\n",
              fft_radix2.mb_per_sec, fft.mb_per_sec, fft.mb_per_sec / fft_radix2.mb_per_sec);

  // Per-backend comparison: kernel primitives against each table directly,
  // plus the full 2-D FFT with the dispatch temporarily forced. Restore
  // the requested backend afterwards so the numbers above stay honest.
  const KernelRates kr_scalar = kernel_rates(backend::scalar_kernels(), repeat);
  std::printf("kernels (scalar): cmul %.0f MB/s, butterfly %.0f MB/s\n",
              kr_scalar.cmul_mb_per_sec, kr_scalar.butterfly_mb_per_sec);
  KernelRates kr_simd;
  FftResult fft_scalar;
  FftResult fft_simd;
  const bool have_simd = backend::simd_available();
  // The top-level FFT number already covers whichever backend was active;
  // only the other table needs a fresh measurement.
  if (active_backend == "scalar") {
    fft_scalar = fft;
  } else {
    backend::select("scalar");
    fft_scalar = fft_rate(fft_iters, repeat);
  }
  if (have_simd) {
    kr_simd = kernel_rates(*backend::simd_kernels(), repeat);
    std::printf("kernels (%s)  : cmul %.0f MB/s (%.2fx), butterfly %.0f MB/s (%.2fx)\n",
                backend::simd_kernels()->name, kr_simd.cmul_mb_per_sec,
                kr_simd.cmul_mb_per_sec / kr_scalar.cmul_mb_per_sec,
                kr_simd.butterfly_mb_per_sec,
                kr_simd.butterfly_mb_per_sec / kr_scalar.butterfly_mb_per_sec);
    if (active_backend == backend::simd_kernels()->name) {
      fft_simd = fft;
    } else {
      backend::select("simd");
      fft_simd = fft_rate(fft_iters, repeat);
    }
    std::printf("fft 256x256 scalar %.1f MB/s vs simd %.1f MB/s (%.2fx)\n",
                fft_scalar.mb_per_sec, fft_simd.mb_per_sec,
                fft_simd.mb_per_sec / fft_scalar.mb_per_sec);
  }
  backend::select(backend_flag.empty() ? "auto" : backend_flag);

  std::ofstream json(out);
  PTYCHO_CHECK(json.good(), "cannot open " << out);
  json << "{\n"
       << "  \"bench\": \"bench_sweep\",\n"
       << "  \"spec\": \"" << spec << "\",\n"
       << "  \"provenance\": {\n"
       << "    \"host\": \"" << hostname_string() << "\",\n"
       << "    \"hardware_concurrency\": " << hw << ",\n"
       << "    \"compiler\": \"" << compiler_string() << "\",\n"
       << "    \"timing\": \"warmed best-of-" << repeat << "\"\n"
       << "  },\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"backend\": \"" << active_backend << "\",\n"
       << "  \"simd_backend\": \"" << (have_simd ? backend::simd_kernels()->name : "none")
       << "\",\n"
       << "  \"fft_engine\": {\"radix4\": " << (entry_flags.radix4 ? "true" : "false")
       << ", \"fused\": " << (entry_flags.fused ? "true" : "false")
       << ", \"batched_rows\": " << (entry_flags.batched_rows ? "true" : "false") << "},\n"
       << "  \"sweep_probes_per_sec_1t\": " << rate_1t << ",\n"
       << "  \"sweep_probes_per_sec_1t_unfused\": " << rate_1t_unfused << ",\n"
       << "  \"sweep_fusion_speedup\": " << rate_1t / rate_1t_unfused << ",\n"
       << "  \"sweep_probes_per_sec_1t_traced\": " << rate_1t_traced << ",\n"
       << "  \"sweep_trace_overhead\": " << rate_1t / rate_1t_traced << ",\n"
       << "  \"sweep_probes_per_sec_nt\": " << rate_nt << ",\n"
       << "  \"sweep_speedup\": " << rate_nt / rate_1t << ",\n"
       << "  \"sweep_probes_per_sec_ws\": " << rate_1t_ws << ",\n"
       << "  \"sweep_probes_per_sec_ws_nt\": " << rate_nt_ws << ",\n"
       << "  \"sweep_ws_vs_static_1t\": " << rate_1t_ws / rate_1t << ",\n"
       << "  \"sweep_ws_vs_static_nt\": " << rate_nt_ws / rate_nt << ",\n"
       << "  \"sweep_probes_per_sec_1t_fast\": " << rate_1t_fast << ",\n"
       << "  \"sweep_fast_speedup\": " << rate_1t_fast / rate_1t << ",\n"
       << "  \"sweep_fast_cost_dev\": " << fast_dev << ",\n"
       << "  \"transmittance_cache_mb\": " << trans_cache_mb << ",\n"
       << "  \"cmul_mb_per_sec_fma\": " << (have_fma ? kr_fma.cmul_mb_per_sec : 0.0) << ",\n"
       << "  \"butterfly_mb_per_sec_fma\": "
       << (have_fma ? kr_fma.butterfly_mb_per_sec : 0.0) << ",\n"
       << "  \"sweep_probes_per_sec_sync_ckpt\": " << rate_sync_ckpt << ",\n"
       << "  \"sweep_probes_per_sec_async\": " << rate_async << ",\n"
       << "  \"sweep_async_vs_sync_ckpt\": " << rate_async / rate_sync_ckpt << ",\n"
       << "  \"sweep_async_overlap_ratio\": " << overlap_ratio << ",\n"
       << "  \"fft2d_256_us_per_pair\": " << fft.us_per_pair << ",\n"
       << "  \"fft2d_256_mb_per_sec\": " << fft.mb_per_sec << ",\n"
       << "  \"fft2d_256_mb_per_sec_radix2\": " << fft_radix2.mb_per_sec << ",\n"
       << "  \"fft2d_radix4_speedup\": " << fft.mb_per_sec / fft_radix2.mb_per_sec << ",\n"
       << "  \"fft2d_256_mb_per_sec_scalar\": " << fft_scalar.mb_per_sec << ",\n"
       << "  \"fft2d_256_mb_per_sec_simd\": " << (have_simd ? fft_simd.mb_per_sec : 0.0)
       << ",\n"
       << "  \"cmul_mb_per_sec_scalar\": " << kr_scalar.cmul_mb_per_sec << ",\n"
       << "  \"cmul_mb_per_sec_simd\": " << (have_simd ? kr_simd.cmul_mb_per_sec : 0.0)
       << ",\n"
       << "  \"butterfly_mb_per_sec_scalar\": " << kr_scalar.butterfly_mb_per_sec << ",\n"
       << "  \"butterfly_mb_per_sec_simd\": "
       << (have_simd ? kr_simd.butterfly_mb_per_sec : 0.0) << "\n"
       << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
