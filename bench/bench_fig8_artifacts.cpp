// Fig. 8 reproduction: image seam artifacts — Halo Voxel Exchange vs
// Gradient Decomposition (functional experiment on the repro-small
// dataset, real reconstructions on the virtual cluster).
//
// Outputs: seam metrics for both methods (plus serial reference), PGM
// phase images of a reconstruction slice so the seams can be inspected
// visually, and reconstruction error vs the serial reference.
#include "bench_util.hpp"
#include "core/reconstructor.hpp"
#include "core/seam_metric.hpp"
#include "data/io.hpp"

using namespace ptycho;
using namespace ptycho::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 12));
  const int mesh = static_cast<int>(opts.get_int("mesh", 3));
  const auto step = static_cast<real>(opts.get_double("step", 0.1));
  const std::string which = opts.get_string("dataset", "small");

  std::printf("=== Fig. 8: seam artifacts, HVE vs GD (functional, %s dataset) ===\n\n",
              which.c_str());
  const Dataset dataset = build_repro_dataset(which);
  std::printf("dataset: %lld probes, field %lldx%lld, %lld slices, mesh %dx%d, %d iterations\n\n",
              static_cast<long long>(dataset.probe_count()),
              static_cast<long long>(dataset.field().h),
              static_cast<long long>(dataset.field().w),
              static_cast<long long>(dataset.spec.slices), mesh, mesh, iterations);

  // Serial reference (no decomposition -> no seams by construction).
  SerialConfig serial_config;
  serial_config.iterations = iterations;
  serial_config.step = step;
  const SerialResult serial = reconstruct_serial(dataset, serial_config);

  GdConfig gd_config;
  gd_config.nranks = mesh * mesh;
  gd_config.mesh_rows = mesh;
  gd_config.mesh_cols = mesh;
  gd_config.iterations = iterations;
  gd_config.step = step;
  const ParallelResult gd = reconstruct_gd(dataset, gd_config);
  const Partition partition = make_gd_partition(dataset, gd_config);

  const SeamReport serial_seams = measure_seams(serial.volume, partition);
  const SeamReport gd_seams = measure_seams(gd.volume, partition);

  std::printf("%-30s %14s %14s %14s\n", "method", "seam ratio", "border jump",
              "err vs serial");
  std::printf("%-30s %14.3f %14.3e %14s\n", "serial reference", serial_seams.seam_ratio,
              serial_seams.border_jump, "0");
  std::printf("%-30s %14.3f %14.3e %14.4f\n", "gradient decomposition", gd_seams.seam_ratio,
              gd_seams.border_jump, relative_rms_error(gd.volume, serial.volume));

  // HVE across replication rings: fewer rings -> cheaper but more missing
  // overlap contributions -> stronger persistent seams. The paper's
  // configuration is two rings; at its overlap ratio (probe spanning >5
  // scan steps) even two rings leave contributions out.
  const index_t mid = dataset.spec.slices / 2;
  double hve_worst_ratio = 0.0;
  for (const int rings : {0, 1, 2}) {
    HveConfig hve_config;
    hve_config.nranks = mesh * mesh;
    hve_config.mesh_rows = mesh;
    hve_config.mesh_cols = mesh;
    hve_config.iterations = iterations;
    hve_config.step = step;
    hve_config.extra_rings = rings;
    hve_config.local_epochs = static_cast<int>(opts.get_int("epochs", 2));
    char label[64];
    std::snprintf(label, sizeof label, "halo voxel exchange (rings=%d)", rings);
    if (!hve_feasible(dataset, hve_config)) {
      std::printf("%-30s %14s — paste constraint violated at this mesh\n", label, "NA");
      continue;
    }
    const ParallelResult hve = reconstruct_hve(dataset, hve_config);
    const SeamReport hve_seams = measure_seams(hve.volume, partition);
    hve_worst_ratio = std::max(hve_worst_ratio, hve_seams.seam_ratio);
    std::printf("%-30s %14.3f %14.3e %14.4f\n", label, hve_seams.seam_ratio,
                hve_seams.border_jump, relative_rms_error(hve.volume, serial.volume));
    char name[64];
    std::snprintf(name, sizeof name, "fig8_hve_rings%d.pgm", rings);
    io::write_phase_pgm(out_path(opts, name), hve.volume.window(mid, hve.volume.frame));
  }
  std::printf("\nworst HVE/GD seam ratio = %.2f (paper: HVE shows visible seams, GD none; "
              "GD at/below the serial background level confirms elimination)\n",
              hve_worst_ratio / gd_seams.seam_ratio);

  io::write_phase_pgm(out_path(opts, "fig8_serial.pgm"),
                      serial.volume.window(mid, serial.volume.frame));
  io::write_phase_pgm(out_path(opts, "fig8_gd.pgm"), gd.volume.window(mid, gd.volume.frame));
  io::write_phase_pgm(out_path(opts, "fig8_truth.pgm"),
                      dataset.ground_truth.window(mid, dataset.ground_truth.frame));
  std::printf("phase images written: fig8_{serial,gd,truth,hve_rings*}.pgm\n");
  return 0;
}
