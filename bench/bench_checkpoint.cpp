// Checkpoint overhead bench: snapshot write / restore cost next to the
// iteration cost it protects, so the perf trajectory shows what a
// checkpoint interval buys and what it costs.
//
// Measures, on the functional repro dataset:
//   * baseline GD iteration time (no checkpointing)
//   * GD iteration time with checkpoint-every-chunk (worst case)
//   * snapshot load + same-layout restore launch cost
//   * elastic restore launch cost (K -> K' re-tile + redistribution)
//   * snapshot size on disk
#include <filesystem>

#include "bench_util.hpp"
#include "ckpt/snapshot.hpp"
#include "core/gradient_decomposition.hpp"

using namespace ptycho;
using namespace ptycho::bench;

namespace fs = std::filesystem;

namespace {

std::uintmax_t tree_bytes(const std::string& root) {
  std::uintmax_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string which = opts.get_string("dataset", "small");
  const int iterations = static_cast<int>(opts.get_int("iterations", 6));
  const int ranks = static_cast<int>(opts.get_int("ranks", 6));
  const int elastic_ranks = static_cast<int>(opts.get_int("elastic-ranks", 4));
  const std::string dir =
      opts.get_string("ckpt-dir", (fs::temp_directory_path() / "ptycho_bench_ckpt").string());

  std::printf("=== checkpoint overhead (%s dataset, %d ranks, %d iterations) ===\n\n",
              which.c_str(), ranks, iterations);
  const Dataset dataset = build_repro_dataset(which);

  fs::remove_all(dir);
  fs::create_directories(dir);

  GdConfig base;
  base.nranks = ranks;
  base.iterations = iterations;
  base.mode = UpdateMode::kFullBatch;

  // Baseline: no checkpointing.
  const ParallelResult plain = reconstruct_gd(dataset, base);
  const double plain_per_iter = plain.wall_seconds / iterations;
  std::printf("%-34s %8.3f s  (%.3f s/iter)\n", "baseline run", plain.wall_seconds,
              plain_per_iter);

  // Checkpoint every chunk (here: every iteration) — the worst case.
  GdConfig with_ckpt = base;
  with_ckpt.exec.checkpoint = ckpt::Policy{dir, 1};
  const ParallelResult checked = reconstruct_gd(dataset, with_ckpt);
  const double ckpt_per_iter = checked.wall_seconds / iterations;
  std::printf("%-34s %8.3f s  (%.3f s/iter, +%.1f%%)\n", "checkpoint-every-chunk run",
              checked.wall_seconds, ckpt_per_iter,
              (ckpt_per_iter / plain_per_iter - 1.0) * 100.0);
  const std::uintmax_t bytes = tree_bytes(dir);
  std::printf("%-34s %8.2f MiB (%d snapshots, %.2f MiB each)\n", "snapshot footprint",
              static_cast<double>(bytes) / kMiB, iterations,
              static_cast<double>(bytes) / kMiB / iterations);

  // Load + same-layout restore (zero further iterations: pure launch cost).
  {
    WallTimer timer;
    const ckpt::Snapshot snap = ckpt::load_latest(dir);
    const double load_s = timer.seconds();
    GdConfig resume = base;
    resume.restore = &snap;
    WallTimer restore_timer;
    const ParallelResult restored = reconstruct_gd(dataset, resume);
    std::printf("%-34s %8.3f s load + %.3f s relaunch (cost %.4g)\n", "same-layout restore",
                load_s, restore_timer.seconds(), restored.cost.last());
  }

  // Elastic restore on a different rank count.
  {
    const ckpt::Snapshot snap = ckpt::load_latest(dir);
    GdConfig resume = base;
    resume.nranks = elastic_ranks;
    resume.restore = &snap;
    WallTimer timer;
    const ParallelResult restored = reconstruct_gd(dataset, resume);
    std::printf("%-34s %8.3f s relaunch at K'=%d (cost %.4g)\n", "elastic restore",
                timer.seconds(), elastic_ranks, restored.cost.last());
  }

  fs::remove_all(dir);
  std::printf("\nfinding to check: per-iteration checkpoint cost should be a small\n"
              "fraction of iteration time, and elastic restore should cost about one\n"
              "snapshot redistribution — far less than recomputing the lost run.\n");
  return 0;
}
