// Table II reproduction: Gradient Decomposition vs Halo Voxel Exchange on
// the *small* Lead Titanate dataset (4158 probes, 1536^2 x 100 volume).
//
// Rows per paper: Nodes / GPUs / Memory footprint per GPU (GB) /
// Runtime (mins, 100 iterations) / Strong scaling efficiency. HVE cells
// show NA where the paste constraint is violated (the paper reports NA
// beyond 54 GPUs on this dataset).
//
// Memory comes from the geometric memory model; runtimes from the
// calibrated discrete-event schedule simulation (see DESIGN.md Sec. 2 and
// EXPERIMENTS.md for what is calibrated vs predicted).
#include "bench_util.hpp"
#include "data/io.hpp"

using namespace ptycho;
using namespace ptycho::bench;

namespace {

void run_table(const PaperDataset& dataset, const std::vector<long long>& gpu_counts,
               int iterations, const std::string& csv_path) {
  io::CsvWriter csv(csv_path);
  csv.header({"gpus", "gd_mem_gb", "gd_runtime_min", "gd_efficiency", "hve_mem_gb",
              "hve_runtime_min", "hve_efficiency", "hve_feasible"});

  TablePrinter gd_table({"Nodes", "GPUs", "Memory/GPU (GB)", "Runtime (mins)", "Scaling eff."});
  TablePrinter hve_table({"Nodes", "GPUs", "Memory/GPU (GB)", "Runtime (mins)", "Scaling eff."});

  double gd_base_time = 0.0;
  double hve_base_time = 0.0;
  int base_gpus = 0;

  for (long long gpus_ll : gpu_counts) {
    const int gpus = static_cast<int>(gpus_ll);

    // --- Gradient Decomposition --------------------------------------
    ModelCell gd(dataset, gpus, Strategy::kGradientDecomposition);
    rt::GdScheduleParams gd_params;
    gd_params.iterations = iterations;
    const rt::ScheduleResult gd_run = gd.perf(dataset).simulate_gd(gd_params);
    const double gd_minutes = gd_run.makespan_seconds / 60.0;
    if (base_gpus == 0) {
      base_gpus = gpus;
      gd_base_time = gd_minutes;
    }
    const double gd_eff = scaling_efficiency(gd_base_time, base_gpus, gd_minutes, gpus);
    gd_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), fmt("%.2f", gd.memory.mean_gb()),
                         fmt("%.1f", gd_minutes), fmt("%.0f%%", gd_eff * 100.0)});

    // --- Halo Voxel Exchange ------------------------------------------
    ModelCell hve(dataset, gpus, Strategy::kHaloVoxelExchange);
    const bool feasible = hve.partition.hve_paste_feasible();
    double hve_minutes = 0.0;
    double hve_eff = 0.0;
    if (feasible) {
      rt::HveScheduleParams hve_params;
      hve_params.iterations = iterations;
      hve_minutes = hve.perf(dataset).simulate_hve(hve_params).makespan_seconds / 60.0;
      if (hve_base_time == 0.0) hve_base_time = hve_minutes;
      hve_eff = scaling_efficiency(hve_base_time, base_gpus, hve_minutes, gpus);
      hve_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), fmt("%.2f", hve.memory.mean_gb()),
                            fmt("%.1f", hve_minutes), fmt("%.0f%%", hve_eff * 100.0)});
    } else {
      hve_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), "NA", "NA", "NA"});
    }

    csv.row({static_cast<double>(gpus), gd.memory.mean_gb(), gd_minutes, gd_eff * 100.0,
             hve.memory.mean_gb(), feasible ? hve_minutes : -1.0,
             feasible ? hve_eff * 100.0 : -1.0, feasible ? 1.0 : 0.0});
  }

  std::printf("(a) Gradient Decomposition — %s\n", dataset.name.c_str());
  gd_table.print();
  std::printf("\n(b) Halo Voxel Exchange — same dataset\n");
  hve_table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 100));
  const std::vector<long long> gpus = opts.get_int_list("gpus", {6, 24, 54, 126, 198, 462});

  std::printf("=== Table II: small Lead Titanate dataset ===\n");
  std::printf("paper reference — GD: 2.53 GB / 360 min @6 GPUs -> 0.23 GB / 3.0 min @462;\n");
  std::printf("HVE: 2.80 GB / 463 min @6 -> NA past 54 GPUs\n\n");
  run_table(paper_small_dataset(), gpus, iterations, out_path(opts, "table2_small.csv"));
  std::printf("\nCSV written to %s\n", out_path(opts, "table2_small.csv").c_str());
  return 0;
}
