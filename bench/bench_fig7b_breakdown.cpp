// Fig. 7(b) reproduction: runtime breakdown (computation / GPU waiting /
// communication) for the large dataset, with and without the Asynchronous
// Pipelining for Parallel Passes (APPP), 24 -> 462 GPUs.
//
// Paper observations: with APPP the communication share stays low through 462 GPUs
// (16x smaller than without at 462); waiting time decreases from hundreds
// of minutes at 24 GPUs to ~seconds at 462.
#include "bench_util.hpp"
#include "data/io.hpp"

using namespace ptycho;
using namespace ptycho::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 100));
  const std::vector<long long> gpus = opts.get_int_list("gpus", {24, 54, 126, 198, 462});
  const PaperDataset dataset = paper_large_dataset();

  std::printf("=== Fig. 7b: runtime breakdown, large dataset, APPP on/off ===\n\n");
  io::CsvWriter csv(out_path(opts, "fig7b_breakdown.csv"));
  csv.header({"gpus", "appp", "compute_min", "wait_min", "comm_min", "total_min"});

  std::printf("%8s %8s %14s %12s %12s %12s\n", "GPUs", "APPP", "compute(min)", "wait(min)",
              "comm(min)", "total(min)");
  double comm_with_462 = 0.0;
  double comm_without_462 = 0.0;
  for (long long gpus_ll : gpus) {
    const int p = static_cast<int>(gpus_ll);
    ModelCell cell(dataset, p, Strategy::kGradientDecomposition);
    for (const bool appp : {true, false}) {
      rt::GdScheduleParams params;
      params.iterations = iterations;
      params.appp = appp;
      const rt::ScheduleResult run = cell.perf(dataset).simulate_gd(params);
      const rt::BreakdownEntry mean = run.mean();
      std::printf("%8d %8s %14.2f %12.3f %12.3f %12.2f\n", p, appp ? "on" : "w/o",
                  mean.compute / 60.0, mean.wait / 60.0, mean.comm / 60.0,
                  run.makespan_seconds / 60.0);
      csv.row({static_cast<double>(p), appp ? 1.0 : 0.0, mean.compute / 60.0, mean.wait / 60.0,
               mean.comm / 60.0, run.makespan_seconds / 60.0});
      if (p == 462) (appp ? comm_with_462 : comm_without_462) = mean.comm;
    }
  }
  if (comm_with_462 > 0.0) {
    std::printf("\ncommunication at 462 GPUs: %.1fx smaller with APPP (paper reports 16x)\n",
                comm_without_462 / comm_with_462);
  }
  std::printf("CSV written to %s\n", out_path(opts, "fig7b_breakdown.csv").c_str());
  return 0;
}
