// Shared helpers for the experiment harnesses: paper-scale model bundles,
// table formatting, and cached functional datasets.
#pragma once

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "core/memory_model.hpp"
#include "data/simulate.hpp"
#include "runtime/perfmodel.hpp"

namespace ptycho::bench {

/// Warmed best-of-N timing for gate metrics: run `fn` `warmup` times
/// untimed (first-touch allocations, scratch pools, branch predictors),
/// then `repeats` timed runs and return the fastest seconds. The minimum
/// is the stable statistic on shared runners — interference from other
/// tenants only ever adds time, so the fastest repeat is the closest
/// observation of the machine's actual speed and is what regression gates
/// should compare run-to-run.
template <typename Fn>
[[nodiscard]] inline double best_of_seconds(int warmup, int repeats, Fn&& fn) {
  repeats = std::max(1, repeats);  // a non-positive --repeat must not yield inf metrics
  for (int i = 0; i < warmup; ++i) fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// Paper-scale geometry + memory + perf model for one (dataset, gpus,
/// strategy) cell of Tables II/III.
struct ModelCell {
  ScanPattern scan;
  Partition partition;
  MemoryEstimate memory;

  ModelCell(const PaperDataset& dataset, int gpus, Strategy strategy,
            const PaperMemoryConfig& config = {})
      : scan(make_paper_scan(dataset, config.eff_window_px)),
        partition(make_paper_partition(scan, gpus, strategy, config.hve_extra_rings)),
        memory(estimate_paper_memory(partition, dataset, config)) {}

  [[nodiscard]] rt::PerfModel perf(const PaperDataset& dataset,
                                   const rt::MachineModel& machine = {}) const {
    return rt::PerfModel(machine, partition, dataset, memory.per_rank_bytes);
  }
};

/// Fixed-width row printer for paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> row_labels, int cell_width = 10)
      : labels_(std::move(row_labels)), width_(cell_width) {
    for (const auto& label : labels_) label_width_ = std::max(label_width_, label.size());
  }

  void add_column(const std::vector<std::string>& cells) { columns_.push_back(cells); }

  void print() const {
    for (usize r = 0; r < labels_.size(); ++r) {
      std::printf("%-*s", static_cast<int>(label_width_ + 2), labels_[r].c_str());
      for (const auto& col : columns_) {
        std::printf("%*s", width_, r < col.size() ? col[r].c_str() : "");
      }
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<std::string>> columns_;
  usize label_width_ = 0;
  int width_;
};

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
#endif
// `format` is always a literal at the call sites; the indirection exists
// so callers pick the precision ("%.2f", "%.0f%%", ...).
[[nodiscard]] inline std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

[[nodiscard]] inline std::string fmt_int(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%lld", value);
  return buffer;
}

/// Strong-scaling efficiency vs the first (baseline) entry:
/// eff_P = (T_base * P_base) / (T_P * P).
[[nodiscard]] inline double scaling_efficiency(double t_base, int p_base, double t, int p) {
  return (t_base * static_cast<double>(p_base)) / (t * static_cast<double>(p));
}

/// Functional datasets for the Fig. 8/9 experiments (built once).
[[nodiscard]] inline Dataset build_repro_dataset(const std::string& which, double dose = 0.0) {
  DatasetSpec spec = which == "large"   ? repro_large_spec()
                     : which == "tiny"  ? repro_tiny_spec()
                                        : repro_small_spec();
  AcquisitionParams acq;
  acq.dose_electrons = dose;
  return make_synthetic_dataset(spec, SpecimenParams{}, acq);
}

/// Output directory for CSV/PGM artifacts (next to the binary by default).
[[nodiscard]] inline std::string out_path(const Options& opts, const std::string& name) {
  return opts.get_string("outdir", ".") + "/" + name;
}

}  // namespace ptycho::bench
