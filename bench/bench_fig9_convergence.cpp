// Fig. 9 reproduction: convergence of F(V) under three communication
// frequencies for the parallel passes (functional experiment).
//
// Paper setup: 42 GPUs, three frequencies — per probe location (T=1),
// twice per iteration, once per iteration. Finding: the *lower*
// frequencies converge slightly faster (per-probe passes overshoot in the
// probe-overlap regions) while also communicating far less.
#include "bench_util.hpp"
#include "core/gradient_decomposition.hpp"
#include "data/io.hpp"
#include "partition/assignment.hpp"

using namespace ptycho;
using namespace ptycho::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 15));
  const int nranks = static_cast<int>(opts.get_int("ranks", 42));
  const auto step = static_cast<real>(opts.get_double("step", 0.1));
  const std::string which = opts.get_string("dataset", "small");

  std::printf("=== Fig. 9: convergence vs communication frequency (%d ranks) ===\n\n", nranks);
  const Dataset dataset = build_repro_dataset(which);

  GdConfig probe_cfg;
  probe_cfg.nranks = nranks;
  const Partition partition = make_gd_partition(dataset, probe_cfg);
  const PartitionStats stats = partition_stats(partition);
  // "Once per probe location": every rank passes after each of its probes.
  const int per_probe = static_cast<int>(std::max<index_t>(1, stats.max_probes));

  struct Series {
    const char* name;
    int passes_per_iteration;
  };
  const Series series[] = {
      {"once_per_probe", per_probe},
      {"twice_per_iteration", 2},
      {"once_per_iteration", 1},
  };

  io::CsvWriter csv(out_path(opts, "fig9_convergence.csv"));
  csv.header({"iteration", "once_per_probe", "twice_per_iteration", "once_per_iteration"});

  std::vector<CostHistory> histories;
  std::vector<std::uint64_t> pass_bytes;
  for (const Series& s : series) {
    GdConfig config;
    config.nranks = nranks;
    config.iterations = iterations;
    config.step = step;
    config.passes_per_iteration = s.passes_per_iteration;
    const ParallelResult result = reconstruct_gd(dataset, config);
    histories.push_back(result.cost);
    std::uint64_t bytes = 0;
    for (std::uint64_t b : result.fabric.bytes_sent) bytes += b;
    pass_bytes.push_back(bytes);
  }

  std::printf("%10s %18s %20s %20s\n", "iteration", series[0].name, series[1].name,
              series[2].name);
  for (int i = 0; i < iterations; ++i) {
    const auto ui = static_cast<usize>(i);
    std::printf("%10d %18.4g %20.4g %20.4g\n", i, histories[0].values()[ui],
                histories[1].values()[ui], histories[2].values()[ui]);
    csv.row({static_cast<double>(i), histories[0].values()[ui], histories[1].values()[ui],
             histories[2].values()[ui]});
  }

  std::printf("\n%-22s %16s %16s %14s\n", "series", "final cost", "cost reduction",
              "comm bytes");
  for (usize s = 0; s < 3; ++s) {
    std::printf("%-22s %16.4g %16.4f %14.3g\n", series[s].name, histories[s].last(),
                histories[s].reduction(), static_cast<double>(pass_bytes[s]));
  }
  std::printf("\npaper finding to check: once/twice per iteration converge at least as fast\n"
              "as per-probe passes while sending far fewer bytes.\n");
  std::printf("CSV written to %s\n", out_path(opts, "fig9_convergence.csv").c_str());
  return 0;
}
