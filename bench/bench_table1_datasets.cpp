// Table I reproduction: dataset sizes for measurements and reconstructions
// — the paper's two Lead Titanate datasets, plus the scaled repro datasets
// this build actually reconstructs (DESIGN.md Sec. 2 substitution table).
#include "bench_util.hpp"

using namespace ptycho;
using namespace ptycho::bench;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("=== Table I: dataset sizes ===\n\n");

  TablePrinter paper({"Sample", "Measurements y size", "Reconstruction V size",
                      "Voxel size (pm^3)", "Measurement bytes", "Volume bytes"},
                     26);
  for (const PaperDataset& d : {paper_small_dataset(), paper_large_dataset()}) {
    char meas[64];
    std::snprintf(meas, sizeof meas, "%lld x %lld x %lld", static_cast<long long>(d.meas_n),
                  static_cast<long long>(d.meas_n), static_cast<long long>(d.probes));
    char vol[64];
    std::snprintf(vol, sizeof vol, "%lld x %lld x %lld", static_cast<long long>(d.vol_y),
                  static_cast<long long>(d.vol_x), static_cast<long long>(d.slices));
    char voxel[64];
    std::snprintf(voxel, sizeof voxel, "%.0f x %.0f x %.0f", d.dx_pm, d.dx_pm, d.dz_pm);
    paper.add_column({d.name, meas, vol, voxel,
                      fmt("%.2f GiB", static_cast<double>(d.measurement_bytes()) / kGiB),
                      fmt("%.2f GiB", static_cast<double>(d.volume_bytes()) / kGiB)});
  }
  std::printf("paper-scale datasets (modeled):\n");
  paper.print();

  std::printf("\nscaled repro datasets (functionally reconstructed in this build):\n");
  TablePrinter repro({"Sample", "Probe locations", "Diffraction size", "Volume size",
                      "Overlap ratio", "Measurement bytes", "Volume bytes"},
                     20);
  for (const DatasetSpec& spec : {repro_tiny_spec(), repro_small_spec(), repro_large_spec()}) {
    ScanPattern scan(spec.scan);
    char meas[64];
    std::snprintf(meas, sizeof meas, "%lld x %lld", static_cast<long long>(spec.grid.probe_n),
                  static_cast<long long>(spec.grid.probe_n));
    char vol[64];
    std::snprintf(vol, sizeof vol, "%lld x %lld x %lld",
                  static_cast<long long>(scan.field().h),
                  static_cast<long long>(scan.field().w),
                  static_cast<long long>(spec.slices));
    const double meas_bytes = static_cast<double>(scan.count()) *
                              static_cast<double>(spec.grid.probe_n * spec.grid.probe_n) *
                              sizeof(real);
    const double vol_bytes = static_cast<double>(scan.field().area()) *
                             static_cast<double>(spec.slices) * sizeof(cplx);
    repro.add_column({spec.name, fmt_int(scan.count()), meas, vol,
                      fmt("%.0f%%", scan.overlap_ratio() * 100.0),
                      fmt("%.1f MiB", meas_bytes / kMiB), fmt("%.1f MiB", vol_bytes / kMiB)});
  }
  repro.print();
  return 0;
}
