// Table III reproduction: GD vs HVE on the *large* Lead Titanate dataset
// (16632 probes, 3072^2 x 100 volume), GPUs 6 -> 4158.
//
// Same methodology as bench_table2_small (see that file's header).
#include "bench_util.hpp"
#include "data/io.hpp"

using namespace ptycho;
using namespace ptycho::bench;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 100));
  const std::vector<long long> gd_gpus = opts.get_int_list("gpus", {6, 54, 198, 462, 924, 4158});
  const std::vector<long long> hve_gpus = {6, 54, 198, 462};
  const PaperDataset dataset = paper_large_dataset();

  std::printf("=== Table III: large Lead Titanate dataset ===\n");
  std::printf("paper reference — GD: 9.14 GB / 5543 min @6 GPUs -> 0.18 GB / 2.2 min @4158\n");
  std::printf("(51x memory reduction, 2519x speedup, 364%% efficiency at 4158);\n");
  std::printf("HVE: 9.47 GB / 7213 min @6 -> 0.48 GB / 189.5 min @462 (blow-up past 198)\n\n");

  io::CsvWriter csv(out_path(opts, "table3_large.csv"));
  csv.header({"gpus", "gd_mem_gb", "gd_runtime_min", "gd_efficiency", "hve_mem_gb",
              "hve_runtime_min", "hve_efficiency", "hve_feasible"});

  TablePrinter gd_table({"Nodes", "GPUs", "Memory/GPU (GB)", "Runtime (mins)", "Scaling eff."});
  double gd_base = 0.0;
  int base_gpus = 0;
  double gd_first_mem = 0.0;
  double gd_last_mem = 0.0;
  double gd_first_time = 0.0;
  double gd_last_time = 0.0;

  struct HveCell {
    double mem = -1.0, minutes = -1.0, eff = -1.0;
    bool feasible = false;
  };
  std::vector<HveCell> hve_cells(gd_gpus.size());

  for (usize i = 0; i < gd_gpus.size(); ++i) {
    const int gpus = static_cast<int>(gd_gpus[i]);
    ModelCell gd(dataset, gpus, Strategy::kGradientDecomposition);
    rt::GdScheduleParams params;
    params.iterations = iterations;
    const double minutes = gd.perf(dataset).simulate_gd(params).makespan_seconds / 60.0;
    if (base_gpus == 0) {
      base_gpus = gpus;
      gd_base = minutes;
      gd_first_mem = gd.memory.mean_gb();
      gd_first_time = minutes;
    }
    gd_last_mem = gd.memory.mean_gb();
    gd_last_time = minutes;
    const double eff = scaling_efficiency(gd_base, base_gpus, minutes, gpus);
    gd_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), fmt("%.2f", gd.memory.mean_gb()),
                         fmt("%.1f", minutes), fmt("%.0f%%", eff * 100.0)});

    HveCell& cell = hve_cells[i];
    const bool in_hve_sweep =
        std::find(hve_gpus.begin(), hve_gpus.end(), gd_gpus[i]) != hve_gpus.end();
    if (in_hve_sweep) {
      ModelCell hve(dataset, gpus, Strategy::kHaloVoxelExchange);
      cell.mem = hve.memory.mean_gb();
      cell.feasible = hve.partition.hve_paste_feasible();
      if (cell.feasible) {
        rt::HveScheduleParams hp;
        hp.iterations = iterations;
        cell.minutes = hve.perf(dataset).simulate_hve(hp).makespan_seconds / 60.0;
      }
    }
    csv.row({static_cast<double>(gpus), gd.memory.mean_gb(), minutes, eff * 100.0, cell.mem,
             cell.minutes, cell.eff, cell.feasible ? 1.0 : 0.0});
  }

  std::printf("(a) Gradient Decomposition — %s\n", dataset.name.c_str());
  gd_table.print();

  std::printf("\n(b) Halo Voxel Exchange — same dataset\n");
  TablePrinter hve_table({"Nodes", "GPUs", "Memory/GPU (GB)", "Runtime (mins)", "Scaling eff."});
  double hve_base = 0.0;
  for (usize i = 0; i < gd_gpus.size(); ++i) {
    const HveCell& cell = hve_cells[i];
    if (cell.mem < 0.0) continue;  // not part of the HVE sweep
    const int gpus = static_cast<int>(gd_gpus[i]);
    if (!cell.feasible) {
      hve_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), "NA", "NA", "NA"});
      continue;
    }
    if (hve_base == 0.0) hve_base = cell.minutes;
    const double eff = scaling_efficiency(hve_base, base_gpus, cell.minutes, gpus);
    hve_table.add_column({fmt_int(gpus / 6), fmt_int(gpus), fmt("%.2f", cell.mem),
                          fmt("%.1f", cell.minutes), fmt("%.0f%%", eff * 100.0)});
  }
  hve_table.print();

  std::printf("\nheadline ratios — memory reduction %.0fx (paper: 51x), speedup %.0fx "
              "(paper: 2519x)\n",
              gd_first_mem / gd_last_mem, gd_first_time / gd_last_time);
  std::printf("CSV written to %s\n", out_path(opts, "table3_large.csv").c_str());
  return 0;
}
