// Kernel micro-benchmarks (google-benchmark): the building blocks whose
// measured costs back the performance model's calibration.
#include <benchmark/benchmark.h>

#include "core/gradient_engine.hpp"
#include "data/simulate.hpp"
#include "fft/fft2d.hpp"
#include "runtime/cluster.hpp"
#include "tensor/ops.hpp"

namespace ptycho {
namespace {

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<usize>(state.range(0));
  fft::Plan1D plan(n);
  std::vector<cplx> data(n, cplx(1, 0));
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1D)->Arg(64)->Arg(256)->Arg(1024)->Arg(100)->Arg(360);  // pow2 + Bluestein

void BM_Fft2D(benchmark::State& state) {
  const auto n = static_cast<usize>(state.range(0));
  fft::Fft2D plan(n, n);
  CArray2D field(static_cast<index_t>(n), static_cast<index_t>(n));
  field.fill(cplx(1, 0));
  for (auto _ : state) {
    plan.forward(field.view());
    plan.inverse(field.view());
    benchmark::DoNotOptimize(field.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2D)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ProbeGradient(benchmark::State& state) {
  // One probe-location gradient on the tiny dataset: the inner loop of
  // Alg. 1 step 6 and the unit the perf model's flops estimate describes.
  static const Dataset dataset = make_synthetic_dataset(repro_tiny_spec());
  GradientEngine engine(dataset);
  MultisliceWorkspace ws = engine.make_workspace();
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  FramedVolume grad(dataset.spec.slices, dataset.field());
  for (auto _ : state) {
    grad.data.fill(cplx{});
    const double f = engine.probe_gradient(0, volume, grad, ws);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_ProbeGradient);

void BM_RegionAdd(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  FramedVolume a(4, Rect{0, 0, n, n});
  FramedVolume b(4, Rect{n / 2, n / 2, n, n});
  a.data.fill(cplx(1, 1));
  const Rect overlap = intersect(a.frame, b.frame);
  for (auto _ : state) {
    add_region(a, b, overlap);
    benchmark::DoNotOptimize(b.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(overlap.area() * 4) *
                          static_cast<std::int64_t>(sizeof(cplx)));
}
BENCHMARK(BM_RegionAdd)->Arg(64)->Arg(256);

void BM_PackUnpack(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  FramedVolume src(4, Rect{0, 0, n, n});
  FramedVolume dst(4, Rect{0, 0, n, n});
  const Rect region{0, 0, n, n / 2};
  for (auto _ : state) {
    std::vector<cplx> payload = pack_region(src, region);
    unpack_add_region(payload, dst, region);
    benchmark::DoNotOptimize(dst.data.data());
  }
}
BENCHMARK(BM_PackUnpack)->Arg(64)->Arg(256);

void BM_FabricPingPong(benchmark::State& state) {
  const auto payload_size = static_cast<usize>(state.range(0));
  rt::Fabric fabric(2);
  std::int64_t round = 0;
  for (auto _ : state) {
    fabric.isend(0, 1, rt::make_tag(1, round), std::vector<cplx>(payload_size));
    std::vector<cplx> got = fabric.recv(1, 0, rt::make_tag(1, round));
    benchmark::DoNotOptimize(got.data());
    ++round;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size * sizeof(cplx)));
}
BENCHMARK(BM_FabricPingPong)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SpecimenSynthesis(benchmark::State& state) {
  OpticsGrid grid;
  const auto n = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    FramedVolume v = make_perovskite_specimen(Rect{0, 0, n, n}, 2, grid);
    benchmark::DoNotOptimize(v.data.data());
  }
}
BENCHMARK(BM_SpecimenSynthesis)->Arg(128);

}  // namespace
}  // namespace ptycho

BENCHMARK_MAIN();
