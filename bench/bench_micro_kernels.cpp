// Kernel micro-benchmarks (google-benchmark): the building blocks whose
// measured costs back the performance model's calibration.
#include <benchmark/benchmark.h>

#include <cmath>

#include "backend/kernels.hpp"
#include "core/gradient_engine.hpp"
#include "data/simulate.hpp"
#include "fft/fft2d.hpp"
#include "runtime/cluster.hpp"
#include "tensor/compact.hpp"
#include "tensor/ops.hpp"

namespace ptycho {
namespace {

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<usize>(state.range(0));
  fft::Plan1D plan(n);
  std::vector<cplx> data(n, cplx(1, 0));
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1D)->Arg(64)->Arg(256)->Arg(1024)->Arg(100)->Arg(360);  // pow2 + Bluestein

void BM_Fft2D(benchmark::State& state) {
  const auto n = static_cast<usize>(state.range(0));
  fft::Fft2D plan(n, n);
  CArray2D field(static_cast<index_t>(n), static_cast<index_t>(n));
  field.fill(cplx(1, 0));
  for (auto _ : state) {
    plan.forward(field.view());
    plan.inverse(field.view());
    benchmark::DoNotOptimize(field.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2D)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ProbeGradient(benchmark::State& state) {
  // One probe-location gradient on the tiny dataset: the inner loop of
  // Alg. 1 step 6 and the unit the perf model's flops estimate describes.
  static const Dataset dataset = make_synthetic_dataset(repro_tiny_spec());
  GradientEngine engine(dataset);
  MultisliceWorkspace ws = engine.make_workspace();
  FramedVolume volume = make_vacuum_volume(dataset.field(), dataset.spec.slices);
  FramedVolume grad(dataset.spec.slices, dataset.field());
  for (auto _ : state) {
    grad.data.fill(cplx{});
    const double f = engine.probe_gradient(0, volume, grad, ws);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_ProbeGradient);

void BM_RegionAdd(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  FramedVolume a(4, Rect{0, 0, n, n});
  FramedVolume b(4, Rect{n / 2, n / 2, n, n});
  a.data.fill(cplx(1, 1));
  const Rect overlap = intersect(a.frame, b.frame);
  for (auto _ : state) {
    add_region(a, b, overlap);
    benchmark::DoNotOptimize(b.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(overlap.area() * 4) *
                          static_cast<std::int64_t>(sizeof(cplx)));
}
BENCHMARK(BM_RegionAdd)->Arg(64)->Arg(256);

void BM_PackUnpack(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  FramedVolume src(4, Rect{0, 0, n, n});
  FramedVolume dst(4, Rect{0, 0, n, n});
  const Rect region{0, 0, n, n / 2};
  for (auto _ : state) {
    std::vector<cplx> payload = pack_region(src, region);
    unpack_add_region(payload, dst, region);
    benchmark::DoNotOptimize(dst.data.data());
  }
}
BENCHMARK(BM_PackUnpack)->Arg(64)->Arg(256);

void BM_FabricPingPong(benchmark::State& state) {
  const auto payload_size = static_cast<usize>(state.range(0));
  rt::Fabric fabric(2);
  std::int64_t round = 0;
  for (auto _ : state) {
    fabric.isend(0, 1, rt::make_tag(rt::Phase::kTest, round), std::vector<cplx>(payload_size));
    std::vector<cplx> got = fabric.recv(1, 0, rt::make_tag(rt::Phase::kTest, round));
    benchmark::DoNotOptimize(got.data());
    ++round;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size * sizeof(cplx)));
}
BENCHMARK(BM_FabricPingPong)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SpecimenSynthesis(benchmark::State& state) {
  OpticsGrid grid;
  const auto n = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    FramedVolume v = make_perovskite_specimen(Rect{0, 0, n, n}, 2, grid);
    benchmark::DoNotOptimize(v.data.data());
  }
}
BENCHMARK(BM_SpecimenSynthesis)->Arg(128);

// ---- backend primitive benchmarks, one registration per kernel table ----
// Calling the tables directly (instead of flipping the global dispatch)
// keeps runs order-independent: BM_Backend*/scalar vs BM_Backend*/avx2
// rows compare the scalar baseline against the vector path side by side.

std::vector<cplx> backend_signal(usize n, int salt) {
  std::vector<cplx> v(n);
  for (usize i = 0; i < n; ++i) {
    v[i] = cplx(static_cast<real>((i + static_cast<usize>(salt)) % 7) - real(3),
                real(0.5) + static_cast<real>(i % 5));
  }
  return v;
}

void BM_BackendCmul(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> a = backend_signal(n, 1);
  const std::vector<cplx> b = backend_signal(n, 2);
  std::vector<cplx> dst(n);
  for (auto _ : state) {
    kern->cmul_lanes(dst.data(), a.data(), b.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(cplx)));
}

void BM_BackendCmulConj(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> a = backend_signal(n, 1);
  const std::vector<cplx> b = backend_signal(n, 2);
  std::vector<cplx> dst(n);
  for (auto _ : state) {
    kern->cmul_conj_lanes(dst.data(), a.data(), b.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(cplx)));
}

void BM_BackendAxpy(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> src = backend_signal(n, 3);
  std::vector<cplx> dst = backend_signal(n, 4);
  const cplx alpha(real(1e-3), real(-2e-3));  // small: dst stays finite
  for (auto _ : state) {
    kern->axpy_lanes(dst.data(), src.data(), alpha, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(cplx)));
}

void BM_BackendButterfly(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> a0 = backend_signal(n, 5);
  const std::vector<cplx> b0 = backend_signal(n, 6);
  std::vector<cplx> a = a0;
  std::vector<cplx> b = b0;
  const cplx w(real(0.70710678), real(-0.70710678));
  int applications = 0;
  for (auto _ : state) {
    // The butterfly doubles signal energy; reset (untimed) before values
    // can overflow.
    if (++applications >= 100) {
      state.PauseTiming();
      a = a0;
      b = b0;
      applications = 0;
      state.ResumeTiming();
    }
    kern->butterfly_lanes(a.data(), b.data(), w, n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n * sizeof(cplx)));
}

void BM_BackendButterfly4(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> x0_0 = backend_signal(n, 9);
  const std::vector<cplx> x1_0 = backend_signal(n, 10);
  const std::vector<cplx> x2_0 = backend_signal(n, 11);
  const std::vector<cplx> x3_0 = backend_signal(n, 12);
  // Unit-magnitude twiddles, as in the real transform (and the radix-2
  // bench): growth per application stays bounded by the 4-point sum, so
  // the reset below fires long before float32 overflow.
  const auto unit_twiddles = [n](int salt) {
    std::vector<cplx> tw(n);
    for (usize i = 0; i < n; ++i) {
      const double angle = 0.1 * static_cast<double>(i + static_cast<usize>(salt));
      tw[i] = cplx(static_cast<real>(std::cos(angle)), static_cast<real>(std::sin(angle)));
    }
    return tw;
  };
  const std::vector<cplx> tw1 = unit_twiddles(13);
  const std::vector<cplx> tw2 = unit_twiddles(14);
  const std::vector<cplx> tw3 = unit_twiddles(15);
  std::vector<cplx> x0 = x0_0;
  std::vector<cplx> x1 = x1_0;
  std::vector<cplx> x2 = x2_0;
  std::vector<cplx> x3 = x3_0;
  int applications = 0;
  for (auto _ : state) {
    // Like the radix-2 butterfly, each application grows the signal; reset
    // (untimed) before values can overflow.
    if (++applications >= 50) {
      state.PauseTiming();
      x0 = x0_0;
      x1 = x1_0;
      x2 = x2_0;
      x3 = x3_0;
      applications = 0;
      state.ResumeTiming();
    }
    kern->butterfly4_block(x0.data(), x1.data(), x2.data(), x3.data(), tw1.data(), tw2.data(),
                           tw3.data(), false, n);
    benchmark::DoNotOptimize(x0.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * n * sizeof(cplx)));
}

void BM_BackendChirpMul(benchmark::State& state, const backend::Kernels* kern) {
  const auto n = static_cast<usize>(state.range(0));
  const std::vector<cplx> src = backend_signal(n, 7);
  const std::vector<cplx> chirp = backend_signal(n, 8);
  std::vector<cplx> dst(n);
  for (auto _ : state) {
    kern->chirp_mul_lanes(dst.data(), src.data(), chirp.data(), real(0.5), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(cplx)));
}

/// Registers every backend primitive benchmark for one kernel table.
void register_backend_benches(const backend::Kernels* kern) {
  using Fn = void (*)(benchmark::State&, const backend::Kernels*);
  const std::pair<const char*, Fn> benches[] = {
      {"BM_BackendCmul", &BM_BackendCmul},
      {"BM_BackendCmulConj", &BM_BackendCmulConj},
      {"BM_BackendAxpy", &BM_BackendAxpy},
      {"BM_BackendButterfly", &BM_BackendButterfly},
      {"BM_BackendButterfly4", &BM_BackendButterfly4},
      {"BM_BackendChirpMul", &BM_BackendChirpMul},
  };
  for (const auto& [name, fn] : benches) {
    const std::string full = std::string(name) + "/" + kern->name;
    benchmark::RegisterBenchmark(full.c_str(), fn, kern)->Arg(256)->Arg(4096);
  }
}

const int backend_benches_registered = [] {
  register_backend_benches(&backend::scalar_kernels());
  if (backend::simd_available()) register_backend_benches(backend::simd_kernels());
  // Fast-tier tables ride the same harness, so BM_Backend*/avx2 vs
  // BM_Backend*/avx2-fma rows show what the fused-multiply-add column buys
  // per primitive.
  register_backend_benches(&backend::scalar_fma_kernels());
  if (backend::fma_available()) register_backend_benches(backend::fma_kernels());
  return 0;
}();

// ---- fast-tier benchmarks: FMA cmul head-to-head + compact codecs ----

// The single row the BENCH_sweep `cmul_mb_per_sec_fma` gate column is
// attributed to: the best available FMA table's cmul (vector when the CPU
// has one, scalar-fma otherwise).
void BM_BackendCmulFma(benchmark::State& state) {
  const backend::Kernels* kern =
      backend::fma_available() ? backend::fma_kernels() : &backend::scalar_fma_kernels();
  BM_BackendCmul(state, kern);
}
BENCHMARK(BM_BackendCmulFma)->Arg(256)->Arg(4096);

/// Decode throughput of one compact format: halves -> f32, the per-item
/// cost the fast tier pays to read an encoded measurement frame or a
/// cached transmittance plane.
void BM_CompactDecode(benchmark::State& state, compact::Format format) {
  const auto n = static_cast<usize>(state.range(0));
  std::vector<real> src(n);
  for (usize i = 0; i < n; ++i) {
    src[i] = real(0.25) + static_cast<real>(i % 977) * real(1e-2);
  }
  std::vector<std::uint16_t> packed(n);
  compact::encode(format, packed.data(), src.data(), n);
  std::vector<real> dst(n);
  for (auto _ : state) {
    compact::decode(format, dst.data(), packed.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * (sizeof(real) + sizeof(std::uint16_t))));
}

void BM_CompactDecodeBf16(benchmark::State& state) {
  BM_CompactDecode(state, compact::Format::kBf16);
}
BENCHMARK(BM_CompactDecodeBf16)->Arg(1024)->Arg(65536);

void BM_CompactDecodeF16(benchmark::State& state) {
  BM_CompactDecode(state, compact::Format::kF16);
}
BENCHMARK(BM_CompactDecodeF16)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace ptycho

BENCHMARK_MAIN();
