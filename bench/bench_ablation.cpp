// Ablations of the design choices called out in DESIGN.md:
//   (1) gradient-synchronization scheme: sweep (paper) vs direct-neighbor
//       vs global all-reduce — quality and traffic;
//   (2) HVE replication rings: memory/replication/seams trade-off;
//   (3) mesh shape: square vs flat vs tall decompositions;
//   (4) update mode: Alg. 1 SGD vs full-batch.
// Functional runs on the repro datasets (virtual cluster).
#include "bench_util.hpp"
#include "core/halo_voxel_exchange.hpp"
#include "core/seam_metric.hpp"
#include "partition/assignment.hpp"

using namespace ptycho;
using namespace ptycho::bench;

namespace {

std::uint64_t total_bytes(const rt::FabricStats& stats) {
  std::uint64_t bytes = 0;
  for (std::uint64_t b : stats.bytes_sent) bytes += b;
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int iterations = static_cast<int>(opts.get_int("iterations", 8));
  const auto step = static_cast<real>(opts.get_double("step", 0.1));
  const std::string which = opts.get_string("dataset", "tiny");
  const Dataset dataset = build_repro_dataset(which);

  std::printf("=== Ablation studies (%s dataset, %d iterations) ===\n\n", which.c_str(),
              iterations);

  // (1) synchronization scheme.
  std::printf("(1) gradient synchronization scheme (4 ranks)\n");
  std::printf("%-22s %14s %14s %12s\n", "scheme", "final cost", "comm bytes", "wall (s)");
  struct SchemeCase {
    const char* name;
    SyncPolicy policy;
  };
  const SchemeCase schemes[] = {
      {"sweep (paper, APPP)", {PassScheme::kSweep, true}},
      {"direct neighbors", {PassScheme::kDirectNeighbors, true}},
      {"global all-reduce", {PassScheme::kSweep, false}},
  };
  for (const SchemeCase& sc : schemes) {
    GdConfig config;
    config.nranks = 4;
    config.iterations = iterations;
    config.step = step;
    config.sync = sc.policy;
    const ParallelResult result = reconstruct_gd(dataset, config);
    std::printf("%-22s %14.4g %14.3g %12.2f\n", sc.name, result.cost.last(),
                static_cast<double>(total_bytes(result.fabric)), result.wall_seconds);
  }

  // (2) HVE replication rings.
  std::printf("\n(2) HVE replication rings (4 ranks)\n");
  std::printf("%-8s %14s %16s %14s %12s\n", "rings", "final cost", "meas replication",
              "mem/rank (MB)", "seam ratio");
  GdConfig probe_cfg;
  probe_cfg.nranks = 4;
  const Partition seam_partition = make_gd_partition(dataset, probe_cfg);
  for (const int rings : {0, 1, 2}) {
    HveConfig config;
    config.nranks = 4;
    config.iterations = iterations;
    config.step = step;
    config.extra_rings = rings;
    if (!hve_feasible(dataset, config)) {
      std::printf("%-8d %14s\n", rings, "NA");
      continue;
    }
    const ParallelResult result = reconstruct_hve(dataset, config);
    const Partition partition = make_hve_partition(dataset, config);
    std::printf("%-8d %14.4g %16.2f %14.2f %12.3f\n", rings, result.cost.last(),
                partition.measurement_replication(), result.mean_peak_bytes / kMiB,
                measure_seams(result.volume, seam_partition).seam_ratio);
  }

  // (3) mesh shape at a fixed rank count.
  std::printf("\n(3) mesh shape (6 ranks)\n");
  std::printf("%-10s %14s %14s %14s\n", "mesh", "final cost", "comm bytes", "max halo px");
  for (const auto& [rows, cols] : std::vector<std::pair<int, int>>{{2, 3}, {3, 2}, {1, 6}, {6, 1}}) {
    GdConfig config;
    config.nranks = 6;
    config.mesh_rows = rows;
    config.mesh_cols = cols;
    config.iterations = iterations;
    config.step = step;
    const ParallelResult result = reconstruct_gd(dataset, config);
    const Partition partition = make_gd_partition(dataset, config);
    std::printf("%dx%-8d %14.4g %14.3g %14lld\n", rows, cols, result.cost.last(),
                static_cast<double>(total_bytes(result.fabric)),
                static_cast<long long>(partition.max_halo_px()));
  }

  // (4) dose robustness: the Sec. II-B motivation for Maximum Likelihood
  // methods — reconstruction quality should degrade gracefully with dose.
  std::printf("\n(4) electron dose (4 ranks, shot noise)\n");
  std::printf("%-14s %14s %16s\n", "dose (e-/pos)", "final cost", "err vs truth");
  for (const double dose : {1.0e4, 1.0e5, 1.0e6, 0.0}) {
    const Dataset noisy = build_repro_dataset(which, dose);
    GdConfig config;
    config.nranks = 4;
    config.iterations = iterations;
    config.step = step;
    const ParallelResult result = reconstruct_gd(noisy, config);
    const double err = relative_rms_error(result.volume, noisy.ground_truth);
    if (dose > 0.0) {
      std::printf("%-14.3g %14.4g %16.4f\n", dose, result.cost.last(), err);
    } else {
      std::printf("%-14s %14.4g %16.4f\n", "noiseless", result.cost.last(), err);
    }
  }

  // (5) update mode.
  std::printf("\n(5) update mode (4 ranks)\n");
  std::printf("%-14s %14s %14s\n", "mode", "final cost", "reduction");
  for (const UpdateMode mode : {UpdateMode::kSgd, UpdateMode::kFullBatch}) {
    GdConfig config;
    config.nranks = 4;
    config.iterations = iterations;
    config.step = step;
    config.mode = mode;
    const ParallelResult result = reconstruct_gd(dataset, config);
    std::printf("%-14s %14.4g %14.4f\n", to_string(mode), result.cost.last(),
                result.cost.reduction());
  }
  return 0;
}
