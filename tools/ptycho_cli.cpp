// ptycho — command-line driver for the library.
//
// Subcommands:
//   simulate     build a synthetic dataset and save it
//   info         describe a dataset file
//   reconstruct  run a solver over a dataset (fresh or resumed)
//
// Examples:
//   ptycho simulate --spec small --dose 1e6 --out acquisition.ptyd
//   ptycho info acquisition.ptyd
//   ptycho reconstruct acquisition.ptyd --method gd --ranks 6
//          --iterations 12 --save-volume recon.bin --image recon.pgm
//   # checkpoint every 2 chunks, then restore after a crash — possibly on
//   # a different rank count (elastic restore):
//   ptycho reconstruct acquisition.ptyd --ranks 6 --checkpoint-dir ckpt
//          --checkpoint-every 2 --iterations 12
//   ptycho reconstruct acquisition.ptyd --ranks 4 --restore ckpt --iterations 12
//   # resume from a previous volume (or pass a checkpoint dir to --resume):
//   ptycho reconstruct acquisition.ptyd --resume recon.bin --iterations 6
//   # self-healing multi-process run: kill a rank mid-iteration, the
//   # parent respawns the survivors from the newest checkpoint:
//   ptycho reconstruct acquisition.ptyd --launch 3 --checkpoint-dir ckpt
//          --checkpoint-every 1 --max-restarts 2 --heartbeat-ms 100
//          --liveness-timeout-ms 2000
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "ptycho.hpp"

using namespace ptycho;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ptycho <simulate|info|reconstruct> [options]\n"
               "  simulate   --spec tiny|small|large [--dose E] [--seed N] --out FILE\n"
               "  info       FILE\n"
               "  reconstruct FILE [--method serial|gd|hve] [--ranks N]\n"
               "             [--iterations N] [--step A] [--passes T]\n"
               "             [--mode sgd|full-batch] [--no-appp] [--refine-probe]\n"
               "             [--resume VOLUME|CKPT_DIR] [--save-volume FILE] [--image FILE]\n"
               "             [--restore CKPT_DIR|latest]\n"
               "             [--launch K] [--port-base P]\n"
               "             [--fault-rank R] [--fault-step S] [--fault-kind throw|exit]\n"
               "  execution options (shared with the benches):\n"
               "%s"
               "  --iterations is the TOTAL target; a restored run continues from the\n"
               "  snapshot's iteration. --ranks may differ from the checkpointed run\n"
               "  (elastic restore re-tiles and redistributes the shards).\n"
               "  Results are bitwise identical across backends, schedulers, pipeline\n"
               "  modes and transports.\n"
               "  Multi-process: either run one process per rank with\n"
               "  --transport socket --rank N --peers host:port,... (one entry per\n"
               "  rank, same roster everywhere), or let --launch K fork K local rank\n"
               "  processes wired over loopback ports [--port-base P, default 38400].\n",
               exec_options_help().c_str());
  return 2;
}

DatasetSpec spec_by_name(const std::string& name) {
  if (name == "tiny") return repro_tiny_spec();
  if (name == "large") return repro_large_spec();
  PTYCHO_CHECK(name == "small", "unknown spec '" << name << "' (tiny|small|large)");
  return repro_small_spec();
}

int cmd_simulate(const Options& opts) {
  const DatasetSpec spec = spec_by_name(opts.get_string("spec", "small"));
  SpecimenParams specimen;
  specimen.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  AcquisitionParams acq;
  acq.dose_electrons = opts.get_double("dose", 0.0);
  const std::string out = opts.get_string("out", "dataset.ptyd");

  std::printf("simulating %s (%lldx%lld scan, dose %s)...\n", spec.name.c_str(),
              static_cast<long long>(spec.scan.rows), static_cast<long long>(spec.scan.cols),
              acq.dose_electrons > 0 ? "finite" : "none");
  const Dataset dataset = make_synthetic_dataset(spec, specimen, acq);
  io::save_dataset(out, dataset);
  std::printf("wrote %s (%lld measurements, %.1f MiB)\n", out.c_str(),
              static_cast<long long>(dataset.probe_count()),
              static_cast<double>(dataset.measurement_bytes()) / kMiB);
  return 0;
}

int cmd_info(const Options& opts) {
  PTYCHO_CHECK(!opts.positional().empty(), "info needs a dataset file");
  const Dataset dataset = io::load_dataset(opts.positional().front());
  const Rect field = dataset.field();
  std::printf("name:          %s\n", dataset.spec.name.c_str());
  std::printf("probes:        %lld (%lldx%lld raster, %.0f%% overlap)\n",
              static_cast<long long>(dataset.probe_count()),
              static_cast<long long>(dataset.spec.scan.rows),
              static_cast<long long>(dataset.spec.scan.cols),
              dataset.scan.overlap_ratio() * 100.0);
  std::printf("diffraction:   %llu x %llu\n",
              static_cast<unsigned long long>(dataset.spec.grid.probe_n),
              static_cast<unsigned long long>(dataset.spec.grid.probe_n));
  std::printf("field:         %lld x %lld px, %lld slices (%.1f x %.1f x %.1f pm voxels)\n",
              static_cast<long long>(field.h), static_cast<long long>(field.w),
              static_cast<long long>(dataset.spec.slices), dataset.spec.grid.dx_pm,
              dataset.spec.grid.dx_pm, dataset.spec.grid.dz_pm);
  std::printf("optics:        %.1f mrad aperture, %.0f pm defocus, lambda %.4f pm\n",
              dataset.spec.probe.aperture_mrad, dataset.spec.probe.defocus_pm,
              dataset.spec.grid.wavelength_pm);
  std::printf("measurements:  %.1f MiB; full volume %.1f MiB\n",
              static_cast<double>(dataset.measurement_bytes()) / kMiB,
              static_cast<double>(dataset.volume_bytes()) / kMiB);
  return 0;
}

// --launch K: fork one child per rank, each re-entering cmd_reconstruct
// with an explicit socket-transport roster over loopback ports. The parent
// only waits; the children do all the work (including loading the dataset
// — the fork happens before any heavy allocation).
int cmd_launch(const Options& opts, int nprocs);

int cmd_reconstruct(const Options& opts) {
  const int launch = static_cast<int>(opts.get_int("launch", 0));
  if (launch > 0) return cmd_launch(opts, launch);

  PTYCHO_CHECK(!opts.positional().empty(), "reconstruct needs a dataset file");

  ReconstructionRequest request;
  const std::string method = opts.get_string("method", "gd");
  request.method = method == "serial" ? Method::kSerial
                   : method == "hve"  ? Method::kHaloVoxelExchange
                                      : Method::kGradientDecomposition;
  request.nranks = static_cast<int>(opts.get_int("ranks", 4));
  request.iterations = static_cast<int>(opts.get_int("iterations", 10));
  request.step = static_cast<real>(opts.get_double("step", 0.1));
  request.passes_per_iteration = static_cast<int>(opts.get_int("passes", 1));
  // Execution knobs (threads, scheduler, pipeline, backend, checkpoint,
  // trace/metrics, progress, transport) come from the shared parser — the
  // same flags work on the benches. All of them are bitwise-neutral.
  request.exec = parse_exec_options(opts);
  request.mode = opts.get_string("mode", "sgd") == "full-batch" ? UpdateMode::kFullBatch
                                                                : UpdateMode::kSgd;
  request.sync.appp = !opts.get_bool("no-appp", false);
  request.refine_probe = opts.get_bool("refine-probe", false);
  // Fault injection for recovery testing: kill --fault-rank at the first
  // chunk step >= --fault-step, either by throwing RankFailure or (in a
  // multi-process run) by hard-exiting the victim.
  request.fault.rank = static_cast<int>(opts.get_int("fault-rank", -1));
  request.fault.at_step = static_cast<std::uint64_t>(opts.get_int("fault-step", 0));
  const std::string fault_kind = opts.get_string("fault-kind", "throw");
  PTYCHO_CHECK(fault_kind == "throw" || fault_kind == "exit",
               "--fault-kind must be throw or exit");
  request.fault.kind = fault_kind == "exit" ? rt::FaultKind::kExit : rt::FaultKind::kThrow;
  // --restore latest reads --checkpoint-dir without writing to it, so a
  // directory alone is fine in that case; otherwise the pair must come
  // together or checkpointing silently stays off.
  PTYCHO_CHECK(request.exec.checkpoint.every_chunks == 0 ||
                   !request.exec.checkpoint.directory.empty(),
               "--checkpoint-every needs --checkpoint-dir");
  PTYCHO_CHECK(request.exec.checkpoint.directory.empty() ||
                   request.exec.checkpoint.every_chunks > 0 ||
                   opts.get_string("restore", "") == "latest",
               "--checkpoint-dir needs --checkpoint-every (or --restore latest)");
  const bool distributed = request.exec.transport.distributed();
  if (distributed) {
    PTYCHO_CHECK(request.method == Method::kGradientDecomposition ||
                     request.method == Method::kHaloVoxelExchange,
                 "--transport socket needs a decomposed method (gd or hve)");
    PTYCHO_CHECK(static_cast<int>(request.exec.transport.peers.size()) == request.nranks,
                 "--peers must list exactly --ranks entries (one host:port per rank)");
    log::set_thread_rank(request.exec.transport.rank);
  }
  const bool root = !distributed || request.exec.transport.rank == 0;

  const Dataset dataset = io::load_dataset(opts.positional().front());

  // --restore DIR resumes from the newest *valid* snapshot under DIR
  // (--restore latest uses --checkpoint-dir — the directory this run also
  // writes to); --resume accepts either a raw volume file (warm start) or,
  // when given a directory, behaves exactly like --restore.
  ckpt::Snapshot snapshot;
  std::string restore_path = opts.get_string("restore", "");
  FramedVolume resume;
  std::string resume_path = opts.get_string("resume", "");
  if (!resume_path.empty() && std::filesystem::is_directory(resume_path)) {
    PTYCHO_CHECK(restore_path.empty(), "--resume DIR and --restore are mutually exclusive");
    restore_path = std::move(resume_path);
    resume_path.clear();
  }
  if (restore_path == "latest") {
    PTYCHO_CHECK(!request.exec.checkpoint.directory.empty(),
                 "--restore latest needs --checkpoint-dir to know where to look");
    restore_path = request.exec.checkpoint.directory;
  }
  if (!restore_path.empty()) {
    // The same discovery routine automatic recovery uses: newest-first by
    // run progress, full shard validation (footers + CRCs), corrupt or
    // layout-incompatible snapshots skipped with a warning.
    ckpt::RestoreFilter filter;
    filter.nranks = request.method == Method::kSerial ? 1 : request.nranks;
    filter.chunks_per_iteration = request.passes_per_iteration;
    filter.update_mode = static_cast<int>(request.mode);
    filter.refine_probe = request.refine_probe ? 1 : 0;
    auto found = ckpt::load_newest_valid(restore_path, filter);
    PTYCHO_CHECK(found.has_value(),
                 "no usable checkpoint found under '" << restore_path << "'");
    snapshot = std::move(*found);
    request.restore = &snapshot;
    if (root) {
      std::printf("restoring from %s (step %llu: iteration %d, chunk %d, %d rank(s))\n",
                  restore_path.c_str(), static_cast<unsigned long long>(snapshot.manifest.step),
                  snapshot.manifest.iteration, snapshot.manifest.chunk,
                  snapshot.manifest.nranks);
    }
  } else if (!resume_path.empty()) {
    resume = io::load_volume(resume_path);
    if (root) std::printf("resuming from %s\n", resume_path.c_str());
  }

  if (root) {
    std::printf("reconstructing with %s on %d rank(s)%s, %d iterations (backend %s)...\n",
                to_string(request.method), request.nranks,
                distributed ? " [socket transport]" : "", request.iterations,
                request.exec.backend.empty() ? backend::active_name()
                                             : request.exec.backend.c_str());
  }
  Reconstructor reconstructor(dataset);
  const ReconstructionOutcome outcome =
      reconstructor.run(request, resume_path.empty() ? nullptr : &resume);

  // Non-root distributed ranks hold no stitched volume or cost history —
  // rank 0 owns the result, exactly as in the in-process cluster.
  if (!outcome.cost.empty()) {
    std::printf("cost %.6g -> %.6g (%.1f%%), wall %.2f s", outcome.cost.first(),
                outcome.cost.last(), outcome.cost.reduction() * 100.0, outcome.wall_seconds);
    if (outcome.mean_peak_bytes > 0) {
      std::printf(", mean peak mem/rank %.2f MiB", outcome.mean_peak_bytes / kMiB);
    }
    std::printf("\n");
  }

  if (root) {
    const std::string volume_path = opts.get_string("save-volume", "");
    if (!volume_path.empty()) {
      io::save_volume(volume_path, outcome.volume);
      std::printf("volume saved to %s\n", volume_path.c_str());
    }
    const std::string image_path = opts.get_string("image", "");
    if (!image_path.empty()) {
      io::write_phase_pgm(image_path, outcome.volume.window(dataset.spec.slices / 2,
                                                            outcome.volume.frame));
      std::printf("phase image saved to %s\n", image_path.c_str());
    }
  }
  return 0;
}

// Children exit with this code when they died of a *recoverable* rank
// failure (a peer disappeared, the fabric was poisoned) — the supervising
// parent reads it as "this process survived and can be respawned".
// Matches sysexits' EX_TEMPFAIL by intent.
constexpr int kExitRankFailure = 75;

int cmd_launch(const Options& opts, int nprocs) {
  PTYCHO_CHECK(nprocs >= 1, "--launch needs at least one process");
  const int port_base = static_cast<int>(opts.get_int("port-base", 38400));
  const int max_restarts = static_cast<int>(opts.get_int("max-restarts", 0));
  const int backoff_ms = static_cast<int>(opts.get_int("restart-backoff-ms", 100));
  const bool can_recover = max_restarts > 0 && !opts.get_string("checkpoint-dir", "").empty();

  int nranks = nprocs;
  for (int attempt = 0;; ++attempt) {
    // Fresh loopback port block per attempt: the previous generation's
    // listeners may still be in TIME_WAIT, and a straggler process from it
    // must knock on ports nobody in the new mesh answers.
    const int ports_from = port_base + attempt * nprocs;
    std::string roster;
    for (int r = 0; r < nranks; ++r) {
      if (r > 0) roster += ',';
      roster += "127.0.0.1:" + std::to_string(ports_from + r);
    }
    std::vector<pid_t> children;
    for (int r = 0; r < nranks; ++r) {
      const pid_t pid = fork();
      PTYCHO_CHECK(pid >= 0, "fork failed for rank " << r);
      if (pid == 0) {
        Options child = opts;
        child.set("launch", "0");
        child.set("ranks", std::to_string(nranks));
        child.set("transport", "socket");
        child.set("rank", std::to_string(r));
        child.set("peers", roster);
        child.set("generation", std::to_string(attempt));
        // In-run recovery is the parent's job here — a child that hits a
        // rank failure must exit (code 75) and be respawned, not retry
        // inside a half-dead mesh.
        child.set("max-restarts", "0");
        if (attempt > 0) {
          // Respawned generation: resume from the newest valid snapshot,
          // and the (one-shot) injected fault is spent — it must not
          // re-kill every attempt.
          child.set("restore", "latest");
          child.set("resume", "");
          child.set("fault-rank", "-1");
        }
        // Only rank 0 keeps the file-output flags; the others have nothing
        // to save anyway and must not race on the paths.
        if (r != 0) {
          child.set("save-volume", "");
          child.set("image", "");
          child.set("trace-out", "");
          child.set("metrics-out", "");
        }
        // _exit skips stdio teardown, so flush explicitly or the child's
        // output is lost whenever stdout is a pipe (fully buffered).
        try {
          const int code = cmd_reconstruct(child);
          std::fflush(nullptr);
          _exit(code);
        } catch (const rt::RankFailure& e) {
          std::fprintf(stderr, "rank failure [rank %d]: %s\n", r, e.what());
          std::fflush(nullptr);
          _exit(kExitRankFailure);
        } catch (const Error& e) {
          std::fprintf(stderr, "error [rank %d]: %s\n", r, e.what());
          std::fflush(nullptr);
          _exit(1);
        }
      }
      children.push_back(pid);
    }

    // Classify the exits: clean completions, survivors of a rank failure
    // (exit 75 — respawnable), and dead ranks (signals, hard exits, other
    // errors — dropped from the next generation).
    int completed = 0;
    int survivors = 0;
    for (usize r = 0; r < children.size(); ++r) {
      int status = 0;
      waitpid(children[r], &status, 0);
      const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
      if (code == 0) {
        ++completed;
        ++survivors;
      } else if (code == kExitRankFailure) {
        std::fprintf(stderr, "rank %zu survived a rank failure (exit %d)\n", r, code);
        ++survivors;
      } else {
        std::fprintf(stderr, "rank %zu died (exit code %d)\n", r, code);
      }
    }
    if (completed == nranks) return 0;
    if (!can_recover || attempt >= max_restarts) {
      std::fprintf(stderr, "launch failed%s\n",
                   can_recover ? " (restart budget exhausted)"
                               : " (no recovery: needs --max-restarts and --checkpoint-dir)");
      return 1;
    }
    if (survivors == 0) {
      std::fprintf(stderr, "launch failed (no surviving ranks to respawn)\n");
      return 1;
    }
    std::fprintf(stderr, "respawning %d surviving rank(s) from the newest checkpoint "
                         "(attempt %d/%d)\n",
                 survivors, attempt + 1, max_restarts);
    std::fflush(nullptr);
    usleep(static_cast<useconds_t>(
        static_cast<std::uint64_t>(backoff_ms) << std::min(attempt, 20)) * 1000);
    nranks = survivors;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Options opts = Options::parse(argc - 1, argv + 1);
  try {
    // Select the kernel backend up front so every subcommand (simulate
    // runs the same FFT/multislice kernels) honors the flag; an explicit
    // request that cannot be satisfied is an error, unlike the permissive
    // PTYCHO_BACKEND environment fallback.
    const std::string backend = opts.get_string("backend", "");
    if (!backend.empty()) {
      PTYCHO_CHECK(backend::select(backend),
                   "--backend " << backend << " is not available (want scalar|simd|auto; "
                                << "simd requires CPU support)");
    }
    // The precision tier re-resolves the same dispatch point (the solvers
    // re-apply it from ExecOptions, but simulate/info never build one).
    if (opts.has("precision")) {
      apply_precision(parse_precision(opts.get_string("precision", "")));
    }
    if (command == "simulate") return cmd_simulate(opts);
    if (command == "info") return cmd_info(opts);
    if (command == "reconstruct") return cmd_reconstruct(opts);
    return usage();
  } catch (const rt::RankFailure& e) {
    // Recoverable by a supervisor: a --launch parent reads exit 75 as
    // "survivor, respawn me from the newest checkpoint".
    std::fprintf(stderr, "rank failure: %s\n", e.what());
    return kExitRankFailure;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
