#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench_sweep JSON against the
committed baseline and fail when a guarded metric regressed by more than
the tolerance.

    check_bench_regression.py --baseline BENCH_sweep.json --fresh fresh.json \
        [--tolerance 0.25] [--keys sweep_probes_per_sec_1t,fft2d_256_mb_per_sec]

The guarded metrics default to the single-thread throughputs (gradient
sweep probes/sec and 256x256 FFT MB/s, each also in its fallback-engine
variant): they are the least noisy numbers bench_sweep emits — no
thread-scheduling variance, and since PR 4 every one is a warmed
best-of-N measurement, so a tolerance as tight as 25% is meaningful on
shared CI runners. The fused-engine numbers (sweep_probes_per_sec_1t,
fft2d_256_mb_per_sec) guard the hot path; the *_unfused and *_radix2
variants guard the PTYCHO_FFT_FUSED=0 / PTYCHO_FFT_RADIX4=0 escape
hatches so the A/B baseline itself cannot silently rot, and
sweep_probes_per_sec_ws guards the work-stealing scheduler (at 1 thread
it must stay within noise of the static path), and
sweep_probes_per_sec_1t_traced guards the telemetry-on sweep so span
tracing + metrics cannot silently become expensive, and the
sweep_probes_per_sec_{sync_ckpt,async} pair guards the checkpointed
end-to-end pipeline in both scheduling modes (async regressing toward
or below sync means the background slot stopped hiding the shard
I/O). Keys missing
from either file are reported and skipped, so adding metrics to
bench_sweep never breaks older baselines (the pre-PR-4 baseline simply
skips the new keys).

Exit status: 0 when every guarded metric is within tolerance, 1 otherwise.
"""

import argparse
import json
import sys

DEFAULT_KEYS = (
    "sweep_probes_per_sec_1t,fft2d_256_mb_per_sec,"
    "sweep_probes_per_sec_1t_unfused,fft2d_256_mb_per_sec_radix2,"
    "sweep_probes_per_sec_ws,sweep_probes_per_sec_1t_traced,"
    "sweep_probes_per_sec_sync_ckpt,sweep_probes_per_sec_async"
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_sweep.json")
    parser.add_argument("--fresh", required=True, help="JSON from the CI bench run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--keys",
        default=DEFAULT_KEYS,
        help="comma-separated higher-is-better metrics to guard",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)

    failed = False
    compared = 0
    for key in [k for k in args.keys.split(",") if k]:
        if key not in baseline or key not in fresh:
            print(f"  SKIP {key}: missing from {'baseline' if key not in baseline else 'fresh'}")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            print(f"  SKIP {key}: non-positive baseline {base}")
            continue
        ratio = now / base
        verdict = "OK" if ratio >= 1.0 - args.tolerance else "FAIL"
        failed |= verdict == "FAIL"
        compared += 1
        print(f"  {verdict:4} {key}: baseline {base:.1f} -> fresh {now:.1f} ({ratio:.2f}x)")

    if compared == 0:
        # All-skip means the gate compared nothing — a renamed metric or a
        # truncated JSON must not read as a pass.
        print("bench regression gate FAILED: no guarded metric present in both files")
        return 1
    if failed:
        print(
            f"bench regression gate FAILED (> {args.tolerance:.0%} drop). If the slowdown is\n"
            "intentional or the baseline hardware changed, regenerate BENCH_sweep.json with\n"
            "a Release build of bench_sweep and commit it alongside the change."
        )
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
