#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench_sweep JSON against the
committed baseline and fail when a guarded metric regressed by more than
the tolerance.

    check_bench_regression.py --baseline BENCH_sweep.json --fresh fresh.json \
        [--tolerance 0.25] [--keys sweep_probes_per_sec_1t,fft2d_256_mb_per_sec]

The guarded metrics default to the single-thread throughputs (gradient
sweep probes/sec and 256x256 FFT MB/s, each also in its fallback-engine
variant): they are the least noisy numbers bench_sweep emits — no
thread-scheduling variance, and since PR 4 every one is a warmed
best-of-N measurement, so a tolerance as tight as 25% is meaningful on
shared CI runners. The fused-engine numbers (sweep_probes_per_sec_1t,
fft2d_256_mb_per_sec) guard the hot path; the *_unfused and *_radix2
variants guard the PTYCHO_FFT_FUSED=0 / PTYCHO_FFT_RADIX4=0 escape
hatches so the A/B baseline itself cannot silently rot, and
sweep_probes_per_sec_ws guards the work-stealing scheduler (at 1 thread
it must stay within noise of the static path), and
sweep_probes_per_sec_1t_traced guards the telemetry-on sweep so span
tracing + metrics cannot silently become expensive, and the
sweep_probes_per_sec_{sync_ckpt,async} pair guards the checkpointed
end-to-end pipeline in both scheduling modes (async regressing toward
or below sync means the background slot stopped hiding the shard
I/O), and the fast-tier columns guard the --precision fast path:
sweep_probes_per_sec_1t_fast (the end-to-end FMA + compact-storage
sweep), cmul_mb_per_sec_fma (the FMA kernel table directly) and
transmittance_cache_mb (a lower-is-better footprint: the compact cache
growing back toward f32 size is a regression even if throughput holds).

Multi-thread speedup columns (sweep_speedup and friends) are guarded
only when the baseline was produced on a multi-core host: on a 1-core
runner (provenance.hardware_concurrency == 1) the "speedup" is pure
scheduling noise around 1.0, so those keys are skipped with an
annotation instead of being silently compared.

Keys missing from either file are reported and skipped, so adding
metrics to bench_sweep never breaks older baselines (the pre-PR-4
baseline simply skips the new keys).

Exit status: 0 when every guarded metric is within tolerance, 1 otherwise.
"""

import argparse
import json
import sys

DEFAULT_KEYS = (
    "sweep_probes_per_sec_1t,fft2d_256_mb_per_sec,"
    "sweep_probes_per_sec_1t_unfused,fft2d_256_mb_per_sec_radix2,"
    "sweep_probes_per_sec_ws,sweep_probes_per_sec_1t_traced,"
    "sweep_probes_per_sec_sync_ckpt,sweep_probes_per_sec_async,"
    "sweep_speedup,"
    "sweep_probes_per_sec_1t_fast,cmul_mb_per_sec_fma,transmittance_cache_mb"
)

# Metrics that only mean anything when more than one core was available to
# the run that produced the baseline.
MULTITHREAD_SPEEDUP_KEYS = {
    "sweep_speedup",
    "sweep_probes_per_sec_nt",
    "sweep_probes_per_sec_ws_nt",
    "sweep_ws_vs_static_nt",
}

# Metrics where smaller is better (footprints); the gate fails when they
# GROW by more than the tolerance.
LOWER_IS_BETTER_KEYS = {"transmittance_cache_mb"}


def cores(doc: dict) -> int:
    try:
        return int(doc.get("provenance", {}).get("hardware_concurrency", 0))
    except (TypeError, ValueError):
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_sweep.json")
    parser.add_argument("--fresh", required=True, help="JSON from the CI bench run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--keys",
        default=DEFAULT_KEYS,
        help="comma-separated metrics to guard (higher-is-better unless known otherwise)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)

    # Either side having been produced on a 1-core host makes a thread
    # speedup comparison meaningless.
    single_core = cores(baseline) == 1 or cores(fresh) == 1

    failed = False
    compared = 0
    for key in [k for k in args.keys.split(",") if k]:
        if key in MULTITHREAD_SPEEDUP_KEYS and single_core:
            print(
                f"  SKIP {key}: provenance records a 1-core host — the multi-thread "
                "speedup is scheduling noise there, not a guarded metric"
            )
            continue
        if key not in baseline or key not in fresh:
            print(f"  SKIP {key}: missing from {'baseline' if key not in baseline else 'fresh'}")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            print(f"  SKIP {key}: non-positive baseline {base}")
            continue
        ratio = now / base
        if key in LOWER_IS_BETTER_KEYS:
            verdict = "OK" if ratio <= 1.0 + args.tolerance else "FAIL"
            direction = "(lower is better)"
        else:
            verdict = "OK" if ratio >= 1.0 - args.tolerance else "FAIL"
            direction = ""
        failed |= verdict == "FAIL"
        compared += 1
        print(f"  {verdict:4} {key}: baseline {base:.6g} -> fresh {now:.6g} ({ratio:.2f}x){direction}")

    if compared == 0:
        # All-skip means the gate compared nothing — a renamed metric or a
        # truncated JSON must not read as a pass.
        print("bench regression gate FAILED: no guarded metric present in both files")
        return 1
    if failed:
        print(
            f"bench regression gate FAILED (> {args.tolerance:.0%} drop). If the slowdown is\n"
            "intentional or the baseline hardware changed, regenerate BENCH_sweep.json with\n"
            "a Release build of bench_sweep and commit it alongside the change."
        )
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
