#!/usr/bin/env python3
"""Validate the observability artifacts a reconstruction emits.

Checks that --trace-out produced well-formed Chrome trace_event JSON
(loadable in Perfetto / chrome://tracing) with the expected span names on
every rank, and that --metrics-out produced a ptycho.metrics.v1 snapshot
with the documented keys. Run by the release-bench CI job on a smoke
reconstruction; exits nonzero with a message on the first violation.

Usage:
  python3 tools/validate_trace.py --trace trace.json --metrics metrics.json \
      --require-spans sweep,sync,update,checkpoint --ranks 2
"""

import argparse
import json
import numbers
import sys

REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")

# Counters every instrumented reconstruction must report (gauges vary by
# solver, so only the universally set ones are required).
REQUIRED_METRIC_COUNTERS = (
    "sweep_probes_total",
    "fft2d_transforms_total",
    "fft2d_bytes_total",
)
REQUIRED_METRIC_GAUGES = ("wall_seconds",)


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {what} {path!r}: {e}")


def validate_trace(path, require_spans, ranks):
    trace = load_json(path, "trace")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: not a trace_event JSON object (missing 'traceEvents')")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")

    spans_by_pid = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") == "M":
            # Metadata events (process_name) carry no timestamp.
            if "name" not in event or "pid" not in event:
                fail(f"{path}: traceEvents[{i}] metadata missing name/pid")
            continue
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                fail(f"{path}: traceEvents[{i}] missing field {field!r}")
        if not isinstance(event["ts"], numbers.Number) or event["ts"] < 0:
            fail(f"{path}: traceEvents[{i}] has invalid ts {event['ts']!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, numbers.Number) or dur < 0:
                fail(f"{path}: traceEvents[{i}] ('{event['name']}') has invalid dur {dur!r}")
            spans_by_pid.setdefault(event["pid"], set()).add(event["name"])
        elif event["ph"] != "i":
            fail(f"{path}: traceEvents[{i}] has unexpected ph {event['ph']!r}")

    if len(spans_by_pid) < ranks:
        fail(
            f"{path}: spans cover {len(spans_by_pid)} rank lane(s), expected >= {ranks} "
            f"(pids seen: {sorted(spans_by_pid)})"
        )
    for pid in sorted(spans_by_pid)[:ranks]:
        missing = [name for name in require_spans if name not in spans_by_pid[pid]]
        if missing:
            fail(
                f"{path}: rank {pid} is missing required span(s) {missing} "
                f"(has: {sorted(spans_by_pid[pid])})"
            )

    dropped = trace.get("otherData", {}).get("dropped_spans")
    if not isinstance(dropped, int):
        fail(f"{path}: otherData.dropped_spans missing or non-integer")
    n_spans = sum(len(v) for v in spans_by_pid.values())
    print(
        f"validate_trace: trace OK: {len(events)} events, "
        f"{len(spans_by_pid)} rank lane(s), {dropped} dropped"
    )


def validate_metrics(path):
    metrics = load_json(path, "metrics")
    if metrics.get("schema") != "ptycho.metrics.v1":
        fail(f"{path}: schema is {metrics.get('schema')!r}, expected 'ptycho.metrics.v1'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{path}: missing section {section!r}")
    counters = metrics["counters"]
    for key in REQUIRED_METRIC_COUNTERS:
        value = counters.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {key!r} missing or invalid ({value!r})")
        if value == 0:
            fail(f"{path}: counter {key!r} is zero — instrumentation did not fire")
    for key in REQUIRED_METRIC_GAUGES:
        value = metrics["gauges"].get(key)
        if not isinstance(value, numbers.Number):
            fail(f"{path}: gauge {key!r} missing or non-numeric ({value!r})")
    for name, summary in metrics["histograms"].items():
        for field in ("count", "sum", "min", "max"):
            if not isinstance(summary.get(field), numbers.Number):
                fail(f"{path}: histogram {name!r} missing field {field!r}")
    print(
        f"validate_trace: metrics OK: {len(counters)} counters, "
        f"{len(metrics['gauges'])} gauges, {len(metrics['histograms'])} histograms"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="ptycho.metrics.v1 JSON to validate")
    parser.add_argument(
        "--require-spans",
        default="",
        help="comma-separated span names required on every rank lane",
    )
    parser.add_argument(
        "--ranks", type=int, default=1, help="minimum number of rank lanes expected"
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass --trace and/or --metrics")

    require_spans = [s for s in args.require_spans.split(",") if s]
    if args.trace:
        validate_trace(args.trace, require_spans, args.ranks)
    if args.metrics:
        validate_metrics(args.metrics)
    print("validate_trace: all checks passed")


if __name__ == "__main__":
    main()
