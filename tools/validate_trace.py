#!/usr/bin/env python3
"""Validate the observability artifacts a reconstruction emits.

Checks that --trace-out produced well-formed Chrome trace_event JSON
(loadable in Perfetto / chrome://tracing) with the expected span names on
every rank, and that --metrics-out produced a ptycho.metrics.v1 snapshot
with the documented keys. Run by the release-bench CI job on a smoke
reconstruction; exits nonzero with a message on the first violation.

With --expect-overlap, also computes a span-derived hidden-I/O ratio:
the fraction of background snapshot-write time that ran while the rank
lane was busy with other work (sweeps, gradient sync, updates, manifest
finalization) instead of extending the critical path. The rank lane's
pass-wait stalls — where it fenced on the very write being measured —
deliberately do NOT count as busy, so a "background" write the pipeline
immediately blocks on scores zero. A sync pipeline scores exactly zero
(its writes happen inline on the rank lane); the gate fails when the
ratio is below the given minimum or when no snapshot-write span exists.
This is intentionally not the compute-only obs::comm_overlap statistic
(reported by bench_sweep): on the 1-2 core runners CI uses, a background
writer only gets CPU while the rank lane blocks in fabric waits, so
compute-intersection is scheduler luck, while time hidden under rank-lane
activity of any phase is the invariant the async executor guarantees.

Usage:
  python3 tools/validate_trace.py --trace trace.json --metrics metrics.json \
      --require-spans sweep,sync,update,checkpoint --ranks 2 \
      [--expect-overlap 0.05]
"""

import argparse
import json
import numbers
import sys

REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")

# Counters every instrumented reconstruction must report (gauges vary by
# solver, so only the universally set ones are required).
REQUIRED_METRIC_COUNTERS = (
    "sweep_probes_total",
    "fft2d_transforms_total",
    "fft2d_bytes_total",
)
REQUIRED_METRIC_GAUGES = ("wall_seconds",)


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {what} {path!r}: {e}")


def validate_trace(path, require_spans, ranks):
    trace = load_json(path, "trace")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: not a trace_event JSON object (missing 'traceEvents')")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")

    spans_by_pid = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") == "M":
            # Metadata events (process_name) carry no timestamp.
            if "name" not in event or "pid" not in event:
                fail(f"{path}: traceEvents[{i}] metadata missing name/pid")
            continue
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                fail(f"{path}: traceEvents[{i}] missing field {field!r}")
        if not isinstance(event["ts"], numbers.Number) or event["ts"] < 0:
            fail(f"{path}: traceEvents[{i}] has invalid ts {event['ts']!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, numbers.Number) or dur < 0:
                fail(f"{path}: traceEvents[{i}] ('{event['name']}') has invalid dur {dur!r}")
            spans_by_pid.setdefault(event["pid"], set()).add(event["name"])
        elif event["ph"] != "i":
            fail(f"{path}: traceEvents[{i}] has unexpected ph {event['ph']!r}")

    if len(spans_by_pid) < ranks:
        fail(
            f"{path}: spans cover {len(spans_by_pid)} rank lane(s), expected >= {ranks} "
            f"(pids seen: {sorted(spans_by_pid)})"
        )
    for pid in sorted(spans_by_pid)[:ranks]:
        missing = [name for name in require_spans if name not in spans_by_pid[pid]]
        if missing:
            fail(
                f"{path}: rank {pid} is missing required span(s) {missing} "
                f"(has: {sorted(spans_by_pid[pid])})"
            )

    dropped = trace.get("otherData", {}).get("dropped_spans")
    if not isinstance(dropped, int):
        fail(f"{path}: otherData.dropped_spans missing or non-integer")
    n_spans = sum(len(v) for v in spans_by_pid.values())
    print(
        f"validate_trace: trace OK: {len(events)} events, "
        f"{len(spans_by_pid)} rank lane(s), {dropped} dropped"
    )


# Rank-lane spans that count as "busy" when measuring how much background
# snapshot I/O was hidden. Container spans (chunk, iteration-hooks,
# checkpoint-finalize) are excluded — they enclose the pass-wait stalls a
# fenced write causes, and counting them would hide the stall itself.
# pass-wait is the rank lane blocking ON the background write, so it is
# exactly the time that must NOT count as hidden.
BUSY_SPANS = frozenset(
    (
        "sweep",
        "sync",
        "update",
        "probe-refine",
        "cost-record",
        "fault-point",
        "progress",
        "snapshot-finalize",
        "allreduce",
    )
)
IO_SPAN = "snapshot-write"


def interval_union(intervals):
    """Sorted merge of [start, end) intervals into disjoint ones."""
    merged = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def intersection_measure(a, b):
    """Total length of the intersection of two disjoint-sorted interval sets."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def validate_overlap(path, minimum):
    """Gate the fraction of snapshot-write time hidden under rank-lane work."""
    trace = load_json(path, "trace")
    per_rank = {}  # pid -> (busy intervals, snapshot-write intervals)
    for event in trace.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = event.get("name")
        if name == IO_SPAN:
            bucket = 1
        elif name in BUSY_SPANS:
            bucket = 0
        else:
            continue
        start = float(event["ts"])
        per_rank.setdefault(event["pid"], ([], []))[bucket].append(
            (start, start + float(event["dur"]))
        )
    io = 0.0
    hidden = 0.0
    for busy_iv, io_iv in per_rank.values():
        busy_u = interval_union(busy_iv)
        io_u = interval_union(io_iv)
        io += sum(end - start for start, end in io_u)
        hidden += intersection_measure(busy_u, io_u)
    if io <= 0.0:
        fail(f"{path}: no '{IO_SPAN}' span found — nothing checkpointed, overlap gate is vacuous")
    ratio = hidden / io
    if ratio < minimum:
        fail(
            f"{path}: hidden-I/O ratio {ratio:.3f} below required {minimum:.3f} "
            f"(snapshot-write {io:.0f} us, hidden {hidden:.0f} us) — "
            "the async pipeline did not keep checkpoint I/O off the critical path"
        )
    print(
        f"validate_trace: overlap OK: {hidden:.0f} of {io:.0f} us snapshot-write "
        f"hidden under rank-lane work (ratio {ratio:.3f} >= {minimum:.3f})"
    )


def validate_recovery(path):
    """Gate the self-healing instrumentation: a run that recovered from a
    rank failure must have counted the failure, counted the restart, and
    timed the recovery."""
    metrics = load_json(path, "metrics")
    counters = metrics.get("counters", {})
    for key in (
        "runtime.recovery.rank_failures_total",
        "runtime.recovery.restarts_total",
    ):
        value = counters.get(key)
        if not isinstance(value, int) or value < 1:
            fail(f"{path}: counter {key!r} is {value!r}, expected >= 1 for a recovered run")
    latency = metrics.get("histograms", {}).get("runtime.recovery.latency_seconds")
    if not isinstance(latency, dict) or not isinstance(latency.get("count"), int):
        fail(f"{path}: histogram 'runtime.recovery.latency_seconds' missing for a recovered run")
    if latency["count"] < 1:
        fail(f"{path}: recovery latency histogram is empty — recovery was never timed")
    generation = metrics.get("gauges", {}).get("runtime.recovery.generation")
    if not isinstance(generation, numbers.Number) or generation < 1:
        fail(
            f"{path}: gauge 'runtime.recovery.generation' is {generation!r}, "
            "expected >= 1 after a restart"
        )
    print(
        "validate_trace: recovery OK: "
        f"{counters['runtime.recovery.rank_failures_total']} failure(s), "
        f"{counters['runtime.recovery.restarts_total']} restart(s), "
        f"latency count {latency['count']}, generation {generation:g}"
    )


def validate_metrics(path):
    metrics = load_json(path, "metrics")
    if metrics.get("schema") != "ptycho.metrics.v1":
        fail(f"{path}: schema is {metrics.get('schema')!r}, expected 'ptycho.metrics.v1'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{path}: missing section {section!r}")
    counters = metrics["counters"]
    for key in REQUIRED_METRIC_COUNTERS:
        value = counters.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {key!r} missing or invalid ({value!r})")
        if value == 0:
            fail(f"{path}: counter {key!r} is zero — instrumentation did not fire")
    for key in REQUIRED_METRIC_GAUGES:
        value = metrics["gauges"].get(key)
        if not isinstance(value, numbers.Number):
            fail(f"{path}: gauge {key!r} missing or non-numeric ({value!r})")
    for name, summary in metrics["histograms"].items():
        for field in ("count", "sum", "min", "max"):
            if not isinstance(summary.get(field), numbers.Number):
                fail(f"{path}: histogram {name!r} missing field {field!r}")
    print(
        f"validate_trace: metrics OK: {len(counters)} counters, "
        f"{len(metrics['gauges'])} gauges, {len(metrics['histograms'])} histograms"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="ptycho.metrics.v1 JSON to validate")
    parser.add_argument(
        "--require-spans",
        default="",
        help="comma-separated span names required on every rank lane",
    )
    parser.add_argument(
        "--ranks", type=int, default=1, help="minimum number of rank lanes expected"
    )
    parser.add_argument(
        "--expect-overlap",
        type=float,
        default=None,
        metavar="MIN",
        help="require the fraction of snapshot-write time hidden under rank-lane work >= MIN",
    )
    parser.add_argument(
        "--expect-recovery",
        action="store_true",
        help="require runtime.recovery.* metrics showing at least one healed rank failure",
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass --trace and/or --metrics")
    if args.expect_overlap is not None and not args.trace:
        parser.error("--expect-overlap requires --trace")
    if args.expect_recovery and not args.metrics:
        parser.error("--expect-recovery requires --metrics")

    require_spans = [s for s in args.require_spans.split(",") if s]
    if args.trace:
        validate_trace(args.trace, require_spans, args.ranks)
        if args.expect_overlap is not None:
            validate_overlap(args.trace, args.expect_overlap)
    if args.metrics:
        validate_metrics(args.metrics)
        if args.expect_recovery:
            validate_recovery(args.metrics)
    print("validate_trace: all checks passed")


if __name__ == "__main__":
    main()
