file(REMOVE_RECURSE
  "CMakeFiles/example_artifact_study.dir/examples/artifact_study.cpp.o"
  "CMakeFiles/example_artifact_study.dir/examples/artifact_study.cpp.o.d"
  "example_artifact_study"
  "example_artifact_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_artifact_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
