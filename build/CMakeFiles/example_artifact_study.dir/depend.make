# Empty dependencies file for example_artifact_study.
# This may be replaced when dependencies are built.
