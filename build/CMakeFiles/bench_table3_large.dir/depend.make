# Empty dependencies file for bench_table3_large.
# This may be replaced when dependencies are built.
