file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_large.dir/bench/bench_table3_large.cpp.o"
  "CMakeFiles/bench_table3_large.dir/bench/bench_table3_large.cpp.o.d"
  "bench_table3_large"
  "bench_table3_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
