# Empty dependencies file for bench_fig7a_scaling.
# This may be replaced when dependencies are built.
