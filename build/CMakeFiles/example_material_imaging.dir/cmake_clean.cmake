file(REMOVE_RECURSE
  "CMakeFiles/example_material_imaging.dir/examples/material_imaging.cpp.o"
  "CMakeFiles/example_material_imaging.dir/examples/material_imaging.cpp.o.d"
  "example_material_imaging"
  "example_material_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_material_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
