# Empty dependencies file for example_material_imaging.
# This may be replaced when dependencies are built.
