# Empty dependencies file for example_realtime_guidance.
# This may be replaced when dependencies are built.
