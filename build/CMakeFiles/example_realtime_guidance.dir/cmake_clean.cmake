file(REMOVE_RECURSE
  "CMakeFiles/example_realtime_guidance.dir/examples/realtime_guidance.cpp.o"
  "CMakeFiles/example_realtime_guidance.dir/examples/realtime_guidance.cpp.o.d"
  "example_realtime_guidance"
  "example_realtime_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_realtime_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
