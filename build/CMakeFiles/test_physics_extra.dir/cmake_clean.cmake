file(REMOVE_RECURSE
  "CMakeFiles/test_physics_extra.dir/tests/test_physics_extra.cpp.o"
  "CMakeFiles/test_physics_extra.dir/tests/test_physics_extra.cpp.o.d"
  "test_physics_extra"
  "test_physics_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
