# Empty dependencies file for test_physics_extra.
# This may be replaced when dependencies are built.
