file(REMOVE_RECURSE
  "CMakeFiles/ptycho.dir/tools/ptycho_cli.cpp.o"
  "CMakeFiles/ptycho.dir/tools/ptycho_cli.cpp.o.d"
  "ptycho"
  "ptycho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptycho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
