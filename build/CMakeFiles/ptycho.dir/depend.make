# Empty dependencies file for ptycho.
# This may be replaced when dependencies are built.
