file(REMOVE_RECURSE
  "CMakeFiles/test_probe_refinement.dir/tests/test_probe_refinement.cpp.o"
  "CMakeFiles/test_probe_refinement.dir/tests/test_probe_refinement.cpp.o.d"
  "test_probe_refinement"
  "test_probe_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
