# Empty dependencies file for test_probe_refinement.
# This may be replaced when dependencies are built.
