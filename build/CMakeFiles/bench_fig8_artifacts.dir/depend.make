# Empty dependencies file for bench_fig8_artifacts.
# This may be replaced when dependencies are built.
