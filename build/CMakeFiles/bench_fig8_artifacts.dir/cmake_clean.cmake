file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_artifacts.dir/bench/bench_fig8_artifacts.cpp.o"
  "CMakeFiles/bench_fig8_artifacts.dir/bench/bench_fig8_artifacts.cpp.o.d"
  "bench_fig8_artifacts"
  "bench_fig8_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
