file(REMOVE_RECURSE
  "libptycho_core.a"
)
