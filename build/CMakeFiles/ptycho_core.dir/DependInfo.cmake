
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/elastic.cpp" "CMakeFiles/ptycho_core.dir/src/ckpt/elastic.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/ckpt/elastic.cpp.o.d"
  "/root/repo/src/ckpt/serialize.cpp" "CMakeFiles/ptycho_core.dir/src/ckpt/serialize.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/ckpt/serialize.cpp.o.d"
  "/root/repo/src/ckpt/snapshot.cpp" "CMakeFiles/ptycho_core.dir/src/ckpt/snapshot.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/ckpt/snapshot.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/ptycho_core.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/memory.cpp" "CMakeFiles/ptycho_core.dir/src/common/memory.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/memory.cpp.o.d"
  "/root/repo/src/common/options.cpp" "CMakeFiles/ptycho_core.dir/src/common/options.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/options.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "CMakeFiles/ptycho_core.dir/src/common/parallel.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/parallel.cpp.o.d"
  "/root/repo/src/common/random.cpp" "CMakeFiles/ptycho_core.dir/src/common/random.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/random.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "CMakeFiles/ptycho_core.dir/src/common/timer.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/common/timer.cpp.o.d"
  "/root/repo/src/core/accbuf.cpp" "CMakeFiles/ptycho_core.dir/src/core/accbuf.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/accbuf.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "CMakeFiles/ptycho_core.dir/src/core/convergence.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/convergence.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "CMakeFiles/ptycho_core.dir/src/core/cost.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/cost.cpp.o.d"
  "/root/repo/src/core/gradient_decomposition.cpp" "CMakeFiles/ptycho_core.dir/src/core/gradient_decomposition.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/gradient_decomposition.cpp.o.d"
  "/root/repo/src/core/gradient_engine.cpp" "CMakeFiles/ptycho_core.dir/src/core/gradient_engine.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/gradient_engine.cpp.o.d"
  "/root/repo/src/core/halo_voxel_exchange.cpp" "CMakeFiles/ptycho_core.dir/src/core/halo_voxel_exchange.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/halo_voxel_exchange.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "CMakeFiles/ptycho_core.dir/src/core/memory_model.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/memory_model.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "CMakeFiles/ptycho_core.dir/src/core/optimizer.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/optimizer.cpp.o.d"
  "/root/repo/src/core/passes.cpp" "CMakeFiles/ptycho_core.dir/src/core/passes.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/passes.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/ptycho_core.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/reconstructor.cpp" "CMakeFiles/ptycho_core.dir/src/core/reconstructor.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/reconstructor.cpp.o.d"
  "/root/repo/src/core/seam_metric.cpp" "CMakeFiles/ptycho_core.dir/src/core/seam_metric.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/seam_metric.cpp.o.d"
  "/root/repo/src/core/serial_solver.cpp" "CMakeFiles/ptycho_core.dir/src/core/serial_solver.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/serial_solver.cpp.o.d"
  "/root/repo/src/core/stitcher.cpp" "CMakeFiles/ptycho_core.dir/src/core/stitcher.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/stitcher.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "CMakeFiles/ptycho_core.dir/src/core/sweep.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/core/sweep.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/ptycho_core.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/io.cpp" "CMakeFiles/ptycho_core.dir/src/data/io.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/data/io.cpp.o.d"
  "/root/repo/src/data/simulate.cpp" "CMakeFiles/ptycho_core.dir/src/data/simulate.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/data/simulate.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/ptycho_core.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/fft/bluestein.cpp" "CMakeFiles/ptycho_core.dir/src/fft/bluestein.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/fft/bluestein.cpp.o.d"
  "/root/repo/src/fft/fft2d.cpp" "CMakeFiles/ptycho_core.dir/src/fft/fft2d.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/fft/fft2d.cpp.o.d"
  "/root/repo/src/fft/plan.cpp" "CMakeFiles/ptycho_core.dir/src/fft/plan.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/fft/plan.cpp.o.d"
  "/root/repo/src/fft/radix2.cpp" "CMakeFiles/ptycho_core.dir/src/fft/radix2.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/fft/radix2.cpp.o.d"
  "/root/repo/src/partition/assignment.cpp" "CMakeFiles/ptycho_core.dir/src/partition/assignment.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/partition/assignment.cpp.o.d"
  "/root/repo/src/partition/overlap.cpp" "CMakeFiles/ptycho_core.dir/src/partition/overlap.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/partition/overlap.cpp.o.d"
  "/root/repo/src/partition/tilegrid.cpp" "CMakeFiles/ptycho_core.dir/src/partition/tilegrid.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/partition/tilegrid.cpp.o.d"
  "/root/repo/src/physics/grid.cpp" "CMakeFiles/ptycho_core.dir/src/physics/grid.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/physics/grid.cpp.o.d"
  "/root/repo/src/physics/multislice.cpp" "CMakeFiles/ptycho_core.dir/src/physics/multislice.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/physics/multislice.cpp.o.d"
  "/root/repo/src/physics/probe.cpp" "CMakeFiles/ptycho_core.dir/src/physics/probe.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/physics/probe.cpp.o.d"
  "/root/repo/src/physics/propagator.cpp" "CMakeFiles/ptycho_core.dir/src/physics/propagator.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/physics/propagator.cpp.o.d"
  "/root/repo/src/physics/scan.cpp" "CMakeFiles/ptycho_core.dir/src/physics/scan.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/physics/scan.cpp.o.d"
  "/root/repo/src/runtime/channel.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/channel.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/channel.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/cluster.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/collectives.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/collectives.cpp.o.d"
  "/root/repo/src/runtime/memtrack.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/memtrack.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/memtrack.cpp.o.d"
  "/root/repo/src/runtime/perfmodel.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/perfmodel.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/perfmodel.cpp.o.d"
  "/root/repo/src/runtime/topology.cpp" "CMakeFiles/ptycho_core.dir/src/runtime/topology.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/runtime/topology.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/ptycho_core.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/region.cpp" "CMakeFiles/ptycho_core.dir/src/tensor/region.cpp.o" "gcc" "CMakeFiles/ptycho_core.dir/src/tensor/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
