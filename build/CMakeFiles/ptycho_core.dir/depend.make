# Empty dependencies file for ptycho_core.
# This may be replaced when dependencies are built.
