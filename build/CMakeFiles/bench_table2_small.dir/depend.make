# Empty dependencies file for bench_table2_small.
# This may be replaced when dependencies are built.
