file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_small.dir/bench/bench_table2_small.cpp.o"
  "CMakeFiles/bench_table2_small.dir/bench/bench_table2_small.cpp.o.d"
  "bench_table2_small"
  "bench_table2_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
