file(REMOVE_RECURSE
  "CMakeFiles/test_physics.dir/tests/test_physics.cpp.o"
  "CMakeFiles/test_physics.dir/tests/test_physics.cpp.o.d"
  "test_physics"
  "test_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
