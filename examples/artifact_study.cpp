// Artifact study: side-by-side comparison of decomposition strategies on
// the same dataset — serial reference, Gradient Decomposition, and Halo
// Voxel Exchange at several replication levels — with seam metrics,
// error-vs-truth, memory and traffic, all in one table.
//
// This is the "which solver should I use?" example: it shows why the
// library defaults to Gradient Decomposition.
//
//   ./artifact_study [--mesh 2] [--iterations 10] [--outdir .]
#include <cstdio>

#include "common/options.hpp"
#include "core/reconstructor.hpp"
#include "core/seam_metric.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"

using namespace ptycho;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string outdir = opts.get_string("outdir", ".");
  const int mesh = static_cast<int>(opts.get_int("mesh", 2));
  const int iterations = static_cast<int>(opts.get_int("iterations", 10));
  const auto step = static_cast<real>(opts.get_double("step", 0.1));

  const Dataset dataset = make_synthetic_dataset(repro_tiny_spec());
  const index_t mid = dataset.spec.slices / 2;

  // Serial reference.
  SerialConfig serial_config;
  serial_config.iterations = iterations;
  serial_config.step = step;
  const SerialResult serial = reconstruct_serial(dataset, serial_config);

  GdConfig mesh_probe;
  mesh_probe.nranks = mesh * mesh;
  mesh_probe.mesh_rows = mesh;
  mesh_probe.mesh_cols = mesh;
  const Partition partition = make_gd_partition(dataset, mesh_probe);

  std::printf("%-26s %12s %12s %12s %12s\n", "method", "seam ratio", "err vs ref",
              "mem/rank MB", "comm MB");
  const SeamReport serial_seams = measure_seams(serial.volume, partition);
  std::printf("%-26s %12.3f %12s %12s %12s\n", "serial", serial_seams.seam_ratio, "0", "-",
              "-");

  // Gradient Decomposition.
  {
    GdConfig config = mesh_probe;
    config.iterations = iterations;
    config.step = step;
    const ParallelResult gd = reconstruct_gd(dataset, config);
    std::uint64_t bytes = 0;
    for (std::uint64_t b : gd.fabric.bytes_sent) bytes += b;
    std::printf("%-26s %12.3f %12.4f %12.2f %12.2f\n", "gradient decomposition",
                measure_seams(gd.volume, partition).seam_ratio,
                relative_rms_error(gd.volume, serial.volume), gd.mean_peak_bytes / kMiB,
                static_cast<double>(bytes) / kMiB);
    io::write_phase_pgm(outdir + "/artifact_gd.pgm", gd.volume.window(mid, gd.volume.frame));
  }

  // Halo Voxel Exchange at increasing replication.
  for (const int rings : {0, 1, 2}) {
    HveConfig config;
    config.nranks = mesh * mesh;
    config.mesh_rows = mesh;
    config.mesh_cols = mesh;
    config.iterations = iterations;
    config.step = step;
    config.extra_rings = rings;
    char label[64];
    std::snprintf(label, sizeof label, "halo exchange (rings=%d)", rings);
    if (!hve_feasible(dataset, config)) {
      std::printf("%-26s %12s\n", label, "NA");
      continue;
    }
    const ParallelResult hve = reconstruct_hve(dataset, config);
    std::uint64_t bytes = 0;
    for (std::uint64_t b : hve.fabric.bytes_sent) bytes += b;
    std::printf("%-26s %12.3f %12.4f %12.2f %12.2f\n", label,
                measure_seams(hve.volume, partition).seam_ratio,
                relative_rms_error(hve.volume, serial.volume), hve.mean_peak_bytes / kMiB,
                static_cast<double>(bytes) / kMiB);
    char name[128];
    std::snprintf(name, sizeof name, "%s/artifact_hve_rings%d.pgm", outdir.c_str(), rings);
    io::write_phase_pgm(name, hve.volume.window(mid, hve.volume.frame));
  }

  io::write_phase_pgm(outdir + "/artifact_serial.pgm",
                      serial.volume.window(mid, serial.volume.frame));
  std::printf("\nimages written to %s/artifact_*.pgm\n", outdir.c_str());
  std::printf("takeaway: GD matches the serial reference without halo replication; HVE "
              "needs growing replication (memory + redundant compute) to suppress seams.\n");
  return 0;
}
