// Quickstart: simulate a tiny ptychography acquisition, reconstruct it
// with the Gradient Decomposition solver on 4 virtual GPUs, and save the
// result. Start here to see the whole public API in ~40 lines.
//
//   ./quickstart [--ranks 4] [--iterations 8] [--outdir .]
#include <cstdio>

#include "common/options.hpp"
#include "core/reconstructor.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"

using namespace ptycho;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string outdir = opts.get_string("outdir", ".");

  // 1. Acquire (here: simulate) a dataset — a raster scan of diffraction
  //    magnitude measurements over a synthetic perovskite specimen.
  const Dataset dataset = make_synthetic_dataset(repro_tiny_spec());
  std::printf("dataset: %lld probe locations, %.0f%% overlap, field %lldx%lld px, %lld slices\n",
              static_cast<long long>(dataset.probe_count()),
              dataset.scan.overlap_ratio() * 100.0,
              static_cast<long long>(dataset.field().h),
              static_cast<long long>(dataset.field().w),
              static_cast<long long>(dataset.spec.slices));

  // 2. Reconstruct with the paper's Gradient Decomposition method.
  Reconstructor reconstructor(dataset);
  ReconstructionRequest request;
  request.method = Method::kGradientDecomposition;
  request.nranks = static_cast<int>(opts.get_int("ranks", 4));
  request.iterations = static_cast<int>(opts.get_int("iterations", 8));
  const ReconstructionOutcome outcome = reconstructor.run(request);

  // 3. Inspect the result.
  std::printf("cost: %.4g -> %.4g (%.1f%% of start) in %.2f s on %d virtual GPUs\n",
              outcome.cost.first(), outcome.cost.last(), outcome.cost.reduction() * 100.0,
              outcome.wall_seconds, request.nranks);
  std::printf("peak device memory per GPU: %.2f MiB\n", outcome.mean_peak_bytes / kMiB);

  // 4. Save: binary volume + a phase image of the middle slice.
  io::save_volume(outdir + "/quickstart_volume.bin", outcome.volume);
  const index_t mid = dataset.spec.slices / 2;
  io::write_phase_pgm(outdir + "/quickstart_phase.pgm",
                      outcome.volume.window(mid, outcome.volume.frame));
  std::printf("wrote %s/quickstart_volume.bin and %s/quickstart_phase.pgm\n", outdir.c_str(),
              outdir.c_str());
  return 0;
}
