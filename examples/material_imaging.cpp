// Material imaging workload: the paper's motivating scenario — a
// perovskite (PbTiO3-like) crystal imaged by defocused electron
// ptychography, reconstructed in parallel with Gradient Decomposition.
//
// Demonstrates: dataset configuration from physical units, shot-noise
// acquisition at a chosen electron dose, multi-rank reconstruction with
// per-phase timing breakdown, quality metrics against the ground truth,
// and per-slice image export.
//
//   ./material_imaging [--ranks 6] [--iterations 12] [--dose 1e6]
//                      [--defocus-pm 2000] [--step 0.1] [--refine-probe]
//                      [--outdir .]
#include <cstdio>

#include "common/options.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/seam_metric.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"
#include "partition/assignment.hpp"

using namespace ptycho;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string outdir = opts.get_string("outdir", ".");

  // --- configure the acquisition from physical units --------------------
  DatasetSpec spec = repro_small_spec();
  spec.name = "PbTiO3 (synthetic)";
  spec.probe.defocus_pm = opts.get_double("defocus-pm", 2000.0);

  SpecimenParams specimen;        // PbTiO3-like lattice (a = 390 pm)
  AcquisitionParams acquisition;  // finite dose -> Poisson shot noise
  acquisition.dose_electrons = opts.get_double("dose", 1.0e6);

  std::printf("acquiring %s: %lldx%lld scan, %.1f pm defocus, dose %.2g e-/position\n",
              spec.name.c_str(), static_cast<long long>(spec.scan.rows),
              static_cast<long long>(spec.scan.cols), spec.probe.defocus_pm,
              acquisition.dose_electrons);
  const Dataset dataset = make_synthetic_dataset(spec, specimen, acquisition);

  // --- reconstruct -------------------------------------------------------
  GdConfig config;
  config.nranks = static_cast<int>(opts.get_int("ranks", 6));
  config.iterations = static_cast<int>(opts.get_int("iterations", 12));
  config.step = static_cast<real>(opts.get_double("step", 0.1));
  // Joint probe refinement corrects defocus miscalibration (--refine-probe).
  config.refine_probe = opts.get_bool("refine-probe", false);
  const Partition partition = make_gd_partition(dataset, config);
  std::printf("decomposition: %s\n", describe(partition).c_str());

  const ParallelResult result = reconstruct_gd(dataset, config);

  std::printf("\ncost %.4g -> %.4g over %d iterations, wall %.1f s\n", result.cost.first(),
              result.cost.last(), config.iterations, result.wall_seconds);
  std::printf("peak memory per rank: mean %.2f MiB, max %.2f MiB\n",
              result.mean_peak_bytes / kMiB, static_cast<double>(result.max_peak_bytes) / kMiB);

  const rt::BreakdownEntry mean = result.mean_breakdown();
  std::printf("per-rank time breakdown: compute %.2f s, wait %.2f s, comm %.2f s\n",
              mean.compute, mean.wait, mean.comm);

  // --- quality ------------------------------------------------------------
  const double err = relative_rms_error(result.volume, dataset.ground_truth);
  std::printf("relative RMS error vs ground truth: %.4f\n", err);
  const SeamReport seams = measure_seams(result.volume, partition);
  std::printf("tile-border seam ratio: %.3f (1.0 = indistinguishable from background)\n",
              seams.seam_ratio);

  // --- export -------------------------------------------------------------
  for (index_t s = 0; s < dataset.spec.slices; s += 2) {
    char name[128];
    std::snprintf(name, sizeof name, "%s/material_slice%02lld.pgm", outdir.c_str(),
                  static_cast<long long>(s));
    io::write_phase_pgm(name, result.volume.window(s, result.volume.frame));
  }
  io::save_volume(outdir + "/material_volume.bin", result.volume);
  std::printf("wrote per-slice phase images and %s/material_volume.bin\n", outdir.c_str());
  return 0;
}
