// Real-time experiment guidance: the paper's Sec. I motivation —
// "ptychographic imaging often requires real-time reconstruction while
// collecting diffraction measurements and use the reconstruction to guide
// the data acquisition on-the-fly".
//
// This example simulates streaming acquisition: scan rows arrive in
// batches; after each batch the reconstruction is updated by warm-starting
// from the previous state and sweeping only the probes seen so far. The
// per-batch latency printed at the end is the number that must beat the
// microscope's dwell time for on-the-fly guidance.
//
//   ./realtime_guidance [--ranks 4] [--batch-rows 2] [--sweeps 3] [--outdir .]
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "core/cost.hpp"
#include "core/serial_solver.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"

using namespace ptycho;

namespace {

/// Dataset restricted to the first `rows` scan rows (measurements the
/// microscope has delivered so far).
Dataset partial_dataset(const DatasetSpec& full_spec, const Dataset& full, index_t rows) {
  DatasetSpec spec = full_spec;
  spec.scan.rows = rows;
  ScanPattern scan(spec.scan);
  Dataset partial(spec, std::move(scan), Probe(spec.grid, spec.probe));
  for (index_t i = 0; i < partial.scan.count(); ++i) {
    partial.measurements.push_back(full.measurements[static_cast<usize>(i)].clone());
  }
  return partial;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string outdir = opts.get_string("outdir", ".");
  const auto batch_rows = static_cast<index_t>(opts.get_int("batch-rows", 2));
  const int sweeps = static_cast<int>(opts.get_int("sweeps", 3));

  // The "microscope" acquires the full dataset up front; we reveal it to
  // the reconstruction row by row.
  const DatasetSpec spec = repro_tiny_spec();
  const Dataset full = make_synthetic_dataset(spec);
  std::printf("streaming %lld scan rows in batches of %lld (%d sweeps per batch)\n\n",
              static_cast<long long>(spec.scan.rows), static_cast<long long>(batch_rows),
              sweeps);

  FramedVolume state = make_vacuum_volume(full.field(), spec.slices);
  std::vector<double> latencies;

  std::printf("%10s %12s %14s %14s\n", "rows", "probes", "cost (full)", "latency (s)");
  for (index_t rows = batch_rows; rows <= spec.scan.rows; rows += batch_rows) {
    const Dataset seen = partial_dataset(spec, full, rows);

    WallTimer timer;
    SerialConfig config;
    config.iterations = sweeps;
    config.record_cost = false;
    // Warm start: the previous state already explains earlier batches, so
    // a few sweeps over the enlarged probe set suffice.
    FramedVolume warm = make_vacuum_volume(full.field(), spec.slices);
    copy_region(state, warm, state.frame);
    SerialResult result = reconstruct_serial(seen, config, &warm);
    state = std::move(result.volume);
    const double latency = timer.seconds();
    latencies.push_back(latency);

    // Progress metric the operator would watch: cost on everything
    // acquired so far.
    GradientEngine engine(seen);
    const double cost = total_cost(engine, state);
    std::printf("%10lld %12lld %14.4g %14.3f\n", static_cast<long long>(rows),
                static_cast<long long>(seen.probe_count()), cost, latency);
  }

  double worst = 0.0;
  for (double l : latencies) worst = std::max(worst, l);
  std::printf("\nworst per-batch latency %.3f s — must stay under the microscope dwell time "
              "for on-the-fly guidance\n", worst);

  io::write_phase_pgm(outdir + "/realtime_final.pgm",
                      state.window(spec.slices / 2, state.frame));
  std::printf("final reconstruction image: %s/realtime_final.pgm\n", outdir.c_str());
  return 0;
}
