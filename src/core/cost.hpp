// Whole-dataset cost evaluation F(V) = sum_i f_i(V)   (Eqn. 1).
#pragma once

#include <span>

#include "core/gradient_engine.hpp"

namespace ptycho {

/// F(V) over all probe locations (serial; used by tests and the seam /
/// convergence analyses).
[[nodiscard]] double total_cost(const GradientEngine& engine, const FramedVolume& volume);

/// Partial cost over a subset of probe ids.
[[nodiscard]] double total_cost(const GradientEngine& engine, const FramedVolume& volume,
                                std::span<const index_t> probe_ids);

}  // namespace ptycho
