// GradientDecomposition solver — the paper's contribution (Alg. 1).
//
// Each rank of the virtual cluster owns one extended tile of the image
// gradient and the measurements of its own probe locations only. Per
// probe: local gradient, AccBuf accumulation and (in SGD mode) an
// immediate local update; every 1/passes_per_iteration of the sweep the
// accumulated buffers are reconciled through the forward/backward passes
// (APPP) and applied. Finally halos are dropped and the owned tiles
// stitched (steps 20-21).
#pragma once

#include <vector>

#include "ckpt/snapshot.hpp"
#include "core/convergence.hpp"
#include "core/exec_options.hpp"
#include "core/gradient_engine.hpp"
#include "core/optimizer.hpp"
#include "core/passes.hpp"
#include "runtime/perfmodel.hpp"

namespace ptycho {

struct GdConfig {
  /// Ranks ("GPUs") of the virtual cluster; a near-square mesh is chosen
  /// automatically unless mesh_rows/cols are set explicitly.
  int nranks = 4;
  int mesh_rows = 0;  ///< 0 = choose automatically
  int mesh_cols = 0;
  int iterations = 10;
  real step = real(0.1);
  /// Communication frequency: bi-directional passes per iteration (Fig. 9
  /// sweeps this: once/iter, twice/iter, or probe_count/iter == per probe).
  int passes_per_iteration = 1;
  UpdateMode mode = UpdateMode::kSgd;
  SyncPolicy sync;  ///< scheme + APPP on/off
  /// Execution knobs (threads per rank, scheduler, pipeline mode,
  /// checkpoint policy, progress cadence, transport) — shared across every
  /// solver config; all bitwise-neutral (see ExecOptions). exec.threads=0
  /// means hardware concurrency divided by nranks, floored at 1, so the
  /// whole virtual cluster does not oversubscribe the host. A socket
  /// transport in exec.transport makes this process host exactly one rank
  /// of a K-process job (same messages, same result).
  ExecOptions exec;
  bool record_cost = true;
  /// Joint object+probe refinement. The probe is a *global* quantity, so
  /// each iteration the ranks all-reduce their probe-gradient buffers
  /// (one probe_n^2 message — negligible next to the tile passes) and
  /// apply the identical update, keeping probe copies consistent.
  bool refine_probe = false;
  real probe_step = real(0.3);
  int probe_warmup_iterations = 1;
  /// Resume from this snapshot; `iterations` then counts the run's TOTAL
  /// iterations. A snapshot whose tiling matches this config resumes
  /// exactly (including mid-iteration states); any other snapshot is
  /// restored elastically — re-tiled through partition/assignment and
  /// redistributed through the fabric — and must sit at an iteration
  /// boundary.
  const ckpt::Snapshot* restore = nullptr;
  /// Fault injection (testing): kill a rank at a configured step.
  rt::FaultPlan fault;
};

/// Result common to both decomposed solvers.
struct ParallelResult {
  FramedVolume volume;                         ///< stitched reconstruction (rank-0 view)
  CostHistory cost;                            ///< global F(V) per iteration
  std::vector<rt::BreakdownEntry> breakdown;   ///< per-rank compute/wait/comm seconds
  double mean_peak_bytes = 0.0;                ///< tracked per-rank peak memory, averaged
  usize max_peak_bytes = 0;
  rt::FabricStats fabric;                      ///< message/byte counts per rank
  double wall_seconds = 0.0;
  CArray2D probe_field;                        ///< refined probe (when enabled)
  [[nodiscard]] rt::BreakdownEntry mean_breakdown() const;
};

[[nodiscard]] ParallelResult reconstruct_gd(const Dataset& dataset, const GdConfig& config,
                                            const FramedVolume* initial = nullptr);

/// The partition a GdConfig implies (exposed for benches/tests).
[[nodiscard]] Partition make_gd_partition(const Dataset& dataset, const GdConfig& config);

}  // namespace ptycho
