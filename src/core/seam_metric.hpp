// Seam-artifact quantification (the Fig. 8 experiment).
//
// The paper shows HVE produces visible artificial seams at tile borders
// while GD does not. We quantify this: along every internal tile border
// of a partition, compare the mean squared intensity jump *across* the
// border line with the background jump between ordinary adjacent pixel
// lines nearby. A ratio ~1 means the border is statistically
// indistinguishable from the rest of the image (no seam); >> 1 means a
// visible seam.
#pragma once

#include "partition/tilegrid.hpp"
#include "tensor/framed.hpp"

namespace ptycho {

struct SeamReport {
  double border_jump = 0.0;      ///< mean |V(b) - V(b-1)|^2 across border lines
  double background_jump = 0.0;  ///< same statistic away from borders
  double seam_ratio = 1.0;       ///< border / background (the headline number)
  index_t border_lines = 0;      ///< internal borders measured
};

/// Measure seams of `volume` along the internal borders of `partition`.
[[nodiscard]] SeamReport measure_seams(const FramedVolume& volume, const Partition& partition);

/// RMS error against a reference reconstruction over the whole field
/// (normalized by the reference RMS) — the quality companion metric.
[[nodiscard]] double relative_rms_error(const FramedVolume& volume,
                                        const FramedVolume& reference);

}  // namespace ptycho
