#include "core/stitcher.hpp"

#include "core/passes.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

FramedVolume stitch_on_root(rt::RankContext& ctx, const Partition& partition,
                            const FramedVolume& tile_volume) {
  const index_t slices = tile_volume.slices();
  const Rect owned = partition.tile(ctx.rank()).owned;

  if (ctx.rank() != 0) {
    ctx.isend(0, rt::make_tag(rt::Phase::kStitch, ctx.rank()),
              pack_region(tile_volume, owned));
    return FramedVolume{};
  }

  FramedVolume full(slices, partition.field());
  copy_region(tile_volume, full, owned);
  for (int r = 1; r < ctx.nranks(); ++r) {
    std::vector<cplx> payload = ctx.recv(r, rt::make_tag(rt::Phase::kStitch, r));
    unpack_replace_region(payload, full, partition.tile(r).owned);
  }
  return full;
}

FramedVolume stitch_serial(const Partition& partition,
                           const std::vector<FramedVolume>& tile_volumes) {
  PTYCHO_REQUIRE(tile_volumes.size() == static_cast<usize>(partition.nranks()),
                 "one tile volume per rank required");
  const index_t slices = tile_volumes.front().slices();
  FramedVolume full(slices, partition.field());
  for (int r = 0; r < partition.nranks(); ++r) {
    copy_region(tile_volumes[static_cast<usize>(r)], full, partition.tile(r).owned);
  }
  return full;
}

}  // namespace ptycho
