#include "core/passes.hpp"

#include "runtime/collectives.hpp"

namespace ptycho {

const char* to_string(PassScheme scheme) {
  switch (scheme) {
    case PassScheme::kSweep: return "sweep";
    case PassScheme::kDirectNeighbors: return "direct-neighbors";
  }
  return "?";
}

PassEngine::PassEngine(const Partition& partition, int rank)
    : partition_(partition), rank_(rank), card_(cardinal_overlaps(partition, rank)) {
  for (int nb : partition.mesh().neighbors8(rank)) {
    const Rect overlap = partition.overlap(rank, nb);
    if (!overlap.empty()) neighbor8_.emplace_back(nb, overlap);
  }
}

void PassEngine::run_sweep(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = sweep_counter_++;

  // Vertical forward: receive-accumulate from north, then send south.
  // The receive *must* precede the send so contributions chain down the
  // whole column (Fig. 4(a)).
  if (card_.north_rank >= 0 && !card_.north.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.north_rank, rt::make_tag(comm_phase::kVerticalForward, stage));
    unpack_add_region(payload, buf, card_.north);
  }
  if (card_.south_rank >= 0 && !card_.south.empty()) {
    ctx.isend(card_.south_rank, rt::make_tag(comm_phase::kVerticalForward, stage),
              pack_region(buf, card_.south));
  }

  // Vertical backward: the southern tile's accumulated buffer replaces
  // ours over the overlap, then we forward our (now complete) buffer
  // north (Fig. 4(b)).
  if (card_.south_rank >= 0 && !card_.south.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.south_rank, rt::make_tag(comm_phase::kVerticalBackward, stage));
    unpack_replace_region(payload, buf, card_.south);
  }
  if (card_.north_rank >= 0 && !card_.north.empty()) {
    ctx.isend(card_.north_rank, rt::make_tag(comm_phase::kVerticalBackward, stage),
              pack_region(buf, card_.north));
  }

  // Horizontal forward (Fig. 4(c)). Note the cross-direction pipelining of
  // Sec. V: once this rank has posted its vertical-backward send it enters
  // the horizontal chain immediately — ranks in other rows may still be in
  // the vertical passes.
  if (card_.west_rank >= 0 && !card_.west.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.west_rank, rt::make_tag(comm_phase::kHorizontalForward, stage));
    unpack_add_region(payload, buf, card_.west);
  }
  if (card_.east_rank >= 0 && !card_.east.empty()) {
    ctx.isend(card_.east_rank, rt::make_tag(comm_phase::kHorizontalForward, stage),
              pack_region(buf, card_.east));
  }

  // Horizontal backward (Fig. 4(d)).
  if (card_.east_rank >= 0 && !card_.east.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.east_rank, rt::make_tag(comm_phase::kHorizontalBackward, stage));
    unpack_replace_region(payload, buf, card_.east);
  }
  if (card_.west_rank >= 0 && !card_.west.empty()) {
    ctx.isend(card_.west_rank, rt::make_tag(comm_phase::kHorizontalBackward, stage),
              pack_region(buf, card_.west));
  }
}

void PassEngine::run_direct(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = direct_counter_++;
  // Post all sends first (eager fabric: cannot deadlock), then accumulate
  // every neighbour's contribution.
  for (const auto& [nb, overlap] : neighbor8_) {
    ctx.isend(nb, rt::make_tag(comm_phase::kDirect, stage), pack_region(buf, overlap));
  }
  for (const auto& [nb, overlap] : neighbor8_) {
    std::vector<cplx> payload = ctx.recv(nb, rt::make_tag(comm_phase::kDirect, stage));
    unpack_add_region(payload, buf, overlap);
  }
}

void PassEngine::run_allreduce(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = allreduce_counter_++;
  const Rect field = partition_.field();
  const index_t slices = buf.slices();

  // Scatter the local buffer into a full-field dense vector.
  std::vector<cplx> dense(
      static_cast<usize>(field.area() * slices), cplx{});
  const Rect ext = buf.frame;
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < ext.h; ++y) {
      const index_t gy = ext.y0 + y - field.y0;
      const usize base = static_cast<usize>((s * field.h + gy) * field.w);
      for (index_t x = 0; x < ext.w; ++x) {
        const index_t gx = ext.x0 + x - field.x0;
        dense[base + static_cast<usize>(gx)] = buf.data(s, y, x);
      }
    }
  }
  rt::allreduce_sum(ctx, dense,
                    comm_phase::kAllreduce * 1000 + static_cast<int>(stage % 1000));
  // Gather back: replace the local buffer with the exact global sum.
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < ext.h; ++y) {
      const index_t gy = ext.y0 + y - field.y0;
      const usize base = static_cast<usize>((s * field.h + gy) * field.w);
      for (index_t x = 0; x < ext.w; ++x) {
        const index_t gx = ext.x0 + x - field.x0;
        buf.data(s, y, x) = dense[base + static_cast<usize>(gx)];
      }
    }
  }
}

}  // namespace ptycho
