#include "core/passes.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"

namespace ptycho {

const char* to_string(PassScheme scheme) {
  switch (scheme) {
    case PassScheme::kSweep: return "sweep";
    case PassScheme::kDirectNeighbors: return "direct-neighbors";
  }
  return "?";
}

PassEngine::PassEngine(const Partition& partition, int rank)
    : partition_(partition), rank_(rank), card_(cardinal_overlaps(partition, rank)) {
  for (int nb : partition.mesh().neighbors8(rank)) {
    const Rect overlap = partition.overlap(rank, nb);
    if (!overlap.empty()) neighbor8_.emplace_back(nb, overlap);
  }
}

void PassEngine::run_sweep(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = sweep_counter_++;

  // Vertical forward: receive-accumulate from north, then send south.
  // The receive *must* precede the send so contributions chain down the
  // whole column (Fig. 4(a)).
  if (card_.north_rank >= 0 && !card_.north.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.north_rank, rt::make_tag(rt::Phase::kVerticalForward, stage));
    unpack_add_region(payload, buf, card_.north);
  }
  if (card_.south_rank >= 0 && !card_.south.empty()) {
    ctx.isend(card_.south_rank, rt::make_tag(rt::Phase::kVerticalForward, stage),
              pack_region(buf, card_.south));
  }

  // Vertical backward: the southern tile's accumulated buffer replaces
  // ours over the overlap, then we forward our (now complete) buffer
  // north (Fig. 4(b)).
  if (card_.south_rank >= 0 && !card_.south.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.south_rank, rt::make_tag(rt::Phase::kVerticalBackward, stage));
    unpack_replace_region(payload, buf, card_.south);
  }
  if (card_.north_rank >= 0 && !card_.north.empty()) {
    ctx.isend(card_.north_rank, rt::make_tag(rt::Phase::kVerticalBackward, stage),
              pack_region(buf, card_.north));
  }

  // Horizontal forward (Fig. 4(c)). Note the cross-direction pipelining of
  // Sec. V: once this rank has posted its vertical-backward send it enters
  // the horizontal chain immediately — ranks in other rows may still be in
  // the vertical passes.
  if (card_.west_rank >= 0 && !card_.west.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.west_rank, rt::make_tag(rt::Phase::kHorizontalForward, stage));
    unpack_add_region(payload, buf, card_.west);
  }
  if (card_.east_rank >= 0 && !card_.east.empty()) {
    ctx.isend(card_.east_rank, rt::make_tag(rt::Phase::kHorizontalForward, stage),
              pack_region(buf, card_.east));
  }

  // Horizontal backward (Fig. 4(d)).
  if (card_.east_rank >= 0 && !card_.east.empty()) {
    std::vector<cplx> payload =
        ctx.recv(card_.east_rank, rt::make_tag(rt::Phase::kHorizontalBackward, stage));
    unpack_replace_region(payload, buf, card_.east);
  }
  if (card_.west_rank >= 0 && !card_.west.empty()) {
    ctx.isend(card_.west_rank, rt::make_tag(rt::Phase::kHorizontalBackward, stage),
              pack_region(buf, card_.west));
  }
}

void PassEngine::run_direct(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = direct_counter_++;
  // Post all sends first (eager fabric: cannot deadlock), then accumulate
  // every neighbour's contribution.
  for (const auto& [nb, overlap] : neighbor8_) {
    ctx.isend(nb, rt::make_tag(rt::Phase::kDirect, stage), pack_region(buf, overlap));
  }
  for (const auto& [nb, overlap] : neighbor8_) {
    std::vector<cplx> payload = ctx.recv(nb, rt::make_tag(rt::Phase::kDirect, stage));
    unpack_add_region(payload, buf, overlap);
  }
}

void PassEngine::run_allreduce(rt::RankContext& ctx, FramedVolume& buf) {
  const std::int64_t stage = allreduce_counter_++;
  const Rect field = partition_.field();
  const index_t slices = buf.slices();

  // Scatter the local buffer into a full-field dense vector.
  std::vector<cplx> dense(
      static_cast<usize>(field.area() * slices), cplx{});
  const Rect ext = buf.frame;
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < ext.h; ++y) {
      const index_t gy = ext.y0 + y - field.y0;
      const usize base = static_cast<usize>((s * field.h + gy) * field.w);
      for (index_t x = 0; x < ext.w; ++x) {
        const index_t gx = ext.x0 + x - field.x0;
        dense[base + static_cast<usize>(gx)] = buf.data(s, y, x);
      }
    }
  }
  rt::allreduce_sum(ctx, dense, rt::Phase::kAllreduce, stage);
  // Gather back: replace the local buffer with the exact global sum.
  for (index_t s = 0; s < slices; ++s) {
    for (index_t y = 0; y < ext.h; ++y) {
      const index_t gy = ext.y0 + y - field.y0;
      const usize base = static_cast<usize>((s * field.h + gy) * field.w);
      for (index_t x = 0; x < ext.w; ++x) {
        const index_t gx = ext.x0 + x - field.x0;
        buf.data(s, y, x) = dense[base + static_cast<usize>(gx)];
      }
    }
  }
}

// ---- pipeline passes --------------------------------------------------------

SweepPass::SweepPass(const GradientEngine& engine, UpdateMode mode, int threads,
                     SweepSchedule schedule, Items items, RefineSchedule refine,
                     PrecisionPolicy precision)
    : engine_(engine), mode_(mode), items_(items), refine_(refine), precision_(precision) {
  // Compact measurement frames are indexed by ITEM, so they are only built
  // when item order and frame order coincide: an explicit per-item frame
  // list, or the identity mapping over the dataset. (No current solver
  // remaps ids while reading the shared dataset frames.)
  const bool can_compact = precision_.storage != compact::Format::kNone &&
                           (items_.measurements != nullptr || items_.ids == nullptr);
  if (can_compact) {
    const std::vector<RArray2D>& frames = items_.measurements != nullptr
                                              ? *items_.measurements
                                              : engine_.dataset().measurements;
    compact_meas_.emplace(frames, precision_.storage);
  }
  if (mode_ == UpdateMode::kFullBatch) {
    pool_.emplace(threads);
    scheduler_ = make_sweep_scheduler(schedule, *pool_);
    sweeper_.emplace(engine_, *scheduler_, precision_.storage);
    if (compact_meas_) sweeper_->set_compact_measurements(&*compact_meas_);
  } else {
    // SGD sweeps only ever mutate the volume through apply_gradient, so
    // the transmittance cache contract holds.
    workspace_.emplace(engine_.make_workspace(precision_.storage));
    workspace_->cache_transmittance = true;
    const auto n = static_cast<index_t>(engine_.dataset().spec.grid.probe_n);
    grad_scratch_.emplace(engine_.dataset().spec.slices, Rect{0, 0, n, n});
    if (compact_meas_) {
      workspace_->meas_scratch = RArray2D(compact_meas_->rows(), compact_meas_->cols());
    }
  }
}

void SweepPass::on_chunk(SolverState& state, const StepPoint& point) {
  // Phase accounting (kCompute) comes from the pipeline's SpanScope around
  // this hook — see Pass::phase().
  const bool refine_now = refine_.due(point.iteration);
  if (mode_ == UpdateMode::kFullBatch) {
    View2D<cplx> pg_view = state.probe_grad_field->view();
    sweeper_->sweep(
        point.begin, point.end, *state.probe, *state.volume, *state.accbuf, state.sweep_cost,
        refine_now ? &pg_view : nullptr, [this](index_t item) { return probe_id(item); },
        [this](index_t item) { return measurement(item); });
  } else {
    if (point.end > point.begin && obs::metrics_enabled()) {
      // Full-batch sweeps are counted inside BatchSweeper.
      static obs::Counter& probes = obs::registry().counter("sweep_probes_total");
      probes.add(static_cast<std::uint64_t>(point.end - point.begin));
    }
    for (index_t i = point.begin; i < point.end; ++i) {
      const index_t id = probe_id(i);
      grad_scratch_->frame = engine_.window(id);
      grad_scratch_->data.fill(cplx{});
      View2D<cplx> pg_view = state.probe_grad_field->view();
      View2D<const real> meas;
      if (compact_meas_) {
        compact_meas_->decode_into(static_cast<usize>(i), workspace_->meas_scratch.view());
        meas = workspace_->meas_scratch.view();
      } else {
        meas = measurement(i);
      }
      state.sweep_cost += engine_.probe_gradient_joint(
          id, *state.probe, meas, *state.volume, *grad_scratch_, *workspace_,
          refine_now ? &pg_view : nullptr);
      state.accbuf->accumulate(*grad_scratch_, grad_scratch_->frame);
      apply_gradient(*state.volume, *grad_scratch_, grad_scratch_->frame, state.step);
    }
  }
}

void SyncGradientsPass::on_chunk(SolverState& state, const StepPoint& point) {
  if (mode_ == UpdateMode::kSgd) {
    // Undo the chunk's local updates now, while AccBuf still holds exactly
    // the own contributions (no extra buffer needed); the post-sync apply
    // then installs the full total once.
    obs::SpanScope undo("sgd-undo", obs::Phase::kUpdate, point.iteration, point.chunk);
    apply_gradient(*state.volume, state.accbuf->volume(), state.accbuf->frame(), -state.step);
  }
  sync_.synchronize(*state.ctx, state.accbuf->volume());
}

void ApplyUpdatePass::on_chunk(SolverState& state, const StepPoint& point) {
  (void)point;
  // kUpdate accounting comes from the pipeline's SpanScope (Pass::phase()).
  if (mode_ == UpdateMode::kFullBatch || apply_in_sgd_) {
    apply_gradient(*state.volume, state.accbuf->volume(), state.accbuf->frame(), state.step);
  }
  state.accbuf->reset();
}

void FaultPointPass::on_chunk(SolverState& state, const StepPoint& point) {
  state.ctx->fault_point(static_cast<std::uint64_t>(point.iteration) *
                             static_cast<std::uint64_t>(point.chunks) +
                         static_cast<std::uint64_t>(point.chunk) + 1);
}

void ProbeRefinePass::on_iteration(SolverState& state, int iteration) {
  if (!refine_.due(iteration)) return;
  CArray2D& grad = *state.probe_grad_field;
  if (state.ctx != nullptr) {
    // The probe is global: sum gradient contributions across ranks and
    // apply the identical update everywhere.
    std::vector<cplx> flat(static_cast<usize>(grad.size()));
    std::copy_n(grad.data(), grad.size(), flat.data());
    rt::allreduce_sum(*state.ctx, flat, rt::Phase::kProbe);
    std::copy_n(flat.data(), grad.size(), grad.data());
  }
  const real probe_step =
      probe_step_ / static_cast<real>(std::max<index_t>(1, probe_count_));
  axpy(cplx(-probe_step, 0), grad.view(), state.probe->mutable_field().view());
  const double energy = state.probe->total_intensity();
  if (energy > 0.0) {
    scale(cplx(static_cast<real>(std::sqrt(initial_energy_ / energy)), 0),
          state.probe->mutable_field().view());
  }
  grad.fill(cplx{});
}

void CostRecordPass::on_iteration(SolverState& state, int iteration) {
  (void)iteration;
  if (!record_) return;
  if (state.ctx != nullptr) {
    const double global_cost =
        rt::allreduce_sum_scalar(*state.ctx, state.sweep_cost, rt::Phase::kCost);
    if (state.ctx->rank() != 0) return;
    std::lock_guard<std::mutex> lock(*state.cost_mutex);
    state.cost->record(global_cost);
    return;
  }
  state.cost->record(state.sweep_cost);
}

void ProgressPass::on_iteration(SolverState& state, int iteration) {
  if (every_ <= 0) return;
  if (state.ctx != nullptr && state.ctx->rank() != 0) return;
  ++iterations_since_last_;
  if ((iteration + 1) % every_ != 0) return;
  // Latest recorded global cost when available (CostRecordPass runs
  // earlier in the list), else this rank's running sweep cost.
  double cost = state.sweep_cost;
  bool have_cost = false;
  if (state.cost != nullptr) {
    std::unique_lock<std::mutex> lock;
    if (state.cost_mutex != nullptr) lock = std::unique_lock<std::mutex>(*state.cost_mutex);
    if (!state.cost->values().empty()) {
      cost = state.cost->last();
      have_cost = true;
    }
  }
  const double elapsed = since_last_.seconds();
  const double rate = elapsed > 0.0
                          ? static_cast<double>(probes_) * iterations_since_last_ / elapsed
                          : 0.0;
  log::info() << "iteration " << (iteration + 1) << "/" << total_ << "  cost "
              << (have_cost ? "" : "~") << cost << "  " << rate << " probes/s";
  since_last_.reset();
  iterations_since_last_ = 0;
}

void CheckpointPass::on_chunk(SolverState& state, const StepPoint& point) {
  // Mid-iteration boundary only; the iteration hook takes the last one
  // (after the cost record, so the manifest carries the full
  // completed-iteration history).
  if (point.chunk + 1 < point.chunks) {
    maybe_write(state, point.iteration, point.chunk + 1, state.sweep_cost);
  }
}

void CheckpointPass::on_iteration(SolverState& state, int iteration) {
  maybe_write(state, iteration + 1, 0, 0.0);
}

PassAccess CheckpointPass::access_if_due(int next_iteration, int next_chunk) const {
  const std::uint64_t step_count =
      ckpt::chunk_step(next_iteration, next_chunk, run_.chunks_per_iteration);
  if (!ckpt::snapshot_due(policy_, step_count)) return {};
  PassAccess a;
  a.read(Resource::kVolume)
      .read(Resource::kProbe)
      .read(Resource::kProbeGrad)
      .read(Resource::kAccBuf)
      .read(Resource::kCost)
      .write(Resource::kCheckpointDir);
  if (!deferred_) a.write(Resource::kFabric);
  return a;
}

void CheckpointPass::maybe_write(SolverState& state, int next_iteration, int next_chunk,
                                 double partial_cost) {
  // `next_iteration`/`next_chunk` name the position a restored run would
  // resume at; the global step counter (completed chunks) keys the
  // snapshot dir.
  const std::uint64_t step_count =
      ckpt::chunk_step(next_iteration, next_chunk, run_.chunks_per_iteration);
  if (!ckpt::snapshot_due(policy_, step_count)) return;
  obs::SpanScope ckpt_span("snapshot-write", obs::Phase::kCheckpoint, next_iteration,
                           next_chunk);
  const std::string dir = ckpt::step_dir(policy_.directory, step_count);
  const int rank = state.ctx != nullptr ? state.ctx->rank() : 0;
  if (deferred_) {
    // Fabric-free half only; runs on the background slot. Every rank
    // creates the directory itself (idempotent) instead of waiting on a
    // rank-0 barrier.
    std::filesystem::create_directories(dir);
  } else {
    if (rank == 0) std::filesystem::create_directories(dir);
    if (state.ctx != nullptr) state.ctx->barrier();
  }
  const std::uint64_t shard_bytes = ckpt::write_shard(
      dir, ckpt::ShardView{rank, partial_cost,
                           state.ctx != nullptr ? state.ctx->rng().state() : RngState{},
                           state.volume, &state.accbuf->volume(), &state.probe->field(),
                           state.probe_grad_field});
  {
    static obs::Counter& shards = obs::registry().counter("checkpoint_shards_total");
    static obs::Counter& bytes = obs::registry().counter("checkpoint_shard_bytes_total");
    shards.add(1);
    bytes.add(shard_bytes);
  }
  if (deferred_) {
    PendingSnapshot job;
    job.dir = dir;
    job.next_iteration = next_iteration;
    job.next_chunk = next_chunk;
    if (rank == 0) {
      // The cost history is captured here — the executor's kCost hazard
      // guarantees no later cost-record ran yet, so the values match what
      // the inline protocol would have written.
      std::unique_lock<std::mutex> lock;
      if (state.cost_mutex != nullptr) lock = std::unique_lock<std::mutex>(*state.cost_mutex);
      job.cost_values = state.cost->values();
    }
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(std::move(job));
    return;
  }
  if (state.ctx != nullptr) state.ctx->barrier();
  // Written last (by rank 0): marks the snapshot complete.
  if (rank != 0) return;
  std::vector<double> cost_values;
  {
    std::unique_lock<std::mutex> lock;
    if (state.cost_mutex != nullptr) lock = std::unique_lock<std::mutex>(*state.cost_mutex);
    cost_values = state.cost->values();
  }
  write_manifest_completion(dir, next_iteration, next_chunk, std::move(cost_values));
}

void CheckpointPass::write_manifest_completion(const std::string& dir, int next_iteration,
                                               int next_chunk,
                                               std::vector<double> cost_values) {
  WallTimer manifest_timer;
  ckpt::write_manifest(
      dir, ckpt::make_manifest(run_, next_iteration, next_chunk, std::move(cost_values)));
  static obs::Counter& snapshots = obs::registry().counter("checkpoint_snapshots_total");
  snapshots.add(1);
  static obs::Histogram& manifest_seconds =
      obs::registry().histogram("checkpoint_manifest_seconds");
  manifest_seconds.observe(manifest_timer.seconds());
}

void CheckpointPass::finalize_pending(SolverState& state) {
  std::vector<PendingSnapshot> jobs;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    jobs.swap(pending_);
  }
  for (PendingSnapshot& job : jobs) {
    obs::SpanScope span("snapshot-finalize", obs::Phase::kCheckpoint, job.next_iteration,
                        job.next_chunk);
    // All ranks hold the same pending set here (the executor fenced on the
    // shard write before this hook ran), so the barrier counts match.
    if (state.ctx != nullptr) state.ctx->barrier();
    const int rank = state.ctx != nullptr ? state.ctx->rank() : 0;
    if (rank == 0) {
      write_manifest_completion(job.dir, job.next_iteration, job.next_chunk,
                                std::move(job.cost_values));
    }
  }
}

HveLocalSweepPass::HveLocalSweepPass(const GradientEngine& engine,
                                     const std::vector<index_t>& probes,
                                     const std::vector<RArray2D>& measurements,
                                     usize own_count, int epochs, UpdateMode mode,
                                     int threads, SweepSchedule schedule,
                                     PrecisionPolicy precision)
    : engine_(engine),
      probes_(probes),
      measurements_(measurements),
      own_count_(own_count),
      epochs_(epochs),
      mode_(mode) {
  if (mode_ == UpdateMode::kFullBatch) {
    pool_.emplace(threads);
    scheduler_ = make_sweep_scheduler(schedule, *pool_);
    sweeper_.emplace(engine_, *scheduler_, precision.storage);
    if (precision.storage != compact::Format::kNone && !measurements_.empty()) {
      compact_meas_.emplace(measurements_, precision.storage);
      sweeper_->set_compact_measurements(&*compact_meas_);
    }
  } else {
    workspace_.emplace(engine.make_workspace());
    const auto n = static_cast<index_t>(engine.dataset().spec.grid.probe_n);
    grad_scratch_.emplace(engine.dataset().spec.slices, Rect{0, 0, n, n});
  }
}

void HveLocalSweepPass::on_chunk(SolverState& state, const StepPoint& point) {
  (void)point;
  // kCompute accounting comes from the pipeline's SpanScope (Pass::phase()).
  if (obs::metrics_enabled() && !probes_.empty() && mode_ == UpdateMode::kSgd) {
    // Full-batch sweeps are counted inside BatchSweeper.
    static obs::Counter& probes = obs::registry().counter("sweep_probes_total");
    probes.add(static_cast<std::uint64_t>(probes_.size()) *
               static_cast<std::uint64_t>(std::max(1, epochs_)));
  }
  if (mode_ == UpdateMode::kFullBatch) {
    if (!accbuf_ && !probes_.empty()) {
      // Sized off the tile's extended window, allocated on the rank lane
      // so per-rank memory tracking charges it correctly.
      accbuf_.emplace(state.volume->slices(), state.volume->frame);
    }
    const auto n = static_cast<index_t>(probes_.size());
    const auto own = static_cast<index_t>(own_count_);
    const Probe& probe = engine_.dataset().probe;
    const auto id_of = [this](index_t item) { return probes_[static_cast<usize>(item)]; };
    const auto meas_of = [this](index_t item) {
      return measurements_[static_cast<usize>(item)].view();
    };
    for (int epoch = 0; epoch < epochs_; ++epoch) {
      if (n == 0) break;
      // Owned probes count toward the recorded cost on the first epoch
      // only; replicated probes' costs are always discarded (their owners
      // count them).
      double discarded = 0.0;
      double& own_cost = epoch == 0 ? state.sweep_cost : discarded;
      if (own > 0) {
        sweeper_->sweep(0, own, probe, *state.volume, *accbuf_, own_cost, nullptr, id_of,
                        meas_of);
      }
      if (own < n) {
        sweeper_->sweep(own, n, probe, *state.volume, *accbuf_, discarded, nullptr, id_of,
                        meas_of);
      }
      apply_gradient(*state.volume, accbuf_->volume(), accbuf_->frame(), state.step);
      accbuf_->reset();
    }
    return;
  }
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    for (usize p = 0; p < probes_.size(); ++p) {
      const index_t id = probes_[p];
      grad_scratch_->frame = engine_.window(id);
      grad_scratch_->data.fill(cplx{});
      const double f = engine_.probe_gradient_with(id, measurements_[p].view(), *state.volume,
                                                   *grad_scratch_, *workspace_);
      // Count the cost of *owned* probes only so the recorded global cost
      // sums each f_i exactly once.
      if (p < own_count_ && epoch == 0) state.sweep_cost += f;
      apply_gradient(*state.volume, *grad_scratch_, grad_scratch_->frame, state.step);
    }
  }
}

void HaloPastePass::on_chunk(SolverState& state, const StepPoint& point) {
  (void)point;
  rt::RankContext& ctx = *state.ctx;
  ctx.barrier();
  const std::int64_t stage = round_++;
  for (const PasteEdge& edge : pastes_) {
    if (edge.src == ctx.rank()) {
      ctx.isend(edge.dst, rt::make_tag(rt::Phase::kPaste, stage),
                pack_region(*state.volume, edge.region));
    }
  }
  for (const PasteEdge& edge : pastes_) {
    if (edge.dst == ctx.rank()) {
      std::vector<cplx> payload = ctx.recv(edge.src, rt::make_tag(rt::Phase::kPaste, stage));
      unpack_replace_region(payload, *state.volume, edge.region);
    }
  }
}

}  // namespace ptycho
