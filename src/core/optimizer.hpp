// Gradient-descent update rules shared by all solvers.
#pragma once

#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

/// How tiles incorporate gradients (Alg. 1 variants; see DESIGN.md Sec. 5).
enum class UpdateMode {
  /// The paper's Alg. 1: immediate per-probe SGD updates (step 8) plus the
  /// delayed accumulated-gradient update after each pass (steps 14-15).
  kSgd,
  /// Full-batch: gradients only accumulate during a sweep; the single
  /// update per pass uses the exact total gradient. In this mode the
  /// decomposed solver is bit-equivalent (up to fp reassociation) to the
  /// serial solver — the central correctness property.
  kFullBatch,
};

[[nodiscard]] const char* to_string(UpdateMode mode);

/// V[region] -= step * grad[region] (per slice; frames must contain region).
void apply_gradient(FramedVolume& volume, const FramedVolume& grad, const Rect& region,
                    real step);

}  // namespace ptycho
