// Halo Voxel Exchange baseline (paper Sec. II-C; refs [7,8,9]).
//
// Each rank's tile is extended with large halos covering its own probes
// *plus* `extra_rings` rings of neighbouring probe locations, whose
// measurements are replicated locally (redundant memory + compute). Tiles
// update embarrassingly parallel; after each sweep every rank pastes its
// *owned* voxels into the halos of every overlapping neighbour through
// synchronous point-to-point copies. The pastes are what create the seam
// artifacts measured in the Fig. 8 experiment.
#pragma once

#include "core/gradient_decomposition.hpp"

namespace ptycho {

struct HveConfig {
  int nranks = 4;
  int mesh_rows = 0;  ///< 0 = choose automatically
  int mesh_cols = 0;
  int iterations = 10;
  real step = real(0.1);
  /// Local SGD sweeps between paste rounds.
  int local_epochs = 1;
  /// Local update rule: kSgd is the historical per-probe immediate-update
  /// loop; kFullBatch accumulates each epoch's gradients through the
  /// multi-threaded BatchSweeper and applies once per epoch (a batched
  /// variant of the local algorithm — results differ from SGD, as they do
  /// for the other solvers' mode knob).
  UpdateMode mode = UpdateMode::kSgd;
  /// Execution knobs (threads per rank, scheduler, pipeline mode,
  /// transport) — shared across every solver config (see ExecOptions).
  /// HVE takes no checkpoints, so exec.checkpoint is ignored; async
  /// pipeline mode changes nothing but exercises the same executor.
  ExecOptions exec;
  /// Rings of replicated neighbour probes ("two extra rows", Sec. VI-A).
  int extra_rings = 2;
  bool record_cost = true;
};

/// Throws ptycho::Error if the partition violates the paste-feasibility
/// constraint (tiles smaller than halos — the "NA" cells of Table II).
[[nodiscard]] ParallelResult reconstruct_hve(const Dataset& dataset, const HveConfig& config,
                                             const FramedVolume* initial = nullptr);

[[nodiscard]] Partition make_hve_partition(const Dataset& dataset, const HveConfig& config);

/// Check without running: can HVE run at this configuration?
[[nodiscard]] bool hve_feasible(const Dataset& dataset, const HveConfig& config);

}  // namespace ptycho
