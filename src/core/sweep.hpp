// BatchSweeper: the multi-threaded batched gradient sweep shared by the
// serial and gradient-decomposition solvers.
//
// Probe positions are evaluated in parallel in fixed batches of kBatch
// items; each item writes into its own (item-indexed, not thread-indexed)
// gradient buffer, and the batch is then merged into the accumulation
// buffer in ascending item order. Because the batch structure and the
// merge order depend only on the item range — never on the scheduler's
// thread count or which slot evaluated an item — a full-batch sweep is
// bitwise identical for any --threads value and any SweepScheduler, and
// bitwise identical to the historical sequential loop.
//
// The scheduler decides only WHICH slot computes an item (and therefore
// which pooled workspace it scratches in); workspaces are pure scratch,
// so per-item results are slot-independent. Per-item callbacks cross the
// hot path as non-allocating function_refs.
//
// SGD mode is NOT routed through this class: its per-probe update feeds
// probe i+1's forward model from probe i's descent step, an inherently
// sequential dependency. The solvers keep SGD on the sequential path (see
// SerialConfig::threads).
#pragma once

#include <vector>

#include "common/function_ref.hpp"
#include "common/parallel.hpp"
#include "core/accbuf.hpp"
#include "core/gradient_engine.hpp"

namespace ptycho {

class BatchSweeper {
 public:
  /// Items evaluated concurrently per merge round. Fixed (independent of
  /// the thread count) — load-balance knob AND determinism requirement.
  static constexpr index_t kBatch = 16;

  /// Maps a sweep item index to the dataset probe id it evaluates.
  using ProbeIdFn = function_ref<index_t(index_t item)>;
  /// Maps a sweep item index to its measured magnitudes.
  using MeasurementFn = function_ref<View2D<const real>(index_t item)>;

  /// Allocates one workspace per scheduler slot and kBatch item-gradient
  /// buffers up front (on the calling thread, so per-rank memory tracking
  /// sees them); sweeps reuse them. `compact_trans` (fast tier only) makes
  /// the pooled transmittance caches persist their planes in 16-bit form.
  BatchSweeper(const GradientEngine& engine, SweepScheduler& scheduler,
               compact::Format compact_trans = compact::Format::kNone);

  /// Fast-tier measurement source: when set, items are read by decoding
  /// frame `item` of `frames` into per-slot scratch instead of calling
  /// `measurement_of` — frames must be indexed exactly like the
  /// measurement callback. Pass nullptr to restore the callback path. The
  /// stack must outlive every subsequent sweep() call.
  void set_compact_measurements(const compact::FrameStack* frames);

  /// Evaluate items [begin, end): per-item object gradients are merged
  /// into `accbuf` in item order, per-item probe gradients (when
  /// `probe_grad` is non-null) are added into it in item order, and the
  /// per-item costs are accumulated onto `cost` in item order — folding
  /// onto the caller's running value keeps the fp association identical to
  /// the historical per-probe loop across chunk boundaries too. The
  /// callbacks are only invoked during the call (function_ref lifetime
  /// contract).
  void sweep(index_t begin, index_t end, const Probe& probe, const FramedVolume& volume,
             AccumulationBuffer& accbuf, double& cost, View2D<cplx>* probe_grad,
             ProbeIdFn probe_id_of, MeasurementFn measurement_of);

 private:
  const GradientEngine& engine_;
  SweepScheduler& scheduler_;
  WorkspacePool workspaces_;             ///< one per scheduler slot
  std::vector<FramedVolume> item_grad_;  ///< kBatch window gradients
  std::vector<CArray2D> item_probe_grad_;  ///< kBatch probe gradients
  std::vector<double> item_cost_;
  const compact::FrameStack* compact_meas_ = nullptr;  ///< fast tier only
};

}  // namespace ptycho
