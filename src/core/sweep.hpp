// BatchSweeper: the multi-threaded batched gradient sweep shared by the
// serial and gradient-decomposition solvers.
//
// Probe positions are evaluated in parallel in fixed batches of kBatch
// items; each item writes into its own (item-indexed, not thread-indexed)
// gradient buffer, and the batch is then merged into the accumulation
// buffer in ascending item order. Because the batch structure and the
// merge order depend only on the item range — never on the pool's thread
// count — a full-batch sweep is bitwise identical for any --threads value,
// and bitwise identical to the historical sequential loop.
//
// SGD mode is NOT routed through this class: its per-probe update feeds
// probe i+1's forward model from probe i's descent step, an inherently
// sequential dependency. The solvers keep SGD on the sequential path (see
// SerialConfig::threads).
#pragma once

#include <functional>
#include <vector>

#include "common/parallel.hpp"
#include "core/accbuf.hpp"
#include "core/gradient_engine.hpp"

namespace ptycho {

class BatchSweeper {
 public:
  /// Items evaluated concurrently per merge round. Fixed (independent of
  /// the thread count) — load-balance knob AND determinism requirement.
  static constexpr index_t kBatch = 16;

  /// Maps a sweep item index to the dataset probe id it evaluates.
  using ProbeIdFn = std::function<index_t(index_t item)>;
  /// Maps a sweep item index to its measured magnitudes.
  using MeasurementFn = std::function<View2D<const real>(index_t item)>;

  /// Allocates one workspace per pool slot and kBatch item-gradient
  /// buffers up front (on the calling thread, so per-rank memory tracking
  /// sees them); sweeps reuse them.
  BatchSweeper(const GradientEngine& engine, ThreadPool& pool);

  /// Evaluate items [begin, end): per-item object gradients are merged
  /// into `accbuf` in item order, per-item probe gradients (when
  /// `probe_grad` is non-null) are added into it in item order, and the
  /// per-item costs are accumulated onto `cost` in item order — folding
  /// onto the caller's running value keeps the fp association identical to
  /// the historical per-probe loop across chunk boundaries too.
  void sweep(index_t begin, index_t end, const Probe& probe, const FramedVolume& volume,
             AccumulationBuffer& accbuf, double& cost, View2D<cplx>* probe_grad,
             const ProbeIdFn& probe_id_of, const MeasurementFn& measurement_of);

 private:
  const GradientEngine& engine_;
  ThreadPool& pool_;
  std::vector<MultisliceWorkspace> workspaces_;  ///< one per pool slot
  std::vector<FramedVolume> item_grad_;          ///< kBatch window gradients
  std::vector<CArray2D> item_probe_grad_;        ///< kBatch probe gradients
  std::vector<double> item_cost_;
};

}  // namespace ptycho
