#include "core/accbuf.hpp"

// Header-only; TU anchors the module.

namespace ptycho {}
