#include "core/halo_voxel_exchange.hpp"

#include <algorithm>
#include <mutex>

#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "core/stitcher.hpp"
#include "partition/assignment.hpp"
#include "partition/overlap.hpp"

namespace ptycho {

namespace {

rt::Mesh2D resolve_mesh(const Dataset& dataset, int nranks, int mesh_rows, int mesh_cols) {
  if (mesh_rows > 0 && mesh_cols > 0) {
    PTYCHO_REQUIRE(mesh_rows * mesh_cols == nranks,
                   "mesh_rows*mesh_cols must equal nranks");
    return rt::Mesh2D(mesh_rows, mesh_cols);
  }
  const Rect field = dataset.field();
  const double aspect = static_cast<double>(field.h) / static_cast<double>(field.w);
  return rt::choose_mesh(nranks, aspect);
}

rt::BreakdownEntry breakdown_from(const PhaseProfiler& prof) {
  rt::BreakdownEntry e;
  e.compute = prof.total(phase::kCompute) + prof.total(phase::kUpdate);
  e.wait = prof.total(phase::kWait);
  e.comm = prof.total(phase::kComm);
  return e;
}

}  // namespace

Partition make_hve_partition(const Dataset& dataset, const HveConfig& config) {
  PartitionConfig pc;
  pc.mesh = resolve_mesh(dataset, config.nranks, config.mesh_rows, config.mesh_cols);
  pc.strategy = Strategy::kHaloVoxelExchange;
  pc.hve_extra_rings = config.extra_rings;
  return Partition(dataset.scan, pc);
}

bool hve_feasible(const Dataset& dataset, const HveConfig& config) {
  return make_hve_partition(dataset, config).hve_paste_feasible();
}

ParallelResult reconstruct_hve(const Dataset& dataset, const HveConfig& config,
                               const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.nranks >= 1, "need at least one rank");
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.local_epochs >= 1, "local_epochs must be >= 1");
  WallTimer timer;

  const Partition partition = make_hve_partition(dataset, config);
  validate_partition(partition, dataset.scan);
  PTYCHO_CHECK(partition.hve_paste_feasible(),
               "Halo Voxel Exchange infeasible: tiles are smaller than their halos "
               "(the paper's 'NA' regime) — use fewer ranks or Gradient Decomposition");

  const index_t slices = dataset.spec.slices;
  const std::vector<PasteEdge> pastes = paste_schedule(partition);

  rt::ClusterSpec cluster_spec;
  cluster_spec.nranks = partition.nranks();
  cluster_spec.transport = config.exec.transport;
  rt::VirtualCluster cluster(cluster_spec);
  ParallelResult result;
  std::mutex result_mutex;

  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());

    // Assigned probes: own + replicated, all with locally replicated
    // measurements (the redundancy the paper criticizes).
    std::vector<index_t> probes = tile.own_probes;
    probes.insert(probes.end(), tile.replicated_probes.begin(), tile.replicated_probes.end());
    std::vector<RArray2D> local_meas;
    local_meas.reserve(probes.size());
    for (index_t id : probes) {
      local_meas.push_back(dataset.measurements[static_cast<usize>(id)].clone());
    }

    FramedVolume volume(slices, tile.extended);
    if (initial != nullptr) {
      copy_region(*initial, volume, tile.extended);
    } else {
      volume.data.fill(cplx(1, 0));
    }
    GradientEngine engine(dataset);

    // The HVE pass graph: local SGD epochs, synchronous halo pastes, then
    // the per-iteration cost record. Same pipeline as the other solvers —
    // what differs is only which passes are inserted (no gradient sync,
    // no accumulation buffer: updates are immediate and halos are
    // overwritten wholesale).
    const int threads = config.exec.threads != 0
                            ? config.exec.threads
                            : std::max(1, ThreadPool::hardware_threads() / ctx.nranks());
    ReconstructionPipeline pipeline;
    pipeline.emplace<HveLocalSweepPass>(engine, probes, local_meas, tile.own_probes.size(),
                                        config.local_epochs, config.mode, threads,
                                        config.exec.schedule, config.exec.precision);
    pipeline.emplace<HaloPastePass>(pastes);
    pipeline.emplace<CostRecordPass>(config.record_cost);
    if (config.exec.progress_every > 0) {
      pipeline.emplace<ProgressPass>(config.exec.progress_every, dataset.probe_count(),
                                     config.iterations);
    }

    SolverState state;
    state.volume = &volume;
    state.step = config.step * engine.step_scale();
    state.ctx = &ctx;
    state.cost = &result.cost;
    state.cost_mutex = &result_mutex;

    PipelineSchedule schedule;
    schedule.iterations = config.iterations;
    pipeline.run(state, schedule, PipelineOptions{config.exec.pipeline});

    FramedVolume stitched = stitch_on_root(ctx, partition, volume);
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.volume = std::move(stitched);
    }
  });

  result.breakdown.reserve(static_cast<usize>(partition.nranks()));
  for (int r = 0; r < partition.nranks(); ++r) {
    result.breakdown.push_back(breakdown_from(cluster.profiler(r)));
  }
  result.mean_peak_bytes = cluster.mean_peak_bytes();
  result.max_peak_bytes = cluster.max_peak_bytes();
  result.fabric = cluster.fabric_stats();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
