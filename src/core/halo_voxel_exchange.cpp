#include "core/halo_voxel_exchange.hpp"

#include <mutex>

#include "common/timer.hpp"
#include "core/stitcher.hpp"
#include "partition/assignment.hpp"
#include "partition/overlap.hpp"
#include "runtime/collectives.hpp"

namespace ptycho {

namespace {

rt::Mesh2D resolve_mesh(const Dataset& dataset, int nranks, int mesh_rows, int mesh_cols) {
  if (mesh_rows > 0 && mesh_cols > 0) {
    PTYCHO_REQUIRE(mesh_rows * mesh_cols == nranks,
                   "mesh_rows*mesh_cols must equal nranks");
    return rt::Mesh2D(mesh_rows, mesh_cols);
  }
  const Rect field = dataset.field();
  const double aspect = static_cast<double>(field.h) / static_cast<double>(field.w);
  return rt::choose_mesh(nranks, aspect);
}

rt::BreakdownEntry breakdown_from(const PhaseProfiler& prof) {
  rt::BreakdownEntry e;
  e.compute = prof.total(phase::kCompute) + prof.total(phase::kUpdate);
  e.wait = prof.total(phase::kWait);
  e.comm = prof.total(phase::kComm);
  return e;
}

}  // namespace

Partition make_hve_partition(const Dataset& dataset, const HveConfig& config) {
  PartitionConfig pc;
  pc.mesh = resolve_mesh(dataset, config.nranks, config.mesh_rows, config.mesh_cols);
  pc.strategy = Strategy::kHaloVoxelExchange;
  pc.hve_extra_rings = config.extra_rings;
  return Partition(dataset.scan, pc);
}

bool hve_feasible(const Dataset& dataset, const HveConfig& config) {
  return make_hve_partition(dataset, config).hve_paste_feasible();
}

ParallelResult reconstruct_hve(const Dataset& dataset, const HveConfig& config,
                               const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.nranks >= 1, "need at least one rank");
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.local_epochs >= 1, "local_epochs must be >= 1");
  WallTimer timer;

  const Partition partition = make_hve_partition(dataset, config);
  validate_partition(partition, dataset.scan);
  PTYCHO_CHECK(partition.hve_paste_feasible(),
               "Halo Voxel Exchange infeasible: tiles are smaller than their halos "
               "(the paper's 'NA' regime) — use fewer ranks or Gradient Decomposition");

  const index_t slices = dataset.spec.slices;
  const auto n = static_cast<index_t>(dataset.spec.grid.probe_n);
  const std::vector<PasteEdge> pastes = paste_schedule(partition);

  rt::VirtualCluster cluster(partition.nranks());
  ParallelResult result;
  std::mutex result_mutex;

  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());

    // Assigned probes: own + replicated, all with locally replicated
    // measurements (the redundancy the paper criticizes).
    std::vector<index_t> probes = tile.own_probes;
    probes.insert(probes.end(), tile.replicated_probes.begin(), tile.replicated_probes.end());
    std::vector<RArray2D> local_meas;
    local_meas.reserve(probes.size());
    for (index_t id : probes) {
      local_meas.push_back(dataset.measurements[static_cast<usize>(id)].clone());
    }

    FramedVolume volume(slices, tile.extended);
    if (initial != nullptr) {
      copy_region(*initial, volume, tile.extended);
    } else {
      volume.data.fill(cplx(1, 0));
    }
    FramedVolume probe_grad(slices, Rect{0, 0, n, n});
    GradientEngine engine(dataset);
    const real step = config.step * engine.step_scale();
    MultisliceWorkspace ws = engine.make_workspace();

    std::int64_t paste_round = 0;
    for (int iter = 0; iter < config.iterations; ++iter) {
      double sweep_cost = 0.0;
      // Embarrassingly parallel local reconstruction.
      {
        ScopedPhase compute(ctx.profiler(), phase::kCompute);
        for (int epoch = 0; epoch < config.local_epochs; ++epoch) {
          for (usize p = 0; p < probes.size(); ++p) {
            const index_t id = probes[p];
            probe_grad.frame = engine.window(id);
            probe_grad.data.fill(cplx{});
            const double f =
                engine.probe_gradient_with(id, local_meas[p].view(), volume, probe_grad, ws);
            // Count the cost of *owned* probes only so the recorded global
            // cost sums each f_i exactly once.
            if (p < tile.own_probes.size() && epoch == 0) sweep_cost += f;
            apply_gradient(volume, probe_grad, probe_grad.frame, step);
          }
        }
      }

      // Synchronous halo pastes: owned voxels overwrite neighbour halos.
      ctx.barrier();
      const std::int64_t stage = paste_round++;
      for (const PasteEdge& edge : pastes) {
        if (edge.src == ctx.rank()) {
          ctx.isend(edge.dst, rt::make_tag(comm_phase::kPaste, stage),
                    pack_region(volume, edge.region));
        }
      }
      for (const PasteEdge& edge : pastes) {
        if (edge.dst == ctx.rank()) {
          std::vector<cplx> payload =
              ctx.recv(edge.src, rt::make_tag(comm_phase::kPaste, stage));
          unpack_replace_region(payload, volume, edge.region);
        }
      }

      if (config.record_cost) {
        const double global_cost =
            rt::allreduce_sum_scalar(ctx, sweep_cost, comm_phase::kCost);
        if (ctx.rank() == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          result.cost.record(global_cost);
        }
      }
    }

    FramedVolume stitched = stitch_on_root(ctx, partition, volume);
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.volume = std::move(stitched);
    }
  });

  result.breakdown.reserve(static_cast<usize>(partition.nranks()));
  for (int r = 0; r < partition.nranks(); ++r) {
    result.breakdown.push_back(breakdown_from(cluster.profiler(r)));
  }
  result.mean_peak_bytes = cluster.mean_peak_bytes();
  result.max_peak_bytes = cluster.max_peak_bytes();
  result.fabric = cluster.fabric_stats();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
