#include "core/gradient_engine.hpp"

// Header-only (thin wrapper over MultisliceOperator); TU anchors the module.

namespace ptycho {}
