#include "core/cost.hpp"

namespace ptycho {

double total_cost(const GradientEngine& engine, const FramedVolume& volume) {
  MultisliceWorkspace ws = engine.make_workspace();
  double acc = 0.0;
  for (index_t i = 0; i < engine.dataset().probe_count(); ++i) {
    acc += engine.probe_cost(i, volume, ws);
  }
  return acc;
}

double total_cost(const GradientEngine& engine, const FramedVolume& volume,
                  std::span<const index_t> probe_ids) {
  MultisliceWorkspace ws = engine.make_workspace();
  double acc = 0.0;
  for (index_t id : probe_ids) acc += engine.probe_cost(id, volume, ws);
  return acc;
}

}  // namespace ptycho
