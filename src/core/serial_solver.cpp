#include "core/serial_solver.hpp"

#include <cmath>
#include <filesystem>
#include <numeric>
#include <optional>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/accbuf.hpp"
#include "core/sweep.hpp"
#include "data/synthetic.hpp"

namespace ptycho {

SerialResult reconstruct_serial(const Dataset& dataset, const SerialConfig& config,
                                const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.chunks_per_iteration >= 1, "chunks_per_iteration must be >= 1");
  PTYCHO_REQUIRE(initial == nullptr || config.restore == nullptr,
                 "cannot combine a checkpoint restore with an initial guess");
  WallTimer timer;

  const Rect field = dataset.field();
  const index_t slices = dataset.spec.slices;
  const index_t probe_count = dataset.probe_count();
  const int chunks = config.chunks_per_iteration;

  SerialResult result;
  Probe probe = dataset.probe.clone();
  CArray2D probe_grad_field(probe.n(), probe.n());

  // --- restore ---------------------------------------------------------------
  int start_iteration = 0;
  int start_chunk = 0;
  double restored_partial_cost = 0.0;
  if (config.restore != nullptr) {
    const ckpt::Snapshot& snap = *config.restore;
    ckpt::check_compatible(snap, dataset);
    const ckpt::Manifest& m = snap.manifest;
    ckpt::check_same_solver_flags(m, static_cast<int>(config.mode), config.refine_probe);
    start_iteration = m.iteration;
    if (m.nranks == 1 && m.chunks_per_iteration == chunks) {
      // Exact resume: single-rank snapshot with matching chunking restores
      // the full mid-iteration state (volume, probe gradient, sweep cost).
      result.volume = snap.shards[0].volume.clone();
      start_chunk = m.chunk;
      restored_partial_cost = snap.shards[0].partial_cost;
      if (snap.shards[0].probe_grad.rows() == probe_grad_field.rows()) {
        probe_grad_field = snap.shards[0].probe_grad.clone();
      }
    } else {
      ckpt::require_iteration_boundary(m);
      result.volume = ckpt::assemble_volume(snap);
    }
    PTYCHO_CHECK(snap.shards[0].probe.rows() == probe.n(),
                 "snapshot probe size does not match the dataset probe");
    probe = Probe(snap.shards[0].probe.clone());
    result.cost.assign(m.cost_values);
  } else {
    result.volume = initial != nullptr ? initial->clone() : make_vacuum_volume(field, slices);
  }
  PTYCHO_REQUIRE(result.volume.frame.contains(field), "initial guess does not cover the field");

  GradientEngine engine(dataset);
  const real step = config.step * engine.step_scale();
  const double probe_energy = probe.total_intensity();
  AccumulationBuffer accbuf(slices, result.volume.frame);
  const auto n = static_cast<index_t>(dataset.spec.grid.probe_n);

  // Full-batch sweeps run on the pool with an ordered (thread-count-
  // independent) reduction; SGD stays sequential (see SerialConfig) and
  // uses a single workspace plus one window-sized gradient scratch,
  // re-aimed at each probe location. Only the active mode's buffers are
  // allocated.
  std::optional<ThreadPool> pool;
  std::optional<BatchSweeper> sweeper;
  std::optional<MultisliceWorkspace> ws;
  std::optional<FramedVolume> probe_grad;
  if (config.mode == UpdateMode::kFullBatch) {
    pool.emplace(config.threads);
    sweeper.emplace(engine, *pool);
  } else {
    ws.emplace(engine.make_workspace());
    // SGD sweeps only ever mutate the volume through apply_gradient, so
    // the transmittance cache contract holds.
    ws->cache_transmittance = true;
    probe_grad.emplace(slices, Rect{0, 0, n, n});
  }

  // --- periodic checkpointing ------------------------------------------------
  ckpt::RunInfo run;
  run.dataset_name = dataset.spec.name;
  run.probe_count = probe_count;
  run.slices = slices;
  run.chunks_per_iteration = chunks;
  run.nranks = 1;
  run.refine_probe = config.refine_probe;
  run.update_mode = static_cast<int>(config.mode);
  {
    ckpt::TileInfo tile;
    tile.rank = 0;
    tile.owned = field;
    tile.extended = result.volume.frame;
    tile.own_probes.resize(static_cast<usize>(probe_count));
    std::iota(tile.own_probes.begin(), tile.own_probes.end(), index_t{0});
    run.tiles.push_back(std::move(tile));
  }
  // `next_iter`/`next_chunk` name the position a restored run would resume
  // at; the global step counter (completed chunks) keys the snapshot dir.
  const auto maybe_checkpoint = [&](int next_iter, int next_chunk, double partial_cost) {
    const std::uint64_t step_count = ckpt::chunk_step(next_iter, next_chunk, chunks);
    if (!ckpt::snapshot_due(config.checkpoint, step_count)) return;
    const std::string dir = ckpt::step_dir(config.checkpoint.directory, step_count);
    std::filesystem::create_directories(dir);
    ckpt::write_shard(dir, ckpt::ShardView{0, partial_cost, RngState{}, &result.volume,
                                           &accbuf.volume(), &probe.field(),
                                           &probe_grad_field});
    // Written last: marks the snapshot complete.
    ckpt::write_manifest(dir,
                         ckpt::make_manifest(run, next_iter, next_chunk, result.cost.values()));
  };

  for (int iter = start_iteration; iter < config.iterations; ++iter) {
    double sweep_cost = iter == start_iteration ? restored_partial_cost : 0.0;
    const int first_chunk = iter == start_iteration ? start_chunk : 0;
    for (int chunk = first_chunk; chunk < chunks; ++chunk) {
      const index_t begin = probe_count * chunk / chunks;
      const index_t end = probe_count * (chunk + 1) / chunks;
      const bool refine_now = config.refine_probe && iter >= config.probe_warmup_iterations;
      if (config.mode == UpdateMode::kFullBatch) {
        View2D<cplx> probe_grad_view = probe_grad_field.view();
        sweeper->sweep(
            begin, end, probe, result.volume, accbuf, sweep_cost,
            refine_now ? &probe_grad_view : nullptr, [](index_t item) { return item; },
            [&](index_t item) { return dataset.measurements[static_cast<usize>(item)].view(); });
      } else {
        for (index_t i = begin; i < end; ++i) {
          probe_grad->frame = engine.window(i);
          probe_grad->data.fill(cplx{});
          View2D<cplx> probe_grad_view = probe_grad_field.view();
          sweep_cost += engine.probe_gradient_joint(
              i, probe, dataset.measurements[static_cast<usize>(i)].view(), result.volume,
              *probe_grad, *ws, refine_now ? &probe_grad_view : nullptr);
          accbuf.accumulate(*probe_grad, probe_grad->frame);
          apply_gradient(result.volume, *probe_grad, probe_grad->frame, step);
        }
      }
      // Accumulated update (Alg. 1 steps 14-16). In SGD mode every local
      // gradient has already been applied in step 8, and with a single
      // rank there are no neighbour contributions, so the delta is zero —
      // matching the decomposed solver's delta-update semantics (see
      // gradient_decomposition.cpp for the consistency argument).
      if (config.mode == UpdateMode::kFullBatch) {
        apply_gradient(result.volume, accbuf.volume(), accbuf.frame(), step);
      }
      accbuf.reset();
      if (chunk + 1 < chunks) maybe_checkpoint(iter, chunk + 1, sweep_cost);
    }
    if (config.refine_probe && iter >= config.probe_warmup_iterations) {
      // Descend the probe along its accumulated sweep gradient, then
      // restore the total intensity (the object absorbs the scale).
      const real probe_step =
          config.probe_step / static_cast<real>(std::max<index_t>(1, probe_count));
      axpy(cplx(-probe_step, 0), probe_grad_field.view(), probe.mutable_field().view());
      const double energy = probe.total_intensity();
      if (energy > 0.0) {
        scale(cplx(static_cast<real>(std::sqrt(probe_energy / energy)), 0),
              probe.mutable_field().view());
      }
      probe_grad_field.fill(cplx{});
    }
    if (config.record_cost) result.cost.record(sweep_cost);
    maybe_checkpoint(iter + 1, 0, 0.0);
  }

  if (config.refine_probe) result.probe_field = probe.field().clone();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
