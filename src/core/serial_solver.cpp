#include "core/serial_solver.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "core/accbuf.hpp"
#include "data/synthetic.hpp"

namespace ptycho {

SerialResult reconstruct_serial(const Dataset& dataset, const SerialConfig& config,
                                const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.chunks_per_iteration >= 1, "chunks_per_iteration must be >= 1");
  WallTimer timer;

  const Rect field = dataset.field();
  const index_t slices = dataset.spec.slices;

  SerialResult result;
  result.volume = initial != nullptr ? initial->clone() : make_vacuum_volume(field, slices);
  PTYCHO_REQUIRE(result.volume.frame.contains(field), "initial guess does not cover the field");

  GradientEngine engine(dataset);
  const real step = config.step * engine.step_scale();
  MultisliceWorkspace ws = engine.make_workspace();
  Probe probe = dataset.probe.clone();
  const double probe_energy = probe.total_intensity();
  CArray2D probe_grad_field(probe.n(), probe.n());
  AccumulationBuffer accbuf(slices, result.volume.frame);
  // Per-probe gradient scratch: one window-sized framed volume, re-aimed at
  // each probe location.
  const auto n = static_cast<index_t>(dataset.spec.grid.probe_n);
  FramedVolume probe_grad(slices, Rect{0, 0, n, n});

  const index_t probe_count = dataset.probe_count();
  const int chunks = config.chunks_per_iteration;

  for (int iter = 0; iter < config.iterations; ++iter) {
    double sweep_cost = 0.0;
    for (int chunk = 0; chunk < chunks; ++chunk) {
      const index_t begin = probe_count * chunk / chunks;
      const index_t end = probe_count * (chunk + 1) / chunks;
      for (index_t i = begin; i < end; ++i) {
        probe_grad.frame = engine.window(i);
        probe_grad.data.fill(cplx{});
        View2D<cplx> probe_grad_view = probe_grad_field.view();
        const bool refine_now = config.refine_probe && iter >= config.probe_warmup_iterations;
        sweep_cost += engine.probe_gradient_joint(
            i, probe, dataset.measurements[static_cast<usize>(i)].view(), result.volume,
            probe_grad, ws, refine_now ? &probe_grad_view : nullptr);
        accbuf.accumulate(probe_grad, probe_grad.frame);
        if (config.mode == UpdateMode::kSgd) {
          apply_gradient(result.volume, probe_grad, probe_grad.frame, step);
        }
      }
      // Accumulated update (Alg. 1 steps 14-16). In SGD mode every local
      // gradient has already been applied in step 8, and with a single
      // rank there are no neighbour contributions, so the delta is zero —
      // matching the decomposed solver's delta-update semantics (see
      // gradient_decomposition.cpp for the consistency argument).
      if (config.mode == UpdateMode::kFullBatch) {
        apply_gradient(result.volume, accbuf.volume(), accbuf.frame(), step);
      }
      accbuf.reset();
    }
    if (config.refine_probe && iter >= config.probe_warmup_iterations) {
      // Descend the probe along its accumulated sweep gradient, then
      // restore the total intensity (the object absorbs the scale).
      const real probe_step =
          config.probe_step / static_cast<real>(std::max<index_t>(1, probe_count));
      axpy(cplx(-probe_step, 0), probe_grad_field.view(), probe.mutable_field().view());
      const double energy = probe.total_intensity();
      if (energy > 0.0) {
        scale(cplx(static_cast<real>(std::sqrt(probe_energy / energy)), 0),
              probe.mutable_field().view());
      }
      probe_grad_field.fill(cplx{});
    }
    if (config.record_cost) result.cost.record(sweep_cost);
  }

  if (config.refine_probe) result.probe_field = probe.field().clone();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
