#include "core/serial_solver.hpp"

#include <cmath>
#include <memory>
#include <numeric>

#include "common/timer.hpp"
#include "core/accbuf.hpp"
#include "core/passes.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"

namespace ptycho {

SerialResult reconstruct_serial(const Dataset& dataset, const SerialConfig& config,
                                const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.chunks_per_iteration >= 1, "chunks_per_iteration must be >= 1");
  PTYCHO_REQUIRE(initial == nullptr || config.restore == nullptr,
                 "cannot combine a checkpoint restore with an initial guess");
  WallTimer timer;

  const Rect field = dataset.field();
  const index_t slices = dataset.spec.slices;
  const index_t probe_count = dataset.probe_count();
  const int chunks = config.chunks_per_iteration;

  SerialResult result;
  Probe probe = dataset.probe.clone();
  CArray2D probe_grad_field(probe.n(), probe.n());

  // --- restore ---------------------------------------------------------------
  int start_iteration = 0;
  int start_chunk = 0;
  double restored_partial_cost = 0.0;
  if (config.restore != nullptr) {
    const ckpt::Snapshot& snap = *config.restore;
    ckpt::check_compatible(snap, dataset);
    const ckpt::Manifest& m = snap.manifest;
    ckpt::check_same_solver_flags(m, static_cast<int>(config.mode), config.refine_probe);
    start_iteration = m.iteration;
    if (m.nranks == 1 && m.chunks_per_iteration == chunks) {
      // Exact resume: single-rank snapshot with matching chunking restores
      // the full mid-iteration state (volume, probe gradient, sweep cost).
      result.volume = snap.shards[0].volume.clone();
      start_chunk = m.chunk;
      restored_partial_cost = snap.shards[0].partial_cost;
      if (snap.shards[0].probe_grad.rows() == probe_grad_field.rows()) {
        probe_grad_field = snap.shards[0].probe_grad.clone();
      }
    } else {
      ckpt::require_iteration_boundary(m);
      result.volume = ckpt::assemble_volume(snap);
    }
    PTYCHO_CHECK(snap.shards[0].probe.rows() == probe.n(),
                 "snapshot probe size does not match the dataset probe");
    probe = Probe(snap.shards[0].probe.clone());
    result.cost.assign(m.cost_values);
  } else {
    result.volume = initial != nullptr ? initial->clone() : make_vacuum_volume(field, slices);
  }
  PTYCHO_REQUIRE(result.volume.frame.contains(field), "initial guess does not cover the field");

  GradientEngine engine(dataset);
  const real step = config.step * engine.step_scale();
  const double probe_energy = probe.total_intensity();
  AccumulationBuffer accbuf(slices, result.volume.frame);

  // Run-constant manifest fields, shared by every snapshot this run takes.
  ckpt::RunInfo run;
  run.dataset_name = dataset.spec.name;
  run.probe_count = probe_count;
  run.slices = slices;
  run.chunks_per_iteration = chunks;
  run.nranks = 1;
  run.refine_probe = config.refine_probe;
  run.update_mode = static_cast<int>(config.mode);
  {
    ckpt::TileInfo tile;
    tile.rank = 0;
    tile.owned = field;
    tile.extended = result.volume.frame;
    tile.own_probes.resize(static_cast<usize>(probe_count));
    std::iota(tile.own_probes.begin(), tile.own_probes.end(), index_t{0});
    run.tiles.push_back(std::move(tile));
  }

  // Single-rank pass graph: sweep -> update -> probe refinement ->
  // convergence record -> checkpoint. No sync/fault passes — there is no
  // fabric — and the SGD update delta is zero with one rank, so the
  // update pass only applies in full-batch mode. In async mode the
  // checkpoint shard write is deferred to the background slot and a
  // finalize pass completes the manifest on the rank lane.
  const bool async = config.exec.pipeline == PipelineMode::kAsync;
  const RefineSchedule refine{config.refine_probe, config.probe_warmup_iterations};
  ReconstructionPipeline pipeline;
  auto ckpt_pass =
      std::make_unique<CheckpointPass>(config.exec.checkpoint, std::move(run), /*deferred=*/async);
  pipeline.emplace<SweepPass>(engine, config.mode, config.exec.threads, config.exec.schedule,
                              SweepPass::Items{}, refine, config.exec.precision);
  pipeline.emplace<ApplyUpdatePass>(config.mode, /*apply_in_sgd=*/false);
  if (async) pipeline.emplace<CheckpointFinalizePass>(*ckpt_pass);
  pipeline.emplace<ProbeRefinePass>(refine, config.probe_step, probe_count, probe_energy);
  pipeline.emplace<CostRecordPass>(config.record_cost);
  if (config.exec.progress_every > 0) {
    pipeline.emplace<ProgressPass>(config.exec.progress_every, probe_count, config.iterations);
  }
  pipeline.add(std::move(ckpt_pass));

  SolverState state;
  state.volume = &result.volume;
  state.probe = &probe;
  state.accbuf = &accbuf;
  state.probe_grad_field = &probe_grad_field;
  state.step = step;
  state.cost = &result.cost;

  PipelineSchedule schedule;
  schedule.iterations = config.iterations;
  schedule.chunks_per_iteration = chunks;
  schedule.start_iteration = start_iteration;
  schedule.start_chunk = start_chunk;
  schedule.restored_partial_cost = restored_partial_cost;
  schedule.items = probe_count;
  pipeline.run(state, schedule, PipelineOptions{config.exec.pipeline});

  if (config.refine_probe) result.probe_field = probe.field().clone();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
