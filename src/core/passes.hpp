// The pass layer: every stage a ReconstructionPipeline can be built from,
// plus the communication engine the synchronization passes run on.
//
// Layering: PassEngine (bottom of this file) implements the paper's
// forward/backward accumulated-gradient passes over the fabric — raw
// communication schedules. The Pass subclasses above it are pipeline
// stages (core/pipeline.hpp): sweep, gradient synchronization, optimizer
// update, probe refinement, convergence recording, checkpointing, fault
// points and HVE's halo pastes. Solvers compose these into a pass graph
// instead of hand-rolling iteration loops.
//
// The communication schemes (paper Secs. III-V), selectable per run:
//
//  * kSweep (the paper's method, Sec. IV + V): four directional chain
//    passes — vertical forward (each tile *adds* its buffer into the tile
//    below over their overlap), vertical backward (the lower tile's buffer
//    *replaces* the upper's over the overlap), then the same horizontally.
//    Chains in different columns/rows proceed independently and a rank
//    enters the next direction as soon as its own sends are posted — the
//    Asynchronous Pipelining for Parallel Passes falls out of the
//    per-rank dataflow order with eager non-blocking sends (Fig. 5).
//
//  * kDirectNeighbors (Sec. III): pairwise add with the 8-connected
//    neighborhood only. Exact when probes overlap only adjacent tiles;
//    insufficient for high overlap ratios (Fig. 3(d)) — kept as an
//    ablation.
//
//  * run_allreduce: the "natural choice" the paper rejects — a global
//    all-reduce of the full-field gradient. Exact but unscalable; it is
//    the without-APPP baseline of Fig. 7b.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "core/optimizer.hpp"
#include "core/pipeline.hpp"
#include "core/precision.hpp"
#include "core/sweep.hpp"
#include "partition/overlap.hpp"
#include "runtime/cluster.hpp"
#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

enum class PassScheme {
  kSweep,
  kDirectNeighbors,
};

[[nodiscard]] const char* to_string(PassScheme scheme);

class PassEngine {
 public:
  PassEngine(const Partition& partition, int rank);

  /// One bi-directional sweep (vf, vb, hf, hb) over `buf`. All ranks must
  /// call the same number of times (chains match by an internal counter).
  void run_sweep(rt::RankContext& ctx, FramedVolume& buf);

  /// Pairwise 8-neighbour accumulate (Sec. III base scheme).
  void run_direct(rt::RankContext& ctx, FramedVolume& buf);

  /// Global all-reduce of the full-field gradient; buf's extended window
  /// is replaced with the exact global sum.
  void run_allreduce(rt::RankContext& ctx, FramedVolume& buf);

 private:
  const Partition& partition_;
  int rank_;
  CardinalOverlaps card_;
  std::vector<std::pair<int, Rect>> neighbor8_;  ///< (rank, overlap) pairs
  std::int64_t sweep_counter_ = 0;
  std::int64_t direct_counter_ = 0;
  std::int64_t allreduce_counter_ = 0;
};

// Tag phases used by the decomposition layer are the central registry in
// runtime/channel.hpp (rt::Phase) — the scattered comm_phase ints this
// namespace used to define now live there with a uniqueness static_assert.

/// GradientSynchronizer: the policy object that decides *how* a rank's
/// accumulated gradients are reconciled with its neighbours each time
/// Alg. 1 reaches step 9 — the paper's APPP sweep, the Sec. III direct
/// scheme, or the rejected global all-reduce (the without-APPP baseline).
struct SyncPolicy {
  PassScheme scheme = PassScheme::kSweep;
  /// false = replace the pipelined passes with a barrier + global
  /// all-reduce (the "w/o APPP" configuration of Fig. 7b).
  bool appp = true;
};

class GradientSynchronizer {
 public:
  GradientSynchronizer(const Partition& partition, int rank, SyncPolicy policy)
      : engine_(partition, rank), policy_(policy) {}

  /// Reconcile `accbuf` across ranks according to the policy. Collective:
  /// all ranks must call the same number of times.
  void synchronize(rt::RankContext& ctx, FramedVolume& accbuf) {
    if (!policy_.appp) {
      ctx.barrier();
      engine_.run_allreduce(ctx, accbuf);
      return;
    }
    switch (policy_.scheme) {
      case PassScheme::kSweep:
        engine_.run_sweep(ctx, accbuf);
        return;
      case PassScheme::kDirectNeighbors:
        engine_.run_direct(ctx, accbuf);
        return;
    }
  }

  [[nodiscard]] const SyncPolicy& policy() const { return policy_; }

 private:
  PassEngine engine_;
  SyncPolicy policy_;
};

// ---- pipeline passes --------------------------------------------------------

/// When joint object+probe refinement contributes to an iteration.
struct RefineSchedule {
  bool enabled = false;
  int warmup_iterations = 1;

  [[nodiscard]] bool due(int iteration) const {
    return enabled && iteration >= warmup_iterations;
  }
};

/// The gradient sweep of Alg. 1 steps 5-8: evaluates this rank's item
/// range for the chunk. Full-batch mode dispatches through a BatchSweeper
/// on the configured scheduler (accumulate only); SGD mode runs the
/// inherently sequential per-probe loop with immediate local updates.
/// Only the active mode's machinery is allocated (it counts toward the
/// rank's tracked memory footprint).
class SweepPass final : public Pass {
 public:
  /// How sweep items map to dataset probes and measurements. Defaults
  /// (null pointers) mean the identity mapping over the engine's dataset —
  /// the serial solver. Tiled solvers point these at the tile's own-probe
  /// ids and its rank-local measurement copies.
  struct Items {
    const std::vector<index_t>* ids = nullptr;
    const std::vector<RArray2D>* measurements = nullptr;
  };

  /// `threads` is the resolved worker count for the full-batch scheduler
  /// (callers apply their own auto-division policy before constructing).
  /// `precision` (fast tier) selects the FMA kernel column process-wide at
  /// the dispatch layer — here it only controls compact storage: with a
  /// 16-bit format the pass snapshots its measurement frames into a
  /// compact::FrameStack (decoded per item into workspace scratch) and the
  /// pooled transmittance caches persist compactly. Strict default leaves
  /// every byte of the historical path untouched.
  SweepPass(const GradientEngine& engine, UpdateMode mode, int threads,
            SweepSchedule schedule, Items items, RefineSchedule refine,
            PrecisionPolicy precision = {});

  [[nodiscard]] const char* name() const override { return "sweep"; }
  [[nodiscard]] obs::Phase phase() const override { return obs::Phase::kCompute; }
  /// Full-batch: reads V and the probe, writes AccBuf. SGD also descends V
  /// in place. kProbeGrad is written only on refinement iterations, so a
  /// non-refining sweep never fences on a background checkpoint that is
  /// still reading the gradient field.
  [[nodiscard]] PassAccess chunk_access(const StepPoint& point) const override {
    PassAccess a;
    a.read(Resource::kVolume).read(Resource::kProbe).write(Resource::kAccBuf);
    if (mode_ == UpdateMode::kSgd) a.write(Resource::kVolume);
    if (refine_.due(point.iteration)) a.write(Resource::kProbeGrad);
    return a;
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;

 private:
  [[nodiscard]] index_t probe_id(index_t item) const {
    return items_.ids != nullptr ? (*items_.ids)[static_cast<usize>(item)] : item;
  }
  [[nodiscard]] View2D<const real> measurement(index_t item) const {
    return items_.measurements != nullptr
               ? (*items_.measurements)[static_cast<usize>(item)].view()
               : engine_.dataset().measurements[static_cast<usize>(probe_id(item))].view();
  }

  const GradientEngine& engine_;
  UpdateMode mode_;
  Items items_;
  RefineSchedule refine_;
  PrecisionPolicy precision_;
  /// Fast tier: the pass's own compact copy of its measurement frames,
  /// item-indexed exactly like measurement(). Unset on the strict tier (or
  /// when items remap ids over the shared dataset, where item != frame).
  std::optional<compact::FrameStack> compact_meas_;
  // Full-batch machinery (unset in SGD mode).
  std::optional<ThreadPool> pool_;
  std::unique_ptr<SweepScheduler> scheduler_;
  std::optional<BatchSweeper> sweeper_;
  // SGD machinery (unset in full-batch mode).
  std::optional<MultisliceWorkspace> workspace_;
  std::optional<FramedVolume> grad_scratch_;
};

/// Alg. 1 steps 9-13 on the tiled path: reconcile AccBuf across ranks.
/// In SGD mode the chunk's local updates are first undone (while AccBuf
/// still holds exactly the own contributions) so the post-sync apply
/// installs the full total once — the consistency-preserving reading that
/// keeps overlap copies of V identical across ranks (see
/// gradient_decomposition.hpp for the argument).
class SyncGradientsPass final : public Pass {
 public:
  SyncGradientsPass(const Partition& partition, int rank, SyncPolicy policy, UpdateMode mode)
      : sync_(partition, rank, policy), mode_(mode) {}

  [[nodiscard]] const char* name() const override { return "sync"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    PassAccess a;
    a.read(Resource::kAccBuf).write(Resource::kAccBuf).write(Resource::kFabric);
    // SGD first undoes the chunk's local updates on V (see on_chunk).
    if (mode_ == UpdateMode::kSgd) a.read(Resource::kVolume).write(Resource::kVolume);
    return a;
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;

 private:
  GradientSynchronizer sync_;
  UpdateMode mode_;
};

/// Alg. 1 steps 14-16: apply the accumulated (and, tiled, reconciled)
/// gradient, then clear AccBuf. On the single-rank SGD path every local
/// gradient was already applied in step 8 and there are no neighbour
/// contributions, so the delta is zero and the apply is skipped entirely
/// (an undo/redo round-trip would perturb fp state); tiled SGD applies the
/// synchronized delta unconditionally.
class ApplyUpdatePass final : public Pass {
 public:
  ApplyUpdatePass(UpdateMode mode, bool apply_in_sgd)
      : mode_(mode), apply_in_sgd_(apply_in_sgd) {}

  [[nodiscard]] const char* name() const override { return "update"; }
  [[nodiscard]] obs::Phase phase() const override { return obs::Phase::kUpdate; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    PassAccess a;
    a.read(Resource::kAccBuf).write(Resource::kAccBuf);  // apply + reset
    a.read(Resource::kVolume).write(Resource::kVolume);
    return a;
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;

 private:
  UpdateMode mode_;
  bool apply_in_sgd_;
};

/// Recoverable-boundary marker for fault-injection testing: chunk
/// boundaries are exactly where overlap copies of V are consistent again —
/// the only states a snapshot may capture, and the natural place to lose a
/// rank recoverably.
class FaultPointPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "fault-point"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    return PassAccess{}.write(Resource::kFabric);
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;
};

/// Joint probe refinement: once per iteration past the warmup, descend the
/// probe wavefield along its accumulated sweep gradient, then restore the
/// total intensity (the object absorbs the scale). The probe is a *global*
/// quantity, so tiled runs all-reduce the gradient buffers first (one
/// probe_n^2 message — negligible next to the tile passes) and apply the
/// identical update everywhere, keeping probe copies consistent.
class ProbeRefinePass final : public Pass {
 public:
  ProbeRefinePass(RefineSchedule refine, real probe_step, index_t global_probe_count,
                  double initial_probe_energy)
      : refine_(refine),
        probe_step_(probe_step),
        probe_count_(global_probe_count),
        initial_energy_(initial_probe_energy) {}

  [[nodiscard]] const char* name() const override { return "probe-refine"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override { return {}; }
  [[nodiscard]] PassAccess iteration_access(int iteration) const override {
    if (!refine_.due(iteration)) return {};
    PassAccess a;
    a.read(Resource::kProbe).write(Resource::kProbe);
    a.read(Resource::kProbeGrad).write(Resource::kProbeGrad);
    a.write(Resource::kFabric);
    return a;
  }
  void on_iteration(SolverState& state, int iteration) override;

 private:
  RefineSchedule refine_;
  real probe_step_;
  index_t probe_count_;
  double initial_energy_;
};

/// Convergence recording: per-iteration values of the global cost F(V).
/// Tiled runs all-reduce the per-rank sweep costs and record on rank 0
/// (under the shared result mutex).
class CostRecordPass final : public Pass {
 public:
  explicit CostRecordPass(bool record) : record_(record) {}

  [[nodiscard]] const char* name() const override { return "cost-record"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override { return {}; }
  [[nodiscard]] PassAccess iteration_access(int) const override {
    if (!record_) return {};
    PassAccess a;
    a.read(Resource::kCost).write(Resource::kCost).write(Resource::kFabric);
    return a;
  }
  void on_iteration(SolverState& state, int iteration) override;

 private:
  bool record_;
};

/// Periodic one-line progress report (--progress N): every N completed
/// iterations, rank 0 (or the serial solver) logs iteration position, the
/// latest recorded cost (falling back to the running sweep cost) and the
/// probe throughput since the previous report. Pure observation — no
/// state mutation, no communication.
class ProgressPass final : public Pass {
 public:
  ProgressPass(int every, index_t probes_per_iteration, int total_iterations)
      : every_(every), probes_(probes_per_iteration), total_(total_iterations) {}

  [[nodiscard]] const char* name() const override { return "progress"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override { return {}; }
  [[nodiscard]] PassAccess iteration_access(int) const override {
    return PassAccess{}.read(Resource::kCost);
  }
  void on_iteration(SolverState& state, int iteration) override;

 private:
  int every_;
  index_t probes_;
  int total_;
  WallTimer since_last_;
  int iterations_since_last_ = 0;
};

/// Periodic checkpointing as a pipeline stage: mid-iteration snapshots at
/// chunk boundaries (carrying the partial sweep cost) and one at each
/// iteration boundary. The write protocol is the subsystem's
/// manifest-last completion contract: every rank writes its shard, all
/// ranks barrier, rank 0 writes the manifest — identical shape on the
/// single-rank path with the barriers elided.
///
/// In deferred mode (the async pipeline) the hook only does the fabric-free
/// half — create the step directory, write this rank's shard, capture the
/// cost history — and queues a pending record; a CheckpointFinalizePass on
/// the rank lane later runs the barrier + manifest-last completion. The
/// split lets the shard I/O run on the background slot while later chunks
/// compute; an unfinalized snapshot simply has no manifest yet, so crash
/// semantics are unchanged (find_latest_step ignores it).
class CheckpointPass final : public Pass {
 public:
  CheckpointPass(ckpt::Policy policy, ckpt::RunInfo run, bool deferred = false)
      : policy_(std::move(policy)), run_(std::move(run)), deferred_(deferred) {}

  [[nodiscard]] const char* name() const override { return "checkpoint"; }
  /// A due snapshot reads every piece of state it serializes and writes
  /// the directory tree; inline mode also barriers. Not-due points declare
  /// nothing, so the common chunk never fences on background I/O.
  [[nodiscard]] PassAccess chunk_access(const StepPoint& point) const override {
    return point.chunk + 1 < point.chunks
               ? access_if_due(point.iteration, point.chunk + 1)
               : PassAccess{};
  }
  [[nodiscard]] PassAccess iteration_access(int iteration) const override {
    return access_if_due(iteration + 1, 0);
  }
  [[nodiscard]] bool background_eligible() const override { return deferred_; }
  void on_chunk(SolverState& state, const StepPoint& point) override;
  void on_iteration(SolverState& state, int iteration) override;

  /// Complete every queued deferred snapshot: per record, all ranks
  /// barrier (shards are known written — the caller's hazard fence waited
  /// for the background task), then rank 0 writes the manifest. Called by
  /// CheckpointFinalizePass on the rank lane; a no-op in inline mode.
  void finalize_pending(SolverState& state);

 private:
  struct PendingSnapshot {
    std::string dir;
    int next_iteration = 0;
    int next_chunk = 0;
    std::vector<double> cost_values;  ///< captured on rank 0 at write time
  };

  [[nodiscard]] PassAccess access_if_due(int next_iteration, int next_chunk) const;
  void maybe_write(SolverState& state, int next_iteration, int next_chunk,
                   double partial_cost);
  void write_manifest_completion(const std::string& dir, int next_iteration, int next_chunk,
                                 std::vector<double> cost_values);

  ckpt::Policy policy_;
  ckpt::RunInfo run_;
  bool deferred_ = false;
  std::mutex pending_mutex_;  ///< guards pending_ (background producer, rank-lane consumer)
  std::vector<PendingSnapshot> pending_;
};

/// Rank-lane completion stage for deferred checkpoints: runs the barrier +
/// manifest-last half of the protocol for every snapshot whose shard write
/// has finished. Its kCheckpointDir read hazards with the in-flight shard
/// task's write, so the executor's fence guarantees every rank observes
/// the same pending set — the per-snapshot barrier count is deterministic.
/// Placed before the fault point so a snapshot completed by chunk N is
/// manifest-complete before rank loss at chunk N can fire (matching which
/// snapshot a sync run would have completed).
class CheckpointFinalizePass final : public Pass {
 public:
  explicit CheckpointFinalizePass(CheckpointPass& writer) : writer_(writer) {}

  [[nodiscard]] const char* name() const override { return "checkpoint-finalize"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    return PassAccess{}.read(Resource::kCheckpointDir).write(Resource::kFabric);
  }
  [[nodiscard]] PassAccess iteration_access(int) const override {
    return PassAccess{}.read(Resource::kCheckpointDir).write(Resource::kFabric);
  }
  void on_chunk(SolverState& state, const StepPoint&) override {
    writer_.finalize_pending(state);
  }
  void on_iteration(SolverState& state, int) override { writer_.finalize_pending(state); }
  void on_finish(SolverState& state) override { writer_.finalize_pending(state); }

 private:
  CheckpointPass& writer_;
};

/// HVE's embarrassingly parallel local reconstruction: `epochs` local
/// sweeps over the tile's assigned probes (own + replicated). SGD mode is
/// the historical sequential loop with immediate updates; full-batch mode
/// dispatches each epoch through a BatchSweeper on the configured
/// scheduler, accumulating into a pass-private AccBuf and applying once
/// per epoch (a different — batched — local algorithm, not a reordering
/// of the SGD one). Only *owned* probes' first-epoch costs are counted,
/// so the recorded global cost sums each f_i exactly once.
class HveLocalSweepPass final : public Pass {
 public:
  /// `threads`/`schedule` configure the full-batch sweeper; SGD mode
  /// ignores them (its machinery is inherently sequential). `precision`
  /// compacts the full-batch sweeper's measurement frames and workspace
  /// caches like SweepPass; the SGD loop keeps its rank-local f32 frames
  /// (its sequential per-probe walk is not bandwidth-bound).
  HveLocalSweepPass(const GradientEngine& engine, const std::vector<index_t>& probes,
                    const std::vector<RArray2D>& measurements, usize own_count, int epochs,
                    UpdateMode mode = UpdateMode::kSgd, int threads = 1,
                    SweepSchedule schedule = SweepSchedule::kAuto,
                    PrecisionPolicy precision = {});

  [[nodiscard]] const char* name() const override { return "hve-local-sweep"; }
  [[nodiscard]] obs::Phase phase() const override { return obs::Phase::kCompute; }
  /// The pass-private AccBuf is not a declared resource (nothing else can
  /// touch it); the probe is the engine's immutable dataset copy.
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    PassAccess a;
    a.read(Resource::kVolume).write(Resource::kVolume);
    return a;
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;

 private:
  const GradientEngine& engine_;
  const std::vector<index_t>& probes_;
  const std::vector<RArray2D>& measurements_;
  usize own_count_;
  int epochs_;
  UpdateMode mode_;
  // SGD machinery (unset in full-batch mode).
  std::optional<MultisliceWorkspace> workspace_;
  std::optional<FramedVolume> grad_scratch_;
  // Full-batch machinery (unset in SGD mode); accbuf_ sized lazily off the
  // tile volume on the first chunk.
  std::optional<ThreadPool> pool_;
  std::unique_ptr<SweepScheduler> scheduler_;
  std::optional<BatchSweeper> sweeper_;
  std::optional<compact::FrameStack> compact_meas_;  ///< fast tier only
  std::optional<AccumulationBuffer> accbuf_;
};

/// HVE's synchronous halo exchange: owned voxels overwrite neighbour
/// halos along the precomputed paste schedule. The pastes are what create
/// the seam artifacts measured in the Fig. 8 experiment.
class HaloPastePass final : public Pass {
 public:
  explicit HaloPastePass(std::vector<PasteEdge> pastes) : pastes_(std::move(pastes)) {}

  [[nodiscard]] const char* name() const override { return "halo-paste"; }
  [[nodiscard]] PassAccess chunk_access(const StepPoint&) const override {
    PassAccess a;
    a.read(Resource::kVolume).write(Resource::kVolume).write(Resource::kFabric);
    return a;
  }
  [[nodiscard]] PassAccess iteration_access(int) const override { return {}; }
  void on_chunk(SolverState& state, const StepPoint& point) override;

 private:
  std::vector<PasteEdge> pastes_;
  std::int64_t round_ = 0;
};

}  // namespace ptycho
