// Forward/backward accumulated-gradient passes (paper Secs. III-V).
//
// Three gradient-synchronization schemes, selectable per run:
//
//  * kSweep (the paper's method, Sec. IV + V): four directional chain
//    passes — vertical forward (each tile *adds* its buffer into the tile
//    below over their overlap), vertical backward (the lower tile's buffer
//    *replaces* the upper's over the overlap), then the same horizontally.
//    Chains in different columns/rows proceed independently and a rank
//    enters the next direction as soon as its own sends are posted — the
//    Asynchronous Pipelining for Parallel Passes falls out of the
//    per-rank dataflow order with eager non-blocking sends (Fig. 5).
//
//  * kDirectNeighbors (Sec. III): pairwise add with the 8-connected
//    neighborhood only. Exact when probes overlap only adjacent tiles;
//    insufficient for high overlap ratios (Fig. 3(d)) — kept as an
//    ablation.
//
//  * run_allreduce: the "natural choice" the paper rejects — a global
//    all-reduce of the full-field gradient. Exact but unscalable; it is
//    the without-APPP baseline of Fig. 7b.
#pragma once

#include "partition/overlap.hpp"
#include "runtime/cluster.hpp"
#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

enum class PassScheme {
  kSweep,
  kDirectNeighbors,
};

[[nodiscard]] const char* to_string(PassScheme scheme);

class PassEngine {
 public:
  PassEngine(const Partition& partition, int rank);

  /// One bi-directional sweep (vf, vb, hf, hb) over `buf`. All ranks must
  /// call the same number of times (chains match by an internal counter).
  void run_sweep(rt::RankContext& ctx, FramedVolume& buf);

  /// Pairwise 8-neighbour accumulate (Sec. III base scheme).
  void run_direct(rt::RankContext& ctx, FramedVolume& buf);

  /// Global all-reduce of the full-field gradient; buf's extended window
  /// is replaced with the exact global sum.
  void run_allreduce(rt::RankContext& ctx, FramedVolume& buf);

 private:
  const Partition& partition_;
  int rank_;
  CardinalOverlaps card_;
  std::vector<std::pair<int, Rect>> neighbor8_;  ///< (rank, overlap) pairs
  std::int64_t sweep_counter_ = 0;
  std::int64_t direct_counter_ = 0;
  std::int64_t allreduce_counter_ = 0;
};

/// Tag phase ids used by the decomposition layer (shared so solvers never
/// collide with pass traffic).
namespace comm_phase {
inline constexpr int kVerticalForward = 1;
inline constexpr int kVerticalBackward = 2;
inline constexpr int kHorizontalForward = 3;
inline constexpr int kHorizontalBackward = 4;
inline constexpr int kDirect = 5;
inline constexpr int kAllreduce = 6;
inline constexpr int kStitch = 7;
inline constexpr int kPaste = 8;
inline constexpr int kCost = 9;
inline constexpr int kProbe = 10;
inline constexpr int kRestore = 11;       ///< elastic checkpoint redistribution
inline constexpr int kRestoreProbe = 12;  ///< probe broadcast on restore
}  // namespace comm_phase

}  // namespace ptycho
