#include "core/optimizer.hpp"

namespace ptycho {

const char* to_string(UpdateMode mode) {
  switch (mode) {
    case UpdateMode::kSgd: return "sgd";
    case UpdateMode::kFullBatch: return "full-batch";
  }
  return "?";
}

void apply_gradient(FramedVolume& volume, const FramedVolume& grad, const Rect& region,
                    real step) {
  if (region.empty()) return;
  for (index_t s = 0; s < volume.slices(); ++s) {
    axpy(cplx(-step, 0), grad.window(s, region), volume.window(s, region));
  }
  // Invalidate any cached per-slice transmittance derived from this volume.
  volume.bump_revision();
}

}  // namespace ptycho
