#include "core/exec_options.hpp"

#include <sstream>

#include "common/error.hpp"
#include "runtime/chaos_transport.hpp"

namespace ptycho {

namespace {

std::vector<std::string> split_commas(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

ExecOptions parse_exec_options(const Options& options, const ExecOptions& defaults) {
  ExecOptions exec = defaults;
  exec.threads = static_cast<int>(options.get_int("threads", exec.threads));
  if (options.has("scheduler")) {
    exec.schedule = sweep_schedule_from_string(options.get_string("scheduler", ""));
  }
  if (options.has("pipeline")) {
    exec.pipeline = pipeline_mode_from_string(options.get_string("pipeline", ""));
  }
  exec.backend = options.get_string("backend", exec.backend);
  exec.checkpoint.directory = options.get_string("checkpoint-dir", exec.checkpoint.directory);
  exec.checkpoint.every_chunks =
      static_cast<int>(options.get_int("checkpoint-every", exec.checkpoint.every_chunks));
  exec.trace_out = options.get_string("trace-out", exec.trace_out);
  exec.metrics_out = options.get_string("metrics-out", exec.metrics_out);
  exec.progress_every = static_cast<int>(options.get_int("progress", exec.progress_every));
  if (options.has("transport")) {
    exec.transport.kind = rt::transport_kind_from_string(options.get_string("transport", ""));
  }
  exec.transport.rank = static_cast<int>(options.get_int("rank", exec.transport.rank));
  if (options.has("peers")) {
    exec.transport.peers = split_commas(options.get_string("peers", ""));
    // Validate eagerly so a typo'd roster fails at the flag, not mid-mesh.
    for (const auto& spec : exec.transport.peers) (void)rt::parse_peer(spec);
  }
  exec.transport.generation = static_cast<std::uint32_t>(
      options.get_int("generation", static_cast<std::int64_t>(exec.transport.generation)));
  exec.transport.connect_timeout_ms =
      static_cast<int>(options.get_int("connect-timeout-ms", exec.transport.connect_timeout_ms));
  exec.transport.shutdown_drain_ms =
      static_cast<int>(options.get_int("drain-timeout-ms", exec.transport.shutdown_drain_ms));
  exec.transport.heartbeat_ms =
      static_cast<int>(options.get_int("heartbeat-ms", exec.transport.heartbeat_ms));
  exec.transport.liveness_timeout_ms = static_cast<int>(
      options.get_int("liveness-timeout-ms", exec.transport.liveness_timeout_ms));
  exec.transport.recv_deadline_ms =
      static_cast<int>(options.get_int("recv-deadline-ms", exec.transport.recv_deadline_ms));
  if (options.has("chaos")) {
    exec.transport.chaos = options.get_string("chaos", exec.transport.chaos);
    // Validate eagerly: a typo'd spec should fail at the flag.
    (void)rt::parse_chaos_spec(exec.transport.chaos);
  }
  exec.max_restarts = static_cast<int>(options.get_int("max-restarts", exec.max_restarts));
  exec.restart_backoff_ms =
      static_cast<int>(options.get_int("restart-backoff-ms", exec.restart_backoff_ms));
  if (options.has("precision")) {
    exec.precision = parse_precision(options.get_string("precision", ""));
  }
  PTYCHO_REQUIRE(exec.max_restarts >= 0, "--max-restarts must be >= 0");
  PTYCHO_REQUIRE(exec.restart_backoff_ms >= 0, "--restart-backoff-ms must be >= 0");
  if (exec.transport.liveness_timeout_ms > 0 && exec.transport.heartbeat_ms > 0) {
    PTYCHO_REQUIRE(exec.transport.heartbeat_ms < exec.transport.liveness_timeout_ms,
                   "--heartbeat-ms must be below --liveness-timeout-ms, or every peer "
                   "times out between its own pings");
  }
  if (exec.transport.distributed()) {
    PTYCHO_REQUIRE(!exec.transport.peers.empty(),
                   "--transport socket needs --peers host:port,... (one per rank)");
    PTYCHO_REQUIRE(exec.transport.rank >= 0, "--transport socket needs --rank N");
  }
  return exec;
}

std::string exec_options_help() {
  return
      "  --threads N              sweep worker threads (0 = auto)\n"
      "  --scheduler S            full-batch sweep scheduler: auto|static|work-stealing\n"
      "  --pipeline M             pass-graph scheduling: sync|async\n"
      "  --backend B              kernel backend: auto|simd|scalar\n"
      "  --checkpoint-dir PATH    enable periodic checkpointing into PATH\n"
      "  --checkpoint-every N     snapshot cadence in chunks (0 = disabled; pair with --checkpoint-dir)\n"
      "  --trace-out PATH         write Chrome trace_event JSON of the run\n"
      "  --metrics-out PATH       write metrics snapshot (ptycho.metrics.v1)\n"
      "  --progress N             log progress every N iterations (0 = off)\n"
      "  --transport T            comm substrate: inproc|socket\n"
      "  --rank N                 this process's rank (socket transport)\n"
      "  --peers H:P,H:P,...      rank roster, one host:port per rank (socket)\n"
      "  --generation N           cluster incarnation stamp (set by the recovery supervisor)\n"
      "  --connect-timeout-ms N   socket mesh-formation window (default 30000)\n"
      "  --drain-timeout-ms N     socket shutdown drain bound (default 5000)\n"
      "  --heartbeat-ms N         socket liveness ping cadence (0 = off)\n"
      "  --liveness-timeout-ms N  declare a silent peer dead after N ms (0 = EOF-only)\n"
      "  --recv-deadline-ms N     abort a blocked receive after N ms (0 = wait forever)\n"
      "  --chaos SPEC             fault injection, e.g. delay=0.5:2,reorder=0.3,seed=9\n"
      "  --max-restarts N         auto-recover from rank failures up to N times (0 = off)\n"
      "  --restart-backoff-ms N   base recovery backoff, doubled per restart (default 100)\n"
      "  --precision P            numerics tier: strict (bitwise, default) | fast[:bf16|:f16]\n";
}

}  // namespace ptycho
