#include "core/exec_options.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ptycho {

namespace {

std::vector<std::string> split_commas(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

ExecOptions parse_exec_options(const Options& options, const ExecOptions& defaults) {
  ExecOptions exec = defaults;
  exec.threads = static_cast<int>(options.get_int("threads", exec.threads));
  if (options.has("scheduler")) {
    exec.schedule = sweep_schedule_from_string(options.get_string("scheduler", ""));
  }
  if (options.has("pipeline")) {
    exec.pipeline = pipeline_mode_from_string(options.get_string("pipeline", ""));
  }
  exec.backend = options.get_string("backend", exec.backend);
  exec.checkpoint.directory = options.get_string("checkpoint-dir", exec.checkpoint.directory);
  exec.checkpoint.every_chunks =
      static_cast<int>(options.get_int("checkpoint-every", exec.checkpoint.every_chunks));
  exec.trace_out = options.get_string("trace-out", exec.trace_out);
  exec.metrics_out = options.get_string("metrics-out", exec.metrics_out);
  exec.progress_every = static_cast<int>(options.get_int("progress", exec.progress_every));
  if (options.has("transport")) {
    exec.transport.kind = rt::transport_kind_from_string(options.get_string("transport", ""));
  }
  exec.transport.rank = static_cast<int>(options.get_int("rank", exec.transport.rank));
  if (options.has("peers")) {
    exec.transport.peers = split_commas(options.get_string("peers", ""));
    // Validate eagerly so a typo'd roster fails at the flag, not mid-mesh.
    for (const auto& spec : exec.transport.peers) (void)rt::parse_peer(spec);
  }
  if (exec.transport.distributed()) {
    PTYCHO_REQUIRE(!exec.transport.peers.empty(),
                   "--transport socket needs --peers host:port,... (one per rank)");
    PTYCHO_REQUIRE(exec.transport.rank >= 0, "--transport socket needs --rank N");
  }
  return exec;
}

std::string exec_options_help() {
  return
      "  --threads N              sweep worker threads (0 = auto)\n"
      "  --scheduler S            full-batch sweep scheduler: auto|static|work-stealing\n"
      "  --pipeline M             pass-graph scheduling: sync|async\n"
      "  --backend B              kernel backend: auto|simd|scalar\n"
      "  --checkpoint-dir PATH    enable periodic checkpointing into PATH\n"
      "  --checkpoint-every N     snapshot cadence in chunks (0 = disabled; pair with --checkpoint-dir)\n"
      "  --trace-out PATH         write Chrome trace_event JSON of the run\n"
      "  --metrics-out PATH       write metrics snapshot (ptycho.metrics.v1)\n"
      "  --progress N             log progress every N iterations (0 = off)\n"
      "  --transport T            comm substrate: inproc|socket\n"
      "  --rank N                 this process's rank (socket transport)\n"
      "  --peers H:P,H:P,...      rank roster, one host:port per rank (socket)\n";
}

}  // namespace ptycho
