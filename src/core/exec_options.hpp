// ExecOptions: the one struct for every knob that says *how* a solver
// runs rather than *what* it computes — worker threads, sweep scheduler,
// pipeline mode, kernel backend, checkpoint policy, telemetry sinks,
// progress cadence and the communication transport.
//
// SerialConfig, GdConfig, HveConfig and ReconstructionRequest all embed
// an ExecOptions as `exec`, so a new execution knob is added in exactly
// one place and flows through the facade untouched (Reconstructor copies
// `request.exec` wholesale instead of field-by-field). Every knob here is
// performance/deployment only: the reconstruction output is bitwise
// identical across all settings (the determinism contract each field's
// comment restates).
//
// parse_exec_options()/exec_options_help() are the shared command-line
// surface — ptycho_cli, bench_sweep and the examples all accept identical
// spellings because they all call the same interpreter over
// common/options.
#pragma once

#include <string>

#include "ckpt/snapshot.hpp"
#include "common/options.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "core/precision.hpp"
#include "runtime/transport.hpp"

namespace ptycho {

struct ExecOptions {
  /// Worker threads for the gradient sweep (0 = auto: hardware
  /// concurrency, divided across ranks for the tiled solvers, floored at
  /// 1). Full-batch sweeps use a deterministic ordered reduction, so
  /// output is bitwise identical for any value; SGD sweeps are inherently
  /// sequential and ignore it.
  int threads = 0;
  /// How full-batch sweeps divide batches across pool slots (static
  /// partition, work-stealing, or measured auto-selection). Pure
  /// load-balancing knob — bitwise identical output for any choice.
  SweepSchedule schedule = SweepSchedule::kAuto;
  /// Pass-graph scheduling: kSync is strict list order; kAsync overlaps
  /// background checkpoint I/O with later chunks behind hazard fences.
  /// Output (including checkpoint bytes) is bitwise identical either way.
  PipelineMode pipeline = PipelineMode::kSync;
  /// Kernel backend: "auto" (CPU detection), "simd" or "scalar"; ""
  /// leaves the process-wide selection untouched. Bitwise identical
  /// across backends (the backend layer's contract).
  std::string backend;
  /// Periodic checkpointing (serial and GD; HVE takes no checkpoints and
  /// ignores it).
  ckpt::Policy checkpoint;
  /// Chrome trace_event JSON sink ("" disables tracing). Honored by the
  /// Reconstructor facade, which owns the obs::Session.
  std::string trace_out;
  /// Metrics-registry snapshot sink, ptycho.metrics.v1 ("" disables).
  std::string metrics_out;
  /// Log a one-line progress report every N iterations (0 disables).
  int progress_every = 0;
  /// Communication substrate for the tiled solvers: in-process threads
  /// (default, the virtual cluster) or one-rank-per-process TCP sockets.
  /// Same messages, same tags, same mailbox matcher — reconstructions are
  /// bitwise identical across transports.
  rt::TransportOptions transport;
  /// Self-healing: on RankFailure, restore the newest valid snapshot from
  /// checkpoint.directory and retry (dropping the failed rank), up to this
  /// many times (0 disables in-run recovery). Requires checkpointing.
  int max_restarts = 0;
  /// Base backoff before a recovery attempt; doubles per restart.
  int restart_backoff_ms = 100;
  /// Numerics tier (--precision). The one exception to the "every knob is
  /// bitwise-neutral" rule above: the default (strict) keeps bitwise
  /// identity with all prior releases, but the fast tier swaps in FMA
  /// kernels and compact storage and is tolerance-gated instead (see
  /// core/precision.hpp). Checkpoints stay f32 and restore across tiers.
  PrecisionPolicy precision;
};

/// Interpret the shared execution flags out of parsed options, over
/// `defaults`:
///   --threads N            --scheduler auto|static|stealing
///   --pipeline sync|async  --backend auto|simd|scalar
///   --checkpoint-dir PATH  --checkpoint-every N
///   --trace-out PATH       --metrics-out PATH       --progress N
///   --transport inproc|socket  --rank N  --peers host:port,host:port,...
///   --generation N         --connect-timeout-ms N   --drain-timeout-ms N
///   --heartbeat-ms N       --liveness-timeout-ms N  --recv-deadline-ms N
///   --chaos SPEC           --max-restarts N         --restart-backoff-ms N
///   --precision P
/// Unknown keys are left for the caller's own flag handling; malformed
/// values throw ptycho::Error.
[[nodiscard]] ExecOptions parse_exec_options(const Options& options,
                                             const ExecOptions& defaults = {});

/// Help text for the shared flags (one line per flag, aligned, indented
/// two spaces) for embedding into a tool's usage message.
[[nodiscard]] std::string exec_options_help();

}  // namespace ptycho
