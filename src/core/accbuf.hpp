// AccBuf_k of Alg. 1: the accumulated-gradient buffer each rank keeps.
#pragma once

#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

class AccumulationBuffer {
 public:
  AccumulationBuffer(index_t slices, const Rect& frame) : volume_(slices, frame) {}

  [[nodiscard]] FramedVolume& volume() { return volume_; }
  [[nodiscard]] const FramedVolume& volume() const { return volume_; }
  [[nodiscard]] const Rect& frame() const { return volume_.frame; }

  /// AccBuf += g over `region` (Alg. 1 step 7).
  void accumulate(const FramedVolume& grad, const Rect& region) {
    add_region(grad, volume_, region);
  }

  /// AccBuf <- 0 (Alg. 1 step 16).
  void reset() { volume_.data.fill(cplx{}); }

 private:
  FramedVolume volume_;
};

}  // namespace ptycho
