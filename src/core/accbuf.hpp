// AccBuf_k of Alg. 1: the accumulated-gradient buffer each rank keeps.
#pragma once

#include <cstdint>
#include <optional>

#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

class AccumulationBuffer {
 public:
  AccumulationBuffer(index_t slices, const Rect& frame) : volume_(slices, frame) {}

  [[nodiscard]] FramedVolume& volume() { return volume_; }
  [[nodiscard]] const FramedVolume& volume() const { return volume_; }
  [[nodiscard]] const Rect& frame() const { return volume_.frame; }

  /// AccBuf += g over `region` (Alg. 1 step 7).
  void accumulate(const FramedVolume& grad, const Rect& region) {
    add_region(grad, volume_, region);
  }

  /// AccBuf <- 0 (Alg. 1 step 16).
  void reset() { volume_.data.fill(cplx{}); }

 private:
  FramedVolume volume_;
};

/// Double-buffer rotation over AccBuf for the asynchronous pipeline: even
/// global steps accumulate into the solver's primary buffer, odd steps
/// into a shadow of the same shape. Alternating buffers is what lets a
/// background checkpoint still *reading* step N's buffer overlap step
/// N+1's sweep, which *writes* the other one — without the rotation the
/// two would be a write-after-read hazard and serialize.
///
/// Contents stay bitwise-equal to the single-buffer path: every chunk
/// starts from a zeroed buffer (ApplyUpdatePass resets the one it used),
/// and both buffers start zeroed, so which physical buffer a chunk used is
/// unobservable in the output.
class AccumulationDoubleBuffer {
 public:
  /// Borrows `primary` (the solver's buffer) and allocates the shadow
  /// eagerly with the same shape, on the calling thread, so per-rank
  /// memory tracking charges it to the owning rank.
  explicit AccumulationDoubleBuffer(AccumulationBuffer& primary)
      : primary_(&primary),
        shadow_(std::in_place, primary.volume().slices(), primary.frame()) {}

  [[nodiscard]] AccumulationBuffer& for_step(std::uint64_t step) {
    return step % 2 == 0 ? *primary_ : *shadow_;
  }

 private:
  AccumulationBuffer* primary_;
  std::optional<AccumulationBuffer> shadow_;
};

}  // namespace ptycho
