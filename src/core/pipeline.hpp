// ReconstructionPipeline: the single execution layer every solver runs on.
//
// A reconstruction is a pass graph driven over a fixed iteration/chunk
// schedule:
//
//   per chunk:      sweep -> [sync] -> optimizer update -> [fault point]
//                   -> [checkpoint finalize] -> checkpoint
//   per iteration:  probe refinement -> convergence record -> checkpoint
//
// The serial solver, the gradient-decomposition solver and the HVE
// baseline all instantiate this pipeline with different pass lists
// instead of hand-rolling their own loops: the tiled paths insert the
// gradient-synchronization / halo-exchange and fault-point passes, the
// serial path omits them, and the checkpoint hook is itself a pass. The
// pipeline owns the loop structure (chunk ranges, restored start
// positions, the per-iteration running cost) so restart/convergence
// semantics cannot drift between solvers.
//
// Dependencies, not list order, are the semantic contract: every pass
// declares the resources its hooks read and write (Resource / PassAccess
// below), and the pipeline derives a dependency DAG per StepPoint from
// those sets (chunk_dag()). Execution honors the DAG on a two-lane
// schedule:
//
//  * kSync runs the historical strict list order — trivially a linear
//    extension of the DAG — with zero overhead.
//  * kAsync keeps fabric-touching passes on the rank lane in list order
//    (collective matching order must be identical on every rank; the
//    tagless barrier makes reordering them unsound), but lifts
//    background-eligible passes (checkpoint shard I/O) onto a per-rank
//    BackgroundWorker slot. An in-flight background pass fences every
//    later pass it has a read/write hazard with; the AccBuf is
//    double-buffered per step parity so chunk N's in-flight checkpoint
//    (reading buffer A) never hazards chunk N+1's sweep (writing B).
//
// Because the rank lane never reorders and background passes operate on a
// value snapshot of the state behind hazard fences, the async schedule is
// bitwise identical to the sync one — same volume, same cost history,
// same snapshot bytes (asserted in tests/test_async_pipeline.cpp).
//
// Passes mutate shared per-rank state through SolverState, which carries
// raw pointers into the owning solver's buffers (the pipeline borrows,
// never owns). `ctx` is null on the single-rank path; passes that need a
// fabric (sync, halo paste, fault points) are simply not added there.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/accbuf.hpp"
#include "core/convergence.hpp"
#include "obs/trace.hpp"
#include "physics/probe.hpp"
#include "tensor/framed.hpp"

namespace ptycho {

namespace rt {
class RankContext;
}  // namespace rt

/// Shared mutable solver state the passes operate on. All pointers borrow
/// from the owning solver; optional members are null when the pass list
/// does not use them (e.g. accbuf/probe on the HVE path).
struct SolverState {
  FramedVolume* volume = nullptr;
  Probe* probe = nullptr;
  AccumulationBuffer* accbuf = nullptr;
  CArray2D* probe_grad_field = nullptr;  ///< accumulated probe gradient
  real step = real(0);                   ///< preconditioned object descent step
  double sweep_cost = 0.0;               ///< running cost of the current iteration
  rt::RankContext* ctx = nullptr;        ///< null on the single-rank path
  CostHistory* cost = nullptr;           ///< recorded history sink
  std::mutex* cost_mutex = nullptr;      ///< guards *cost on tiled runs (else null)
};

/// Position of one chunk inside the schedule, including its item range
/// (the probe-sweep slice this chunk evaluates).
struct StepPoint {
  int iteration = 0;
  int chunk = 0;
  int chunks = 1;      ///< chunks per iteration
  index_t begin = 0;   ///< first sweep item of this chunk
  index_t end = 0;     ///< one past the last sweep item
};

// ---- resources & access sets ------------------------------------------------

/// The named shared resources passes operate on. kAccBuf names the
/// *current chunk's* accumulation buffer — with double buffering the
/// executor remaps it per step parity, so a pass never needs to know
/// which physical buffer it touches. Value members of SolverState
/// (sweep_cost, step) are NOT resources: the rank lane mutates them in
/// program order and background passes receive a value snapshot.
enum class Resource : std::uint8_t {
  kVolume = 0,      ///< the rank's (extended-tile) object volume
  kProbe,           ///< the probe wavefield
  kProbeGrad,       ///< the accumulated probe-gradient field
  kAccBuf,          ///< this step's accumulation buffer
  kCost,            ///< the recorded CostHistory sink
  kFabric,          ///< the rank's message fabric + barriers (ordering!)
  kCheckpointDir,   ///< the snapshot directory tree on disk
};
inline constexpr int kResourceCount = 7;

[[nodiscard]] const char* to_string(Resource resource);

[[nodiscard]] constexpr std::uint32_t resource_bit(Resource r) {
  return std::uint32_t{1} << static_cast<int>(r);
}

/// A pass hook's declared read/write sets, as resource bitmasks. The
/// default for an unannotated pass is all(): reads and writes everything,
/// which conflicts with everything and therefore serializes — always
/// safe, never fast.
struct PassAccess {
  std::uint32_t reads = 0;
  std::uint32_t writes = 0;

  PassAccess& read(Resource r) {
    reads |= resource_bit(r);
    return *this;
  }
  PassAccess& write(Resource r) {
    writes |= resource_bit(r);
    return *this;
  }
  [[nodiscard]] bool touches(Resource r) const {
    return ((reads | writes) & resource_bit(r)) != 0;
  }
  [[nodiscard]] static PassAccess all() {
    PassAccess a;
    a.reads = a.writes = (std::uint32_t{1} << kResourceCount) - 1;
    return a;
  }
  /// True when a pass with *this* access, issued earlier, must complete
  /// before one with `later` may run: RAW, WAR or WAW on any resource.
  [[nodiscard]] bool hazard_with(const PassAccess& later) const {
    return ((writes & (later.reads | later.writes)) | (reads & later.writes)) != 0;
  }
};

/// Dependency DAG over a pass list: deps[i] lists the indices of earlier
/// passes pass i has a hazard with (its direct dependencies).
struct PassDag {
  std::vector<std::vector<int>> deps;
};

/// Topological order of a dependency graph given as per-node dependency
/// lists; throws ptycho::Error when the graph has a cycle. List order is
/// a valid linear extension of any hazard-derived PassDag (dependencies
/// only ever point backwards), so this doubles as the cycle detector for
/// hand-built graphs in tests.
[[nodiscard]] std::vector<int> topological_order(const std::vector<std::vector<int>>& deps);

/// How ReconstructionPipeline::run schedules the pass graph.
enum class PipelineMode {
  kSync,   ///< strict list order, single lane (the historical behavior)
  kAsync,  ///< hazard-fenced background slot + double-buffered AccBuf
};

[[nodiscard]] const char* to_string(PipelineMode mode);
/// Parse "sync" / "async"; throws on others.
[[nodiscard]] PipelineMode pipeline_mode_from_string(const std::string& name);

/// One stage of the pass graph. A pass may act per chunk, per iteration,
/// or both; the pipeline invokes the hooks of every pass in list order at
/// each point. The list order is the reference execution order — a linear
/// extension of the hazard DAG the declared access sets imply — and the
/// async executor only ever deviates from it where those sets prove the
/// deviation unobservable.
class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Which Fig. 7b phase this pass's chunk hook is accounted under. The
  /// pipeline wraps every hook in an obs::SpanScope carrying this phase,
  /// so phase totals are derived from the same spans the tracer exports.
  /// kNone (the default) still traces the hook but attributes no phase —
  /// right for passes whose time is accounted at a finer grain inside
  /// (communication, waits, checkpoint writes).
  [[nodiscard]] virtual obs::Phase phase() const { return obs::Phase::kNone; }

  /// Resources the chunk hook reads/writes at `point`. The conservative
  /// default serializes; passes override with tight sets so the async
  /// executor can prove overlap safe. Access may depend on the point
  /// (e.g. the sweep only writes kProbeGrad on refinement iterations) but
  /// must be identical across ranks for a given point.
  [[nodiscard]] virtual PassAccess chunk_access(const StepPoint& point) const {
    (void)point;
    return PassAccess::all();
  }

  /// Resources the iteration hook reads/writes. Same contract as
  /// chunk_access.
  [[nodiscard]] virtual PassAccess iteration_access(int iteration) const {
    (void)iteration;
    return PassAccess::all();
  }

  /// True when the pass's hooks may run on the background slot in async
  /// mode: the hook must not touch kFabric (validated — collective order
  /// must stay on the rank lane), must treat SolverState value members as
  /// a snapshot, and must tolerate running concurrently with later
  /// non-conflicting passes.
  [[nodiscard]] virtual bool background_eligible() const { return false; }

  /// Runs once per chunk.
  virtual void on_chunk(SolverState& state, const StepPoint& point) {
    (void)state;
    (void)point;
  }

  /// Runs once per completed iteration (after the iteration's last chunk
  /// hooks).
  virtual void on_iteration(SolverState& state, int iteration) {
    (void)state;
    (void)iteration;
  }

  /// Runs once after the full schedule, with no background work in
  /// flight — the place to complete deferred protocols (e.g. the last
  /// snapshot's manifest). Collective on tiled runs like the other hooks.
  virtual void on_finish(SolverState& state) { (void)state; }
};

/// The iteration/chunk schedule a pipeline runs: total extent plus the
/// restored start position of a resumed run.
struct PipelineSchedule {
  int iterations = 1;
  int chunks_per_iteration = 1;
  int start_iteration = 0;
  int start_chunk = 0;                  ///< within start_iteration (exact resume)
  double restored_partial_cost = 0.0;   ///< sweep cost already accumulated there
  index_t items = 0;                    ///< local sweep items per full iteration
};

/// Execution knobs for ReconstructionPipeline::run.
struct PipelineOptions {
  PipelineMode mode = PipelineMode::kSync;
};

class ReconstructionPipeline {
 public:
  /// Append a pass; returns it for further configuration. List order is
  /// execution order for both hooks.
  Pass& add(std::unique_ptr<Pass> pass);

  /// Construct-and-append convenience.
  template <class P, class... Args>
  P& emplace(Args&&... args) {
    return static_cast<P&>(add(std::make_unique<P>(std::forward<Args>(args)...)));
  }

  [[nodiscard]] usize size() const { return passes_.size(); }

  /// "sweep -> update -> checkpoint" — the graph as a human-readable
  /// string (logging and tests).
  [[nodiscard]] std::string describe() const;

  /// The dependency DAG the declared chunk accesses imply at `point`:
  /// dag.deps[i] holds the earlier pass indices pass i has a read/write
  /// hazard with. No double-buffer remap is applied — within one chunk
  /// every pass sees the same physical AccBuf.
  [[nodiscard]] PassDag chunk_dag(const StepPoint& point) const;

  /// Drive the pass graph over the schedule. Collective on tiled runs:
  /// every rank must run the same schedule with a structurally identical
  /// pass list, and (in async mode) background completion never influences
  /// rank-lane collective order.
  void run(SolverState& state, const PipelineSchedule& schedule,
           const PipelineOptions& options = {});

 private:
  /// Throws when the pass list is unsound for async execution (a
  /// background-eligible pass declaring fabric access).
  void validate_async() const;

  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace ptycho
