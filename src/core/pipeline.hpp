// GradientSynchronizer: the policy object that decides *how* a rank's
// accumulated gradients are reconciled with its neighbours each time
// Alg. 1 reaches step 9 — the paper's APPP sweep, the Sec. III direct
// scheme, or the rejected global all-reduce (the without-APPP baseline).
#pragma once

#include "core/passes.hpp"

namespace ptycho {

struct SyncPolicy {
  PassScheme scheme = PassScheme::kSweep;
  /// false = replace the pipelined passes with a barrier + global
  /// all-reduce (the "w/o APPP" configuration of Fig. 7b).
  bool appp = true;
};

class GradientSynchronizer {
 public:
  GradientSynchronizer(const Partition& partition, int rank, SyncPolicy policy)
      : engine_(partition, rank), policy_(policy) {}

  /// Reconcile `accbuf` across ranks according to the policy. Collective:
  /// all ranks must call the same number of times.
  void synchronize(rt::RankContext& ctx, FramedVolume& accbuf) {
    if (!policy_.appp) {
      ctx.barrier();
      engine_.run_allreduce(ctx, accbuf);
      return;
    }
    switch (policy_.scheme) {
      case PassScheme::kSweep:
        engine_.run_sweep(ctx, accbuf);
        return;
      case PassScheme::kDirectNeighbors:
        engine_.run_direct(ctx, accbuf);
        return;
    }
  }

  [[nodiscard]] const SyncPolicy& policy() const { return policy_; }

 private:
  PassEngine engine_;
  SyncPolicy policy_;
};

}  // namespace ptycho
