// ReconstructionPipeline: the single execution layer every solver runs on.
//
// A reconstruction is an ordered pass graph driven over a fixed
// iteration/chunk schedule:
//
//   per chunk:      sweep -> [sync] -> optimizer update -> [fault point]
//                   -> checkpoint
//   per iteration:  probe refinement -> convergence record -> checkpoint
//
// The serial solver, the gradient-decomposition solver and the HVE
// baseline all instantiate this pipeline with different pass lists
// instead of hand-rolling their own loops: the tiled paths insert the
// gradient-synchronization / halo-exchange and fault-point passes, the
// serial path omits them, and the checkpoint hook is itself a pass. The
// pipeline owns the loop structure (chunk ranges, restored start
// positions, the per-iteration running cost) so restart/convergence
// semantics cannot drift between solvers.
//
// Passes mutate shared per-rank state through SolverState, which carries
// raw pointers into the owning solver's buffers (the pipeline borrows,
// never owns). `ctx` is null on the single-rank path; passes that need a
// fabric (sync, halo paste, fault points) are simply not added there.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/accbuf.hpp"
#include "core/convergence.hpp"
#include "obs/trace.hpp"
#include "physics/probe.hpp"
#include "tensor/framed.hpp"

namespace ptycho {

namespace rt {
class RankContext;
}  // namespace rt

/// Shared mutable solver state the passes operate on. All pointers borrow
/// from the owning solver; optional members are null when the pass list
/// does not use them (e.g. accbuf/probe on the HVE path).
struct SolverState {
  FramedVolume* volume = nullptr;
  Probe* probe = nullptr;
  AccumulationBuffer* accbuf = nullptr;
  CArray2D* probe_grad_field = nullptr;  ///< accumulated probe gradient
  real step = real(0);                   ///< preconditioned object descent step
  double sweep_cost = 0.0;               ///< running cost of the current iteration
  rt::RankContext* ctx = nullptr;        ///< null on the single-rank path
  CostHistory* cost = nullptr;           ///< recorded history sink
  std::mutex* cost_mutex = nullptr;      ///< guards *cost on tiled runs (else null)
};

/// Position of one chunk inside the schedule, including its item range
/// (the probe-sweep slice this chunk evaluates).
struct StepPoint {
  int iteration = 0;
  int chunk = 0;
  int chunks = 1;      ///< chunks per iteration
  index_t begin = 0;   ///< first sweep item of this chunk
  index_t end = 0;     ///< one past the last sweep item
};

/// One stage of the pass graph. A pass may act per chunk, per iteration,
/// or both; the pipeline invokes the hooks of every pass in list order at
/// each point, so the list order IS the execution order of the graph.
class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Which Fig. 7b phase this pass's chunk hook is accounted under. The
  /// pipeline wraps every hook in an obs::SpanScope carrying this phase,
  /// so phase totals are derived from the same spans the tracer exports.
  /// kNone (the default) still traces the hook but attributes no phase —
  /// right for passes whose time is accounted at a finer grain inside
  /// (communication, waits, checkpoint writes).
  [[nodiscard]] virtual obs::Phase phase() const { return obs::Phase::kNone; }

  /// Runs once per chunk, in pass-list order.
  virtual void on_chunk(SolverState& state, const StepPoint& point) {
    (void)state;
    (void)point;
  }

  /// Runs once per completed iteration, in pass-list order (after the
  /// iteration's last chunk hooks).
  virtual void on_iteration(SolverState& state, int iteration) {
    (void)state;
    (void)iteration;
  }
};

/// The iteration/chunk schedule a pipeline runs: total extent plus the
/// restored start position of a resumed run.
struct PipelineSchedule {
  int iterations = 1;
  int chunks_per_iteration = 1;
  int start_iteration = 0;
  int start_chunk = 0;                  ///< within start_iteration (exact resume)
  double restored_partial_cost = 0.0;   ///< sweep cost already accumulated there
  index_t items = 0;                    ///< local sweep items per full iteration
};

class ReconstructionPipeline {
 public:
  /// Append a pass; returns it for further configuration. List order is
  /// execution order for both hooks.
  Pass& add(std::unique_ptr<Pass> pass);

  /// Construct-and-append convenience.
  template <class P, class... Args>
  P& emplace(Args&&... args) {
    return static_cast<P&>(add(std::make_unique<P>(std::forward<Args>(args)...)));
  }

  [[nodiscard]] usize size() const { return passes_.size(); }

  /// "sweep -> update -> checkpoint" — the graph as a human-readable
  /// string (logging and tests).
  [[nodiscard]] std::string describe() const;

  /// Drive the pass graph over the schedule. Collective on tiled runs:
  /// every rank must run the same schedule with a structurally identical
  /// pass list.
  void run(SolverState& state, const PipelineSchedule& schedule);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace ptycho
