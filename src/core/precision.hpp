// Engine-wide precision policy: which numerics tier the backend kernels
// run at, and which compact storage format (if any) holds the fast tier's
// read-mostly arrays. Parsed from --precision, carried by ExecOptions.
//
//   strict     — today's bitwise-deterministic no-FMA f32 path (default).
//   fast       — FMA kernel tables + f16 compact storage (same as fast:f16)
//                + spectral roundtrip elision in the multislice operator
//                (the far-field F·F⁻¹ pairs, see physics/multislice.cpp).
//   fast:f16   — explicit storage pick: f16 (binary16) quantization stays
//                inside the 1e-3 tolerance gate.
//   fast:bf16  — wide-range storage pick (8-bit mantissa, f32 exponent
//                range); gated at a looser documented bound.
//
// Strict-tier guarantees (bitwise identity across backends, schedulers,
// thread counts, transports) are untouched by this knob at its default.
// The fast tier is tolerance-gated: cost trajectories must stay within a
// relative epsilon of strict (see convergence.hpp and the README
// "Precision tiers" section); checkpoints always serialize f32 state, so
// runs restore across tiers freely.
#pragma once

#include <string>
#include <string_view>

#include "backend/kernels.hpp"
#include "tensor/compact.hpp"

namespace ptycho {

struct PrecisionPolicy {
  backend::Precision tier = backend::Precision::kStrict;
  compact::Format storage = compact::Format::kNone;

  [[nodiscard]] bool fast() const { return tier == backend::Precision::kFast; }

  friend bool operator==(const PrecisionPolicy& a, const PrecisionPolicy& b) {
    return a.tier == b.tier && a.storage == b.storage;
  }
};

/// Parse "strict" | "fast" | "fast:bf16" | "fast:f16". Throws on anything
/// else (flag values are user input; fail loudly, not quietly strict).
[[nodiscard]] PrecisionPolicy parse_precision(std::string_view spec);

/// Canonical spelling, re-parseable by parse_precision.
[[nodiscard]] std::string to_string(const PrecisionPolicy& policy);

/// Apply the tier to the process-wide backend dispatch (storage is applied
/// locally by the passes that own compact arrays).
void apply_precision(const PrecisionPolicy& policy);

}  // namespace ptycho
