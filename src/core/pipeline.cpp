#include "core/pipeline.hpp"

#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "runtime/cluster.hpp"

namespace ptycho {

const char* to_string(Resource resource) {
  switch (resource) {
    case Resource::kVolume: return "volume";
    case Resource::kProbe: return "probe";
    case Resource::kProbeGrad: return "probe-grad";
    case Resource::kAccBuf: return "accbuf";
    case Resource::kCost: return "cost";
    case Resource::kFabric: return "fabric";
    case Resource::kCheckpointDir: return "checkpoint-dir";
  }
  return "?";
}

const char* to_string(PipelineMode mode) {
  return mode == PipelineMode::kSync ? "sync" : "async";
}

PipelineMode pipeline_mode_from_string(const std::string& name) {
  if (name == "sync") return PipelineMode::kSync;
  if (name == "async") return PipelineMode::kAsync;
  throw Error("unknown pipeline mode: " + name + " (expected sync|async)");
}

std::vector<int> topological_order(const std::vector<std::vector<int>>& deps) {
  const int n = static_cast<int>(deps.size());
  // Kahn's algorithm over the dependency lists. deps[i] -> i edges.
  std::vector<int> remaining(static_cast<usize>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<usize>(n));
  for (int i = 0; i < n; ++i) {
    remaining[static_cast<usize>(i)] = static_cast<int>(deps[static_cast<usize>(i)].size());
    for (int d : deps[static_cast<usize>(i)]) {
      PTYCHO_REQUIRE(d >= 0 && d < n, "dependency index out of range");
      dependents[static_cast<usize>(d)].push_back(i);
    }
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (remaining[static_cast<usize>(i)] == 0) ready.push_back(i);
  }
  std::vector<int> order;
  order.reserve(static_cast<usize>(n));
  // Pop the smallest ready index first so the result matches list order
  // whenever list order is a valid extension (it always is for
  // hazard-derived DAGs, whose edges point backwards).
  for (usize head = 0; head < ready.size(); ++head) {
    // `ready` is kept sorted by construction below.
    const int node = ready[head];
    order.push_back(node);
    for (int dep : dependents[static_cast<usize>(node)]) {
      if (--remaining[static_cast<usize>(dep)] == 0) {
        auto it = ready.begin() + static_cast<std::ptrdiff_t>(head) + 1;
        while (it != ready.end() && *it < dep) ++it;
        ready.insert(it, dep);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw Error("pass dependency graph has a cycle");
  }
  return order;
}

Pass& ReconstructionPipeline::add(std::unique_ptr<Pass> pass) {
  PTYCHO_REQUIRE(pass != nullptr, "cannot add a null pass");
  passes_.push_back(std::move(pass));
  return *passes_.back();
}

std::string ReconstructionPipeline::describe() const {
  std::string out;
  for (const auto& pass : passes_) {
    if (!out.empty()) out += " -> ";
    out += pass->name();
  }
  return out;
}

PassDag ReconstructionPipeline::chunk_dag(const StepPoint& point) const {
  PassDag dag;
  dag.deps.resize(passes_.size());
  std::vector<PassAccess> access;
  access.reserve(passes_.size());
  for (const auto& pass : passes_) access.push_back(pass->chunk_access(point));
  for (usize i = 0; i < passes_.size(); ++i) {
    for (usize j = 0; j < i; ++j) {
      if (access[j].hazard_with(access[i])) {
        dag.deps[i].push_back(static_cast<int>(j));
      }
    }
  }
  return dag;
}

void ReconstructionPipeline::validate_async() const {
  // Background hooks must never touch the fabric: collectives are matched
  // by program order (the barrier is tagless), so reordering them off the
  // rank lane would desynchronize ranks. A pass's access sets may vary
  // with the point, but fabric use may not, so probing one canonical point
  // suffices (and is all we can do without a schedule).
  StepPoint probe;
  for (const auto& pass : passes_) {
    if (!pass->background_eligible()) continue;
    const bool fabric = pass->chunk_access(probe).touches(Resource::kFabric) ||
                        pass->iteration_access(0).touches(Resource::kFabric);
    if (fabric) {
      throw Error(std::string("pass '") + pass->name() +
                  "' is background-eligible but declares fabric access");
    }
  }
}

namespace {

/// Shadow bit the executor remaps kAccBuf to on odd steps, so a hazard
/// check between an in-flight background pass (step N) and a rank-lane
/// pass (step N+1) sees two distinct resources when double buffering made
/// them physically distinct.
constexpr std::uint32_t kAccBufShadowBit = std::uint32_t{1} << kResourceCount;

[[nodiscard]] PassAccess remap_accbuf(PassAccess access, std::uint64_t step,
                                      bool double_buffered) {
  if (!double_buffered || step % 2 == 0) return access;
  const std::uint32_t bit = resource_bit(Resource::kAccBuf);
  if (access.reads & bit) access.reads = (access.reads & ~bit) | kAccBufShadowBit;
  if (access.writes & bit) access.writes = (access.writes & ~bit) | kAccBufShadowBit;
  return access;
}

/// A background pass still (possibly) running, with the concrete access
/// set it was dispatched under.
struct InFlightPass {
  BackgroundTicket ticket;
  PassAccess access;
  const char* name = "";
};

/// The async lane's fence bookkeeping: before a pass runs anywhere, every
/// in-flight background pass it has a hazard with must complete.
class HazardTracker {
 public:
  void admit(BackgroundTicket ticket, PassAccess access, const char* name) {
    inflight_.push_back(InFlightPass{std::move(ticket), access, name});
  }

  /// Wait for (and retire) every in-flight pass whose access hazards with
  /// `access`. Blocking waits are accounted as kWait so the trace shows
  /// where the rank lane stalled on background I/O.
  void wait_conflicting(const PassAccess& access) {
    for (usize i = 0; i < inflight_.size();) {
      if (!inflight_[i].access.hazard_with(access)) {
        ++i;
        continue;
      }
      wait_one(inflight_[i]);
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  void wait_all() {
    for (auto& entry : inflight_) wait_one(entry);
    inflight_.clear();
  }

 private:
  static void wait_one(InFlightPass& entry) {
    if (entry.ticket.done()) {
      entry.ticket.wait();  // rethrow a captured error without accounting
      return;
    }
    obs::SpanScope span("pass-wait", obs::Phase::kWait);
    entry.ticket.wait();
  }

  std::vector<InFlightPass> inflight_;
};

/// Restores state.accbuf on scope exit — the async run repoints it at the
/// double buffer's shadow on odd steps, and the owning solver must get its
/// own pointer back even when a pass throws.
class AccbufRestorer {
 public:
  explicit AccbufRestorer(SolverState& state) : state_(state), saved_(state.accbuf) {}
  ~AccbufRestorer() { state_.accbuf = saved_; }

 private:
  SolverState& state_;
  AccumulationBuffer* saved_;
};

}  // namespace

void ReconstructionPipeline::run(SolverState& state, const PipelineSchedule& schedule,
                                 const PipelineOptions& options) {
  PTYCHO_REQUIRE(!passes_.empty(), "pipeline has no passes");
  PTYCHO_REQUIRE(schedule.chunks_per_iteration >= 1, "need at least one chunk per iteration");
  const bool async = options.mode == PipelineMode::kAsync;
  if (async) validate_async();

  // Declaration order matters: the worker must be destroyed (joining any
  // still-queued task) before the shadow buffer it may be reading.
  std::optional<AccumulationDoubleBuffer> accbufs;
  std::optional<BackgroundWorker> background;
  if (async) {
    if (state.accbuf != nullptr) accbufs.emplace(*state.accbuf);
    background.emplace();
  }
  AccbufRestorer restore_accbuf(state);
  HazardTracker inflight;

  // Dispatch one hook (chunk or iteration) on the right lane.
  const auto dispatch = [&](Pass& pass, const PassAccess& concrete,
                            const StepPoint* point, int iteration) {
    if (async) inflight.wait_conflicting(concrete);
    if (async && pass.background_eligible()) {
      // Background passes see a value snapshot of the state taken at
      // dispatch (sweep_cost etc. frozen at the right program point);
      // pointed-to buffers are protected by the hazard fences above.
      BackgroundTicket ticket;
      if (point != nullptr) {
        const StepPoint at = *point;
        ticket = background->submit([&pass, snap = state, at]() mutable {
          obs::SpanScope span(pass.name(), pass.phase(), at.iteration, at.chunk);
          pass.on_chunk(snap, at);
        });
      } else {
        ticket = background->submit([&pass, snap = state, iteration]() mutable {
          obs::SpanScope span(pass.name(), obs::Phase::kNone, iteration);
          pass.on_iteration(snap, iteration);
        });
      }
      inflight.admit(std::move(ticket), concrete, pass.name());
      return;
    }
    if (point != nullptr) {
      obs::SpanScope span(pass.name(), pass.phase(), point->iteration, point->chunk);
      pass.on_chunk(state, *point);
    } else {
      obs::SpanScope span(pass.name(), obs::Phase::kNone, iteration);
      pass.on_iteration(state, iteration);
    }
  };

  for (int iter = schedule.start_iteration; iter < schedule.iterations; ++iter) {
    // A resumed run re-enters mid-iteration with the sweep cost its
    // snapshot had already accumulated; every later iteration starts at 0.
    state.sweep_cost =
        iter == schedule.start_iteration ? schedule.restored_partial_cost : 0.0;
    const int first_chunk = iter == schedule.start_iteration ? schedule.start_chunk : 0;
    for (int chunk = first_chunk; chunk < schedule.chunks_per_iteration; ++chunk) {
      StepPoint point;
      point.iteration = iter;
      point.chunk = chunk;
      point.chunks = schedule.chunks_per_iteration;
      point.begin = schedule.items * chunk / schedule.chunks_per_iteration;
      point.end = schedule.items * (chunk + 1) / schedule.chunks_per_iteration;
      const std::uint64_t step =
          static_cast<std::uint64_t>(iter) *
              static_cast<std::uint64_t>(schedule.chunks_per_iteration) +
          static_cast<std::uint64_t>(chunk);
      if (accbufs) state.accbuf = &accbufs->for_step(step);
      {
        obs::SpanScope chunk_span("chunk", obs::Phase::kNone, iter, chunk);
        for (const auto& pass : passes_) {
          const PassAccess concrete =
              remap_accbuf(pass->chunk_access(point), step, accbufs.has_value());
          dispatch(*pass, concrete, &point, iter);
        }
      }
      // Chunk boundary: fold this rank's span durations into its profiler
      // and move pending trace records out of the bounded rings. (The
      // background thread's ring is registered globally, so drain_all
      // collects its records too.)
      if (state.ctx != nullptr) state.ctx->merge_phases();
      if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
    }
    {
      // Iteration hooks carry no pass phase: probe refinement and cost
      // recording were never phase-accounted, and the checkpoint pass
      // times its actual writes internally (snapshot-write spans). The
      // hooks run after the iteration's last chunk, so the AccBuf parity
      // they observe is that of the last step.
      const std::uint64_t last_step =
          static_cast<std::uint64_t>(iter) *
              static_cast<std::uint64_t>(schedule.chunks_per_iteration) +
          static_cast<std::uint64_t>(schedule.chunks_per_iteration - 1);
      obs::SpanScope iter_span("iteration-hooks", obs::Phase::kNone, iter);
      for (const auto& pass : passes_) {
        const PassAccess concrete =
            remap_accbuf(pass->iteration_access(iter), last_step, accbufs.has_value());
        dispatch(*pass, concrete, nullptr, iter);
      }
    }
    if (state.ctx != nullptr) state.ctx->merge_phases();
    if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
  }

  // Quiesce the background slot, then give every pass its finish hook —
  // deferred protocols (the last snapshot's manifest) complete here, with
  // no background work in flight on any rank.
  inflight.wait_all();
  for (const auto& pass : passes_) pass->on_finish(state);
  if (state.ctx != nullptr) state.ctx->merge_phases();
  if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
}

}  // namespace ptycho
