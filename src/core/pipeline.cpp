#include "core/pipeline.hpp"

// Header-only; TU anchors the module.

namespace ptycho {}
