#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "runtime/cluster.hpp"

namespace ptycho {

Pass& ReconstructionPipeline::add(std::unique_ptr<Pass> pass) {
  PTYCHO_REQUIRE(pass != nullptr, "cannot add a null pass");
  passes_.push_back(std::move(pass));
  return *passes_.back();
}

std::string ReconstructionPipeline::describe() const {
  std::string out;
  for (const auto& pass : passes_) {
    if (!out.empty()) out += " -> ";
    out += pass->name();
  }
  return out;
}

void ReconstructionPipeline::run(SolverState& state, const PipelineSchedule& schedule) {
  PTYCHO_REQUIRE(!passes_.empty(), "pipeline has no passes");
  PTYCHO_REQUIRE(schedule.chunks_per_iteration >= 1, "need at least one chunk per iteration");
  for (int iter = schedule.start_iteration; iter < schedule.iterations; ++iter) {
    // A resumed run re-enters mid-iteration with the sweep cost its
    // snapshot had already accumulated; every later iteration starts at 0.
    state.sweep_cost =
        iter == schedule.start_iteration ? schedule.restored_partial_cost : 0.0;
    const int first_chunk = iter == schedule.start_iteration ? schedule.start_chunk : 0;
    for (int chunk = first_chunk; chunk < schedule.chunks_per_iteration; ++chunk) {
      StepPoint point;
      point.iteration = iter;
      point.chunk = chunk;
      point.chunks = schedule.chunks_per_iteration;
      point.begin = schedule.items * chunk / schedule.chunks_per_iteration;
      point.end = schedule.items * (chunk + 1) / schedule.chunks_per_iteration;
      {
        obs::SpanScope chunk_span("chunk", obs::Phase::kNone, iter, chunk);
        for (const auto& pass : passes_) {
          obs::SpanScope span(pass->name(), pass->phase(), iter, chunk);
          pass->on_chunk(state, point);
        }
      }
      // Chunk boundary: fold this rank's span durations into its profiler
      // and move pending trace records out of the bounded rings.
      if (state.ctx != nullptr) state.ctx->merge_phases();
      if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
    }
    {
      // Iteration hooks carry no pass phase: probe refinement and cost
      // recording were never phase-accounted, and the checkpoint pass
      // times its actual writes internally (snapshot-write spans).
      obs::SpanScope iter_span("iteration-hooks", obs::Phase::kNone, iter);
      for (const auto& pass : passes_) {
        obs::SpanScope span(pass->name(), obs::Phase::kNone, iter);
        pass->on_iteration(state, iter);
      }
    }
    if (state.ctx != nullptr) state.ctx->merge_phases();
    if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
  }
}

}  // namespace ptycho
