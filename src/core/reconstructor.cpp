#include "core/reconstructor.hpp"

#include "backend/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"

namespace ptycho {

namespace {
// Post-run roll-up of the facade-level observables shared by both
// decomposed solvers.
void record_parallel_gauges(const ParallelResult& result) {
  if (!obs::metrics_enabled()) return;
  obs::registry().gauge("mem_peak_bytes_max").set(static_cast<double>(result.max_peak_bytes));
  obs::registry().gauge("mem_peak_bytes_mean").set(result.mean_peak_bytes);
  obs::registry().gauge("wall_seconds").set(result.wall_seconds);
}
}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kSerial: return "serial";
    case Method::kGradientDecomposition: return "gradient-decomposition";
    case Method::kHaloVoxelExchange: return "halo-voxel-exchange";
  }
  return "?";
}

ReconstructionOutcome Reconstructor::run(const ReconstructionRequest& request,
                                         const FramedVolume* initial) const {
  if (!request.exec.backend.empty()) {
    PTYCHO_REQUIRE(backend::select(request.exec.backend),
                   "backend '" << request.exec.backend
                               << "' is not available (want scalar|simd|auto; simd requires "
                                  "CPU support)");
  }
  obs::Session session(obs::SessionConfig{request.exec.trace_out, request.exec.metrics_out});
  ReconstructionOutcome outcome;
  switch (request.method) {
    case Method::kSerial: {
      SerialConfig config;
      config.iterations = request.iterations;
      config.step = request.step;
      config.chunks_per_iteration = request.passes_per_iteration;
      config.exec = request.exec;
      config.mode = request.mode;
      config.refine_probe = request.refine_probe;
      config.record_cost = request.record_cost;
      config.restore = request.restore;
      SerialResult result = reconstruct_serial(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      if (obs::metrics_enabled()) {
        obs::registry().gauge("wall_seconds").set(result.wall_seconds);
      }
      session.finish();
      return outcome;
    }
    case Method::kGradientDecomposition: {
      GdConfig config;
      config.nranks = request.nranks;
      config.iterations = request.iterations;
      config.step = request.step;
      config.passes_per_iteration = request.passes_per_iteration;
      config.exec = request.exec;
      config.mode = request.mode;
      config.sync = request.sync;
      config.refine_probe = request.refine_probe;
      config.record_cost = request.record_cost;
      config.restore = request.restore;
      config.fault = request.fault;
      ParallelResult result = reconstruct_gd(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      outcome.mean_peak_bytes = result.mean_peak_bytes;
      outcome.breakdown = std::move(result.breakdown);
      record_parallel_gauges(result);
      session.finish();
      return outcome;
    }
    case Method::kHaloVoxelExchange: {
      PTYCHO_REQUIRE(!request.exec.checkpoint.enabled() && request.restore == nullptr,
                     "checkpoint/restore is not supported for the HVE solver");
      HveConfig config;
      config.nranks = request.nranks;
      config.iterations = request.iterations;
      config.step = request.step;
      config.local_epochs = request.hve_local_epochs;
      config.mode = request.mode;
      config.exec = request.exec;
      config.extra_rings = request.hve_extra_rings;
      config.record_cost = request.record_cost;
      ParallelResult result = reconstruct_hve(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      outcome.mean_peak_bytes = result.mean_peak_bytes;
      outcome.breakdown = std::move(result.breakdown);
      record_parallel_gauges(result);
      session.finish();
      return outcome;
    }
  }
  PTYCHO_UNREACHABLE("unknown method");
}

}  // namespace ptycho
