#include "core/reconstructor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "backend/kernels.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/precision.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

namespace ptycho {

namespace {
// Post-run roll-up of the facade-level observables shared by both
// decomposed solvers.
void record_parallel_gauges(const ParallelResult& result) {
  if (!obs::metrics_enabled()) return;
  obs::registry().gauge("mem_peak_bytes_max").set(static_cast<double>(result.max_peak_bytes));
  obs::registry().gauge("mem_peak_bytes_mean").set(result.mean_peak_bytes);
  obs::registry().gauge("wall_seconds").set(result.wall_seconds);
}
}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kSerial: return "serial";
    case Method::kGradientDecomposition: return "gradient-decomposition";
    case Method::kHaloVoxelExchange: return "halo-voxel-exchange";
  }
  return "?";
}

ReconstructionOutcome Reconstructor::run(const ReconstructionRequest& request,
                                         const FramedVolume* initial) const {
  if (!request.exec.backend.empty()) {
    PTYCHO_REQUIRE(backend::select(request.exec.backend),
                   "backend '" << request.exec.backend
                               << "' is not available (want scalar|simd|auto; simd requires "
                                  "CPU support)");
  }
  // The precision tier re-resolves the kernel tables process-wide, exactly
  // like the backend choice above; strict (the default) maps onto the same
  // tables the engine used before the knob existed.
  apply_precision(request.exec.precision);
  // One session for the whole supervised run: recovery counters must
  // accumulate across attempts, not reset with each retry.
  obs::Session session(obs::SessionConfig{request.exec.trace_out, request.exec.metrics_out});
  // Numerics provenance: every trace/metrics artifact this session emits
  // names the tier its numbers were produced under.
  obs::instant(request.exec.precision.fast() ? "precision-fast" : "precision-strict");
  if (obs::metrics_enabled()) {
    obs::registry().gauge("ptycho.precision").set(request.exec.precision.fast() ? 1.0 : 0.0);
    obs::registry()
        .gauge("ptycho.precision.storage")
        .set(static_cast<double>(request.exec.precision.storage));
  }

  // Supervised retry loop (in-process clusters only: a distributed rank
  // cannot re-form the mesh from inside — its launch parent respawns it).
  const bool recoverable = request.exec.max_restarts > 0 &&
                           request.exec.checkpoint.enabled() &&
                           !request.exec.transport.distributed() &&
                           request.method != Method::kHaloVoxelExchange;
  ReconstructionRequest attempt = request;
  ckpt::Snapshot recovered;  // owns the restored state attempt.restore points at
  int restarts = 0;
  for (;;) {
    try {
      // The caller's warm start applies until a snapshot supersedes it.
      ReconstructionOutcome outcome =
          run_once(attempt, attempt.restore == request.restore ? initial : nullptr);
      if (obs::metrics_enabled() && restarts > 0) {
        obs::registry().gauge("runtime.recovery.generation").set(
            static_cast<double>(attempt.exec.transport.generation));
      }
      session.finish();
      return outcome;
    } catch (const rt::RankFailure& failure) {
      if (obs::metrics_enabled()) {
        obs::registry().counter("runtime.recovery.rank_failures_total").add(1);
      }
      if (!recoverable || restarts >= attempt.exec.max_restarts) {
        session.finish();
        throw;
      }
      WallTimer latency;
      log::warn() << "rank failure (" << failure.what() << ") — recovery attempt "
                  << (restarts + 1) << "/" << attempt.exec.max_restarts;
      if (attempt.fault.armed()) {
        // The injected fault consumed a rank: the survivors re-form one
        // smaller, and the (one-shot) fault must not re-fire after restore
        // — resumed step counters start past at_step and would re-kill the
        // run forever.
        attempt.nranks = std::max(1, attempt.nranks - 1);
        attempt.fault = rt::FaultPlan{};
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::int64_t>(attempt.exec.restart_backoff_ms) << restarts));
      // New cluster incarnation: chaos one-shots stay spent, and (on
      // sockets) stale frames from the dead generation are rejected.
      attempt.exec.transport.generation += 1;
      ckpt::RestoreFilter filter;
      filter.nranks = attempt.method == Method::kSerial ? 1 : attempt.nranks;
      filter.chunks_per_iteration = attempt.passes_per_iteration;
      filter.update_mode = static_cast<int>(attempt.mode);
      filter.refine_probe = attempt.refine_probe ? 1 : 0;
      auto snapshot = ckpt::load_newest_valid(attempt.exec.checkpoint.directory, filter);
      if (snapshot.has_value()) {
        recovered = std::move(*snapshot);
        attempt.restore = &recovered;
        log::info() << "recovering from snapshot at iteration "
                    << recovered.manifest.iteration << " (chunk " << recovered.manifest.chunk
                    << ", " << recovered.manifest.nranks << " ranks) at "
                    << attempt.nranks << " ranks";
      } else {
        attempt.restore = request.restore;  // nothing usable: restart cold
        log::warn() << "no usable snapshot found — restarting from scratch";
      }
      restarts += 1;
      if (obs::metrics_enabled()) {
        obs::registry().counter("runtime.recovery.restarts_total").add(1);
        obs::registry().histogram("runtime.recovery.latency_seconds").observe(latency.seconds());
      }
    }
  }
}

ReconstructionOutcome Reconstructor::run_once(const ReconstructionRequest& request,
                                              const FramedVolume* initial) const {
  ReconstructionOutcome outcome;
  switch (request.method) {
    case Method::kSerial: {
      SerialConfig config;
      config.iterations = request.iterations;
      config.step = request.step;
      config.chunks_per_iteration = request.passes_per_iteration;
      config.exec = request.exec;
      config.mode = request.mode;
      config.refine_probe = request.refine_probe;
      config.record_cost = request.record_cost;
      config.restore = request.restore;
      SerialResult result = reconstruct_serial(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      if (obs::metrics_enabled()) {
        obs::registry().gauge("wall_seconds").set(result.wall_seconds);
      }
      return outcome;
    }
    case Method::kGradientDecomposition: {
      GdConfig config;
      config.nranks = request.nranks;
      config.iterations = request.iterations;
      config.step = request.step;
      config.passes_per_iteration = request.passes_per_iteration;
      config.exec = request.exec;
      config.mode = request.mode;
      config.sync = request.sync;
      config.refine_probe = request.refine_probe;
      config.record_cost = request.record_cost;
      config.restore = request.restore;
      config.fault = request.fault;
      ParallelResult result = reconstruct_gd(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      outcome.mean_peak_bytes = result.mean_peak_bytes;
      outcome.breakdown = std::move(result.breakdown);
      record_parallel_gauges(result);
      return outcome;
    }
    case Method::kHaloVoxelExchange: {
      PTYCHO_REQUIRE(!request.exec.checkpoint.enabled() && request.restore == nullptr,
                     "checkpoint/restore is not supported for the HVE solver");
      HveConfig config;
      config.nranks = request.nranks;
      config.iterations = request.iterations;
      config.step = request.step;
      config.local_epochs = request.hve_local_epochs;
      config.mode = request.mode;
      config.exec = request.exec;
      config.extra_rings = request.hve_extra_rings;
      config.record_cost = request.record_cost;
      ParallelResult result = reconstruct_hve(dataset_, config, initial);
      outcome.volume = std::move(result.volume);
      outcome.cost = std::move(result.cost);
      outcome.wall_seconds = result.wall_seconds;
      outcome.mean_peak_bytes = result.mean_peak_bytes;
      outcome.breakdown = std::move(result.breakdown);
      record_parallel_gauges(result);
      return outcome;
    }
  }
  PTYCHO_UNREACHABLE("unknown method");
}

}  // namespace ptycho
