#include "core/seam_metric.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

namespace {

/// Mean squared difference between the pixel line at coordinate `line` and
/// the line at `line - 1`, along the given axis, across all slices.
double line_jump(const FramedVolume& v, index_t line, bool vertical_border) {
  const Rect f = v.frame;
  double acc = 0.0;
  index_t count = 0;
  for (index_t s = 0; s < v.slices(); ++s) {
    if (vertical_border) {
      // border between columns line-1 and line
      for (index_t y = f.y0; y < f.y1(); ++y) {
        const cplx d = v.at_global(s, y, line) - v.at_global(s, y, line - 1);
        acc += static_cast<double>(std::norm(d));
        ++count;
      }
    } else {
      for (index_t x = f.x0; x < f.x1(); ++x) {
        const cplx d = v.at_global(s, line, x) - v.at_global(s, line - 1, x);
        acc += static_cast<double>(std::norm(d));
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace

SeamReport measure_seams(const FramedVolume& volume, const Partition& partition) {
  PTYCHO_REQUIRE(volume.frame.contains(partition.field()),
                 "volume does not cover the partition field");
  const Rect field = partition.field();

  // Internal border coordinates (deduplicated across tiles).
  std::set<index_t> x_borders;
  std::set<index_t> y_borders;
  for (const TileSpec& tile : partition.tiles()) {
    if (tile.owned.x0 > field.x0) x_borders.insert(tile.owned.x0);
    if (tile.owned.y0 > field.y0) y_borders.insert(tile.owned.y0);
  }

  SeamReport report;
  double border_acc = 0.0;
  double background_acc = 0.0;
  index_t background_count = 0;

  const auto is_near_border = [&](index_t line, const std::set<index_t>& borders) {
    for (index_t b : borders) {
      if (std::llabs(line - b) <= 2) return true;
    }
    return false;
  };

  for (index_t b : x_borders) {
    border_acc += line_jump(volume, b, true);
    ++report.border_lines;
  }
  for (index_t b : y_borders) {
    border_acc += line_jump(volume, b, false);
    ++report.border_lines;
  }
  // Background statistic: every 7th line away from any border.
  for (index_t x = field.x0 + 3; x < field.x1(); x += 7) {
    if (is_near_border(x, x_borders)) continue;
    background_acc += line_jump(volume, x, true);
    ++background_count;
  }
  for (index_t y = field.y0 + 3; y < field.y1(); y += 7) {
    if (is_near_border(y, y_borders)) continue;
    background_acc += line_jump(volume, y, false);
    ++background_count;
  }

  report.border_jump =
      report.border_lines == 0 ? 0.0 : border_acc / static_cast<double>(report.border_lines);
  report.background_jump =
      background_count == 0 ? 0.0 : background_acc / static_cast<double>(background_count);
  report.seam_ratio = report.background_jump > 0.0
                          ? report.border_jump / report.background_jump
                          : (report.border_jump > 0.0 ? 1e30 : 1.0);
  return report;
}

double relative_rms_error(const FramedVolume& volume, const FramedVolume& reference) {
  PTYCHO_REQUIRE(volume.frame == reference.frame, "frames must match");
  PTYCHO_REQUIRE(volume.slices() == reference.slices(), "slice counts must match");
  double err = 0.0;
  double ref = 0.0;
  for (index_t s = 0; s < volume.slices(); ++s) {
    err += diff_norm_sq(volume.window(s, volume.frame), reference.window(s, reference.frame));
    ref += norm_sq(reference.window(s, reference.frame));
  }
  return ref > 0.0 ? std::sqrt(err / ref) : std::sqrt(err);
}

}  // namespace ptycho
