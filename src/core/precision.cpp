#include "core/precision.hpp"

#include "common/error.hpp"

namespace ptycho {

PrecisionPolicy parse_precision(std::string_view spec) {
  PrecisionPolicy policy;
  if (spec.empty() || spec == "strict") return policy;
  PTYCHO_REQUIRE(spec == "fast" || spec == "fast:bf16" || spec == "fast:f16",
                 "--precision must be strict | fast | fast:bf16 | fast:f16");
  policy.tier = backend::Precision::kFast;
  // Plain "fast" means f16: its 11-bit mantissa keeps measurement
  // quantization (~5e-4 relative) inside the 1e-3 tolerance gate, and
  // measurements are magnitudes — far from f16's range limits. bf16 is
  // the explicit wide-range option, gated at a looser documented bound.
  policy.storage = spec == "fast:bf16" ? compact::Format::kBf16 : compact::Format::kF16;
  return policy;
}

std::string to_string(const PrecisionPolicy& policy) {
  if (!policy.fast()) return "strict";
  return std::string("fast:") + compact::format_name(policy.storage);
}

void apply_precision(const PrecisionPolicy& policy) {
  backend::set_precision(policy.tier);
}

}  // namespace ptycho
