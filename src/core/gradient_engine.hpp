// GradientEngine: per-probe cost/gradient evaluation bound to a dataset.
//
// This is the compute kernel of Alg. 1 step 6: given the current tile
// volume V_k, evaluate f_i = (|y_i| - |G(p_i, V_k)|)^2 and its gradient
// over the probe window. One engine per rank (each "GPU" owns its FFT
// plans, like a cuFFT handle per device).
#pragma once

#include "data/dataset.hpp"

namespace ptycho {

class GradientEngine {
 public:
  explicit GradientEngine(const Dataset& dataset)
      : dataset_(dataset), op_(dataset.spec.grid, dataset.spec.model) {}

  [[nodiscard]] const Dataset& dataset() const { return dataset_; }
  [[nodiscard]] const MultisliceOperator& op() const { return op_; }

  /// Global rect of probe i's window.
  [[nodiscard]] const Rect& window(index_t probe_id) const {
    return dataset_.scan[probe_id].window;
  }

  /// ePIE-style step preconditioner: solvers scale the configured step by
  /// this (1 / max probe intensity) so update magnitudes are independent
  /// of grid and probe size.
  [[nodiscard]] real step_scale() const {
    return static_cast<real>(1.0 / dataset_.probe.max_intensity());
  }

  [[nodiscard]] MultisliceWorkspace make_workspace(
      compact::Format compact_trans = compact::Format::kNone) const {
    return MultisliceWorkspace(static_cast<index_t>(dataset_.spec.grid.probe_n),
                               dataset_.spec.slices, compact_trans);
  }

  /// f_i plus gradient accumulation into `grad` over the window. Uses the
  /// dataset's stored measurement for probe i.
  double probe_gradient(index_t probe_id, const FramedVolume& volume, FramedVolume& grad,
                        MultisliceWorkspace& ws) const {
    return op_.cost_and_gradient(dataset_.probe, volume, window(probe_id),
                                 dataset_.measurements[static_cast<usize>(probe_id)].view(),
                                 grad, ws);
  }

  /// Same but against an explicitly provided measurement (rank-local copy).
  double probe_gradient_with(index_t probe_id, View2D<const real> measurement,
                             const FramedVolume& volume, FramedVolume& grad,
                             MultisliceWorkspace& ws) const {
    return op_.cost_and_gradient(dataset_.probe, volume, window(probe_id), measurement, grad,
                                 ws);
  }

  /// Joint evaluation with an explicit (refined) probe: object gradient
  /// into `grad`, probe gradient accumulated into `probe_grad` when
  /// non-null. Used by the probe-refinement path of the solvers.
  double probe_gradient_joint(index_t probe_id, const Probe& probe,
                              View2D<const real> measurement, const FramedVolume& volume,
                              FramedVolume& grad, MultisliceWorkspace& ws,
                              View2D<cplx>* probe_grad = nullptr) const {
    return op_.cost_and_gradient(probe, volume, window(probe_id), measurement, grad, ws,
                                 probe_grad);
  }

  /// f_i only.
  double probe_cost(index_t probe_id, const FramedVolume& volume,
                    MultisliceWorkspace& ws) const {
    return op_.cost(dataset_.probe, volume, window(probe_id),
                    dataset_.measurements[static_cast<usize>(probe_id)].view(), ws);
  }

 private:
  const Dataset& dataset_;
  MultisliceOperator op_;
};

}  // namespace ptycho
