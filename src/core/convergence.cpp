#include "core/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>

#include "common/error.hpp"
#include "data/io.hpp"

namespace ptycho {

double CostHistory::reduction() const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  return values_.back() / values_.front();
}

long long CostHistory::iterations_to_fraction(double fraction) const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  const double target = values_.front() * fraction;
  for (usize i = 0; i < values_.size(); ++i) {
    if (values_[i] <= target) return static_cast<long long>(i);
  }
  return -1;
}

double CostHistory::max_overshoot() const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  double running_min = values_.front();
  double worst = 0.0;
  for (double v : values_) {
    if (v > running_min) worst = std::max(worst, (v - running_min) / running_min);
    running_min = std::min(running_min, v);
  }
  return worst;
}

void CostHistory::write_csv(const std::string& path, const std::string& series_name) const {
  io::CsvWriter csv(path);
  csv.header({"iteration", series_name});
  for (usize i = 0; i < values_.size(); ++i) {
    csv.row({static_cast<double>(i), values_[i]});
  }
}

TrajectoryDeviation compare_cost_trajectories(const std::vector<double>& a,
                                              const std::vector<double>& b) {
  PTYCHO_CHECK(a.size() == b.size(),
               "cost trajectories differ in length (" << a.size() << " vs " << b.size() << ")");
  TrajectoryDeviation out;
  for (usize i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(a[i]), std::abs(b[i]));
    const double rel = denom > 0.0 ? std::abs(a[i] - b[i]) / denom : 0.0;
    if (rel > out.max_relative || out.worst_iteration < 0) {
      out.max_relative = rel;
      out.worst_iteration = static_cast<long long>(i);
    }
  }
  return out;
}

double relative_rms(const FramedVolume& test, const FramedVolume& reference) {
  PTYCHO_CHECK(test.slices() == reference.slices() && test.frame.h == reference.frame.h &&
                   test.frame.w == reference.frame.w,
               "relative_rms needs identically shaped volumes");
  double diff2 = 0.0;
  double ref2 = 0.0;
  for (index_t s = 0; s < reference.slices(); ++s) {
    View2D<const cplx> t = test.data.slice(s);
    View2D<const cplx> r = reference.data.slice(s);
    for (index_t y = 0; y < r.rows(); ++y) {
      const cplx* tr = t.row(y);
      const cplx* rr = r.row(y);
      for (index_t x = 0; x < r.cols(); ++x) {
        const std::complex<double> d(static_cast<double>(tr[x].real()) - rr[x].real(),
                                     static_cast<double>(tr[x].imag()) - rr[x].imag());
        diff2 += std::norm(d);
        ref2 += std::norm(std::complex<double>(rr[x]));
      }
    }
  }
  if (ref2 == 0.0) return diff2 == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(diff2 / ref2);
}

}  // namespace ptycho
