#include "core/convergence.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "data/io.hpp"

namespace ptycho {

double CostHistory::reduction() const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  return values_.back() / values_.front();
}

long long CostHistory::iterations_to_fraction(double fraction) const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  const double target = values_.front() * fraction;
  for (usize i = 0; i < values_.size(); ++i) {
    if (values_[i] <= target) return static_cast<long long>(i);
  }
  return -1;
}

double CostHistory::max_overshoot() const {
  PTYCHO_CHECK(!values_.empty(), "empty cost history");
  double running_min = values_.front();
  double worst = 0.0;
  for (double v : values_) {
    if (v > running_min) worst = std::max(worst, (v - running_min) / running_min);
    running_min = std::min(running_min, v);
  }
  return worst;
}

void CostHistory::write_csv(const std::string& path, const std::string& series_name) const {
  io::CsvWriter csv(path);
  csv.header({"iteration", series_name});
  for (usize i = 0; i < values_.size(); ++i) {
    csv.row({static_cast<double>(i), values_[i]});
  }
}

}  // namespace ptycho
