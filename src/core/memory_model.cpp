#include "core/memory_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "runtime/topology.hpp"

namespace ptycho {

ScanPattern make_paper_scan(const PaperDataset& dataset, index_t eff_window_px) {
  PTYCHO_REQUIRE(dataset.scan_rows >= 2 && dataset.scan_cols >= 2,
                 "paper dataset scan grid too small");
  ScanParams params;
  params.rows = dataset.scan_rows;
  params.cols = dataset.scan_cols;
  params.probe_n = eff_window_px;
  // Per-axis steps chosen so probe centers span the reconstruction field
  // (full coverage; overlap stays in the paper's >70% regime).
  params.step_y_px =
      std::max<index_t>(1, (dataset.vol_y - eff_window_px) / (dataset.scan_rows - 1));
  params.step_px =
      std::max<index_t>(1, (dataset.vol_x - eff_window_px) / (dataset.scan_cols - 1));
  params.margin_px = 0;
  return ScanPattern(params);
}

Partition make_paper_partition(const ScanPattern& scan, int nranks, Strategy strategy,
                               int hve_extra_rings) {
  const Rect field = scan.field();
  PartitionConfig pc;
  pc.mesh = rt::choose_mesh(nranks,
                            static_cast<double>(field.h) / static_cast<double>(field.w));
  pc.strategy = strategy;
  pc.hve_extra_rings = hve_extra_rings;
  return Partition(scan, pc);
}

MemoryEstimate estimate_paper_memory(const Partition& partition, const PaperDataset& dataset,
                                     const PaperMemoryConfig& config) {
  MemoryEstimate estimate;
  estimate.per_rank_bytes.reserve(static_cast<usize>(partition.nranks()));

  const double w2 = static_cast<double>(config.eff_window_px) *
                    static_cast<double>(config.eff_window_px);
  const double slices = static_cast<double>(dataset.slices);
  // Multislice workspace: psi_in + trans per slice, plus a handful of
  // whole-window fields (psi, far, grad, scratch).
  const double workspace_bytes = (2.0 * slices + 4.0) * w2 * sizeof(cplx);

  for (const TileSpec& tile : partition.tiles()) {
    const double tile_bytes = static_cast<double>(config.tile_buffers) *
                              static_cast<double>(tile.extended.area()) * slices * sizeof(cplx);
    const double probes =
        static_cast<double>(tile.own_probes.size() + tile.replicated_probes.size());
    const double meas_bytes = probes * w2 * sizeof(real);
    estimate.per_rank_bytes.push_back(tile_bytes + meas_bytes + workspace_bytes);
  }
  double total = 0.0;
  for (double b : estimate.per_rank_bytes) {
    total += b;
    estimate.max_bytes = std::max(estimate.max_bytes, b);
  }
  estimate.mean_bytes = total / static_cast<double>(estimate.per_rank_bytes.size());
  return estimate;
}

}  // namespace ptycho
