// Serial reference solver: Alg. 1 on a single rank over the full field.
//
// Runs the identical update rule as the decomposed solver (per-probe SGD
// step + delayed accumulated-gradient step every chunk) so that the
// decomposed solvers can be validated against it: in full-batch mode
// GradientDecomposition must match this solver to fp tolerance for any
// mesh (the central invariant, DESIGN.md Sec. 5).
#pragma once

#include "ckpt/snapshot.hpp"
#include "common/parallel.hpp"
#include "core/convergence.hpp"
#include "core/gradient_engine.hpp"
#include "core/optimizer.hpp"
#include "core/pipeline.hpp"

namespace ptycho {

struct SerialConfig {
  int iterations = 10;
  /// ePIE-style step: the effective per-voxel step is step / max|p|^2
  /// (preconditioned by the probe's peak intensity). ~0.05-0.2 is stable
  /// across dataset scales; >~0.5 diverges.
  real step = real(0.1);
  /// How many times per iteration the accumulated-gradient update runs
  /// (the communication-frequency parameter T of Alg. 1, expressed as
  /// chunks of the probe sweep; 1 = once per iteration).
  int chunks_per_iteration = 1;
  UpdateMode mode = UpdateMode::kSgd;
  /// Worker threads for the per-probe gradient sweep (0 = hardware
  /// concurrency). Full-batch mode parallelizes the sweep with a
  /// deterministic ordered reduction — output is bitwise identical for any
  /// thread count. SGD mode is inherently sequential (each probe's update
  /// feeds the next probe's forward model), so it always runs on one
  /// thread regardless of this setting.
  int threads = 0;
  /// How the full-batch sweep divides its batches across the pool's slots
  /// (static partition, work-stealing, or measured auto-selection). Output
  /// is bitwise identical for any choice — a pure load-balancing knob,
  /// like `threads`.
  SweepSchedule schedule = SweepSchedule::kAuto;
  /// Pass-graph scheduling: kAsync overlaps background checkpoint I/O with
  /// later chunks (bitwise-identical output); kSync is the strict
  /// list-order execution.
  PipelineMode pipeline = PipelineMode::kSync;
  bool record_cost = true;
  /// Log a one-line progress report every N iterations (0 disables).
  int progress_every = 0;
  /// Joint object+probe refinement: after `probe_warmup_iterations`, each
  /// iteration also descends the probe wavefield along its accumulated
  /// gradient (then renormalizes to the initial total intensity, removing
  /// the object/probe scale ambiguity).
  bool refine_probe = false;
  /// Probe descent step; the accumulated sweep gradient is divided by the
  /// probe count, so ~0.1-0.5 is stable independent of dataset size.
  real probe_step = real(0.3);
  int probe_warmup_iterations = 1;
  /// Periodic checkpointing (disabled unless the policy is enabled).
  ckpt::Policy checkpoint;
  /// Resume from this snapshot: `iterations` then counts the run's TOTAL
  /// iterations, so a restore continues from snapshot.manifest.iteration
  /// up to `iterations`. A single-rank snapshot resumes exactly (including
  /// mid-iteration states); a multi-rank snapshot is restored elastically
  /// and must sit at an iteration boundary.
  const ckpt::Snapshot* restore = nullptr;
};

struct SerialResult {
  FramedVolume volume;
  CostHistory cost;
  double wall_seconds = 0.0;
  /// Refined probe wavefield (empty unless refine_probe was set).
  CArray2D probe_field;
};

/// Reconstruct from scratch (vacuum initial guess) or from `initial`.
[[nodiscard]] SerialResult reconstruct_serial(const Dataset& dataset, const SerialConfig& config,
                                              const FramedVolume* initial = nullptr);

}  // namespace ptycho
