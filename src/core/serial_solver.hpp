// Serial reference solver: Alg. 1 on a single rank over the full field.
//
// Runs the identical update rule as the decomposed solver (per-probe SGD
// step + delayed accumulated-gradient step every chunk) so that the
// decomposed solvers can be validated against it: in full-batch mode
// GradientDecomposition must match this solver to fp tolerance for any
// mesh (the central invariant, DESIGN.md Sec. 5).
#pragma once

#include "ckpt/snapshot.hpp"
#include "common/parallel.hpp"
#include "core/convergence.hpp"
#include "core/exec_options.hpp"
#include "core/gradient_engine.hpp"
#include "core/optimizer.hpp"
#include "core/pipeline.hpp"

namespace ptycho {

struct SerialConfig {
  int iterations = 10;
  /// ePIE-style step: the effective per-voxel step is step / max|p|^2
  /// (preconditioned by the probe's peak intensity). ~0.05-0.2 is stable
  /// across dataset scales; >~0.5 diverges.
  real step = real(0.1);
  /// How many times per iteration the accumulated-gradient update runs
  /// (the communication-frequency parameter T of Alg. 1, expressed as
  /// chunks of the probe sweep; 1 = once per iteration).
  int chunks_per_iteration = 1;
  UpdateMode mode = UpdateMode::kSgd;
  /// Execution knobs (threads, scheduler, pipeline mode, checkpoint
  /// policy, progress cadence) — shared across every solver config; all
  /// bitwise-neutral (see ExecOptions). The serial solver ignores the
  /// transport (it has no cluster).
  ExecOptions exec;
  bool record_cost = true;
  /// Joint object+probe refinement: after `probe_warmup_iterations`, each
  /// iteration also descends the probe wavefield along its accumulated
  /// gradient (then renormalizes to the initial total intensity, removing
  /// the object/probe scale ambiguity).
  bool refine_probe = false;
  /// Probe descent step; the accumulated sweep gradient is divided by the
  /// probe count, so ~0.1-0.5 is stable independent of dataset size.
  real probe_step = real(0.3);
  int probe_warmup_iterations = 1;
  /// Resume from this snapshot: `iterations` then counts the run's TOTAL
  /// iterations, so a restore continues from snapshot.manifest.iteration
  /// up to `iterations`. A single-rank snapshot resumes exactly (including
  /// mid-iteration states); a multi-rank snapshot is restored elastically
  /// and must sit at an iteration boundary.
  const ckpt::Snapshot* restore = nullptr;
};

struct SerialResult {
  FramedVolume volume;
  CostHistory cost;
  double wall_seconds = 0.0;
  /// Refined probe wavefield (empty unless refine_probe was set).
  CArray2D probe_field;
};

/// Reconstruct from scratch (vacuum initial guess) or from `initial`.
[[nodiscard]] SerialResult reconstruct_serial(const Dataset& dataset, const SerialConfig& config,
                                              const FramedVolume* initial = nullptr);

}  // namespace ptycho
