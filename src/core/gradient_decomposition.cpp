#include "core/gradient_decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <optional>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/accbuf.hpp"
#include "core/stitcher.hpp"
#include "core/sweep.hpp"
#include "data/synthetic.hpp"
#include "common/log.hpp"
#include "partition/assignment.hpp"
#include "runtime/collectives.hpp"

namespace ptycho {

rt::BreakdownEntry ParallelResult::mean_breakdown() const {
  rt::BreakdownEntry m;
  if (breakdown.empty()) return m;
  for (const auto& e : breakdown) {
    m.compute += e.compute;
    m.wait += e.wait;
    m.comm += e.comm;
  }
  const double n = static_cast<double>(breakdown.size());
  m.compute /= n;
  m.wait /= n;
  m.comm /= n;
  return m;
}

namespace {

rt::Mesh2D resolve_mesh(const Dataset& dataset, int nranks, int mesh_rows, int mesh_cols) {
  if (mesh_rows > 0 && mesh_cols > 0) {
    PTYCHO_REQUIRE(mesh_rows * mesh_cols == nranks,
                   "mesh_rows*mesh_cols must equal nranks");
    return rt::Mesh2D(mesh_rows, mesh_cols);
  }
  const Rect field = dataset.field();
  const double aspect = static_cast<double>(field.h) / static_cast<double>(field.w);
  return rt::choose_mesh(nranks, aspect);
}

rt::BreakdownEntry breakdown_from(const PhaseProfiler& prof) {
  rt::BreakdownEntry e;
  e.compute = prof.total(phase::kCompute) + prof.total(phase::kUpdate);
  e.wait = prof.total(phase::kWait);
  e.comm = prof.total(phase::kComm);
  return e;
}

}  // namespace

Partition make_gd_partition(const Dataset& dataset, const GdConfig& config) {
  PartitionConfig pc;
  pc.mesh = resolve_mesh(dataset, config.nranks, config.mesh_rows, config.mesh_cols);
  pc.strategy = Strategy::kGradientDecomposition;
  return Partition(dataset.scan, pc);
}

ParallelResult reconstruct_gd(const Dataset& dataset, const GdConfig& config,
                              const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.nranks >= 1, "need at least one rank");
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.passes_per_iteration >= 1, "passes_per_iteration must be >= 1");
  WallTimer timer;

  const Partition partition = make_gd_partition(dataset, config);
  validate_partition(partition, dataset.scan);
  if (config.sync.appp && config.sync.scheme == PassScheme::kSweep &&
      !all_tiles_own_probes(partition)) {
    log::warn() << "gradient decomposition: some tiles own no probe locations; the sweep "
                   "passes are inexact in this regime — use fewer ranks or sync.appp=false";
  }

  const index_t slices = dataset.spec.slices;
  const auto n = static_cast<index_t>(dataset.spec.grid.probe_n);
  const int chunks = config.passes_per_iteration;

  // --- restore validation (once, before the ranks spin up) -------------------
  int start_iteration = 0;
  int start_chunk = 0;
  bool exact_resume = false;
  if (config.restore != nullptr) {
    PTYCHO_REQUIRE(initial == nullptr,
                   "cannot combine a checkpoint restore with an initial guess");
    ckpt::check_compatible(*config.restore, dataset);
    const ckpt::Manifest& m = config.restore->manifest;
    ckpt::check_same_solver_flags(m, static_cast<int>(config.mode), config.refine_probe);
    exact_resume =
        ckpt::layout_matches(m, partition) && m.chunks_per_iteration == chunks;
    if (!exact_resume) ckpt::require_iteration_boundary(m);
    start_iteration = m.iteration;
    start_chunk = exact_resume ? m.chunk : 0;
  }

  // Run-constant manifest fields, shared by every snapshot this run takes.
  ckpt::RunInfo run_info;
  if (config.checkpoint.enabled()) {
    run_info.dataset_name = dataset.spec.name;
    run_info.probe_count = dataset.probe_count();
    run_info.slices = slices;
    run_info.chunks_per_iteration = chunks;
    run_info.nranks = partition.nranks();
    run_info.refine_probe = config.refine_probe;
    run_info.update_mode = static_cast<int>(config.mode);
    for (const TileSpec& t : partition.tiles()) {
      run_info.tiles.push_back(ckpt::TileInfo{t.rank, t.owned, t.extended, t.own_probes});
    }
  }

  rt::VirtualCluster cluster(partition.nranks());
  cluster.inject_fault(config.fault);
  ParallelResult result;
  if (config.restore != nullptr) result.cost.assign(config.restore->manifest.cost_values);
  std::mutex result_mutex;  // guards result.volume/cost writes from rank 0

  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());

    // --- per-rank state (all tracked as this rank's device memory) -------
    // Rank-local copies of this tile's measurements (each GPU holds only
    // its own probe locations' data — the memory-reduction core claim).
    std::vector<RArray2D> local_meas;
    local_meas.reserve(tile.own_probes.size());
    for (index_t id : tile.own_probes) {
      local_meas.push_back(dataset.measurements[static_cast<usize>(id)].clone());
    }

    FramedVolume volume(slices, tile.extended);
    AccumulationBuffer accbuf(slices, tile.extended);

    GradientEngine engine(dataset);
    const real step = config.step * engine.step_scale();
    // Full-batch: a per-rank worker pool for the local sweep (auto divides
    // the host's cores across ranks so K ranks x T threads ~= hardware).
    // SGD: one sequential workspace + window-sized gradient scratch. Only
    // the active mode's buffers are allocated (they count toward the
    // rank's tracked memory footprint).
    std::optional<ThreadPool> pool;
    std::optional<BatchSweeper> sweeper;
    std::optional<MultisliceWorkspace> ws;
    std::optional<FramedVolume> probe_grad;
    if (config.mode == UpdateMode::kFullBatch) {
      const int threads = config.threads != 0
                              ? config.threads
                              : std::max(1, ThreadPool::hardware_threads() / ctx.nranks());
      pool.emplace(threads);
      sweeper.emplace(engine, *pool);
    } else {
      ws.emplace(engine.make_workspace());
      ws->cache_transmittance = true;  // sweep mutations all go through apply_gradient
      probe_grad.emplace(slices, Rect{0, 0, n, n});
    }
    GradientSynchronizer sync(partition, ctx.rank(), config.sync);
    Probe local_probe = dataset.probe.clone();
    const double probe_energy = local_probe.total_intensity();
    CArray2D probe_grad_field(local_probe.n(), local_probe.n());
    double restored_partial_cost = 0.0;

    if (config.restore != nullptr) {
      const ckpt::Snapshot& snap = *config.restore;
      if (exact_resume) {
        // Same tiling: this rank's shard restores its state verbatim.
        const ckpt::Shard& shard = snap.shards[static_cast<usize>(ctx.rank())];
        copy_region(shard.volume, volume, tile.extended);
        copy_region(shard.accbuf, accbuf.volume(), tile.extended);
        local_probe = Probe(shard.probe.clone());
        if (shard.probe_grad.rows() == probe_grad_field.rows()) {
          probe_grad_field = shard.probe_grad.clone();
        }
        ctx.rng().set_state(shard.rng);
        restored_partial_cost = shard.partial_cost;
      } else {
        // Elastic: re-tile the old owned regions onto this partition,
        // redistributed from the coordinator through the fabric.
        ckpt::scatter_restore(ctx, snap, partition, volume, local_probe.mutable_field());
      }
    } else if (initial != nullptr) {
      copy_region(*initial, volume, tile.extended);
    } else {
      volume.data.fill(cplx(1, 0));
    }

    const auto probe_count = static_cast<index_t>(tile.own_probes.size());

    // Periodic snapshot: shards in parallel, manifest last (rank 0) so a
    // snapshot is complete iff its manifest exists and parses.
    const auto maybe_checkpoint = [&](int next_iter, int next_chunk, double partial_cost) {
      const std::uint64_t step_count = ckpt::chunk_step(next_iter, next_chunk, chunks);
      if (!ckpt::snapshot_due(config.checkpoint, step_count)) return;
      ScopedPhase ckpt_phase(ctx.profiler(), phase::kCheckpoint);
      const std::string dir = ckpt::step_dir(config.checkpoint.directory, step_count);
      if (ctx.rank() == 0) std::filesystem::create_directories(dir);
      ctx.barrier();
      ckpt::write_shard(dir, ckpt::ShardView{ctx.rank(), partial_cost, ctx.rng().state(),
                                             &volume, &accbuf.volume(), &local_probe.field(),
                                             &probe_grad_field});
      ctx.barrier();
      if (ctx.rank() != 0) return;
      std::vector<double> cost_values;
      {
        std::lock_guard<std::mutex> lock(result_mutex);
        cost_values = result.cost.values();
      }
      ckpt::write_manifest(
          dir, ckpt::make_manifest(run_info, next_iter, next_chunk, std::move(cost_values)));
    };

    for (int iter = start_iteration; iter < config.iterations; ++iter) {
      double sweep_cost = iter == start_iteration ? restored_partial_cost : 0.0;
      const int first_chunk = iter == start_iteration ? start_chunk : 0;
      for (int chunk = first_chunk; chunk < chunks; ++chunk) {
        const index_t begin = probe_count * chunk / chunks;
        const index_t end = probe_count * (chunk + 1) / chunks;
        {
          ScopedPhase compute(ctx.profiler(), phase::kCompute);
          const bool refine_now =
              config.refine_probe && iter >= config.probe_warmup_iterations;
          if (config.mode == UpdateMode::kFullBatch) {
            View2D<cplx> pg_view = probe_grad_field.view();
            sweeper->sweep(
                begin, end, local_probe, volume, accbuf, sweep_cost,
                refine_now ? &pg_view : nullptr,
                [&](index_t p) { return tile.own_probes[static_cast<usize>(p)]; },
                [&](index_t p) { return local_meas[static_cast<usize>(p)].view(); });
          } else {
            for (index_t p = begin; p < end; ++p) {
              const index_t id = tile.own_probes[static_cast<usize>(p)];
              probe_grad->frame = engine.window(id);
              probe_grad->data.fill(cplx{});
              View2D<cplx> pg_view = probe_grad_field.view();
              sweep_cost += engine.probe_gradient_joint(
                  id, local_probe, local_meas[static_cast<usize>(p)].view(), volume,
                  *probe_grad, *ws, refine_now ? &pg_view : nullptr);
              accbuf.accumulate(*probe_grad, probe_grad->frame);
              apply_gradient(volume, *probe_grad, probe_grad->frame, step);
            }
          }
        }
        // Reconcile the accumulated gradients across tiles (Alg. 1
        // steps 10-13) and apply them (steps 14-16).
        //
        // Update semantics: a literal reading of Alg. 1 applies each local
        // gradient twice (step 8 and again inside the accumulated buffer
        // at step 15), which makes overlap copies of V diverge by
        // alpha*(g_own - g_neighbor) every chunk — i.e. it would *create*
        // the seam artifacts the paper's method eliminates. We therefore
        // implement the consistency-preserving reading: in SGD mode the
        // accumulated update applies only the *delta* (neighbour
        // contributions the local steps have not seen), so each rank's net
        // chunk update is exactly -alpha * (total gradient) and overlap
        // copies of V remain identical across ranks — the property behind
        // the paper's "no seams" claim (Sec. III) and Fig. 8.
        if (config.mode == UpdateMode::kSgd) {
          // Undo the chunk's local updates now, while AccBuf still holds
          // exactly the own contributions (no extra buffer needed); the
          // post-pass apply below then installs the full total once.
          ScopedPhase update(ctx.profiler(), phase::kUpdate);
          apply_gradient(volume, accbuf.volume(), tile.extended, -step);
        }
        sync.synchronize(ctx, accbuf.volume());
        {
          ScopedPhase update(ctx.profiler(), phase::kUpdate);
          apply_gradient(volume, accbuf.volume(), tile.extended, step);
          accbuf.reset();
        }
        // Chunk boundary: overlap copies of V are consistent again — the
        // only states a snapshot may capture, and the natural place to
        // lose a rank recoverably.
        ctx.fault_point(static_cast<std::uint64_t>(iter) * static_cast<std::uint64_t>(chunks) +
                        static_cast<std::uint64_t>(chunk) + 1);
        if (chunk + 1 < chunks) maybe_checkpoint(iter, chunk + 1, sweep_cost);
      }
      if (config.refine_probe && iter >= config.probe_warmup_iterations) {
        // The probe is global: sum gradient contributions across ranks and
        // apply the identical update everywhere.
        std::vector<cplx> flat(static_cast<usize>(probe_grad_field.size()));
        std::copy_n(probe_grad_field.data(), probe_grad_field.size(), flat.data());
        rt::allreduce_sum(ctx, flat, comm_phase::kProbe);
        std::copy_n(flat.data(), probe_grad_field.size(), probe_grad_field.data());
        const real probe_step =
            config.probe_step /
            static_cast<real>(std::max<index_t>(1, dataset.probe_count()));
        axpy(cplx(-probe_step, 0), probe_grad_field.view(),
             local_probe.mutable_field().view());
        const double energy = local_probe.total_intensity();
        if (energy > 0.0) {
          scale(cplx(static_cast<real>(std::sqrt(probe_energy / energy)), 0),
                local_probe.mutable_field().view());
        }
        probe_grad_field.fill(cplx{});
      }
      if (config.record_cost) {
        const double global_cost =
            rt::allreduce_sum_scalar(ctx, sweep_cost, comm_phase::kCost);
        if (ctx.rank() == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          result.cost.record(global_cost);
        }
      }
      // Iteration boundary (after the cost record, so the manifest carries
      // the full completed-iteration history).
      maybe_checkpoint(iter + 1, 0, 0.0);
    }

    FramedVolume stitched = stitch_on_root(ctx, partition, volume);
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.volume = std::move(stitched);
      if (config.refine_probe) result.probe_field = local_probe.field().clone();
    }
  });

  result.breakdown.reserve(static_cast<usize>(partition.nranks()));
  for (int r = 0; r < partition.nranks(); ++r) {
    result.breakdown.push_back(breakdown_from(cluster.profiler(r)));
  }
  result.mean_peak_bytes = cluster.mean_peak_bytes();
  result.max_peak_bytes = cluster.max_peak_bytes();
  result.fabric = cluster.fabric_stats();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
