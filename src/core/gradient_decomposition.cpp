#include "core/gradient_decomposition.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/accbuf.hpp"
#include "core/pipeline.hpp"
#include "core/stitcher.hpp"
#include "partition/assignment.hpp"

namespace ptycho {

rt::BreakdownEntry ParallelResult::mean_breakdown() const {
  rt::BreakdownEntry m;
  if (breakdown.empty()) return m;
  for (const auto& e : breakdown) {
    m.compute += e.compute;
    m.wait += e.wait;
    m.comm += e.comm;
  }
  const double n = static_cast<double>(breakdown.size());
  m.compute /= n;
  m.wait /= n;
  m.comm /= n;
  return m;
}

namespace {

rt::Mesh2D resolve_mesh(const Dataset& dataset, int nranks, int mesh_rows, int mesh_cols) {
  if (mesh_rows > 0 && mesh_cols > 0) {
    PTYCHO_REQUIRE(mesh_rows * mesh_cols == nranks,
                   "mesh_rows*mesh_cols must equal nranks");
    return rt::Mesh2D(mesh_rows, mesh_cols);
  }
  const Rect field = dataset.field();
  const double aspect = static_cast<double>(field.h) / static_cast<double>(field.w);
  return rt::choose_mesh(nranks, aspect);
}

rt::BreakdownEntry breakdown_from(const PhaseProfiler& prof) {
  rt::BreakdownEntry e;
  e.compute = prof.total(phase::kCompute) + prof.total(phase::kUpdate);
  e.wait = prof.total(phase::kWait);
  e.comm = prof.total(phase::kComm);
  return e;
}

}  // namespace

Partition make_gd_partition(const Dataset& dataset, const GdConfig& config) {
  PartitionConfig pc;
  pc.mesh = resolve_mesh(dataset, config.nranks, config.mesh_rows, config.mesh_cols);
  pc.strategy = Strategy::kGradientDecomposition;
  return Partition(dataset.scan, pc);
}

ParallelResult reconstruct_gd(const Dataset& dataset, const GdConfig& config,
                              const FramedVolume* initial) {
  PTYCHO_REQUIRE(config.nranks >= 1, "need at least one rank");
  PTYCHO_REQUIRE(config.iterations >= 1, "need at least one iteration");
  PTYCHO_REQUIRE(config.passes_per_iteration >= 1, "passes_per_iteration must be >= 1");
  WallTimer timer;

  const Partition partition = make_gd_partition(dataset, config);
  validate_partition(partition, dataset.scan);
  if (config.sync.appp && config.sync.scheme == PassScheme::kSweep &&
      !all_tiles_own_probes(partition)) {
    log::warn() << "gradient decomposition: some tiles own no probe locations; the sweep "
                   "passes are inexact in this regime — use fewer ranks or sync.appp=false";
  }

  const index_t slices = dataset.spec.slices;
  const int chunks = config.passes_per_iteration;

  // --- restore validation (once, before the ranks spin up) -------------------
  int start_iteration = 0;
  int start_chunk = 0;
  bool exact_resume = false;
  if (config.restore != nullptr) {
    PTYCHO_REQUIRE(initial == nullptr,
                   "cannot combine a checkpoint restore with an initial guess");
    ckpt::check_compatible(*config.restore, dataset);
    const ckpt::Manifest& m = config.restore->manifest;
    ckpt::check_same_solver_flags(m, static_cast<int>(config.mode), config.refine_probe);
    exact_resume =
        ckpt::layout_matches(m, partition) && m.chunks_per_iteration == chunks;
    if (!exact_resume) ckpt::require_iteration_boundary(m);
    start_iteration = m.iteration;
    start_chunk = exact_resume ? m.chunk : 0;
  }

  // Run-constant manifest fields, shared by every snapshot this run takes.
  ckpt::RunInfo run_info;
  if (config.exec.checkpoint.enabled()) {
    run_info.dataset_name = dataset.spec.name;
    run_info.probe_count = dataset.probe_count();
    run_info.slices = slices;
    run_info.chunks_per_iteration = chunks;
    run_info.nranks = partition.nranks();
    run_info.refine_probe = config.refine_probe;
    run_info.update_mode = static_cast<int>(config.mode);
    for (const TileSpec& t : partition.tiles()) {
      run_info.tiles.push_back(ckpt::TileInfo{t.rank, t.owned, t.extended, t.own_probes});
    }
  }

  rt::ClusterSpec cluster_spec;
  cluster_spec.nranks = partition.nranks();
  cluster_spec.transport = config.exec.transport;
  rt::VirtualCluster cluster(cluster_spec);
  cluster.inject_fault(config.fault);
  ParallelResult result;
  if (config.restore != nullptr) result.cost.assign(config.restore->manifest.cost_values);
  std::mutex result_mutex;  // guards result.volume/cost writes from rank 0

  cluster.run([&](rt::RankContext& ctx) {
    const TileSpec& tile = partition.tile(ctx.rank());

    // --- per-rank state (all tracked as this rank's device memory) -------
    // Rank-local copies of this tile's measurements (each GPU holds only
    // its own probe locations' data — the memory-reduction core claim).
    std::vector<RArray2D> local_meas;
    local_meas.reserve(tile.own_probes.size());
    for (index_t id : tile.own_probes) {
      local_meas.push_back(dataset.measurements[static_cast<usize>(id)].clone());
    }

    FramedVolume volume(slices, tile.extended);
    AccumulationBuffer accbuf(slices, tile.extended);

    GradientEngine engine(dataset);
    const real step = config.step * engine.step_scale();
    Probe local_probe = dataset.probe.clone();
    const double probe_energy = local_probe.total_intensity();
    CArray2D probe_grad_field(local_probe.n(), local_probe.n());
    double restored_partial_cost = 0.0;

    if (config.restore != nullptr) {
      const ckpt::Snapshot& snap = *config.restore;
      if (exact_resume) {
        // Same tiling: this rank's shard restores its state verbatim.
        const ckpt::Shard& shard = snap.shards[static_cast<usize>(ctx.rank())];
        copy_region(shard.volume, volume, tile.extended);
        copy_region(shard.accbuf, accbuf.volume(), tile.extended);
        local_probe = Probe(shard.probe.clone());
        if (shard.probe_grad.rows() == probe_grad_field.rows()) {
          probe_grad_field = shard.probe_grad.clone();
        }
        ctx.rng().set_state(shard.rng);
        restored_partial_cost = shard.partial_cost;
      } else {
        // Elastic: re-tile the old owned regions onto this partition,
        // redistributed from the coordinator through the fabric.
        ckpt::scatter_restore(ctx, snap, partition, volume, local_probe.mutable_field());
      }
    } else if (initial != nullptr) {
      copy_region(*initial, volume, tile.extended);
    } else {
      volume.data.fill(cplx(1, 0));
    }

    // Per-rank pass graph (identical structure on every rank — the sync
    // and checkpoint passes are collective): sweep -> gradient sync ->
    // update -> fault point -> mid-iteration checkpoint, then per
    // iteration probe refinement -> convergence record -> checkpoint.
    // Full-batch sweeps auto-divide the host's cores across ranks so
    // K ranks x T threads ~= hardware; buffers allocate inside this rank's
    // tracked scope.
    const int threads = config.exec.threads != 0
                            ? config.exec.threads
                            : std::max(1, ThreadPool::hardware_threads() / ctx.nranks());
    const bool async = config.exec.pipeline == PipelineMode::kAsync;
    const RefineSchedule refine{config.refine_probe, config.probe_warmup_iterations};
    ReconstructionPipeline pipeline;
    auto ckpt_pass =
        std::make_unique<CheckpointPass>(config.exec.checkpoint, run_info, /*deferred=*/async);
    pipeline.emplace<SweepPass>(engine, config.mode, threads, config.exec.schedule,
                                SweepPass::Items{&tile.own_probes, &local_meas}, refine,
                                config.exec.precision);
    pipeline.emplace<SyncGradientsPass>(partition, ctx.rank(), config.sync, config.mode);
    pipeline.emplace<ApplyUpdatePass>(config.mode, /*apply_in_sgd=*/true);
    // The finalize pass precedes the fault point so a snapshot whose shards
    // completed by chunk N is manifest-complete before a rank loss at chunk
    // N can fire — the same latest-complete snapshot a sync run leaves.
    if (async) pipeline.emplace<CheckpointFinalizePass>(*ckpt_pass);
    pipeline.emplace<FaultPointPass>();
    pipeline.emplace<ProbeRefinePass>(refine, config.probe_step, dataset.probe_count(),
                                      probe_energy);
    pipeline.emplace<CostRecordPass>(config.record_cost);
    if (config.exec.progress_every > 0) {
      pipeline.emplace<ProgressPass>(config.exec.progress_every, dataset.probe_count(),
                                     config.iterations);
    }
    pipeline.add(std::move(ckpt_pass));

    SolverState state;
    state.volume = &volume;
    state.probe = &local_probe;
    state.accbuf = &accbuf;
    state.probe_grad_field = &probe_grad_field;
    state.step = step;
    state.ctx = &ctx;
    state.cost = &result.cost;
    state.cost_mutex = &result_mutex;

    PipelineSchedule schedule;
    schedule.iterations = config.iterations;
    schedule.chunks_per_iteration = chunks;
    schedule.start_iteration = start_iteration;
    schedule.start_chunk = start_chunk;
    schedule.restored_partial_cost = restored_partial_cost;
    schedule.items = static_cast<index_t>(tile.own_probes.size());
    pipeline.run(state, schedule, PipelineOptions{config.exec.pipeline});

    FramedVolume stitched = stitch_on_root(ctx, partition, volume);
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.volume = std::move(stitched);
      if (config.refine_probe) result.probe_field = local_probe.field().clone();
    }
  });

  result.breakdown.reserve(static_cast<usize>(partition.nranks()));
  for (int r = 0; r < partition.nranks(); ++r) {
    result.breakdown.push_back(breakdown_from(cluster.profiler(r)));
  }
  result.mean_peak_bytes = cluster.mean_peak_bytes();
  result.max_peak_bytes = cluster.max_peak_bytes();
  result.fabric = cluster.fabric_stats();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ptycho
