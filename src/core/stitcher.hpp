// Final assembly: "abandon halos and stitch together non-halo tiles into a
// final reconstruction V" (Alg. 1 step 20).
#pragma once

#include "partition/tilegrid.hpp"
#include "runtime/cluster.hpp"
#include "tensor/framed.hpp"

namespace ptycho {

/// Collective: every rank sends its *owned* window of `tile_volume` to
/// rank 0; rank 0 returns the assembled full-field volume, all other
/// ranks return an empty FramedVolume.
[[nodiscard]] FramedVolume stitch_on_root(rt::RankContext& ctx, const Partition& partition,
                                          const FramedVolume& tile_volume);

/// Serial helper for tests: assemble from a full set of tile volumes.
[[nodiscard]] FramedVolume stitch_serial(const Partition& partition,
                                         const std::vector<FramedVolume>& tile_volumes);

}  // namespace ptycho
