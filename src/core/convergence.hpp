// Convergence tracking: per-iteration values of the cost F(V) (Fig. 9),
// plus the trajectory/volume comparators that gate the fast precision tier
// against the strict one.
#pragma once

#include <string>
#include <vector>

#include "tensor/framed.hpp"

namespace ptycho {

class CostHistory {
 public:
  void record(double cost) { values_.push_back(cost); }

  /// Replace the history wholesale (checkpoint restore: the completed
  /// iterations' costs carry over so a resumed run reports one continuous
  /// trajectory).
  void assign(std::vector<double> values) { values_ = std::move(values); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double first() const { return values_.front(); }
  [[nodiscard]] double last() const { return values_.back(); }

  /// last / first — the fractional residual cost (< 1 when converging).
  [[nodiscard]] double reduction() const;

  /// Iterations needed to reach `fraction` of the initial cost; -1 if the
  /// curve never gets there.
  [[nodiscard]] long long iterations_to_fraction(double fraction) const;

  /// Largest single-iteration *increase* relative to the running minimum —
  /// an overshoot measure (the Fig. 9 "convergence overshooting" effect).
  [[nodiscard]] double max_overshoot() const;

  void write_csv(const std::string& path, const std::string& series_name) const;

 private:
  std::vector<double> values_;
};

/// Result of comparing two equal-length cost trajectories point by point.
/// This is the fast-tier acceptance comparator: a --precision fast run is
/// admissible when its per-iteration costs never stray more than a small
/// relative epsilon from the strict run's (tolerance gating, in contrast
/// to the strict tier's bitwise guarantees).
struct TrajectoryDeviation {
  double max_relative = 0.0;      ///< worst |a-b| / max(|a|,|b|) over the curve
  long long worst_iteration = -1; ///< where it happened (-1: empty curves)

  [[nodiscard]] bool within(double epsilon) const { return max_relative <= epsilon; }
};

/// Per-iteration relative deviation between two cost trajectories of the
/// same length (both produced by the same schedule, so index i means the
/// same iteration in both). Identical curves — including both-zero points —
/// report 0.
[[nodiscard]] TrajectoryDeviation compare_cost_trajectories(const std::vector<double>& a,
                                                            const std::vector<double>& b);

/// Relative RMS distance sqrt(sum |test-ref|^2 / sum |ref|^2) between two
/// volumes of identical shape — the final-volume half of the fast-tier
/// gate. A zero reference with a non-zero test reports +inf.
[[nodiscard]] double relative_rms(const FramedVolume& test, const FramedVolume& reference);

}  // namespace ptycho
