// Convergence tracking: per-iteration values of the cost F(V) (Fig. 9).
#pragma once

#include <string>
#include <vector>

namespace ptycho {

class CostHistory {
 public:
  void record(double cost) { values_.push_back(cost); }

  /// Replace the history wholesale (checkpoint restore: the completed
  /// iterations' costs carry over so a resumed run reports one continuous
  /// trajectory).
  void assign(std::vector<double> values) { values_ = std::move(values); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double first() const { return values_.front(); }
  [[nodiscard]] double last() const { return values_.back(); }

  /// last / first — the fractional residual cost (< 1 when converging).
  [[nodiscard]] double reduction() const;

  /// Iterations needed to reach `fraction` of the initial cost; -1 if the
  /// curve never gets there.
  [[nodiscard]] long long iterations_to_fraction(double fraction) const;

  /// Largest single-iteration *increase* relative to the running minimum —
  /// an overshoot measure (the Fig. 9 "convergence overshooting" effect).
  [[nodiscard]] double max_overshoot() const;

  void write_csv(const std::string& path, const std::string& series_name) const;

 private:
  std::vector<double> values_;
};

}  // namespace ptycho
