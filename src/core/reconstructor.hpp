// High-level facade: one entry point that dispatches to the serial,
// Gradient Decomposition or Halo Voxel Exchange solver. This is the API
// the examples and the quickstart use.
#pragma once

#include <string>

#include "core/halo_voxel_exchange.hpp"
#include "core/serial_solver.hpp"

namespace ptycho {

enum class Method {
  kSerial,
  kGradientDecomposition,
  kHaloVoxelExchange,
};

[[nodiscard]] const char* to_string(Method method);

struct ReconstructionRequest {
  Method method = Method::kGradientDecomposition;
  int nranks = 4;                ///< ignored for kSerial
  int iterations = 10;           ///< TOTAL iterations (a restore continues toward this)
  real step = real(0.1);
  int passes_per_iteration = 1;  ///< GD comm frequency / serial chunks
  /// Execution knobs — threads, scheduler, pipeline mode, kernel backend,
  /// checkpoint policy, trace/metrics sinks, progress cadence, transport.
  /// Copied wholesale into whichever solver config the method selects;
  /// every field is bitwise-neutral (see ExecOptions).
  ExecOptions exec;
  UpdateMode mode = UpdateMode::kSgd;
  SyncPolicy sync;               ///< GD only
  /// Joint object+probe refinement (serial and GD; the probe-refinement
  /// pass is inserted into the pipeline when set).
  bool refine_probe = false;
  int hve_local_epochs = 1;      ///< HVE only
  int hve_extra_rings = 2;       ///< HVE only
  bool record_cost = true;
  /// Resume from a loaded snapshot — any rank count: the solvers re-tile
  /// elastically when the snapshot's layout differs from this request.
  const ckpt::Snapshot* restore = nullptr;
  /// Fault injection for recovery testing (GD only).
  rt::FaultPlan fault;
};

struct ReconstructionOutcome {
  FramedVolume volume;
  CostHistory cost;
  double wall_seconds = 0.0;
  double mean_peak_bytes = 0.0;  ///< 0 for serial (single address space)
  std::vector<rt::BreakdownEntry> breakdown;  ///< empty for serial
};

class Reconstructor {
 public:
  explicit Reconstructor(const Dataset& dataset) : dataset_(dataset) {}

  /// Run a reconstruction; optionally warm-start from `initial`.
  ///
  /// Self-healing: when `request.exec.max_restarts > 0` and checkpointing
  /// is enabled, a RankFailure does not surface — the facade discovers the
  /// newest valid snapshot in the checkpoint directory, drops the failed
  /// rank if the failure consumed one, bumps the cluster generation and
  /// re-runs toward the original iteration budget (exponential backoff
  /// between attempts, `runtime.recovery.*` metrics emitted). The error
  /// only propagates once the restart budget is exhausted. Distributed
  /// (socket) runs are supervised by their launch parent instead — each
  /// process exits and is respawned with a fresh roster.
  [[nodiscard]] ReconstructionOutcome run(const ReconstructionRequest& request,
                                          const FramedVolume* initial = nullptr) const;

  [[nodiscard]] const Dataset& dataset() const { return dataset_; }

 private:
  /// One un-supervised attempt: dispatch to the selected solver.
  [[nodiscard]] ReconstructionOutcome run_once(const ReconstructionRequest& request,
                                               const FramedVolume* initial) const;

  const Dataset& dataset_;
};

}  // namespace ptycho
