// High-level facade: one entry point that dispatches to the serial,
// Gradient Decomposition or Halo Voxel Exchange solver. This is the API
// the examples and the quickstart use.
#pragma once

#include <string>

#include "core/halo_voxel_exchange.hpp"
#include "core/serial_solver.hpp"

namespace ptycho {

enum class Method {
  kSerial,
  kGradientDecomposition,
  kHaloVoxelExchange,
};

[[nodiscard]] const char* to_string(Method method);

struct ReconstructionRequest {
  Method method = Method::kGradientDecomposition;
  int nranks = 4;                ///< ignored for kSerial
  int iterations = 10;           ///< TOTAL iterations (a restore continues toward this)
  real step = real(0.1);
  int passes_per_iteration = 1;  ///< GD comm frequency / serial chunks
  /// Sweep worker threads (0 = auto: hardware concurrency for serial,
  /// divided across ranks for GD). Full-batch output is bitwise identical
  /// for any value; SGD sweeps ignore it (sequential by construction).
  int threads = 0;
  /// Sweep scheduler for full-batch sweeps (static partition,
  /// work-stealing, or measured auto-selection). Like `threads` and
  /// `backend`, a pure performance knob: output is bitwise identical
  /// across schedulers.
  SweepSchedule schedule = SweepSchedule::kAuto;
  /// Pass-graph scheduling: kSync is strict list order; kAsync overlaps
  /// background checkpoint I/O with later chunks behind hazard fences.
  /// Output is bitwise identical either way.
  PipelineMode pipeline = PipelineMode::kSync;
  /// Kernel backend: "auto" (CPU detection), "simd" or "scalar". Applied
  /// before the solver spawns workers; "" leaves the process-wide selection
  /// untouched. Output is bitwise identical across backends (the backend
  /// layer's contract), so this is a pure performance knob.
  std::string backend;
  UpdateMode mode = UpdateMode::kSgd;
  SyncPolicy sync;               ///< GD only
  /// Joint object+probe refinement (serial and GD; the probe-refinement
  /// pass is inserted into the pipeline when set).
  bool refine_probe = false;
  int hve_local_epochs = 1;      ///< HVE only
  int hve_extra_rings = 2;       ///< HVE only
  bool record_cost = true;
  /// Periodic checkpointing (serial and GD; not supported for HVE).
  ckpt::Policy checkpoint;
  /// Resume from a loaded snapshot — any rank count: the solvers re-tile
  /// elastically when the snapshot's layout differs from this request.
  const ckpt::Snapshot* restore = nullptr;
  /// Fault injection for recovery testing (GD only).
  rt::FaultPlan fault;
  /// Write a Chrome trace_event JSON (Perfetto-loadable) of the run's
  /// spans to this path ("" disables tracing).
  std::string trace_out;
  /// Write the metrics-registry snapshot (ptycho.metrics.v1 JSON) to this
  /// path ("" disables metrics collection).
  std::string metrics_out;
  /// Log a one-line progress report every N iterations (0 disables).
  int progress_every = 0;
};

struct ReconstructionOutcome {
  FramedVolume volume;
  CostHistory cost;
  double wall_seconds = 0.0;
  double mean_peak_bytes = 0.0;  ///< 0 for serial (single address space)
  std::vector<rt::BreakdownEntry> breakdown;  ///< empty for serial
};

class Reconstructor {
 public:
  explicit Reconstructor(const Dataset& dataset) : dataset_(dataset) {}

  /// Run a reconstruction; optionally warm-start from `initial`.
  [[nodiscard]] ReconstructionOutcome run(const ReconstructionRequest& request,
                                          const FramedVolume* initial = nullptr) const;

  [[nodiscard]] const Dataset& dataset() const { return dataset_; }

 private:
  const Dataset& dataset_;
};

}  // namespace ptycho
