#include "core/sweep.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptycho {

BatchSweeper::BatchSweeper(const GradientEngine& engine, SweepScheduler& scheduler,
                           compact::Format compact_trans)
    : engine_(engine),
      scheduler_(scheduler),
      // The sweep's only volume mutations go through apply_gradient, which
      // bumps the revision — the transmittance cache's validity contract
      // holds here, for every slot of the pool.
      workspaces_(static_cast<index_t>(engine.dataset().spec.grid.probe_n),
                  engine.dataset().spec.slices, scheduler.slots(),
                  /*cache_transmittance=*/true, compact_trans) {
  const auto n = static_cast<index_t>(engine_.dataset().spec.grid.probe_n);
  const index_t slices = engine_.dataset().spec.slices;
  item_grad_.reserve(static_cast<usize>(kBatch));
  item_probe_grad_.reserve(static_cast<usize>(kBatch));
  for (index_t k = 0; k < kBatch; ++k) {
    item_grad_.emplace_back(slices, Rect{0, 0, n, n});
    item_probe_grad_.emplace_back(n, n);
  }
  item_cost_.assign(static_cast<usize>(kBatch), 0.0);
}

void BatchSweeper::set_compact_measurements(const compact::FrameStack* frames) {
  compact_meas_ = (frames != nullptr && !frames->empty()) ? frames : nullptr;
  if (compact_meas_ == nullptr) return;
  // Size the per-slot decode scratch now, on the calling thread, so
  // per-rank memory tracking charges it to the owning rank.
  for (int s = 0; s < workspaces_.slots(); ++s) {
    if (workspaces_[s].meas_scratch.empty()) {
      workspaces_[s].meas_scratch = RArray2D(compact_meas_->rows(), compact_meas_->cols());
    }
  }
}

void BatchSweeper::sweep(index_t begin, index_t end, const Probe& probe,
                         const FramedVolume& volume, AccumulationBuffer& accbuf, double& cost,
                         View2D<cplx>* probe_grad, ProbeIdFn probe_id_of,
                         MeasurementFn measurement_of) {
  if (end > begin) {
    static obs::Counter& probes = obs::registry().counter("sweep_probes_total");
    probes.add(static_cast<std::uint64_t>(end - begin));
  }
  for (index_t batch = begin; batch < end; batch += kBatch) {
    const index_t count = std::min(kBatch, end - batch);
    const auto evaluate = [&](index_t k, int slot) {
      const index_t item = batch + k;
      const index_t id = probe_id_of(item);
      const auto uk = static_cast<usize>(k);
      FramedVolume& grad = item_grad_[uk];
      grad.frame = engine_.window(id);
      grad.data.fill(cplx{});
      View2D<cplx> pg_view;
      View2D<cplx>* pg = nullptr;
      if (probe_grad != nullptr) {
        item_probe_grad_[uk].fill(cplx{});
        pg_view = item_probe_grad_[uk].view();
        pg = &pg_view;
      }
      MultisliceWorkspace& ws = workspaces_[slot];
      View2D<const real> meas;
      if (compact_meas_ != nullptr) {
        compact_meas_->decode_into(static_cast<usize>(item), ws.meas_scratch.view());
        meas = ws.meas_scratch.view();
      } else {
        meas = measurement_of(item);
      }
      item_cost_[uk] = engine_.probe_gradient_joint(id, probe, meas, volume, grad, ws, pg);
    };
    {
      // Phase is kNone: the pipeline's SweepPass span already owns the
      // compute attribution; this one only adds batch granularity to traces.
      obs::SpanScope batch_span("sweep-batch");
      scheduler_.dispatch(0, count, evaluate);
    }
    // Ordered merge: identical association to the sequential per-probe
    // loop, so results do not depend on the thread count or scheduler.
    for (index_t k = 0; k < count; ++k) {
      const auto uk = static_cast<usize>(k);
      accbuf.accumulate(item_grad_[uk], item_grad_[uk].frame);
      cost += item_cost_[uk];
      if (probe_grad != nullptr) add(item_probe_grad_[uk].view(), *probe_grad);
    }
  }
}

}  // namespace ptycho
