// Analytic per-GPU memory model at paper scale (Tables II/III memory rows).
//
// The model is pure geometry: it builds the same Partition the solver
// would use, but for the paper's dataset dimensions, and counts the bytes
// a rank must resident-allocate:
//   - tile_buffers complex tile-sized arrays (V_k, AccBuf, per-probe
//     gradient, update scratch, ...) over the rank's *extended* rect,
//   - the rank's (own + replicated) measurement frames at the effective
//     compute-window resolution,
//   - the multislice workspace (per-slice intermediates for backprop).
// The effective window is the probe-disc footprint (2 x 600 pm in the
// paper = 120 px at 10 pm/px) — production codes crop the object patch
// and bin the detector to this support, which is also what makes the
// paper's tiny 0.18 GB/GPU at 4158 GPUs possible at all (a full 1024^2
// per-slice workspace alone would exceed it). See EXPERIMENTS.md.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "partition/tilegrid.hpp"

namespace ptycho {

struct PaperMemoryConfig {
  /// Complex tile-sized buffers resident per rank.
  int tile_buffers = 6;
  /// Effective compute window (probe-disc footprint) in pixels.
  index_t eff_window_px = 120;
  /// HVE probe-replication rings.
  int hve_extra_rings = 2;
};

struct MemoryEstimate {
  std::vector<double> per_rank_bytes;
  double mean_bytes = 0.0;
  double max_bytes = 0.0;
  [[nodiscard]] double mean_gb() const { return mean_bytes / (1024.0 * 1024.0 * 1024.0); }
  [[nodiscard]] double max_gb() const { return max_bytes / (1024.0 * 1024.0 * 1024.0); }
};

/// Scan pattern matching the paper dataset at the effective window size:
/// same probe count and grid, raster step chosen so probe centers span the
/// full reconstruction field.
[[nodiscard]] ScanPattern make_paper_scan(const PaperDataset& dataset, index_t eff_window_px);

/// Partition of the paper-scale field for `nranks` GPUs.
[[nodiscard]] Partition make_paper_partition(const ScanPattern& scan, int nranks,
                                             Strategy strategy, int hve_extra_rings = 2);

/// The memory model proper.
[[nodiscard]] MemoryEstimate estimate_paper_memory(const Partition& partition,
                                                   const PaperDataset& dataset,
                                                   const PaperMemoryConfig& config = {});

}  // namespace ptycho
