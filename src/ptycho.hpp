// Umbrella header: everything a downstream user of the ptycho library
// needs. Include this (or the individual module headers listed in
// README.md's architecture table for faster builds).
#pragma once

#include "backend/kernels.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

#include "tensor/array.hpp"
#include "tensor/compact.hpp"
#include "tensor/framed.hpp"
#include "tensor/ops.hpp"
#include "tensor/region.hpp"

#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

#include "fft/fft2d.hpp"
#include "fft/plan.hpp"

#include "physics/grid.hpp"
#include "physics/multislice.hpp"
#include "physics/probe.hpp"
#include "physics/propagator.hpp"
#include "physics/scan.hpp"

#include "data/dataset.hpp"
#include "data/io.hpp"
#include "data/simulate.hpp"
#include "data/synthetic.hpp"

#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/perfmodel.hpp"
#include "runtime/topology.hpp"
#include "runtime/transport.hpp"

#include "partition/assignment.hpp"
#include "partition/overlap.hpp"
#include "partition/tilegrid.hpp"

#include "ckpt/serialize.hpp"
#include "ckpt/snapshot.hpp"

#include "core/convergence.hpp"
#include "core/exec_options.hpp"
#include "core/gradient_decomposition.hpp"
#include "core/halo_voxel_exchange.hpp"
#include "core/memory_model.hpp"
#include "core/passes.hpp"
#include "core/pipeline.hpp"
#include "core/precision.hpp"
#include "core/reconstructor.hpp"
#include "core/seam_metric.hpp"
#include "core/serial_solver.hpp"
#include "core/stitcher.hpp"
#include "core/sweep.hpp"
