// Planned complex-to-complex FFTs (the cuFFT substitute).
//
// Conventions (used consistently by the physics layer and its adjoints):
//   forward:  X[k] = sum_j x[j] exp(-2πi jk / n)      (unnormalized)
//   inverse:  x[j] = (1/n) sum_k X[k] exp(+2πi jk/n)
// so inverse(forward(x)) == x, and the adjoint of `forward` is
// n * inverse (used by the gradient engine — see core/gradient_engine.cpp).
//
// Power-of-two sizes run the iterative radix-2 Cooley–Tukey kernel; any
// other size runs Bluestein's chirp-z algorithm on a padded power-of-two
// plan. Plans are immutable after construction and safe to share across
// rank threads (scratch is per-thread).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"

namespace ptycho::fft {

[[nodiscard]] constexpr bool is_pow2(usize n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
[[nodiscard]] usize next_pow2(usize n);

/// One-dimensional plan for a fixed size n >= 1.
class Plan1D {
 public:
  explicit Plan1D(usize n);
  ~Plan1D();
  Plan1D(Plan1D&&) noexcept;
  Plan1D& operator=(Plan1D&&) noexcept;
  Plan1D(const Plan1D&) = delete;
  Plan1D& operator=(const Plan1D&) = delete;

  [[nodiscard]] usize size() const { return n_; }

  /// In-place transform of `n` contiguous elements.
  void forward(cplx* data) const;
  void inverse(cplx* data) const;

  /// Scratch elements a caller must provide to the strided entry points for
  /// a batch of `count` interleaved signals (0 for power-of-two sizes; the
  /// Bluestein path needs a padded m x count tile).
  [[nodiscard]] usize strided_scratch_size(usize count) const;

  /// Batched strided transform of `count` interleaved signals: element j of
  /// signal b sits at data[j*stride + b] (stride >= count). The butterflies
  /// run across the contiguous lane dimension, so a column block gathered
  /// into this layout vectorizes where the one-column-at-a-time path cannot.
  /// `scratch` must hold strided_scratch_size(count) elements (may be null
  /// when that is 0). Each lane runs the same operation sequence as the
  /// contiguous single-signal transform.
  void forward_strided(cplx* data, usize stride, usize count, cplx* scratch) const;
  void inverse_strided(cplx* data, usize stride, usize count, cplx* scratch) const;

 private:
  struct Radix2Tables;
  struct BluesteinTables;

  usize n_ = 0;
  std::unique_ptr<Radix2Tables> radix2_;        // set when n is a power of two
  std::unique_ptr<BluesteinTables> bluestein_;  // set otherwise

  friend struct PlanAccess;
};

namespace detail {
/// Radix-2 kernel: in-place DIT FFT on pow2-sized data. `sign` is -1 for
/// forward, +1 for inverse (no normalization applied here).
void radix2_transform(cplx* data, usize n, int sign, const std::vector<usize>& bitrev,
                      const std::vector<cplx>& twiddles_fwd);

/// Batched variant of radix2_transform: `count` interleaved signals with
/// element j of signal b at data[j*stride + b]. Butterflies loop over the
/// contiguous lane dimension (unit stride), so the hot inner loop
/// vectorizes across the batch.
void radix2_transform_strided(cplx* data, usize n, usize stride, usize count, int sign,
                              const std::vector<usize>& bitrev,
                              const std::vector<cplx>& twiddles_fwd);

/// Build bit-reversal permutation for size n (pow2).
[[nodiscard]] std::vector<usize> make_bitrev(usize n);

/// Twiddle table: for each stage, the roots exp(-2πi k / len).
[[nodiscard]] std::vector<cplx> make_twiddles(usize n);
}  // namespace detail

}  // namespace ptycho::fft
