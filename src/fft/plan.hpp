// Planned complex-to-complex FFTs (the cuFFT substitute).
//
// Conventions (used consistently by the physics layer and its adjoints):
//   forward:  X[k] = sum_j x[j] exp(-2πi jk / n)      (unnormalized)
//   inverse:  x[j] = (1/n) sum_k X[k] exp(+2πi jk/n)
// so inverse(forward(x)) == x, and the adjoint of `forward` is
// n * inverse (used by the gradient engine — see core/gradient_engine.cpp).
//
// Power-of-two sizes run the iterative radix-2 Cooley–Tukey kernel; any
// other size runs Bluestein's chirp-z algorithm on a padded power-of-two
// plan. Plans are immutable after construction and safe to share across
// rank threads (scratch is per-thread).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"

namespace ptycho::fft {

/// Tunables of the fused spectral engine, initialized once from the
/// environment (each defaults to on; set the variable to "0" to disable):
///   PTYCHO_FFT_RADIX4       - fused radix-4 stage pairs on power-of-two sizes
///   PTYCHO_FFT_FUSED        - fold spectral multiplies/scales into FFT passes
///                             (the propagator/multislice escape hatch for A/B)
///   PTYCHO_FFT_BATCHED_ROWS - run the 2-D row pass 16 rows per strided call
/// Plans snapshot `radix4`/`batched_rows` at construction; `fused` is read
/// at every propagator apply. Like backend::select, set_engine_flags is a
/// startup knob: call it before plans are built and worker threads launch.
struct EngineFlags {
  bool radix4 = true;
  bool fused = true;
  bool batched_rows = true;
};

[[nodiscard]] const EngineFlags& engine_flags();
void set_engine_flags(const EngineFlags& flags);

[[nodiscard]] constexpr bool is_pow2(usize n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
[[nodiscard]] usize next_pow2(usize n);

/// One-dimensional plan for a fixed size n >= 1.
class Plan1D {
 public:
  explicit Plan1D(usize n);
  ~Plan1D();
  Plan1D(Plan1D&&) noexcept;
  Plan1D& operator=(Plan1D&&) noexcept;
  Plan1D(const Plan1D&) = delete;
  Plan1D& operator=(const Plan1D&) = delete;

  [[nodiscard]] usize size() const { return n_; }

  /// In-place transform of `n` contiguous elements.
  void forward(cplx* data) const;
  void inverse(cplx* data) const;

  /// Scratch elements a caller must provide to the strided entry points for
  /// a batch of `count` interleaved signals (0 for power-of-two sizes; the
  /// Bluestein path needs a padded m x count tile).
  [[nodiscard]] usize strided_scratch_size(usize count) const;

  /// Batched strided transform of `count` interleaved signals: element j of
  /// signal b sits at data[j*stride + b] (stride >= count). The butterflies
  /// run across the contiguous lane dimension, so a column block gathered
  /// into this layout vectorizes where the one-column-at-a-time path cannot.
  /// `scratch` must hold strided_scratch_size(count) elements (may be null
  /// when that is 0). Each lane runs the same operation sequence as the
  /// contiguous single-signal transform.
  void forward_strided(cplx* data, usize stride, usize count, cplx* scratch) const;
  void inverse_strided(cplx* data, usize stride, usize count, cplx* scratch) const;

 private:
  struct Radix2Tables;
  struct BluesteinTables;

  usize n_ = 0;
  std::unique_ptr<Radix2Tables> radix2_;        // set when n is a power of two
  std::unique_ptr<BluesteinTables> bluestein_;  // set otherwise

  friend struct PlanAccess;
};

namespace detail {
/// Radix-2 kernel: in-place DIT FFT on pow2-sized data. `sign` is -1 for
/// forward, +1 for inverse (no normalization applied here).
void radix2_transform(cplx* data, usize n, int sign, const std::vector<usize>& bitrev,
                      const std::vector<cplx>& twiddles_fwd);

/// Batched variant of radix2_transform: `count` interleaved signals with
/// element j of signal b at data[j*stride + b]. Butterflies loop over the
/// contiguous lane dimension (unit stride), so the hot inner loop
/// vectorizes across the batch.
void radix2_transform_strided(cplx* data, usize n, usize stride, usize count, int sign,
                              const std::vector<usize>& bitrev,
                              const std::vector<cplx>& twiddles_fwd);

/// Build bit-reversal permutation for size n (pow2).
[[nodiscard]] std::vector<usize> make_bitrev(usize n);

/// Twiddle table: for each stage, the roots exp(-2πi k / len).
[[nodiscard]] std::vector<cplx> make_twiddles(usize n);

/// Radix-4 stage schedule for a pow2 size: consecutive radix-2 stages fused
/// in pairs over the same bit-reversal ordering and stage-block layout, so
/// the permutation and twiddle conventions of radix2_transform carry over
/// unchanged. For odd log2(n) a single radix-2 stage at half-length 1
/// (twiddle 1, multiply-free) runs first, then every remaining stage pair is
/// one radix-4 butterfly sweep: half the passes over the data and three
/// complex multiplies per four outputs instead of four.
struct Radix4Tables {
  /// Quarter-length h and offset of this fused stage's twiddles in `tw`
  /// (layout per stage: w1[0..h) | w2[0..h) | w3[0..h), where
  /// w1 = exp(-2πi k/2h), w2 = exp(-2πi k/4h), w3 = exp(-2πi 3k/4h)).
  struct Stage {
    usize h;
    usize offset;
  };
  bool leading_radix2 = false;  // log2(n) odd: one plain radix-2 stage first
  std::vector<Stage> stages;
  std::vector<cplx> tw;
};

/// Build the radix-4 schedule + twiddles for pow2 size n (n >= 1).
[[nodiscard]] Radix4Tables make_radix4_tables(usize n);

/// In-place DIT FFT on pow2-sized data through fused radix-4 stage pairs.
/// Same conventions as radix2_transform (bit-reversal first, `sign` = -1
/// forward / +1 inverse, unnormalized); only the association of the
/// butterfly arithmetic differs, so results match radix2_transform to
/// rounding, not bitwise.
void radix4_transform(cplx* data, usize n, int sign, const std::vector<usize>& bitrev,
                      const Radix4Tables& r4);

/// Batched strided variant of radix4_transform (layout and conventions of
/// radix2_transform_strided).
void radix4_transform_strided(cplx* data, usize n, usize stride, usize count, int sign,
                              const std::vector<usize>& bitrev, const Radix4Tables& r4);
}  // namespace detail

}  // namespace ptycho::fft
