// Fused radix-4 stage pairs for the power-of-two path. Two consecutive
// radix-2 stages (half-lengths h and 2h) over bit-reversal-ordered data
// form one radix-4 butterfly sweep: the stage-block layout, permutation
// and twiddle conventions of radix2.cpp carry over unchanged, but each
// element is loaded and stored once per pair of stages instead of twice,
// and the trivial +-i twiddle of the second stage becomes an exact re/im
// swap, cutting the complex multiplies from four to three per four points.
#include <cmath>
#include <utility>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "fft/plan.hpp"

namespace ptycho::fft::detail {

namespace {
cplx unit_root(double numerator, double denominator) {
  const double angle = -2.0 * 3.14159265358979323846 * numerator / denominator;
  return cplx(static_cast<real>(std::cos(angle)), static_cast<real>(std::sin(angle)));
}
}  // namespace

Radix4Tables make_radix4_tables(usize n) {
  PTYCHO_CHECK(is_pow2(n), "radix-4 tables require a power-of-two size");
  Radix4Tables r4;
  usize bits = 0;
  while ((usize(1) << bits) < n) ++bits;
  r4.leading_radix2 = (bits % 2) != 0;
  usize h = r4.leading_radix2 ? 2 : 1;
  for (; 4 * h <= n; h *= 4) {
    r4.stages.push_back({h, r4.tw.size()});
    r4.tw.resize(r4.tw.size() + 3 * h);
    cplx* w1 = r4.tw.data() + r4.stages.back().offset;
    cplx* w2 = w1 + h;
    cplx* w3 = w2 + h;
    for (usize k = 0; k < h; ++k) {
      const auto dk = static_cast<double>(k);
      const auto d4h = static_cast<double>(4 * h);
      w1[k] = unit_root(2.0 * dk, d4h);
      w2[k] = unit_root(dk, d4h);
      w3[k] = unit_root(3.0 * dk, d4h);
    }
  }
  return r4;
}

void radix4_transform(cplx* data, usize n, int sign, const std::vector<usize>& bitrev,
                      const Radix4Tables& r4) {
  for (usize i = 0; i < n; ++i) {
    const usize j = bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const bool conj_tw = sign > 0;
  const backend::Kernels& kern = backend::kernels();
  if (r4.leading_radix2) {
    // Odd log2: one radix-2 stage at half-length 1. Its twiddle is exp(0),
    // so the butterfly is a pure add/sub pair — no multiply at all.
    for (usize base = 0; base < n; base += 2) {
      const cplx u = data[base];
      const cplx t = data[base + 1];
      data[base] = u + t;
      data[base + 1] = u - t;
    }
  }
  for (const Radix4Tables::Stage& st : r4.stages) {
    const usize h = st.h;
    const cplx* tw1 = r4.tw.data() + st.offset;
    const cplx* tw2 = tw1 + h;
    const cplx* tw3 = tw2 + h;
    if (h < 4) {
      // Blocks below any vector width (these hold most of the blocks): run
      // the backend butterfly4 operation sequence inline to spare the
      // dispatch overhead. The per-element arithmetic is identical, so the
      // result does not depend on the selected backend.
      for (usize base = 0; base < n; base += 4 * h) {
        for (usize k = 0; k < h; ++k) {
          const cplx w1 = conj_tw ? std::conj(tw1[k]) : tw1[k];
          const cplx w2 = conj_tw ? std::conj(tw2[k]) : tw2[k];
          const cplx w3 = conj_tw ? std::conj(tw3[k]) : tw3[k];
          cplx* p0 = data + base + k;
          const cplx u1 = cmul(w1, p0[h]);
          const cplx u2 = cmul(w2, p0[2 * h]);
          const cplx u3 = cmul(w3, p0[3 * h]);
          const cplx z = p0[0];
          const cplx s0 = z + u1;
          const cplx s1 = z - u1;
          const cplx s2 = u2 + u3;
          const cplx s3 = u2 - u3;
          const cplx r = conj_tw ? cplx(-s3.imag(), s3.real()) : cplx(s3.imag(), -s3.real());
          p0[0] = s0 + s2;
          p0[2 * h] = s0 - s2;
          p0[h] = s1 + r;
          p0[3 * h] = s1 - r;
        }
      }
      continue;
    }
    for (usize base = 0; base < n; base += 4 * h) {
      kern.butterfly4_block(data + base, data + base + h, data + base + 2 * h,
                            data + base + 3 * h, tw1, tw2, tw3, conj_tw, h);
    }
  }
}

void radix4_transform_strided(cplx* data, usize n, usize stride, usize count, int sign,
                              const std::vector<usize>& bitrev, const Radix4Tables& r4) {
  // Bit-reversal permutation: swap whole lane rows once per pair.
  for (usize i = 0; i < n; ++i) {
    const usize j = bitrev[i];
    if (i < j) {
      cplx* a = data + i * stride;
      cplx* b = data + j * stride;
      for (usize lane = 0; lane < count; ++lane) std::swap(a[lane], b[lane]);
    }
  }
  const bool conj_tw = sign > 0;
  const backend::Kernels& kern = backend::kernels();
  if (r4.leading_radix2) {
    // The same multiply-free add/sub pairs as the contiguous path — not a
    // unit-twiddle cmul, whose 0*x terms would flip signed zeros and break
    // bitwise parity between the batched and per-row 2-D row passes. The
    // plain add/sub loop over the contiguous lane dimension auto-vectorizes.
    for (usize base = 0; base < n; base += 2) {
      cplx* a = data + base * stride;
      cplx* b = data + (base + 1) * stride;
      for (usize lane = 0; lane < count; ++lane) {
        const cplx u = a[lane];
        const cplx t = b[lane];
        a[lane] = u + t;
        b[lane] = u - t;
      }
    }
  }
  // Each (base, k) pair touches four lane rows per call — a quarter of the
  // dispatched calls of the radix-2 strided sweep for the same data.
  for (const Radix4Tables::Stage& st : r4.stages) {
    const usize h = st.h;
    const cplx* tw1 = r4.tw.data() + st.offset;
    const cplx* tw2 = tw1 + h;
    const cplx* tw3 = tw2 + h;
    for (usize base = 0; base < n; base += 4 * h) {
      for (usize k = 0; k < h; ++k) {
        cplx w1 = tw1[k];
        cplx w2 = tw2[k];
        cplx w3 = tw3[k];
        if (conj_tw) {
          w1 = std::conj(w1);
          w2 = std::conj(w2);
          w3 = std::conj(w3);
        }
        cplx* p0 = data + (base + k) * stride;
        kern.butterfly4_lanes(p0, p0 + h * stride, p0 + 2 * h * stride, p0 + 3 * h * stride, w1,
                              w2, w3, conj_tw, count);
      }
    }
  }
}

}  // namespace ptycho::fft::detail
