#include "fft/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "backend/kernels.hpp"
#include "common/error.hpp"

namespace ptycho::fft {

namespace {
/// A flag variable disables its feature iff set to exactly "0"; unset,
/// empty or anything else leaves the feature on (misspellings must never
/// silently turn the fast path off).
bool env_flag_on(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr || !(v[0] == '0' && v[1] == '\0');
}

EngineFlags& mutable_engine_flags() {
  static EngineFlags flags = [] {
    EngineFlags f;
    f.radix4 = env_flag_on("PTYCHO_FFT_RADIX4");
    f.fused = env_flag_on("PTYCHO_FFT_FUSED");
    f.batched_rows = env_flag_on("PTYCHO_FFT_BATCHED_ROWS");
    return f;
  }();
  return flags;
}
}  // namespace

const EngineFlags& engine_flags() { return mutable_engine_flags(); }

void set_engine_flags(const EngineFlags& flags) { mutable_engine_flags() = flags; }

usize next_pow2(usize n) {
  // Guard the doubling loop: for n above the largest representable power
  // of two, p would wrap to 0 and the loop would never terminate.
  constexpr usize kMaxPow2 = usize{1} << (std::numeric_limits<usize>::digits - 1);
  PTYCHO_REQUIRE(n <= kMaxPow2,
                 "next_pow2: no power of two >= " << n << " fits in usize");
  usize p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct Plan1D::Radix2Tables {
  std::vector<usize> bitrev;
  std::vector<cplx> twiddles;
  detail::Radix4Tables radix4;  // populated iff use_radix4
  bool use_radix4 = false;      // engine_flags().radix4 at construction
};

struct Plan1D::BluesteinTables {
  usize m = 0;                      // padded pow2 size >= 2n-1
  std::vector<cplx> chirp;          // a_k = exp(-iπ k² / n), k in [0, n)
  std::vector<cplx> filter_fft;     // forward FFT of b (conjugate chirp, wrapped)
  std::vector<usize> bitrev;        // tables for size m
  std::vector<cplx> twiddles;
  detail::Radix4Tables radix4;      // populated iff use_radix4
  bool use_radix4 = false;
};

namespace {
// Chirp phase exp(-iπ k² / n) evaluated in double with k² reduced mod 2n
// (k² / n mod 2 is what matters for the complex exponential) to preserve
// accuracy for large k.
cplx chirp_value(usize k, usize n, int sign) {
  const usize k2mod = static_cast<usize>(
      (static_cast<unsigned long long>(k) * k) % (2ULL * n));
  const double angle = sign * 3.14159265358979323846 * static_cast<double>(k2mod) /
                       static_cast<double>(n);
  return cplx(static_cast<real>(std::cos(angle)), static_cast<real>(std::sin(angle)));
}
}  // namespace

namespace {
/// Pow2 kernel selection: the radix-4 schedule when the plan was built with
/// it, the classic radix-2 sweep otherwise.
template <typename Tables>
void run_pow2(cplx* data, usize n, int sign, const Tables& t) {
  if (t.use_radix4) {
    detail::radix4_transform(data, n, sign, t.bitrev, t.radix4);
  } else {
    detail::radix2_transform(data, n, sign, t.bitrev, t.twiddles);
  }
}

template <typename Tables>
void run_pow2_strided(cplx* data, usize n, usize stride, usize count, int sign,
                      const Tables& t) {
  if (t.use_radix4) {
    detail::radix4_transform_strided(data, n, stride, count, sign, t.bitrev, t.radix4);
  } else {
    detail::radix2_transform_strided(data, n, stride, count, sign, t.bitrev, t.twiddles);
  }
}
}  // namespace

Plan1D::Plan1D(usize n) : n_(n) {
  PTYCHO_REQUIRE(n >= 1, "FFT size must be >= 1");
  const bool radix4 = engine_flags().radix4;
  // Exactly one stage-schedule table is built — the other would never be
  // read (run_pow2 dispatches on use_radix4), and the tables are O(n).
  if (is_pow2(n)) {
    radix2_ = std::make_unique<Radix2Tables>();
    radix2_->bitrev = detail::make_bitrev(n);
    radix2_->use_radix4 = radix4;
    if (radix4) {
      radix2_->radix4 = detail::make_radix4_tables(n);
    } else {
      radix2_->twiddles = detail::make_twiddles(n);
    }
    return;
  }
  bluestein_ = std::make_unique<BluesteinTables>();
  auto& bt = *bluestein_;
  bt.m = next_pow2(2 * n - 1);
  bt.bitrev = detail::make_bitrev(bt.m);
  bt.use_radix4 = radix4;
  if (radix4) {
    bt.radix4 = detail::make_radix4_tables(bt.m);
  } else {
    bt.twiddles = detail::make_twiddles(bt.m);
  }
  bt.chirp.resize(n);
  for (usize k = 0; k < n; ++k) bt.chirp[k] = chirp_value(k, n, -1);
  // Filter b[j] = conj(chirp)[|j|] wrapped onto [0, m).
  std::vector<cplx> filter(bt.m, cplx{});
  for (usize k = 0; k < n; ++k) {
    const cplx b = chirp_value(k, n, +1);
    filter[k] = b;
    if (k != 0) filter[bt.m - k] = b;
  }
  run_pow2(filter.data(), bt.m, -1, bt);
  bt.filter_fft = std::move(filter);
}

Plan1D::~Plan1D() = default;
Plan1D::Plan1D(Plan1D&&) noexcept = default;
Plan1D& Plan1D::operator=(Plan1D&&) noexcept = default;

namespace {
thread_local std::vector<cplx> t_scratch;
}

void Plan1D::forward(cplx* data) const {
  if (radix2_) {
    run_pow2(data, n_, -1, *radix2_);
    return;
  }
  const auto& bt = *bluestein_;
  const backend::Kernels& kern = backend::kernels();
  t_scratch.assign(bt.m, cplx{});
  kern.chirp_mul_lanes(t_scratch.data(), data, bt.chirp.data(), real(1), n_);
  run_pow2(t_scratch.data(), bt.m, -1, bt);
  kern.cmul_lanes(t_scratch.data(), t_scratch.data(), bt.filter_fft.data(), bt.m);
  run_pow2(t_scratch.data(), bt.m, +1, bt);
  const real inv_m = real(1) / static_cast<real>(bt.m);
  kern.chirp_mul_lanes(data, t_scratch.data(), bt.chirp.data(), inv_m, n_);
}

void Plan1D::inverse(cplx* data) const {
  const backend::Kernels& kern = backend::kernels();
  const real inv_n = real(1) / static_cast<real>(n_);
  if (radix2_) {
    // The pow2 kernels take the sign directly: one conjugated-twiddle sweep
    // plus one scale pass, instead of the two extra conjugation passes of
    // the generic trick below.
    run_pow2(data, n_, +1, *radix2_);
    kern.scale_lanes(data, data, cplx(inv_n, 0), n_);
    return;
  }
  // inverse(x) = conj(forward(conj(x))) / n — reuses the forward kernels so
  // Bluestein sizes get the inverse for free.
  kern.conj_scale_lanes(data, data, real(1), n_);
  forward(data);
  kern.conj_scale_lanes(data, data, inv_n, n_);
}

usize Plan1D::strided_scratch_size(usize count) const {
  return bluestein_ ? bluestein_->m * count : 0;
}

void Plan1D::forward_strided(cplx* data, usize stride, usize count, cplx* scratch) const {
  PTYCHO_REQUIRE(count >= 1 && stride >= count, "strided batch: need stride >= count >= 1");
  if (radix2_) {
    run_pow2_strided(data, n_, stride, count, -1, *radix2_);
    return;
  }
  // Bluestein on the whole batch at once: the padded convolution runs
  // through the strided pow2 kernel with the lanes packed contiguously.
  PTYCHO_REQUIRE(scratch != nullptr, "strided batch: Bluestein sizes need caller scratch");
  const auto& bt = *bluestein_;
  const backend::Kernels& kern = backend::kernels();
  std::fill_n(scratch, bt.m * count, cplx{});
  for (usize k = 0; k < n_; ++k) {
    kern.scale_lanes(scratch + k * count, data + k * stride, bt.chirp[k], count);
  }
  run_pow2_strided(scratch, bt.m, count, count, -1, bt);
  for (usize k = 0; k < bt.m; ++k) {
    cplx* row = scratch + k * count;
    kern.scale_lanes(row, row, bt.filter_fft[k], count);
  }
  run_pow2_strided(scratch, bt.m, count, count, +1, bt);
  const real inv_m = real(1) / static_cast<real>(bt.m);
  for (usize k = 0; k < n_; ++k) {
    kern.scale_chirp_lanes(data + k * stride, scratch + k * count, inv_m, bt.chirp[k], count);
  }
}

void Plan1D::inverse_strided(cplx* data, usize stride, usize count, cplx* scratch) const {
  PTYCHO_REQUIRE(count >= 1 && stride >= count, "strided batch: need stride >= count >= 1");
  const backend::Kernels& kern = backend::kernels();
  const real inv_n = real(1) / static_cast<real>(n_);
  if (radix2_) {
    // Direct conjugated-twiddle sweep + normalization, as in the contiguous
    // inverse. A dense batch (stride == count, the 2-D tile layout) scales
    // in one dispatched call over the whole tile.
    run_pow2_strided(data, n_, stride, count, +1, *radix2_);
    if (stride == count) {
      kern.scale_lanes(data, data, cplx(inv_n, 0), n_ * count);
    } else {
      for (usize k = 0; k < n_; ++k) {
        cplx* row = data + k * stride;
        kern.scale_lanes(row, row, cplx(inv_n, 0), count);
      }
    }
    return;
  }
  // Same conjugation trick as the contiguous Bluestein inverse, lane-wise.
  for (usize k = 0; k < n_; ++k) {
    cplx* row = data + k * stride;
    kern.conj_scale_lanes(row, row, real(1), count);
  }
  forward_strided(data, stride, count, scratch);
  for (usize k = 0; k < n_; ++k) {
    cplx* row = data + k * stride;
    kern.conj_scale_lanes(row, row, inv_n, count);
  }
}

}  // namespace ptycho::fft
