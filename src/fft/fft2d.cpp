#include "fft/fft2d.hpp"

#include <vector>

#include "common/error.hpp"

namespace ptycho::fft {

Fft2D::Fft2D(usize rows, usize cols)
    : rows_(rows), cols_(cols), row_plan_(cols), col_plan_(rows) {
  PTYCHO_REQUIRE(rows >= 1 && cols >= 1, "Fft2D extents must be >= 1");
}

namespace {
thread_local std::vector<cplx> t_column;
}

void Fft2D::transform_rows(View2D<cplx> field, bool fwd) const {
  for (index_t y = 0; y < field.rows(); ++y) {
    cplx* row = field.row(y);
    if (fwd) {
      row_plan_.forward(row);
    } else {
      row_plan_.inverse(row);
    }
  }
}

void Fft2D::transform_cols(View2D<cplx> field, bool fwd) const {
  t_column.resize(rows_);
  for (index_t x = 0; x < field.cols(); ++x) {
    for (index_t y = 0; y < field.rows(); ++y) t_column[static_cast<usize>(y)] = field(y, x);
    if (fwd) {
      col_plan_.forward(t_column.data());
    } else {
      col_plan_.inverse(t_column.data());
    }
    for (index_t y = 0; y < field.rows(); ++y) field(y, x) = t_column[static_cast<usize>(y)];
  }
}

void Fft2D::forward(View2D<cplx> field) const {
  PTYCHO_CHECK(field.rows() == static_cast<index_t>(rows_) &&
                   field.cols() == static_cast<index_t>(cols_),
               "field shape does not match plan");
  transform_rows(field, true);
  transform_cols(field, true);
}

void Fft2D::inverse(View2D<cplx> field) const {
  PTYCHO_CHECK(field.rows() == static_cast<index_t>(rows_) &&
                   field.cols() == static_cast<index_t>(cols_),
               "field shape does not match plan");
  transform_rows(field, false);
  transform_cols(field, false);
}

void Fft2D::adjoint_forward(View2D<cplx> field) const {
  inverse(field);
  const real scale = static_cast<real>(size());
  for (index_t y = 0; y < field.rows(); ++y) {
    cplx* row = field.row(y);
    for (index_t x = 0; x < field.cols(); ++x) row[x] *= scale;
  }
}

void Fft2D::adjoint_inverse(View2D<cplx> field) const {
  forward(field);
  const real scale = real(1) / static_cast<real>(size());
  for (index_t y = 0; y < field.rows(); ++y) {
    cplx* row = field.row(y);
    for (index_t x = 0; x < field.cols(); ++x) row[x] *= scale;
  }
}

namespace {
// Roll rows/cols by the given shifts (used by both shift directions).
void roll(View2D<cplx> field, index_t shift_y, index_t shift_x) {
  const index_t rows = field.rows();
  const index_t cols = field.cols();
  std::vector<cplx> buffer(static_cast<usize>(rows * cols));
  for (index_t y = 0; y < rows; ++y) {
    const index_t sy = (y + shift_y) % rows;
    for (index_t x = 0; x < cols; ++x) {
      const index_t sx = (x + shift_x) % cols;
      buffer[static_cast<usize>(sy * cols + sx)] = field(y, x);
    }
  }
  for (index_t y = 0; y < rows; ++y) {
    for (index_t x = 0; x < cols; ++x) field(y, x) = buffer[static_cast<usize>(y * cols + x)];
  }
}
}  // namespace

void fftshift(View2D<cplx> field) { roll(field, field.rows() / 2, field.cols() / 2); }

void ifftshift(View2D<cplx> field) {
  roll(field, (field.rows() + 1) / 2, (field.cols() + 1) / 2);
}

double fft_freq(usize i, usize n) {
  const auto signed_i = static_cast<long long>(i);
  const auto signed_n = static_cast<long long>(n);
  const long long half = (signed_n - 1) / 2;
  const long long k = signed_i <= half ? signed_i : signed_i - signed_n;
  return static_cast<double>(k) / static_cast<double>(signed_n);
}

}  // namespace ptycho::fft
