#include "fft/fft2d.hpp"

#include <algorithm>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"

namespace ptycho::fft {

namespace {
// One full 2-D transform of a rows x cols field (any fusion variant).
void note_transform(usize rows, usize cols) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& transforms = obs::registry().counter("fft2d_transforms_total");
  static obs::Counter& bytes = obs::registry().counter("fft2d_bytes_total");
  transforms.add(1);
  bytes.add(static_cast<std::uint64_t>(rows) * cols * sizeof(cplx));
}
}  // namespace

Fft2D::Fft2D(usize rows, usize cols)
    : rows_(rows),
      cols_(cols),
      batched_rows_(engine_flags().batched_rows),
      row_plan_(cols),
      col_plan_(rows) {
  PTYCHO_REQUIRE(rows >= 1 && cols >= 1, "Fft2D extents must be >= 1");
}

Fft2D::ScratchLease::~ScratchLease() {
  std::lock_guard<std::mutex> lock(plan_.scratch_mutex_);
  plan_.scratch_pool_.push_back(std::move(scratch_));
}

Fft2D::ScratchLease Fft2D::acquire_scratch() const {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return ScratchLease(*this, std::move(scratch));
    }
  }
  auto scratch = std::make_unique<Scratch>();
  scratch->tile.resize(rows_ * static_cast<usize>(kColBlock));
  scratch->bluestein.resize(col_plan_.strided_scratch_size(static_cast<usize>(kColBlock)));
  if (batched_rows_) {
    scratch->row_tile.resize(cols_ * static_cast<usize>(kRowBatch));
    scratch->row_bluestein.resize(row_plan_.strided_scratch_size(static_cast<usize>(kRowBatch)));
  }
  return ScratchLease(*this, std::move(scratch));
}

void Fft2D::transform_rows(View2D<cplx> field, bool fwd, const cplx* post_scale) const {
  const backend::Kernels& kern = backend::kernels();
  const auto cols = static_cast<usize>(field.cols());
  if (!batched_rows_) {
    for (index_t y = 0; y < field.rows(); ++y) {
      cplx* row = field.row(y);
      if (fwd) {
        row_plan_.forward(row);
      } else {
        row_plan_.inverse(row);
      }
      if (post_scale != nullptr) kern.scale_lanes(row, row, *post_scale, cols);
    }
    return;
  }
  // Batched: transpose kRowBatch rows into a lane-major tile, transform all
  // of them through one strided call (every butterfly stage vectorizes
  // across the row lanes, twiddle loads amortize over the batch), and
  // transpose back. The tile stays cache-resident between the passes.
  const ScratchLease lease = acquire_scratch();
  cplx* tile = lease.get().row_tile.data();
  cplx* pad = lease.get().row_bluestein.empty() ? nullptr : lease.get().row_bluestein.data();
  const index_t rows = field.rows();
  for (index_t y0 = 0; y0 < rows; y0 += kRowBatch) {
    const index_t batch = std::min(kRowBatch, rows - y0);
    const auto b = static_cast<usize>(batch);
    for (index_t lane = 0; lane < batch; ++lane) {
      const cplx* row = field.row(y0 + lane);
      cplx* t = tile + static_cast<usize>(lane);
      for (usize x = 0; x < cols; ++x) t[x * b] = row[x];
    }
    if (fwd) {
      row_plan_.forward_strided(tile, b, b, pad);
    } else {
      row_plan_.inverse_strided(tile, b, b, pad);
    }
    if (post_scale != nullptr) kern.scale_lanes(tile, tile, *post_scale, cols * b);
    for (index_t lane = 0; lane < batch; ++lane) {
      cplx* row = field.row(y0 + lane);
      const cplx* t = tile + static_cast<usize>(lane);
      for (usize x = 0; x < cols; ++x) row[x] = t[x * b];
    }
  }
}

void Fft2D::transform_cols(View2D<cplx> field, bool fwd, const MultiplySpec* mul,
                           const cplx* post_scale) const {
  const ScratchLease lease = acquire_scratch();
  cplx* tile = lease.get().tile.data();
  cplx* pad = lease.get().bluestein.empty() ? nullptr : lease.get().bluestein.data();
  const backend::Kernels& kern = backend::kernels();
  const index_t rows = field.rows();
  const auto urows = static_cast<usize>(rows);
  const auto field_stride = static_cast<usize>(field.row_stride());
  for (index_t x0 = 0; x0 < field.cols(); x0 += kColBlock) {
    const index_t block = std::min(kColBlock, field.cols() - x0);
    const auto b = static_cast<usize>(block);
    // Gather the block: row y contributes `block` contiguous elements, so
    // the pass streams cache lines instead of touching one column stripe.
    // A pre-multiply runs the point-wise kernel product in the same sweep.
    if (mul != nullptr && mul->pre) {
      kern.cmul_rows_tiled(tile, b, field.data() + x0, field_stride, mul->data + x0,
                           mul->stride, mul->conj, urows, b);
    } else {
      for (index_t y = 0; y < rows; ++y) {
        std::copy_n(field.row(y) + x0, block, tile + static_cast<usize>(y) * b);
      }
    }
    if (fwd) {
      col_plan_.forward_strided(tile, b, b, pad);
    } else {
      col_plan_.inverse_strided(tile, b, b, pad);
    }
    // Post-transform fusions act on the cache-resident tile, so the kernel
    // product / scale costs no extra pass over the field.
    if (mul != nullptr && !mul->pre) {
      kern.cmul_rows_tiled(tile, b, tile, b, mul->data + x0, mul->stride, mul->conj, urows, b);
    }
    if (post_scale != nullptr) kern.scale_lanes(tile, tile, *post_scale, urows * b);
    for (index_t y = 0; y < rows; ++y) {
      std::copy_n(tile + static_cast<usize>(y) * b, block, field.row(y) + x0);
    }
  }
}

namespace {
void check_shape(View2D<const cplx> field, usize rows, usize cols, const char* what) {
  PTYCHO_CHECK(field.rows() == static_cast<index_t>(rows) &&
                   field.cols() == static_cast<index_t>(cols),
               what << " shape does not match plan");
}
}  // namespace

void Fft2D::forward(View2D<cplx> field) const {
  check_shape(field, rows_, cols_, "field");
  note_transform(rows_, cols_);
  transform_rows(field, true, nullptr);
  transform_cols(field, true, nullptr, nullptr);
}

void Fft2D::inverse(View2D<cplx> field) const {
  check_shape(field, rows_, cols_, "field");
  note_transform(rows_, cols_);
  transform_cols(field, false, nullptr, nullptr);
  transform_rows(field, false, nullptr);
}

void Fft2D::forward_multiply(View2D<cplx> field, View2D<const cplx> kernel,
                             bool conj_kernel) const {
  check_shape(field, rows_, cols_, "field");
  check_shape(kernel, rows_, cols_, "kernel");
  note_transform(rows_, cols_);
  transform_rows(field, true, nullptr);
  const MultiplySpec mul{kernel.data(), static_cast<usize>(kernel.row_stride()), conj_kernel,
                         /*pre=*/false};
  transform_cols(field, true, &mul, nullptr);
}

void Fft2D::multiply_inverse(View2D<const cplx> kernel, View2D<cplx> field,
                             bool conj_kernel) const {
  check_shape(field, rows_, cols_, "field");
  check_shape(kernel, rows_, cols_, "kernel");
  note_transform(rows_, cols_);
  const MultiplySpec mul{kernel.data(), static_cast<usize>(kernel.row_stride()), conj_kernel,
                         /*pre=*/true};
  transform_cols(field, false, &mul, nullptr);
  transform_rows(field, false, nullptr);
}

void Fft2D::forward_scale(View2D<cplx> field, cplx alpha) const {
  check_shape(field, rows_, cols_, "field");
  note_transform(rows_, cols_);
  transform_rows(field, true, nullptr);
  transform_cols(field, true, nullptr, &alpha);
}

void Fft2D::inverse_scale(View2D<cplx> field, cplx alpha) const {
  check_shape(field, rows_, cols_, "field");
  note_transform(rows_, cols_);
  transform_cols(field, false, nullptr, nullptr);
  transform_rows(field, false, &alpha);
}

void Fft2D::adjoint_forward(View2D<cplx> field) const {
  const cplx alpha(static_cast<real>(size()), 0);
  if (engine_flags().fused) {
    inverse_scale(field, alpha);
  } else {
    // Honest escape hatch: PTYCHO_FFT_FUSED=0 must unfuse every folded
    // pass, this normalization included, so A/B runs measure the fusion.
    inverse(field);
    scale(alpha, field);
  }
}

void Fft2D::adjoint_inverse(View2D<cplx> field) const {
  const cplx alpha(real(1) / static_cast<real>(size()), 0);
  if (engine_flags().fused) {
    forward_scale(field, alpha);
  } else {
    forward(field);
    scale(alpha, field);
  }
}

namespace {
// In-place roll: new (y, x) reads old ((y - shift_y) mod rows,
// (x - shift_x) mod cols). Built from per-row rotations and whole-row
// reversals, so no temporary buffer is ever allocated.
void roll_inplace(View2D<cplx> field, index_t shift_y, index_t shift_x) {
  const index_t rows = field.rows();
  const index_t cols = field.cols();
  if (rows == 0 || cols == 0) return;
  shift_y %= rows;
  shift_x %= cols;
  if (shift_x != 0) {
    // Rotate each row right by shift_x (std::rotate is swap-based).
    for (index_t y = 0; y < rows; ++y) {
      cplx* row = field.row(y);
      std::rotate(row, row + (cols - shift_x), row + cols);
    }
  }
  if (shift_y != 0) {
    // Rotate the row order down by shift_y with the three-reversal
    // identity; reversing a range of rows is pairwise whole-row swaps.
    const auto reverse_rows = [&field, cols](index_t lo, index_t hi) {
      while (lo < hi - 1) {
        cplx* a = field.row(lo++);
        cplx* b = field.row(--hi);
        std::swap_ranges(a, a + cols, b);
      }
    };
    reverse_rows(0, rows);
    reverse_rows(0, shift_y);
    reverse_rows(shift_y, rows);
  }
}
}  // namespace

void fftshift(View2D<cplx> field) { roll_inplace(field, field.rows() / 2, field.cols() / 2); }

void ifftshift(View2D<cplx> field) {
  roll_inplace(field, (field.rows() + 1) / 2, (field.cols() + 1) / 2);
}

double fft_freq(usize i, usize n) {
  const auto signed_i = static_cast<long long>(i);
  const auto signed_n = static_cast<long long>(n);
  const long long half = (signed_n - 1) / 2;
  const long long k = signed_i <= half ? signed_i : signed_i - signed_n;
  return static_cast<double>(k) / static_cast<double>(signed_n);
}

}  // namespace ptycho::fft
