#include "fft/fft2d.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace ptycho::fft {

Fft2D::Fft2D(usize rows, usize cols)
    : rows_(rows), cols_(cols), row_plan_(cols), col_plan_(rows) {
  PTYCHO_REQUIRE(rows >= 1 && cols >= 1, "Fft2D extents must be >= 1");
}

Fft2D::ScratchLease::~ScratchLease() {
  std::lock_guard<std::mutex> lock(plan_.scratch_mutex_);
  plan_.scratch_pool_.push_back(std::move(scratch_));
}

Fft2D::ScratchLease Fft2D::acquire_scratch() const {
  {
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return ScratchLease(*this, std::move(scratch));
    }
  }
  auto scratch = std::make_unique<Scratch>();
  scratch->tile.resize(rows_ * static_cast<usize>(kColBlock));
  scratch->bluestein.resize(col_plan_.strided_scratch_size(static_cast<usize>(kColBlock)));
  return ScratchLease(*this, std::move(scratch));
}

void Fft2D::transform_rows(View2D<cplx> field, bool fwd) const {
  for (index_t y = 0; y < field.rows(); ++y) {
    cplx* row = field.row(y);
    if (fwd) {
      row_plan_.forward(row);
    } else {
      row_plan_.inverse(row);
    }
  }
}

void Fft2D::transform_cols(View2D<cplx> field, bool fwd) const {
  const ScratchLease lease = acquire_scratch();
  cplx* tile = lease.get().tile.data();
  cplx* pad = lease.get().bluestein.empty() ? nullptr : lease.get().bluestein.data();
  const index_t rows = field.rows();
  for (index_t x0 = 0; x0 < field.cols(); x0 += kColBlock) {
    const index_t block = std::min(kColBlock, field.cols() - x0);
    const auto b = static_cast<usize>(block);
    // Gather the block: row y contributes `block` contiguous elements, so
    // the pass streams cache lines instead of touching one column stripe.
    for (index_t y = 0; y < rows; ++y) {
      std::copy_n(field.row(y) + x0, block, tile + static_cast<usize>(y) * b);
    }
    if (fwd) {
      col_plan_.forward_strided(tile, b, b, pad);
    } else {
      col_plan_.inverse_strided(tile, b, b, pad);
    }
    for (index_t y = 0; y < rows; ++y) {
      std::copy_n(tile + static_cast<usize>(y) * b, block, field.row(y) + x0);
    }
  }
}

void Fft2D::forward(View2D<cplx> field) const {
  PTYCHO_CHECK(field.rows() == static_cast<index_t>(rows_) &&
                   field.cols() == static_cast<index_t>(cols_),
               "field shape does not match plan");
  transform_rows(field, true);
  transform_cols(field, true);
}

void Fft2D::inverse(View2D<cplx> field) const {
  PTYCHO_CHECK(field.rows() == static_cast<index_t>(rows_) &&
                   field.cols() == static_cast<index_t>(cols_),
               "field shape does not match plan");
  transform_rows(field, false);
  transform_cols(field, false);
}

void Fft2D::adjoint_forward(View2D<cplx> field) const {
  inverse(field);
  scale(cplx(static_cast<real>(size()), 0), field);
}

void Fft2D::adjoint_inverse(View2D<cplx> field) const {
  forward(field);
  scale(cplx(real(1) / static_cast<real>(size()), 0), field);
}

namespace {
// In-place roll: new (y, x) reads old ((y - shift_y) mod rows,
// (x - shift_x) mod cols). Built from per-row rotations and whole-row
// reversals, so no temporary buffer is ever allocated.
void roll_inplace(View2D<cplx> field, index_t shift_y, index_t shift_x) {
  const index_t rows = field.rows();
  const index_t cols = field.cols();
  if (rows == 0 || cols == 0) return;
  shift_y %= rows;
  shift_x %= cols;
  if (shift_x != 0) {
    // Rotate each row right by shift_x (std::rotate is swap-based).
    for (index_t y = 0; y < rows; ++y) {
      cplx* row = field.row(y);
      std::rotate(row, row + (cols - shift_x), row + cols);
    }
  }
  if (shift_y != 0) {
    // Rotate the row order down by shift_y with the three-reversal
    // identity; reversing a range of rows is pairwise whole-row swaps.
    const auto reverse_rows = [&field, cols](index_t lo, index_t hi) {
      while (lo < hi - 1) {
        cplx* a = field.row(lo++);
        cplx* b = field.row(--hi);
        std::swap_ranges(a, a + cols, b);
      }
    };
    reverse_rows(0, rows);
    reverse_rows(0, shift_y);
    reverse_rows(shift_y, rows);
  }
}
}  // namespace

void fftshift(View2D<cplx> field) { roll_inplace(field, field.rows() / 2, field.cols() / 2); }

void ifftshift(View2D<cplx> field) {
  roll_inplace(field, (field.rows() + 1) / 2, (field.cols() + 1) / 2);
}

double fft_freq(usize i, usize n) {
  const auto signed_i = static_cast<long long>(i);
  const auto signed_n = static_cast<long long>(n);
  const long long half = (signed_n - 1) / 2;
  const long long k = signed_i <= half ? signed_i : signed_i - signed_n;
  return static_cast<double>(k) / static_cast<double>(signed_n);
}

}  // namespace ptycho::fft
