#include <cmath>
#include <utility>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "fft/plan.hpp"

namespace ptycho::fft::detail {

std::vector<usize> make_bitrev(usize n) {
  PTYCHO_CHECK(is_pow2(n), "bitrev requires a power-of-two size");
  std::vector<usize> rev(n, 0);
  usize bits = 0;
  while ((usize(1) << bits) < n) ++bits;
  for (usize i = 0; i < n; ++i) {
    usize r = 0;
    for (usize b = 0; b < bits; ++b) {
      if ((i >> b) & 1u) r |= usize(1) << (bits - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<cplx> make_twiddles(usize n) {
  // Layout: stage with half-length L contributes L entries starting at
  // offset L-1 (i.e. offsets 0,1,3,7,... for L=1,2,4,8,...). Entry k at
  // stage L is exp(-2πi k / (2L)). Total n-1 entries.
  std::vector<cplx> tw(n > 0 ? n - 1 : 0);
  for (usize half = 1; half < n; half *= 2) {
    const double step = -2.0 * 3.14159265358979323846 / static_cast<double>(2 * half);
    for (usize k = 0; k < half; ++k) {
      const double angle = step * static_cast<double>(k);
      tw[half - 1 + k] = cplx(static_cast<real>(std::cos(angle)),
                              static_cast<real>(std::sin(angle)));
    }
  }
  return tw;
}

void radix2_transform(cplx* data, usize n, int sign, const std::vector<usize>& bitrev,
                      const std::vector<cplx>& twiddles_fwd) {
  // Bit-reversal permutation (swap once per pair).
  for (usize i = 0; i < n; ++i) {
    const usize j = bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly stages: each (stage, base) pair is one contiguous block with
  // per-lane twiddles, dispatched through the active kernel backend.
  const backend::Kernels& kern = backend::kernels();
  for (usize half = 1; half < n; half *= 2) {
    const cplx* tw = twiddles_fwd.data() + (half - 1);
    if (half < 4) {
      // The two smallest stages hold 3/4 of all blocks but are below any
      // vector width; run them inline to spare the dispatch overhead.
      // The per-element sequence is the backend butterfly_block one, so
      // the result does not depend on the selected backend.
      for (usize base = 0; base < n; base += 2 * half) {
        for (usize k = 0; k < half; ++k) {
          cplx w = tw[k];
          if (sign > 0) w = std::conj(w);
          const cplx t = cmul(w, data[base + k + half]);
          const cplx u = data[base + k];
          data[base + k] = u + t;
          data[base + k + half] = u - t;
        }
      }
      continue;
    }
    for (usize base = 0; base < n; base += 2 * half) {
      kern.butterfly_block(data + base, data + base + half, tw, sign > 0, half);
    }
  }
}

void radix2_transform_strided(cplx* data, usize n, usize stride, usize count, int sign,
                              const std::vector<usize>& bitrev,
                              const std::vector<cplx>& twiddles_fwd) {
  // Bit-reversal permutation: swap whole lane rows once per pair.
  for (usize i = 0; i < n; ++i) {
    const usize j = bitrev[i];
    if (i < j) {
      cplx* a = data + i * stride;
      cplx* b = data + j * stride;
      for (usize lane = 0; lane < count; ++lane) std::swap(a[lane], b[lane]);
    }
  }
  // Butterfly stages; the lane dimension is contiguous, so each (base, k)
  // pair is one shared-twiddle butterfly block across the batch.
  const backend::Kernels& kern = backend::kernels();
  for (usize half = 1; half < n; half *= 2) {
    const cplx* tw = twiddles_fwd.data() + (half - 1);
    for (usize base = 0; base < n; base += 2 * half) {
      for (usize k = 0; k < half; ++k) {
        cplx w = tw[k];
        if (sign > 0) w = std::conj(w);
        kern.butterfly_lanes(data + (base + k) * stride, data + (base + k + half) * stride, w,
                             count);
      }
    }
  }
}

}  // namespace ptycho::fft::detail
