// O(n²) reference DFT used to validate the fast transforms in tests.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace ptycho::fft {

/// Direct DFT. `sign = -1` matches Plan1D::forward (unnormalized);
/// `sign = +1` is the unnormalized inverse kernel.
[[nodiscard]] std::vector<cplx> reference_dft(const std::vector<cplx>& input, int sign);

}  // namespace ptycho::fft
