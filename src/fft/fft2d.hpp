// Two-dimensional planned FFT over View2D<cplx>, plus fftshift helpers.
//
// The multislice operator transforms each probe-sized wavefield twice per
// slice, so Fft2D is the hottest kernel in the library. Both passes are
// cache-blocked through the batched strided Plan1D entry point: columns
// are gathered kColBlock at a time into a compact scratch tile, and rows
// are transposed kRowBatch at a time into a lane-major tile, so every
// butterfly inner loop vectorizes across the batch and every pass over
// the field moves whole cache lines. The inverse runs columns first, then
// rows, which lets the fused entry points below fold point-wise spectral
// work into the tile that is already in cache:
//
//   forward_multiply  = forward  then field *= kernel   (multiply in the
//                       last column-pass tile before scatter)
//   multiply_inverse  = field *= kernel then inverse    (multiply in the
//                       first column-pass gather)
//   forward_scale / inverse_scale = the same fusion for a uniform scale
//
// Each fused call is bitwise identical to its composed two-step sequence
// (the folded op runs the same dispatched per-element kernels, just on
// tile-resident data) while costing zero extra full-field passes.
// Scratch tiles live in a small plan-owned pool (acquired per call), so a
// single Fft2D is safe to share across concurrently executing workers.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "fft/plan.hpp"
#include "tensor/array.hpp"

namespace ptycho::fft {

class Fft2D {
 public:
  /// Columns per block of the cache-blocked column pass.
  static constexpr index_t kColBlock = 16;
  /// Rows per batch of the transposed row pass (when engine_flags()
  /// enables batched_rows; otherwise rows transform one at a time).
  static constexpr index_t kRowBatch = 16;

  /// Plan for `rows x cols` transforms.
  Fft2D(usize rows, usize cols);

  [[nodiscard]] usize rows() const { return row_plan_.size() == 0 ? 0 : rows_; }
  [[nodiscard]] usize cols() const { return cols_; }
  [[nodiscard]] usize size() const { return rows_ * cols_; }

  /// In-place unnormalized forward transform.
  void forward(View2D<cplx> field) const;

  /// In-place inverse with 1/(rows*cols) normalization.
  void inverse(View2D<cplx> field) const;

  /// Adjoint of `forward` = size() * inverse (see plan.hpp conventions).
  void adjoint_forward(View2D<cplx> field) const;

  /// Adjoint of `inverse` = (1/size()) * forward.
  void adjoint_inverse(View2D<cplx> field) const;

  /// Fused forward(field); field[i] *= kernel[i] (conj(kernel[i]) when
  /// `conj_kernel`). Bitwise identical to the composed sequence; the
  /// multiply costs no extra pass over the field.
  void forward_multiply(View2D<cplx> field, View2D<const cplx> kernel,
                        bool conj_kernel = false) const;

  /// Fused field[i] *= kernel[i] (in the spectrum); inverse(field).
  /// Bitwise identical to the composed sequence.
  void multiply_inverse(View2D<const cplx> kernel, View2D<cplx> field,
                        bool conj_kernel = false) const;

  /// Fused forward(field); field *= alpha.
  void forward_scale(View2D<cplx> field, cplx alpha) const;

  /// Fused inverse(field); field *= alpha.
  void inverse_scale(View2D<cplx> field, cplx alpha) const;

 private:
  /// Point-wise kernel multiply folded into the column pass: `pre` applies
  /// it during the gather (before the transform), otherwise before the
  /// scatter. `data`/`stride` address the kernel's row-major storage.
  struct MultiplySpec {
    const cplx* data;
    usize stride;
    bool conj;
    bool pre;
  };

  /// Pooled per-call scratch: the column tile (rows x kColBlock), the
  /// transposed row tile (cols x kRowBatch, batched row pass only) and the
  /// batched-Bluestein pads (empty for power-of-two extents).
  struct Scratch {
    std::vector<cplx> tile;
    std::vector<cplx> bluestein;
    std::vector<cplx> row_tile;
    std::vector<cplx> row_bluestein;
  };

  /// RAII lease of a pooled scratch buffer; returns it on destruction.
  class ScratchLease {
   public:
    ScratchLease(const Fft2D& plan, std::unique_ptr<Scratch> scratch)
        : plan_(plan), scratch_(std::move(scratch)) {}
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    [[nodiscard]] Scratch& get() const { return *scratch_; }

   private:
    const Fft2D& plan_;
    std::unique_ptr<Scratch> scratch_;
  };

  [[nodiscard]] ScratchLease acquire_scratch() const;

  void transform_rows(View2D<cplx> field, bool fwd, const cplx* post_scale) const;
  void transform_cols(View2D<cplx> field, bool fwd, const MultiplySpec* mul,
                      const cplx* post_scale) const;

  usize rows_ = 0;
  usize cols_ = 0;
  bool batched_rows_ = true;  // engine_flags().batched_rows at construction
  Plan1D row_plan_;           // length cols_ (transforms along x)
  Plan1D col_plan_;           // length rows_ (transforms along y)

  // Pool of scratch buffers. Concurrent transforms each lease one
  // (allocating on first use), so sharing one plan across workers is
  // race-free and steady-state transforms allocate nothing.
  mutable std::mutex scratch_mutex_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_pool_;
};

/// Swap quadrants so the zero frequency moves to the array center.
/// In-place and allocation-free (element swaps/rotations only).
void fftshift(View2D<cplx> field);

/// Inverse of fftshift (differs from it for odd extents).
void ifftshift(View2D<cplx> field);

/// Frequency coordinate of index i in an n-point DFT, in cycles/sample
/// units of 1/n (i.e. the standard fftfreq ordering: 0, 1, ..., -1 scaled).
[[nodiscard]] double fft_freq(usize i, usize n);

}  // namespace ptycho::fft
