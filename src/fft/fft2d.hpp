// Two-dimensional planned FFT over View2D<cplx>, plus fftshift helpers.
//
// The multislice operator transforms each probe-sized wavefield twice per
// slice, so Fft2D is the hottest kernel in the library. The column pass is
// cache-blocked: columns are gathered kColBlock at a time into a compact
// scratch tile and transformed through the batched strided Plan1D entry
// point, so every pass over the field moves whole cache lines and the
// butterfly inner loop vectorizes across columns. Scratch tiles live in a
// small plan-owned pool (acquired per call), so a single Fft2D is safe to
// share across concurrently executing worker threads.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "fft/plan.hpp"
#include "tensor/array.hpp"

namespace ptycho::fft {

class Fft2D {
 public:
  /// Columns per block of the cache-blocked column pass.
  static constexpr index_t kColBlock = 16;

  /// Plan for `rows x cols` transforms.
  Fft2D(usize rows, usize cols);

  [[nodiscard]] usize rows() const { return row_plan_.size() == 0 ? 0 : rows_; }
  [[nodiscard]] usize cols() const { return cols_; }
  [[nodiscard]] usize size() const { return rows_ * cols_; }

  /// In-place unnormalized forward transform.
  void forward(View2D<cplx> field) const;

  /// In-place inverse with 1/(rows*cols) normalization.
  void inverse(View2D<cplx> field) const;

  /// Adjoint of `forward` = size() * inverse (see plan.hpp conventions).
  void adjoint_forward(View2D<cplx> field) const;

  /// Adjoint of `inverse` = (1/size()) * forward.
  void adjoint_inverse(View2D<cplx> field) const;

 private:
  /// Column-pass scratch: the gathered rows x kColBlock tile plus the
  /// batched-Bluestein pad (empty for power-of-two row counts).
  struct Scratch {
    std::vector<cplx> tile;
    std::vector<cplx> bluestein;
  };

  /// RAII lease of a pooled scratch buffer; returns it on destruction.
  class ScratchLease {
   public:
    ScratchLease(const Fft2D& plan, std::unique_ptr<Scratch> scratch)
        : plan_(plan), scratch_(std::move(scratch)) {}
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    [[nodiscard]] Scratch& get() const { return *scratch_; }

   private:
    const Fft2D& plan_;
    std::unique_ptr<Scratch> scratch_;
  };

  [[nodiscard]] ScratchLease acquire_scratch() const;

  void transform_rows(View2D<cplx> field, bool fwd) const;
  void transform_cols(View2D<cplx> field, bool fwd) const;

  usize rows_ = 0;
  usize cols_ = 0;
  Plan1D row_plan_;  // length cols_ (transforms along x)
  Plan1D col_plan_;  // length rows_ (transforms along y)

  // Pool of column-pass scratch buffers. Concurrent transforms each lease
  // one (allocating on first use), so sharing one plan across workers is
  // race-free and steady-state transforms allocate nothing.
  mutable std::mutex scratch_mutex_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_pool_;
};

/// Swap quadrants so the zero frequency moves to the array center.
/// In-place and allocation-free (element swaps/rotations only).
void fftshift(View2D<cplx> field);

/// Inverse of fftshift (differs from it for odd extents).
void ifftshift(View2D<cplx> field);

/// Frequency coordinate of index i in an n-point DFT, in cycles/sample
/// units of 1/n (i.e. the standard fftfreq ordering: 0, 1, ..., -1 scaled).
[[nodiscard]] double fft_freq(usize i, usize n);

}  // namespace ptycho::fft
