// Two-dimensional planned FFT over View2D<cplx>, plus fftshift helpers.
//
// The multislice operator transforms each probe-sized wavefield twice per
// slice, so Fft2D is the hottest kernel in the library — columns are
// processed through a contiguous gather/scatter buffer to keep the 1-D
// kernel on unit-stride data.
#pragma once

#include "fft/plan.hpp"
#include "tensor/array.hpp"

namespace ptycho::fft {

class Fft2D {
 public:
  /// Plan for `rows x cols` transforms.
  Fft2D(usize rows, usize cols);

  [[nodiscard]] usize rows() const { return row_plan_.size() == 0 ? 0 : rows_; }
  [[nodiscard]] usize cols() const { return cols_; }
  [[nodiscard]] usize size() const { return rows_ * cols_; }

  /// In-place unnormalized forward transform.
  void forward(View2D<cplx> field) const;

  /// In-place inverse with 1/(rows*cols) normalization.
  void inverse(View2D<cplx> field) const;

  /// Adjoint of `forward` = size() * inverse (see plan.hpp conventions).
  void adjoint_forward(View2D<cplx> field) const;

  /// Adjoint of `inverse` = (1/size()) * forward.
  void adjoint_inverse(View2D<cplx> field) const;

 private:
  void transform_rows(View2D<cplx> field, bool fwd) const;
  void transform_cols(View2D<cplx> field, bool fwd) const;

  usize rows_ = 0;
  usize cols_ = 0;
  Plan1D row_plan_;  // length cols_ (transforms along x)
  Plan1D col_plan_;  // length rows_ (transforms along y)
};

/// Swap quadrants so the zero frequency moves to the array center.
void fftshift(View2D<cplx> field);

/// Inverse of fftshift (differs from it for odd extents).
void ifftshift(View2D<cplx> field);

/// Frequency coordinate of index i in an n-point DFT, in cycles/sample
/// units of 1/n (i.e. the standard fftfreq ordering: 0, 1, ..., -1 scaled).
[[nodiscard]] double fft_freq(usize i, usize n);

}  // namespace ptycho::fft
