// Bluestein's chirp-z transform is implemented inside Plan1D (fft/plan.cpp)
// because it shares the radix-2 kernels and twiddle tables. This file
// carries the standalone reference DFT used by tests and by the plan
// self-check utility.
#include <cmath>
#include <vector>

#include "fft/reference.hpp"

namespace ptycho::fft {

std::vector<cplx> reference_dft(const std::vector<cplx>& input, int sign) {
  const usize n = input.size();
  std::vector<cplx> out(n, cplx{});
  const double base = sign * 2.0 * 3.14159265358979323846 / static_cast<double>(n);
  for (usize k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (usize j = 0; j < n; ++j) {
      const double angle = base * static_cast<double>((j * k) % n);
      acc += std::complex<double>(input[j]) * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = cplx(static_cast<real>(acc.real()), static_cast<real>(acc.imag()));
  }
  return out;
}

}  // namespace ptycho::fft
