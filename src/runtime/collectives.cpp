#include "runtime/collectives.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptycho::rt {

namespace {
// Stage layout within a phase: [instance:32][step:15][down:1]. The tree
// step doubles up to nranks (so 15 bits covers 16k ranks) and the caller's
// instance counter keeps overlapping collectives in the same phase apart;
// repeated collectives with the same (phase, instance) still match
// correctly because the fabric queues are FIFO per (src, tag).
Tag stage_tag(Phase phase, std::int64_t instance, int step, bool down) {
  const std::int64_t stage = ((instance & 0xffffffff) << 16) |
                             (static_cast<std::int64_t>(step) << 1) | (down ? 1 : 0);
  return make_tag(phase, stage);
}
}  // namespace

AllreduceHandle::AllreduceHandle(RankContext& ctx, std::vector<cplx>& buffer, Phase phase,
                                 std::int64_t instance)
    : ctx_(ctx), buffer_(buffer), phase_(phase), instance_(instance) {
  if (obs::metrics_enabled()) {
    static obs::Counter& calls = obs::registry().counter("collective_allreduce_total");
    static obs::Counter& bytes = obs::registry().counter("collective_allreduce_bytes_total");
    calls.add(1);
    bytes.add(buffer.size() * sizeof(cplx));
  }
  // A rank whose first reduce-tree action is a send with no prior receive
  // (odd ranks: the lowest set bit is step 1) can post it now — the
  // parent's matching recv in finish() then completes without waiting a
  // full reduce latency.
  const int rank = ctx_.rank();
  if (ctx_.nranks() > 1 && (rank & 1) != 0) {
    ctx_.isend(rank - 1, stage_tag(phase_, instance_, 1, false), std::move(buffer_));
    buffer_.clear();
    posted_ = true;
  }
}

void AllreduceHandle::finish() {
  PTYCHO_REQUIRE(!finished_, "AllreduceHandle::finish called twice");
  finished_ = true;
  const int nranks = ctx_.nranks();
  const int rank = ctx_.rank();

  // Reduce to rank 0 over a binomial tree. A rank that already posted its
  // leaf send at construction has nothing left to contribute.
  if (!posted_) {
    for (int step = 1; step < nranks; step <<= 1) {
      if ((rank & step) != 0) {
        ctx_.isend(rank - step, stage_tag(phase_, instance_, step, false), std::move(buffer_));
        buffer_.clear();
        break;
      }
      if (rank + step < nranks) {
        std::vector<cplx> incoming =
            ctx_.recv(rank + step, stage_tag(phase_, instance_, step, false));
        PTYCHO_CHECK(incoming.size() == buffer_.size(), "allreduce buffer size mismatch");
        for (usize i = 0; i < buffer_.size(); ++i) buffer_[i] += incoming[i];
      }
    }
  }

  // Broadcast the result back down the same tree.
  int highest = 1;
  while (highest < nranks) highest <<= 1;
  for (int step = highest >> 1; step >= 1; step >>= 1) {
    if ((rank & (2 * step - 1)) == 0 && rank + step < nranks) {
      ctx_.isend(rank + step, stage_tag(phase_, instance_, step, true), std::vector<cplx>(buffer_));
    } else if ((rank & (2 * step - 1)) == step) {
      buffer_ = ctx_.recv(rank - step, stage_tag(phase_, instance_, step, true));
    }
  }
}

void allreduce_sum(RankContext& ctx, std::vector<cplx>& buffer, Phase phase,
                   std::int64_t instance) {
  // Phase kNone: the comm/wait time is attributed by isend/recv inside;
  // the span only marks the collective's extent in the trace.
  obs::SpanScope span("allreduce");
  AllreduceHandle handle(ctx, buffer, phase, instance);
  handle.finish();
}

double allreduce_sum_scalar(RankContext& ctx, double value, Phase phase,
                            std::int64_t instance) {
  std::vector<cplx> packed(1);
  // Split the double across real/imag of a cplx to keep full precision for
  // moderate magnitudes; cost values fit float range in our workloads, but
  // we sum in double at the reduce points via promotion below.
  packed[0] = cplx(static_cast<real>(value), 0);
  // For accuracy use a dedicated reduction (float is enough for the cost
  // curves; sums are short). Reuse vector allreduce.
  allreduce_sum(ctx, packed, phase, instance);
  return static_cast<double>(packed[0].real());
}

void broadcast(RankContext& ctx, std::vector<cplx>& buffer, int root, Phase phase,
               std::int64_t instance) {
  obs::SpanScope span("broadcast");
  if (obs::metrics_enabled()) {
    static obs::Counter& calls = obs::registry().counter("collective_broadcast_total");
    static obs::Counter& bytes = obs::registry().counter("collective_broadcast_bytes_total");
    calls.add(1);
    bytes.add(buffer.size() * sizeof(cplx));
  }
  PTYCHO_CHECK(root == 0, "broadcast currently supports root 0");
  const int nranks = ctx.nranks();
  const int rank = ctx.rank();
  int highest = 1;
  while (highest < nranks) highest <<= 1;
  for (int step = highest >> 1; step >= 1; step >>= 1) {
    if ((rank & (2 * step - 1)) == 0 && rank + step < nranks) {
      ctx.isend(rank + step, stage_tag(phase, instance, step, true), std::vector<cplx>(buffer));
    } else if ((rank & (2 * step - 1)) == step) {
      buffer = ctx.recv(rank - step, stage_tag(phase, instance, step, true));
    }
  }
}

}  // namespace ptycho::rt
