#include "runtime/socket_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/channel.hpp"

namespace ptycho::rt {

namespace {

constexpr std::uint32_t kMagic = 0x50545946u;  // "PTYF"

// Upper bound on a data frame's element count. Generous (several GiB of
// payload) but finite, so a corrupt length field fails fast instead of
// throwing std::bad_alloc off the progress thread.
constexpr std::uint64_t kMaxFrameElems = 1ull << 28;

enum FrameType : std::uint32_t {
  kHello = 0,     ///< handshake: src = connector's rank
  kData = 1,      ///< fabric message
  kPoison = 2,    ///< remote fabric poisoned (rank failure)
  kShutdown = 3,  ///< orderly close follows
  kPing = 4,      ///< heartbeat: refreshes the sender's liveness clock
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t type = kData;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int64_t tag = 0;
  std::uint64_t count = 0;  ///< payload length in cplx elements
  std::uint32_t generation = 0;
  std::uint32_t checksum = 0;  ///< CRC32 of header (this field zeroed) + payload
};
static_assert(sizeof(FrameHeader) == 40, "wire header layout drifted");

/// CRC32 over the header (checksum field zeroed) and the payload bytes.
std::uint32_t frame_checksum(FrameHeader header, const void* payload, usize payload_bytes) {
  header.checksum = 0;
  std::uint32_t crc = crc32(&header, sizeof(header));
  if (payload_bytes > 0) crc = crc32(payload, payload_bytes, crc);
  return crc;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Read exactly n bytes; false on EOF-before-any / error.
bool read_exact(int fd, void* buf, usize n) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<usize>(got);
      continue;
    }
    if (got < 0 && (errno == EINTR)) continue;
    return false;  // EOF (0) or hard error
  }
  return true;
}

/// Write exactly n bytes; false on error. MSG_NOSIGNAL: a dead peer must
/// surface as an error we map onto poison, not a SIGPIPE.
bool write_exact(int fd, const void* buf, usize n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<usize>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int make_listener(const PeerAddr& addr, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PTYCHO_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  // Restart-after-fault rebinds the same port while the old connections
  // sit in TIME_WAIT; without SO_REUSEADDR checkpoint recovery would need
  // a fresh roster every attempt.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int err = errno;
    ::close(fd);
    PTYCHO_FAIL("bind(" << addr.host << ":" << addr.port
                        << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    PTYCHO_FAIL("listen failed: " << std::strerror(err));
  }
  return fd;
}

int connect_with_retry(const PeerAddr& addr, std::chrono::milliseconds timeout) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    // Not a dotted quad — resolve the name.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    PTYCHO_CHECK(::getaddrinfo(addr.host.c_str(), nullptr, &hints, &res) == 0 && res != nullptr,
                 "cannot resolve peer host '" << addr.host << "'");
    sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PTYCHO_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    // Peers start concurrently: refused just means the listener is not up
    // yet. Anything past the deadline is a genuinely absent peer.
    PTYCHO_CHECK(std::chrono::steady_clock::now() < deadline,
                 "connect to peer " << addr.host << ":" << addr.port << " timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

SocketTransport::SocketTransport(int rank, std::vector<PeerAddr> peers,
                                 const TransportOptions& options)
    : rank_(rank),
      peers_(std::move(peers)),
      generation_(options.generation),
      connect_timeout_ms_(options.connect_timeout_ms),
      shutdown_drain_ms_(options.shutdown_drain_ms),
      heartbeat_ms_(options.heartbeat_ms),
      liveness_timeout_ms_(options.liveness_timeout_ms) {
  PTYCHO_REQUIRE(!peers_.empty(), "socket transport needs a peer roster");
  PTYCHO_REQUIRE(rank_ >= 0 && rank_ < nranks(), "rank outside roster");
  PTYCHO_REQUIRE(connect_timeout_ms_ > 0, "connect timeout must be positive");
  PTYCHO_REQUIRE(shutdown_drain_ms_ > 0, "shutdown drain deadline must be positive");
  conns_.resize(peers_.size());
  for (auto& c : conns_) c = std::make_unique<Peer>();
}

void SocketTransport::attach(Fabric& fabric) {
  PTYCHO_CHECK(fabric_ == nullptr, "transport already attached");
  fabric_ = &fabric;
  const int n = nranks();
  if (n == 1) return;  // no peers, no wire, no progress thread

  // Listener first, then connect downward: with every process following
  // the same order, a connect can at worst find the peer's backlog (bound
  // + listening) still working through accepts — never a missing socket
  // past the retry window.
  const int listener = make_listener(peers_[static_cast<usize>(rank_)], n);
  const auto mesh_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(connect_timeout_ms_);

  for (int r = 0; r < rank_; ++r) {
    const int fd = connect_with_retry(peers_[static_cast<usize>(r)],
                                      std::chrono::milliseconds(connect_timeout_ms_));
    FrameHeader hello;
    hello.type = kHello;
    hello.src = rank_;
    hello.dst = r;
    hello.generation = generation_;
    hello.checksum = frame_checksum(hello, nullptr, 0);
    if (!write_exact(fd, &hello, sizeof(hello))) {
      ::close(fd);
      ::close(listener);
      PTYCHO_FAIL("handshake with rank " << r << " failed");
    }
    conns_[static_cast<usize>(r)]->fd = fd;
  }

  // Accept from all higher ranks, bounded by the same formation deadline
  // the connect side uses: a roster entry that never starts (or a stale
  // process from an old generation knocking in a loop) must fail the
  // attach, not hang it. Hellos from another generation are refused —
  // closed and not counted — so a straggler cannot occupy a mesh slot.
  for (int accepted = 0; accepted < n - 1 - rank_;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        mesh_deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      ::close(listener);
      PTYCHO_FAIL("mesh formation timed out waiting for " << (n - 1 - rank_ - accepted)
                                                          << " higher rank(s)");
    }
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno != EINTR) {
      ::close(listener);
      PTYCHO_FAIL("poll on listener failed: " << std::strerror(errno));
    }
    if (ready <= 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      ::close(listener);
      PTYCHO_FAIL("accept failed: " << std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    FrameHeader hello{};
    if (!read_exact(fd, &hello, sizeof(hello)) || hello.magic != kMagic ||
        hello.type != kHello || hello.src <= rank_ || hello.src >= n ||
        hello.checksum != frame_checksum(hello, nullptr, 0)) {
      ::close(fd);
      ::close(listener);
      PTYCHO_FAIL("bad handshake from a connecting peer");
    }
    if (hello.generation != generation_) {
      log::warn() << "refusing hello from rank " << hello.src << " of generation "
                  << hello.generation << " (this cluster is generation " << generation_ << ")";
      ::close(fd);
      continue;  // not counted: the slot stays open for the real peer
    }
    conns_[static_cast<usize>(hello.src)]->fd = fd;
    ++accepted;
  }
  // The mesh is static; close the listener so a successor transport (a
  // restarted run after a fault) can rebind the port.
  ::close(listener);

  // Liveness clocks start at mesh completion — peers proved themselves
  // alive by handshaking just now.
  const std::int64_t now = steady_now_ns();
  for (auto& c : conns_) {
    c->last_rx_ns.store(now, std::memory_order_relaxed);
    c->last_tx_ns.store(now, std::memory_order_relaxed);
  }

  PTYCHO_CHECK(::pipe(wake_pipe_.data()) == 0, "pipe() failed: " << std::strerror(errno));
  progress_ = std::thread([this] { progress_loop(); });
}

SocketTransport::~SocketTransport() {
  stopping_.store(true, std::memory_order_release);
  // Orderly close: the shutdown frame lets peers distinguish our exit from
  // our death. TCP ordering guarantees every data frame we sent precedes it.
  // No fd pre-check here: the progress thread may be closing fds under
  // send_mutex right now, and send_control rechecks under that lock.
  for (int r = 0; r < nranks(); ++r) {
    if (r != rank_) send_control(r, kShutdown);
  }
  // Bound the drain: a peer that is alive but hung — never tearing down,
  // never closing its socket — must not pin progress_.join() (and with it
  // ~Fabric) forever.
  drain_deadline_ns_.store(
      steady_now_ns() +
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::milliseconds(shutdown_drain_ms_))
              .count(),
      std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (progress_.joinable()) progress_.join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void SocketTransport::send(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(fabric_ != nullptr, "transport not attached to a fabric");
  if (dst == rank_) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.messages_out += 1;
      stats_.bytes_out += payload.size() * sizeof(cplx);
    }
    fabric_->deliver(src, dst, tag, std::move(payload));
    return;
  }
  // A wedged process is hung: nothing it "sends" reaches the wire. The
  // silence is what the peers' liveness deadline exists to catch.
  if (wedged_.load(std::memory_order_acquire)) return;
  Peer& peer = *conns_[static_cast<usize>(dst)];
  FrameHeader header;
  header.type = kData;
  header.src = src;
  header.dst = dst;
  header.tag = tag;
  header.count = payload.size();
  header.generation = generation_;
  const usize payload_bytes = payload.size() * sizeof(cplx);
  header.checksum = frame_checksum(header, payload.data(), payload_bytes);
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(peer.send_mutex);
    if (peer.fd >= 0) {
      ok = write_exact(peer.fd, &header, sizeof(header)) &&
           (payload_bytes == 0 || write_exact(peer.fd, payload.data(), payload_bytes));
    }
  }
  if (!ok) {
    fail("send to a peer failed");
    return;
  }
  peer.last_tx_ns.store(steady_now_ns(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.messages_out += 1;
  stats_.bytes_out += sizeof(header) + payload_bytes;
}

bool SocketTransport::send_corrupted(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(fabric_ != nullptr, "transport not attached to a fabric");
  if (dst == rank_ || wedged_.load(std::memory_order_acquire)) return true;  // nothing to corrupt
  Peer& peer = *conns_[static_cast<usize>(dst)];
  FrameHeader header;
  header.type = kData;
  header.src = src;
  header.dst = dst;
  header.tag = tag;
  header.count = payload.size();
  header.generation = generation_;
  const usize payload_bytes = payload.size() * sizeof(cplx);
  // A deliberately wrong checksum: the frame is otherwise well-formed, so
  // the receiver's integrity check — not a length or magic accident — is
  // what must catch it.
  header.checksum = frame_checksum(header, payload.data(), payload_bytes) ^ 0x5A5A5A5Au;
  std::lock_guard<std::mutex> lock(peer.send_mutex);
  if (peer.fd >= 0) {
    (void)(write_exact(peer.fd, &header, sizeof(header)) &&
           (payload_bytes == 0 || write_exact(peer.fd, payload.data(), payload_bytes)));
  }
  return true;
}

void SocketTransport::send_control(int peer_rank, std::uint32_t type, Tag tag) noexcept {
  if (wedged_.load(std::memory_order_acquire)) return;  // hung processes say nothing
  Peer& peer = *conns_[static_cast<usize>(peer_rank)];
  FrameHeader header;
  header.type = type;
  header.src = rank_;
  header.dst = peer_rank;
  header.tag = tag;
  header.generation = generation_;
  header.checksum = frame_checksum(header, nullptr, 0);
  std::lock_guard<std::mutex> lock(peer.send_mutex);
  if (peer.fd >= 0) {
    // Best effort: a peer that is already gone cannot be told anything.
    if (write_exact(peer.fd, &header, sizeof(header))) {
      peer.last_tx_ns.store(steady_now_ns(), std::memory_order_relaxed);
    }
  }
}

void SocketTransport::broadcast_poison() noexcept {
  for (int r = 0; r < nranks(); ++r) {
    if (r != rank_) send_control(r, kPoison);
  }
}

void SocketTransport::fail(const char* what, bool broadcast) noexcept {
  if (stopping_.load(std::memory_order_acquire)) return;  // our own teardown
  log::warn() << "socket transport: " << what << " — poisoning fabric";
  if (fabric_ == nullptr) return;
  if (broadcast) {
    // The peers cannot see this failure on their own wire (a silent peer
    // looks idle, a corrupt frame was addressed to us alone): tell them.
    // Receivers poison locally without re-broadcasting, so no echo storm.
    // Spelled as poison_local + own broadcast rather than fabric_->poison():
    // this runs on the progress thread, and Fabric::poison() reads the
    // fabric's transport pointer — which ~Fabric is resetting when teardown
    // races a late failure.
    fabric_->poison_local();
    broadcast_poison();
  } else {
    // poison_local, not poison(): the failure is already visible wire-wide
    // (each peer observes the dead connection itself); re-broadcasting from
    // every survivor would echo poison frames at shutdown.
    fabric_->poison_local();
  }
}

bool SocketTransport::read_frame(int peer_rank) {
  Peer& peer = *conns_[static_cast<usize>(peer_rank)];
  FrameHeader header{};
  if (!read_exact(peer.fd, &header, sizeof(header))) return false;
  if (header.magic != kMagic) {
    fail("corrupt frame (bad magic)", /*broadcast=*/true);
    return false;
  }
  // header.count comes off the wire: bound it before trusting it with an
  // allocation, whatever the frame type claims to be.
  if (header.count > kMaxFrameElems) {
    fail("corrupt frame (implausible payload size)", /*broadcast=*/true);
    return false;
  }
  std::vector<cplx> payload(static_cast<usize>(header.count));
  if (header.count > 0 &&
      !read_exact(peer.fd, payload.data(), payload.size() * sizeof(cplx))) {
    return false;
  }
  if (header.checksum !=
      frame_checksum(header, payload.data(), payload.size() * sizeof(cplx))) {
    if (obs::metrics_enabled()) {
      obs::registry().counter("runtime.transport.checksum_failures_total").add(1);
    }
    fail("corrupt frame (checksum mismatch)", /*broadcast=*/true);
    return false;
  }
  // Any verified frame proves the peer alive, whatever else we do with it.
  peer.last_rx_ns.store(steady_now_ns(), std::memory_order_relaxed);
  if (header.generation != generation_ && header.type != kShutdown) {
    // A straggler from a previous cluster incarnation: its data must not
    // tag-match the new run, and its poison must not kill it. (A stale
    // shutdown still means "this connection is closing" and stays valid.)
    if (obs::metrics_enabled()) {
      obs::registry().counter("runtime.recovery.stale_frames_total").add(1);
    }
    return true;
  }
  switch (header.type) {
    case kData: {
      if (header.dst != rank_) {
        fail("corrupt frame (destination is not this rank)", /*broadcast=*/true);
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.messages_in += 1;
        stats_.bytes_in += sizeof(header) + payload.size() * sizeof(cplx);
      }
      fabric_->deliver(header.src, header.dst, header.tag, std::move(payload));
      return true;
    }
    case kPoison:
      fabric_->poison_local();
      return true;
    case kShutdown:
      peer.shutdown.store(true, std::memory_order_release);
      return true;
    case kPing:
      return true;  // its work — refreshing last_rx — is already done
    default:
      fail("corrupt frame (unknown type)", /*broadcast=*/true);
      return false;
  }
}

void SocketTransport::send_heartbeats(std::int64_t now_ns) noexcept {
  if (heartbeat_ms_ <= 0 || stopping_.load(std::memory_order_acquire)) return;
  const std::int64_t interval_ns = std::int64_t(heartbeat_ms_) * 1'000'000;
  for (int r = 0; r < nranks(); ++r) {
    if (r == rank_) continue;
    Peer& peer = *conns_[static_cast<usize>(r)];
    if (peer.fd < 0) continue;
    if (now_ns - peer.last_tx_ns.load(std::memory_order_relaxed) < interval_ns) continue;
    send_control(r, kPing, make_tag(Phase::kHeartbeat, peer.ping_seq++));
  }
}

void SocketTransport::check_liveness(std::int64_t now_ns) noexcept {
  if (liveness_timeout_ms_ <= 0 || stopping_.load(std::memory_order_acquire)) return;
  const std::int64_t deadline_ns = std::int64_t(liveness_timeout_ms_) * 1'000'000;
  for (int r = 0; r < nranks(); ++r) {
    if (r == rank_) continue;
    Peer& peer = *conns_[static_cast<usize>(r)];
    if (peer.fd < 0 || peer.shutdown.load(std::memory_order_acquire)) continue;
    if (now_ns - peer.last_rx_ns.load(std::memory_order_relaxed) < deadline_ns) continue;
    log::warn() << "peer rank " << r << " sent nothing for " << liveness_timeout_ms_
                << " ms (liveness deadline)";
    fail("peer missed its liveness deadline", /*broadcast=*/true);
    return;
  }
}

void SocketTransport::progress_loop() {
  log::set_thread_rank(rank_);
  // A bare std::thread turns an escaped exception into std::terminate;
  // anything unexpected here (allocation failure, a Fabric precondition)
  // must instead poison the fabric like any other wire fault.
  try {
    poll_frames();
  } catch (const std::exception& e) {
    fail(e.what());
  } catch (...) {
    fail("unexpected exception in progress loop");
  }
}

void SocketTransport::poll_frames() {
  std::vector<pollfd> fds;
  std::vector<int> ranks;  // fds[i] belongs to ranks[i]; last entry is the pipe
  // Poll granularity: the heartbeat cadence needs the loop to wake at
  // least twice per interval even when the wire is quiet.
  int poll_ms = 200;
  if (heartbeat_ms_ > 0) poll_ms = std::min(poll_ms, std::max(10, heartbeat_ms_ / 2));
  for (;;) {
    fds.clear();
    ranks.clear();
    for (int r = 0; r < nranks(); ++r) {
      if (r == rank_) continue;
      const int fd = conns_[static_cast<usize>(r)]->fd;
      if (fd < 0) continue;
      fds.push_back(pollfd{fd, POLLIN, 0});
      ranks.push_back(r);
    }
    const bool all_closed = fds.empty();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    if (all_closed && stopping_.load(std::memory_order_acquire)) return;

    const int ready = ::poll(fds.data(), fds.size(), poll_ms);
    if (ready < 0 && errno != EINTR) {
      fail("poll failed");
      return;
    }
    const std::int64_t now = steady_now_ns();
    send_heartbeats(now);
    check_liveness(now);
    if (fds.back().revents != 0) {
      // Wake-up from the destructor: keep draining until every peer's
      // stream has ended, so late data/shutdown frames are not lost.
      char drain[16];
      [[maybe_unused]] const ssize_t n = ::read(wake_pipe_[0], drain, sizeof(drain));
    }
    for (usize i = 0; i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int r = ranks[i];
      Peer& peer = *conns_[static_cast<usize>(r)];
      if (!read_frame(r)) {
        // Stream over. Clean if the peer said goodbye (or we are tearing
        // down ourselves); otherwise the peer died mid-run.
        if (!peer.shutdown.load(std::memory_order_acquire) &&
            !stopping_.load(std::memory_order_acquire)) {
          fail("peer disconnected without shutdown");
        }
        std::lock_guard<std::mutex> lock(peer.send_mutex);
        ::close(peer.fd);
        peer.fd = -1;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // We will send nothing more, so once a peer has also said goodbye
      // the connection is drained on both sides and can go. Closing here
      // (rather than waiting for the peer's EOF) is what breaks the
      // both-sides-waiting cycle at job end: our close is the EOF the
      // peer's drain loop is waiting for. Past the drain deadline a peer
      // that never said goodbye is force-closed too — a hung (but alive)
      // peer must not block our destructor forever.
      const std::int64_t deadline = drain_deadline_ns_.load(std::memory_order_acquire);
      const bool expired = deadline > 0 && steady_now_ns() >= deadline;
      for (auto& c : conns_) {
        if (c->fd >= 0 && (expired || c->shutdown.load(std::memory_order_acquire))) {
          std::lock_guard<std::mutex> lock(c->send_mutex);
          ::close(c->fd);
          c->fd = -1;
        }
      }
    }
  }
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace ptycho::rt
