#include "runtime/socket_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"
#include "runtime/channel.hpp"

namespace ptycho::rt {

namespace {

constexpr std::uint32_t kMagic = 0x50545946u;  // "PTYF"

// Upper bound on a data frame's element count. Generous (several GiB of
// payload) but finite, so a corrupt length field fails fast instead of
// throwing std::bad_alloc off the progress thread.
constexpr std::uint64_t kMaxFrameElems = 1ull << 28;

enum FrameType : std::uint32_t {
  kHello = 0,     ///< handshake: src = connector's rank
  kData = 1,      ///< fabric message
  kPoison = 2,    ///< remote fabric poisoned (rank failure)
  kShutdown = 3,  ///< orderly close follows
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t type = kData;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int64_t tag = 0;
  std::uint64_t count = 0;  ///< payload length in cplx elements
};
static_assert(sizeof(FrameHeader) == 32, "wire header layout drifted");

/// Read exactly n bytes; false on EOF-before-any / error.
bool read_exact(int fd, void* buf, usize n) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<usize>(got);
      continue;
    }
    if (got < 0 && (errno == EINTR)) continue;
    return false;  // EOF (0) or hard error
  }
  return true;
}

/// Write exactly n bytes; false on error. MSG_NOSIGNAL: a dead peer must
/// surface as an error we map onto poison, not a SIGPIPE.
bool write_exact(int fd, const void* buf, usize n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<usize>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int make_listener(const PeerAddr& addr, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PTYCHO_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  // Restart-after-fault rebinds the same port while the old connections
  // sit in TIME_WAIT; without SO_REUSEADDR checkpoint recovery would need
  // a fresh roster every attempt.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int err = errno;
    ::close(fd);
    PTYCHO_FAIL("bind(" << addr.host << ":" << addr.port
                        << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    PTYCHO_FAIL("listen failed: " << std::strerror(err));
  }
  return fd;
}

int connect_with_retry(const PeerAddr& addr, std::chrono::seconds timeout) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    // Not a dotted quad — resolve the name.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    PTYCHO_CHECK(::getaddrinfo(addr.host.c_str(), nullptr, &hints, &res) == 0 && res != nullptr,
                 "cannot resolve peer host '" << addr.host << "'");
    sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PTYCHO_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    // Peers start concurrently: refused just means the listener is not up
    // yet. Anything past the deadline is a genuinely absent peer.
    PTYCHO_CHECK(std::chrono::steady_clock::now() < deadline,
                 "connect to peer " << addr.host << ":" << addr.port << " timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

SocketTransport::SocketTransport(int rank, std::vector<PeerAddr> peers)
    : rank_(rank), peers_(std::move(peers)) {
  PTYCHO_REQUIRE(!peers_.empty(), "socket transport needs a peer roster");
  PTYCHO_REQUIRE(rank_ >= 0 && rank_ < nranks(), "rank outside roster");
  conns_.resize(peers_.size());
  for (auto& c : conns_) c = std::make_unique<Peer>();
}

void SocketTransport::attach(Fabric& fabric) {
  PTYCHO_CHECK(fabric_ == nullptr, "transport already attached");
  fabric_ = &fabric;
  const int n = nranks();
  if (n == 1) return;  // no peers, no wire, no progress thread

  // Listener first, then connect downward: with every process following
  // the same order, a connect can at worst find the peer's backlog (bound
  // + listening) still working through accepts — never a missing socket
  // past the retry window.
  const int listener = make_listener(peers_[static_cast<usize>(rank_)], n);

  for (int r = 0; r < rank_; ++r) {
    const int fd = connect_with_retry(peers_[static_cast<usize>(r)], std::chrono::seconds(30));
    FrameHeader hello;
    hello.type = kHello;
    hello.src = rank_;
    hello.dst = r;
    if (!write_exact(fd, &hello, sizeof(hello))) {
      ::close(fd);
      ::close(listener);
      PTYCHO_FAIL("handshake with rank " << r << " failed");
    }
    conns_[static_cast<usize>(r)]->fd = fd;
  }

  for (int accepted = 0; accepted < n - 1 - rank_; ++accepted) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      ::close(listener);
      PTYCHO_FAIL("accept failed: " << std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    FrameHeader hello{};
    if (!read_exact(fd, &hello, sizeof(hello)) || hello.magic != kMagic ||
        hello.type != kHello || hello.src <= rank_ || hello.src >= n) {
      ::close(fd);
      ::close(listener);
      PTYCHO_FAIL("bad handshake from a connecting peer");
    }
    conns_[static_cast<usize>(hello.src)]->fd = fd;
  }
  // The mesh is static; close the listener so a successor transport (a
  // restarted run after a fault) can rebind the port.
  ::close(listener);

  PTYCHO_CHECK(::pipe(wake_pipe_.data()) == 0, "pipe() failed: " << std::strerror(errno));
  progress_ = std::thread([this] { progress_loop(); });
}

SocketTransport::~SocketTransport() {
  stopping_.store(true, std::memory_order_release);
  // Orderly close: the shutdown frame lets peers distinguish our exit from
  // our death. TCP ordering guarantees every data frame we sent precedes it.
  // No fd pre-check here: the progress thread may be closing fds under
  // send_mutex right now, and send_control rechecks under that lock.
  for (int r = 0; r < nranks(); ++r) {
    if (r != rank_) send_control(r, kShutdown);
  }
  // Bound the drain: a peer that is alive but hung — never tearing down,
  // never closing its socket — must not pin progress_.join() (and with it
  // ~Fabric) forever.
  drain_deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          (std::chrono::steady_clock::now() + std::chrono::seconds(5)).time_since_epoch())
          .count(),
      std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (progress_.joinable()) progress_.join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void SocketTransport::send(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(fabric_ != nullptr, "transport not attached to a fabric");
  if (dst == rank_) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.messages_out += 1;
      stats_.bytes_out += payload.size() * sizeof(cplx);
    }
    fabric_->deliver(src, dst, tag, std::move(payload));
    return;
  }
  Peer& peer = *conns_[static_cast<usize>(dst)];
  FrameHeader header;
  header.type = kData;
  header.src = src;
  header.dst = dst;
  header.tag = tag;
  header.count = payload.size();
  const usize payload_bytes = payload.size() * sizeof(cplx);
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(peer.send_mutex);
    if (peer.fd >= 0) {
      ok = write_exact(peer.fd, &header, sizeof(header)) &&
           (payload_bytes == 0 || write_exact(peer.fd, payload.data(), payload_bytes));
    }
  }
  if (!ok) {
    fail("send to a peer failed");
    return;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.messages_out += 1;
  stats_.bytes_out += sizeof(header) + payload_bytes;
}

void SocketTransport::send_control(int peer_rank, std::uint32_t type) noexcept {
  Peer& peer = *conns_[static_cast<usize>(peer_rank)];
  FrameHeader header;
  header.type = type;
  header.src = rank_;
  header.dst = peer_rank;
  std::lock_guard<std::mutex> lock(peer.send_mutex);
  if (peer.fd >= 0) {
    // Best effort: a peer that is already gone cannot be told anything.
    (void)write_exact(peer.fd, &header, sizeof(header));
  }
}

void SocketTransport::broadcast_poison() noexcept {
  for (int r = 0; r < nranks(); ++r) {
    if (r != rank_) send_control(r, kPoison);
  }
}

void SocketTransport::fail(const char* what) noexcept {
  if (stopping_.load(std::memory_order_acquire)) return;  // our own teardown
  log::warn() << "socket transport: " << what << " — poisoning fabric";
  // poison_local, not poison(): the failure is already visible wire-wide
  // (each peer observes the dead connection itself); re-broadcasting from
  // every survivor would echo poison frames at shutdown.
  if (fabric_ != nullptr) fabric_->poison_local();
}

bool SocketTransport::read_frame(int peer_rank) {
  Peer& peer = *conns_[static_cast<usize>(peer_rank)];
  FrameHeader header{};
  if (!read_exact(peer.fd, &header, sizeof(header))) return false;
  if (header.magic != kMagic) {
    fail("corrupt frame (bad magic)");
    return false;
  }
  switch (header.type) {
    case kData: {
      // header.count and header.dst come off the wire: a corrupt frame with
      // a valid magic must poison the fabric, not bad_alloc a huge vector
      // or trip Fabric::mailbox's not-local check on the progress thread.
      if (header.count > kMaxFrameElems) {
        fail("corrupt frame (implausible payload size)");
        return false;
      }
      if (header.dst != rank_) {
        fail("corrupt frame (destination is not this rank)");
        return false;
      }
      std::vector<cplx> payload(static_cast<usize>(header.count));
      if (header.count > 0 &&
          !read_exact(peer.fd, payload.data(), payload.size() * sizeof(cplx))) {
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.messages_in += 1;
        stats_.bytes_in += sizeof(header) + payload.size() * sizeof(cplx);
      }
      fabric_->deliver(header.src, header.dst, header.tag, std::move(payload));
      return true;
    }
    case kPoison:
      fabric_->poison_local();
      return true;
    case kShutdown:
      peer.shutdown.store(true, std::memory_order_release);
      return true;
    default:
      fail("corrupt frame (unknown type)");
      return false;
  }
}

void SocketTransport::progress_loop() {
  log::set_thread_rank(rank_);
  // A bare std::thread turns an escaped exception into std::terminate;
  // anything unexpected here (allocation failure, a Fabric precondition)
  // must instead poison the fabric like any other wire fault.
  try {
    poll_frames();
  } catch (const std::exception& e) {
    fail(e.what());
  } catch (...) {
    fail("unexpected exception in progress loop");
  }
}

void SocketTransport::poll_frames() {
  std::vector<pollfd> fds;
  std::vector<int> ranks;  // fds[i] belongs to ranks[i]; last entry is the pipe
  for (;;) {
    fds.clear();
    ranks.clear();
    for (int r = 0; r < nranks(); ++r) {
      if (r == rank_) continue;
      const int fd = conns_[static_cast<usize>(r)]->fd;
      if (fd < 0) continue;
      fds.push_back(pollfd{fd, POLLIN, 0});
      ranks.push_back(r);
    }
    const bool all_closed = fds.empty();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    if (all_closed && stopping_.load(std::memory_order_acquire)) return;

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) {
      fail("poll failed");
      return;
    }
    if (fds.back().revents != 0) {
      // Wake-up from the destructor: keep draining until every peer's
      // stream has ended, so late data/shutdown frames are not lost.
      char drain[16];
      [[maybe_unused]] const ssize_t n = ::read(wake_pipe_[0], drain, sizeof(drain));
    }
    for (usize i = 0; i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int r = ranks[i];
      Peer& peer = *conns_[static_cast<usize>(r)];
      if (!read_frame(r)) {
        // Stream over. Clean if the peer said goodbye (or we are tearing
        // down ourselves); otherwise the peer died mid-run.
        if (!peer.shutdown.load(std::memory_order_acquire) &&
            !stopping_.load(std::memory_order_acquire)) {
          fail("peer disconnected without shutdown");
        }
        std::lock_guard<std::mutex> lock(peer.send_mutex);
        ::close(peer.fd);
        peer.fd = -1;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // We will send nothing more, so once a peer has also said goodbye
      // the connection is drained on both sides and can go. Closing here
      // (rather than waiting for the peer's EOF) is what breaks the
      // both-sides-waiting cycle at job end: our close is the EOF the
      // peer's drain loop is waiting for. Past the drain deadline a peer
      // that never said goodbye is force-closed too — a hung (but alive)
      // peer must not block our destructor forever.
      const std::int64_t deadline = drain_deadline_ns_.load(std::memory_order_acquire);
      const bool expired =
          deadline > 0 && std::chrono::steady_clock::now().time_since_epoch() >=
                              std::chrono::nanoseconds(deadline);
      for (auto& c : conns_) {
        if (c->fd >= 0 && (expired || c->shutdown.load(std::memory_order_acquire))) {
          std::lock_guard<std::mutex> lock(c->send_mutex);
          ::close(c->fd);
          c->fd = -1;
        }
      }
    }
  }
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace ptycho::rt
