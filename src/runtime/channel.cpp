#include "runtime/channel.hpp"

#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace ptycho::rt {

namespace {
using Key = std::pair<int, Tag>;  // (src, tag)
}

struct Fabric::Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<Key, std::deque<std::vector<cplx>>> queues;
};

struct RecvRequest::State {
  Fabric* fabric = nullptr;
  Fabric::Mailbox* box = nullptr;
  Key key;
  bool taken = false;
};

Fabric::~Fabric() = default;

Fabric::Fabric(int nranks) : nranks_(nranks) {
  PTYCHO_REQUIRE(nranks >= 1, "fabric needs at least one rank");
  mailboxes_.reserve(static_cast<usize>(nranks));
  for (int r = 0; r < nranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
  stats_.bytes_sent.assign(static_cast<usize>(nranks), 0);
  stats_.messages_sent.assign(static_cast<usize>(nranks), 0);
}

Fabric::Mailbox& Fabric::mailbox(int dst) {
  PTYCHO_CHECK(dst >= 0 && dst < nranks_, "invalid destination rank " << dst);
  return *mailboxes_[static_cast<usize>(dst)];
}

void Fabric::isend(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(src >= 0 && src < nranks_, "invalid source rank " << src);
  if (poisoned()) return;  // the job is dead; drop traffic silently
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.bytes_sent[static_cast<usize>(src)] += payload.size() * sizeof(cplx);
    stats_.messages_sent[static_cast<usize>(src)] += 1;
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& messages = obs::registry().counter("fabric_messages_total");
    static obs::Counter& bytes = obs::registry().counter("fabric_bytes_total");
    messages.add(1);
    bytes.add(payload.size() * sizeof(cplx));
  }
  Mailbox& box = mailbox(dst);
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[Key{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

RecvRequest Fabric::irecv(int dst, int src, Tag tag) {
  PTYCHO_CHECK(src >= 0 && src < nranks_, "invalid source rank " << src);
  RecvRequest req;
  req.state_ = std::make_shared<RecvRequest::State>();
  req.state_->fabric = this;
  req.state_->box = &mailbox(dst);
  req.state_->key = Key{src, tag};
  return req;
}

std::vector<cplx> Fabric::recv(int dst, int src, Tag tag, double* wait_seconds) {
  RecvRequest req = irecv(dst, src, tag);
  const double waited = req.wait();
  if (wait_seconds != nullptr) *wait_seconds = waited;
  return req.take();
}

FabricStats Fabric::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Fabric::clear_poison() noexcept {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->queues.clear();
  }
  poisoned_.store(false, std::memory_order_release);
}

void Fabric::poison() noexcept {
  poisoned_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    // Take the mailbox lock so a receiver between its predicate check and
    // its cv wait cannot miss the wake-up.
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

bool RecvRequest::test() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  std::lock_guard<std::mutex> lock(state_->box->mutex);
  auto it = state_->box->queues.find(state_->key);
  if (it != state_->box->queues.end() && !it->second.empty()) return true;
  // Same contract as wait(): a message that can no longer arrive must
  // surface the failure, not leave the poller spinning forever.
  if (state_->fabric->poisoned()) {
    throw RankFailure("receive aborted: fabric poisoned by a rank failure");
  }
  return false;
}

double RecvRequest::wait() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  auto& box = *state_->box;
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait(lock, [&] {
    if (state_->fabric->poisoned()) return true;
    auto it = box.queues.find(state_->key);
    return it != box.queues.end() && !it->second.empty();
  });
  {
    auto it = box.queues.find(state_->key);
    const bool have_message = it != box.queues.end() && !it->second.empty();
    if (!have_message && state_->fabric->poisoned()) {
      throw RankFailure("receive aborted: fabric poisoned by a rank failure");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<cplx> RecvRequest::take() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  PTYCHO_CHECK(!state_->taken, "RecvRequest payload already taken");
  wait();
  auto& box = *state_->box;
  std::lock_guard<std::mutex> lock(box.mutex);
  auto it = box.queues.find(state_->key);
  PTYCHO_CHECK(it != box.queues.end() && !it->second.empty(), "message vanished");
  std::vector<cplx> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) box.queues.erase(it);
  state_->taken = true;
  return payload;
}

}  // namespace ptycho::rt
