#include "runtime/channel.hpp"

#include <chrono>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace ptycho::rt {

namespace {
using Key = std::pair<int, Tag>;  // (src, tag)
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kVerticalForward: return "vertical-forward";
    case Phase::kVerticalBackward: return "vertical-backward";
    case Phase::kHorizontalForward: return "horizontal-forward";
    case Phase::kHorizontalBackward: return "horizontal-backward";
    case Phase::kDirect: return "direct";
    case Phase::kAllreduce: return "allreduce";
    case Phase::kStitch: return "stitch";
    case Phase::kPaste: return "paste";
    case Phase::kCost: return "cost";
    case Phase::kProbe: return "probe";
    case Phase::kRestore: return "restore";
    case Phase::kRestoreProbe: return "restore-probe";
    case Phase::kBarrier: return "barrier";
    case Phase::kTest: return "test";
    case Phase::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

struct Fabric::Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<Key, std::deque<std::vector<cplx>>> queues;
};

struct RecvRequest::State {
  Fabric* fabric = nullptr;
  Fabric::Mailbox* box = nullptr;
  Key key;
  bool taken = false;
};

Fabric::~Fabric() {
  // The transport must die first: a socket backend's progress thread keeps
  // calling deliver() / poison_local() until ~Transport joins it, so the
  // mailboxes and poison state it touches have to outlive the transport
  // regardless of member declaration order.
  transport_.reset();
}

Fabric::Fabric(int nranks) : Fabric(std::make_unique<InProcTransport>(nranks)) {}

Fabric::Fabric(std::unique_ptr<Transport> transport) : transport_(std::move(transport)) {
  PTYCHO_REQUIRE(transport_ != nullptr, "fabric needs a transport");
  nranks_ = transport_->nranks();
  PTYCHO_REQUIRE(nranks_ >= 1, "fabric needs at least one rank");
  mailboxes_.reserve(static_cast<usize>(nranks_));
  for (int r = 0; r < nranks_; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
  stats_.bytes_sent.assign(static_cast<usize>(nranks_), 0);
  stats_.messages_sent.assign(static_cast<usize>(nranks_), 0);
  // Resolve metric objects up front: the registry hands out stable
  // references, and per-backend names mean a static local cannot be used
  // (it would freeze whichever backend constructed a fabric first).
  const std::string backend = transport_->name();
  messages_counter_ = &obs::registry().counter("fabric_messages_total");
  bytes_counter_ = &obs::registry().counter("fabric_bytes_total");
  backend_messages_counter_ =
      &obs::registry().counter("fabric_messages_total_" + backend);
  backend_bytes_counter_ = &obs::registry().counter("fabric_bytes_total_" + backend);
  // attach() last: a socket transport starts its progress thread here and
  // may deliver() immediately, so the mailboxes must already exist.
  transport_->attach(*this);
}

Fabric::Mailbox& Fabric::mailbox(int dst) {
  PTYCHO_CHECK(dst >= 0 && dst < nranks_, "invalid destination rank " << dst);
  PTYCHO_CHECK(is_local(dst), "rank " << dst << " is not hosted by this process");
  return *mailboxes_[static_cast<usize>(dst)];
}

void Fabric::isend(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(src >= 0 && src < nranks_, "invalid source rank " << src);
  PTYCHO_CHECK(dst >= 0 && dst < nranks_, "invalid destination rank " << dst);
  if (poisoned()) return;  // the job is dead; drop traffic silently
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.bytes_sent[static_cast<usize>(src)] += payload.size() * sizeof(cplx);
    stats_.messages_sent[static_cast<usize>(src)] += 1;
  }
  if (obs::metrics_enabled()) {
    messages_counter_->add(1);
    bytes_counter_->add(payload.size() * sizeof(cplx));
    backend_messages_counter_->add(1);
    backend_bytes_counter_->add(payload.size() * sizeof(cplx));
  }
  transport_->send(src, dst, tag, std::move(payload));
}

void Fabric::deliver(int src, int dst, Tag tag, std::vector<cplx> payload) {
  if (poisoned()) return;  // clear_poison() drains; don't re-litter mailboxes
  Mailbox& box = mailbox(dst);
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[Key{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

RecvRequest Fabric::irecv(int dst, int src, Tag tag) {
  PTYCHO_CHECK(src >= 0 && src < nranks_, "invalid source rank " << src);
  RecvRequest req;
  req.state_ = std::make_shared<RecvRequest::State>();
  req.state_->fabric = this;
  req.state_->box = &mailbox(dst);
  req.state_->key = Key{src, tag};
  return req;
}

std::vector<cplx> Fabric::recv(int dst, int src, Tag tag, double* wait_seconds) {
  RecvRequest req = irecv(dst, src, tag);
  const double waited = req.wait();
  if (wait_seconds != nullptr) *wait_seconds = waited;
  return req.take();
}

FabricStats Fabric::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Fabric::clear_poison() noexcept {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->queues.clear();
  }
  poisoned_.store(false, std::memory_order_release);
}

void Fabric::poison_local() noexcept {
  poisoned_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    // Take the mailbox lock so a receiver between its predicate check and
    // its cv wait cannot miss the wake-up.
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

void Fabric::poison() noexcept {
  poison_local();
  transport_->broadcast_poison();
}

bool RecvRequest::test() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  std::lock_guard<std::mutex> lock(state_->box->mutex);
  auto it = state_->box->queues.find(state_->key);
  if (it != state_->box->queues.end() && !it->second.empty()) return true;
  // Same contract as wait(): a message that can no longer arrive must
  // surface the failure, not leave the poller spinning forever.
  if (state_->fabric->poisoned()) {
    throw RankFailure("receive aborted: fabric poisoned by a rank failure");
  }
  return false;
}

double RecvRequest::wait() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  auto& box = *state_->box;
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto arrived_or_dead = [&] {
    if (state_->fabric->poisoned()) return true;
    auto it = box.queues.find(state_->key);
    return it != box.queues.end() && !it->second.empty();
  };
  const int deadline_ms = state_->fabric->recv_deadline_ms();
  if (deadline_ms > 0) {
    if (!box.cv.wait_for(lock, std::chrono::milliseconds(deadline_ms), arrived_or_dead)) {
      // Nothing arrived within the deadline: some rank is hung or dead.
      // Poison (cluster-wide, via the transport) so every peer's blocked
      // communication aborts too, then surface the failure here.
      lock.unlock();
      state_->fabric->poison();
      throw RankFailure("receive timed out: no matching message within the recv deadline");
    }
  } else {
    box.cv.wait(lock, arrived_or_dead);
  }
  {
    auto it = box.queues.find(state_->key);
    const bool have_message = it != box.queues.end() && !it->second.empty();
    if (!have_message && state_->fabric->poisoned()) {
      throw RankFailure("receive aborted: fabric poisoned by a rank failure");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<cplx> RecvRequest::take() {
  PTYCHO_CHECK(state_ != nullptr, "RecvRequest not initialized");
  PTYCHO_CHECK(!state_->taken, "RecvRequest payload already taken");
  wait();
  auto& box = *state_->box;
  std::lock_guard<std::mutex> lock(box.mutex);
  auto it = box.queues.find(state_->key);
  PTYCHO_CHECK(it != box.queues.end() && !it->second.empty(), "message vanished");
  std::vector<cplx> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) box.queues.erase(it);
  state_->taken = true;
  return payload;
}

}  // namespace ptycho::rt
