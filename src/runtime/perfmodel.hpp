// Calibrated discrete-event performance model.
//
// The paper's headline numbers (Tables II/III, Fig. 7) come from runs on
// 6..4158 V100 GPUs. This host has one CPU core, so wall-clock scaling at
// paper scale is *modeled*: the real per-rank workloads and the real
// message schedules of both algorithms (from the Partition geometry at
// paper dimensions) are replayed through an event simulation with a
// machine model (effective FFT throughput + cache-boost curve + link
// latency/bandwidth). One constant — effective_flops — is calibrated;
// every other cell of the tables is then a prediction of the model.
// See DESIGN.md "substitutions" and EXPERIMENTS.md for the validation.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "partition/tilegrid.hpp"

namespace ptycho::rt {

struct MachineModel {
  /// Effective flop/s of one GPU on the multislice FFT chain (captures
  /// kernel-launch and memory-bandwidth inefficiency at 1024^2 tiles).
  double effective_flops = 6.0e10;
  /// Cache model: per-rank speedup grows from 1 to cache_boost as the
  /// per-rank working set shrinks from ws_ref to cache_bytes (paper
  /// Sec. VI-C: L1 hit rate 44% -> 59% from 24 to 54 GPUs).
  double cache_bytes = 24.0e6;
  double cache_boost = 6.0;
  double ws_ref_bytes = 8.0e9;
  /// Link model (NVLink within node / EDR-IB across; effective mix).
  double link_latency = 6.0e-6;        ///< seconds per message
  double link_bandwidth = 2.5e10;      ///< bytes/second
  double msg_overhead = 4.0e-6;        ///< host-side per message
  /// Per-probe constant overhead (kernel launches etc.).
  double probe_overhead = 2.0e-4;
  /// Device memory bandwidth (tile update / buffer add costs).
  double mem_bandwidth = 8.0e11;
};

/// Per-rank accumulated time by category (Fig. 7b bars).
struct BreakdownEntry {
  double compute = 0.0;
  double wait = 0.0;
  double comm = 0.0;
  [[nodiscard]] double total() const { return compute + wait + comm; }
};

struct ScheduleResult {
  double makespan_seconds = 0.0;
  std::vector<BreakdownEntry> per_rank;
  double mean_cache_factor = 1.0;
  [[nodiscard]] BreakdownEntry mean() const;
};

struct GdScheduleParams {
  int iterations = 100;
  int passes_per_iteration = 1;  ///< bi-directional pass count per epoch
  bool appp = true;              ///< false: barrier + global gradient all-reduce
};

struct HveScheduleParams {
  int iterations = 100;
  int pastes_per_iteration = 1;
};

class PerfModel {
 public:
  /// `per_rank_bytes` is the modeled per-GPU working set (memory model);
  /// it feeds the cache-boost curve.
  PerfModel(MachineModel machine, const Partition& partition, const PaperDataset& dataset,
            std::vector<double> per_rank_bytes);

  [[nodiscard]] ScheduleResult simulate_gd(const GdScheduleParams& params) const;
  [[nodiscard]] ScheduleResult simulate_hve(const HveScheduleParams& params) const;

  /// Flops of one probe-gradient evaluation (forward + adjoint multislice
  /// at the detector resolution).
  [[nodiscard]] static double probe_gradient_flops(index_t fft_n, index_t slices);

  /// Seconds of compute for one probe on `rank` (cache factor applied).
  [[nodiscard]] double probe_seconds(int rank) const;

  [[nodiscard]] double cache_factor(int rank) const;

  /// Modeled time for one point-to-point message of `bytes`.
  [[nodiscard]] double message_seconds(double bytes) const;

 private:
  MachineModel machine_;
  const Partition& partition_;
  PaperDataset dataset_;
  std::vector<double> per_rank_bytes_;
};

}  // namespace ptycho::rt
