#include "runtime/topology.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ptycho::rt {

Mesh2D::Mesh2D(int rows, int cols) : rows_(rows), cols_(cols) {
  PTYCHO_REQUIRE(rows >= 1 && cols >= 1, "mesh extents must be >= 1");
}

std::vector<int> Mesh2D::neighbors8(int rank) const {
  const int r = row_of(rank);
  const int c = col_of(rank);
  std::vector<int> out;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      if (valid(r + dr, c + dc)) out.push_back(rank_of(r + dr, c + dc));
    }
  }
  return out;
}

Mesh2D::Cardinal Mesh2D::cardinal(int rank) const {
  const int r = row_of(rank);
  const int c = col_of(rank);
  Cardinal card;
  if (valid(r - 1, c)) card.north = rank_of(r - 1, c);
  if (valid(r + 1, c)) card.south = rank_of(r + 1, c);
  if (valid(r, c - 1)) card.west = rank_of(r, c - 1);
  if (valid(r, c + 1)) card.east = rank_of(r, c + 1);
  return card;
}

Mesh2D choose_mesh(int nranks, double aspect) {
  PTYCHO_REQUIRE(nranks >= 1, "mesh needs at least one rank");
  PTYCHO_REQUIRE(aspect > 0.0, "aspect must be positive");
  int best_rows = 1;
  double best_score = std::numeric_limits<double>::max();
  for (int rows = 1; rows <= nranks; ++rows) {
    if (nranks % rows != 0) continue;
    const int cols = nranks / rows;
    // Score: distance of rows/cols from the requested aspect, in log space
    // so 2x-too-wide and 2x-too-tall are equally bad.
    const double score =
        std::abs(std::log(static_cast<double>(rows) / static_cast<double>(cols)) -
                 std::log(aspect));
    if (score < best_score) {
      best_score = score;
      best_rows = rows;
    }
  }
  return Mesh2D(best_rows, nranks / best_rows);
}

}  // namespace ptycho::rt
