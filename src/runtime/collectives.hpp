// Collective operations built on the point-to-point fabric.
//
// The paper rejects global all-reduce for gradient exchange ("all-reduce
// has large communication overhead and significantly decreases
// scalability", Sec. V) — we implement it anyway: it is the non-APPP
// baseline for Fig. 7b and the reduction used for global cost values.
#pragma once

#include "runtime/cluster.hpp"

namespace ptycho::rt {

/// Binomial-tree allreduce (sum) of a complex vector; every rank ends with
/// the elementwise sum. All ranks must call with equal-sized buffers.
void allreduce_sum(RankContext& ctx, std::vector<cplx>& buffer, int phase_tag);

/// Allreduce of one double (packed into a cplx payload).
[[nodiscard]] double allreduce_sum_scalar(RankContext& ctx, double value, int phase_tag);

/// Broadcast from root (tree).
void broadcast(RankContext& ctx, std::vector<cplx>& buffer, int root, int phase_tag);

}  // namespace ptycho::rt
