// Collective operations built on the point-to-point fabric.
//
// The paper rejects global all-reduce for gradient exchange ("all-reduce
// has large communication overhead and significantly decreases
// scalability", Sec. V) — we implement it anyway: it is the non-APPP
// baseline for Fig. 7b and the reduction used for global cost values.
#pragma once

#include "runtime/cluster.hpp"

namespace ptycho::rt {

/// Binomial-tree allreduce (sum) of a complex vector; every rank ends with
/// the elementwise sum. All ranks must call with equal-sized buffers.
/// `instance` distinguishes overlapping collectives in the same phase
/// (e.g. the per-chunk gradient allreduce uses the chunk counter); it is
/// folded into the stage bits of the tag, so two in-flight collectives
/// with different instances can never match each other's traffic.
void allreduce_sum(RankContext& ctx, std::vector<cplx>& buffer, Phase phase,
                   std::int64_t instance = 0);

/// Split-phase allreduce: construction posts the collective's first
/// non-blocking send where one exists with no prior receive (the reduce
/// tree's leaf senders — odd ranks), and finish() runs the remaining
/// reduce rounds plus the broadcast down. Between the two the caller may
/// do unrelated work or post unrelated traffic — the eager-isend fabric
/// matches messages by (src, tag), so interleaved collectives with
/// distinct phase tags cannot cross. Every rank must construct and finish
/// in the same program order; `buffer` must stay alive and untouched until
/// finish() returns. allreduce_sum() is exactly construct + finish.
class AllreduceHandle {
 public:
  AllreduceHandle(RankContext& ctx, std::vector<cplx>& buffer, Phase phase,
                  std::int64_t instance = 0);

  AllreduceHandle(const AllreduceHandle&) = delete;
  AllreduceHandle& operator=(const AllreduceHandle&) = delete;

  /// Complete the collective; `buffer` then holds the global sum on every
  /// rank. Must be called exactly once.
  void finish();

 private:
  RankContext& ctx_;
  std::vector<cplx>& buffer_;
  Phase phase_;
  std::int64_t instance_;
  bool posted_ = false;    ///< the leaf send went out at construction
  bool finished_ = false;
};

/// Allreduce of one double (packed into a cplx payload).
[[nodiscard]] double allreduce_sum_scalar(RankContext& ctx, double value, Phase phase,
                                          std::int64_t instance = 0);

/// Broadcast from root (tree).
void broadcast(RankContext& ctx, std::vector<cplx>& buffer, int root, Phase phase,
               std::int64_t instance = 0);

}  // namespace ptycho::rt
