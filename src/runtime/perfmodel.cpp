#include "runtime/perfmodel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ptycho::rt {

BreakdownEntry ScheduleResult::mean() const {
  BreakdownEntry m;
  if (per_rank.empty()) return m;
  for (const BreakdownEntry& e : per_rank) {
    m.compute += e.compute;
    m.wait += e.wait;
    m.comm += e.comm;
  }
  const double n = static_cast<double>(per_rank.size());
  m.compute /= n;
  m.wait /= n;
  m.comm /= n;
  return m;
}

PerfModel::PerfModel(MachineModel machine, const Partition& partition,
                     const PaperDataset& dataset, std::vector<double> per_rank_bytes)
    : machine_(machine), partition_(partition), dataset_(dataset),
      per_rank_bytes_(std::move(per_rank_bytes)) {
  PTYCHO_REQUIRE(per_rank_bytes_.size() == static_cast<usize>(partition.nranks()),
                 "per_rank_bytes must have one entry per rank");
}

double PerfModel::probe_gradient_flops(index_t fft_n, index_t slices) {
  // Per slice: one forward FFT pair for the propagator (2 x 2D FFT) plus
  // pointwise transmission/propagation (~16 flops/px); doubled for the
  // adjoint sweep; plus the far-field transform and residual.
  const double n2 = static_cast<double>(fft_n) * static_cast<double>(fft_n);
  const double fft2d = 5.0 * n2 * std::log2(n2);  // standard 5 N log2 N
  const double per_slice = 2.0 * fft2d + 16.0 * n2;
  const double far_field = 2.0 * fft2d + 10.0 * n2;
  return 2.0 * (static_cast<double>(slices) * per_slice) + far_field;
}

double PerfModel::cache_factor(int rank) const {
  const double ws = std::max(per_rank_bytes_[static_cast<usize>(rank)], machine_.cache_bytes);
  if (ws >= machine_.ws_ref_bytes) return 1.0;
  // Log-space interpolation between 1 (working set >= ws_ref) and
  // cache_boost (working set fits the cache).
  const double t = std::log(machine_.ws_ref_bytes / ws) /
                   std::log(machine_.ws_ref_bytes / machine_.cache_bytes);
  return 1.0 + (machine_.cache_boost - 1.0) * std::min(1.0, std::max(0.0, t));
}

double PerfModel::probe_seconds(int rank) const {
  const double flops = probe_gradient_flops(dataset_.meas_n, dataset_.slices);
  return flops / (machine_.effective_flops * cache_factor(rank)) + machine_.probe_overhead;
}

double PerfModel::message_seconds(double bytes) const {
  return machine_.link_latency + machine_.msg_overhead + bytes / machine_.link_bandwidth;
}

namespace {

double region_bytes(const Rect& r, index_t slices) {
  return static_cast<double>(r.area()) * static_cast<double>(slices) *
         static_cast<double>(sizeof(cplx));
}

/// Attribute a recv-side block: the portion explained by wire time counts
/// as comm, the rest (peer hadn't even produced the data) as wait.
void attribute_block(BreakdownEntry& e, double block, double wire) {
  const double comm = std::min(block, wire);
  e.comm += comm;
  e.wait += block - comm;
}

}  // namespace

ScheduleResult PerfModel::simulate_gd(const GdScheduleParams& params) const {
  const rt::Mesh2D& mesh = partition_.mesh();
  const int nranks = mesh.size();
  const int rows = mesh.rows();
  const int cols = mesh.cols();
  const index_t slices = dataset_.slices;

  // Precompute per-rank compute chunk and per-edge pass bytes.
  std::vector<double> probe_sec(static_cast<usize>(nranks));
  std::vector<double> update_sec(static_cast<usize>(nranks));
  for (int k = 0; k < nranks; ++k) {
    const TileSpec& tile = partition_.tile(k);
    probe_sec[static_cast<usize>(k)] =
        static_cast<double>(tile.own_probes.size()) * probe_seconds(k);
    // Tile update: read+write of the extended tile (memory bound).
    update_sec[static_cast<usize>(k)] =
        2.0 * region_bytes(tile.extended, slices) / machine_.mem_bandwidth;
  }
  // Vertical edge (r,c)->(r+1,c) and horizontal (r,c)->(r,c+1) bytes.
  std::vector<double> v_bytes(static_cast<usize>(std::max(0, (rows - 1)) * cols), 0.0);
  std::vector<double> h_bytes(static_cast<usize>(rows * std::max(0, cols - 1)), 0.0);
  for (int r = 0; r + 1 < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      v_bytes[static_cast<usize>(r * cols + c)] =
          region_bytes(partition_.overlap(mesh.rank_of(r, c), mesh.rank_of(r + 1, c)), slices);
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      h_bytes[static_cast<usize>(r * (cols - 1) + c)] =
          region_bytes(partition_.overlap(mesh.rank_of(r, c), mesh.rank_of(r, c + 1)), slices);
    }
  }
  const double field_bytes = region_bytes(partition_.field(), slices);

  ScheduleResult result;
  result.per_rank.assign(static_cast<usize>(nranks), BreakdownEntry{});
  std::vector<double> clock(static_cast<usize>(nranks), 0.0);
  std::vector<double> stage_in(static_cast<usize>(nranks), 0.0);
  std::vector<double> stage_out(static_cast<usize>(nranks), 0.0);

  const int chunks = std::max(1, params.passes_per_iteration);
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int chunk = 0; chunk < chunks; ++chunk) {
      // Compute a slice of the probes, then one bi-directional pass.
      for (int k = 0; k < nranks; ++k) {
        const auto uk = static_cast<usize>(k);
        const double dt = probe_sec[uk] / static_cast<double>(chunks);
        clock[uk] += dt;
        result.per_rank[uk].compute += dt;
        stage_in[uk] = clock[uk];
      }

      if (!params.appp) {
        // Without APPP: the same four directional passes, but with
        // synchronous blocking transfers and a barrier between stages —
        // no pipelining across lanes or directions, and strips move as
        // per-row strided copies instead of packed buffers. Each stage
        // serializes hop by hop down the deepest chain, so the pass cost
        // grows with the mesh depth (~sqrt(P)) and dominates at scale —
        // the Fig. 7b "w/o" bars.
        const double t_sync = *std::max_element(stage_in.begin(), stage_in.end());
        const double per_op = machine_.link_latency + machine_.msg_overhead;
        double pass_seconds = 0.0;
        for (const bool vertical : {true, false}) {
          const int depth = vertical ? rows : cols;
          if (depth < 2) continue;
          // Mean per-hop cost over the direction's edges.
          const auto& edge_bytes = vertical ? v_bytes : h_bytes;
          double mean_bytes = 0.0;
          double mean_rows = 0.0;
          usize counted = 0;
          for (double b : edge_bytes) {
            if (b <= 0.0) continue;
            mean_bytes += b;
            // Rows in the strip: bytes / (strip width * slices * sizeof);
            // approximate width with the mean tile width of the direction.
            ++counted;
          }
          if (counted == 0) continue;
          mean_bytes /= static_cast<double>(counted);
          const double mean_width = static_cast<double>(
              vertical ? partition_.field().w / cols : partition_.field().h / rows);
          mean_rows = mean_bytes / (mean_width * static_cast<double>(slices) *
                                    static_cast<double>(sizeof(cplx)));
          const double hop = (mean_rows * static_cast<double>(slices)) * per_op +
                             mean_bytes / machine_.link_bandwidth;
          // Forward + backward sweeps of a depth-long blocking chain.
          pass_seconds += 2.0 * static_cast<double>(depth - 1) * hop;
        }
        for (int k = 0; k < nranks; ++k) {
          const auto uk = static_cast<usize>(k);
          result.per_rank[uk].wait += t_sync - stage_in[uk];
          result.per_rank[uk].comm += pass_seconds;
          clock[uk] = t_sync + pass_seconds;
        }
        (void)field_bytes;
      } else {
        // APPP: pipelined directional chains; each stage's completion time
        // feeds the next, columns/rows progress independently.
        auto run_chain = [&](bool vertical, bool forward) {
          const int lanes = vertical ? cols : rows;
          const int depth = vertical ? rows : cols;
          for (int lane = 0; lane < lanes; ++lane) {
            for (int step = 0; step < depth; ++step) {
              const int pos = forward ? step : depth - 1 - step;
              const int k =
                  vertical ? mesh.rank_of(pos, lane) : mesh.rank_of(lane, pos);
              const auto uk = static_cast<usize>(k);
              double t = stage_in[uk];
              if (step > 0) {
                const int prev_pos = forward ? pos - 1 : pos + 1;
                const int pk = vertical ? mesh.rank_of(prev_pos, lane)
                                        : mesh.rank_of(lane, prev_pos);
                const int edge_idx = vertical ? (std::min(pos, prev_pos) * cols + lane)
                                              : (lane * (cols - 1) + std::min(pos, prev_pos));
                const double bytes =
                    vertical ? v_bytes[static_cast<usize>(edge_idx)]
                             : h_bytes[static_cast<usize>(edge_idx)];
                const double wire = message_seconds(bytes);
                const double arrival = stage_out[static_cast<usize>(pk)] + wire;
                if (arrival > t) {
                  attribute_block(result.per_rank[uk], arrival - t, wire);
                  t = arrival;
                }
                // Buffer add/replace cost (memory bound).
                const double add_cost = 2.0 * bytes / machine_.mem_bandwidth;
                t += add_cost;
                result.per_rank[uk].compute += add_cost;
              }
              stage_out[uk] = t;
            }
          }
          stage_in = stage_out;
        };
        run_chain(true, true);    // vertical forward
        run_chain(true, false);   // vertical backward
        run_chain(false, true);   // horizontal forward
        run_chain(false, false);  // horizontal backward
        for (int k = 0; k < nranks; ++k) clock[static_cast<usize>(k)] = stage_in[static_cast<usize>(k)];
      }

      // Apply the accumulated gradients to the tile.
      for (int k = 0; k < nranks; ++k) {
        const auto uk = static_cast<usize>(k);
        clock[uk] += update_sec[uk];
        result.per_rank[uk].compute += update_sec[uk];
      }
    }
  }

  result.makespan_seconds = *std::max_element(clock.begin(), clock.end());
  double cache_sum = 0.0;
  for (int k = 0; k < nranks; ++k) cache_sum += cache_factor(k);
  result.mean_cache_factor = cache_sum / static_cast<double>(nranks);
  return result;
}

ScheduleResult PerfModel::simulate_hve(const HveScheduleParams& params) const {
  const rt::Mesh2D& mesh = partition_.mesh();
  const int nranks = mesh.size();
  const index_t slices = dataset_.slices;

  // Halo-refill depth: one paste round propagates *consistent* voxels
  // inward from a tile's owned core by (tile - halo); filling a halo of
  // width h therefore takes ~ h / (t - h) local-update + paste cycles
  // (redundant compute AND traffic repeat). The depth diverges as h -> t,
  // smoothly connecting to the hard paste-infeasibility ("NA") limit.
  // This is what bends the HVE runtime back up at large GPU counts
  // (Table III(b): 59.2 min at 198 GPUs -> 189.5 min at 462).
  index_t min_tile_extent = std::numeric_limits<index_t>::max();
  index_t max_halo = 0;
  for (const TileSpec& tile : partition_.tiles()) {
    min_tile_extent = std::min({min_tile_extent, tile.owned.h, tile.owned.w});
    max_halo = std::max(max_halo, tile.max_halo());
  }
  const index_t core = std::max<index_t>(1, min_tile_extent - max_halo);
  const int consistency_rounds = std::max<int>(1, static_cast<int>(max_halo / core));

  std::vector<double> compute_sec(static_cast<usize>(nranks));
  for (int k = 0; k < nranks; ++k) {
    const TileSpec& tile = partition_.tile(k);
    const double probes =
        static_cast<double>(tile.own_probes.size() + tile.replicated_probes.size());
    compute_sec[static_cast<usize>(k)] =
        probes * probe_seconds(k) +
        2.0 * region_bytes(tile.extended, slices) / machine_.mem_bandwidth;
  }
  // Paste traffic per rank: owned strips into each 8-neighbour's halo plus
  // the symmetric receives. Pastes are strided sub-array remote copies
  // (rows of a 2-D strip per slice), so each row costs a per-operation
  // overhead on top of the wire bytes — unlike the packed GD messages.
  const double strided_op_overhead = machine_.msg_overhead * 0.25;
  std::vector<double> paste_sec(static_cast<usize>(nranks), 0.0);
  for (int k = 0; k < nranks; ++k) {
    double seconds = 0.0;
    for (int nb : mesh.neighbors8(k)) {
      const Rect out_strip = intersect(partition_.tile(k).owned, partition_.tile(nb).extended);
      const Rect in_strip = intersect(partition_.tile(nb).owned, partition_.tile(k).extended);
      for (const Rect& strip : {out_strip, in_strip}) {
        if (strip.empty()) continue;
        seconds += message_seconds(region_bytes(strip, slices)) +
                   strided_op_overhead * static_cast<double>(strip.h * slices);
      }
    }
    paste_sec[static_cast<usize>(k)] = seconds;
  }

  ScheduleResult result;
  result.per_rank.assign(static_cast<usize>(nranks), BreakdownEntry{});
  std::vector<double> clock(static_cast<usize>(nranks), 0.0);

  // Each consistency round repeats the full local sweep (redundant compute)
  // plus a paste; pastes_per_iteration only splits the sweep, it does not
  // repeat it.
  const int rounds = std::max(1, params.pastes_per_iteration) * consistency_rounds;
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int round = 0; round < rounds; ++round) {
      double t_sync = 0.0;
      for (int k = 0; k < nranks; ++k) {
        const auto uk = static_cast<usize>(k);
        const double dt =
            compute_sec[uk] / static_cast<double>(std::max(1, params.pastes_per_iteration));
        clock[uk] += dt;
        result.per_rank[uk].compute += dt;
        t_sync = std::max(t_sync, clock[uk]);
      }
      // Synchronous pastes: barrier, then blocking exchanges.
      for (int k = 0; k < nranks; ++k) {
        const auto uk = static_cast<usize>(k);
        result.per_rank[uk].wait += t_sync - clock[uk];
        result.per_rank[uk].comm += paste_sec[uk];
        clock[uk] = t_sync + paste_sec[uk];
      }
    }
  }

  result.makespan_seconds = *std::max_element(clock.begin(), clock.end());
  double cache_sum = 0.0;
  for (int k = 0; k < nranks; ++k) cache_sum += cache_factor(k);
  result.mean_cache_factor = cache_sum / static_cast<double>(nranks);
  return result;
}

}  // namespace ptycho::rt
