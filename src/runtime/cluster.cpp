#include "runtime/cluster.hpp"

#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ptycho::rt {

void RankContext::isend(int dst, Tag tag, std::vector<cplx> payload) {
  // Whole-call span: fabric enqueue cost is the virtual cluster's model of
  // send-side communication time.
  obs::SpanScope span("isend", obs::Phase::kComm);
  fabric_.isend(rank_, dst, tag, std::move(payload));
}

std::vector<cplx> RankContext::recv(int src, Tag tag) {
  double waited = 0.0;
  std::vector<cplx> payload = fabric_.recv(rank_, src, tag, &waited);
  // Only the blocked portion counts as wait; the fabric reports it.
  obs::account("recv-wait", obs::Phase::kWait, waited);
  return payload;
}

RecvRequest RankContext::irecv(int src, Tag tag) { return fabric_.irecv(rank_, src, tag); }

void RankContext::barrier() {
  WallTimer timer;
  cluster_.barrier_wait();
  obs::account("barrier", obs::Phase::kWait, timer.seconds());
}

void RankContext::fault_point(std::uint64_t step) { cluster_.maybe_fault(rank_, step); }

VirtualCluster::VirtualCluster(int nranks, std::uint64_t seed)
    : nranks_(nranks),
      seed_(seed),
      fabric_(nranks),
      trackers_(static_cast<usize>(nranks)),
      profilers_(static_cast<usize>(nranks)),
      ledgers_(static_cast<usize>(nranks)) {
  PTYCHO_REQUIRE(nranks >= 1, "cluster needs at least one rank");
}

void VirtualCluster::run(const RankBody& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<usize>(nranks_));
  std::vector<std::exception_ptr> errors(static_cast<usize>(nranks_));

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      const auto ur = static_cast<usize>(r);
      TrackerScope scope(trackers_[ur]);
      // Identify this thread to the observability layer: spans carry the
      // rank, phase durations land in this rank's ledger, log lines get a
      // rank tag. Pool workers inherit the context per parallel region.
      obs::set_thread_context(obs::ThreadContext{r, &ledgers_[ur]});
      log::set_thread_rank(r);
      RankContext ctx(r, nranks_, fabric_, trackers_[ur], profilers_[ur], ledgers_[ur], *this,
                      seed_);
      try {
        body(ctx);
      } catch (...) {
        errors[ur] = std::current_exception();
      }
      // Final fold (also on the failure path): whatever the body accrued
      // since its last chunk boundary still reaches the profiler.
      ledgers_[ur].merge_into(profilers_[ur]);
      log::set_thread_rank(-1);
      obs::set_thread_context(obs::ThreadContext{});
    });
  }
  for (auto& t : threads) t.join();
  if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

const MemTracker& VirtualCluster::mem(int rank) const {
  PTYCHO_CHECK(rank >= 0 && rank < nranks_, "invalid rank");
  return trackers_[static_cast<usize>(rank)];
}

const PhaseProfiler& VirtualCluster::profiler(int rank) const {
  PTYCHO_CHECK(rank >= 0 && rank < nranks_, "invalid rank");
  return profilers_[static_cast<usize>(rank)];
}

double VirtualCluster::mean_peak_bytes() const {
  double total = 0.0;
  for (const auto& t : trackers_) total += static_cast<double>(t.peak());
  return total / static_cast<double>(nranks_);
}

usize VirtualCluster::max_peak_bytes() const {
  usize best = 0;
  for (const auto& t : trackers_) best = std::max(best, t.peak());
  return best;
}

void VirtualCluster::reset_instrumentation() {
  for (auto& t : trackers_) t.reset();
  for (auto& p : profilers_) p.clear();
  for (auto& l : ledgers_) l.reset();
  fabric_.clear_poison();
  fault_fired_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_count_ = 0;
    barrier_poisoned_ = false;
  }
}

void VirtualCluster::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (barrier_poisoned_) throw RankFailure("barrier aborted: a rank has failed");
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != generation || barrier_poisoned_; });
    if (barrier_generation_ == generation) {
      throw RankFailure("barrier aborted: a rank has failed");
    }
  }
}

void VirtualCluster::maybe_fault(int rank, std::uint64_t step) {
  if (!fault_.armed() || rank != fault_.rank || step < fault_.at_step) return;
  if (fault_fired_.exchange(true, std::memory_order_acq_rel)) return;  // fire once
  poison();
  std::ostringstream os;
  os << "injected fault: rank " << rank << " killed at step " << step;
  throw RankFailure(os.str());
}

void VirtualCluster::poison() noexcept {
  fabric_.poison();
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_poisoned_ = true;
  }
  barrier_cv_.notify_all();
}

}  // namespace ptycho::rt
