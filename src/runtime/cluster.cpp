#include "runtime/cluster.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ptycho::rt {

void RankContext::isend(int dst, Tag tag, std::vector<cplx> payload) {
  // Whole-call span: fabric enqueue cost is the virtual cluster's model of
  // send-side communication time.
  obs::SpanScope span("isend", obs::Phase::kComm);
  fabric_.isend(rank_, dst, tag, std::move(payload));
}

std::vector<cplx> RankContext::recv(int src, Tag tag) {
  double waited = 0.0;
  std::vector<cplx> payload = fabric_.recv(rank_, src, tag, &waited);
  // Only the blocked portion counts as wait; the fabric reports it.
  obs::account("recv-wait", obs::Phase::kWait, waited);
  return payload;
}

RecvRequest RankContext::irecv(int src, Tag tag) { return fabric_.irecv(rank_, src, tag); }

void RankContext::barrier() {
  WallTimer timer;
  cluster_.barrier_wait();
  obs::account("barrier", obs::Phase::kWait, timer.seconds());
}

void RankContext::fault_point(std::uint64_t step) { cluster_.maybe_fault(rank_, step); }

VirtualCluster::VirtualCluster(int nranks, std::uint64_t seed)
    : VirtualCluster(ClusterSpec{nranks, seed, TransportOptions{}}) {}

VirtualCluster::VirtualCluster(const ClusterSpec& spec)
    : nranks_(spec.nranks),
      seed_(spec.seed),
      distributed_(spec.transport.distributed()),
      local_rank_(distributed_ ? spec.transport.rank : -1),
      fabric_(make_transport(spec.transport, spec.nranks)),
      trackers_(static_cast<usize>(spec.nranks)),
      profilers_(static_cast<usize>(spec.nranks)),
      ledgers_(static_cast<usize>(spec.nranks)) {
  PTYCHO_REQUIRE(spec.nranks >= 1, "cluster needs at least one rank");
  // Hang detection for blocking receives (and everything riding on them:
  // collectives, the distributed barrier). The in-process barrier below
  // honors the same bound.
  fabric_.set_recv_deadline_ms(spec.transport.recv_deadline_ms);
}

void VirtualCluster::run(const RankBody& body) {
  // One thread per *local* rank: every rank in-process, just this
  // process's rank when peers are separate processes. Keeping the body on
  // a spawned thread in both modes keeps the tracker/obs identity setup on
  // one code path.
  std::vector<int> local;
  if (distributed_) {
    local.push_back(local_rank_);
  } else {
    for (int r = 0; r < nranks_; ++r) local.push_back(r);
  }

  std::vector<std::thread> threads;
  threads.reserve(local.size());
  std::vector<std::exception_ptr> errors(static_cast<usize>(nranks_));

  for (const int r : local) {
    threads.emplace_back([this, r, &body, &errors] {
      const auto ur = static_cast<usize>(r);
      TrackerScope scope(trackers_[ur]);
      // Identify this thread to the observability layer: spans carry the
      // rank, phase durations land in this rank's ledger, log lines get a
      // rank tag. Pool workers inherit the context per parallel region.
      obs::set_thread_context(obs::ThreadContext{r, &ledgers_[ur]});
      log::set_thread_rank(r);
      RankContext ctx(r, nranks_, fabric_, trackers_[ur], profilers_[ur], ledgers_[ur], *this,
                      seed_);
      try {
        body(ctx);
      } catch (...) {
        errors[ur] = std::current_exception();
      }
      // Final fold (also on the failure path): whatever the body accrued
      // since its last chunk boundary still reaches the profiler.
      ledgers_[ur].merge_into(profilers_[ur]);
      log::set_thread_rank(-1);
      obs::set_thread_context(obs::ThreadContext{});
    });
  }
  for (auto& t : threads) t.join();
  if (obs::tracing_enabled()) obs::Tracer::instance().drain_all();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

const MemTracker& VirtualCluster::mem(int rank) const {
  PTYCHO_CHECK(rank >= 0 && rank < nranks_, "invalid rank");
  return trackers_[static_cast<usize>(rank)];
}

const PhaseProfiler& VirtualCluster::profiler(int rank) const {
  PTYCHO_CHECK(rank >= 0 && rank < nranks_, "invalid rank");
  return profilers_[static_cast<usize>(rank)];
}

double VirtualCluster::mean_peak_bytes() const {
  // Distributed mode only observed this process's rank; peer trackers are
  // empty and would drag the mean to a lie.
  double total = 0.0;
  int counted = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (!is_local(r)) continue;
    total += static_cast<double>(trackers_[static_cast<usize>(r)].peak());
    ++counted;
  }
  return total / static_cast<double>(counted);
}

usize VirtualCluster::max_peak_bytes() const {
  usize best = 0;
  for (const auto& t : trackers_) best = std::max(best, t.peak());
  return best;
}

void VirtualCluster::reset_instrumentation() {
  for (auto& t : trackers_) t.reset();
  for (auto& p : profilers_) p.clear();
  for (auto& l : ledgers_) l.reset();
  fabric_.clear_poison();
  fault_fired_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_count_ = 0;
    barrier_poisoned_ = false;
  }
}

void VirtualCluster::barrier_wait_distributed() {
  // Dissemination barrier over fabric messages: ceil(log2 n) rounds, in
  // round k rank r pings (r + 2^k) mod n and waits for (r - 2^k) mod n.
  // A poisoned fabric makes the recv throw RankFailure, matching the
  // in-process barrier's abort semantics. Only this process's rank thread
  // calls this, so the generation counter needs no lock — it just keeps
  // consecutive barriers' tags disjoint.
  const std::uint64_t generation = barrier_generation_++;
  const int n = nranks_;
  const int r = local_rank_;
  int round = 0;
  for (int step = 1; step < n; step <<= 1, ++round) {
    const Tag tag =
        make_tag(Phase::kBarrier, static_cast<std::int64_t>((generation << 8) | static_cast<std::uint64_t>(round)));
    fabric_.isend(r, (r + step) % n, tag, std::vector<cplx>(1));
    (void)fabric_.recv(r, (r - step + n) % n, tag);
  }
}

void VirtualCluster::barrier_wait() {
  if (distributed_) {
    barrier_wait_distributed();
    return;
  }
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (barrier_poisoned_) throw RankFailure("barrier aborted: a rank has failed");
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    const auto released = [&] { return barrier_generation_ != generation || barrier_poisoned_; };
    const int deadline_ms = fabric_.recv_deadline_ms();
    if (deadline_ms > 0) {
      if (!barrier_cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms), released)) {
        // A rank never arrived: mark the barrier dead for everyone still
        // coming, poison the fabric (waking blocked receives too), and
        // surface the hang as a rank failure here.
        barrier_poisoned_ = true;
        barrier_cv_.notify_all();
        lock.unlock();
        fabric_.poison();
        throw RankFailure("barrier timed out: a rank never arrived within the recv deadline");
      }
    } else {
      barrier_cv_.wait(lock, released);
    }
    if (barrier_generation_ == generation) {
      throw RankFailure("barrier aborted: a rank has failed");
    }
  }
}

void VirtualCluster::maybe_fault(int rank, std::uint64_t step) {
  if (!fault_.armed() || rank != fault_.rank || step < fault_.at_step) return;
  if (fault_fired_.exchange(true, std::memory_order_acq_rel)) return;  // fire once
  if (fault_.kind == FaultKind::kExit && distributed_) {
    // A real node loss: the process vanishes without a word. Peers learn
    // of it from the kernel-closed sockets (EOF without shutdown), which
    // is exactly the detection path recovery must exercise. In-process
    // clusters fall through to kThrow — _exit would take every rank down.
    log::warn() << "injected fault: rank " << rank << " hard-exiting at step " << step;
    std::fflush(nullptr);
    _exit(137);
  }
  poison();
  std::ostringstream os;
  os << "injected fault: rank " << rank << " killed at step " << step;
  throw RankFailure(os.str());
}

void VirtualCluster::poison() noexcept {
  fabric_.poison();
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_poisoned_ = true;
  }
  barrier_cv_.notify_all();
}

}  // namespace ptycho::rt
