// Pluggable message-delivery backends for the fabric.
//
// The fabric (runtime/channel.hpp) is a tag-matching layer: it owns the
// per-rank mailboxes, the (src, tag) FIFO matching and the poison
// semantics. *How* a message travels from the sender's rank to the
// destination mailbox is the Transport's job:
//
//  * InProcTransport — every rank lives in this process; a send is one
//    pointer handoff into the destination mailbox (the historical virtual
//    cluster behavior, bit-for-bit).
//  * SocketTransport (runtime/socket_transport.hpp) — each process hosts
//    one rank; remote sends become length-prefixed TCP frames and a
//    background progress thread feeds incoming frames into the same
//    mailbox matcher. Peer disconnects map onto the fabric's poison()
//    teardown, so RankFailure/recovery semantics are identical across
//    backends.
//
// The same solver binary therefore runs K ranks as threads or as K
// separate processes — the deployment is a runtime option, not a build.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ptycho::rt {

class Fabric;

/// Message tag (composed from an rt::Phase and a stage counter — see
/// runtime/channel.hpp). Declared here so the Transport interface does not
/// depend on the fabric header.
using Tag = std::int64_t;

enum class TransportKind {
  kInProc,  ///< all ranks are threads of this process (shared mailboxes)
  kSocket,  ///< one rank per process, TCP frames between them
};

[[nodiscard]] const char* to_string(TransportKind kind);
/// Parse "inproc" / "socket"; throws ptycho::Error on others.
[[nodiscard]] TransportKind transport_kind_from_string(const std::string& name);

/// Deployment description of the communication substrate, carried through
/// ExecOptions from the CLI down to the cluster. In-proc mode ignores the
/// socket-only fields; socket mode needs this process's rank and the full
/// host:port roster (one entry per rank, identical on every process).
struct TransportOptions {
  TransportKind kind = TransportKind::kInProc;
  int rank = -1;                   ///< this process's rank (socket mode)
  std::vector<std::string> peers;  ///< "host:port" per rank (socket mode)

  /// Cluster generation, bumped by the recovery supervisor on every
  /// restart. Stamped into the wire hello and every frame header so a
  /// straggler process from a previous incarnation cannot join the new
  /// mesh, and its in-flight frames are rejected instead of tag-matched.
  std::uint32_t generation = 0;

  /// Mesh-formation window (socket): connect retries and the accept loop
  /// both give up past this deadline instead of waiting forever for a
  /// peer that will never arrive.
  int connect_timeout_ms = 30000;
  /// Destructor drain bound (socket): a peer that never sends its
  /// shutdown frame is force-closed after this long so teardown cannot
  /// hang on a wedged survivor.
  int shutdown_drain_ms = 5000;
  /// Emit a kPing frame to every peer at this cadence (socket; 0
  /// disables). Keeps liveness observable across phases where the data
  /// traffic pattern is one-sided.
  int heartbeat_ms = 0;
  /// Declare a peer dead when nothing (data, control or ping) arrived
  /// from it for this long (socket; 0 = EOF-only failure detection).
  /// Pair with heartbeat_ms well below it.
  int liveness_timeout_ms = 0;
  /// Abort a blocked mailbox wait (and with it every collective riding on
  /// recv) with RankFailure after this long without a matching message
  /// (any backend; 0 = block forever). The in-process barrier honors the
  /// same bound.
  int recv_deadline_ms = 0;

  /// Chaos-injection spec (see runtime/chaos_transport.hpp for the
  /// grammar); empty disables the decorator. Deterministic per seed.
  std::string chaos;

  [[nodiscard]] bool distributed() const { return kind == TransportKind::kSocket; }
};

/// Whole-process traffic counters of one backend (bytes on the wire for
/// sockets, bytes handed off for in-proc). Per-source-rank accounting
/// stays in FabricStats; these attribute totals to the backend for the
/// obs layer.
struct TransportStats {
  std::uint64_t messages_out = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t messages_in = 0;  ///< frames received from remote peers
  std::uint64_t bytes_in = 0;
};

/// Delivery backend under a Fabric. Implementations must be thread-safe:
/// send() is called concurrently from rank threads, and socket progress
/// threads call back into Fabric::deliver()/poison_local().
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual int nranks() const = 0;

  /// True when `rank`'s mailbox lives in this process (receives may only
  /// be posted for local ranks).
  [[nodiscard]] virtual bool is_local(int rank) const = 0;

  /// Bind to the fabric whose mailboxes this transport feeds. Called once
  /// by the Fabric constructor; socket transports establish the peer mesh
  /// and start their progress thread here.
  virtual void attach(Fabric& fabric) = 0;

  /// Route one message toward dst's mailbox (local handoff or wire frame).
  /// The payload is moved; tag-matching happens at the destination fabric.
  virtual void send(int src, int dst, Tag tag, std::vector<cplx> payload) = 0;

  /// Propagate a fabric poison to every peer process (rank-failure
  /// teardown). In-proc transports share the poisoned fabric already, so
  /// this is a no-op there.
  virtual void broadcast_poison() noexcept = 0;

  /// Chaos hook: silence the backend — stop emitting anything onto the
  /// wire (data, control, heartbeats), modeling a hung-but-alive process
  /// whose sockets stay open. Default no-op (in-proc has no wire; the
  /// chaos layer drops the handoffs itself).
  virtual void set_wedged(bool) noexcept {}

  /// Chaos hook: emit a frame whose integrity check fails at the
  /// receiver. Returns false when the backend has no on-wire integrity
  /// layer to corrupt (in-proc), in which case the caller models the
  /// detection itself.
  virtual bool send_corrupted(int /*src*/, int /*dst*/, Tag /*tag*/,
                              std::vector<cplx> /*payload*/) {
    return false;
  }

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

/// The historical shared-memory backend: all ranks local, send == deliver.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int nranks) : nranks_(nranks) {}

  [[nodiscard]] const char* name() const override { return "inproc"; }
  [[nodiscard]] int nranks() const override { return nranks_; }
  [[nodiscard]] bool is_local(int rank) const override {
    return rank >= 0 && rank < nranks_;
  }
  void attach(Fabric& fabric) override { fabric_ = &fabric; }
  void send(int src, int dst, Tag tag, std::vector<cplx> payload) override;
  void broadcast_poison() noexcept override {}
  [[nodiscard]] TransportStats stats() const override;

 private:
  int nranks_ = 0;
  Fabric* fabric_ = nullptr;
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

/// Build the backend `options` describes for an `nranks`-rank job. Socket
/// mode validates rank/peers consistency (peers.size() == nranks,
/// 0 <= rank < nranks); throws ptycho::Error on a bad description.
[[nodiscard]] std::unique_ptr<Transport> make_transport(const TransportOptions& options,
                                                        int nranks);

/// Split "host:port" (throws on malformed input; port must be 1..65535).
struct PeerAddr {
  std::string host;
  int port = 0;
};
[[nodiscard]] PeerAddr parse_peer(const std::string& spec);

}  // namespace ptycho::rt
