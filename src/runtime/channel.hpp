// Point-to-point message fabric for the cluster.
//
// Models the MPI subset the paper's APPP technique needs: eager
// non-blocking sends (isend), non-blocking receives with request handles
// (irecv + test/wait), tag matching per (source, tag), and per-rank
// traffic statistics. The fabric itself is only the tag-matching layer:
// message *delivery* is delegated to a pluggable rt::Transport
// (runtime/transport.hpp) — a shared-memory handoff when all ranks are
// threads of this process, or TCP frames when each rank is its own
// process. Payloads are moved, never copied, on the in-process path; the
// *modeled* wire cost lives in runtime/perfmodel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "runtime/transport.hpp"

namespace ptycho::obs {
class Counter;
}  // namespace ptycho::obs

namespace ptycho::rt {

/// Thrown on the failing rank by an injected fault, and on every other
/// rank whose blocking communication can no longer complete because the
/// fabric was poisoned by that failure (or, on the socket transport, by a
/// peer process disappearing). Catch this (rather than plain Error) to
/// implement checkpoint-based recovery.
class RankFailure : public Error {
 public:
  using Error::Error;
};

// ---------------------------------------------------------------------------
// Tag registry
// ---------------------------------------------------------------------------

/// Every communication phase in the system, centrally registered so two
/// subsystems can never collide on a tag space. A tag is
/// (phase << 48) | stage — see make_tag — so uniqueness of the phase ids
/// below is exactly tag-space disjointness between phases.
///
/// Adding a phase: append it here with the next free id, add it to
/// kAllPhases, and the uniqueness static_assert plus the registry test in
/// tests/test_transport.cpp keep the invariant honest.
enum class Phase : int {
  kVerticalForward = 1,    ///< APPP sweep chain, vertical forward passes
  kVerticalBackward = 2,   ///< APPP sweep chain, vertical backward passes
  kHorizontalForward = 3,  ///< APPP sweep chain, horizontal forward passes
  kHorizontalBackward = 4, ///< APPP sweep chain, horizontal backward passes
  kDirect = 5,             ///< direct pairwise gradient exchange
  kAllreduce = 6,          ///< gradient allreduce (non-APPP baseline)
  kStitch = 7,             ///< stitch_on_root volume gather
  kPaste = 8,              ///< HVE halo paste exchange
  kCost = 9,               ///< global cost reduction
  kProbe = 10,             ///< probe refinement sync
  kRestore = 11,           ///< elastic checkpoint scatter-restore
  kRestoreProbe = 12,      ///< probe broadcast during restore
  kBarrier = 13,           ///< message-based barrier (distributed clusters)
  kTest = 14,              ///< reserved for unit tests
  kHeartbeat = 15,         ///< socket liveness pings (never tag-matched)
};

inline constexpr Phase kAllPhases[] = {
    Phase::kVerticalForward,  Phase::kVerticalBackward, Phase::kHorizontalForward,
    Phase::kHorizontalBackward, Phase::kDirect,         Phase::kAllreduce,
    Phase::kStitch,           Phase::kPaste,            Phase::kCost,
    Phase::kProbe,            Phase::kRestore,          Phase::kRestoreProbe,
    Phase::kBarrier,          Phase::kTest,             Phase::kHeartbeat,
};

[[nodiscard]] constexpr bool phases_unique() {
  for (usize i = 0; i < std::size(kAllPhases); ++i) {
    for (usize j = i + 1; j < std::size(kAllPhases); ++j) {
      if (kAllPhases[i] == kAllPhases[j]) return false;
    }
  }
  return true;
}
static_assert(phases_unique(), "rt::Phase ids must be unique — tag spaces would collide");

[[nodiscard]] const char* to_string(Phase phase);

/// Compose a tag from a registered phase and a sub-stage counter. The
/// stage is phase-private: collectives fold an instance number and a tree
/// step into it, point-to-point passes use chain step counters.
[[nodiscard]] constexpr Tag make_tag(Phase phase, std::int64_t stage) {
  return (static_cast<Tag>(phase) << 48) | (stage & ((Tag(1) << 48) - 1));
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

struct FabricStats {
  std::vector<std::uint64_t> bytes_sent;     ///< per source rank
  std::vector<std::uint64_t> messages_sent;  ///< per source rank
};

class Fabric;

/// Handle for a pending receive.
class RecvRequest {
 public:
  RecvRequest() = default;

  /// True once a matching message has arrived (non-blocking).
  [[nodiscard]] bool test();

  /// Block until the message arrives; returns seconds spent blocked.
  double wait();

  /// Take the payload (wait()s first if needed).
  [[nodiscard]] std::vector<cplx> take();

 private:
  friend class Fabric;
  struct State;
  std::shared_ptr<State> state_;
};

class Fabric {
 public:
  /// Historical constructor: all ranks in-process (InProcTransport).
  explicit Fabric(int nranks);
  /// Explicit-backend constructor; the fabric owns the transport.
  explicit Fabric(std::unique_ptr<Transport> transport);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] int nranks() const { return nranks_; }

  /// True when `rank`'s mailbox lives in this process. Receives may only
  /// be posted for local ranks; sends may target any rank.
  [[nodiscard]] bool is_local(int rank) const { return transport_->is_local(rank); }

  [[nodiscard]] const char* transport_name() const { return transport_->name(); }
  [[nodiscard]] TransportStats transport_stats() const { return transport_->stats(); }

  /// Non-blocking eager send; local destinations are enqueued immediately
  /// (local completion), remote ones are framed onto the wire by the
  /// transport. Matching is FIFO per (src, tag).
  void isend(int src, int dst, Tag tag, std::vector<cplx> payload);

  /// Post a receive for (src, tag) at local rank dst.
  [[nodiscard]] RecvRequest irecv(int dst, int src, Tag tag);

  /// Blocking receive convenience; returns the payload.
  [[nodiscard]] std::vector<cplx> recv(int dst, int src, Tag tag, double* wait_seconds = nullptr);

  [[nodiscard]] FabricStats stats() const;

  /// Transport-facing: enqueue a message into local rank dst's mailbox and
  /// wake its waiters. This is the single entry point through which every
  /// backend feeds the tag matcher.
  void deliver(int src, int dst, Tag tag, std::vector<cplx> payload);

  /// Mark the fabric dead (a rank failed): every blocked receive wakes and
  /// throws RankFailure, as does every receive posted afterwards. Sends
  /// become no-ops. The poison is propagated to peer processes by the
  /// transport, modeling the collective teardown a real MPI job
  /// experiences when a node disappears.
  void poison() noexcept;

  /// Transport-facing: poison without re-broadcasting (used when the
  /// poison *arrived* from a peer, or when the transport itself detected a
  /// dead peer — re-broadcasting would echo forever).
  void poison_local() noexcept;

  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Re-arm a poisoned fabric (fresh run on the same cluster object).
  /// Also drains every mailbox: messages a dead run left queued must not
  /// be matched by the next run's receives (tags are reused per
  /// iteration, so collisions would be the norm, not the exception).
  void clear_poison() noexcept;

  /// Bound every blocking mailbox wait: a receive that stays unmatched
  /// for this long poisons the fabric and throws RankFailure instead of
  /// blocking forever (0 = wait indefinitely). Collectives ride on recv,
  /// so this bounds barriers and allreduces too — the in-process hang
  /// analogue of the socket liveness deadline.
  void set_recv_deadline_ms(int ms) noexcept {
    recv_deadline_ms_.store(ms, std::memory_order_release);
  }
  [[nodiscard]] int recv_deadline_ms() const noexcept {
    return recv_deadline_ms_.load(std::memory_order_acquire);
  }

 private:
  friend class RecvRequest;
  struct Mailbox;

  Mailbox& mailbox(int dst);

  int nranks_ = 0;
  // ~Fabric resets this explicitly before the members below die: the
  // transport's progress thread may touch mailboxes_/poisoned_ until joined.
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> poisoned_{false};
  std::atomic<int> recv_deadline_ms_{0};
  mutable std::mutex stats_mutex_;
  FabricStats stats_;
  // Per-backend obs attribution, resolved once at construction (a static
  // local would pin the first backend's name for the whole process).
  obs::Counter* messages_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* backend_messages_counter_ = nullptr;
  obs::Counter* backend_bytes_counter_ = nullptr;
};

}  // namespace ptycho::rt
