// Point-to-point message fabric for the virtual cluster.
//
// Models the MPI subset the paper's APPP technique needs: eager
// non-blocking sends (isend), non-blocking receives with request handles
// (irecv + test/wait), tag matching per (source, tag), and per-rank
// traffic statistics. Payloads are moved, never copied, so a send is one
// pointer handoff — the *modeled* wire cost lives in runtime/perfmodel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ptycho::rt {

/// Thrown on the failing rank by an injected fault, and on every other
/// rank whose blocking communication can no longer complete because the
/// fabric was poisoned by that failure. Catch this (rather than plain
/// Error) to implement checkpoint-based recovery.
class RankFailure : public Error {
 public:
  using Error::Error;
};

/// Message tags: encode (phase, stage) so concurrent passes never match
/// each other's traffic. Plain ints at the API surface, helpers below.
using Tag = std::int64_t;

struct FabricStats {
  std::vector<std::uint64_t> bytes_sent;     ///< per source rank
  std::vector<std::uint64_t> messages_sent;  ///< per source rank
};

class Fabric;

/// Handle for a pending receive.
class RecvRequest {
 public:
  RecvRequest() = default;

  /// True once a matching message has arrived (non-blocking).
  [[nodiscard]] bool test();

  /// Block until the message arrives; returns seconds spent blocked.
  double wait();

  /// Take the payload (wait()s first if needed).
  [[nodiscard]] std::vector<cplx> take();

 private:
  friend class Fabric;
  struct State;
  std::shared_ptr<State> state_;
};

class Fabric {
 public:
  explicit Fabric(int nranks);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Non-blocking eager send; the payload is enqueued at the destination
  /// immediately (local completion). Matching is FIFO per (src, tag).
  void isend(int src, int dst, Tag tag, std::vector<cplx> payload);

  /// Post a receive for (src, tag) at rank dst.
  [[nodiscard]] RecvRequest irecv(int dst, int src, Tag tag);

  /// Blocking receive convenience; returns the payload.
  [[nodiscard]] std::vector<cplx> recv(int dst, int src, Tag tag, double* wait_seconds = nullptr);

  [[nodiscard]] FabricStats stats() const;

  /// Mark the fabric dead (a rank failed): every blocked receive wakes and
  /// throws RankFailure, as does every receive posted afterwards. Sends
  /// become no-ops. This models the collective teardown a real MPI job
  /// experiences when a node disappears.
  void poison() noexcept;
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Re-arm a poisoned fabric (fresh run on the same cluster object).
  /// Also drains every mailbox: messages a dead run left queued must not
  /// be matched by the next run's receives (tags are reused per
  /// iteration, so collisions would be the norm, not the exception).
  void clear_poison() noexcept;

 private:
  friend class RecvRequest;
  struct Mailbox;

  Mailbox& mailbox(int dst);

  int nranks_ = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> poisoned_{false};
  mutable std::mutex stats_mutex_;
  FabricStats stats_;
};

/// Compose a tag from an algorithm phase id and a sub-stage counter.
[[nodiscard]] constexpr Tag make_tag(int phase, std::int64_t stage) {
  return (static_cast<Tag>(phase) << 48) | (stage & ((Tag(1) << 48) - 1));
}

}  // namespace ptycho::rt
