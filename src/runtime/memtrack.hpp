// Per-rank memory accounting.
//
// Each virtual-cluster rank installs a MemTracker on its thread; every
// tensor allocation made while executing that rank is accounted here.
// peak() is the quantity reported as "Memory footprint per GPU" in the
// Tables II/III harnesses (for the scaled functional runs; the paper-scale
// figures come from core/memory_model.cpp).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/memory.hpp"

namespace ptycho::rt {

class MemTracker {
 public:
  void on_alloc(std::size_t bytes) noexcept {
    const std::size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update.
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  void on_free(std::size_t bytes) noexcept {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_.load(std::memory_order_relaxed); }

  void reset() noexcept {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

/// RAII: routes the calling thread's tensor allocations into a tracker.
class TrackerScope {
 public:
  explicit TrackerScope(MemTracker& tracker) {
    AllocHooks hooks;
    hooks.on_alloc = [](void* ctx, std::size_t b) {
      static_cast<MemTracker*>(ctx)->on_alloc(b);
    };
    hooks.on_free = [](void* ctx, std::size_t b) { static_cast<MemTracker*>(ctx)->on_free(b); };
    hooks.ctx = &tracker;
    previous_ = set_thread_alloc_hooks(hooks);
  }
  ~TrackerScope() { set_thread_alloc_hooks(previous_); }
  TrackerScope(const TrackerScope&) = delete;
  TrackerScope& operator=(const TrackerScope&) = delete;

 private:
  AllocHooks previous_;
};

}  // namespace ptycho::rt
