// Logical 2-D mesh of ranks (Fig. 5: "the 9 GPUs are in a logical 3x3
// mesh"), plus the factorization helper that picks a near-square mesh for
// a given GPU count and image aspect ratio.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace ptycho::rt {

class Mesh2D {
 public:
  Mesh2D() = default;
  Mesh2D(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int size() const { return rows_ * cols_; }

  [[nodiscard]] int rank_of(int row, int col) const { return row * cols_ + col; }
  [[nodiscard]] int row_of(int rank) const { return rank / cols_; }
  [[nodiscard]] int col_of(int rank) const { return rank % cols_; }

  [[nodiscard]] bool valid(int row, int col) const {
    return row >= 0 && row < rows_ && col >= 0 && col < cols_;
  }

  /// Ranks of the 8-connected neighborhood (the paper exchanges with
  /// diagonal neighbors too — Sec. III).
  [[nodiscard]] std::vector<int> neighbors8(int rank) const;

  /// 4-connected neighbors (N, S, W, E order, -1 when absent).
  struct Cardinal {
    int north = -1, south = -1, west = -1, east = -1;
  };
  [[nodiscard]] Cardinal cardinal(int rank) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
};

/// Pick mesh_rows x mesh_cols = nranks with rows/cols ≈ aspect (field
/// h/w); prefers balanced factorizations. Throws if nranks < 1.
[[nodiscard]] Mesh2D choose_mesh(int nranks, double aspect = 1.0);

}  // namespace ptycho::rt
