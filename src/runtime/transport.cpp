#include "runtime/transport.hpp"

#include "common/error.hpp"
#include "runtime/channel.hpp"
#include "runtime/chaos_transport.hpp"
#include "runtime/socket_transport.hpp"

namespace ptycho::rt {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kSocket: return "socket";
  }
  return "unknown";
}

TransportKind transport_kind_from_string(const std::string& name) {
  if (name == "inproc" || name == "in-proc" || name == "threads") {
    return TransportKind::kInProc;
  }
  if (name == "socket" || name == "tcp") return TransportKind::kSocket;
  PTYCHO_FAIL("unknown transport '" << name << "' (expected inproc|socket)");
}

void InProcTransport::send(int src, int dst, Tag tag, std::vector<cplx> payload) {
  PTYCHO_CHECK(fabric_ != nullptr, "transport not attached to a fabric");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.messages_out += 1;
    stats_.bytes_out += payload.size() * sizeof(cplx);
  }
  fabric_->deliver(src, dst, tag, std::move(payload));
}

TransportStats InProcTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::unique_ptr<Transport> make_transport(const TransportOptions& options, int nranks) {
  PTYCHO_REQUIRE(nranks >= 1, "transport needs at least one rank");
  std::unique_ptr<Transport> backend;
  switch (options.kind) {
    case TransportKind::kInProc:
      backend = std::make_unique<InProcTransport>(nranks);
      break;
    case TransportKind::kSocket: {
      PTYCHO_REQUIRE(options.rank >= 0 && options.rank < nranks,
                     "socket transport: --rank must be in [0, " << nranks << "), got "
                                                                << options.rank);
      PTYCHO_REQUIRE(static_cast<int>(options.peers.size()) == nranks,
                     "socket transport: --peers must list one host:port per rank ("
                         << nranks << " expected, " << options.peers.size() << " given)");
      std::vector<PeerAddr> peers;
      peers.reserve(options.peers.size());
      for (const auto& spec : options.peers) peers.push_back(parse_peer(spec));
      backend = std::make_unique<SocketTransport>(options.rank, std::move(peers), options);
      break;
    }
  }
  PTYCHO_CHECK(backend != nullptr, "unknown transport kind");
  if (!options.chaos.empty()) {
    ChaosSpec spec = parse_chaos_spec(options.chaos);
    if (spec.any()) {
      // Parsed even when inert (to reject typos), wrapped only when a
      // clause actually injects something.
      return std::make_unique<ChaosTransport>(std::move(backend), spec, options.generation);
    }
  }
  return backend;
}

PeerAddr parse_peer(const std::string& spec) {
  const auto colon = spec.rfind(':');
  PTYCHO_REQUIRE(colon != std::string::npos && colon > 0 && colon + 1 < spec.size(),
                 "malformed peer address '" << spec << "' (expected host:port)");
  PeerAddr addr;
  addr.host = spec.substr(0, colon);
  try {
    addr.port = std::stoi(spec.substr(colon + 1));
  } catch (const std::exception&) {
    PTYCHO_FAIL("malformed peer port in '" << spec << "'");
  }
  PTYCHO_REQUIRE(addr.port > 0 && addr.port <= 65535,
                 "peer port out of range in '" << spec << "'");
  return addr;
}

}  // namespace ptycho::rt
