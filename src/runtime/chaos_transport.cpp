#include "runtime/chaos_transport.hpp"

#include <chrono>
#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/channel.hpp"

namespace ptycho::rt {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void bump(const char* counter) {
  if (obs::metrics_enabled()) obs::registry().counter(counter).add(1);
}

double parse_probability(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  PTYCHO_REQUIRE(end != nullptr && *end == '\0' && p >= 0.0 && p <= 1.0,
                 "chaos clause '" << clause << "': probability must be in [0, 1]");
  return p;
}

std::uint64_t parse_count(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  PTYCHO_REQUIRE(end != nullptr && *end == '\0' && n > 0,
                 "chaos clause '" << clause << "': expected a positive integer");
  return n;
}

}  // namespace

ChaosSpec parse_chaos_spec(const std::string& spec) {
  ChaosSpec out;
  usize pos = 0;
  while (pos < spec.size()) {
    usize comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;
    const usize eq = clause.find('=');
    const usize at = clause.find('@');
    if (at != std::string::npos && eq == std::string::npos) {
      const std::string key = clause.substr(0, at);
      const std::uint64_t n = parse_count(clause, clause.substr(at + 1));
      if (key == "drop") {
        out.drop_at = n;
      } else if (key == "corrupt") {
        out.corrupt_at = n;
      } else if (key == "wedge") {
        out.wedge_at = n;
      } else {
        PTYCHO_FAIL("unknown chaos clause '" << clause << "' (one-shots: drop@N, corrupt@N, wedge@N)");
      }
      continue;
    }
    PTYCHO_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < clause.size(),
                   "malformed chaos clause '" << clause << "' (expected key=value or key@N)");
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      out.seed = std::strtoull(value.c_str(), &end, 10);
      PTYCHO_REQUIRE(end != nullptr && *end == '\0', "malformed chaos seed '" << value << "'");
    } else if (key == "rank") {
      char* end = nullptr;
      out.rank = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      PTYCHO_REQUIRE(end != nullptr && *end == '\0' && out.rank >= 0,
                     "malformed chaos rank '" << value << "'");
    } else if (key == "delay") {
      // delay=P or delay=P:MAXMS
      const usize colon = value.find(':');
      out.delay_p = parse_probability(clause, value.substr(0, colon));
      if (colon != std::string::npos) {
        out.delay_max_ms = static_cast<int>(parse_count(clause, value.substr(colon + 1)));
      }
    } else if (key == "reorder") {
      out.reorder_p = parse_probability(clause, value);
    } else if (key == "drop") {
      out.drop_p = parse_probability(clause, value);
    } else if (key == "corrupt") {
      out.corrupt_p = parse_probability(clause, value);
    } else {
      PTYCHO_FAIL("unknown chaos clause '" << clause
                  << "' (expected seed|rank|delay|reorder|drop|corrupt|wedge)");
    }
  }
  return out;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner, ChaosSpec spec,
                               std::uint32_t generation)
    : inner_(std::move(inner)), spec_(spec), generation_(generation) {
  PTYCHO_REQUIRE(inner_ != nullptr, "chaos transport needs a backend to wrap");
  name_ = std::string("chaos+") + inner_->name();
  // Per-source rng streams (same-source sends come from one rank thread,
  // so each stream is consumed sequentially → decisions are deterministic
  // even when several ranks send concurrently). The generation folds into
  // the seed so recovery attempts draw a fresh, but still deterministic,
  // fault pattern.
  for (int r = 0; r < inner_->nranks(); ++r) {
    rngs_.emplace(r, Rng(spec_.seed + generation_).split(static_cast<std::uint64_t>(r)));
    send_counts_.emplace(r, 0);
  }
}

void ChaosTransport::attach(Fabric& fabric) {
  fabric_ = &fabric;
  inner_->attach(fabric);
  // The worker only has work once sends start flowing, but starting it
  // here (after the inner mesh is up) keeps attach-ordering assumptions in
  // one place.
  worker_ = std::thread([this] { worker_loop(); });
}

ChaosTransport::~ChaosTransport() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  // The worker flushes everything still held (ignoring release times) so
  // no message is lost at teardown, then exits; inner_ is declared first
  // and therefore destroyed after this body — the flush happens onto a
  // live backend.
  if (worker_.joinable()) worker_.join();
}

void ChaosTransport::set_wedged(bool wedged) noexcept {
  wedged_.store(wedged, std::memory_order_release);
  inner_->set_wedged(wedged);
}

void ChaosTransport::wire_send(int src, int dst, Tag tag, std::vector<cplx> payload) noexcept {
  std::lock_guard<std::mutex> lock(wire_mutex_);
  try {
    inner_->send(src, dst, tag, std::move(payload));
  } catch (const std::exception& e) {
    log::warn() << "chaos transport: inner send failed (" << e.what() << ")";
    if (fabric_ != nullptr) fabric_->poison_local();
  } catch (...) {
    if (fabric_ != nullptr) fabric_->poison_local();
  }
}

void ChaosTransport::hold(int src, int dst, Tag tag, std::vector<cplx> payload,
                          std::int64_t delay_ns) {
  // Caller holds state_mutex_. Monotonize the release within the (src,
  // dst, tag) stream: a later message must never be released before an
  // earlier one, or the fabric's per-key FIFO (and with it bitwise
  // determinism) would break.
  KeyState& ks = keys_[Key{src, dst, tag}];
  std::int64_t release = now_ns() + delay_ns;
  if (release < ks.last_release_ns) release = ks.last_release_ns;
  ks.last_release_ns = release;
  ks.queued += 1;
  queue_.emplace(std::pair<std::int64_t, std::uint64_t>{release, next_seq_++},
                 Held{src, dst, tag, std::move(payload)});
  cv_.notify_all();
}

void ChaosTransport::send(int src, int dst, Tag tag, std::vector<cplx> payload) {
  // Self-delivery never touches the wire, and rank-restricted chaos
  // leaves other senders untouched — both bypass injection entirely.
  if (src == dst || (spec_.rank >= 0 && src != spec_.rank)) {
    wire_send(src, dst, tag, std::move(payload));
    return;
  }

  enum class Action { kPass, kHold, kDrop, kCorrupt, kWedge };
  Action action = Action::kPass;
  bool reordered = false;
  std::int64_t delay_ns = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (wedged_.load(std::memory_order_acquire)) return;  // silent: the victim is hung
    const std::uint64_t count = ++send_counts_.at(src);
    Rng& rng = rngs_.at(src);
    // One-shot clauses fire only in generation 0 — a restarted run
    // replays the same send sequence from the restored step, so a
    // count-based fault would otherwise re-kill every recovery attempt.
    if (generation_ == 0 && spec_.wedge_at > 0 && count == spec_.wedge_at) {
      action = Action::kWedge;
    } else if (generation_ == 0 && spec_.drop_at > 0 && count == spec_.drop_at) {
      action = Action::kDrop;
    } else if (generation_ == 0 && spec_.corrupt_at > 0 && count == spec_.corrupt_at) {
      action = Action::kCorrupt;
    } else if (spec_.drop_p > 0 && rng.uniform() < spec_.drop_p) {
      action = Action::kDrop;
    } else if (spec_.corrupt_p > 0 && rng.uniform() < spec_.corrupt_p) {
      action = Action::kCorrupt;
    } else if (spec_.delay_p > 0 && rng.uniform() < spec_.delay_p) {
      action = Action::kHold;
      delay_ns = static_cast<std::int64_t>(
          rng.uniform(0.0, static_cast<double>(spec_.delay_max_ms)) * 1e6);
    } else if (spec_.reorder_p > 0 && rng.uniform() < spec_.reorder_p) {
      // Held just long enough for traffic behind it (other keys) to pass.
      action = Action::kHold;
      reordered = true;
      delay_ns = 1'000'000;
    }
    switch (action) {
      case Action::kHold:
        hold(src, dst, tag, std::move(payload), delay_ns);
        bump(reordered ? "runtime.chaos.reordered_total" : "runtime.chaos.delayed_total");
        return;
      case Action::kPass: {
        auto it = keys_.find(Key{src, dst, tag});
        if (it != keys_.end() && it->second.queued > 0) {
          // Earlier messages of this key are still held: route this one
          // through the queue too (at the same release) or it would
          // overtake them on the wire.
          hold(src, dst, tag, std::move(payload), 0);
          return;
        }
        break;  // truly direct — sent below, outside the state lock
      }
      default:
        break;  // faults act below, outside the state lock
    }
  }

  switch (action) {
    case Action::kPass:
      wire_send(src, dst, tag, std::move(payload));
      return;
    case Action::kDrop:
      log::warn() << "chaos: dropping message src=" << src << " dst=" << dst;
      bump("runtime.chaos.dropped_total");
      return;  // vanishes — the recv deadline / liveness watchdog must catch it
    case Action::kWedge:
      log::warn() << "chaos: wedging rank " << src << " (silent from here on)";
      bump("runtime.chaos.wedged_total");
      set_wedged(true);  // swallows this send and everything after it
      return;
    case Action::kCorrupt: {
      log::warn() << "chaos: corrupting message src=" << src << " dst=" << dst;
      bump("runtime.chaos.corrupted_total");
      if (!inner_->send_corrupted(src, dst, tag, std::move(payload))) {
        // No wire to corrupt (in-proc): model the receiver-side checksum
        // detection directly — the job dies with RankFailure either way.
        if (fabric_ != nullptr) fabric_->poison();
      }
      return;
    }
    default:
      return;
  }
}

void ChaosTransport::worker_loop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    if (queue_.empty()) {
      if (draining_) return;
      cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      continue;
    }
    const std::int64_t release = queue_.begin()->first.first;
    const std::int64_t now = now_ns();
    if (!draining_ && release > now) {
      cv_.wait_for(lock, std::chrono::nanoseconds(release - now));
      continue;
    }
    auto it = queue_.begin();
    const Key key{it->second.src, it->second.dst, it->second.tag};
    Held held = std::move(it->second);
    queue_.erase(it);
    // Send outside the state lock (senders must not block on the wire),
    // but before decrementing `queued`: a same-key send arriving meanwhile
    // must still see the key as busy and queue behind us.
    lock.unlock();
    wire_send(held.src, held.dst, held.tag, std::move(held.payload));
    lock.lock();
    auto ks = keys_.find(key);
    if (ks != keys_.end() && --ks->second.queued == 0) keys_.erase(ks);
  }
}

}  // namespace ptycho::rt
