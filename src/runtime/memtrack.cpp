#include "runtime/memtrack.hpp"

// Header-only implementation; the TU anchors the module in the archive.

namespace ptycho::rt {}
