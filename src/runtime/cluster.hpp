// The virtual GPU cluster: runs K ranks as preemptively-scheduled threads
// with a shared message fabric, per-rank memory tracking and per-rank
// phase profiling.
//
// This is the substitution for the paper's Summit allocation (DESIGN.md
// Sec. 2): algorithmic behaviour — who communicates what, per-rank peak
// memory, convergence, seam behaviour — is bit-faithful to a real
// distributed run; wall-clock scaling at paper scale is handled by the
// calibrated performance model instead (runtime/perfmodel.hpp).
#pragma once

#include <functional>
#include <vector>

#include "common/random.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/channel.hpp"
#include "runtime/memtrack.hpp"

namespace ptycho::rt {

class VirtualCluster;

/// How an injected fault kills its victim.
enum class FaultKind {
  kThrow,  ///< poison the fabric, throw RankFailure on the victim
  kExit,   ///< hard _exit() the victim's process (distributed runs only —
           ///< peers must detect the death via EOF; in-process clusters
           ///< downgrade to kThrow since _exit would kill every rank)
};

/// Kill `rank` when it reaches the first fault point with step >= at_step.
/// Models losing a node mid-run: the victim throws RankFailure and the
/// fabric is poisoned so every other rank's blocking communication aborts
/// with RankFailure too (instead of deadlocking on the dead rank).
struct FaultPlan {
  int rank = -1;              ///< victim rank; -1 disables injection
  std::uint64_t at_step = 0;  ///< first step at which the fault fires
  FaultKind kind = FaultKind::kThrow;

  [[nodiscard]] bool armed() const { return rank >= 0; }
};

/// Everything a rank body needs; passed by reference into the body.
class RankContext {
 public:
  RankContext(int rank, int nranks, Fabric& fabric, MemTracker& mem, PhaseProfiler& prof,
              obs::PhaseLedger& ledger, VirtualCluster& cluster, std::uint64_t seed)
      : rank_(rank),
        nranks_(nranks),
        fabric_(fabric),
        mem_(mem),
        prof_(prof),
        ledger_(ledger),
        cluster_(cluster),
        rng_(Rng(seed).split(static_cast<std::uint64_t>(rank))) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] MemTracker& mem() { return mem_; }
  [[nodiscard]] PhaseProfiler& profiler() { return prof_; }
  [[nodiscard]] obs::PhaseLedger& ledger() { return ledger_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Fold the span-derived phase durations accumulated since the last
  /// merge into this rank's profiler. Called from the rank's own thread
  /// at chunk boundaries (and once more when the rank body returns).
  void merge_phases() { ledger_.merge_into(prof_); }

  /// Non-blocking send from this rank (profiled as comm).
  void isend(int dst, Tag tag, std::vector<cplx> payload);

  /// Blocking receive (blocked time is profiled as wait).
  [[nodiscard]] std::vector<cplx> recv(int src, Tag tag);

  /// Post a non-blocking receive.
  [[nodiscard]] RecvRequest irecv(int src, Tag tag);

  /// Global barrier across all ranks (blocked time profiled as wait).
  void barrier();

  /// Fault-injection hook: solvers call this at recoverable boundaries
  /// (e.g. after each chunk) with a monotonically increasing step counter.
  /// If a fault is planned for this rank and `step` has been reached, the
  /// fabric is poisoned and RankFailure is thrown on this rank.
  void fault_point(std::uint64_t step);

 private:
  int rank_;
  int nranks_;
  Fabric& fabric_;
  MemTracker& mem_;
  PhaseProfiler& prof_;
  obs::PhaseLedger& ledger_;
  VirtualCluster& cluster_;
  Rng rng_;
};

/// Full description of a cluster: rank count, RNG seed, and the transport
/// the fabric should ride on. The default is the historical in-process
/// deployment (K ranks as threads); a socket transport makes this process
/// host exactly one rank of a K-process job.
struct ClusterSpec {
  int nranks = 1;
  std::uint64_t seed = 7;
  TransportOptions transport;
};

/// Spawns rank bodies on threads and joins them; owns the fabric and the
/// per-rank trackers/profilers so results can be inspected after run().
/// With a distributed transport, run() executes only this process's rank —
/// the other ranks are peer processes reached through the fabric.
class VirtualCluster {
 public:
  explicit VirtualCluster(int nranks, std::uint64_t seed = 7);
  explicit VirtualCluster(const ClusterSpec& spec);

  [[nodiscard]] int nranks() const { return nranks_; }

  /// True when peer ranks live in other processes (socket transport).
  [[nodiscard]] bool distributed() const { return distributed_; }

  /// The rank this process hosts (-1 aside, every rank in-process mode).
  [[nodiscard]] int local_rank() const { return local_rank_; }

  /// Ranks hosted by this process (all of them in-process, one distributed).
  [[nodiscard]] int local_ranks() const { return distributed_ ? 1 : nranks_; }

  /// True when `rank`'s trackers/profilers are populated in this process.
  [[nodiscard]] bool is_local(int rank) const {
    return !distributed_ || rank == local_rank_;
  }

  using RankBody = std::function<void(RankContext&)>;

  /// Run `body` on every rank; blocks until all complete. Rethrows the
  /// first rank exception (after joining everything).
  void run(const RankBody& body);

  [[nodiscard]] const MemTracker& mem(int rank) const;
  [[nodiscard]] const PhaseProfiler& profiler(int rank) const;
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] FabricStats fabric_stats() const { return fabric_.stats(); }

  /// Peak tracked bytes, averaged / maxed across ranks.
  [[nodiscard]] double mean_peak_bytes() const;
  [[nodiscard]] usize max_peak_bytes() const;

  /// Reset trackers, profilers and barrier state for a fresh run.
  void reset_instrumentation();

  /// Arm fault injection for the next run() (see FaultPlan).
  void inject_fault(const FaultPlan& plan) { fault_ = plan; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_; }

 private:
  friend class RankContext;
  void barrier_wait();
  void barrier_wait_distributed();
  void maybe_fault(int rank, std::uint64_t step);
  void poison() noexcept;

  int nranks_;
  std::uint64_t seed_;
  bool distributed_ = false;
  int local_rank_ = -1;
  Fabric fabric_;
  std::vector<MemTracker> trackers_;
  std::vector<PhaseProfiler> profilers_;
  std::vector<obs::PhaseLedger> ledgers_;  ///< span-phase sinks, merged into profilers_
  FaultPlan fault_;
  std::atomic<bool> fault_fired_{false};

  // Central sense-reversing barrier (in-process mode). Distributed mode
  // replaces it with a dissemination barrier over fabric messages tagged
  // Phase::kBarrier; barrier_generation_ then just numbers invocations so
  // consecutive barriers cannot match each other's traffic.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool barrier_poisoned_ = false;
};

}  // namespace ptycho::rt
