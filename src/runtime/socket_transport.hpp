// TCP transport: one rank per process, length-prefixed frames.
//
// Wire protocol (all fields host-endian — the roster is assumed
// same-architecture, documented in README "Running multi-process"):
//
//   FrameHeader { magic, type, src, dst, tag, count, generation,
//                 checksum } then count * cplx.
//
// Every frame carries a CRC32 over the header (checksum field zeroed)
// plus the payload; a mismatch is a detected corruption and poisons the
// fabric cluster-wide. The generation field stamps the sender's cluster
// incarnation: hellos from another generation are refused at the mesh
// handshake, and stray data/poison frames from a dead incarnation are
// dropped instead of tag-matched.
//
// Frame types: kHello (connection handshake carrying the connector's
// rank), kData (a fabric message), kPoison (remote rank failed — poison
// the local fabric), kShutdown (orderly close; an EOF *after* a shutdown
// frame is a clean exit, an EOF *without* one is a dead peer and poisons
// the fabric, which is exactly the RankFailure teardown FaultPlan
// recovery expects), kPing (heartbeat — refreshes the peer's liveness
// clock, carries nothing).
//
// Failure detection is two-tier: EOF stays the fast path (a killed
// process's kernel closes its sockets), and the heartbeat/liveness pair
// catches the slow one — a peer that is alive but wedged keeps its
// sockets open and sends nothing, so the progress thread declares it
// dead once nothing has arrived for liveness_timeout_ms and poisons the
// fabric (broadcast: unlike an EOF, the other survivors may not have
// observed the silence yet).
//
// Mesh establishment: every rank binds its listener first, then connects
// to all lower ranks (with retry while peers are still starting) and
// accepts from all higher ranks; the TCP backlog makes the two sides
// commutative. A single poll()-based progress thread then reads frames
// and feeds them to Fabric::deliver() — the same mailbox matcher the
// in-process transport uses, so tag semantics are identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/transport.hpp"

namespace ptycho::rt {

class SocketTransport final : public Transport {
 public:
  /// `peers[r]` is rank r's listen address; `rank` is this process's
  /// rank. Timeouts, heartbeat cadence and the cluster generation come
  /// from `options`. The mesh is established in attach() (blocking, with
  /// a connect timeout), not here.
  SocketTransport(int rank, std::vector<PeerAddr> peers, const TransportOptions& options);
  ~SocketTransport() override;

  [[nodiscard]] const char* name() const override { return "socket"; }
  [[nodiscard]] int nranks() const override { return static_cast<int>(peers_.size()); }
  [[nodiscard]] bool is_local(int rank) const override { return rank == rank_; }

  void attach(Fabric& fabric) override;
  void send(int src, int dst, Tag tag, std::vector<cplx> payload) override;
  void broadcast_poison() noexcept override;
  void set_wedged(bool wedged) noexcept override {
    wedged_.store(wedged, std::memory_order_release);
  }
  bool send_corrupted(int src, int dst, Tag tag, std::vector<cplx> payload) override;
  [[nodiscard]] TransportStats stats() const override;

 private:
  struct Peer {
    int fd = -1;
    std::mutex send_mutex;              ///< serializes frame writes to this peer
    std::atomic<bool> shutdown{false};  ///< peer announced an orderly close
    /// steady_clock ns of the last frame received from / sent to this
    /// peer — the liveness deadline and the heartbeat cadence clocks.
    std::atomic<std::int64_t> last_rx_ns{0};
    std::atomic<std::int64_t> last_tx_ns{0};
    std::int64_t ping_seq = 0;  ///< progress thread only
  };

  void progress_loop();            ///< thread entry: poll_frames + fault trap
  void poll_frames();              ///< the actual poll/read loop
  bool read_frame(int peer_rank);  ///< false: connection ended (EOF/error)
  void send_control(int peer_rank, std::uint32_t type, Tag tag = 0) noexcept;
  void send_heartbeats(std::int64_t now_ns) noexcept;  ///< progress thread only
  void check_liveness(std::int64_t now_ns) noexcept;   ///< progress thread only
  /// Poison the fabric on a wire fault. `broadcast` tells the peers too —
  /// needed when the failure is not wire-visible to them (a liveness
  /// timeout, a corrupt frame); EOF faults stay local since every
  /// survivor observes the dead connection itself.
  void fail(const char* what, bool broadcast = false) noexcept;

  int rank_ = -1;
  std::vector<PeerAddr> peers_;
  std::uint32_t generation_ = 0;
  int connect_timeout_ms_ = 30000;
  int shutdown_drain_ms_ = 5000;
  int heartbeat_ms_ = 0;
  int liveness_timeout_ms_ = 0;
  Fabric* fabric_ = nullptr;
  std::vector<std::unique_ptr<Peer>> conns_;  ///< indexed by rank; [rank_] unused
  std::array<int, 2> wake_pipe_{-1, -1};      ///< self-pipe to stop the poll loop
  std::thread progress_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> wedged_{false};  ///< chaos: emit nothing onto the wire
  /// steady_clock deadline (ns since epoch; 0 = unset) after which the
  /// destructor's drain force-closes connections to hung peers.
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

}  // namespace ptycho::rt
