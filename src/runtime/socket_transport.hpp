// TCP transport: one rank per process, length-prefixed frames.
//
// Wire protocol (all fields host-endian — the roster is assumed
// same-architecture, documented in README "Running multi-process"):
//
//   FrameHeader { magic, type, src, dst, tag, count } then count * cplx.
//
// Frame types: kHello (connection handshake carrying the connector's
// rank), kData (a fabric message), kPoison (remote rank failed — poison
// the local fabric), kShutdown (orderly close; an EOF *after* a shutdown
// frame is a clean exit, an EOF *without* one is a dead peer and poisons
// the fabric, which is exactly the RankFailure teardown FaultPlan
// recovery expects).
//
// Mesh establishment: every rank binds its listener first, then connects
// to all lower ranks (with retry while peers are still starting) and
// accepts from all higher ranks; the TCP backlog makes the two sides
// commutative. A single poll()-based progress thread then reads frames
// and feeds them to Fabric::deliver() — the same mailbox matcher the
// in-process transport uses, so tag semantics are identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/transport.hpp"

namespace ptycho::rt {

class SocketTransport final : public Transport {
 public:
  /// `peers[r]` is rank r's listen address; `rank` is this process's rank.
  /// The mesh is established in attach() (blocking, with a connect
  /// timeout), not here.
  SocketTransport(int rank, std::vector<PeerAddr> peers);
  ~SocketTransport() override;

  [[nodiscard]] const char* name() const override { return "socket"; }
  [[nodiscard]] int nranks() const override { return static_cast<int>(peers_.size()); }
  [[nodiscard]] bool is_local(int rank) const override { return rank == rank_; }

  void attach(Fabric& fabric) override;
  void send(int src, int dst, Tag tag, std::vector<cplx> payload) override;
  void broadcast_poison() noexcept override;
  [[nodiscard]] TransportStats stats() const override;

 private:
  struct Peer {
    int fd = -1;
    std::mutex send_mutex;       ///< serializes frame writes to this peer
    std::atomic<bool> shutdown{false};  ///< peer announced an orderly close
  };

  void progress_loop();            ///< thread entry: poll_frames + fault trap
  void poll_frames();              ///< the actual poll/read loop
  bool read_frame(int peer_rank);  ///< false: connection ended (EOF/error)
  void send_control(int peer_rank, std::uint32_t type) noexcept;
  void fail(const char* what) noexcept;  ///< poison the fabric on a wire fault

  int rank_ = -1;
  std::vector<PeerAddr> peers_;
  Fabric* fabric_ = nullptr;
  std::vector<std::unique_ptr<Peer>> conns_;  ///< indexed by rank; [rank_] unused
  std::array<int, 2> wake_pipe_{-1, -1};      ///< self-pipe to stop the poll loop
  std::thread progress_;
  std::atomic<bool> stopping_{false};
  /// steady_clock deadline (ns since epoch; 0 = unset) after which the
  /// destructor's drain force-closes connections to hung peers.
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

}  // namespace ptycho::rt
