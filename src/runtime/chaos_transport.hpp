// Chaos-injection transport decorator.
//
// Wraps either delivery backend and injects communication faults on the
// send path, deterministically per seed:
//
//  * delay / reorder — messages are held back and released later. Release
//    times are monotonized per (src, dst, tag) key, so the per-key FIFO
//    the fabric's tag matcher relies on is preserved: a chaos soak with
//    only delay/reorder clauses is bitwise-identical to a clean run, which
//    is exactly what tests assert.
//  * drop — the message silently vanishes (the receiver's recv deadline
//    or the peer liveness watchdog must catch the resulting hang).
//  * corrupt — the frame reaches the peer with a failing checksum
//    (socket), or the detection is emulated by poisoning the fabric
//    directly (in-proc has no wire to corrupt). Either way the run dies
//    with RankFailure and recovery takes over.
//  * wedge — the victim goes silent mid-run without closing anything:
//    every subsequent send (and, on sockets, heartbeats) is swallowed.
//    Only the liveness deadline can catch this.
//
// Spec grammar (comma-separated clauses, e.g. "delay=0.5:2,reorder=0.3,seed=9"):
//
//   seed=N        rng seed (default 0); streams are per source rank and
//                 re-derived per cluster generation
//   rank=R        restrict injection to sends originating at rank R
//   delay=P[:M]   delay each send with probability P, uniform in (0, M] ms
//                 (M defaults to 5)
//   reorder=P     hold a send just long enough for later traffic to pass it
//   drop=P        drop each send with probability P
//   drop@N        drop exactly the Nth send of a source rank (one-shot)
//   corrupt=P     corrupt each send with probability P
//   corrupt@N     corrupt exactly the Nth send (one-shot)
//   wedge@N       at the Nth send, the victim goes permanently silent
//
// One-shot (@N) clauses fire only in cluster generation 0: recovery
// attempts re-run the same send sequence from the restored step, so a
// count-based fault would re-fire identically forever and no run could
// ever heal. Probabilistic clauses stay active in every generation (with
// a generation-derived rng stream).
//
// Counters (when metrics are enabled): runtime.chaos.{delayed,reordered,
// dropped,corrupted,wedged}_total.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "runtime/transport.hpp"

namespace ptycho::rt {

struct ChaosSpec {
  std::uint64_t seed = 0;
  int rank = -1;  ///< only sends from this rank are chaos-eligible (-1: all)
  double delay_p = 0.0;
  int delay_max_ms = 5;
  double reorder_p = 0.0;
  double drop_p = 0.0;
  std::uint64_t drop_at = 0;  ///< 1-based send index; 0 disables
  double corrupt_p = 0.0;
  std::uint64_t corrupt_at = 0;
  std::uint64_t wedge_at = 0;

  /// True when any clause actually injects something (a spec of just
  /// "seed=9" is inert and the decorator is skipped).
  [[nodiscard]] bool any() const {
    return delay_p > 0 || reorder_p > 0 || drop_p > 0 || drop_at > 0 || corrupt_p > 0 ||
           corrupt_at > 0 || wedge_at > 0;
  }
};

/// Parse the grammar above; throws ptycho::Error on unknown clauses or
/// malformed values.
[[nodiscard]] ChaosSpec parse_chaos_spec(const std::string& spec);

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosSpec spec, std::uint32_t generation);
  ~ChaosTransport() override;

  [[nodiscard]] const char* name() const override { return name_.c_str(); }
  [[nodiscard]] int nranks() const override { return inner_->nranks(); }
  [[nodiscard]] bool is_local(int rank) const override { return inner_->is_local(rank); }
  void attach(Fabric& fabric) override;
  void send(int src, int dst, Tag tag, std::vector<cplx> payload) override;
  void broadcast_poison() noexcept override { inner_->broadcast_poison(); }
  void set_wedged(bool wedged) noexcept override;
  bool send_corrupted(int src, int dst, Tag tag, std::vector<cplx> payload) override {
    return inner_->send_corrupted(src, dst, tag, std::move(payload));
  }
  [[nodiscard]] TransportStats stats() const override { return inner_->stats(); }

 private:
  struct Held {
    int src = 0;
    int dst = 0;
    Tag tag = 0;
    std::vector<cplx> payload;
  };
  /// Per (src, dst, tag) stream state: queued count and the latest release
  /// time handed out, so held messages of one key can never pass each other.
  struct KeyState {
    std::int64_t last_release_ns = 0;
    int queued = 0;
  };
  using Key = std::tuple<int, int, Tag>;

  void hold(int src, int dst, Tag tag, std::vector<cplx> payload, std::int64_t delay_ns);
  void wire_send(int src, int dst, Tag tag, std::vector<cplx> payload) noexcept;
  void worker_loop();

  // inner_ declared first: the worker thread (joined in the destructor
  // body) flushes the queue through it, so it must be destroyed last.
  std::unique_ptr<Transport> inner_;
  ChaosSpec spec_;
  std::uint32_t generation_ = 0;
  std::string name_;
  Fabric* fabric_ = nullptr;

  std::mutex state_mutex_;  ///< rng streams, counters, hold queue, key states
  std::condition_variable cv_;
  std::map<int, Rng> rngs_;                     ///< per source rank
  std::map<int, std::uint64_t> send_counts_;    ///< per source rank, 1-based
  std::map<Key, KeyState> keys_;
  std::map<std::pair<std::int64_t, std::uint64_t>, Held> queue_;  ///< (release_ns, seq)
  std::uint64_t next_seq_ = 0;
  bool draining_ = false;

  std::mutex wire_mutex_;  ///< serializes every inner_->send (worker + direct path)
  std::atomic<bool> wedged_{false};
  std::thread worker_;
};

}  // namespace ptycho::rt
