// Backend selection: one atomic pointer to the active kernel table,
// initialized lazily from PTYCHO_BACKEND / CPU detection and overridable
// via select() (the CLI --backend flag). Generic code only — this TU is
// compiled without ISA extension flags.
#include "backend/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "common/log.hpp"

namespace ptycho::backend {

namespace {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* pick_auto() {
  return simd_available() ? simd_kernels() : &scalar_kernels();
}

/// Resolve the PTYCHO_BACKEND environment variable (or its absence) to a
/// table. Invalid or unsatisfiable values warn and fall back to auto: env
/// configuration must never abort a run that would work without it.
const Kernels* initial_table() {
  const char* env = std::getenv("PTYCHO_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    const std::string_view name(env);
    if (name == "scalar") return &scalar_kernels();
    if (name == "simd") {
      if (simd_available()) return simd_kernels();
      log::warn() << "PTYCHO_BACKEND=simd but no SIMD backend is usable on this CPU; "
                     "using scalar";
      return &scalar_kernels();
    }
    if (name != "auto") {
      log::warn() << "PTYCHO_BACKEND='" << env << "' is not scalar|simd|auto; using auto";
    }
  }
  return pick_auto();
}

}  // namespace

bool simd_available() {
  if (simd_kernels() == nullptr) return false;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // The table was compiled with -mavx2 (and nothing more — see the FMA
  // note in CMakeLists.txt); the builtin also checks OS xsave support.
  return __builtin_cpu_supports("avx2");
#else
  // NEON is architecturally guaranteed on AArch64: compiled-in == runnable.
  return true;
#endif
}

const Kernels& kernels() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Kernels* fresh = initial_table();
    if (g_active.compare_exchange_strong(k, fresh, std::memory_order_acq_rel)) {
      k = fresh;  // this thread won the (idempotent) initialization race
    }
  }
  return *k;
}

bool select(std::string_view name) {
  if (name.empty() || name == "auto") {
    g_active.store(pick_auto(), std::memory_order_release);
    return true;
  }
  if (name == "scalar") {
    g_active.store(&scalar_kernels(), std::memory_order_release);
    return true;
  }
  if (name == "simd") {
    if (!simd_available()) return false;
    g_active.store(simd_kernels(), std::memory_order_release);
    return true;
  }
  return false;
}

const char* active_name() { return kernels().name; }

}  // namespace ptycho::backend
