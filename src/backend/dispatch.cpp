// Backend selection: one atomic pointer to the active kernel table,
// resolved from (backend choice, precision tier). The choice comes from
// PTYCHO_BACKEND / CPU detection / select() (the CLI --backend flag); the
// tier from set_precision() (the CLI --precision flag, strict by default).
// Generic code only — this TU is compiled without ISA extension flags.
#include "backend/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "common/log.hpp"

namespace ptycho::backend {

namespace {

enum class Choice { kAuto, kScalar, kSimd };

std::atomic<const Kernels*> g_active{nullptr};
std::atomic<Choice> g_choice{Choice::kAuto};
std::atomic<Precision> g_precision{Precision::kStrict};

/// Map (choice, precision) to a concrete table. Fast tier substitutes the
/// FMA column where one exists: scalar -> scalar-fma (always compiled),
/// simd -> vector-fma when the CPU has it, else the strict vector table
/// (degrading to strict beats degrading to scalar on a bandwidth-bound
/// sweep). kernels() stays a single atomic load — resolution happens only
/// here, on select()/set_precision().
const Kernels* resolve(Choice choice, Precision precision) {
  const bool scalar = choice == Choice::kScalar ||
                      (choice == Choice::kAuto && !simd_available());
  if (precision == Precision::kFast) {
    if (scalar) return &scalar_fma_kernels();
    if (fma_available()) return fma_kernels();
    return simd_kernels();
  }
  return scalar ? &scalar_kernels() : simd_kernels();
}

/// Resolve the PTYCHO_BACKEND environment variable (or its absence) to a
/// backend choice. Invalid or unsatisfiable values warn and fall back to
/// auto: env configuration must never abort a run that would work without
/// it.
Choice initial_choice() {
  const char* env = std::getenv("PTYCHO_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    const std::string_view name(env);
    if (name == "scalar") return Choice::kScalar;
    if (name == "simd") {
      if (simd_available()) return Choice::kSimd;
      log::warn() << "PTYCHO_BACKEND=simd but no SIMD backend is usable on this CPU; "
                     "using scalar";
      return Choice::kScalar;
    }
    if (name != "auto") {
      log::warn() << "PTYCHO_BACKEND='" << env << "' is not scalar|simd|auto; using auto";
    }
  }
  return Choice::kAuto;
}

}  // namespace

bool simd_available() {
  if (simd_kernels() == nullptr) return false;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // The table was compiled with -mavx2 (and nothing more — see the FMA
  // note in CMakeLists.txt); the builtin also checks OS xsave support.
  return __builtin_cpu_supports("avx2");
#else
  // NEON is architecturally guaranteed on AArch64: compiled-in == runnable.
  return true;
#endif
}

bool fma_available() {
  if (fma_kernels() == nullptr) return false;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return true;
#endif
}

const Kernels& kernels() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Choice choice = initial_choice();
    const Kernels* fresh = resolve(choice, g_precision.load(std::memory_order_acquire));
    if (g_active.compare_exchange_strong(k, fresh, std::memory_order_acq_rel)) {
      g_choice.store(choice, std::memory_order_release);
      k = fresh;  // this thread won the (idempotent) initialization race
    }
  }
  return *k;
}

bool select(std::string_view name) {
  Choice choice;
  if (name.empty() || name == "auto") {
    choice = Choice::kAuto;
  } else if (name == "scalar") {
    choice = Choice::kScalar;
  } else if (name == "simd") {
    if (!simd_available()) return false;
    choice = Choice::kSimd;
  } else {
    return false;
  }
  g_choice.store(choice, std::memory_order_release);
  g_active.store(resolve(choice, g_precision.load(std::memory_order_acquire)),
                 std::memory_order_release);
  return true;
}

void set_precision(Precision p) {
  g_precision.store(p, std::memory_order_release);
  g_active.store(resolve(g_choice.load(std::memory_order_acquire), p),
                 std::memory_order_release);
}

Precision active_precision() { return g_precision.load(std::memory_order_acquire); }

const char* active_name() { return kernels().name; }

}  // namespace ptycho::backend
