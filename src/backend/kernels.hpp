// Runtime-dispatched SIMD kernel backend.
//
// Every hot complex inner loop in the library (FFT butterflies, Bluestein
// chirp products, Hadamard/axpy tensor ops, propagator and multislice
// backprop kernels) calls through the `Kernels` table returned by
// `kernels()`. The table is selected once, lazily, from:
//
//   1. an explicit `select("scalar"|"simd"|"auto")` call (CLI `--backend`),
//   2. else the `PTYCHO_BACKEND` environment variable,
//   3. else CPU detection ("auto"): AVX2 on x86-64, NEON on AArch64,
//      falling back to the portable scalar table.
//
// Bitwise contract: for every primitive, the SIMD implementation performs
// exactly the same IEEE-754 operations per element as the scalar one —
// same association, no fusing on either path (all backend translation
// units compile with -ffp-contract=off) — so switching backends never
// changes a single output bit. Tests enforce this (tests/test_backend.cpp)
// and it is what preserves the any-thread-count determinism guarantee of
// the batched sweep.
//
// Selection is not synchronized with running kernels: call `select` at
// process startup, before worker threads launch.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace ptycho::backend {

/// Function table of batched complex primitives. All pointers are over
/// contiguous, arbitrarily aligned arrays of `n` elements; `dst` may alias
/// the first source operand unless noted. Implementations must be bitwise
/// deterministic and lane-independent (element i depends only on inputs i).
struct Kernels {
  /// Short stable name for logs / JSON ("scalar", "avx2", "neon").
  const char* name;

  /// dst[i] = cmul(a[i], b[i]); dst may alias a.
  void (*cmul_lanes)(cplx* dst, const cplx* a, const cplx* b, usize n);

  /// dst[i] = cmul_conj(a[i], b[i]) = a[i] * conj(b[i]); dst may alias a.
  void (*cmul_conj_lanes)(cplx* dst, const cplx* a, const cplx* b, usize n);

  /// dst[i] += cmul_conj(a[i], b[i]).
  void (*cmul_conj_acc_lanes)(cplx* dst, const cplx* a, const cplx* b, usize n);

  /// dst[i] = cmul(src[i], alpha); dst may alias src.
  void (*scale_lanes)(cplx* dst, const cplx* src, cplx alpha, usize n);

  /// dst[i] += cmul(alpha, src[i]).
  void (*axpy_lanes)(cplx* dst, const cplx* src, cplx alpha, usize n);

  /// dst[i] = conj(src[i]) * s; dst may alias src (Bluestein inverse trick).
  void (*conj_scale_lanes)(cplx* dst, const cplx* src, real s, usize n);

  /// Radix-2 butterfly block with one twiddle shared across lanes (the
  /// strided batched FFT): t = cmul(w, b[i]); b[i] = a[i] - t; a[i] += t.
  /// a and b must not overlap.
  void (*butterfly_lanes)(cplx* a, cplx* b, cplx w, usize n);

  /// Radix-2 butterfly block with per-lane twiddles (contiguous FFT stage):
  /// w = conj_tw ? conj(tw[i]) : tw[i]; t = cmul(w, b[i]);
  /// b[i] = a[i] - t; a[i] += t. a and b must not overlap.
  void (*butterfly_block)(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n);

  /// Radix-4 butterfly block with per-lane twiddles: the fusion of two
  /// consecutive radix-2 stages (quarter-lengths h and 2h) over one
  /// bit-reversal-ordered block. With w_j = conj_tw ? conj(tw_j[i]) : tw_j[i]:
  ///   u1 = cmul(w1, x1[i]); u2 = cmul(w2, x2[i]); u3 = cmul(w3, x3[i])
  ///   s0 = x0[i] + u1; s1 = x0[i] - u1; s2 = u2 + u3; s3 = u2 - u3
  ///   r  = (conj_tw ? +i : -i) * s3   (exact re/im swap + sign flip)
  ///   x0[i] = s0 + s2; x2[i] = s0 - s2; x1[i] = s1 + r; x3[i] = s1 - r
  /// The four operand arrays must be pairwise non-overlapping.
  void (*butterfly4_block)(cplx* x0, cplx* x1, cplx* x2, cplx* x3, const cplx* tw1,
                           const cplx* tw2, const cplx* tw3, bool conj_tw, usize n);

  /// Radix-4 butterfly block with twiddles shared across lanes (the strided
  /// batched FFT). Callers pass already-conjugated twiddles for the inverse;
  /// `conj_rot` selects the +i rotation (same exactness note as above).
  void (*butterfly4_lanes)(cplx* x0, cplx* x1, cplx* x2, cplx* x3, cplx w1, cplx w2, cplx w3,
                           bool conj_rot, usize n);

  /// Row-tiled Hadamard product between two strided 2-D tiles (the fused
  /// spectral multiply of the 2-D FFT): for r < rows, c < cols
  ///   dst[r*dst_stride + c] = conj_b ? cmul_conj(a[...], b[...])
  ///                                  : cmul(a[r*a_stride + c], b[r*b_stride + c]).
  /// dst may alias a (same pointer and stride); b must not overlap dst.
  void (*cmul_rows_tiled)(cplx* dst, usize dst_stride, const cplx* a, usize a_stride,
                          const cplx* b, usize b_stride, bool conj_b, usize rows, usize cols);

  /// Bluestein chirp product: dst[i] = cmul(src[i] * s, chirp[i]).
  void (*chirp_mul_lanes)(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n);

  /// Batched-Bluestein chirp product, one chirp value shared across lanes:
  /// dst[i] = cmul(src[i] * s, alpha). dst may alias src.
  void (*scale_chirp_lanes)(cplx* dst, const cplx* src, real s, cplx alpha, usize n);

  /// Fused multislice potential-model backprop step (one row):
  ///   gt        = cmul_conj(g[i], psi_in[i])
  ///   ist       = (-sigma * trans[i].imag(), sigma * trans[i].real())
  ///   grad_out[i] += cmul_conj(gt, ist)
  ///   g[i]      = cmul_conj(g[i], trans[i])
  void (*potential_backprop_lanes)(cplx* grad_out, cplx* g, const cplx* psi_in,
                                   const cplx* trans, real sigma, usize n);
};

/// Numerics tier. kStrict is the bitwise-deterministic contract documented
/// above (no fusing, -ffp-contract=off TUs). kFast swaps in FMA variants of
/// the same primitives — fused multiply-adds change the rounding of each
/// element (fewer roundings, not more error), so fast-tier output is
/// tolerance-gated against strict, never memcmp'd (tests/test_precision.cpp).
enum class Precision { kStrict, kFast };

/// The active table (lazily initialized as documented above).
[[nodiscard]] const Kernels& kernels();

/// The portable scalar table (always available; the reference semantics).
[[nodiscard]] const Kernels& scalar_kernels();

/// The SIMD table compiled into this binary, or nullptr when the build has
/// no vector backend for this architecture. Availability of the *pointer*
/// does not imply the CPU can run it — see simd_available().
[[nodiscard]] const Kernels* simd_kernels();

/// The scalar FMA table ("scalar-fma"): every complex multiply spelled
/// with explicit std::fma in the exact sequence the vector FMA tables use,
/// so the three fast tables are bitwise identical to EACH OTHER (a new,
/// fast-tier-internal contract — not to the strict tables). Always
/// available.
[[nodiscard]] const Kernels& scalar_fma_kernels();

/// The vector FMA table ("avx2-fma" / "neon-fma"), or nullptr when the
/// build has none for this architecture. See fma_available().
[[nodiscard]] const Kernels* fma_kernels();

/// True when a SIMD table is compiled in AND the running CPU supports it.
[[nodiscard]] bool simd_available();

/// True when a vector FMA table is compiled in AND the CPU supports it
/// (x86-64: AVX2+FMA; AArch64: architecturally guaranteed).
[[nodiscard]] bool fma_available();

/// Force a backend: "scalar", "simd" or "auto" (empty string == "auto").
/// Returns false (and leaves the active table unchanged) for an unknown
/// name or for "simd" when simd_available() is false. The active precision
/// tier is preserved across select() calls.
bool select(std::string_view name);

/// Set the numerics tier. kFast resolves the active table to the FMA
/// column of the current backend choice; when the CPU has no vector FMA,
/// a "simd" choice keeps the strict vector table (fast degrades to
/// strict rather than to scalar). Always succeeds.
void set_precision(Precision p);

/// The active numerics tier.
[[nodiscard]] Precision active_precision();

/// Name of the active table ("scalar", "avx2", "neon", "scalar-fma",
/// "avx2-fma", "neon-fma").
[[nodiscard]] const char* active_name();

}  // namespace ptycho::backend
