// Fast-tier (FMA) backend tables: the same 14 primitives as the strict
// tables, with every complex multiply's first product fused. This is the
// only TU built with -mfma (-mavx2 -mfma -mf16c on x86-64 — see
// CMakeLists.txt); nothing here runs unless dispatch.cpp verified the CPU
// and the caller opted into Precision::kFast.
//
// Fast-tier bitwise contract (tests/test_precision.cpp): the three fast
// tables — "scalar-fma", "avx2-fma", "neon-fma" — are bitwise identical
// to EACH OTHER, so backend choice is still never an algorithmic variable
// within a tier. The defining operation sequence per complex multiply is
//   re = fma(a.re, b.re, -(a.im * b.im))
//   im = fma(a.im, b.re,   a.re * b.im )
// i.e. one rounded product plus one fused multiply-add per component —
// exactly what _mm256_fmaddsub_ps(a, br, asw*bi) and the NEON vfmaq
// equivalent compute. The scalar reference below spells it out with
// std::fma, which makes it deterministic under any contraction flag.
// Against the strict tier the results differ (fewer roundings), which is
// why fast is tolerance-gated, never memcmp'd.
//
// Deliberately NOT included: backend/scalar_impl.hpp. Its functions are
// `inline` and shared by the strict TUs; instantiating them here under
// FMA codegen flags would let the linker hand the contracted copies to
// the strict tables (an ODR trap that would silently break the strict
// bitwise contract).
#include <cmath>

#include "backend/kernels.hpp"

namespace ptycho::backend {
namespace {

/// Scalar fast-tier reference semantics (see header comment).
namespace fscalar {

inline cplx cmul_fma(cplx a, cplx b) {
  return cplx(std::fma(a.real(), b.real(), -(a.imag() * b.imag())),
              std::fma(a.imag(), b.real(), a.real() * b.imag()));
}

/// a * conj(b): the sign of b.im flips before the products (exact).
inline cplx cmul_conj_fma(cplx a, cplx b) {
  return cplx(std::fma(a.real(), b.real(), a.imag() * b.imag()),
              std::fma(a.imag(), b.real(), -(a.real() * b.imag())));
}

/// cmul(w, x) with w broadcast: matches the vector fmaddsub(wr, x, wi*xsw).
inline cplx cmul_bcast_fma(cplx w, cplx x) {
  return cplx(std::fma(w.real(), x.real(), -(w.imag() * x.imag())),
              std::fma(w.real(), x.imag(), w.imag() * x.real()));
}

inline void cmul_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_fma(a[i], b[i]);
}

inline void cmul_conj_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_conj_fma(a[i], b[i]);
}

inline void cmul_conj_acc_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul_conj_fma(a[i], b[i]);
}

inline void scale_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_bcast_fma(alpha, src[i]);
}

inline void axpy_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul_bcast_fma(alpha, src[i]);
}

inline void conj_scale_lanes(cplx* dst, const cplx* src, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = std::conj(src[i]) * s;
}

inline void butterfly_lanes(cplx* a, cplx* b, cplx w, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx t = cmul_bcast_fma(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void butterfly_block(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx w = conj_tw ? std::conj(tw[i]) : tw[i];
    const cplx t = cmul_fma(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void butterfly4_block(cplx* x0, cplx* x1, cplx* x2, cplx* x3, const cplx* tw1,
                             const cplx* tw2, const cplx* tw3, bool conj_tw, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx w1 = conj_tw ? std::conj(tw1[i]) : tw1[i];
    const cplx w2 = conj_tw ? std::conj(tw2[i]) : tw2[i];
    const cplx w3 = conj_tw ? std::conj(tw3[i]) : tw3[i];
    const cplx u1 = cmul_fma(w1, x1[i]);
    const cplx u2 = cmul_fma(w2, x2[i]);
    const cplx u3 = cmul_fma(w3, x3[i]);
    const cplx z = x0[i];
    const cplx s0 = z + u1;
    const cplx s1 = z - u1;
    const cplx s2 = u2 + u3;
    const cplx s3 = u2 - u3;
    const cplx r = conj_tw ? cplx(-s3.imag(), s3.real()) : cplx(s3.imag(), -s3.real());
    x0[i] = s0 + s2;
    x2[i] = s0 - s2;
    x1[i] = s1 + r;
    x3[i] = s1 - r;
  }
}

inline void butterfly4_lanes(cplx* x0, cplx* x1, cplx* x2, cplx* x3, cplx w1, cplx w2, cplx w3,
                             bool conj_rot, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx u1 = cmul_bcast_fma(w1, x1[i]);
    const cplx u2 = cmul_bcast_fma(w2, x2[i]);
    const cplx u3 = cmul_bcast_fma(w3, x3[i]);
    const cplx z = x0[i];
    const cplx s0 = z + u1;
    const cplx s1 = z - u1;
    const cplx s2 = u2 + u3;
    const cplx s3 = u2 - u3;
    const cplx r = conj_rot ? cplx(-s3.imag(), s3.real()) : cplx(s3.imag(), -s3.real());
    x0[i] = s0 + s2;
    x2[i] = s0 - s2;
    x1[i] = s1 + r;
    x3[i] = s1 - r;
  }
}

inline void cmul_rows_tiled(cplx* dst, usize dst_stride, const cplx* a, usize a_stride,
                            const cplx* b, usize b_stride, bool conj_b, usize rows,
                            usize cols) {
  for (usize r = 0; r < rows; ++r) {
    if (conj_b) {
      cmul_conj_lanes(dst + r * dst_stride, a + r * a_stride, b + r * b_stride, cols);
    } else {
      cmul_lanes(dst + r * dst_stride, a + r * a_stride, b + r * b_stride, cols);
    }
  }
}

inline void chirp_mul_lanes(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_fma(src[i] * s, chirp[i]);
}

inline void scale_chirp_lanes(cplx* dst, const cplx* src, real s, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_bcast_fma(alpha, src[i] * s);
}

inline void potential_backprop_lanes(cplx* grad_out, cplx* g, const cplx* psi_in,
                                     const cplx* trans, real sigma, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx gt = cmul_conj_fma(g[i], psi_in[i]);
    const cplx ist(-sigma * trans[i].imag(), sigma * trans[i].real());
    grad_out[i] += cmul_conj_fma(gt, ist);
    g[i] = cmul_conj_fma(g[i], trans[i]);
  }
}

}  // namespace fscalar

constexpr Kernels kScalarFma = {
    "scalar-fma",
    &fscalar::cmul_lanes,
    &fscalar::cmul_conj_lanes,
    &fscalar::cmul_conj_acc_lanes,
    &fscalar::scale_lanes,
    &fscalar::axpy_lanes,
    &fscalar::conj_scale_lanes,
    &fscalar::butterfly_lanes,
    &fscalar::butterfly_block,
    &fscalar::butterfly4_block,
    &fscalar::butterfly4_lanes,
    &fscalar::cmul_rows_tiled,
    &fscalar::chirp_mul_lanes,
    &fscalar::scale_chirp_lanes,
    &fscalar::potential_backprop_lanes,
};

}  // namespace

const Kernels& scalar_fma_kernels() { return kScalarFma; }

}  // namespace ptycho::backend

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ptycho::backend {
namespace {
namespace favx2 {

// 4 complex floats per __m256, interleaved [re0, im0, re1, im1, ...].
constexpr usize kW = 4;

inline __m256 load8(const cplx* p) {
  return _mm256_loadu_ps(reinterpret_cast<const float*>(p));
}
inline void store8(cplx* p, __m256 v) {
  _mm256_storeu_ps(reinterpret_cast<float*>(p), v);
}

inline __m256 sign_all() { return _mm256_set1_ps(-0.0f); }
inline __m256 sign_imag() {
  return _mm256_castsi256_ps(_mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL)));
}
inline __m256 sign_real() {
  return _mm256_castsi256_ps(_mm256_set1_epi64x(0x0000000080000000LL));
}

/// Fused cmul: fmaddsub(a, br, asw*bi) — per pair
///   re = fma(a.re, b.re, -(a.im*b.im)), im = fma(a.im, b.re, a.re*b.im).
inline __m256 cmul8(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);
  const __m256 bi = _mm256_movehdup_ps(b);
  const __m256 asw = _mm256_permute_ps(a, 0xB1);  // [a.im, a.re] per pair
  return _mm256_fmaddsub_ps(a, br, _mm256_mul_ps(asw, bi));
}

/// Fused cmul_conj(a, b) = a * conj(b): negate b.im before the products.
inline __m256 cmul_conj8(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);
  const __m256 nbi = _mm256_xor_ps(_mm256_movehdup_ps(b), sign_all());
  const __m256 asw = _mm256_permute_ps(a, 0xB1);
  return _mm256_fmaddsub_ps(a, br, _mm256_mul_ps(asw, nbi));
}

/// Fused cmul(w, x) with a scalar w broadcast across lanes.
inline __m256 cmul_broadcast8(__m256 wr, __m256 wi, __m256 x) {
  const __m256 xsw = _mm256_permute_ps(x, 0xB1);
  return _mm256_fmaddsub_ps(wr, x, _mm256_mul_ps(wi, xsw));
}

void cmul_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) store8(dst + i, cmul8(load8(a + i), load8(b + i)));
  fscalar::cmul_lanes(dst + i, a + i, b + i, n - i);
}

void cmul_conj_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) store8(dst + i, cmul_conj8(load8(a + i), load8(b + i)));
  fscalar::cmul_conj_lanes(dst + i, a + i, b + i, n - i);
}

void cmul_conj_acc_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 t = cmul_conj8(load8(a + i), load8(b + i));
    store8(dst + i, _mm256_add_ps(load8(dst + i), t));
  }
  fscalar::cmul_conj_acc_lanes(dst + i, a + i, b + i, n - i);
}

void scale_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  const __m256 wr = _mm256_set1_ps(alpha.real());
  const __m256 wi = _mm256_set1_ps(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) store8(dst + i, cmul_broadcast8(wr, wi, load8(src + i)));
  fscalar::scale_lanes(dst + i, src + i, alpha, n - i);
}

void axpy_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  const __m256 wr = _mm256_set1_ps(alpha.real());
  const __m256 wi = _mm256_set1_ps(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 t = cmul_broadcast8(wr, wi, load8(src + i));
    store8(dst + i, _mm256_add_ps(load8(dst + i), t));
  }
  fscalar::axpy_lanes(dst + i, src + i, alpha, n - i);
}

void conj_scale_lanes(cplx* dst, const cplx* src, real s, usize n) {
  const __m256 vs = _mm256_set1_ps(s);
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 c = _mm256_xor_ps(load8(src + i), sign_imag());
    store8(dst + i, _mm256_mul_ps(c, vs));
  }
  fscalar::conj_scale_lanes(dst + i, src + i, s, n - i);
}

void butterfly_lanes(cplx* a, cplx* b, cplx w, usize n) {
  const __m256 wr = _mm256_set1_ps(w.real());
  const __m256 wi = _mm256_set1_ps(w.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 t = cmul_broadcast8(wr, wi, load8(b + i));
    const __m256 u = load8(a + i);
    store8(a + i, _mm256_add_ps(u, t));
    store8(b + i, _mm256_sub_ps(u, t));
  }
  fscalar::butterfly_lanes(a + i, b + i, w, n - i);
}

void butterfly_block(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n) {
  const __m256 conj_mask = conj_tw ? sign_imag() : _mm256_setzero_ps();
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 w = _mm256_xor_ps(load8(tw + i), conj_mask);
    const __m256 t = cmul8(w, load8(b + i));
    const __m256 u = load8(a + i);
    store8(a + i, _mm256_add_ps(u, t));
    store8(b + i, _mm256_sub_ps(u, t));
  }
  fscalar::butterfly_block(a + i, b + i, tw + i, conj_tw, n - i);
}

void butterfly4_block(cplx* x0, cplx* x1, cplx* x2, cplx* x3, const cplx* tw1, const cplx* tw2,
                      const cplx* tw3, bool conj_tw, usize n) {
  const __m256 conj_mask = conj_tw ? sign_imag() : _mm256_setzero_ps();
  // -i*s = (s.im, -s.re): swap then negate odd lanes; +i*s: negate even lanes.
  const __m256 rot_mask = conj_tw ? sign_real() : sign_imag();
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 w1 = _mm256_xor_ps(load8(tw1 + i), conj_mask);
    const __m256 w2 = _mm256_xor_ps(load8(tw2 + i), conj_mask);
    const __m256 w3 = _mm256_xor_ps(load8(tw3 + i), conj_mask);
    const __m256 u1 = cmul8(w1, load8(x1 + i));
    const __m256 u2 = cmul8(w2, load8(x2 + i));
    const __m256 u3 = cmul8(w3, load8(x3 + i));
    const __m256 z = load8(x0 + i);
    const __m256 s0 = _mm256_add_ps(z, u1);
    const __m256 s1 = _mm256_sub_ps(z, u1);
    const __m256 s2 = _mm256_add_ps(u2, u3);
    const __m256 s3 = _mm256_sub_ps(u2, u3);
    const __m256 r = _mm256_xor_ps(_mm256_permute_ps(s3, 0xB1), rot_mask);
    store8(x0 + i, _mm256_add_ps(s0, s2));
    store8(x2 + i, _mm256_sub_ps(s0, s2));
    store8(x1 + i, _mm256_add_ps(s1, r));
    store8(x3 + i, _mm256_sub_ps(s1, r));
  }
  fscalar::butterfly4_block(x0 + i, x1 + i, x2 + i, x3 + i, tw1 + i, tw2 + i, tw3 + i, conj_tw,
                            n - i);
}

void butterfly4_lanes(cplx* x0, cplx* x1, cplx* x2, cplx* x3, cplx w1, cplx w2, cplx w3,
                      bool conj_rot, usize n) {
  const __m256 w1r = _mm256_set1_ps(w1.real());
  const __m256 w1i = _mm256_set1_ps(w1.imag());
  const __m256 w2r = _mm256_set1_ps(w2.real());
  const __m256 w2i = _mm256_set1_ps(w2.imag());
  const __m256 w3r = _mm256_set1_ps(w3.real());
  const __m256 w3i = _mm256_set1_ps(w3.imag());
  const __m256 rot_mask = conj_rot ? sign_real() : sign_imag();
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 u1 = cmul_broadcast8(w1r, w1i, load8(x1 + i));
    const __m256 u2 = cmul_broadcast8(w2r, w2i, load8(x2 + i));
    const __m256 u3 = cmul_broadcast8(w3r, w3i, load8(x3 + i));
    const __m256 z = load8(x0 + i);
    const __m256 s0 = _mm256_add_ps(z, u1);
    const __m256 s1 = _mm256_sub_ps(z, u1);
    const __m256 s2 = _mm256_add_ps(u2, u3);
    const __m256 s3 = _mm256_sub_ps(u2, u3);
    const __m256 r = _mm256_xor_ps(_mm256_permute_ps(s3, 0xB1), rot_mask);
    store8(x0 + i, _mm256_add_ps(s0, s2));
    store8(x2 + i, _mm256_sub_ps(s0, s2));
    store8(x1 + i, _mm256_add_ps(s1, r));
    store8(x3 + i, _mm256_sub_ps(s1, r));
  }
  fscalar::butterfly4_lanes(x0 + i, x1 + i, x2 + i, x3 + i, w1, w2, w3, conj_rot, n - i);
}

void cmul_rows_tiled(cplx* dst, usize dst_stride, const cplx* a, usize a_stride, const cplx* b,
                     usize b_stride, bool conj_b, usize rows, usize cols) {
  for (usize r = 0; r < rows; ++r) {
    cplx* d = dst + r * dst_stride;
    const cplx* ar = a + r * a_stride;
    const cplx* br = b + r * b_stride;
    usize i = 0;
    if (conj_b) {
      for (; i + kW <= cols; i += kW) store8(d + i, cmul_conj8(load8(ar + i), load8(br + i)));
      fscalar::cmul_conj_lanes(d + i, ar + i, br + i, cols - i);
    } else {
      for (; i + kW <= cols; i += kW) store8(d + i, cmul8(load8(ar + i), load8(br + i)));
      fscalar::cmul_lanes(d + i, ar + i, br + i, cols - i);
    }
  }
}

void chirp_mul_lanes(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n) {
  const __m256 vs = _mm256_set1_ps(s);
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 scaled = _mm256_mul_ps(load8(src + i), vs);
    store8(dst + i, cmul8(scaled, load8(chirp + i)));
  }
  fscalar::chirp_mul_lanes(dst + i, src + i, chirp + i, s, n - i);
}

void scale_chirp_lanes(cplx* dst, const cplx* src, real s, cplx alpha, usize n) {
  const __m256 vs = _mm256_set1_ps(s);
  const __m256 wr = _mm256_set1_ps(alpha.real());
  const __m256 wi = _mm256_set1_ps(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    store8(dst + i, cmul_broadcast8(wr, wi, _mm256_mul_ps(load8(src + i), vs)));
  }
  fscalar::scale_chirp_lanes(dst + i, src + i, s, alpha, n - i);
}

void potential_backprop_lanes(cplx* grad_out, cplx* g, const cplx* psi_in, const cplx* trans,
                              real sigma, usize n) {
  const __m256 msig = _mm256_xor_ps(_mm256_set1_ps(sigma), sign_real());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 gv = load8(g + i);
    const __m256 tv = load8(trans + i);
    const __m256 gt = cmul_conj8(gv, load8(psi_in + i));
    const __m256 ist = _mm256_mul_ps(_mm256_permute_ps(tv, 0xB1), msig);
    store8(grad_out + i, _mm256_add_ps(load8(grad_out + i), cmul_conj8(gt, ist)));
    store8(g + i, cmul_conj8(gv, tv));
  }
  fscalar::potential_backprop_lanes(grad_out + i, g + i, psi_in + i, trans + i, sigma, n - i);
}

constexpr Kernels kAvx2Fma = {
    "avx2-fma",
    &cmul_lanes,
    &cmul_conj_lanes,
    &cmul_conj_acc_lanes,
    &scale_lanes,
    &axpy_lanes,
    &conj_scale_lanes,
    &butterfly_lanes,
    &butterfly_block,
    &butterfly4_block,
    &butterfly4_lanes,
    &cmul_rows_tiled,
    &chirp_mul_lanes,
    &scale_chirp_lanes,
    &potential_backprop_lanes,
};

}  // namespace favx2
}  // namespace

const Kernels* fma_kernels() { return &favx2::kAvx2Fma; }

}  // namespace ptycho::backend

#elif defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace ptycho::backend {
namespace {
namespace fneon {

// 2 complex floats per float32x4_t, interleaved [re0, im0, re1, im1].
constexpr usize kW = 2;

inline float32x4_t load4(const cplx* p) {
  return vld1q_f32(reinterpret_cast<const float*>(p));
}
inline void store4(cplx* p, float32x4_t v) {
  vst1q_f32(reinterpret_cast<float*>(p), v);
}

inline float32x4_t flip_signs(float32x4_t v, uint32x4_t mask) {
  return vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(v), mask));
}
inline uint32x4_t sign_all() { return vdupq_n_u32(0x80000000u); }
inline uint32x4_t sign_imag() {
  const uint32x4_t m = {0u, 0x80000000u, 0u, 0x80000000u};
  return m;
}
inline uint32x4_t sign_real() {
  const uint32x4_t m = {0x80000000u, 0u, 0x80000000u, 0u};
  return m;
}

/// Fused cmul: c = asw*bi with even lanes negated, then vfmaq(c, a, br):
///   re = fma(a.re, b.re, -(a.im*b.im)), im = fma(a.im, b.re, a.re*b.im) —
/// the same sequence as the scalar-fma and avx2-fma tables.
inline float32x4_t cmul4(float32x4_t a, float32x4_t b) {
  const float32x4_t br = vtrn1q_f32(b, b);
  const float32x4_t bi = vtrn2q_f32(b, b);
  const float32x4_t asw = vrev64q_f32(a);
  const float32x4_t c = flip_signs(vmulq_f32(asw, bi), sign_real());
  return vfmaq_f32(c, a, br);
}

inline float32x4_t cmul_conj4(float32x4_t a, float32x4_t b) {
  const float32x4_t br = vtrn1q_f32(b, b);
  const float32x4_t nbi = flip_signs(vtrn2q_f32(b, b), sign_all());
  const float32x4_t asw = vrev64q_f32(a);
  const float32x4_t c = flip_signs(vmulq_f32(asw, nbi), sign_real());
  return vfmaq_f32(c, a, br);
}

inline float32x4_t cmul_broadcast4(float32x4_t wr, float32x4_t wi, float32x4_t x) {
  const float32x4_t xsw = vrev64q_f32(x);
  const float32x4_t c = flip_signs(vmulq_f32(wi, xsw), sign_real());
  return vfmaq_f32(c, wr, x);
}

void cmul_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) store4(dst + i, cmul4(load4(a + i), load4(b + i)));
  fscalar::cmul_lanes(dst + i, a + i, b + i, n - i);
}

void cmul_conj_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) store4(dst + i, cmul_conj4(load4(a + i), load4(b + i)));
  fscalar::cmul_conj_lanes(dst + i, a + i, b + i, n - i);
}

void cmul_conj_acc_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t t = cmul_conj4(load4(a + i), load4(b + i));
    store4(dst + i, vaddq_f32(load4(dst + i), t));
  }
  fscalar::cmul_conj_acc_lanes(dst + i, a + i, b + i, n - i);
}

void scale_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  const float32x4_t wr = vdupq_n_f32(alpha.real());
  const float32x4_t wi = vdupq_n_f32(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) store4(dst + i, cmul_broadcast4(wr, wi, load4(src + i)));
  fscalar::scale_lanes(dst + i, src + i, alpha, n - i);
}

void axpy_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  const float32x4_t wr = vdupq_n_f32(alpha.real());
  const float32x4_t wi = vdupq_n_f32(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t t = cmul_broadcast4(wr, wi, load4(src + i));
    store4(dst + i, vaddq_f32(load4(dst + i), t));
  }
  fscalar::axpy_lanes(dst + i, src + i, alpha, n - i);
}

void conj_scale_lanes(cplx* dst, const cplx* src, real s, usize n) {
  const float32x4_t vs = vdupq_n_f32(s);
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    store4(dst + i, vmulq_f32(flip_signs(load4(src + i), sign_imag()), vs));
  }
  fscalar::conj_scale_lanes(dst + i, src + i, s, n - i);
}

void butterfly_lanes(cplx* a, cplx* b, cplx w, usize n) {
  const float32x4_t wr = vdupq_n_f32(w.real());
  const float32x4_t wi = vdupq_n_f32(w.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t t = cmul_broadcast4(wr, wi, load4(b + i));
    const float32x4_t u = load4(a + i);
    store4(a + i, vaddq_f32(u, t));
    store4(b + i, vsubq_f32(u, t));
  }
  fscalar::butterfly_lanes(a + i, b + i, w, n - i);
}

void butterfly_block(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n) {
  const uint32x4_t conj_mask = conj_tw ? sign_imag() : vdupq_n_u32(0u);
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t w = flip_signs(load4(tw + i), conj_mask);
    const float32x4_t t = cmul4(w, load4(b + i));
    const float32x4_t u = load4(a + i);
    store4(a + i, vaddq_f32(u, t));
    store4(b + i, vsubq_f32(u, t));
  }
  fscalar::butterfly_block(a + i, b + i, tw + i, conj_tw, n - i);
}

void butterfly4_block(cplx* x0, cplx* x1, cplx* x2, cplx* x3, const cplx* tw1, const cplx* tw2,
                      const cplx* tw3, bool conj_tw, usize n) {
  const uint32x4_t conj_mask = conj_tw ? sign_imag() : vdupq_n_u32(0u);
  const uint32x4_t rot_mask = conj_tw ? sign_real() : sign_imag();
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t w1 = flip_signs(load4(tw1 + i), conj_mask);
    const float32x4_t w2 = flip_signs(load4(tw2 + i), conj_mask);
    const float32x4_t w3 = flip_signs(load4(tw3 + i), conj_mask);
    const float32x4_t u1 = cmul4(w1, load4(x1 + i));
    const float32x4_t u2 = cmul4(w2, load4(x2 + i));
    const float32x4_t u3 = cmul4(w3, load4(x3 + i));
    const float32x4_t z = load4(x0 + i);
    const float32x4_t s0 = vaddq_f32(z, u1);
    const float32x4_t s1 = vsubq_f32(z, u1);
    const float32x4_t s2 = vaddq_f32(u2, u3);
    const float32x4_t s3 = vsubq_f32(u2, u3);
    const float32x4_t r = flip_signs(vrev64q_f32(s3), rot_mask);
    store4(x0 + i, vaddq_f32(s0, s2));
    store4(x2 + i, vsubq_f32(s0, s2));
    store4(x1 + i, vaddq_f32(s1, r));
    store4(x3 + i, vsubq_f32(s1, r));
  }
  fscalar::butterfly4_block(x0 + i, x1 + i, x2 + i, x3 + i, tw1 + i, tw2 + i, tw3 + i, conj_tw,
                            n - i);
}

void butterfly4_lanes(cplx* x0, cplx* x1, cplx* x2, cplx* x3, cplx w1, cplx w2, cplx w3,
                      bool conj_rot, usize n) {
  const float32x4_t w1r = vdupq_n_f32(w1.real());
  const float32x4_t w1i = vdupq_n_f32(w1.imag());
  const float32x4_t w2r = vdupq_n_f32(w2.real());
  const float32x4_t w2i = vdupq_n_f32(w2.imag());
  const float32x4_t w3r = vdupq_n_f32(w3.real());
  const float32x4_t w3i = vdupq_n_f32(w3.imag());
  const uint32x4_t rot_mask = conj_rot ? sign_real() : sign_imag();
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t u1 = cmul_broadcast4(w1r, w1i, load4(x1 + i));
    const float32x4_t u2 = cmul_broadcast4(w2r, w2i, load4(x2 + i));
    const float32x4_t u3 = cmul_broadcast4(w3r, w3i, load4(x3 + i));
    const float32x4_t z = load4(x0 + i);
    const float32x4_t s0 = vaddq_f32(z, u1);
    const float32x4_t s1 = vsubq_f32(z, u1);
    const float32x4_t s2 = vaddq_f32(u2, u3);
    const float32x4_t s3 = vsubq_f32(u2, u3);
    const float32x4_t r = flip_signs(vrev64q_f32(s3), rot_mask);
    store4(x0 + i, vaddq_f32(s0, s2));
    store4(x2 + i, vsubq_f32(s0, s2));
    store4(x1 + i, vaddq_f32(s1, r));
    store4(x3 + i, vsubq_f32(s1, r));
  }
  fscalar::butterfly4_lanes(x0 + i, x1 + i, x2 + i, x3 + i, w1, w2, w3, conj_rot, n - i);
}

void cmul_rows_tiled(cplx* dst, usize dst_stride, const cplx* a, usize a_stride, const cplx* b,
                     usize b_stride, bool conj_b, usize rows, usize cols) {
  for (usize r = 0; r < rows; ++r) {
    cplx* d = dst + r * dst_stride;
    const cplx* ar = a + r * a_stride;
    const cplx* br = b + r * b_stride;
    usize i = 0;
    if (conj_b) {
      for (; i + kW <= cols; i += kW) store4(d + i, cmul_conj4(load4(ar + i), load4(br + i)));
      fscalar::cmul_conj_lanes(d + i, ar + i, br + i, cols - i);
    } else {
      for (; i + kW <= cols; i += kW) store4(d + i, cmul4(load4(ar + i), load4(br + i)));
      fscalar::cmul_lanes(d + i, ar + i, br + i, cols - i);
    }
  }
}

void chirp_mul_lanes(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n) {
  const float32x4_t vs = vdupq_n_f32(s);
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t scaled = vmulq_f32(load4(src + i), vs);
    store4(dst + i, cmul4(scaled, load4(chirp + i)));
  }
  fscalar::chirp_mul_lanes(dst + i, src + i, chirp + i, s, n - i);
}

void scale_chirp_lanes(cplx* dst, const cplx* src, real s, cplx alpha, usize n) {
  const float32x4_t vs = vdupq_n_f32(s);
  const float32x4_t wr = vdupq_n_f32(alpha.real());
  const float32x4_t wi = vdupq_n_f32(alpha.imag());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    store4(dst + i, cmul_broadcast4(wr, wi, vmulq_f32(load4(src + i), vs)));
  }
  fscalar::scale_chirp_lanes(dst + i, src + i, s, alpha, n - i);
}

void potential_backprop_lanes(cplx* grad_out, cplx* g, const cplx* psi_in, const cplx* trans,
                              real sigma, usize n) {
  const float32x4_t msig = flip_signs(vdupq_n_f32(sigma), sign_real());
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float32x4_t gv = load4(g + i);
    const float32x4_t tv = load4(trans + i);
    const float32x4_t gt = cmul_conj4(gv, load4(psi_in + i));
    const float32x4_t ist = vmulq_f32(vrev64q_f32(tv), msig);
    store4(grad_out + i, vaddq_f32(load4(grad_out + i), cmul_conj4(gt, ist)));
    store4(g + i, cmul_conj4(gv, tv));
  }
  fscalar::potential_backprop_lanes(grad_out + i, g + i, psi_in + i, trans + i, sigma, n - i);
}

constexpr Kernels kNeonFma = {
    "neon-fma",
    &cmul_lanes,
    &cmul_conj_lanes,
    &cmul_conj_acc_lanes,
    &scale_lanes,
    &axpy_lanes,
    &conj_scale_lanes,
    &butterfly_lanes,
    &butterfly_block,
    &butterfly4_block,
    &butterfly4_lanes,
    &cmul_rows_tiled,
    &chirp_mul_lanes,
    &scale_chirp_lanes,
    &potential_backprop_lanes,
};

}  // namespace fneon
}  // namespace

const Kernels* fma_kernels() { return &fneon::kNeonFma; }

}  // namespace ptycho::backend

#else  // no vector FMA backend for this target

namespace ptycho::backend {
const Kernels* fma_kernels() { return nullptr; }
}  // namespace ptycho::backend

#endif
