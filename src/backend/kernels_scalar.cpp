// The portable scalar backend: the reference operation sequence every
// vector backend must reproduce bit for bit. Compiled with
// -ffp-contract=off (see CMakeLists.txt) so no multiply-add ever fuses,
// on any architecture.
#include "backend/kernels.hpp"
#include "backend/scalar_impl.hpp"

namespace ptycho::backend {

const Kernels& scalar_kernels() {
  static constexpr Kernels table = {
      "scalar",
      &scalar::cmul_lanes,
      &scalar::cmul_conj_lanes,
      &scalar::cmul_conj_acc_lanes,
      &scalar::scale_lanes,
      &scalar::axpy_lanes,
      &scalar::conj_scale_lanes,
      &scalar::butterfly_lanes,
      &scalar::butterfly_block,
      &scalar::butterfly4_block,
      &scalar::butterfly4_lanes,
      &scalar::cmul_rows_tiled,
      &scalar::chirp_mul_lanes,
      &scalar::scale_chirp_lanes,
      &scalar::potential_backprop_lanes,
  };
  return table;
}

}  // namespace ptycho::backend
