// Scalar reference implementations of the backend primitives, shared
// between the scalar table (kernels_scalar.cpp) and the vector tables'
// tail loops (kernels_simd.cpp). Keeping both in one header guarantees
// the remainder lanes of a SIMD kernel run exactly the operation sequence
// of the scalar backend. Internal to src/backend/ — include nowhere else.
//
// Both including TUs compile with -ffp-contract=off, so `a*b + c` here is
// a rounded multiply followed by a rounded add on every architecture —
// the association the bitwise contract in kernels.hpp is defined against.
#pragma once

#include "common/types.hpp"

namespace ptycho::backend::scalar {

inline void cmul_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(a[i], b[i]);
}

inline void cmul_conj_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_conj(a[i], b[i]);
}

inline void cmul_conj_acc_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul_conj(a[i], b[i]);
}

inline void scale_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i], alpha);
}

inline void axpy_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul(alpha, src[i]);
}

inline void conj_scale_lanes(cplx* dst, const cplx* src, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = std::conj(src[i]) * s;
}

inline void butterfly_lanes(cplx* a, cplx* b, cplx w, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx t = cmul(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void butterfly_block(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx w = conj_tw ? std::conj(tw[i]) : tw[i];
    const cplx t = cmul(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void butterfly4_block(cplx* x0, cplx* x1, cplx* x2, cplx* x3, const cplx* tw1,
                             const cplx* tw2, const cplx* tw3, bool conj_tw, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx w1 = conj_tw ? std::conj(tw1[i]) : tw1[i];
    const cplx w2 = conj_tw ? std::conj(tw2[i]) : tw2[i];
    const cplx w3 = conj_tw ? std::conj(tw3[i]) : tw3[i];
    const cplx u1 = cmul(w1, x1[i]);
    const cplx u2 = cmul(w2, x2[i]);
    const cplx u3 = cmul(w3, x3[i]);
    const cplx z = x0[i];
    const cplx s0 = z + u1;
    const cplx s1 = z - u1;
    const cplx s2 = u2 + u3;
    const cplx s3 = u2 - u3;
    // The +-i rotation is an exact re/im swap with one sign flip.
    const cplx r = conj_tw ? cplx(-s3.imag(), s3.real()) : cplx(s3.imag(), -s3.real());
    x0[i] = s0 + s2;
    x2[i] = s0 - s2;
    x1[i] = s1 + r;
    x3[i] = s1 - r;
  }
}

inline void butterfly4_lanes(cplx* x0, cplx* x1, cplx* x2, cplx* x3, cplx w1, cplx w2, cplx w3,
                             bool conj_rot, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx u1 = cmul(w1, x1[i]);
    const cplx u2 = cmul(w2, x2[i]);
    const cplx u3 = cmul(w3, x3[i]);
    const cplx z = x0[i];
    const cplx s0 = z + u1;
    const cplx s1 = z - u1;
    const cplx s2 = u2 + u3;
    const cplx s3 = u2 - u3;
    const cplx r = conj_rot ? cplx(-s3.imag(), s3.real()) : cplx(s3.imag(), -s3.real());
    x0[i] = s0 + s2;
    x2[i] = s0 - s2;
    x1[i] = s1 + r;
    x3[i] = s1 - r;
  }
}

inline void cmul_rows_tiled(cplx* dst, usize dst_stride, const cplx* a, usize a_stride,
                            const cplx* b, usize b_stride, bool conj_b, usize rows,
                            usize cols) {
  for (usize r = 0; r < rows; ++r) {
    if (conj_b) {
      cmul_conj_lanes(dst + r * dst_stride, a + r * a_stride, b + r * b_stride, cols);
    } else {
      cmul_lanes(dst + r * dst_stride, a + r * a_stride, b + r * b_stride, cols);
    }
  }
}

inline void chirp_mul_lanes(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i] * s, chirp[i]);
}

inline void scale_chirp_lanes(cplx* dst, const cplx* src, real s, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i] * s, alpha);
}

inline void potential_backprop_lanes(cplx* grad_out, cplx* g, const cplx* psi_in,
                                     const cplx* trans, real sigma, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx gt = cmul_conj(g[i], psi_in[i]);
    const cplx ist(-sigma * trans[i].imag(), sigma * trans[i].real());
    grad_out[i] += cmul_conj(gt, ist);
    g[i] = cmul_conj(g[i], trans[i]);
  }
}

}  // namespace ptycho::backend::scalar
