// Scalar reference implementations of the backend primitives, shared
// between the scalar table (kernels_scalar.cpp) and the vector tables'
// tail loops (kernels_simd.cpp). Keeping both in one header guarantees
// the remainder lanes of a SIMD kernel run exactly the operation sequence
// of the scalar backend. Internal to src/backend/ — include nowhere else.
//
// Both including TUs compile with -ffp-contract=off, so `a*b + c` here is
// a rounded multiply followed by a rounded add on every architecture —
// the association the bitwise contract in kernels.hpp is defined against.
#pragma once

#include "common/types.hpp"

namespace ptycho::backend::scalar {

inline void cmul_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(a[i], b[i]);
}

inline void cmul_conj_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul_conj(a[i], b[i]);
}

inline void cmul_conj_acc_lanes(cplx* dst, const cplx* a, const cplx* b, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul_conj(a[i], b[i]);
}

inline void scale_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i], alpha);
}

inline void axpy_lanes(cplx* dst, const cplx* src, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] += cmul(alpha, src[i]);
}

inline void conj_scale_lanes(cplx* dst, const cplx* src, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = std::conj(src[i]) * s;
}

inline void butterfly_lanes(cplx* a, cplx* b, cplx w, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx t = cmul(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void butterfly_block(cplx* a, cplx* b, const cplx* tw, bool conj_tw, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx w = conj_tw ? std::conj(tw[i]) : tw[i];
    const cplx t = cmul(w, b[i]);
    const cplx u = a[i];
    a[i] = u + t;
    b[i] = u - t;
  }
}

inline void chirp_mul_lanes(cplx* dst, const cplx* src, const cplx* chirp, real s, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i] * s, chirp[i]);
}

inline void scale_chirp_lanes(cplx* dst, const cplx* src, real s, cplx alpha, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = cmul(src[i] * s, alpha);
}

inline void potential_backprop_lanes(cplx* grad_out, cplx* g, const cplx* psi_in,
                                     const cplx* trans, real sigma, usize n) {
  for (usize i = 0; i < n; ++i) {
    const cplx gt = cmul_conj(g[i], psi_in[i]);
    const cplx ist(-sigma * trans[i].imag(), sigma * trans[i].real());
    grad_out[i] += cmul_conj(gt, ist);
    g[i] = cmul_conj(g[i], trans[i]);
  }
}

}  // namespace ptycho::backend::scalar
