// Checkpoint/restore subsystem: versioned snapshots of full solver state.
//
// A snapshot is a directory `<root>/step-NNNNNNNN/` holding one shard per
// rank plus a manifest. The write protocol makes completion atomic without
// any filesystem tricks: every rank writes its own shard, all ranks
// barrier, and rank 0 writes the manifest *last* — so a snapshot is valid
// iff its manifest exists and parses. A rank dying mid-write leaves a
// manifest-less (ignored) directory; `find_latest_step` only ever returns
// complete snapshots.
//
// Snapshots are taken at chunk boundaries, where the Alg. 1 invariant
// guarantees overlap copies of V are identical across ranks. That makes a
// shard set re-tileable: `src/ckpt/elastic.cpp` can restore a K-rank
// snapshot onto K' ranks by assembling from the disjoint *owned* regions
// and redistributing through the fabric. Elastic restore requires an
// iteration-boundary snapshot (chunk == 0): mid-iteration chunk splits are
// partition-dependent, so a partially swept iteration cannot be resumed on
// a different tiling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "data/dataset.hpp"
#include "partition/tilegrid.hpp"
#include "runtime/cluster.hpp"
#include "tensor/framed.hpp"

namespace ptycho::ckpt {

/// Snapshot format version (bump on any wire-layout change).
/// v2: files carry a trailing CRC32 (see ckpt/serialize.hpp) so torn or
/// bit-rotted shards are detected at restore instead of loading silently.
inline constexpr std::uint32_t kFormatVersion = 2;

/// When and where solvers take snapshots.
struct Policy {
  std::string directory;  ///< snapshot root; empty disables checkpointing
  int every_chunks = 0;   ///< snapshot every N completed chunks (0 disables)

  [[nodiscard]] bool enabled() const { return every_chunks > 0 && !directory.empty(); }
};

/// One rank's tile geometry as recorded in the manifest (a serializable
/// subset of TileSpec — enough to re-tile on restore).
struct TileInfo {
  int rank = 0;
  Rect owned;     ///< disjoint cover of the field
  Rect extended;  ///< owned + halo (the shard volume's frame)
  std::vector<index_t> own_probes;
};

/// Global snapshot metadata (written once by rank 0).
struct Manifest {
  std::uint32_t version = kFormatVersion;
  std::string dataset_name;
  index_t probe_count = 0;
  index_t slices = 0;
  std::uint64_t step = 0;  ///< global chunk counter at snapshot time
  int iteration = 0;       ///< completed iterations
  int chunk = 0;           ///< completed chunks within the current iteration
  int chunks_per_iteration = 1;
  int nranks = 1;
  bool refine_probe = false;
  int update_mode = 0;  ///< UpdateMode the run used (restore must match)
  std::vector<double> cost_values;  ///< completed-iteration cost history
  std::vector<TileInfo> tiles;      ///< one per rank

  /// True when the snapshot sits between iterations — the precondition for
  /// elastic (K -> K') restore.
  [[nodiscard]] bool at_iteration_boundary() const { return chunk == 0; }
};

/// One rank's captured solver state.
struct Shard {
  int rank = 0;
  double partial_cost = 0.0;  ///< sweep cost accumulated in the current iteration
  RngState rng;               ///< this rank's stream, mid-sequence
  FramedVolume volume;        ///< extended tile of V (halo included)
  FramedVolume accbuf;        ///< AccBuf_k (zero at chunk boundaries, captured anyway)
  CArray2D probe;             ///< this rank's probe wavefield copy
  CArray2D probe_grad;        ///< partially accumulated probe gradient
};

/// A fully loaded snapshot ready for restore.
struct Snapshot {
  Manifest manifest;
  std::vector<Shard> shards;  ///< indexed by rank
};

/// Borrowed view of a rank's live state for writing — solvers serialize
/// straight from their working buffers instead of cloning them (tile
/// volumes are the two largest per-rank allocations; cloning them inside
/// the tracked scope would inflate the reported peak memory).
struct ShardView {
  int rank = 0;
  double partial_cost = 0.0;
  RngState rng;
  const FramedVolume* volume = nullptr;
  const FramedVolume* accbuf = nullptr;
  const CArray2D* probe = nullptr;
  const CArray2D* probe_grad = nullptr;
};

/// Per-run-constant manifest fields, filled once by a solver and reused
/// for every snapshot it takes.
struct RunInfo {
  std::string dataset_name;
  index_t probe_count = 0;
  index_t slices = 0;
  int chunks_per_iteration = 1;
  int nranks = 1;
  bool refine_probe = false;
  int update_mode = 0;
  std::vector<TileInfo> tiles;
};

// ---- on-disk protocol -------------------------------------------------------

/// The global chunk counter for a (iteration, chunk) position.
[[nodiscard]] std::uint64_t chunk_step(int iteration, int chunk, int chunks_per_iteration);

/// True when `policy` calls for a snapshot at this step.
[[nodiscard]] bool snapshot_due(const Policy& policy, std::uint64_t step);

/// Manifest for a snapshot at (iteration, chunk) of the described run.
[[nodiscard]] Manifest make_manifest(const RunInfo& run, int iteration, int chunk,
                                     std::vector<double> cost_values);

/// `<root>/step-NNNNNNNN` for the given global step counter.
[[nodiscard]] std::string step_dir(const std::string& root, std::uint64_t step);

void write_manifest(const std::string& dir, const Manifest& manifest);
[[nodiscard]] Manifest read_manifest(const std::string& dir);

/// Write one rank's shard; returns the bytes written (for the
/// checkpoint_shard_bytes_total metric).
std::uint64_t write_shard(const std::string& dir, const ShardView& shard);
std::uint64_t write_shard(const std::string& dir, const Shard& shard);
[[nodiscard]] Shard read_shard(const std::string& dir, int rank);

/// Step of the most advanced complete snapshot under `root` (ranked by
/// (iteration, chunk), not directory number, so runs resumed with a
/// different chunking into the same directory cannot shadow newer
/// progress with stale snapshots), or nullopt when none exists. Snapshot
/// directories whose manifest is missing, truncated or unreadable are
/// skipped — a crash mid-manifest-write falls back to the previous
/// complete snapshot.
[[nodiscard]] std::optional<std::uint64_t> find_latest_step(const std::string& root);

/// Load manifest + all shards from one snapshot directory.
[[nodiscard]] Snapshot load_snapshot(const std::string& dir);

/// Load the most recent complete snapshot under `root`; throws if none.
[[nodiscard]] Snapshot load_latest(const std::string& root);

/// What a resuming run needs from a snapshot; load_newest_valid skips
/// candidates that cannot satisfy it instead of failing on them.
struct RestoreFilter {
  int nranks = 0;                ///< target rank count (0: accept any)
  int chunks_per_iteration = 0;  ///< target chunking (0: accept any)
  int update_mode = -1;          ///< required solver flag (-1: accept any)
  int refine_probe = -1;         ///< required solver flag (-1: accept any; else 0/1)
};

/// Walk the snapshots under `root` newest-first (by run progress) and
/// return the first one that loads *and validates* completely — manifest
/// and every shard parse, footers and CRCs intact — and that the filter
/// accepts. A snapshot taken at K ranks or a different chunking than the
/// filter asks for is usable only at an iteration boundary (the elastic
/// restore precondition); others are skipped with a warning, falling back
/// to the previous complete snapshot. Returns nullopt when nothing under
/// `root` qualifies. This is the single discovery routine behind both
/// `--restore latest` and automatic in-run recovery.
[[nodiscard]] std::optional<Snapshot> load_newest_valid(const std::string& root,
                                                        const RestoreFilter& filter);

/// Throws unless the snapshot was taken from `dataset` (name, probe count
/// and slice count must match — restoring into a different acquisition is
/// always a user error).
void check_compatible(const Snapshot& snapshot, const Dataset& dataset);

/// Throws when the resuming solver's flags differ from the checkpointed
/// run's: continuing a trajectory under a different update rule or probe
/// handling would silently diverge.
void check_same_solver_flags(const Manifest& manifest, int update_mode, bool refine_probe);

/// Throws unless the snapshot sits at an iteration boundary — the
/// precondition for restoring onto a different layout or chunking.
void require_iteration_boundary(const Manifest& manifest);

// ---- elastic restore (ckpt/elastic.cpp) ------------------------------------

/// Assemble the full-field volume from the shards' disjoint owned regions
/// (the serial restore path, and the K'=1 case of elastic restore).
[[nodiscard]] FramedVolume assemble_volume(const Snapshot& snapshot);

/// True when the snapshot's tiling is exactly `partition` (same rank
/// count, rects and probe ownership) — the cheap same-layout restore path.
[[nodiscard]] bool layout_matches(const Manifest& manifest, const Partition& partition);

/// Collective elastic restore: re-tile a K-rank snapshot onto the calling
/// cluster's K' ranks. Rank 0 reads every old shard's owned region and
/// scatters the pieces of each new rank's extended tile through the
/// fabric; every rank fills `tile_volume` (frame = its new extended rect)
/// and receives the broadcast probe into `probe`. All ranks must pass the
/// same `snapshot` and `partition`.
void scatter_restore(rt::RankContext& ctx, const Snapshot& snapshot,
                     const Partition& partition, FramedVolume& tile_volume, CArray2D& probe);

}  // namespace ptycho::ckpt
