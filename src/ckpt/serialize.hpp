// Endian-stable binary (de)serialization for the checkpoint subsystem.
//
// Every scalar is encoded explicitly little-endian byte-by-byte, so a
// snapshot written on any host restores bit-identically on any other —
// the format is defined by this file, not by the writer's memory layout.
// Files carry a leading magic + version, a trailing footer magic, and —
// since format v2 — a CRC32 over everything up to and including the
// footer, appended as the last 4 bytes. The reader validates all three:
// the footer catches a shard truncated by a dying rank, the CRC catches a
// torn or bit-rotted one (a torn shard used to restore silently wrong
// data whenever the tear preserved the footer position).
#pragma once

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/framed.hpp"

namespace ptycho::ckpt {

/// Trailing marker legacy (pre-CRC) checkpoint files end with
/// ("PTYCEND!").
inline constexpr std::uint64_t kFooterMagic = 0x50545943454E4421ULL;

/// Trailing marker for the CRC-carrying layout ("PTYCEND2"), followed by
/// the 4-byte CRC32 trailer. Deliberately distinct from kFooterMagic: a
/// CRC-layout file truncated by exactly the trailer length would
/// otherwise present a valid legacy footer at the legacy offset and slip
/// past both checks.
inline constexpr std::uint64_t kFooterMagicV2 = 0x50545943454E4432ULL;

class Writer {
 public:
  /// Opens `path` for binary writing and emits the file magic + version.
  Writer(const std::string& path, std::uint64_t file_magic, std::uint32_t version);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s);
  void rect(const Rect& r);

  /// Complex array as interleaved f32 (re, im) pairs — the wire layout of
  /// the snapshot format regardless of the host's `real` width.
  void cplx_array(const cplx* data, usize count);

  /// Write the footer magic and the file CRC, then flush; throws on any
  /// I/O failure.
  void finish();

 private:
  /// Single write funnel: every emitted byte flows through here so the
  /// file CRC is, by construction, over the whole stream.
  void raw(const void* data, usize count);

  std::ofstream out_;
  std::string path_;
  std::uint32_t crc_ = 0;
  bool finished_ = false;
};

class Reader {
 public:
  /// Opens `path`, validates the file magic and the trailing footer magic.
  /// The format version is available via version() for migration logic.
  Reader(const std::string& path, std::uint64_t file_magic);

  [[nodiscard]] std::uint32_t version() const { return version_; }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32() { return std::bit_cast<float>(u32()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str();
  [[nodiscard]] Rect rect();

  void cplx_array(cplx* data, usize count);

 private:
  void fill(unsigned char* dst, usize count);

  std::ifstream in_;
  std::string path_;
  std::uint32_t version_ = 0;
};

}  // namespace ptycho::ckpt
